// Package zcurve implements the space-filling-curve machinery the Bx-tree
// and PEB-tree use to linearize 2-D locations (Sec. 2.1, [13], [22]):
//
//   - Morton (Z-order) encoding and decoding of grid cells,
//   - an exact decomposition of a grid-aligned query rectangle into a
//     minimal set of consecutive curve-value intervals ("ZVconvert" in the
//     paper's Fig. 7), and
//   - a Hilbert-curve mapping used by an ablation benchmark, since the
//     paper's clustering citation [22] analyzes the Hilbert curve.
//
// All functions operate on grid coordinates in [0, 2^order). Mapping from
// continuous space to the grid is the caller's concern (see package bxtree).
package zcurve

import "fmt"

// MaxOrder is the largest supported curve order: with order 31 a curve
// value needs 62 bits, leaving headroom inside a uint64 key.
const MaxOrder = 31

// Interval is an inclusive range [Lo, Hi] of curve values.
type Interval struct {
	Lo, Hi uint64
}

// Len returns the number of curve values covered by the interval.
func (iv Interval) Len() uint64 { return iv.Hi - iv.Lo + 1 }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v uint64) bool { return iv.Lo <= v && v <= iv.Hi }

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// spread2 inserts a zero bit between every bit of the lower 32 bits of v:
// ...b2 b1 b0 becomes ...b2 0 b1 0 b0.
func spread2(v uint64) uint64 {
	v &= 0x00000000FFFFFFFF
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// squash2 is the inverse of spread2: it collects every other bit.
func squash2(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return v
}

// Encode maps grid cell (x, y) to its Z-order value by bit interleaving
// (x provides the even bits, y the odd bits). Coordinates must fit in
// MaxOrder bits; Encode does not range-check for speed — use Grid for
// checked conversions from continuous space.
func Encode(x, y uint32) uint64 {
	return spread2(uint64(x)) | spread2(uint64(y))<<1
}

// Decode is the inverse of Encode.
func Decode(z uint64) (x, y uint32) {
	return uint32(squash2(z)), uint32(squash2(z >> 1))
}

// Rect is a closed grid-cell rectangle [MinX,MaxX] × [MinY,MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY uint32
}

// Valid reports whether the rectangle is non-empty and well ordered.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Cells returns the number of grid cells the rectangle covers.
func (r Rect) Cells() uint64 {
	return uint64(r.MaxX-r.MinX+1) * uint64(r.MaxY-r.MinY+1)
}

// ContainsCell reports whether the grid cell (x, y) lies in the rectangle.
func (r Rect) ContainsCell(x, y uint32) bool {
	return r.MinX <= x && x <= r.MaxX && r.MinY <= y && y <= r.MaxY
}

// Decompose converts a query rectangle into the exact, minimal set of
// disjoint Z-value intervals that together cover precisely the rectangle's
// cells, sorted ascending. order is the curve order (grid is 2^order on a
// side). maxIntervals > 0 caps the result size: when the exact decomposition
// would exceed the cap, adjacent intervals with the smallest gaps are merged
// first, so the result still covers the rectangle but may include extra
// cells (candidates are re-checked during query refinement anyway).
//
// This is the ZVconvert step of the paper's range-query algorithm (Fig. 7).
func Decompose(r Rect, order int, maxIntervals int) ([]Interval, error) {
	if order <= 0 || order > MaxOrder {
		return nil, fmt.Errorf("zcurve: order %d out of range (1..%d)", order, MaxOrder)
	}
	if !r.Valid() {
		return nil, fmt.Errorf("zcurve: invalid rectangle %+v", r)
	}
	limit := uint32(1)<<uint(order) - 1
	if r.MaxX > limit || r.MaxY > limit {
		return nil, fmt.Errorf("zcurve: rectangle %+v exceeds grid of order %d", r, order)
	}

	var out []Interval
	decompose(r, 0, 0, order, order, &out)
	// decompose emits intervals in ascending Z order by construction
	// (quadrant recursion follows the curve), so only merging is needed.
	out = mergeAdjacent(out)
	if maxIntervals > 0 && len(out) > maxIntervals {
		out = coalesce(out, maxIntervals)
	}
	return out, nil
}

// decompose recursively splits the quadrant with top-left grid coordinate
// (qx, qy) (in units of cells) and side 2^qorder against r, appending
// covered intervals to out in curve order.
func decompose(r Rect, qx, qy uint32, qorder, order int, out *[]Interval) {
	side := uint32(1) << uint(qorder)
	qMaxX := qx + side - 1
	qMaxY := qy + side - 1
	// No overlap: nothing to emit.
	if qx > r.MaxX || qMaxX < r.MinX || qy > r.MaxY || qMaxY < r.MinY {
		return
	}
	// Fully covered: the quadrant is one contiguous Z interval.
	if r.MinX <= qx && qMaxX <= r.MaxX && r.MinY <= qy && qMaxY <= r.MaxY {
		lo := Encode(qx, qy)
		*out = append(*out, Interval{Lo: lo, Hi: lo + uint64(side)*uint64(side) - 1})
		return
	}
	if qorder == 0 {
		// Single cell partially tested above; being here means overlap,
		// which for a cell means containment.
		lo := Encode(qx, qy)
		*out = append(*out, Interval{Lo: lo, Hi: lo})
		return
	}
	half := side / 2
	// Z-order visits quadrants in the order (0,0), (1,0), (0,1), (1,1)
	// with x as the low interleaved bit.
	decompose(r, qx, qy, qorder-1, order, out)
	decompose(r, qx+half, qy, qorder-1, order, out)
	decompose(r, qx, qy+half, qorder-1, order, out)
	decompose(r, qx+half, qy+half, qorder-1, order, out)
}

// mergeAdjacent fuses touching intervals ([a,b],[b+1,c] → [a,c]).
// Input must be sorted ascending and disjoint.
func mergeAdjacent(ivs []Interval) []Interval {
	if len(ivs) < 2 {
		return ivs
	}
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo == last.Hi+1 {
			last.Hi = iv.Hi
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// coalesce reduces the interval count to max by repeatedly bridging the
// smallest gap between neighbors. The result covers a superset of the input.
func coalesce(ivs []Interval, max int) []Interval {
	for len(ivs) > max {
		best := 1
		bestGap := ivs[1].Lo - ivs[0].Hi
		for i := 2; i < len(ivs); i++ {
			if gap := ivs[i].Lo - ivs[i-1].Hi; gap < bestGap {
				bestGap = gap
				best = i
			}
		}
		ivs[best-1].Hi = ivs[best].Hi
		ivs = append(ivs[:best], ivs[best+1:]...)
	}
	return ivs
}
