package zcurve

import (
	"math"
	"math/rand"
	"testing"
)

func TestSplitRange(t *testing.T) {
	for _, tc := range []struct {
		order, n int
	}{
		{order: 3, n: 1}, {order: 3, n: 2}, {order: 3, n: 3},
		{order: 3, n: 4}, {order: 5, n: 7}, {order: 10, n: 8},
	} {
		ivs := SplitRange(tc.order, tc.n)
		if len(ivs) != tc.n {
			t.Fatalf("SplitRange(%d,%d): %d intervals", tc.order, tc.n, len(ivs))
		}
		total := uint64(1) << uint(2*tc.order)
		if ivs[0].Lo != 0 || ivs[len(ivs)-1].Hi != total-1 {
			t.Fatalf("SplitRange(%d,%d): does not span [0,%d]: %v", tc.order, tc.n, total-1, ivs)
		}
		var covered uint64
		for i, iv := range ivs {
			if iv.Hi < iv.Lo {
				t.Fatalf("interval %d inverted: %v", i, iv)
			}
			if i > 0 && iv.Lo != ivs[i-1].Hi+1 {
				t.Fatalf("gap/overlap between %v and %v", ivs[i-1], iv)
			}
			covered += iv.Len()
		}
		if covered != total {
			t.Fatalf("covered %d of %d values", covered, total)
		}
		// Near-equal: lengths differ by at most one.
		min, max := ivs[0].Len(), ivs[0].Len()
		for _, iv := range ivs {
			if iv.Len() < min {
				min = iv.Len()
			}
			if iv.Len() > max {
				max = iv.Len()
			}
		}
		if max-min > 1 {
			t.Fatalf("uneven split: min %d max %d", min, max)
		}
	}
}

func TestAnyOverlaps(t *testing.T) {
	ivs := []Interval{{Lo: 0, Hi: 3}, {Lo: 10, Hi: 20}}
	for _, tc := range []struct {
		iv   Interval
		want bool
	}{
		{Interval{Lo: 4, Hi: 9}, false},
		{Interval{Lo: 3, Hi: 3}, true},
		{Interval{Lo: 21, Hi: 30}, false},
		{Interval{Lo: 15, Hi: 40}, true},
		{Interval{Lo: 0, Hi: 100}, true},
	} {
		if got := AnyOverlaps(ivs, tc.iv); got != tc.want {
			t.Errorf("AnyOverlaps(%v) = %v, want %v", tc.iv, got, tc.want)
		}
	}
}

// bruteMinDist computes the reference answer by checking every cell.
func bruteMinDist(g Grid, x, y float64, iv Interval) float64 {
	best := math.Inf(1)
	cells := g.Cells()
	for cy := uint32(0); cy < cells; cy++ {
		for cx := uint32(0); cx < cells; cx++ {
			v := HilbertEncode(cx, cy, g.Order)
			if !iv.Contains(v) {
				continue
			}
			if d := g.distToCellRect(x, y, cx, cy, cx, cy); d < best {
				best = d
			}
		}
	}
	return best
}

func TestHilbertMinDistBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, order := range []int{2, 3, 4} {
		g, err := NewGrid(100, order)
		if err != nil {
			t.Fatal(err)
		}
		total := uint64(1) << uint(2*order)
		for trial := 0; trial < 200; trial++ {
			lo := rng.Uint64() % total
			hi := lo + rng.Uint64()%(total-lo)
			iv := Interval{Lo: lo, Hi: hi}
			x := rng.Float64()*140 - 20 // including points outside the space
			y := rng.Float64()*140 - 20
			got := g.HilbertMinDist(x, y, iv)
			want := bruteMinDist(g, x, y, iv)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("order %d iv %v point (%g,%g): got %g want %g",
					order, iv, x, y, got, want)
			}
		}
	}
}

func TestHilbertMinDistEdges(t *testing.T) {
	g, _ := NewGrid(100, 4)
	if d := g.HilbertMinDist(50, 50, Interval{Lo: 1, Hi: 0}); !math.IsInf(d, 1) {
		t.Fatalf("empty interval: got %g, want +Inf", d)
	}
	full := Interval{Lo: 0, Hi: g.MaxValue()}
	if d := g.HilbertMinDist(50, 50, full); d != 0 {
		t.Fatalf("interior point over full range: got %g, want 0", d)
	}
	// A point outside the space is as far as the space boundary.
	if d := g.HilbertMinDist(-10, 50, full); math.Abs(d-10) > 1e-9 {
		t.Fatalf("outside point: got %g, want 10", d)
	}
}

// bruteIntersects computes the reference answer by checking every cell.
func bruteIntersects(r Rect, iv Interval, order int) bool {
	cells := uint32(1) << uint(order)
	for cy := uint32(0); cy < cells; cy++ {
		for cx := uint32(0); cx < cells; cx++ {
			if !r.ContainsCell(cx, cy) {
				continue
			}
			if iv.Contains(HilbertEncode(cx, cy, order)) {
				return true
			}
		}
	}
	return false
}

func TestHilbertRangeIntersectsRectBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, order := range []int{2, 3, 4} {
		limit := uint32(1)<<uint(order) - 1
		total := uint64(1) << uint(2*order)
		for trial := 0; trial < 300; trial++ {
			minX := rng.Uint32() % (limit + 1)
			minY := rng.Uint32() % (limit + 1)
			r := Rect{
				MinX: minX, MinY: minY,
				MaxX: minX + rng.Uint32()%(limit+1-minX),
				MaxY: minY + rng.Uint32()%(limit+1-minY),
			}
			lo := rng.Uint64() % total
			iv := Interval{Lo: lo, Hi: lo + rng.Uint64()%(total-lo)}
			got := HilbertRangeIntersectsRect(r, iv, order)
			want := bruteIntersects(r, iv, order)
			if got != want {
				t.Fatalf("order %d r %+v iv %v: got %v want %v", order, r, iv, got, want)
			}
		}
	}
}

func TestSplitByDensity(t *testing.T) {
	iv := Interval{Lo: 10, Hi: 20}

	// Median placement: the lower median joins the left half, so the split
	// lands where the population actually balances.
	at, ok := SplitByDensity(iv, []uint64{11, 12, 13, 19, 20})
	if !ok || at != 13 {
		t.Fatalf("median split = (%d,%v), want (13,true)", at, ok)
	}

	// Out-of-range observations are ignored.
	at, ok = SplitByDensity(iv, []uint64{0, 1, 14, 15, 16, 99})
	if !ok || at != 15 {
		t.Fatalf("filtered split = (%d,%v), want (15,true)", at, ok)
	}

	// No observations inside: geometric midpoint.
	at, ok = SplitByDensity(iv, nil)
	if !ok || at != 15 {
		t.Fatalf("empty split = (%d,%v), want (15,true)", at, ok)
	}

	// The split point is clamped below Hi so the upper half is never empty.
	at, ok = SplitByDensity(iv, []uint64{20, 20, 20})
	if !ok || at != 19 {
		t.Fatalf("clamped split = (%d,%v), want (19,true)", at, ok)
	}
	if lo, hi := (Interval{Lo: iv.Lo, Hi: at}), (Interval{Lo: at + 1, Hi: iv.Hi}); lo.Len() == 0 || hi.Len() == 0 {
		t.Fatalf("degenerate halves %v / %v", lo, hi)
	}

	// A single-value range cannot split.
	if _, ok := SplitByDensity(Interval{Lo: 7, Hi: 7}, []uint64{7}); ok {
		t.Fatal("single-value range reported splittable")
	}
}
