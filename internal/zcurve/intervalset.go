package zcurve

import "sort"

// IntervalSet maintains a set of disjoint, sorted curve-value intervals.
// The kNN algorithms use it to track already-scanned key ranges so that each
// enlargement round only touches the newly uncovered region (the paper's
// "the region R'q2 − R'q1 is searched", Sec. 5.4).
type IntervalSet struct {
	ivs []Interval // disjoint, sorted ascending, non-adjacent
}

// Len returns the number of stored intervals.
func (s *IntervalSet) Len() int { return len(s.ivs) }

// Intervals returns a copy of the stored intervals.
func (s *IntervalSet) Intervals() []Interval {
	return append([]Interval(nil), s.ivs...)
}

// Covered returns the total number of curve values covered by the set.
func (s *IntervalSet) Covered() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Contains reports whether v lies in some stored interval.
func (s *IntervalSet) Contains(v uint64) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= v })
	return i < len(s.ivs) && s.ivs[i].Lo <= v
}

// Add inserts iv into the set, merging with overlapping or adjacent
// intervals. Invalid intervals (Hi < Lo) are ignored.
func (s *IntervalSet) Add(iv Interval) {
	if iv.Hi < iv.Lo {
		return
	}
	// Find the insertion window: all stored intervals that overlap or touch iv.
	lo := sort.Search(len(s.ivs), func(i int) bool {
		// touches/overlaps from the left: stored.Hi >= iv.Lo-1 (guard underflow)
		if iv.Lo == 0 {
			return true
		}
		return s.ivs[i].Hi >= iv.Lo-1
	})
	hi := sort.Search(len(s.ivs), func(i int) bool {
		// strictly beyond iv on the right: stored.Lo > iv.Hi+1 (guard overflow)
		if iv.Hi == ^uint64(0) {
			return false
		}
		return s.ivs[i].Lo > iv.Hi+1
	})
	if lo < hi {
		if s.ivs[lo].Lo < iv.Lo {
			iv.Lo = s.ivs[lo].Lo
		}
		if s.ivs[hi-1].Hi > iv.Hi {
			iv.Hi = s.ivs[hi-1].Hi
		}
	}
	out := make([]Interval, 0, len(s.ivs)-(hi-lo)+1)
	out = append(out, s.ivs[:lo]...)
	out = append(out, iv)
	out = append(out, s.ivs[hi:]...)
	s.ivs = out
}

// Subtract returns the parts of iv not covered by the set, in ascending
// order. The set itself is unmodified.
func (s *IntervalSet) Subtract(iv Interval) []Interval {
	if iv.Hi < iv.Lo {
		return nil
	}
	var out []Interval
	cur := iv.Lo
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= iv.Lo })
	for ; i < len(s.ivs) && s.ivs[i].Lo <= iv.Hi; i++ {
		st := s.ivs[i]
		if st.Lo > cur {
			out = append(out, Interval{Lo: cur, Hi: st.Lo - 1})
		}
		if st.Hi >= iv.Hi {
			return out
		}
		if st.Hi+1 > cur {
			cur = st.Hi + 1
		}
	}
	if cur <= iv.Hi {
		out = append(out, Interval{Lo: cur, Hi: iv.Hi})
	}
	return out
}
