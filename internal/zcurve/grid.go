package zcurve

import (
	"fmt"
	"math"
)

func fmtErr(format string, args ...interface{}) error {
	return fmt.Errorf("zcurve: "+format, args...)
}

// Grid maps a continuous square space [0, Side) × [0, Side) onto the
// 2^Order × 2^Order cell grid that curve values are computed over. The
// paper's space is 1000 × 1000 with a 2^10 grid per axis.
type Grid struct {
	Side  float64 // side length of the space
	Order int     // curve order; grid resolution is 2^Order per axis
}

// NewGrid validates and returns a Grid.
func NewGrid(side float64, order int) (Grid, error) {
	if side <= 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return Grid{}, fmtErr("invalid space side %v", side)
	}
	if order <= 0 || order > MaxOrder {
		return Grid{}, errOrder(order)
	}
	return Grid{Side: side, Order: order}, nil
}

// Cells returns the grid resolution per axis (2^Order).
func (g Grid) Cells() uint32 { return uint32(1) << uint(g.Order) }

// CellOf maps a continuous coordinate to a grid index, clamping values
// outside [0, Side) to the boundary cells. Clamping (rather than erroring)
// matches how moving-object indexes treat objects that drift marginally
// out of the managed space between updates.
func (g Grid) CellOf(v float64) uint32 {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	cells := g.Cells()
	c := uint32(v / g.Side * float64(cells))
	if c >= cells {
		c = cells - 1
	}
	return c
}

// CellCenter returns the continuous coordinate of the center of cell c.
func (g Grid) CellCenter(c uint32) float64 {
	return (float64(c) + 0.5) * g.Side / float64(g.Cells())
}

// ZValue returns the Z-curve value of the continuous point (x, y).
func (g Grid) ZValue(x, y float64) uint64 {
	return Encode(g.CellOf(x), g.CellOf(y))
}

// HilbertValue returns the Hilbert-curve value of the continuous point.
func (g Grid) HilbertValue(x, y float64) uint64 {
	return HilbertEncode(g.CellOf(x), g.CellOf(y), g.Order)
}

// RectOf converts a continuous rectangle to the covering grid rectangle,
// clamping to the space boundary. Returns false if the rectangle is empty
// or entirely outside the space.
func (g Grid) RectOf(minX, minY, maxX, maxY float64) (Rect, bool) {
	if !(minX <= maxX && minY <= maxY) {
		return Rect{}, false
	}
	if maxX < 0 || maxY < 0 || minX >= g.Side || minY >= g.Side {
		return Rect{}, false
	}
	return Rect{
		MinX: g.CellOf(minX),
		MinY: g.CellOf(minY),
		MaxX: g.CellOf(maxX),
		MaxY: g.CellOf(maxY),
	}, true
}

// MaxValue returns the largest curve value on this grid (2^(2·Order) − 1).
func (g Grid) MaxValue() uint64 {
	return uint64(1)<<uint(2*g.Order) - 1
}
