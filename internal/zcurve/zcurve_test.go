package zcurve

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeKnownValues(t *testing.T) {
	cases := []struct {
		x, y uint32
		z    uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
		{2, 3, 14},
		{7, 7, 63},
	}
	for _, c := range cases {
		if got := Encode(c.x, c.y); got != c.z {
			t.Errorf("Encode(%d,%d) = %d, want %d", c.x, c.y, got, c.z)
		}
		x, y := Decode(c.z)
		if x != c.x || y != c.y {
			t.Errorf("Decode(%d) = (%d,%d), want (%d,%d)", c.z, x, y, c.x, c.y)
		}
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Decode(Encode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMonotoneInQuadrant(t *testing.T) {
	// Within one quadrant the curve value of the quadrant's first cell is
	// the minimum over the quadrant: encode(quadrant origin) <= all cells.
	for trial := 0; trial < 200; trial++ {
		qx := uint32(rand.Intn(8)) * 4
		qy := uint32(rand.Intn(8)) * 4
		base := Encode(qx, qy)
		for dx := uint32(0); dx < 4; dx++ {
			for dy := uint32(0); dy < 4; dy++ {
				if z := Encode(qx+dx, qy+dy); z < base || z > base+15 {
					t.Fatalf("cell (%d,%d) z=%d outside quadrant range [%d,%d]",
						qx+dx, qy+dy, z, base, base+15)
				}
			}
		}
	}
}

// coveredCells expands intervals to the set of cells they contain.
func coveredCells(ivs []Interval) map[uint64]bool {
	set := make(map[uint64]bool)
	for _, iv := range ivs {
		for v := iv.Lo; ; v++ {
			set[v] = true
			if v == iv.Hi {
				break
			}
		}
	}
	return set
}

func TestDecomposeExactCoverage(t *testing.T) {
	const order = 5 // 32x32 grid keeps exhaustive checks fast
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		r := Rect{
			MinX: uint32(rng.Intn(32)),
			MinY: uint32(rng.Intn(32)),
		}
		r.MaxX = r.MinX + uint32(rng.Intn(int(32-r.MinX)))
		r.MaxY = r.MinY + uint32(rng.Intn(int(32-r.MinY)))

		ivs, err := Decompose(r, order, 0)
		if err != nil {
			t.Fatalf("Decompose(%+v): %v", r, err)
		}
		got := coveredCells(ivs)
		want := make(map[uint64]bool)
		for x := r.MinX; x <= r.MaxX; x++ {
			for y := r.MinY; y <= r.MaxY; y++ {
				want[Encode(x, y)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("rect %+v: covered %d cells, want %d", r, len(got), len(want))
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("rect %+v: cell z=%d not covered", r, v)
			}
		}
		// Intervals must be sorted, disjoint, non-adjacent.
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Lo <= ivs[i-1].Hi+1 {
				t.Fatalf("rect %+v: intervals %v and %v overlap or touch", r, ivs[i-1], ivs[i])
			}
		}
	}
}

func TestDecomposeFullGridIsOneInterval(t *testing.T) {
	ivs, err := Decompose(Rect{0, 0, 31, 31}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].Lo != 0 || ivs[0].Hi != 1023 {
		t.Fatalf("full grid = %v, want [[0,1023]]", ivs)
	}
}

func TestDecomposeSingleCell(t *testing.T) {
	ivs, err := Decompose(Rect{5, 9, 5, 9}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	z := Encode(5, 9)
	if len(ivs) != 1 || ivs[0].Lo != z || ivs[0].Hi != z {
		t.Fatalf("single cell = %v, want [[%d,%d]]", ivs, z, z)
	}
}

func TestDecomposeMaxIntervalsCoalesces(t *testing.T) {
	// A thin full-width row decomposes into many intervals at high order.
	r := Rect{0, 13, 63, 13}
	full, err := Decompose(r, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 5 {
		t.Skipf("row decomposed into only %d intervals", len(full))
	}
	capped, err := Decompose(r, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) > 4 {
		t.Fatalf("cap ignored: %d intervals", len(capped))
	}
	// Capped result must still cover every cell of the rectangle.
	got := coveredCells(capped)
	for x := r.MinX; x <= r.MaxX; x++ {
		if !got[Encode(x, 13)] {
			t.Fatalf("cell (%d,13) lost by coalescing", x)
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(Rect{0, 0, 1, 1}, 0, 0); err == nil {
		t.Errorf("order 0 accepted")
	}
	if _, err := Decompose(Rect{2, 0, 1, 1}, 4, 0); err == nil {
		t.Errorf("inverted rect accepted")
	}
	if _, err := Decompose(Rect{0, 0, 99, 1}, 4, 0); err == nil {
		t.Errorf("out-of-grid rect accepted")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{3, 7}
	if iv.Len() != 5 {
		t.Errorf("Len = %d, want 5", iv.Len())
	}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(8) || iv.Contains(2) {
		t.Errorf("Contains wrong")
	}
}

func TestHilbertRoundTripQuick(t *testing.T) {
	const order = 10
	f := func(x, y uint32) bool {
		x %= 1 << order
		y %= 1 << order
		gx, gy := HilbertDecode(HilbertEncode(x, y, order), order)
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertIsBijectionSmall(t *testing.T) {
	const order = 4
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			d := HilbertEncode(x, y, order)
			if d >= 256 {
				t.Fatalf("Hilbert(%d,%d) = %d out of range", x, y, d)
			}
			if seen[d] {
				t.Fatalf("Hilbert value %d duplicated", d)
			}
			seen[d] = true
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive Hilbert values must be 4-adjacent cells — the locality
	// property that motivates the ablation.
	const order = 5
	prevX, prevY := HilbertDecode(0, order)
	for d := uint64(1); d < 1024; d++ {
		x, y := HilbertDecode(d, order)
		dx := int64(x) - int64(prevX)
		dy := int64(y) - int64(prevY)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("steps %d→%d jump from (%d,%d) to (%d,%d)", d-1, d, prevX, prevY, x, y)
		}
		prevX, prevY = x, y
	}
}

func TestHilbertDecomposeCoverage(t *testing.T) {
	const order = 5
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		r := Rect{MinX: uint32(rng.Intn(32)), MinY: uint32(rng.Intn(32))}
		r.MaxX = r.MinX + uint32(rng.Intn(int(32-r.MinX)))
		r.MaxY = r.MinY + uint32(rng.Intn(int(32-r.MinY)))

		ivs, err := HilbertDecompose(r, order, 0)
		if err != nil {
			t.Fatalf("HilbertDecompose(%+v): %v", r, err)
		}
		got := coveredCells(ivs)
		count := 0
		for x := r.MinX; x <= r.MaxX; x++ {
			for y := r.MinY; y <= r.MaxY; y++ {
				if !got[HilbertEncode(x, y, order)] {
					t.Fatalf("rect %+v: cell (%d,%d) not covered", r, x, y)
				}
				count++
			}
		}
		if len(got) != count {
			t.Fatalf("rect %+v: covered %d values, want %d", r, len(got), count)
		}
	}
}

func TestGridCellMapping(t *testing.T) {
	g, err := NewGrid(1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 1024 {
		t.Fatalf("Cells = %d", g.Cells())
	}
	if c := g.CellOf(0); c != 0 {
		t.Errorf("CellOf(0) = %d", c)
	}
	if c := g.CellOf(999.999); c != 1023 {
		t.Errorf("CellOf(999.999) = %d", c)
	}
	if c := g.CellOf(-5); c != 0 {
		t.Errorf("CellOf(-5) = %d, want clamp to 0", c)
	}
	if c := g.CellOf(1e9); c != 1023 {
		t.Errorf("CellOf(1e9) = %d, want clamp to 1023", c)
	}
	// Centers land back in their own cell.
	for _, cell := range []uint32{0, 1, 511, 1023} {
		if back := g.CellOf(g.CellCenter(cell)); back != cell {
			t.Errorf("CellOf(CellCenter(%d)) = %d", cell, back)
		}
	}
}

func TestGridRectOf(t *testing.T) {
	g, _ := NewGrid(1000, 10)
	r, ok := g.RectOf(100, 200, 300, 400)
	if !ok {
		t.Fatal("RectOf rejected valid rect")
	}
	if !r.Valid() || r.MinX > r.MaxX {
		t.Fatalf("RectOf produced %+v", r)
	}
	if _, ok := g.RectOf(300, 0, 100, 10); ok {
		t.Errorf("inverted rect accepted")
	}
	if _, ok := g.RectOf(2000, 2000, 3000, 3000); ok {
		t.Errorf("out-of-space rect accepted")
	}
	// Clamped rect still valid.
	r, ok = g.RectOf(-50, -50, 50, 50)
	if !ok || r.MinX != 0 || r.MinY != 0 {
		t.Errorf("clamping failed: %+v ok=%v", r, ok)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(-1, 10); err == nil {
		t.Errorf("negative side accepted")
	}
	if _, err := NewGrid(100, 0); err == nil {
		t.Errorf("order 0 accepted")
	}
	if _, err := NewGrid(100, 99); err == nil {
		t.Errorf("huge order accepted")
	}
}

func TestGridMaxValue(t *testing.T) {
	g, _ := NewGrid(1000, 10)
	if g.MaxValue() != (1<<20)-1 {
		t.Fatalf("MaxValue = %d", g.MaxValue())
	}
	if z := g.ZValue(999.9, 999.9); z != g.MaxValue() {
		t.Fatalf("corner ZValue = %d, want %d", z, g.MaxValue())
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint32(i), uint32(i*7))
	}
}

func BenchmarkDecompose(b *testing.B) {
	r := Rect{100, 100, 300, 300}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(r, 10, 64); err != nil {
			b.Fatal(err)
		}
	}
}
