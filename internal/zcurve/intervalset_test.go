package zcurve

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalSetAddMerges(t *testing.T) {
	var s IntervalSet
	s.Add(Interval{10, 20})
	s.Add(Interval{30, 40})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Add(Interval{21, 29}) // bridges the gap exactly (adjacent both sides)
	if s.Len() != 1 {
		t.Fatalf("after bridge Len = %d, want 1: %v", s.Len(), s.Intervals())
	}
	if got := s.Intervals()[0]; got != (Interval{10, 40}) {
		t.Fatalf("merged = %v, want [10,40]", got)
	}
}

func TestIntervalSetAddOverlap(t *testing.T) {
	var s IntervalSet
	s.Add(Interval{5, 10})
	s.Add(Interval{8, 15})
	s.Add(Interval{1, 2})
	want := []Interval{{1, 2}, {5, 15}}
	got := s.Intervals()
	if len(got) != len(want) {
		t.Fatalf("intervals = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", got, want)
		}
	}
	if s.Covered() != 2+11 {
		t.Fatalf("Covered = %d, want 13", s.Covered())
	}
}

func TestIntervalSetContains(t *testing.T) {
	var s IntervalSet
	s.Add(Interval{10, 20})
	s.Add(Interval{40, 40})
	for _, tc := range []struct {
		v    uint64
		want bool
	}{{9, false}, {10, true}, {15, true}, {20, true}, {21, false}, {39, false}, {40, true}, {41, false}} {
		if got := s.Contains(tc.v); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestIntervalSetSubtract(t *testing.T) {
	var s IntervalSet
	s.Add(Interval{10, 20})
	s.Add(Interval{30, 35})

	tests := []struct {
		in   Interval
		want []Interval
	}{
		{Interval{0, 5}, []Interval{{0, 5}}},                      // disjoint left
		{Interval{12, 18}, nil},                                   // fully covered
		{Interval{5, 15}, []Interval{{5, 9}}},                     // right part covered
		{Interval{15, 25}, []Interval{{21, 25}}},                  // left part covered
		{Interval{0, 50}, []Interval{{0, 9}, {21, 29}, {36, 50}}}, // spans all
		{Interval{21, 29}, []Interval{{21, 29}}},                  // in the gap
		{Interval{20, 30}, []Interval{{21, 29}}},                  // touches both
	}
	for _, tc := range tests {
		got := s.Subtract(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("Subtract(%v) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("Subtract(%v) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

func TestIntervalSetEdgeBounds(t *testing.T) {
	var s IntervalSet
	max := ^uint64(0)
	s.Add(Interval{0, 0})
	s.Add(Interval{max, max})
	if !s.Contains(0) || !s.Contains(max) {
		t.Fatal("boundary values not contained")
	}
	got := s.Subtract(Interval{0, max})
	if len(got) != 1 || got[0] != (Interval{1, max - 1}) {
		t.Fatalf("Subtract full = %v, want [1,%d]", got, max-1)
	}
}

// Property: after Add operations, Subtract of any interval returns exactly
// the values not in the set, and Add ∪ Subtract covers the query interval.
func TestIntervalSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s IntervalSet
		naive := make(map[uint64]bool) // model over a small universe
		const universe = 200
		for i := 0; i < 30; i++ {
			lo := uint64(rng.Intn(universe))
			hi := lo + uint64(rng.Intn(20))
			s.Add(Interval{lo, hi})
			for v := lo; v <= hi; v++ {
				naive[v] = true
			}
		}
		// Check Contains against the model.
		for v := uint64(0); v < universe+30; v++ {
			if s.Contains(v) != naive[v] {
				return false
			}
		}
		// Check Subtract against the model for random query intervals.
		for i := 0; i < 10; i++ {
			lo := uint64(rng.Intn(universe))
			hi := lo + uint64(rng.Intn(40))
			rem := s.Subtract(Interval{lo, hi})
			covered := make(map[uint64]bool)
			for _, iv := range rem {
				if iv.Lo < lo || iv.Hi > hi {
					return false // result escapes the query interval
				}
				for v := iv.Lo; v <= iv.Hi; v++ {
					if covered[v] || naive[v] {
						return false // overlap or value already in set
					}
					covered[v] = true
				}
			}
			for v := lo; v <= hi; v++ {
				if !naive[v] && !covered[v] {
					return false // uncovered value missing from result
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
