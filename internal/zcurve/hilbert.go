package zcurve

// Hilbert-curve mapping, used by the curve ablation benchmark
// (DESIGN.md A3). The iterative rotate-and-accumulate formulation follows
// the classic Hamilton conversion; it is the curve analyzed by the paper's
// clustering citation [22].

// HilbertEncode maps grid cell (x, y) to its Hilbert value for a curve of
// the given order (grid is 2^order on a side). Coordinates must be within
// the grid; out-of-range bits are masked off.
func HilbertEncode(x, y uint32, order int) uint64 {
	mask := uint32(1)<<uint(order) - 1
	x &= mask
	y &= mask
	var d uint64
	for s := uint32(1) << uint(order-1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = hilbertRotate(s, x, y, rx, ry)
	}
	return d
}

// HilbertDecode is the inverse of HilbertEncode.
func HilbertDecode(d uint64, order int) (x, y uint32) {
	t := d
	for s := uint32(1); s < uint32(1)<<uint(order); s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = hilbertRotate(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// hilbertRotate reflects/rotates the quadrant so recursion stays oriented.
func hilbertRotate(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// HilbertDecompose is the Hilbert analogue of Decompose: it returns sorted,
// disjoint Hilbert-value intervals covering exactly the rectangle's cells
// (subject to the same maxIntervals coalescing rule). Because Hilbert
// quadrant visit order varies with orientation, intervals are collected
// per cell run via recursion on curve order and then normalized.
func HilbertDecompose(r Rect, order int, maxIntervals int) ([]Interval, error) {
	if order <= 0 || order > MaxOrder {
		return nil, errOrder(order)
	}
	if !r.Valid() {
		return nil, errRect(r)
	}
	limit := uint32(1)<<uint(order) - 1
	if r.MaxX > limit || r.MaxY > limit {
		return nil, errRectOrder(r, order)
	}
	var out []Interval
	hilbertDecompose(r, 0, 0, order, order, &out)
	sortIntervals(out)
	out = mergeAdjacent(out)
	if maxIntervals > 0 && len(out) > maxIntervals {
		out = coalesce(out, maxIntervals)
	}
	return out, nil
}

func hilbertDecompose(r Rect, qx, qy uint32, qorder, order int, out *[]Interval) {
	side := uint32(1) << uint(qorder)
	qMaxX := qx + side - 1
	qMaxY := qy + side - 1
	if qx > r.MaxX || qMaxX < r.MinX || qy > r.MaxY || qMaxY < r.MinY {
		return
	}
	if r.MinX <= qx && qMaxX <= r.MaxX && r.MinY <= qy && qMaxY <= r.MaxY {
		// A full quadrant occupies one contiguous Hilbert range starting at
		// the minimum Hilbert value among its cells; for an aligned quadrant
		// that is the value of whichever corner the curve enters first.
		// Compute it as the min of the four corners (cheap and orientation
		// independent).
		lo := HilbertEncode(qx, qy, order)
		for _, c := range [3]uint64{
			HilbertEncode(qMaxX, qy, order),
			HilbertEncode(qx, qMaxY, order),
			HilbertEncode(qMaxX, qMaxY, order),
		} {
			if c < lo {
				lo = c
			}
		}
		*out = append(*out, Interval{Lo: lo, Hi: lo + uint64(side)*uint64(side) - 1})
		return
	}
	if qorder == 0 {
		v := HilbertEncode(qx, qy, order)
		*out = append(*out, Interval{Lo: v, Hi: v})
		return
	}
	half := side / 2
	hilbertDecompose(r, qx, qy, qorder-1, order, out)
	hilbertDecompose(r, qx+half, qy, qorder-1, order, out)
	hilbertDecompose(r, qx, qy+half, qorder-1, order, out)
	hilbertDecompose(r, qx+half, qy+half, qorder-1, order, out)
}

func sortIntervals(ivs []Interval) {
	// Insertion sort: interval lists are short and mostly ordered.
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].Lo < ivs[j-1].Lo; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
}

func errOrder(order int) error { return fmtErr("order %d out of range (1..%d)", order, MaxOrder) }
func errRect(r Rect) error     { return fmtErr("invalid rectangle %+v", r) }
func errRectOrder(r Rect, o int) error {
	return fmtErr("rectangle %+v exceeds grid of order %d", r, o)
}
