package zcurve

import (
	"math"
	"sort"
)

// Sharding helpers: a space-partitioned engine assigns each shard one
// contiguous range of Hilbert values (the curve's locality makes a
// contiguous value range a compact spatial region). Query routing needs two
// geometric predicates over such ranges: "could this rectangle hold cells
// of the range?" (range-query pruning) and "how close can a cell of the
// range come to this point?" (kNN shard ordering and its global distance
// bound).

// SplitRange divides the curve's full value range on a grid of the given
// order into n contiguous, disjoint, exhaustive intervals of near-equal
// length (the first `total mod n` intervals are one value longer). n must
// be ≥ 1 and no larger than the number of curve values.
func SplitRange(order, n int) []Interval {
	total := uint64(1) << uint(2*order)
	if n < 1 {
		n = 1
	}
	if uint64(n) > total {
		n = int(total)
	}
	per := total / uint64(n)
	extra := total % uint64(n)
	out := make([]Interval, 0, n)
	var lo uint64
	for i := 0; i < n; i++ {
		size := per
		if uint64(i) < extra {
			size++
		}
		out = append(out, Interval{Lo: lo, Hi: lo + size - 1})
		lo += size
	}
	return out
}

// SplitByDensity picks the curve value at which to bisect iv so the two
// halves carry a near-equal share of the observed population: values holds
// the curve values of the objects currently stored in the range (order and
// values outside iv do not matter — they are ignored), and the returned
// cut is the last value of the LEFT half, i.e. the range splits into
// [iv.Lo, at] and [at+1, iv.Hi]. With no observations the range bisects
// geometrically. Both halves are always non-empty value ranges; ok is
// false only when iv cannot be split at all (fewer than two curve values).
//
// The cut is placed at the population median, so a hot shard whose load
// concentrates in one sliver of its range — the rush-hour city — splits
// right through the crowd instead of down the middle of empty curve.
func SplitByDensity(iv Interval, values []uint64) (at uint64, ok bool) {
	if iv.Hi <= iv.Lo {
		return 0, false // a single value (or inverted range) cannot split
	}
	inside := make([]uint64, 0, len(values))
	for _, v := range values {
		if iv.Contains(v) {
			inside = append(inside, v)
		}
	}
	if len(inside) == 0 {
		return iv.Lo + (iv.Hi-iv.Lo)/2, true // no density signal: bisect
	}
	sort.Slice(inside, func(a, b int) bool { return inside[a] < inside[b] })
	at = inside[(len(inside)-1)/2] // lower median joins the left half
	// Clamp so both halves keep at least one curve value: at == iv.Hi
	// would leave the right half empty.
	if at >= iv.Hi {
		at = iv.Hi - 1
	}
	return at, true
}

// AnyOverlaps reports whether any interval of ivs intersects iv. Both
// sides are inclusive ranges; ivs need not be sorted.
func AnyOverlaps(ivs []Interval, iv Interval) bool {
	for _, a := range ivs {
		if a.Lo <= iv.Hi && iv.Lo <= a.Hi {
			return true
		}
	}
	return false
}

// HilbertRangeIntersectsRect reports whether any grid cell whose Hilbert
// value lies in iv falls inside the closed cell rectangle r — the
// range-query routing predicate: a shard owning iv can hold an object
// stored inside r only if this is true. Quadrants whose value run misses
// iv, or whose square misses r, are pruned without visiting their cells.
func HilbertRangeIntersectsRect(r Rect, iv Interval, order int) bool {
	if iv.Hi < iv.Lo || !r.Valid() {
		return false
	}
	return hilbertRangeIntersects(r, iv, 0, 0, order, order)
}

func hilbertRangeIntersects(r Rect, iv Interval, qx, qy uint32, qorder, order int) bool {
	side := uint32(1) << uint(qorder)
	qMaxX, qMaxY := qx+side-1, qy+side-1
	if qx > r.MaxX || qMaxX < r.MinX || qy > r.MaxY || qMaxY < r.MinY {
		return false // no spatial overlap
	}
	lo := HilbertEncode(qx, qy, order)
	for _, c := range [3]uint64{
		HilbertEncode(qMaxX, qy, order),
		HilbertEncode(qx, qMaxY, order),
		HilbertEncode(qMaxX, qMaxY, order),
	} {
		if c < lo {
			lo = c
		}
	}
	hi := lo + uint64(side)*uint64(side) - 1
	if hi < iv.Lo || lo > iv.Hi {
		return false // no value overlap
	}
	if r.MinX <= qx && qMaxX <= r.MaxX && r.MinY <= qy && qMaxY <= r.MaxY {
		// Every quadrant cell is inside r, and the value runs overlap, so
		// some cell of the quadrant carries a value in iv.
		return true
	}
	if qorder == 0 {
		return true // a single cell overlapping both constraints
	}
	half := side / 2
	return hilbertRangeIntersects(r, iv, qx, qy, qorder-1, order) ||
		hilbertRangeIntersects(r, iv, qx+half, qy, qorder-1, order) ||
		hilbertRangeIntersects(r, iv, qx, qy+half, qorder-1, order) ||
		hilbertRangeIntersects(r, iv, qx+half, qy+half, qorder-1, order)
}

// HilbertMinDist returns the minimum Euclidean distance, in continuous
// units, from the point (x, y) to the region covered by the grid cells
// whose Hilbert value lies in iv. A point inside the region has distance 0;
// an empty interval returns +Inf.
//
// The search descends the Hilbert quadrant hierarchy: a quadrant aligned at
// order q covers one contiguous run of 4^q curve values, so subtrees whose
// value run misses iv — or whose bounding square is already farther than
// the best distance found — are pruned without visiting their cells.
func (g Grid) HilbertMinDist(x, y float64, iv Interval) float64 {
	if iv.Hi < iv.Lo {
		return math.Inf(1)
	}
	best := math.Inf(1)
	g.hilbertMinDist(x, y, iv, 0, 0, g.Order, &best)
	return best
}

func (g Grid) hilbertMinDist(x, y float64, iv Interval, qx, qy uint32, qorder int, best *float64) {
	side := uint32(1) << uint(qorder)
	// The quadrant's contiguous Hilbert run starts at the minimum value
	// among its corner cells (orientation independent; see HilbertDecompose).
	qMaxX, qMaxY := qx+side-1, qy+side-1
	lo := HilbertEncode(qx, qy, g.Order)
	for _, c := range [3]uint64{
		HilbertEncode(qMaxX, qy, g.Order),
		HilbertEncode(qx, qMaxY, g.Order),
		HilbertEncode(qMaxX, qMaxY, g.Order),
	} {
		if c < lo {
			lo = c
		}
	}
	hi := lo + uint64(side)*uint64(side) - 1
	if hi < iv.Lo || lo > iv.Hi {
		return // the quadrant's value run misses the interval entirely
	}
	d := g.distToCellRect(x, y, qx, qy, qMaxX, qMaxY)
	if d >= *best {
		return // cannot improve on the best distance already found
	}
	if iv.Lo <= lo && hi <= iv.Hi {
		*best = d // every cell of the quadrant belongs to the interval
		return
	}
	if qorder == 0 {
		// A single cell with a partial run overlap means containment.
		*best = d
		return
	}
	half := side / 2
	g.hilbertMinDist(x, y, iv, qx, qy, qorder-1, best)
	g.hilbertMinDist(x, y, iv, qx+half, qy, qorder-1, best)
	g.hilbertMinDist(x, y, iv, qx, qy+half, qorder-1, best)
	g.hilbertMinDist(x, y, iv, qx+half, qy+half, qorder-1, best)
}

// distToCellRect returns the Euclidean distance from the continuous point
// (x, y) to the continuous rectangle spanned by the closed grid-cell
// rectangle [minC,maxC] × [minR,maxR]; 0 when the point is inside.
func (g Grid) distToCellRect(x, y float64, minC, minR, maxC, maxR uint32) float64 {
	cell := g.Side / float64(g.Cells())
	loX, hiX := float64(minC)*cell, float64(maxC+1)*cell
	loY, hiY := float64(minR)*cell, float64(maxR+1)*cell
	var dx, dy float64
	switch {
	case x < loX:
		dx = loX - x
	case x > hiX:
		dx = x - hiX
	}
	switch {
	case y < loY:
		dy = loY - y
	case y > hiY:
		dy = y - hiY
	}
	return math.Hypot(dx, dy)
}
