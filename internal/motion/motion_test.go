package motion

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPositionAt(t *testing.T) {
	o := Object{UID: 7, X: 10, Y: 20, VX: 1, VY: -2, T: 5}
	tests := []struct {
		t, wantX, wantY float64
	}{
		{5, 10, 20},     // at update time
		{6, 11, 18},     // one unit later
		{10, 15, 10},    // five units later
		{4, 9, 22},      // extrapolating backwards
		{5.5, 10.5, 19}, // fractional
	}
	for _, tc := range tests {
		x, y := o.PositionAt(tc.t)
		if x != tc.wantX || y != tc.wantY {
			t.Errorf("PositionAt(%g) = (%g,%g), want (%g,%g)", tc.t, x, y, tc.wantX, tc.wantY)
		}
	}
}

func TestSpeed(t *testing.T) {
	o := Object{VX: 3, VY: 4}
	if got := o.Speed(); got != 5 {
		t.Errorf("Speed() = %g, want 5", got)
	}
	if got := (Object{}).Speed(); got != 0 {
		t.Errorf("zero object Speed() = %g, want 0", got)
	}
}

func TestDistanceAt(t *testing.T) {
	o := Object{X: 0, Y: 0, VX: 1, VY: 0, T: 0}
	// At t=3 the object is at (3,0); distance to (3,4) is 4.
	if got := o.DistanceAt(3, 3, 4); got != 4 {
		t.Errorf("DistanceAt = %g, want 4", got)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	o := Object{UID: 42, X: 123.456, Y: -789.25, VX: 0.125, VY: 3, T: 99.5}
	got := DecodePayload(o.UID, EncodePayload(o))
	if got != o {
		t.Errorf("round trip = %+v, want %+v", got, o)
	}
}

func TestPayloadRoundTripProperty(t *testing.T) {
	f := func(uid uint32, x, y, vx, vy, tu float64) bool {
		o := Object{UID: UserID(uid), X: x, Y: y, VX: vx, VY: vy, T: tu}
		got := DecodePayload(o.UID, EncodePayload(o))
		// NaN != NaN, so compare bit patterns.
		eq := func(a, b float64) bool {
			return math.Float64bits(a) == math.Float64bits(b)
		}
		return got.UID == o.UID && eq(got.X, o.X) && eq(got.Y, o.Y) &&
			eq(got.VX, o.VX) && eq(got.VY, o.VY) && eq(got.T, o.T)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPayloadSpecialValues(t *testing.T) {
	for _, v := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		o := Object{UID: 1, X: v, Y: v, VX: v, VY: v, T: v}
		got := DecodePayload(1, EncodePayload(o))
		if math.Float64bits(got.X) != math.Float64bits(v) {
			t.Errorf("special value %v not preserved: got %v", v, got.X)
		}
	}
}
