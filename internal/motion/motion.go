// Package motion defines the linear moving-object model shared by the
// Bx-tree (internal/bxtree), the PEB-tree (internal/core), and the workload
// generators (internal/workload).
//
// Following the paper (Sec. 2.1) and the moving-object literature it builds
// on [13, 27, 31, 32], an object's position is a linear function of time:
//
//	x⃗(t) = x⃗ + v⃗·(t − tu)
//
// where x⃗ and v⃗ are the position and velocity recorded at the most recent
// update time tu. An object is the triple (x⃗, v⃗, tu).
package motion

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/btree"
)

// UserID identifies a moving user. It is the same 32-bit id space as
// policy.UserID and the btree KV.UID component.
type UserID uint32

// Object is a moving object's most recent update record.
type Object struct {
	UID    UserID
	X, Y   float64 // position at time T
	VX, VY float64 // velocity
	T      float64 // update time tu
}

// PositionAt returns the object's predicted position at time t by linear
// extrapolation from the last update.
func (o Object) PositionAt(t float64) (x, y float64) {
	dt := t - o.T
	return o.X + o.VX*dt, o.Y + o.VY*dt
}

// Speed returns the object's scalar speed.
func (o Object) Speed() float64 { return math.Hypot(o.VX, o.VY) }

// DistanceAt returns the Euclidean distance between the object's predicted
// position at time t and the point (qx, qy).
func (o Object) DistanceAt(t, qx, qy float64) float64 {
	x, y := o.PositionAt(t)
	return math.Hypot(x-qx, y-qy)
}

// String implements fmt.Stringer.
func (o Object) String() string {
	return fmt.Sprintf("u%d@(%.2f,%.2f)+(%.2f,%.2f)t=%.2f", o.UID, o.X, o.Y, o.VX, o.VY, o.T)
}

// Payload layout: the object state packs exactly into the btree's fixed
// 40-byte payload as five big-endian float64 fields (x, y, vx, vy, t).
// The UID travels in the composite key, not the payload.
const (
	offX  = 0
	offY  = 8
	offVX = 16
	offVY = 24
	offT  = 32
)

// EncodePayload packs the object state (without UID) into a tree payload.
func EncodePayload(o Object) btree.Payload {
	var p btree.Payload
	binary.BigEndian.PutUint64(p[offX:], math.Float64bits(o.X))
	binary.BigEndian.PutUint64(p[offY:], math.Float64bits(o.Y))
	binary.BigEndian.PutUint64(p[offVX:], math.Float64bits(o.VX))
	binary.BigEndian.PutUint64(p[offVY:], math.Float64bits(o.VY))
	binary.BigEndian.PutUint64(p[offT:], math.Float64bits(o.T))
	return p
}

// DecodePayload unpacks a tree payload into an object with the given UID.
func DecodePayload(uid UserID, p btree.Payload) Object {
	return Object{
		UID: uid,
		X:   math.Float64frombits(binary.BigEndian.Uint64(p[offX:])),
		Y:   math.Float64frombits(binary.BigEndian.Uint64(p[offY:])),
		VX:  math.Float64frombits(binary.BigEndian.Uint64(p[offVX:])),
		VY:  math.Float64frombits(binary.BigEndian.Uint64(p[offVY:])),
		T:   math.Float64frombits(binary.BigEndian.Uint64(p[offT:])),
	}
}
