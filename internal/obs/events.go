package obs

import (
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// Event is one recorded maintainer decision or notable occurrence: a
// checkpoint committed, an automatic split fired, a replica stalled, a
// query ran slow. Fields carry the decision's inputs (observed rates,
// thresholds, durations) so the log answers "why did it do that".
type Event struct {
	// Seq numbers events since open; gaps in a Recent() listing mean the
	// ring overwrote older entries.
	Seq  uint64         `json:"seq"`
	Time time.Time      `json:"time"`
	Type string         `json:"type"`
	Msg  string         `json:"msg"`
	KV   map[string]any `json:"kv,omitempty"`
}

// EventLog is a bounded ring of structured events plus an optional
// log/slog sink. Record is cold-path only (it allocates and takes a
// mutex): callers record decisions and transitions, never per-commit or
// per-query activity. A nil *EventLog drops everything.
type EventLog struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	seq  uint64
	sink *slog.Logger
}

// DefaultEventLogSize bounds an event log when the capacity is zero.
const DefaultEventLogSize = 256

// NewEventLog returns a ring holding the last capacity events
// (DefaultEventLogSize when capacity ≤ 0). sink, when non-nil,
// additionally receives every event as a structured log record.
func NewEventLog(capacity int, sink *slog.Logger) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogSize
	}
	return &EventLog{buf: make([]Event, capacity), sink: sink}
}

// Record appends one event. kv is alternating key/value pairs (slog
// style); a trailing key without a value is dropped. Duration and Time
// values are normalized to strings so the JSON rendering stays readable.
func (l *EventLog) Record(typ, msg string, kv ...any) {
	if l == nil {
		return
	}
	var m map[string]any
	if len(kv) >= 2 {
		m = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			k, ok := kv[i].(string)
			if !ok {
				k = fmt.Sprint(kv[i])
			}
			m[k] = normalizeValue(kv[i+1])
		}
	}
	l.mu.Lock()
	l.seq++
	ev := Event{Seq: l.seq, Time: time.Now(), Type: typ, Msg: msg, KV: m}
	l.buf[l.next] = ev
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		args := make([]any, 0, 2+2*len(m))
		args = append(args, "event", typ)
		for k, v := range m {
			args = append(args, k, v)
		}
		sink.Info(msg, args...)
	}
}

func normalizeValue(v any) any {
	switch t := v.(type) {
	case time.Duration:
		return t.String()
	case time.Time:
		return t.Format(time.RFC3339Nano)
	case error:
		return t.Error()
	default:
		return v
	}
}

// Recent returns up to n events, newest first (every retained event when
// n ≤ 0).
func (l *EventLog) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	if l.full {
		size = len(l.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

// Total returns the number of events ever recorded (not just retained).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}
