// Package obs is the engine's observability kernel: a metrics registry
// whose instruments the hot paths can feed with zero allocations, and a
// bounded structured event log for maintainer decisions (events.go).
//
// The design splits the cost asymmetrically. Recording — Counter.Inc,
// Gauge.Set, Histogram.Observe — is a handful of atomic adds on
// pre-registered instruments: no locks, no allocations, safe from any
// goroutine, so commit and query paths carry instrumentation at full
// speed. Reading — Gather/WriteText — takes the registry lock, runs the
// pull-based collectors, renders label strings, and sorts families; it
// allocates freely because scrapes are rare and never on a hot path.
//
// Instruments are nil-safe: every method on a nil *Counter, *Gauge,
// *Histogram, or *EventLog is a no-op, so call sites need no "is
// observability enabled" branches.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count: index i = bits.Len64(v), so
// bucket 0 holds exactly v = 0 and bucket i ≥ 1 holds 2^(i-1) ≤ v < 2^i.
// 65 buckets cover the full uint64 range with power-of-two resolution —
// ~±50% relative error, plenty for latency distributions — and make any
// two histograms mergeable by adding bucket arrays.
const histBuckets = 65

// Histogram is a fixed-bucket log-spaced histogram over uint64 samples
// (typically nanoseconds). Observe is three atomic adds: no locks, no
// allocations. Mult converts raw sample units to export units at scrape
// time (1e-9 renders nanosecond samples as Prometheus-conventional
// seconds); it never touches the hot path.
type Histogram struct {
	mult    float64
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration sample in nanoseconds, clamping
// negative values (clock steps) to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// HistSnapshot is a point-in-time copy of a histogram's state, in raw
// (pre-Mult) units. Snapshots from histograms with the same bucketing
// merge by addition.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Snapshot copies the current state. Concurrent Observes may straddle the
// copy (count and buckets are read independently); the skew is at most
// the handful of in-flight samples and monotonicity per cell still holds.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Merge adds o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) in raw
// units: the upper edge of the bucket holding the q-th sample. Zero when
// the histogram is empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, b := range s.Buckets {
		seen += b
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Mean returns the mean sample in raw units (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketUpper is bucket i's inclusive upper edge in raw units: 2^i − 1
// (bucket 0 holds only zero). The last bucket's edge is the uint64 max.
func bucketUpper(i int) float64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return float64(uint64(1)<<uint(i) - 1)
}

// metricKind tags a registered instrument for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

type metricEntry struct {
	name   string
	help   string
	kind   metricKind
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// Registry holds a set of registered instruments plus pull-based
// collectors. Registration is cold-path (allocates, takes the lock);
// recording on the returned instruments is hot-path-safe. A registry's
// constant labels are attached to every series it exports — the sharded
// router labels each engine's registry with its stable shard id this way.
type Registry struct {
	mu         sync.Mutex
	constLbls  []Label
	metrics    []*metricEntry
	collectors []func(*Emit)
}

// NewRegistry returns an empty registry whose exported series all carry
// constLabels.
func NewRegistry(constLabels ...Label) *Registry {
	return &Registry{constLbls: constLabels}
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(&metricEntry{name: name, help: help, kind: kindCounter, labels: labels, c: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(&metricEntry{name: name, help: help, kind: kindGauge, labels: labels, g: g})
	return g
}

// CounterFunc registers a pull-based counter: fn is called at scrape time.
// Use it to export counters another subsystem already maintains instead of
// double-counting on the hot path.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(&metricEntry{name: name, help: help, kind: kindCounterFunc, labels: labels, fn: fn})
}

// GaugeFunc registers a pull-based gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(&metricEntry{name: name, help: help, kind: kindGaugeFunc, labels: labels, fn: fn})
}

// Histogram registers and returns a histogram series. mult converts raw
// sample units to export units at scrape time (1e-9 for ns → s; 1 for
// dimensionless samples like records-per-fsync).
func (r *Registry) Histogram(name, help string, mult float64, labels ...Label) *Histogram {
	if mult == 0 {
		mult = 1
	}
	h := &Histogram{mult: mult}
	r.add(&metricEntry{name: name, help: help, kind: kindHistogram, labels: labels, h: h})
	return h
}

// Collect registers a collector: a callback run at every scrape that may
// emit any number of series. Collectors are how dynamic series — per-shard
// rates whose shard set changes under splits and merges — are exported
// without re-registering instruments on topology changes.
func (r *Registry) Collect(fn func(*Emit)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

func (r *Registry) add(e *metricEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, e)
}

// Sample is one exported line: a fully suffixed sample name (e.g.
// name_bucket), a pre-rendered sorted label string, and the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Family is one metric family: every sample sharing a base name, with one
// HELP/TYPE header.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram"
	Samples []Sample
}

// Emit accumulates families during a gather; collectors receive it to add
// scrape-time series.
type Emit struct {
	constLbls []Label
	fams      map[string]*Family
	order     []string
}

func newEmit() *Emit {
	return &Emit{fams: make(map[string]*Family)}
}

func (e *Emit) family(name, help, typ string) *Family {
	f, ok := e.fams[name]
	if !ok {
		f = &Family{Name: name, Help: help, Type: typ}
		e.fams[name] = f
		e.order = append(e.order, name)
	}
	return f
}

func (e *Emit) sample(name, help, typ, suffix string, v float64, labels []Label, extra ...Label) {
	f := e.family(name, help, typ)
	all := make([]Label, 0, len(e.constLbls)+len(labels)+len(extra))
	all = append(all, e.constLbls...)
	all = append(all, labels...)
	all = append(all, extra...)
	f.Samples = append(f.Samples, Sample{Name: name + suffix, Labels: renderLabels(all), Value: v})
}

// Counter emits one counter sample.
func (e *Emit) Counter(name, help string, v float64, labels ...Label) {
	e.sample(name, help, "counter", "", v, labels)
}

// Gauge emits one gauge sample.
func (e *Emit) Gauge(name, help string, v float64, labels ...Label) {
	e.sample(name, help, "gauge", "", v, labels)
}

// Histogram emits a full histogram sample set (cumulative buckets, sum,
// count) from a snapshot. Empty buckets are skipped — the cumulative
// counts at the emitted bounds stay exact — so series volume tracks the
// distribution's support, not the fixed bucket count.
func (e *Emit) Histogram(name, help string, s HistSnapshot, mult float64, labels ...Label) {
	if mult == 0 {
		mult = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if b == 0 {
			continue
		}
		le := strconv.FormatFloat(bucketUpper(i)*mult, 'g', -1, 64)
		e.sample(name, help, "histogram", "_bucket", float64(cum), labels, Label{Key: "le", Value: le})
	}
	e.sample(name, help, "histogram", "_bucket", float64(s.Count), labels, Label{Key: "le", Value: "+Inf"})
	e.sample(name, help, "histogram", "_sum", float64(s.Sum)*mult, labels)
	e.sample(name, help, "histogram", "_count", float64(s.Count), labels)
}

// gatherInto renders the registry's instruments and collectors into e.
func (r *Registry) gatherInto(e *Emit) {
	r.mu.Lock()
	metrics := append([]*metricEntry(nil), r.metrics...)
	collectors := make([]func(*Emit), len(r.collectors))
	copy(collectors, r.collectors)
	constLbls := r.constLbls
	r.mu.Unlock()

	saved := e.constLbls
	e.constLbls = constLbls
	defer func() { e.constLbls = saved }()

	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			e.Counter(m.name, m.help, float64(m.c.Value()), m.labels...)
		case kindGauge:
			e.Gauge(m.name, m.help, m.g.Value(), m.labels...)
		case kindCounterFunc:
			e.Counter(m.name, m.help, m.fn(), m.labels...)
		case kindGaugeFunc:
			e.Gauge(m.name, m.help, m.fn(), m.labels...)
		case kindHistogram:
			e.Histogram(m.name, m.help, m.h.Snapshot(), m.h.mult, m.labels...)
		}
	}
	for _, fn := range collectors {
		fn(e)
	}
}

// WriteText renders every registry's series in the Prometheus text
// exposition format, merging families that appear in several registries
// (the sharded router gathers the per-shard engine registries this way)
// and sorting families by name so output is stable and golden-testable.
func WriteText(w io.Writer, regs ...*Registry) error {
	e := newEmit()
	for _, r := range regs {
		if r != nil {
			r.gatherInto(e)
		}
	}
	names := append([]string(nil), e.order...)
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := e.fams[name]
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			if s.Labels == "" {
				fmt.Fprintf(&b, "%s %s\n", s.Name, formatValue(s.Value))
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", s.Name, s.Labels, formatValue(s.Value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a label set as `k1="v1",k2="v2"` with values
// escaped per the exposition format. Label order is preserved (const
// labels first, then series labels) so related series group naturally.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
