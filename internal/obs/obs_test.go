package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusTextGolden pins the exposition format byte-for-byte: one
// HELP/TYPE header per family, families sorted by name, const labels
// before series labels, histogram buckets cumulative with empty buckets
// skipped, +Inf always present.
func TestPrometheusTextGolden(t *testing.T) {
	r := NewRegistry(Label{Key: "shard", Value: "007"})
	c := r.Counter("test_commits_total", "Commits since open.")
	c.Add(42)
	g := r.Gauge("test_size", "Indexed population.")
	g.Set(3.5)
	r.GaugeFunc("test_pull", "Pull-based value.", func() float64 { return 7 })
	h := r.Histogram("test_latency_seconds", "Latency.", 1e-9, Label{Key: "op", Value: "prq"})
	h.Observe(0)    // bucket 0, le=0
	h.Observe(1)    // bucket 1, le=1e-09
	h.Observe(1)    // bucket 1
	h.Observe(1000) // bucket 10, le=1.023e-06
	r.Collect(func(e *Emit) {
		e.Counter("test_dyn_total", "Collector-emitted.", 5, Label{Key: "k", Value: "v"})
	})

	var buf bytes.Buffer
	if err := WriteText(&buf, r); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	want := strings.Join([]string{
		`# HELP test_commits_total Commits since open.`,
		`# TYPE test_commits_total counter`,
		`test_commits_total{shard="007"} 42`,
		`# HELP test_dyn_total Collector-emitted.`,
		`# TYPE test_dyn_total counter`,
		`test_dyn_total{shard="007",k="v"} 5`,
		`# HELP test_latency_seconds Latency.`,
		`# TYPE test_latency_seconds histogram`,
		`test_latency_seconds_bucket{shard="007",op="prq",le="0"} 1`,
		`test_latency_seconds_bucket{shard="007",op="prq",le="1e-09"} 3`,
		`test_latency_seconds_bucket{shard="007",op="prq",le="1.023e-06"} 4`,
		`test_latency_seconds_bucket{shard="007",op="prq",le="+Inf"} 4`,
		`test_latency_seconds_sum{shard="007",op="prq"} 1.002e-06`,
		`test_latency_seconds_count{shard="007",op="prq"} 4`,
		`# HELP test_pull Pull-based value.`,
		`# TYPE test_pull gauge`,
		`test_pull{shard="007"} 7`,
		`# HELP test_size Indexed population.`,
		`# TYPE test_size gauge`,
		`test_size{shard="007"} 3.5`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteTextMergesRegistries proves families appearing in several
// registries render under a single HELP/TYPE header — the sharded router
// exports N per-shard registries with identical family names.
func TestWriteTextMergesRegistries(t *testing.T) {
	r1 := NewRegistry(Label{Key: "shard", Value: "000"})
	r1.Counter("merged_total", "Merged family.").Add(1)
	r2 := NewRegistry(Label{Key: "shard", Value: "001"})
	r2.Counter("merged_total", "Merged family.").Add(2)

	var buf bytes.Buffer
	if err := WriteText(&buf, r1, r2); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE merged_total counter"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1:\n%s", n, out)
	}
	for _, line := range []string{`merged_total{shard="000"} 1`, `merged_total{shard="001"} 2`} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

// TestInstrumentAllocs gates the hot-path promise: recording on every
// instrument allocates nothing.
func TestInstrumentAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", 1e-9)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveDuration(3 * time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.ObserveDuration allocates %v/op, want 0", n)
	}
}

// TestNilSafety proves every instrument and the event log are no-ops on
// nil receivers, so call sites need no enablement branches.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *EventLog
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	l.Record("x", "y", "k", 1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil instruments returned non-zero values")
	}
	if got := l.Recent(10); got != nil {
		t.Errorf("nil EventLog.Recent = %v, want nil", got)
	}
	if l.Total() != 0 {
		t.Error("nil EventLog.Total != 0")
	}
}

// TestRegistryRaceStress hammers instruments from concurrent writers
// while a scraper renders and a registrar adds series — the -race gate
// for the whole registry.
func TestRegistryRaceStress(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stress_total", "")
	g := r.Gauge("stress_gauge", "")
	h := r.Histogram("stress_seconds", "", 1e-9)
	l := NewEventLog(16, nil)
	r.Collect(func(e *Emit) {
		e.Gauge("stress_events", "", float64(l.Total()))
	})

	const writers = 8
	const iters = 2000
	var writeWG, scrapeWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(uint64(i * w))
				if i%500 == 0 {
					l.Record("stress", "tick", "writer", w, "i", i)
				}
			}
		}(w)
	}
	writeWG.Add(1)
	go func() { // late registrar races the scraper's gather
		defer writeWG.Done()
		for i := 0; i < 50; i++ {
			r.Gauge("stress_late", "", Label{Key: "i", Value: string(rune('a' + i%26))})
		}
	}()
	scrapeWG.Add(1)
	go func() { // scraper
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := WriteText(&buf, r); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
			l.Recent(8)
		}
	}()
	writeWG.Wait()
	close(stop)
	scrapeWG.Wait()

	if got := c.Value(); got != writers*iters {
		t.Errorf("counter = %d, want %d", got, writers*iters)
	}
	if s := h.Snapshot(); s.Count != writers*iters {
		t.Errorf("histogram count = %d, want %d", s.Count, writers*iters)
	}
}

// TestHistogramQuantileAndMerge checks the bucketed quantile bound and
// snapshot mergeability.
func TestHistogramQuantileAndMerge(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("q1", "", 1)
	h2 := r.Histogram("q2", "", 1)
	for i := 0; i < 90; i++ {
		h1.Observe(100) // bucket le=127
	}
	for i := 0; i < 10; i++ {
		h2.Observe(100000) // bucket le=131071
	}
	s := h1.Snapshot()
	s.Merge(h2.Snapshot())
	if s.Count != 100 {
		t.Fatalf("merged count = %d, want 100", s.Count)
	}
	if q := s.Quantile(0.5); q != 127 {
		t.Errorf("p50 = %g, want 127 (bucket upper bound of 100)", q)
	}
	if q := s.Quantile(0.99); q != 131071 {
		t.Errorf("p99 = %g, want 131071 (bucket upper bound of 100000)", q)
	}
	if m := s.Mean(); m != (90*100+10*100000)/100.0 {
		t.Errorf("mean = %g", m)
	}
}

// TestEventLogRing checks bounded retention, newest-first ordering, seq
// continuity, and the slog sink.
func TestEventLogRing(t *testing.T) {
	var sb bytes.Buffer
	sink := slog.New(slog.NewTextHandler(&sb, nil))
	l := NewEventLog(4, sink)
	for i := 0; i < 10; i++ {
		l.Record("tick", "tick happened", "i", i, "d", 3*time.Millisecond)
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	got := l.Recent(0)
	if len(got) != 4 {
		t.Fatalf("Recent(0) len = %d, want 4 (ring capacity)", len(got))
	}
	for k, ev := range got {
		if want := uint64(10 - k); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d (newest first)", k, ev.Seq, want)
		}
		if ev.Type != "tick" || ev.KV["d"] != "3ms" {
			t.Errorf("event %d = %+v, want normalized duration", k, ev)
		}
	}
	if n := l.Recent(2); len(n) != 2 || n[0].Seq != 10 {
		t.Errorf("Recent(2) = %+v", n)
	}
	if !strings.Contains(sb.String(), "event=tick") || !strings.Contains(sb.String(), "tick happened") {
		t.Errorf("slog sink missing event: %s", sb.String())
	}
}
