package core

import (
	"context"
	"sort"

	"repro/internal/btree"
	"repro/internal/bxtree"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
)

// View is a read-only snapshot of a PEB-tree used to execute queries. The
// query executors (PRQ, Sec. 5.3; PkNN, Sec. 5.4) live on View, not on
// Tree, so the read path is structurally incapable of mutating index state:
// a View has no insert/delete/encode methods, its B+-tree access goes
// through a btree.Reader whose root linkage was copied out at view time,
// and everything it touches during a query is either immutable (the
// configuration), private to the query (result accumulators), or
// synchronized (buffer-pool bookkeeping).
//
// Lifetime: a View is coherent from the moment Tree.View() returns until
// the next mutation of that tree (Insert, Delete, SetSV) begins. The
// sequence-value, current-key, and partition tables are shared with the
// owning Tree rather than copied — copying them would make every write
// O(population) — so the caller must fence views from writers externally.
// peb.DB does exactly that: it refreshes its cached View while holding the
// write lock and queries the View under the read lock, giving every query
// a consistent snapshot of the latest committed state. Any number of
// goroutines may query one View (or many Views over one tree)
// concurrently.
type View struct {
	cfg      Config
	tree     *btree.Reader
	policies *policy.Store

	svEnc map[motion.UserID]uint64
	cur   map[motion.UserID]btree.KV
	parts *bxtree.PartitionTracker
}

// View returns a read-only snapshot of the tree's current state. The
// returned View is valid until the tree's next mutation.
func (t *Tree) View() *View {
	return t.ViewIO(nil)
}

// ViewIO is View with per-handle I/O attribution: page requests made
// through the returned view are additionally recorded into io (when
// non-nil), on top of the pool's global counters. peb.DB publishes its
// query view through this so query page visits are separable from
// write-path I/O.
func (t *Tree) ViewIO(io *store.IOCounter) *View {
	return &View{
		cfg:      t.cfg,
		tree:     t.tree.ReaderIO(io),
		policies: t.policies,
		svEnc:    t.svEnc,
		cur:      t.cur,
		parts:    t.parts,
	}
}

// PinnedView returns a View that stays coherent across later mutations
// without any external fencing: the in-memory tables are deep-copied
// (O(population)), the B+-tree linkage is pinned at the current version —
// the caller must Seal() the tree first so mutations copy-on-write rather
// than rewriting reachable pages — and every page request is additionally
// recorded into io (when non-nil) for per-handle I/O statistics.
//
// The policy store is shared by reference, not copied: the owner must treat
// it as immutable while pinned views exist (peb.DB does copy-on-write
// policy mutations). The view stays valid until the owner frees the pages
// retired after the pinning seal.
func (t *Tree) PinnedView(io *store.IOCounter) *View {
	svEnc := make(map[motion.UserID]uint64, len(t.svEnc))
	for uid, sv := range t.svEnc {
		svEnc[uid] = sv
	}
	cur := make(map[motion.UserID]btree.KV, len(t.cur))
	for uid, kv := range t.cur {
		cur[uid] = kv
	}
	return &View{
		cfg:      t.cfg,
		tree:     t.tree.Reader().WithIO(io),
		policies: t.policies,
		svEnc:    svEnc,
		cur:      cur,
		parts:    t.parts.Clone(),
	}
}

// Policies returns the policy store the view evaluates queries against.
func (v *View) Policies() *policy.Store { return v.policies }

// Config returns the tree configuration the view was taken under.
func (v *View) Config() Config { return v.cfg }

// Size returns the number of indexed objects at view time.
func (v *View) Size() int { return len(v.cur) }

// LeafCount returns the number of B+-tree leaf pages at view time (the
// cost model's Nl).
func (v *View) LeafCount() int { return v.tree.LeafCount() }

// UserIDs returns the id of every indexed object at view time, sorted
// ascending. Shard recovery uses it to rebuild the user→shard map.
func (v *View) UserIDs() []motion.UserID {
	out := make([]motion.UserID, 0, len(v.cur))
	for uid := range v.cur {
		out = append(out, uid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SV returns uid's registered fixed-point sequence value.
func (v *View) SV(uid motion.UserID) (uint64, bool) {
	sv, ok := v.svEnc[uid]
	return sv, ok
}

// Get returns uid's current object state.
func (v *View) Get(uid motion.UserID) (motion.Object, bool, error) {
	kv, ok := v.cur[uid]
	if !ok {
		return motion.Object{}, false, nil
	}
	payload, found, err := v.tree.Get(kv)
	if err != nil || !found {
		return motion.Object{}, found, err
	}
	return motion.DecodePayload(uid, payload), true, nil
}

// MaxGap returns the largest window-enlargement time gap |tq − tlab| over
// the partitions currently holding objects — the worst-case staleness of
// any stored position relative to tq. A shard router multiplies it by the
// maximum speed to bound how far an object can sit from the cell its index
// key (and therefore its shard assignment) was computed from. Zero when the
// view holds no objects.
func (v *View) MaxGap(tq float64) float64 {
	var max float64
	for _, pr := range v.parts.Active(tq) {
		if pr.Gap > max {
			max = pr.Gap
		}
	}
	return max
}

// svGroup is one distinct encoded sequence value and the query issuer's
// friends that share it (distinct users can quantize to the same value).
type svGroup struct {
	sv   uint64
	uids []motion.UserID
}

// friendGroups returns the issuer's grantors — "the set of users who may
// allow the query issuer to see their locations" (Upol, Sec. 5.3 step 2) —
// grouped by encoded sequence value, ascending. Grantors without a
// registered sequence value cannot appear in the index and are skipped.
func (v *View) friendGroups(issuer motion.UserID) []svGroup {
	grantors := v.policies.Grantors(policy.UserID(issuer))
	byVal := make(map[uint64][]motion.UserID, len(grantors))
	for _, g := range grantors {
		uid := motion.UserID(g)
		if uid == issuer {
			continue
		}
		sv, ok := v.svEnc[uid]
		if !ok {
			continue
		}
		byVal[sv] = append(byVal[sv], uid)
	}
	out := make([]svGroup, 0, len(byVal))
	for sv, uids := range byVal {
		out = append(out, svGroup{sv: sv, uids: uids})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sv < out[j].sv })
	return out
}

// qualifies applies the policy predicate of Definitions 2–3: the candidate's
// exact position at tq must fall inside a policy region open to the issuer
// during tq. The location predicate (range window or kNN distance) is the
// caller's concern.
func (v *View) qualifies(candidate motion.Object, issuer motion.UserID, tq float64) bool {
	x, y := candidate.PositionAt(tq)
	return v.policies.Allows(policy.UserID(candidate.UID), policy.UserID(issuer), x, y, tq)
}

// friendSet returns the issuer's grantors as a set.
func (v *View) friendSet(issuer motion.UserID) map[motion.UserID]bool {
	out := make(map[motion.UserID]bool)
	for _, g := range v.friendGroups(issuer) {
		for _, uid := range g.uids {
			out[uid] = true
		}
	}
	return out
}

// scanRange delivers every stored object with key in [loK, hiK]. The scan
// honors ctx between leaf pages; emit returning false stops it early.
func (v *View) scanRange(ctx context.Context, loK, hiK uint64, emit func(motion.Object) bool) error {
	lo := btree.KV{Key: loK, UID: 0}
	hi := btree.KV{Key: hiK, UID: ^uint32(0)}
	return v.tree.RangeScanCtx(ctx, lo, hi, func(kv btree.KV, p btree.Payload) bool {
		return emit(motion.DecodePayload(motion.UserID(kv.UID), p))
	})
}

// scanLeafRange delivers every stored object on the leaf pages covering
// [loK, hiK] — a superset of scanRange's results at identical page I/O.
// The scan honors ctx between leaf pages; emit returning false stops it.
func (v *View) scanLeafRange(ctx context.Context, loK, hiK uint64, emit func(motion.Object) bool) error {
	lo := btree.KV{Key: loK, UID: 0}
	hi := btree.KV{Key: hiK, UID: ^uint32(0)}
	return v.tree.ScanLeavesCtx(ctx, lo, hi, func(kv btree.KV, p btree.Payload) bool {
		return emit(motion.DecodePayload(motion.UserID(kv.UID), p))
	})
}
