package core

import (
	"context"
	"math"
	"sort"
	"sync"

	"repro/internal/bxtree"
	"repro/internal/motion"
	"repro/internal/zcurve"
)

// Neighbor is one PkNN result; it reuses the Bx-tree's result shape.
type Neighbor = bxtree.Neighbor

// pknnSearch carries the state of one PkNN execution over the search matrix
// of Fig. 8: rows are the issuer's friends in ascending SV order, columns
// are window enlargement rounds, and each cell is the key range
// [TID ⊕ SV ⊕ ZVs, TID ⊕ SV ⊕ ZVe] for that friend and round.
type pknnSearch struct {
	v          *View
	ctx        context.Context
	issuer     motion.UserID
	qx, qy, tq float64
	rq         float64 // per-round radius increment (Dk/k)

	groups []svGroup
	// scanned[row][tid] is the single, monotonically growing key-range
	// chain already scanned for that friend and partition. Windows are all
	// centered at the query point, so their Z intervals form a chain and
	// one interval per (row, partition) suffices.
	scanned []map[uint64]zcurve.Interval
	// rowDone[row] is set once every friend in the row has been located
	// (the scans are leaf-opportunistic, so this usually happens on the
	// row's first visit); done rows are skipped thereafter — the paper's
	// skip rule, and the mechanism that bounds query cost by the number of
	// users related to the issuer (Sec. 6).
	rowDone []bool

	processed map[motion.UserID]bool     // decoded and policy-checked once
	found     map[motion.UserID]Neighbor // qualified candidates

	ds []float64 // kthDist scratch
}

// pknnPool recycles search state across queries: the per-row interval
// maps, the candidate sets, and the kthDist scratch are the query path's
// dominant allocations, and a steady query workload reuses them warm
// instead of re-growing them from empty every call. States are returned
// cleared (release does the clearing, so the GC-visible pool never holds
// user data longer than the next query).
var pknnPool = sync.Pool{New: func() any { return &pknnSearch{} }}

// acquirePKNN readies a pooled search state for m friend groups.
func acquirePKNN(m int) *pknnSearch {
	s := pknnPool.Get().(*pknnSearch)
	for len(s.scanned) < m {
		s.scanned = append(s.scanned, make(map[uint64]zcurve.Interval))
	}
	if cap(s.rowDone) < m {
		s.rowDone = make([]bool, m)
	}
	s.rowDone = s.rowDone[:m]
	for i := range s.rowDone {
		s.rowDone[i] = false
	}
	if s.processed == nil {
		s.processed = make(map[motion.UserID]bool)
	}
	if s.found == nil {
		s.found = make(map[motion.UserID]Neighbor)
	}
	return s
}

// release clears the search state and returns it to the pool. The cleared
// maps keep their buckets, which is the point: the next query on this
// state allocates nothing for them.
func (s *pknnSearch) release() {
	for i := range s.scanned {
		clear(s.scanned[i])
	}
	clear(s.processed)
	clear(s.found)
	s.ds = s.ds[:0]
	s.v = nil
	s.ctx = nil
	s.groups = nil
	pknnPool.Put(s)
}

// allRowsDone reports whether every friend row has been resolved.
func (s *pknnSearch) allRowsDone() bool {
	for _, d := range s.rowDone {
		if !d {
			return false
		}
	}
	return true
}

// refreshRow recomputes rowDone[r] from the processed set.
func (s *pknnSearch) refreshRow(r int) {
	if s.rowDone[r] {
		return
	}
	for _, uid := range s.groups[r].uids {
		if !s.processed[uid] {
			return
		}
	}
	s.rowDone[r] = true
}

// PKNN answers the privacy-aware k-nearest-neighbor query on the tree's
// current state. It is shorthand for t.View().PKNN(...); concurrent
// callers should take a View under their read lock instead.
func (t *Tree) PKNN(issuer motion.UserID, qx, qy float64, k int, tq float64) ([]Neighbor, error) {
	return t.View().PKNN(issuer, qx, qy, k, tq)
}

// PKNN answers the privacy-aware k-nearest-neighbor query (Definition 3):
// the k users nearest to (qx, qy) at tq among those whose policies let
// issuer see them there and then, sorted by ascending distance.
func (v *View) PKNN(issuer motion.UserID, qx, qy float64, k int, tq float64) ([]Neighbor, error) {
	return v.PKNNCtx(context.Background(), issuer, qx, qy, k, tq)
}

// PKNNCtx is PKNN with cancellation: ctx is checked between leaf pages of
// every index scan the search issues, so a canceled context stops the query
// within one page and returns ctx.Err(). A kNN result is a ranking, so
// unlike PRQStream there is no incremental form — a partial result would
// not be the k nearest.
//
// Following Sec. 5.4, the search space is a matrix of friend SVs × window
// enlargement rounds, visited in triangular (anti-diagonal) order so cells
// that are close in either policy compatibility or space are checked early
// (Fig. 9). Each cell scans only the key ranges not already covered by
// earlier rounds for that friend. Once k qualified candidates are known, a
// final vertical pass re-checks every friend within the window clamped to
// twice the k'th candidate distance (Sec. 5.4's last step), which
// guarantees no closer qualified user was missed.
func (v *View) PKNNCtx(ctx context.Context, issuer motion.UserID, qx, qy float64, k int, tq float64) ([]Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	if v.cfg.Layout == ZVFirst {
		return v.pknnZVFirst(ctx, issuer, qx, qy, k, tq)
	}
	groups := v.friendGroups(issuer)
	if len(groups) == 0 {
		return nil, nil
	}

	s := acquirePKNN(len(groups))
	defer s.release()
	s.v = v
	s.ctx = ctx
	s.issuer = issuer
	s.qx, s.qy, s.tq = qx, qy, tq
	s.rq = v.roundRadius(k)
	s.groups = groups

	// The last useful column: once the (unenlarged) window covers the whole
	// space, later columns add nothing.
	coverCol := s.coverColumn()

	m := len(groups)
	done := false
	visit := func(r, c int) (bool, error) {
		if err := s.scanCell(r, c); err != nil {
			return false, err
		}
		if len(s.found) >= k {
			if err := s.finalScan(k); err != nil {
				return false, err
			}
			return true, nil
		}
		// All friends located but fewer than k qualified: nothing left to
		// search — every possible result is already in hand.
		return s.allRowsDone(), nil
	}
	switch v.cfg.PKNNOrder {
	case ColumnMajor:
		// Ablation order: exhaust every friend per round before enlarging.
		for c := 0; c <= coverCol && !done; c++ {
			for r := 0; r < m; r++ {
				var err error
				if done, err = visit(r, c); err != nil {
					return nil, err
				}
				if done {
					break
				}
			}
		}
	default:
		// Triangular search order (Fig. 9): anti-diagonals, row 0 first.
		maxDiag := m - 1 + coverCol
		for d := 0; d <= maxDiag && !done; d++ {
			for r := 0; r <= d && r < m; r++ {
				c := d - r
				if c > coverCol {
					continue
				}
				var err error
				if done, err = visit(r, c); err != nil {
					return nil, err
				}
				if done {
					break
				}
			}
		}
	}

	out := make([]Neighbor, 0, len(s.found))
	for _, nb := range s.found {
		out = append(out, nb)
	}
	sortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// roundRadius returns the per-round window radius increment rq = Dk/k
// (Sec. 5.4), with a floor that keeps degenerate estimates from stalling
// the search.
func (v *View) roundRadius(k int) float64 {
	L := v.cfg.Base.Grid.Side
	rq := bxtree.EstimateDk(k, v.Size(), L) / float64(k)
	if rq <= 0 || math.IsNaN(rq) || math.IsInf(rq, 0) {
		rq = L / 64
	}
	return rq
}

// coverColumn returns the smallest column index whose window covers the
// entire space from the query point.
func (s *pknnSearch) coverColumn() int {
	L := s.v.cfg.Base.Grid.Side
	r := math.Max(math.Max(s.qx, L-s.qx), math.Max(s.qy, L-s.qy))
	if r <= 0 {
		return 0
	}
	return int(math.Ceil(r/s.rq)) - 1
}

// cellInterval returns the single Z interval of the round-c window for
// partition pr — "the one interval formed by the minimum and maximum
// 1-dimensional values of the query range" (Sec. 5.4) — and whether the
// window intersects the space at all. Component-wise monotonicity of the
// Z-curve makes Encode(MinX, MinY) and Encode(MaxX, MaxY) the exact
// extremes over the rectangle.
func (s *pknnSearch) cellInterval(c int, pr bxtree.PartitionRef) (zcurve.Interval, bool) {
	radius := s.rq * float64(c+1)
	w := bxtree.Square(s.qx, s.qy, radius).Enlarge(s.v.cfg.Base.MaxSpeed * pr.Gap)
	rect, ok := s.v.cfg.Base.Grid.RectOf(w.MinX, w.MinY, w.MaxX, w.MaxY)
	if !ok {
		return zcurve.Interval{}, false
	}
	iv, err := s.v.cfg.Base.CoverInterval(rect)
	if err != nil {
		return zcurve.Interval{}, false
	}
	return iv, true
}

// scanCell scans matrix cell (row r, column c): friend group r's key range
// for the round-c window, minus ranges covered by earlier columns. Rows
// whose friends have all been located are skipped.
func (s *pknnSearch) scanCell(r, c int) error {
	if s.rowDone[r] {
		return nil
	}
	g := s.groups[r]
	for _, pr := range s.v.parts.Active(s.tq) {
		iv, ok := s.cellInterval(c, pr)
		if !ok {
			continue
		}
		if err := s.scanDelta(r, g.sv, pr.TID, iv); err != nil {
			return err
		}
	}
	s.refreshRow(r)
	return nil
}

// scanDelta scans the parts of iv not yet covered for (row, tid) and
// extends the covered chain. Intervals for a given row and partition are
// nested across columns, so the uncovered parts are at most two ranges.
func (s *pknnSearch) scanDelta(r int, sv, tid uint64, iv zcurve.Interval) error {
	prev, has := s.scanned[r][tid]
	var todo []zcurve.Interval
	switch {
	case !has:
		todo = []zcurve.Interval{iv}
	default:
		if iv.Lo < prev.Lo {
			todo = append(todo, zcurve.Interval{Lo: iv.Lo, Hi: prev.Lo - 1})
		}
		if iv.Hi > prev.Hi {
			todo = append(todo, zcurve.Interval{Lo: prev.Hi + 1, Hi: iv.Hi})
		}
		// Keep the widest extent seen (the chain property guarantees
		// iv ⊇ prev or iv ⊆ prev; union handles both).
		if prev.Lo < iv.Lo {
			iv.Lo = prev.Lo
		}
		if prev.Hi > iv.Hi {
			iv.Hi = prev.Hi
		}
	}
	s.scanned[r][tid] = iv
	for _, d := range todo {
		loK, hiK := s.v.cfg.SVRange(tid, sv, d.Lo, d.Hi)
		// Leaf-opportunistic: every entry on the fetched pages is
		// considered, so the row's friend is located the first time any
		// page of its SV band is read.
		err := s.v.scanLeafRange(s.ctx, loK, hiK, func(o motion.Object) bool {
			s.consider(o)
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// consider policy-checks a scanned candidate once and records it if it
// qualifies (the Add_to_result verification of Fig. 10).
func (s *pknnSearch) consider(o motion.Object) {
	if s.processed[o.UID] {
		return
	}
	s.processed[o.UID] = true
	if o.UID == s.issuer {
		return
	}
	if !s.v.qualifies(o, s.issuer, s.tq) {
		return
	}
	s.found[o.UID] = Neighbor{Object: o, Dist: o.DistanceAt(s.tq, s.qx, s.qy)}
}

// kthDist returns the distance of the k'th nearest qualified candidate.
func (s *pknnSearch) kthDist(k int) float64 {
	ds := s.ds[:0]
	for _, nb := range s.found {
		ds = append(ds, nb.Dist)
	}
	s.ds = ds
	sort.Float64s(ds)
	return ds[k-1]
}

// finalScan is the vertical pass of Sec. 5.4: with k candidates in hand,
// every friend's remaining range inside the window of radius d_k (the
// query square "with twice the distance to the k'th nearest candidate as
// its side length") is checked, so any unexamined closer user is found.
func (s *pknnSearch) finalScan(k int) error {
	dk := s.kthDist(k)
	for r := range s.groups {
		if s.rowDone[r] {
			continue // the row's friends are all located and verified
		}
		g := s.groups[r]
		for _, pr := range s.v.parts.Active(s.tq) {
			w := bxtree.Square(s.qx, s.qy, dk).Enlarge(s.v.cfg.Base.MaxSpeed * pr.Gap)
			rect, ok := s.v.cfg.Base.Grid.RectOf(w.MinX, w.MinY, w.MaxX, w.MaxY)
			if !ok {
				continue
			}
			iv, err := s.v.cfg.Base.CoverInterval(rect)
			if err != nil {
				return err
			}
			if err := s.scanDelta(r, g.sv, pr.TID, iv); err != nil {
				return err
			}
		}
	}
	return nil
}

// pknnZVFirst answers PkNN on the ablation layout: the friend dimension
// cannot prune the scan, so windows are enlarged round by round scanning
// the full SV span, exactly like a privacy-unaware kNN with post-filtering.
func (v *View) pknnZVFirst(ctx context.Context, issuer motion.UserID, qx, qy float64, k int, tq float64) ([]Neighbor, error) {
	friends := v.friendSet(issuer)
	if len(friends) == 0 {
		return nil, nil
	}
	rq := v.roundRadius(k)
	L := v.cfg.Base.Grid.Side
	scanned := make(map[uint64]zcurve.Interval)
	processed := make(map[motion.UserID]bool)
	found := make(map[motion.UserID]Neighbor)

	for round := 1; ; round++ {
		radius := rq * float64(round)
		w := bxtree.Square(qx, qy, radius)
		for _, pr := range v.parts.Active(tq) {
			ew := w.Enlarge(v.cfg.Base.MaxSpeed * pr.Gap)
			rect, ok := v.cfg.Base.Grid.RectOf(ew.MinX, ew.MinY, ew.MaxX, ew.MaxY)
			if !ok {
				continue
			}
			iv, err := v.cfg.Base.CoverInterval(rect)
			if err != nil {
				return nil, err
			}
			prev, has := scanned[pr.TID]
			var todo []zcurve.Interval
			if !has {
				todo = []zcurve.Interval{iv}
			} else {
				if iv.Lo < prev.Lo {
					todo = append(todo, zcurve.Interval{Lo: iv.Lo, Hi: prev.Lo - 1})
				}
				if iv.Hi > prev.Hi {
					todo = append(todo, zcurve.Interval{Lo: prev.Hi + 1, Hi: iv.Hi})
				}
				if prev.Lo < iv.Lo {
					iv.Lo = prev.Lo
				}
				if prev.Hi > iv.Hi {
					iv.Hi = prev.Hi
				}
			}
			scanned[pr.TID] = iv
			for _, d := range todo {
				loK, hiK := v.cfg.ZVRange(pr.TID, d.Lo, d.Hi)
				err := v.scanRange(ctx, loK, hiK, func(o motion.Object) bool {
					if processed[o.UID] {
						return true
					}
					processed[o.UID] = true
					if o.UID == issuer || !friends[o.UID] {
						return true
					}
					if !v.qualifies(o, issuer, tq) {
						return true
					}
					found[o.UID] = Neighbor{Object: o, Dist: o.DistanceAt(tq, qx, qy)}
					return true
				})
				if err != nil {
					return nil, err
				}
			}
		}
		within := 0
		for _, nb := range found {
			if nb.Dist <= radius {
				within++
			}
		}
		covered := w.MinX <= 0 && w.MinY <= 0 && w.MaxX >= L && w.MaxY >= L
		if within >= k || covered {
			break
		}
	}

	out := make([]Neighbor, 0, len(found))
	for _, nb := range found {
		out = append(out, nb)
	}
	sortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// sortNeighbors orders by ascending distance, ties by user id.
func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].Object.UID < ns[j].Object.UID
	})
}
