package core

import (
	"fmt"

	"repro/internal/bxtree"
	"repro/internal/policy"
)

// KeyLayout selects the component order inside a PEB key. The paper's
// design places the sequence value above the location value ("the
// construction of the PEB key gives higher priority to sequence values than
// to location mapping values", Sec. 5.2); the inverted layout exists for an
// ablation benchmark that demonstrates why that choice matters.
type KeyLayout int

const (
	// SVFirst is the paper's layout: PEB key = [TID]₂ ⊕ [SV]₂ ⊕ [ZV]₂ (Eq. 5).
	SVFirst KeyLayout = iota
	// ZVFirst is the ablation layout: PEB key = [TID]₂ ⊕ [ZV]₂ ⊕ [SV]₂.
	ZVFirst
)

// String implements fmt.Stringer.
func (l KeyLayout) String() string {
	switch l {
	case SVFirst:
		return "sv-first"
	case ZVFirst:
		return "zv-first"
	default:
		return fmt.Sprintf("KeyLayout(%d)", int(l))
	}
}

// SearchOrder selects how PkNN visits the friend × enlargement-round
// search matrix of Fig. 8. The paper argues for the triangular order of
// Fig. 9; column-major order exists for an ablation benchmark.
type SearchOrder int

const (
	// Triangular visits anti-diagonals (Fig. 9), interleaving policy
	// proximity and spatial proximity.
	Triangular SearchOrder = iota
	// ColumnMajor exhausts every friend at each enlargement round before
	// growing the window (the naive order the triangular order improves on).
	ColumnMajor
)

// String implements fmt.Stringer.
func (s SearchOrder) String() string {
	switch s {
	case Triangular:
		return "triangular"
	case ColumnMajor:
		return "column-major"
	default:
		return fmt.Sprintf("SearchOrder(%d)", int(s))
	}
}

// Config fixes the PEB-tree parameters: the underlying Bx-tree machinery
// (grid, label timestamps, partitions, enlargement speed) plus the sequence
// value codec and the key component order.
type Config struct {
	// Base supplies the moving-object machinery shared with the Bx-tree.
	Base bxtree.Config
	// SV is the fixed-point codec for sequence values embedded in keys.
	SV policy.SVCodec
	// Layout selects SV-first (the paper) or ZV-first (ablation).
	Layout KeyLayout
	// PKNNOrder selects the search-matrix traversal (ablation; default
	// Triangular, the paper's order).
	PKNNOrder SearchOrder
}

// Default sequence-value field sizing: 26 bits total with 6 fraction bits
// stores values up to 2^20 at resolution 1/64. With δ = 2 the largest
// assigned value is about 2·N + 2, so 2^20 covers well past the paper's
// maximum of 100 K users, and 1/64 resolves the 1 − C(u1,u2) offsets, which
// lie in [0, 1).
const (
	DefaultSVBits     = 26
	DefaultSVFracBits = 6
)

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig() Config {
	return Config{
		Base:   bxtree.DefaultConfig(),
		SV:     policy.SVCodec{Bits: DefaultSVBits, FracBits: DefaultSVFracBits},
		Layout: SVFirst,
	}
}

// Validate checks the configuration and fills defaulted fields.
func (c *Config) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.SV.Bits <= 0 || c.SV.FracBits < 0 || c.SV.FracBits >= c.SV.Bits {
		return fmt.Errorf("core: invalid SV codec %+v", c.SV)
	}
	if c.Layout != SVFirst && c.Layout != ZVFirst {
		return fmt.Errorf("core: invalid key layout %d", int(c.Layout))
	}
	if c.PKNNOrder != Triangular && c.PKNNOrder != ColumnMajor {
		return fmt.Errorf("core: invalid PkNN search order %d", int(c.PKNNOrder))
	}
	total := c.Base.TIDBits() + c.SV.Bits + 2*c.Base.Grid.Order
	if total > 64 {
		return fmt.Errorf("core: key layout needs %d bits (tid %d + sv %d + zv %d), max 64",
			total, c.Base.TIDBits(), c.SV.Bits, 2*c.Base.Grid.Order)
	}
	return nil
}

// zvBits returns the width of the location component.
func (c Config) zvBits() int { return 2 * c.Base.Grid.Order }

// Key assembles a PEB key from its three components (Eq. 5).
func (c Config) Key(tid, sv, zv uint64) uint64 {
	switch c.Layout {
	case ZVFirst:
		return tid<<(c.SV.Bits+c.zvBits()) | zv<<c.SV.Bits | sv
	default:
		return tid<<(c.SV.Bits+c.zvBits()) | sv<<c.zvBits() | zv
	}
}

// SVRange returns the key interval covering partition tid, sequence value
// sv, and location values [zlo, zhi] under the SV-first layout — the
// [TID ⊕ SV ⊕ ZVs, TID ⊕ SV ⊕ ZVe] search ranges of Sec. 5.3.
func (c Config) SVRange(tid, sv, zlo, zhi uint64) (uint64, uint64) {
	return c.Key(tid, sv, zlo), c.Key(tid, sv, zhi)
}

// ZVRange returns the key interval covering partition tid, location values
// [zlo, zhi], and the full SV span under the ZV-first ablation layout.
func (c Config) ZVRange(tid, zlo, zhi uint64) (uint64, uint64) {
	maxSV := uint64(1)<<uint(c.SV.Bits) - 1
	return c.Key(tid, 0, zlo), c.Key(tid, maxSV, zhi)
}
