package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bxtree"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
)

const testDayLen = 1440.0

// fixture bundles a policy store, objects, and a PEB-tree built over them.
type fixture struct {
	cfg    Config
	pol    *policy.Store
	objs   []motion.Object
	assign policy.Assignment
	tree   *Tree
}

// buildFixture creates n users with random motion and, for each, policies
// toward `friends` random peers. Policies use random sub-rectangles and
// time intervals so that policy evaluation outcomes vary by query location
// and time. Some pairs are made mutual to exercise both α cases.
func buildFixture(t *testing.T, rng *rand.Rand, cfg Config, n, friends int) *fixture {
	t.Helper()
	space := policy.Region{MinX: 0, MinY: 0, MaxX: cfg.Base.Grid.Side, MaxY: cfg.Base.Grid.Side}
	pol, err := policy.NewStore(space, testDayLen)
	if err != nil {
		t.Fatal(err)
	}

	objs := make([]motion.Object, n)
	for i := range objs {
		speed := rng.Float64() * cfg.Base.MaxSpeed
		dir := rng.Float64() * 2 * math.Pi
		objs[i] = motion.Object{
			UID: motion.UserID(i + 1),
			X:   rng.Float64() * cfg.Base.Grid.Side,
			Y:   rng.Float64() * cfg.Base.Grid.Side,
			VX:  speed * math.Cos(dir),
			VY:  speed * math.Sin(dir),
			T:   rng.Float64() * 60,
		}
	}

	randPolicy := func(role policy.Role) policy.Policy {
		w := 200 + rng.Float64()*700
		h := 200 + rng.Float64()*700
		x := rng.Float64() * (cfg.Base.Grid.Side - w)
		y := rng.Float64() * (cfg.Base.Grid.Side - h)
		start := rng.Float64() * testDayLen
		dur := testDayLen * (0.25 + rng.Float64()*0.5)
		return policy.Policy{
			Role: role,
			Locr: policy.Region{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h},
			Tint: policy.TimeInterval{Start: start, End: math.Mod(start+dur, testDayLen)},
		}
	}

	users := make([]policy.UserID, n)
	for i := range users {
		users[i] = policy.UserID(i + 1)
	}
	for i := 0; i < n; i++ {
		owner := users[i]
		for f := 0; f < friends; f++ {
			peer := users[rng.Intn(n)]
			if peer == owner {
				continue
			}
			role := policy.Role(fmt.Sprintf("r%d-%d", owner, peer))
			pol.SetRelation(owner, peer, role)
			if err := pol.AddPolicy(owner, randPolicy(role)); err != nil {
				t.Fatal(err)
			}
			// Half the pairs get a reverse policy too (the mutual case).
			if rng.Intn(2) == 0 {
				rrole := policy.Role(fmt.Sprintf("r%d-%d", peer, owner))
				pol.SetRelation(peer, owner, rrole)
				if err := pol.AddPolicy(peer, randPolicy(rrole)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	assign, err := policy.AssignSequenceValues(pol, users, policy.AssignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool := store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages)
	tree, err := New(cfg, pool, pol, assign)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	return &fixture{cfg: cfg, pol: pol, objs: objs, assign: assign, tree: tree}
}

// brutePRQ applies Definition 2 literally.
func (f *fixture) brutePRQ(issuer motion.UserID, w bxtree.Window, tq float64) map[motion.UserID]bool {
	out := make(map[motion.UserID]bool)
	for _, o := range f.objs {
		if o.UID == issuer {
			continue
		}
		x, y := o.PositionAt(tq)
		if w.Contains(x, y) && f.pol.Allows(policy.UserID(o.UID), policy.UserID(issuer), x, y, tq) {
			out[o.UID] = true
		}
	}
	return out
}

// brutePKNN applies Definition 3 literally.
func (f *fixture) brutePKNN(issuer motion.UserID, qx, qy float64, k int, tq float64) []motion.UserID {
	type cand struct {
		uid  motion.UserID
		dist float64
	}
	var cands []cand
	for _, o := range f.objs {
		if o.UID == issuer {
			continue
		}
		x, y := o.PositionAt(tq)
		if f.pol.Allows(policy.UserID(o.UID), policy.UserID(issuer), x, y, tq) {
			cands = append(cands, cand{o.UID, math.Hypot(x-qx, y-qy)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].uid < cands[j].uid
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]motion.UserID, len(cands))
	for i, c := range cands {
		out[i] = c.uid
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.SV.Bits = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero SV bits accepted")
	}
	bad = DefaultConfig()
	bad.SV = policy.SVCodec{Bits: 8, FracBits: 8}
	if err := bad.Validate(); err == nil {
		t.Error("frac >= total bits accepted")
	}
	bad = DefaultConfig()
	bad.SV.Bits = 50 // 2 + 50 + 20 = 72 > 64
	if err := bad.Validate(); err == nil {
		t.Error("overflowing layout accepted")
	}
	bad = DefaultConfig()
	bad.Layout = KeyLayout(9)
	if err := bad.Validate(); err == nil {
		t.Error("bogus layout accepted")
	}
}

func TestKeyComponentOrder(t *testing.T) {
	cfg := DefaultConfig()
	// SV-first: a larger SV must dominate any ZV difference.
	loSV := cfg.Key(0, 10, cfg.Base.Grid.MaxValue())
	hiSV := cfg.Key(0, 11, 0)
	if loSV >= hiSV {
		t.Errorf("SV-first: key(sv=10, zv=max)=%d !< key(sv=11, zv=0)=%d", loSV, hiSV)
	}
	// TID dominates everything.
	if cfg.Key(0, 1<<20, 0) >= cfg.Key(1, 0, 0) {
		t.Error("TID does not dominate SV")
	}
	// ZV-first ablation: a larger ZV must dominate any SV difference.
	zf := cfg
	zf.Layout = ZVFirst
	loZV := zf.Key(0, 1<<uint(cfg.SV.Bits)-1, 10)
	hiZV := zf.Key(0, 0, 11)
	if loZV >= hiZV {
		t.Errorf("ZV-first: key(zv=10, sv=max)=%d !< key(zv=11, sv=0)=%d", loZV, hiZV)
	}
}

func TestKeyRoundTripComponents(t *testing.T) {
	cfg := DefaultConfig()
	tid, sv, zv := uint64(2), uint64(12345), uint64(67890)
	key := cfg.Key(tid, sv, zv)
	zvBits := uint(2 * cfg.Base.Grid.Order)
	svBits := uint(cfg.SV.Bits)
	if got := key & (1<<zvBits - 1); got != zv {
		t.Errorf("zv component = %d, want %d", got, zv)
	}
	if got := key >> zvBits & (1<<svBits - 1); got != sv {
		t.Errorf("sv component = %d, want %d", got, sv)
	}
	if got := key >> (zvBits + svBits); got != tid {
		t.Errorf("tid component = %d, want %d", got, tid)
	}
}

func TestInsertRequiresSV(t *testing.T) {
	cfg := DefaultConfig()
	pol, err := policy.NewStore(policy.Region{MaxX: 1000, MaxY: 1000}, testDayLen)
	if err != nil {
		t.Fatal(err)
	}
	pool := store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages)
	tree, err := New(cfg, pool, pol, policy.Assignment{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(motion.Object{UID: 1, X: 1, Y: 1}); err == nil {
		t.Error("insert without sequence value accepted")
	}
	if err := tree.SetSV(1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(motion.Object{UID: 1, X: 1, Y: 1}); err != nil {
		t.Fatalf("insert after SetSV: %v", err)
	}
	// SV changes while indexed are rejected.
	if err := tree.SetSV(1, 3.5); err == nil {
		t.Error("SV change of indexed user accepted")
	}
	if err := tree.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := tree.SetSV(1, 3.5); err != nil {
		t.Errorf("SV change after delete rejected: %v", err)
	}
}

func TestInsertGetDeleteUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := buildFixture(t, rng, DefaultConfig(), 50, 3)
	o := f.objs[10]
	got, ok, err := f.tree.Get(o.UID)
	if err != nil || !ok || got != o {
		t.Fatalf("Get = %+v, %v, %v; want %+v", got, ok, err, o)
	}
	upd := o
	upd.X, upd.Y, upd.T = 5, 5, 70
	if err := f.tree.Update(upd); err != nil {
		t.Fatal(err)
	}
	if f.tree.Size() != 50 {
		t.Errorf("Size = %d, want 50", f.tree.Size())
	}
	got, ok, _ = f.tree.Get(o.UID)
	if !ok || got != upd {
		t.Errorf("Get after update = %+v, want %+v", got, upd)
	}
	if err := f.tree.Delete(o.UID); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := f.tree.Get(o.UID); ok {
		t.Error("deleted user still found")
	}
}

func testPRQAgainstBruteForce(t *testing.T, layout KeyLayout) {
	cfg := DefaultConfig()
	cfg.Layout = layout
	rng := rand.New(rand.NewSource(11))
	f := buildFixture(t, rng, cfg, 200, 8)
	for trial := 0; trial < 40; trial++ {
		issuer := motion.UserID(1 + rng.Intn(200))
		cx := rng.Float64() * cfg.Base.Grid.Side
		cy := rng.Float64() * cfg.Base.Grid.Side
		r := 50 + rng.Float64()*300
		w := bxtree.Square(cx, cy, r)
		tq := rng.Float64() * 80
		got, err := f.tree.PRQ(issuer, w, tq)
		if err != nil {
			t.Fatalf("PRQ: %v", err)
		}
		want := f.brutePRQ(issuer, w, tq)
		gotSet := make(map[motion.UserID]bool, len(got))
		for _, o := range got {
			if gotSet[o.UID] {
				t.Errorf("trial %d: duplicate result u%d", trial, o.UID)
			}
			gotSet[o.UID] = true
		}
		if len(gotSet) != len(want) {
			t.Errorf("trial %d (issuer u%d): got %d results, want %d", trial, issuer, len(gotSet), len(want))
			continue
		}
		for uid := range want {
			if !gotSet[uid] {
				t.Errorf("trial %d: missing u%d", trial, uid)
			}
		}
	}
}

func TestPRQMatchesBruteForce(t *testing.T)        { testPRQAgainstBruteForce(t, SVFirst) }
func TestPRQMatchesBruteForceZVFirst(t *testing.T) { testPRQAgainstBruteForce(t, ZVFirst) }

func testPKNNAgainstBruteForce(t *testing.T, layout KeyLayout) {
	cfg := DefaultConfig()
	cfg.Layout = layout
	rng := rand.New(rand.NewSource(23))
	f := buildFixture(t, rng, cfg, 200, 8)
	for trial := 0; trial < 30; trial++ {
		issuer := motion.UserID(1 + rng.Intn(200))
		qx := rng.Float64() * cfg.Base.Grid.Side
		qy := rng.Float64() * cfg.Base.Grid.Side
		k := 1 + rng.Intn(6)
		tq := rng.Float64() * 80
		got, err := f.tree.PKNN(issuer, qx, qy, k, tq)
		if err != nil {
			t.Fatalf("PKNN: %v", err)
		}
		want := f.brutePKNN(issuer, qx, qy, k, tq)
		if len(got) != len(want) {
			t.Errorf("trial %d (issuer u%d, k=%d): got %d results, want %d",
				trial, issuer, k, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i].Object.UID != want[i] {
				t.Errorf("trial %d: neighbor %d = u%d (d=%.3f), want u%d",
					trial, i, got[i].Object.UID, got[i].Dist, want[i])
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Errorf("trial %d: unsorted results", trial)
			}
		}
	}
}

func TestPKNNMatchesBruteForce(t *testing.T)        { testPKNNAgainstBruteForce(t, SVFirst) }
func TestPKNNMatchesBruteForceZVFirst(t *testing.T) { testPKNNAgainstBruteForce(t, ZVFirst) }

func TestPRQNoFriends(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := buildFixture(t, rng, DefaultConfig(), 30, 2)
	// A user id outside the population has no grantors.
	got, err := f.tree.PRQ(9999, bxtree.Square(500, 500, 400), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("friendless issuer got %d results", len(got))
	}
	nn, err := f.tree.PKNN(9999, 500, 500, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 0 {
		t.Errorf("friendless issuer got %d neighbors", len(nn))
	}
}

func TestPKNNFewerQualifiedThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := buildFixture(t, rng, DefaultConfig(), 60, 2)
	// Ask for far more neighbors than anyone's friend count; the search must
	// exhaust the matrix and return everything qualified.
	for trial := 0; trial < 10; trial++ {
		issuer := motion.UserID(1 + rng.Intn(60))
		tq := rng.Float64() * 80
		got, err := f.tree.PKNN(issuer, 500, 500, 50, tq)
		if err != nil {
			t.Fatal(err)
		}
		want := f.brutePKNN(issuer, 500, 500, 50, tq)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Object.UID != want[i] {
				t.Errorf("trial %d: neighbor %d = u%d, want u%d", trial, i, got[i].Object.UID, want[i])
			}
		}
	}
}

func TestPKNNInvalidK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := buildFixture(t, rng, DefaultConfig(), 20, 2)
	got, err := f.tree.PKNN(1, 500, 500, 0, 10)
	if err != nil || got != nil {
		t.Errorf("k=0 = %v, %v; want nil, nil", got, err)
	}
}

func TestPRQInvalidWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := buildFixture(t, rng, DefaultConfig(), 20, 2)
	if _, err := f.tree.PRQ(1, bxtree.Window{MinX: 5, MaxX: 1}, 10); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestQueriesAfterUpdates(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(31))
	f := buildFixture(t, rng, cfg, 150, 5)
	// Fully update the population twice (Sec. 7.9's workload), re-checking
	// correctness after each round.
	for round := 0; round < 2; round++ {
		base := 60 + float64(round)*60
		for i := range f.objs {
			f.objs[i].X = rng.Float64() * cfg.Base.Grid.Side
			f.objs[i].Y = rng.Float64() * cfg.Base.Grid.Side
			f.objs[i].T = base + rng.Float64()*50
			if err := f.tree.Update(f.objs[i]); err != nil {
				t.Fatal(err)
			}
		}
		tq := base + 55
		issuer := motion.UserID(1 + rng.Intn(150))
		w := bxtree.Square(500, 500, 300)
		got, err := f.tree.PRQ(issuer, w, tq)
		if err != nil {
			t.Fatal(err)
		}
		want := f.brutePRQ(issuer, w, tq)
		if len(got) != len(want) {
			t.Fatalf("round %d: got %d, want %d", round, len(got), len(want))
		}
	}
}

func TestNoPinLeaksAfterQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := buildFixture(t, rng, DefaultConfig(), 100, 5)
	if _, err := f.tree.PRQ(3, bxtree.Square(500, 500, 200), 30); err != nil {
		t.Fatal(err)
	}
	if _, err := f.tree.PKNN(3, 500, 500, 5, 30); err != nil {
		t.Fatal(err)
	}
	if n := f.tree.Pool().PinnedPages(); n != 0 {
		t.Errorf("%d pages still pinned", n)
	}
}

// TestSVFirstClustersFriends verifies the design claim of Sec. 5.2: with
// SV-first keys, a user's policy-related peers occupy a narrower key span
// than unrelated users, so they land on fewer leaf pages.
func TestSVFirstClustersFriends(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := DefaultConfig()
	// Strongly grouped population: 10 groups of 10, policies only in-group.
	n := 100
	space := policy.Region{MaxX: cfg.Base.Grid.Side, MaxY: cfg.Base.Grid.Side}
	pol, err := policy.NewStore(space, testDayLen)
	if err != nil {
		t.Fatal(err)
	}
	users := make([]policy.UserID, n)
	for i := range users {
		users[i] = policy.UserID(i + 1)
	}
	full := policy.Policy{
		Role: "g",
		Locr: space,
		Tint: policy.TimeInterval{Start: 0, End: testDayLen / 2},
	}
	for i := 0; i < n; i++ {
		g := i / 10
		for j := g * 10; j < (g+1)*10; j++ {
			if i == j {
				continue
			}
			pol.SetRelation(users[i], users[j], "g")
		}
		if err := pol.AddPolicy(users[i], full); err != nil {
			t.Fatal(err)
		}
	}
	assign, err := policy.AssignSequenceValues(pol, users, policy.AssignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// For every user, friends' SVs must be within 1.0 of the group anchor,
	// while the next group's anchor is δ = 2 away.
	for i := 0; i < n; i++ {
		u := users[i]
		for j := i / 10 * 10; j < (i/10+1)*10; j++ {
			v := users[j]
			d := math.Abs(assign.SV[u] - assign.SV[v])
			if d >= 1.0+1e-9 {
				t.Fatalf("in-group SV distance |%g - %g| = %g >= 1", assign.SV[u], assign.SV[v], d)
			}
		}
	}
	_ = rng
}
