package core

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/bxtree"
	"repro/internal/motion"
)

// PRQ answers the privacy-aware range query (Definition 2): all users whose
// position at tq lies inside w and whose privacy policy lets issuer see
// them there and then.
//
// Following Sec. 5.3, the search combines the location constraint (the
// enlarged window's Z-value intervals) with the policy constraint (the
// issuer's friend-list sequence values): for every friend SV and every Z
// interval, the key range [TID ⊕ SV ⊕ ZVs, TID ⊕ SV ⊕ ZVe] is scanned.
// Once a friend has been located, the remaining intervals formed by that
// friend's SV are skipped — a user has only one location.
func (t *Tree) PRQ(issuer motion.UserID, w bxtree.Window, tq float64) ([]motion.Object, error) {
	if !w.Valid() {
		return nil, fmt.Errorf("core: invalid query window %v", w)
	}
	if t.cfg.Layout == ZVFirst {
		return t.prqZVFirst(issuer, w, tq)
	}

	groups := t.friendGroups(issuer)
	if len(groups) == 0 {
		return nil, nil
	}
	located := make(map[motion.UserID]bool)
	var out []motion.Object

	for _, pr := range t.parts.Active(tq) {
		ew := w.Enlarge(t.cfg.Base.MaxSpeed * pr.Gap)
		rect, ok := t.cfg.Base.Grid.RectOf(ew.MinX, ew.MinY, ew.MaxX, ew.MaxY)
		if !ok {
			continue
		}
		ivs, err := t.cfg.Base.DecomposeRect(rect)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			if allLocated(g, located) {
				continue // skip rule: every friend at this SV already found
			}
			for _, iv := range ivs {
				loK, hiK := t.cfg.SVRange(pr.TID, g.sv, iv.Lo, iv.Hi)
				// Opportunistic leaf scan: every entry on a fetched page is
				// examined, so a friend stored on the page — even outside
				// this Z interval or SV band — is located at no extra I/O,
				// and their remaining search intervals are skipped.
				err := t.scanLeafRange(loK, hiK, func(o motion.Object) {
					if located[o.UID] {
						return
					}
					located[o.UID] = true
					if x, y := o.PositionAt(tq); w.Contains(x, y) && t.qualifies(o, issuer, tq) {
						out = append(out, o)
					}
				})
				if err != nil {
					return nil, err
				}
				if allLocated(g, located) {
					break // skip remaining intervals for this SV
				}
			}
		}
	}
	return out, nil
}

// prqZVFirst answers PRQ on the ablation layout: with ZV above SV in the
// key, friend SVs cannot prune the scan, so the whole window is scanned —
// the full SV span per Z interval — and candidates are filtered afterwards,
// which is exactly the weakness the paper's SV-first ordering avoids.
func (t *Tree) prqZVFirst(issuer motion.UserID, w bxtree.Window, tq float64) ([]motion.Object, error) {
	friends := t.friendSet(issuer)
	if len(friends) == 0 {
		return nil, nil
	}
	var out []motion.Object
	for _, pr := range t.parts.Active(tq) {
		ew := w.Enlarge(t.cfg.Base.MaxSpeed * pr.Gap)
		rect, ok := t.cfg.Base.Grid.RectOf(ew.MinX, ew.MinY, ew.MaxX, ew.MaxY)
		if !ok {
			continue
		}
		ivs, err := t.cfg.Base.DecomposeRect(rect)
		if err != nil {
			return nil, err
		}
		for _, iv := range ivs {
			loK, hiK := t.cfg.ZVRange(pr.TID, iv.Lo, iv.Hi)
			err := t.scanRange(loK, hiK, func(o motion.Object) {
				if !friends[o.UID] {
					return
				}
				if x, y := o.PositionAt(tq); w.Contains(x, y) && t.qualifies(o, issuer, tq) {
					out = append(out, o)
				}
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// friendSet returns the issuer's grantors as a set.
func (t *Tree) friendSet(issuer motion.UserID) map[motion.UserID]bool {
	out := make(map[motion.UserID]bool)
	for _, g := range t.friendGroups(issuer) {
		for _, uid := range g.uids {
			out[uid] = true
		}
	}
	return out
}

// scanRange delivers every stored object with key in [loK, hiK].
func (t *Tree) scanRange(loK, hiK uint64, emit func(motion.Object)) error {
	lo := btree.KV{Key: loK, UID: 0}
	hi := btree.KV{Key: hiK, UID: ^uint32(0)}
	return t.tree.RangeScan(lo, hi, func(kv btree.KV, p btree.Payload) bool {
		emit(motion.DecodePayload(motion.UserID(kv.UID), p))
		return true
	})
}

// scanLeafRange delivers every stored object on the leaf pages covering
// [loK, hiK] — a superset of scanRange's results at identical page I/O.
func (t *Tree) scanLeafRange(loK, hiK uint64, emit func(motion.Object)) error {
	lo := btree.KV{Key: loK, UID: 0}
	hi := btree.KV{Key: hiK, UID: ^uint32(0)}
	return t.tree.ScanLeaves(lo, hi, func(kv btree.KV, p btree.Payload) bool {
		emit(motion.DecodePayload(motion.UserID(kv.UID), p))
		return true
	})
}

// allLocated reports whether every friend in the group has been located.
func allLocated(g svGroup, located map[motion.UserID]bool) bool {
	for _, uid := range g.uids {
		if !located[uid] {
			return false
		}
	}
	return true
}
