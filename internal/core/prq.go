package core

import (
	"context"
	"fmt"

	"repro/internal/bxtree"
	"repro/internal/motion"
)

// PRQ answers the privacy-aware range query on the tree's current state.
// It is shorthand for t.View().PRQ(...); concurrent callers should take a
// View under their read lock instead.
func (t *Tree) PRQ(issuer motion.UserID, w bxtree.Window, tq float64) ([]motion.Object, error) {
	return t.View().PRQ(issuer, w, tq)
}

// PRQ answers the privacy-aware range query (Definition 2): all users whose
// position at tq lies inside w and whose privacy policy lets issuer see
// them there and then. It materializes the full result; use PRQStream for
// incremental delivery and cancellation.
func (v *View) PRQ(issuer motion.UserID, w bxtree.Window, tq float64) ([]motion.Object, error) {
	var out []motion.Object
	err := v.PRQStream(context.Background(), issuer, w, tq, func(o motion.Object) bool {
		out = append(out, o)
		return true
	})
	return out, err
}

// PRQStream is the streaming form of PRQ: qualified users are delivered to
// yield as the index scan discovers them, in scan order (not sorted), and
// ctx is checked between leaf pages, so a canceled context stops the query
// within one page and surfaces ctx.Err(). yield returning false ends the
// query early with a nil error.
//
// Following Sec. 5.3, the search combines the location constraint (the
// enlarged window's Z-value intervals) with the policy constraint (the
// issuer's friend-list sequence values): for every friend SV and every Z
// interval, the key range [TID ⊕ SV ⊕ ZVs, TID ⊕ SV ⊕ ZVe] is scanned.
// Once a friend has been located, the remaining intervals formed by that
// friend's SV are skipped — a user has only one location.
func (v *View) PRQStream(ctx context.Context, issuer motion.UserID, w bxtree.Window, tq float64, yield func(motion.Object) bool) error {
	if !w.Valid() {
		return fmt.Errorf("core: invalid query window %v", w)
	}
	if v.cfg.Layout == ZVFirst {
		return v.prqZVFirst(ctx, issuer, w, tq, yield)
	}

	groups := v.friendGroups(issuer)
	if len(groups) == 0 {
		return nil
	}
	located := make(map[motion.UserID]bool)
	stopped := false

	for _, pr := range v.parts.Active(tq) {
		ew := w.Enlarge(v.cfg.Base.MaxSpeed * pr.Gap)
		rect, ok := v.cfg.Base.Grid.RectOf(ew.MinX, ew.MinY, ew.MaxX, ew.MaxY)
		if !ok {
			continue
		}
		ivs, err := v.cfg.Base.DecomposeRect(rect)
		if err != nil {
			return err
		}
		for _, g := range groups {
			if allLocated(g, located) {
				continue // skip rule: every friend at this SV already found
			}
			for _, iv := range ivs {
				loK, hiK := v.cfg.SVRange(pr.TID, g.sv, iv.Lo, iv.Hi)
				// Opportunistic leaf scan: every entry on a fetched page is
				// examined, so a friend stored on the page — even outside
				// this Z interval or SV band — is located at no extra I/O,
				// and their remaining search intervals are skipped.
				err := v.scanLeafRange(ctx, loK, hiK, func(o motion.Object) bool {
					if located[o.UID] {
						return true
					}
					located[o.UID] = true
					if x, y := o.PositionAt(tq); w.Contains(x, y) && v.qualifies(o, issuer, tq) {
						if !yield(o) {
							stopped = true
							return false
						}
					}
					return true
				})
				if err != nil {
					return err
				}
				if stopped {
					return nil
				}
				if allLocated(g, located) {
					break // skip remaining intervals for this SV
				}
			}
		}
	}
	return nil
}

// prqZVFirst answers PRQ on the ablation layout: with ZV above SV in the
// key, friend SVs cannot prune the scan, so the whole window is scanned —
// the full SV span per Z interval — and candidates are filtered afterwards,
// which is exactly the weakness the paper's SV-first ordering avoids.
func (v *View) prqZVFirst(ctx context.Context, issuer motion.UserID, w bxtree.Window, tq float64, yield func(motion.Object) bool) error {
	friends := v.friendSet(issuer)
	if len(friends) == 0 {
		return nil
	}
	stopped := false
	for _, pr := range v.parts.Active(tq) {
		ew := w.Enlarge(v.cfg.Base.MaxSpeed * pr.Gap)
		rect, ok := v.cfg.Base.Grid.RectOf(ew.MinX, ew.MinY, ew.MaxX, ew.MaxY)
		if !ok {
			continue
		}
		ivs, err := v.cfg.Base.DecomposeRect(rect)
		if err != nil {
			return err
		}
		for _, iv := range ivs {
			loK, hiK := v.cfg.ZVRange(pr.TID, iv.Lo, iv.Hi)
			err := v.scanRange(ctx, loK, hiK, func(o motion.Object) bool {
				if !friends[o.UID] {
					return true
				}
				if x, y := o.PositionAt(tq); w.Contains(x, y) && v.qualifies(o, issuer, tq) {
					if !yield(o) {
						stopped = true
						return false
					}
				}
				return true
			})
			if err != nil {
				return err
			}
			if stopped {
				return nil
			}
		}
	}
	return nil
}

// allLocated reports whether every friend in the group has been located.
func allLocated(g svGroup, located map[motion.UserID]bool) bool {
	for _, uid := range g.uids {
		if !located[uid] {
			return false
		}
	}
	return true
}
