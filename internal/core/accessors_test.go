package core

import (
	"math/rand"
	"testing"
)

func TestAccessorsAndStringers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := buildFixture(t, rng, DefaultConfig(), 30, 2)
	if f.tree.Config().SV.Bits != DefaultSVBits {
		t.Error("Config mismatch")
	}
	if f.tree.Policies() != f.pol {
		t.Error("Policies mismatch")
	}
	if f.tree.LeafCount() < 1 {
		t.Error("LeafCount < 1")
	}
	if _, ok := f.tree.SV(f.objs[0].UID); !ok {
		t.Error("SV missing for indexed user")
	}
	if _, ok := f.tree.SV(99999); ok {
		t.Error("SV present for unknown user")
	}
	if SVFirst.String() != "sv-first" || ZVFirst.String() != "zv-first" {
		t.Error("KeyLayout.String mismatch")
	}
	if KeyLayout(7).String() == "" {
		t.Error("unknown KeyLayout should stringify")
	}
	if Triangular.String() != "triangular" || ColumnMajor.String() != "column-major" {
		t.Error("SearchOrder.String mismatch")
	}
	if SearchOrder(7).String() == "" {
		t.Error("unknown SearchOrder should stringify")
	}
}

func TestConfigRejectsBadSearchOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PKNNOrder = SearchOrder(9)
	if err := cfg.Validate(); err == nil {
		t.Error("bogus search order accepted")
	}
}

// TestPKNNColumnMajorCorrect: the ablation traversal must return the same
// answers as the triangular order.
func TestPKNNColumnMajorCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PKNNOrder = ColumnMajor
	rng := rand.New(rand.NewSource(61))
	f := buildFixture(t, rng, cfg, 150, 6)
	for trial := 0; trial < 15; trial++ {
		issuer := f.objs[rng.Intn(150)].UID
		qx := rng.Float64() * cfg.Base.Grid.Side
		qy := rng.Float64() * cfg.Base.Grid.Side
		k := 1 + rng.Intn(5)
		tq := rng.Float64() * 80
		got, err := f.tree.PKNN(issuer, qx, qy, k, tq)
		if err != nil {
			t.Fatal(err)
		}
		want := f.brutePKNN(issuer, qx, qy, k, tq)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Object.UID != want[i] {
				t.Errorf("trial %d: neighbor %d = u%d, want u%d", trial, i, got[i].Object.UID, want[i])
			}
		}
	}
}
