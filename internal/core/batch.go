package core

import (
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/motion"
)

// Batched index mutation. ApplyBatch applies a sequence of staged
// operations all-or-nothing: the B+-tree pages are bracketed by a
// copy-on-write transaction (btree.Txn) and the in-memory tables record a
// first-touch undo log, so a mid-batch failure restores the exact pre-batch
// tree — a reader never observes a partially applied batch even if it
// reads the tree's state directly afterwards.

// BatchOpKind enumerates the staged operations.
type BatchOpKind uint8

const (
	// OpSetSV registers a sequence value for a user (new users appearing in
	// a bulk load get their singleton anchors staged this way).
	OpSetSV BatchOpKind = iota
	// OpUpsert inserts or replaces a user's movement state.
	OpUpsert
	// OpRemove deletes a user's index entry.
	OpRemove
)

// BatchOp is one staged index mutation.
type BatchOp struct {
	Kind BatchOpKind
	Obj  motion.Object // OpUpsert
	UID  motion.UserID // OpSetSV, OpRemove
	SV   float64       // OpSetSV
}

// ingestPlan is the analyzed form of a pure-ingest batch (OpSetSV and
// OpUpsert only): the staged sequence values, and one upsert per user —
// staging order makes the last one win; earlier ones are superseded state
// nobody could ever have observed — sorted by PEB key with the key and
// partition label precomputed.
type ingestPlan struct {
	svOps []BatchOp
	items []ingestItem
}

type ingestItem struct {
	obj motion.Object
	kv  btree.KV
	li  int64
}

// planIngest analyzes a pure-ingest batch into an ingestPlan. It returns
// ok=false — apply in staging order instead — when the batch contains any
// other operation or references a user whose key is not computable.
//
// Key-ordering an ingest batch is the classic sort-before-load
// optimization: successive inserts land on the same or adjacent leaves, so
// the load dirties each page once instead of evicting and re-reading it
// per object, and an empty tree can skip per-entry descent entirely
// (btree.BulkLoad). The final state is identical to staging order: an
// upsert is a full per-user replacement, independent of order across
// distinct users.
func (t *Tree) planIngest(ops []BatchOp) (ingestPlan, bool) {
	var plan ingestPlan
	nUpsert := 0
	for i := range ops {
		switch ops[i].Kind {
		case OpSetSV:
		case OpUpsert:
			nUpsert++
		default:
			return plan, false
		}
	}

	svs := make(map[motion.UserID]uint64, len(ops)-nUpsert)
	for i := range ops {
		if ops[i].Kind == OpSetSV {
			plan.svOps = append(plan.svOps, ops[i])
			if enc, err := t.cfg.SV.Encode(ops[i].SV); err == nil {
				svs[ops[i].UID] = enc
			}
		}
	}

	// Last upsert per user wins.
	lastIdx := make(map[motion.UserID]int, nUpsert)
	for i := range ops {
		if ops[i].Kind == OpUpsert {
			lastIdx[ops[i].Obj.UID] = i
		}
	}
	plan.items = make([]ingestItem, 0, len(lastIdx))
	for uid, i := range lastIdx {
		o := ops[i].Obj
		sv, ok := svs[uid]
		if !ok {
			if sv, ok = t.svEnc[uid]; !ok {
				return ingestPlan{}, false
			}
		}
		li := t.cfg.Base.LabelIndex(o.T)
		x, y := o.PositionAt(t.cfg.Base.LabelTime(li))
		zv := t.cfg.Base.CurveValue(x, y)
		key := t.cfg.Key(t.cfg.Base.PartitionOf(li), sv, zv)
		plan.items = append(plan.items, ingestItem{
			obj: o,
			kv:  btree.KV{Key: key, UID: uint32(uid)},
			li:  li,
		})
	}
	sort.Slice(plan.items, func(a, b int) bool { return plan.items[a].kv.Less(plan.items[b].kv) })
	return plan, true
}

// ordered flattens the plan back into an op list (SetSVs first, then the
// key-sorted upserts) for the general, per-entry application path.
func (p ingestPlan) ordered() []BatchOp {
	out := make([]BatchOp, 0, len(p.svOps)+len(p.items))
	out = append(out, p.svOps...)
	for i := range p.items {
		out = append(out, BatchOp{Kind: OpUpsert, Obj: p.items[i].obj})
	}
	return out
}

// applyBulk loads a pure-ingest plan into an empty index bottom-up: staged
// sequence values are registered, then the key-sorted entries build the
// B+-tree directly (btree.BulkLoad) — every page written exactly once at a
// controlled fill — and the per-user tables are populated from the plan.
// Runs inside the caller's txn/undo bracket like the general path.
func (t *Tree) applyBulk(plan ingestPlan) error {
	for i := range plan.svOps {
		if err := t.SetSV(plan.svOps[i].UID, plan.svOps[i].SV); err != nil {
			return err
		}
	}
	items := make([]btree.Item, len(plan.items))
	for i := range plan.items {
		items[i] = btree.Item{KV: plan.items[i].kv, Payload: motion.EncodePayload(plan.items[i].obj)}
	}
	if err := t.tree.BulkLoad(items); err != nil {
		return err
	}
	for i := range plan.items {
		it := &plan.items[i]
		uid := it.obj.UID
		t.touch(uid)
		t.cur[uid] = it.kv
		t.parts.Set(uid, it.li)
	}
	return nil
}

// userState is one user's complete in-memory bookkeeping: sequence value,
// current key, and partition label. The undo log snapshots it on first
// touch.
type userState struct {
	sv      uint64
	hasSV   bool
	kv      btree.KV
	hasKV   bool
	label   int64
	hasPart bool
}

// batchUndo records the prior userState of every user the batch touches.
type batchUndo struct {
	prior map[motion.UserID]userState
}

// touch snapshots uid's state on its first mutation within a batch. It is
// a no-op outside ApplyBatch.
func (t *Tree) touch(uid motion.UserID) {
	if t.undo == nil {
		return
	}
	if _, done := t.undo.prior[uid]; done {
		return
	}
	var s userState
	s.sv, s.hasSV = t.svEnc[uid]
	s.kv, s.hasKV = t.cur[uid]
	s.label, s.hasPart = t.parts.Label(uid)
	t.undo.prior[uid] = s
}

// revert restores every touched user's state.
func (u *batchUndo) revert(t *Tree) {
	for uid, s := range u.prior {
		if s.hasSV {
			t.svEnc[uid] = s.sv
		} else {
			delete(t.svEnc, uid)
		}
		if s.hasKV {
			t.cur[uid] = s.kv
		} else {
			delete(t.cur, uid)
		}
		if s.hasPart {
			t.parts.Set(uid, s.label)
		} else {
			t.parts.Remove(uid)
		}
	}
}

// ApplyBatch applies ops atomically: on the first error the tree is rolled
// back to its pre-batch state and that error is returned. On success the
// superseded pages are left in the retired list for the owner to collect
// (TakeRetired). The caller must hold exclusive access, exactly as for
// Insert/Delete.
//
// Pure-ingest batches (SetSV and Upsert only) are reordered for buffer
// locality before application — see orderForIngest; mixed batches apply in
// staging order.
func (t *Tree) ApplyBatch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	if t.undo != nil {
		return fmt.Errorf("core: nested ApplyBatch")
	}
	plan, pureIngest := t.planIngest(ops)
	bulk := pureIngest && t.tree.Size() == 0
	if pureIngest && !bulk {
		ops = plan.ordered()
	}

	txn := t.tree.Begin()
	t.undo = &batchUndo{prior: make(map[motion.UserID]userState)}
	var err error
	if bulk {
		err = t.applyBulk(plan)
	} else {
		for i := range ops {
			op := &ops[i]
			switch op.Kind {
			case OpSetSV:
				err = t.SetSV(op.UID, op.SV)
			case OpUpsert:
				err = t.Insert(op.Obj)
			case OpRemove:
				err = t.Delete(op.UID)
			default:
				err = fmt.Errorf("core: unknown batch op kind %d", op.Kind)
			}
			if err != nil {
				err = fmt.Errorf("core: batch op %d: %w", i, err)
				break
			}
		}
	}
	undo := t.undo
	t.undo = nil
	if err != nil {
		undo.revert(t)
		if rerr := txn.Rollback(); rerr != nil {
			return fmt.Errorf("%w (rollback: %v)", err, rerr)
		}
		return err
	}
	txn.Commit()
	return nil
}
