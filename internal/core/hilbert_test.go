package core

import (
	"math/rand"
	"testing"

	"repro/internal/bxtree"
	"repro/internal/motion"
)

// The Hilbert-curve ablation must preserve query correctness: only the
// linearization changes, not the answer sets.

func TestPRQMatchesBruteForceHilbert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Base.Curve = bxtree.CurveHilbert
	rng := rand.New(rand.NewSource(51))
	f := buildFixture(t, rng, cfg, 150, 6)
	for trial := 0; trial < 25; trial++ {
		issuer := motion.UserID(1 + rng.Intn(150))
		cx := rng.Float64() * cfg.Base.Grid.Side
		cy := rng.Float64() * cfg.Base.Grid.Side
		w := bxtree.Square(cx, cy, 50+rng.Float64()*250)
		tq := rng.Float64() * 80
		got, err := f.tree.PRQ(issuer, w, tq)
		if err != nil {
			t.Fatalf("PRQ: %v", err)
		}
		want := f.brutePRQ(issuer, w, tq)
		if len(got) != len(want) {
			t.Errorf("trial %d: got %d, want %d", trial, len(got), len(want))
			continue
		}
		for _, o := range got {
			if !want[o.UID] {
				t.Errorf("trial %d: unexpected u%d", trial, o.UID)
			}
		}
	}
}

func TestPKNNMatchesBruteForceHilbert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Base.Curve = bxtree.CurveHilbert
	rng := rand.New(rand.NewSource(52))
	f := buildFixture(t, rng, cfg, 150, 6)
	for trial := 0; trial < 20; trial++ {
		issuer := motion.UserID(1 + rng.Intn(150))
		qx := rng.Float64() * cfg.Base.Grid.Side
		qy := rng.Float64() * cfg.Base.Grid.Side
		k := 1 + rng.Intn(5)
		tq := rng.Float64() * 80
		got, err := f.tree.PKNN(issuer, qx, qy, k, tq)
		if err != nil {
			t.Fatalf("PKNN: %v", err)
		}
		want := f.brutePKNN(issuer, qx, qy, k, tq)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Object.UID != want[i] {
				t.Errorf("trial %d: neighbor %d = u%d, want u%d", trial, i, got[i].Object.UID, want[i])
			}
		}
	}
}
