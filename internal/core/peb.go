// Package core implements the PEB-tree (Policy-Embedded Bx-tree), the
// paper's primary contribution (Sec. 5). The PEB-tree indexes moving users
// by a composite key that concatenates a time-partition id, a privacy-policy
// sequence value, and a Z-curve location value:
//
//	PEB key = [TID]₂ ⊕ [SV]₂ ⊕ [ZV]₂    (Eq. 5)
//
// Users who tend to be allowed to see each other's locations (compatible
// policies ⇒ nearby sequence values) and who are spatially close (nearby
// Z values) receive nearby keys and therefore land on nearby disk pages.
// The privacy-aware range query (PRQ, Sec. 5.3) and k-nearest-neighbor
// query (PkNN, Sec. 5.4) exploit this to prune by policy compatibility and
// location simultaneously.
//
// Concurrency: mutations (Insert, Delete, SetSV) require exclusive access.
// Queries execute on a View — a read-only snapshot obtained from
// Tree.View() — and any number of goroutines may query concurrently, as
// long as no mutation runs meanwhile. Callers enforce that
// single-writer/multi-reader discipline externally; peb.DB does it with a
// sync.RWMutex.
package core

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/bxtree"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
)

// Tree is a PEB-tree over a paged B+-tree.
type Tree struct {
	cfg      Config
	tree     *btree.Tree
	policies *policy.Store

	// svEnc holds each user's fixed-point sequence value; it is the output
	// of the offline policy-encoding phase (Sec. 5.1) that key generation
	// embeds into every index entry.
	svEnc map[motion.UserID]uint64

	cur   map[motion.UserID]btree.KV
	parts *bxtree.PartitionTracker

	// undo, when non-nil, records the prior state of every user the current
	// batch touches so ApplyBatch can roll back (batch.go).
	undo *batchUndo
}

// New creates an empty PEB-tree whose pages live in pool. policies supplies
// policy evaluation during queries; assignment supplies the sequence values
// computed by policy.AssignSequenceValues.
func New(cfg Config, pool *store.BufferPool, policies *policy.Store, assignment policy.Assignment) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policies == nil {
		return nil, fmt.Errorf("core: nil policy store")
	}
	bt, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:      cfg,
		tree:     bt,
		policies: policies,
		svEnc:    make(map[motion.UserID]uint64, len(assignment.SV)),
		cur:      make(map[motion.UserID]btree.KV),
		parts:    bxtree.NewPartitionTracker(cfg.Base),
	}
	for uid, sv := range assignment.SV {
		if err := t.SetSV(motion.UserID(uid), sv); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Policies returns the policy store the tree evaluates queries against.
func (t *Tree) Policies() *policy.Store { return t.policies }

// Size returns the number of indexed objects.
func (t *Tree) Size() int { return len(t.cur) }

// LeafCount returns the number of B+-tree leaf pages (the cost model's Nl).
func (t *Tree) LeafCount() int { return t.tree.LeafCount() }

// Pool returns the underlying buffer pool, for I/O accounting.
func (t *Tree) Pool() *store.BufferPool { return t.tree.Pool() }

// Pages returns every page id reachable from the tree's current root.
// Checkpoints use it to compute liveness: an allocated page that is neither
// reachable nor pinned by a snapshot is dead and may be freed.
func (t *Tree) Pages() ([]store.PageID, error) { return t.tree.WalkPages(0) }

// Reader returns a read-only B+-tree reader pinned at the current root.
// A checkpoint captures one in its cut critical section — right after
// sealing the tree — and runs the reachability sweep (Reader.WalkPages)
// against it during the lock-free build phase: sealed pages are immutable,
// so the sweep observes exactly the cut image while commits proceed.
func (t *Tree) Reader() *btree.Reader { return t.tree.Reader() }

// SetSV registers or updates uid's sequence value. Policy encoding is an
// offline phase (Sec. 5.1); re-registering a user that is currently indexed
// is rejected — delete and re-insert to move an entry.
func (t *Tree) SetSV(uid motion.UserID, sv float64) error {
	if _, indexed := t.cur[uid]; indexed {
		return fmt.Errorf("core: cannot change SV of indexed user %d", uid)
	}
	enc, err := t.cfg.SV.Encode(sv)
	if err != nil {
		return err
	}
	t.touch(uid)
	t.svEnc[uid] = enc
	return nil
}

// SetSVEnc registers uid's already-encoded sequence value directly,
// bypassing the fixed-point encoder. Replica bootstrap transfers a
// primary's registered values in their encoded form (Snapshot().SVs) —
// the float inputs are not recoverable from a live tree — so an exact
// copy must install the encodings verbatim. Like SetSV, indexed users are
// rejected.
func (t *Tree) SetSVEnc(uid motion.UserID, enc uint64) error {
	if _, indexed := t.cur[uid]; indexed {
		return fmt.Errorf("core: cannot change SV of indexed user %d", uid)
	}
	t.touch(uid)
	t.svEnc[uid] = enc
	return nil
}

// UnsetSV removes uid's sequence value, undoing a provisional SetSV after a
// failed insert so no orphan value lingers. Like SetSV, it is rejected for
// indexed users.
func (t *Tree) UnsetSV(uid motion.UserID) error {
	if _, indexed := t.cur[uid]; indexed {
		return fmt.Errorf("core: cannot unset SV of indexed user %d", uid)
	}
	t.touch(uid)
	delete(t.svEnc, uid)
	return nil
}

// SetPolicies swaps the policy store queries evaluate against. peb.DB calls
// it after a copy-on-write policy mutation; views taken before the swap
// keep their original store. The caller must hold exclusive access.
func (t *Tree) SetPolicies(p *policy.Store) error {
	if p == nil {
		return fmt.Errorf("core: nil policy store")
	}
	t.policies = p
	return nil
}

// Seal makes the current index state immutable for pinned views: later
// mutations copy-on-write instead of rewriting pages in place. Returns the
// new version (see btree.Tree.Seal).
func (t *Tree) Seal() uint64 { return t.tree.Seal() }

// Unseal returns to in-place mutation once no pinned views remain.
func (t *Tree) Unseal() { t.tree.Unseal() }

// Version returns the current seal version.
func (t *Tree) Version() uint64 { return t.tree.Version() }

// TakeRetired returns and clears the pages superseded by copy-on-write
// since the last call; the owner frees them (Pool().Release) once no pinned
// view can reach them.
func (t *Tree) TakeRetired() []store.PageID { return t.tree.TakeRetired() }

// SV returns uid's registered fixed-point sequence value.
func (t *Tree) SV(uid motion.UserID) (uint64, bool) {
	v, ok := t.svEnc[uid]
	return v, ok
}

// keyFor computes the object's PEB key: position advanced to the label
// timestamp, Z-encoded, combined with the user's sequence value (Eq. 5).
func (t *Tree) keyFor(o motion.Object) (btree.KV, int64, error) {
	sv, ok := t.svEnc[o.UID]
	if !ok {
		return btree.KV{}, 0, fmt.Errorf("core: user %d has no sequence value", o.UID)
	}
	li := t.cfg.Base.LabelIndex(o.T)
	x, y := o.PositionAt(t.cfg.Base.LabelTime(li))
	zv := t.cfg.Base.CurveValue(x, y)
	key := t.cfg.Key(t.cfg.Base.PartitionOf(li), sv, zv)
	return btree.KV{Key: key, UID: uint32(o.UID)}, li, nil
}

// Insert adds or replaces the index entry for o.UID. The user must have a
// sequence value registered (SetSV or the construction-time assignment).
func (t *Tree) Insert(o motion.Object) error {
	kv, li, err := t.keyFor(o)
	if err != nil {
		return err
	}
	t.touch(o.UID)
	if old, ok := t.cur[o.UID]; ok {
		if err := t.removeEntry(o.UID, old); err != nil {
			return err
		}
	}
	if err := t.tree.Insert(kv, motion.EncodePayload(o)); err != nil {
		return fmt.Errorf("core: insert u%d: %w", o.UID, err)
	}
	t.cur[o.UID] = kv
	t.parts.Set(o.UID, li)
	return nil
}

// Update is a synonym for Insert that documents intent at call sites.
func (t *Tree) Update(o motion.Object) error { return t.Insert(o) }

// Delete removes uid's entry. Deleting an absent user is an error.
func (t *Tree) Delete(uid motion.UserID) error {
	kv, ok := t.cur[uid]
	if !ok {
		return fmt.Errorf("core: delete of unknown user %d", uid)
	}
	return t.removeEntry(uid, kv)
}

// Get returns uid's current object state.
func (t *Tree) Get(uid motion.UserID) (motion.Object, bool, error) {
	return t.View().Get(uid)
}

func (t *Tree) removeEntry(uid motion.UserID, kv btree.KV) error {
	t.touch(uid)
	found, err := t.tree.Delete(kv)
	if err != nil {
		return fmt.Errorf("core: delete u%d: %w", uid, err)
	}
	if !found {
		return fmt.Errorf("core: entry for u%d missing from tree", uid)
	}
	t.parts.Remove(uid)
	delete(t.cur, uid)
	return nil
}
