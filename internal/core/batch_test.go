package core

import (
	"math/rand"
	"testing"

	"repro/internal/bxtree"
	"repro/internal/motion"
	"repro/internal/store"
)

// TestApplyBatchBulkEquivalence: a bulk-built tree (ApplyBatch into an
// empty index, which takes the sorted bottom-up path) must answer every
// query exactly like a tree built by incremental Insert — including when
// the batch contains superseded duplicate upserts.
func TestApplyBatchBulkEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := buildFixture(t, rng, DefaultConfig(), 400, 4)

	fresh, err := New(f.cfg, store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages), f.pol, f.assign)
	if err != nil {
		t.Fatal(err)
	}
	var ops []BatchOp
	// Stale positions first: the final upsert per user must win.
	for i, o := range f.objs {
		if i%3 == 0 {
			stale := o
			stale.X, stale.Y = rng.Float64()*1000, rng.Float64()*1000
			ops = append(ops, BatchOp{Kind: OpUpsert, Obj: stale})
		}
	}
	for _, o := range f.objs {
		ops = append(ops, BatchOp{Kind: OpUpsert, Obj: o})
	}
	if err := fresh.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}

	if fresh.Size() != f.tree.Size() {
		t.Fatalf("bulk tree size %d, incremental %d", fresh.Size(), f.tree.Size())
	}
	// Bulk build packs leaves denser than incremental splitting.
	if fresh.LeafCount() > f.tree.LeafCount() {
		t.Errorf("bulk tree has MORE leaves (%d) than incremental (%d)", fresh.LeafCount(), f.tree.LeafCount())
	}

	for trial := 0; trial < 40; trial++ {
		issuer := motion.UserID(1 + rng.Intn(400))
		tq := rng.Float64() * 120
		x0, y0 := rng.Float64()*600, rng.Float64()*600
		w := bxtree.Window{MinX: x0, MinY: y0, MaxX: x0 + 400, MaxY: y0 + 400}

		a, err := f.tree.PRQ(issuer, w, tq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.PRQ(issuer, w, tq)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[motion.UserID]bool, len(b))
		for _, o := range b {
			got[o.UID] = true
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: PRQ %d vs %d results", trial, len(a), len(b))
		}
		for _, o := range a {
			if !got[o.UID] {
				t.Fatalf("trial %d: bulk tree missing u%d", trial, o.UID)
			}
		}

		qx, qy := rng.Float64()*1000, rng.Float64()*1000
		nnA, err := f.tree.PKNN(issuer, qx, qy, 3, tq)
		if err != nil {
			t.Fatal(err)
		}
		nnB, err := fresh.PKNN(issuer, qx, qy, 3, tq)
		if err != nil {
			t.Fatal(err)
		}
		if len(nnA) != len(nnB) {
			t.Fatalf("trial %d: PKNN %d vs %d results", trial, len(nnA), len(nnB))
		}
		for i := range nnA {
			if nnA[i].Object.UID != nnB[i].Object.UID {
				t.Fatalf("trial %d: PKNN[%d] u%d vs u%d", trial, i, nnA[i].Object.UID, nnB[i].Object.UID)
			}
		}
	}

	// Point lookups agree for every user.
	for _, o := range f.objs {
		a, okA, err := f.tree.Get(o.UID)
		if err != nil {
			t.Fatal(err)
		}
		b, okB, err := fresh.Get(o.UID)
		if err != nil {
			t.Fatal(err)
		}
		if okA != okB || a != b {
			t.Fatalf("Get(u%d) diverges: %+v/%v vs %+v/%v", o.UID, a, okA, b, okB)
		}
	}
}

// TestApplyBatchGeneralPath exercises the in-order path (mixed ops on a
// non-empty tree): upserts, moves, and removes applied atomically.
func TestApplyBatchGeneralPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := buildFixture(t, rng, DefaultConfig(), 200, 3)

	moved := f.objs[10]
	moved.X, moved.Y = 12, 34
	ops := []BatchOp{
		{Kind: OpUpsert, Obj: moved},
		{Kind: OpRemove, UID: f.objs[20].UID},
		{Kind: OpRemove, UID: f.objs[21].UID},
	}
	if err := f.tree.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := f.tree.Get(moved.UID); !ok || got.X != 12 {
		t.Fatalf("move not applied: %+v %v", got, ok)
	}
	if _, ok, _ := f.tree.Get(f.objs[20].UID); ok {
		t.Fatal("removed user still present")
	}
	if f.tree.Size() != 198 {
		t.Fatalf("size = %d, want 198", f.tree.Size())
	}

	// A failing op (remove of the already-removed user) rolls everything
	// back, including the parts of the batch that had succeeded.
	movedAgain := f.objs[11]
	movedAgain.X, movedAgain.Y = 56, 78
	bad := []BatchOp{
		{Kind: OpUpsert, Obj: movedAgain},
		{Kind: OpRemove, UID: f.objs[20].UID}, // already gone
	}
	if err := f.tree.ApplyBatch(bad); err == nil {
		t.Fatal("batch with bad remove succeeded")
	}
	if got, _, _ := f.tree.Get(movedAgain.UID); got.X == 56 {
		t.Fatal("failed batch left an upsert applied")
	}
	if f.tree.Size() != 198 {
		t.Fatalf("size after failed batch = %d, want 198", f.tree.Size())
	}
}

// TestApplyBatchRollbackUnderDiskFault injects disk faults mid-batch and
// verifies the rollback restores a fully consistent tree once the fault
// clears: same contents, valid structure, no leaked page pins.
func TestApplyBatchRollbackUnderDiskFault(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := DefaultConfig()

	for trial := 0; trial < 20; trial++ {
		fd := &store.FaultDisk{Inner: store.NewMemDisk(), FailAfter: 1 << 30}
		pool := store.NewBufferPool(fd, 64)
		f := buildFixtureOnPool(t, rng, cfg, 300, 2, pool)

		before := make(map[motion.UserID]motion.Object, 300)
		for _, o := range f.objs {
			got, ok, err := f.tree.Get(o.UID)
			if err != nil || !ok {
				t.Fatal(err)
			}
			before[o.UID] = got
		}

		// A batch that moves half the users and removes a few, with a
		// fault armed to fire somewhere in the middle.
		var ops []BatchOp
		for i, o := range f.objs {
			if i%2 == 0 {
				moved := o
				moved.X, moved.Y = rng.Float64()*1000, rng.Float64()*1000
				moved.T += 1
				ops = append(ops, BatchOp{Kind: OpUpsert, Obj: moved})
			} else if i%11 == 1 {
				ops = append(ops, BatchOp{Kind: OpRemove, UID: o.UID})
			}
		}
		fd.FailAfter = 5 + rng.Intn(80)
		err := f.tree.ApplyBatch(ops)
		if err == nil {
			// Fault didn't fire during this batch; try a later trial.
			fd.FailAfter = 1 << 30
			continue
		}
		fd.FailAfter = 1 << 30

		if n := pool.PinnedPages(); n != 0 {
			t.Fatalf("trial %d: %d pages pinned after failed batch", trial, n)
		}
		if f.tree.Size() != 300 {
			t.Fatalf("trial %d: size after rollback = %d, want 300", trial, f.tree.Size())
		}
		for uid, want := range before {
			got, ok, err := f.tree.Get(uid)
			if err != nil || !ok {
				t.Fatalf("trial %d: Get(u%d) after rollback: %v %v", trial, uid, ok, err)
			}
			if got != want {
				t.Fatalf("trial %d: u%d changed across failed batch", trial, uid)
			}
		}
	}
}

// buildFixtureOnPool is buildFixture with a caller-supplied buffer pool
// (for fault injection).
func buildFixtureOnPool(t *testing.T, rng *rand.Rand, cfg Config, n, friends int, pool *store.BufferPool) *fixture {
	t.Helper()
	f := buildFixture(t, rng, cfg, n, friends)
	tree, err := New(cfg, pool, f.pol, f.assign)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range f.objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	f.tree = tree
	return f
}

// TestUnsetSV: the stage-and-withdraw cycle used by peb.DB.Upsert.
func TestUnsetSV(t *testing.T) {
	f := buildFixture(t, rand.New(rand.NewSource(1)), DefaultConfig(), 10, 1)
	const uid = motion.UserID(999)
	if err := f.tree.SetSV(uid, 123); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.tree.SV(uid); !ok {
		t.Fatal("SV not set")
	}
	if err := f.tree.UnsetSV(uid); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.tree.SV(uid); ok {
		t.Fatal("SV still present after UnsetSV")
	}
	// Indexed users are protected.
	if err := f.tree.UnsetSV(f.objs[0].UID); err == nil {
		t.Fatal("UnsetSV of indexed user succeeded")
	}
}
