package core

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/bxtree"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
)

// Snapshot captures everything a PEB-tree needs beyond its pages: the
// B+-tree linkage and the per-user sequence values (the policy-encoding
// output embedded in keys). Together with a flushed page store and a saved
// policy store, it allows reopening the index without reinsertion.
type Snapshot struct {
	Tree btree.Meta
	// SVs holds the fixed-point sequence value of every registered user
	// (indexed or not — grantors need values for query-range generation).
	SVs map[motion.UserID]uint64
}

// Snapshot returns the tree's persistence record. Flush the buffer pool
// (Pool().FlushAll()) before persisting the underlying disk.
func (t *Tree) Snapshot() Snapshot {
	svs := make(map[motion.UserID]uint64, len(t.svEnc))
	for uid, sv := range t.svEnc {
		svs[uid] = sv
	}
	return Snapshot{Tree: t.tree.Meta(), SVs: svs}
}

// Open re-attaches a PEB-tree to existing pages using a Snapshot. The
// in-memory bookkeeping (per-user keys and active time partitions) is
// rebuilt by one scan of the leaf chain; every scanned entry is validated
// against the snapshot's sequence values.
func Open(cfg Config, pool *store.BufferPool, policies *policy.Store, snap Snapshot) (*Tree, error) {
	return OpenChecked(cfg, pool, policies, snap, 0)
}

// OpenChecked is Open with structural validation against the store's size:
// maxPage, when non-zero, is the number of pages the backing device holds,
// and any node reference beyond it — or any node whose type or entry count
// is garbage — is reported as an error rather than a decode panic. Use it
// when the snapshot comes from an untrusted source, e.g. a checkpoint file
// that may be truncated or mismatched with its page file.
func OpenChecked(cfg Config, pool *store.BufferPool, policies *policy.Store, snap Snapshot, maxPage store.PageID) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policies == nil {
		return nil, fmt.Errorf("core: nil policy store")
	}
	bt, err := btree.Open(pool, snap.Tree)
	if err != nil {
		return nil, err
	}
	// Validate reachability before the leaf scan below decodes anything:
	// the scan trusts node structure, the walk does not.
	if _, err := bt.WalkPages(maxPage); err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:      cfg,
		tree:     bt,
		policies: policies,
		svEnc:    make(map[motion.UserID]uint64, len(snap.SVs)),
		cur:      make(map[motion.UserID]btree.KV),
		parts:    bxtree.NewPartitionTracker(cfg.Base),
	}
	for uid, sv := range snap.SVs {
		t.svEnc[uid] = sv
	}

	// Rebuild cur and the partition tracker from the leaf chain.
	var scanErr error
	err = bt.RangeScan(btree.KV{}, btree.KV{Key: ^uint64(0), UID: ^uint32(0)},
		func(kv btree.KV, p btree.Payload) bool {
			uid := motion.UserID(kv.UID)
			o := motion.DecodePayload(uid, p)
			wantKV, li, kerr := t.keyFor(o)
			if kerr != nil || wantKV != kv {
				scanErr = fmt.Errorf("core: entry for u%d (key %d) does not match its recomputed key", uid, kv.Key)
				return false
			}
			if _, dup := t.cur[uid]; dup {
				scanErr = fmt.Errorf("core: duplicate entries for u%d", uid)
				return false
			}
			t.cur[uid] = kv
			t.parts.Set(uid, li)
			return true
		})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	if len(t.cur) != snap.Tree.Size {
		return nil, fmt.Errorf("core: scanned %d entries, meta says %d", len(t.cur), snap.Tree.Size)
	}
	return t, nil
}
