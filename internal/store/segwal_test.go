package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// segAppendCommit appends one record and commits it.
func segAppendCommit(t *testing.T, w *SegmentedWAL, payload []byte) {
	t.Helper()
	tok, err := w.Append(payload)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Commit(tok); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestSegWALAppendReplayAcrossRolls(t *testing.T) {
	for _, policy := range []WALSyncPolicy{WALSyncAlways, WALSyncGrouped, WALSyncNone} {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			fs := NewCrashFS()
			// Tiny threshold: 20 records of 8..141 bytes force many rolls.
			w, recs, err := OpenSegmentedWAL(fs, "log", policy, 64)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 0 {
				t.Fatalf("fresh wal holds %d records", len(recs))
			}
			var want [][]byte
			for i := 0; i < 20; i++ {
				payload := bytes.Repeat([]byte{byte(i + 1)}, i*7+1)
				want = append(want, payload)
				segAppendCommit(t, w, payload)
			}
			if segs := w.Segments(); len(segs) < 3 {
				t.Fatalf("expected several segments, got %v", segs)
			}
			sealed, removed := w.SegmentStats()
			if sealed < 2 || removed != 0 {
				t.Fatalf("SegmentStats = (%d, %d), want (>=2, 0)", sealed, removed)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			_, got, err := OpenSegmentedWAL(fs, "log", policy, 64)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("reopened wal holds %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestSegWALMigratesLegacySingleFile(t *testing.T) {
	fs := NewCrashFS()
	lw, _, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	appendCommit(t, lw, []byte("alpha"))
	appendCommit(t, lw, []byte("beta"))
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}

	w, recs, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "alpha" || string(recs[1]) != "beta" {
		t.Fatalf("migrated records %q, want [alpha beta]", recs)
	}
	if ok, _ := fs.Exists("log"); ok {
		t.Fatal("legacy file survived migration")
	}
	if ok, _ := fs.Exists(SegmentWALName("log", 1)); !ok {
		t.Fatal("segment 000001 missing after migration")
	}
	// The migrated log keeps appending where the legacy one left off.
	segAppendCommit(t, w, []byte("gamma"))
	w.Close()
	_, recs, err = OpenSegmentedWAL(fs, "log", WALSyncAlways, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || string(recs[2]) != "gamma" {
		t.Fatalf("post-migration records %q", recs)
	}
}

func TestSegWALRefusesMixedGenerations(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 64)
	if err != nil {
		t.Fatal(err)
	}
	segAppendCommit(t, w, []byte("seg-era"))
	w.Close()
	// Plant a legacy-named file next to the segments.
	f, _ := fs.OpenFile("log")
	f.Sync()
	f.Close()
	if _, _, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 64); err == nil {
		t.Fatal("open accepted a directory with both generations")
	}
}

func TestSegWALDropThrough(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		segAppendCommit(t, w, bytes.Repeat([]byte{byte(i + 1)}, 40))
	}
	mark := w.Mark()
	var tail [][]byte
	for i := 0; i < 3; i++ {
		p := bytes.Repeat([]byte{byte(0xA0 + i)}, 40)
		tail = append(tail, p)
		segAppendCommit(t, w, p)
	}
	removedBytes, segs, err := w.DropThrough(mark)
	if err != nil {
		t.Fatal(err)
	}
	if segs == 0 || removedBytes == 0 {
		t.Fatalf("DropThrough removed (%d bytes, %d segments), want > 0", removedBytes, segs)
	}
	if _, removed := w.SegmentStats(); removed != uint64(segs) {
		t.Fatalf("SegmentsRemoved = %d, want %d", removed, segs)
	}
	// Dropping the same mark again is a no-op: the covered segments are
	// already gone.
	if _, n, err := w.DropThrough(mark); err != nil || n != 0 {
		t.Fatalf("second DropThrough = (%d, %v), want (0, nil)", n, err)
	}
	w.Close()

	// Reopen: records not covered by the mark survive, in order. The drop
	// may retain records before the mark (partially covered segment) but
	// must never lose one after it.
	_, recs, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < len(tail) {
		t.Fatalf("recovered %d records, want >= %d", len(recs), len(tail))
	}
	got := recs[len(recs)-len(tail):]
	for i := range tail {
		if !bytes.Equal(got[i], tail[i]) {
			t.Fatalf("tail record %d = %v, want %v", i, got[i], tail[i])
		}
	}
}

func TestSegWALTornTailOnlyInFinalSegment(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 32)
	if err != nil {
		t.Fatal(err)
	}
	segAppendCommit(t, w, bytes.Repeat([]byte{1}, 40)) // fills segment 1
	segAppendCommit(t, w, bytes.Repeat([]byte{2}, 40)) // rolls, lands in 2
	w.Close()

	// A torn tail in the final segment is truncated on open.
	last := SegmentWALName("log", 2)
	f, _ := fs.OpenFile(last)
	size, _ := f.Size()
	f.WriteAt([]byte{9, 9, 9}, size)
	f.Sync()
	f.Close()
	w2, recs, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	w2.Close()

	// The same garbage inside a sealed (non-final) segment is corruption.
	first := SegmentWALName("log", 1)
	f, _ = fs.OpenFile(first)
	size, _ = f.Size()
	f.WriteAt([]byte{9, 9, 9}, size)
	f.Sync()
	f.Close()
	if _, _, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 32); err == nil {
		t.Fatal("open accepted an invalid tail in a sealed segment")
	}
}

func TestSegWALSealedSegmentsSurvivePessimisticReboot(t *testing.T) {
	// Sealing fsyncs under every policy — even WALSyncNone — so records in
	// sealed segments must survive a power cut that drops all unsynced
	// writes, without any Commit ever having been called.
	fs := NewCrashFS()
	w, _, err := OpenSegmentedWAL(fs, "log", WALSyncNone, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := w.Append(bytes.Repeat([]byte{byte(i + 1)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	fs.CutPower()
	fs.Reboot(false)
	_, recs, err := OpenSegmentedWAL(fs, "log", WALSyncNone, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Records 0..2 were sealed by the rolls records 1..3 triggered; only
	// the final record lived solely in the unsynced active segment.
	if len(recs) < 3 {
		t.Fatalf("recovered %d records, want >= 3 (sealed segments lost)", len(recs))
	}
	for i := 0; i < 3; i++ {
		if !bytes.Equal(recs[i], bytes.Repeat([]byte{byte(i + 1)}, 40)) {
			t.Fatalf("sealed record %d corrupted", i)
		}
	}
}

func TestSegWALValidationFailuresPoison(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if _, err := w.Append([]byte("after")); err == nil {
		t.Fatal("append accepted after a refused record")
	}

	w2, _, err := OpenSegmentedWAL(fs, "log2", WALSyncAlways, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Append(make([]byte, walMaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}

	w3, _, err := OpenSegmentedWAL(fs, "log3", WALSyncAlways, 64)
	if err != nil {
		t.Fatal(err)
	}
	w3.Poison(fmt.Errorf("owner could not marshal a record"))
	if _, err := w3.Append([]byte("x")); err == nil {
		t.Fatal("append accepted on explicitly poisoned wal")
	}
}

func TestSegWALGroupCommitConcurrentAcrossRolls(t *testing.T) {
	for _, policy := range []WALSyncPolicy{WALSyncAlways, WALSyncGrouped} {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			fs := NewCrashFS()
			// Small threshold: the 200 appends roll the log dozens of times
			// while group-commit leaders are in flight.
			w, _, err := OpenSegmentedWAL(fs, "log", policy, 128)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines, per = 8, 25
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						tok, err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i)))
						if err == nil {
							err = w.Commit(tok)
						}
						if err != nil {
							errs <- err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
			appends, syncs := w.Stats()
			if appends != goroutines*per {
				t.Fatalf("appends = %d, want %d", appends, goroutines*per)
			}
			if syncs == 0 {
				t.Fatal("no syncs recorded")
			}
			w.Close()
			_, recs, err := OpenSegmentedWAL(fs, "log", policy, 128)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != goroutines*per {
				t.Fatalf("recovered %d records, want %d", len(recs), goroutines*per)
			}
		})
	}
}

func TestSegWALExistsAndRemove(t *testing.T) {
	fs := NewCrashFS()
	if ok, err := SegmentedWALExists(fs, "log"); err != nil || ok {
		t.Fatalf("exists on empty fs = (%v, %v)", ok, err)
	}
	// Legacy generation counts.
	lw, _, _ := OpenWAL(fs, "log", WALSyncAlways)
	appendCommit(t, lw, []byte("x"))
	lw.Close()
	if ok, _ := SegmentedWALExists(fs, "log"); !ok {
		t.Fatal("legacy file not detected")
	}
	if err := RemoveSegmentedWAL(fs, "log"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := SegmentedWALExists(fs, "log"); ok {
		t.Fatal("legacy file survived removal")
	}
	// Segment generation counts.
	w, _, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		segAppendCommit(t, w, bytes.Repeat([]byte{1}, 40))
	}
	w.Close()
	if ok, _ := SegmentedWALExists(fs, "log"); !ok {
		t.Fatal("segments not detected")
	}
	if err := RemoveSegmentedWAL(fs, "log"); err != nil {
		t.Fatal(err)
	}
	idxs, err := ListWALSegments(fs, "log")
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) != 0 {
		t.Fatalf("segments %v survived removal", idxs)
	}
}

func TestSegWALSizeCountsRetainedBytes(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenSegmentedWAL(fs, "log", WALSyncAlways, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		segAppendCommit(t, w, bytes.Repeat([]byte{1}, 40))
	}
	before := w.Size()
	if before != 5*48 { // 8-byte frame header + 40-byte payload each
		t.Fatalf("Size = %d, want %d", before, 5*48)
	}
	if _, _, err := w.DropThrough(w.Mark()); err != nil {
		t.Fatal(err)
	}
	after := w.Size()
	if after >= before {
		t.Fatalf("Size did not shrink: %d -> %d", before, after)
	}
	if w.BytesAppended() != uint64(before) {
		t.Fatalf("BytesAppended = %d, want %d (removal must not reset it)", w.BytesAppended(), before)
	}
}
