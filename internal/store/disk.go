package store

import (
	"fmt"
	"sort"
)

// DiskStats counts physical page operations on a DiskManager.
type DiskStats struct {
	Reads      uint64 // pages read from the disk
	Writes     uint64 // pages written to the disk
	Allocs     uint64 // pages allocated
	Frees      uint64 // pages returned to the free list
	PagesAlive uint64 // currently allocated pages
}

// DiskManager is the page-granularity storage device beneath a BufferPool.
// Implementations must tolerate re-reading a page that was never written
// (returning zeroes) because freshly allocated pages may be evicted clean.
type DiskManager interface {
	// Allocate reserves a new page and returns its id (never InvalidPageID).
	Allocate() (PageID, error)
	// Free returns a page to the allocator. Freed ids may be reused.
	Free(id PageID) error
	// Read fills buf (len PageSize) with the page's contents.
	Read(id PageID, buf []byte) error
	// Write stores buf (len PageSize) as the page's contents.
	Write(id PageID, buf []byte) error
	// Sync makes every completed Write durable (fsync). A no-op for
	// volatile devices.
	Sync() error
	// Stats returns cumulative physical I/O counters.
	Stats() DiskStats
	// ResetStats zeroes the counters (allocation gauges are preserved).
	ResetStats()
}

// MemDisk is an in-memory DiskManager that simulates a disk. It is the
// default device for experiments: the paper's metric is page-access counts,
// which MemDisk preserves exactly, while avoiding real-device noise.
//
// MemDisk is not safe for concurrent use; wrap it or the owning BufferPool
// with external synchronization if needed.
type MemDisk struct {
	pages map[PageID][]byte
	free  []PageID
	next  PageID
	stats DiskStats
}

// NewMemDisk returns an empty simulated disk.
func NewMemDisk() *MemDisk {
	return &MemDisk{pages: make(map[PageID][]byte), next: 1}
}

// Allocate implements DiskManager.
func (d *MemDisk) Allocate() (PageID, error) {
	var id PageID
	if n := len(d.free); n > 0 {
		// Reuse the smallest freed id first for deterministic layouts.
		id = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		id = d.next
		d.next++
		if d.next == 0 {
			return InvalidPageID, fmt.Errorf("store: page id space exhausted")
		}
	}
	d.pages[id] = nil // lazily materialized on first write
	d.stats.Allocs++
	d.stats.PagesAlive++
	return id, nil
}

// Free implements DiskManager.
func (d *MemDisk) Free(id PageID) error {
	if _, ok := d.pages[id]; !ok {
		return fmt.Errorf("store: free of unallocated page %d", id)
	}
	delete(d.pages, id)
	d.free = append(d.free, id)
	// Keep the free list sorted descending so Allocate pops the smallest id.
	sort.Slice(d.free, func(i, j int) bool { return d.free[i] > d.free[j] })
	d.stats.Frees++
	d.stats.PagesAlive--
	return nil
}

// Read implements DiskManager.
func (d *MemDisk) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("store: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	data, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("store: read of unallocated page %d", id)
	}
	d.stats.Reads++
	if data == nil {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, data)
	return nil
}

// Write implements DiskManager.
func (d *MemDisk) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("store: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if _, ok := d.pages[id]; !ok {
		return fmt.Errorf("store: write to unallocated page %d", id)
	}
	data := d.pages[id]
	if data == nil {
		data = make([]byte, PageSize)
		d.pages[id] = data
	}
	copy(data, buf)
	d.stats.Writes++
	return nil
}

// Sync implements DiskManager. MemDisk is volatile by definition, so there
// is nothing to make durable.
func (d *MemDisk) Sync() error { return nil }

// Stats implements DiskManager.
func (d *MemDisk) Stats() DiskStats { return d.stats }

// ResetStats implements DiskManager.
func (d *MemDisk) ResetStats() {
	alive := d.stats.PagesAlive
	d.stats = DiskStats{PagesAlive: alive}
}

// NumPages returns the number of currently allocated pages.
func (d *MemDisk) NumPages() int { return len(d.pages) }
