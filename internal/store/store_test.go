package store

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestMemDiskAllocateReadWrite(t *testing.T) {
	d := NewMemDisk()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if id == InvalidPageID {
		t.Fatalf("Allocate returned InvalidPageID")
	}

	buf := make([]byte, PageSize)
	if err := d.Read(id, buf); err != nil {
		t.Fatalf("Read fresh page: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh page byte %d = %d, want 0", i, b)
		}
	}

	out := make([]byte, PageSize)
	for i := range out {
		out[i] = byte(i % 251)
	}
	if err := d.Write(id, out); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := d.Read(id, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(buf, out) {
		t.Fatalf("read-back mismatch")
	}
}

func TestMemDiskFreeAndReuse(t *testing.T) {
	d := NewMemDisk()
	a, _ := d.Allocate()
	b, _ := d.Allocate()
	if a == b {
		t.Fatalf("two allocations returned the same id %d", a)
	}
	if err := d.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := d.Free(a); err == nil {
		t.Fatalf("double free succeeded")
	}
	c, _ := d.Allocate()
	if c != a {
		t.Errorf("freed id %d not reused; got %d", a, c)
	}
	buf := make([]byte, PageSize)
	if err := d.Read(b, buf); err != nil {
		t.Fatalf("Read of surviving page: %v", err)
	}
}

func TestMemDiskErrors(t *testing.T) {
	d := NewMemDisk()
	buf := make([]byte, PageSize)
	if err := d.Read(99, buf); err == nil {
		t.Errorf("read of unallocated page succeeded")
	}
	if err := d.Write(99, buf); err == nil {
		t.Errorf("write to unallocated page succeeded")
	}
	id, _ := d.Allocate()
	if err := d.Read(id, buf[:10]); err == nil {
		t.Errorf("short read buffer accepted")
	}
	if err := d.Write(id, buf[:10]); err == nil {
		t.Errorf("short write buffer accepted")
	}
}

func TestMemDiskStats(t *testing.T) {
	d := NewMemDisk()
	id, _ := d.Allocate()
	buf := make([]byte, PageSize)
	_ = d.Write(id, buf)
	_ = d.Read(id, buf)
	_ = d.Read(id, buf)
	s := d.Stats()
	if s.Allocs != 1 || s.Writes != 1 || s.Reads != 2 || s.PagesAlive != 1 {
		t.Fatalf("stats = %+v", s)
	}
	d.ResetStats()
	s = d.Stats()
	if s.Reads != 0 || s.PagesAlive != 1 {
		t.Fatalf("after reset, stats = %+v", s)
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 4)

	p, err := bp.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	id := p.ID()
	copy(p.Data(), []byte("hello"))
	if err := bp.Unpin(id, true); err != nil {
		t.Fatalf("Unpin: %v", err)
	}

	// Still resident: a fetch is a hit.
	p2, err := bp.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if string(p2.Data()[:5]) != "hello" {
		t.Fatalf("cached page lost contents")
	}
	_ = bp.Unpin(id, false)

	s := bp.Stats()
	if s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 hit 0 misses", s)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 2)

	p1, _ := bp.NewPage()
	id1 := p1.ID()
	copy(p1.Data(), []byte("page-one"))
	_ = bp.Unpin(id1, true)

	p2, _ := bp.NewPage()
	_ = bp.Unpin(p2.ID(), true)
	p3, _ := bp.NewPage() // evicts id1 (LRU)
	_ = bp.Unpin(p3.ID(), true)

	// id1 must have been written back; refetch goes to disk.
	p, err := bp.Fetch(id1)
	if err != nil {
		t.Fatalf("Fetch after eviction: %v", err)
	}
	if string(p.Data()[:8]) != "page-one" {
		t.Fatalf("evicted page lost contents: %q", p.Data()[:8])
	}
	_ = bp.Unpin(id1, false)

	s := bp.Stats()
	if s.Misses == 0 || s.Evictions == 0 || s.WriteBack == 0 {
		t.Fatalf("stats = %+v, want misses, evictions and write-backs", s)
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 2)

	pa, _ := bp.NewPage()
	a := pa.ID()
	_ = bp.Unpin(a, true)
	pb, _ := bp.NewPage()
	b := pb.ID()
	_ = bp.Unpin(b, true)

	// Touch a so b becomes LRU.
	p, _ := bp.Fetch(a)
	_ = bp.Unpin(p.ID(), false)

	pc, _ := bp.NewPage() // must evict b, not a
	_ = bp.Unpin(pc.ID(), true)

	bp.ResetStats()
	p, _ = bp.Fetch(a)
	_ = bp.Unpin(a, false)
	if s := bp.Stats(); s.Hits != 1 {
		t.Fatalf("a was evicted; stats after fetch(a) = %+v", s)
	}
	p, _ = bp.Fetch(b)
	_ = bp.Unpin(b, false)
	if s := bp.Stats(); s.Misses != 1 {
		t.Fatalf("b was not evicted; stats = %+v", s)
	}
	_ = p
}

func TestBufferPoolAllPinnedFails(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 1)
	p, _ := bp.NewPage()
	if _, err := bp.NewPage(); err == nil {
		t.Fatalf("NewPage with full pinned buffer succeeded")
	}
	_ = bp.Unpin(p.ID(), true)
	if _, err := bp.NewPage(); err != nil {
		t.Fatalf("NewPage after unpin: %v", err)
	}
}

func TestBufferPoolPinCounting(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 4)
	p, _ := bp.NewPage()
	id := p.ID()
	if _, err := bp.Fetch(id); err != nil { // second pin
		t.Fatalf("Fetch: %v", err)
	}
	if got := bp.PinnedPages(); got != 1 {
		t.Fatalf("PinnedPages = %d, want 1", got)
	}
	if p.PinCount() != 2 {
		t.Fatalf("PinCount = %d, want 2", p.PinCount())
	}
	_ = bp.Unpin(id, false)
	_ = bp.Unpin(id, false)
	if err := bp.Unpin(id, false); err == nil {
		t.Fatalf("over-unpin succeeded")
	}
	if got := bp.PinnedPages(); got != 0 {
		t.Fatalf("PinnedPages = %d, want 0", got)
	}
}

func TestBufferPoolDropAll(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 4)
	p, _ := bp.NewPage()
	id := p.ID()
	copy(p.Data(), []byte("persist"))

	if err := bp.DropAll(); err == nil {
		t.Fatalf("DropAll with pinned page succeeded")
	}
	_ = bp.Unpin(id, true)
	if err := bp.DropAll(); err != nil {
		t.Fatalf("DropAll: %v", err)
	}
	bp.ResetStats()
	p2, err := bp.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch after drop: %v", err)
	}
	if string(p2.Data()[:7]) != "persist" {
		t.Fatalf("contents lost across DropAll")
	}
	_ = bp.Unpin(id, false)
	if s := bp.Stats(); s.Misses != 1 {
		t.Fatalf("expected cold fetch, stats = %+v", s)
	}
}

func TestBufferPoolFreePage(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 4)
	p, _ := bp.NewPage()
	id := p.ID()
	if err := bp.FreePage(id); err != nil {
		t.Fatalf("FreePage: %v", err)
	}
	if _, err := bp.Fetch(id); err == nil {
		t.Fatalf("fetch of freed page succeeded")
	}
	if d.NumPages() != 0 {
		t.Fatalf("disk still has %d pages", d.NumPages())
	}
}

func TestBufferPoolFetchInvalid(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 2)
	if _, err := bp.Fetch(InvalidPageID); err == nil {
		t.Fatalf("fetch of InvalidPageID succeeded")
	}
	if err := bp.Unpin(42, false); err == nil {
		t.Fatalf("unpin of non-resident page succeeded")
	}
}

func TestPageAccessors(t *testing.T) {
	var p Page
	p.PutUint16(0, 0xBEEF)
	p.PutUint32(2, 0xDEADBEEF)
	p.PutUint64(6, 0x0123456789ABCDEF)
	if p.Uint16(0) != 0xBEEF || p.Uint32(2) != 0xDEADBEEF || p.Uint64(6) != 0x0123456789ABCDEF {
		t.Fatalf("accessor roundtrip failed")
	}
	if !p.Dirty() {
		p.MarkDirty()
	}
	if !p.Dirty() {
		t.Fatalf("MarkDirty did not stick")
	}
}

func TestFileDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatalf("OpenFileDisk: %v", err)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	out := make([]byte, PageSize)
	copy(out, []byte("durable bytes"))
	if err := d.Write(id, out); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	buf := make([]byte, PageSize)
	if err := d2.Read(id, buf); err != nil {
		t.Fatalf("Read after reopen: %v", err)
	}
	if string(buf[:13]) != "durable bytes" {
		t.Fatalf("contents lost across reopen: %q", buf[:13])
	}
}

func TestFileDiskFreeReuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatalf("OpenFileDisk: %v", err)
	}
	defer d.Close()
	a, _ := d.Allocate()
	if err := d.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	buf := make([]byte, PageSize)
	if err := d.Read(a, buf); err == nil {
		t.Fatalf("read of freed page succeeded")
	}
	b, _ := d.Allocate()
	if b != a {
		t.Errorf("freed id %d not reused, got %d", a, b)
	}
}

func TestBufferPoolWorkingSetLargerThanBuffer(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, DefaultBufferPages)

	const n = 200
	ids := make([]PageID, n)
	for i := 0; i < n; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		ids[i] = p.ID()
		p.PutUint32(0, uint32(i))
		_ = bp.Unpin(p.ID(), true)
	}
	// Every page must survive eviction with correct contents.
	for i, id := range ids {
		p, err := bp.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch %d: %v", id, err)
		}
		if got := p.Uint32(0); got != uint32(i) {
			t.Fatalf("page %d contents = %d, want %d", id, got, i)
		}
		_ = bp.Unpin(id, false)
	}
	if bp.PinnedPages() != 0 {
		t.Fatalf("pin leak: %d pages pinned", bp.PinnedPages())
	}
}
