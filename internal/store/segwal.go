package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Segmented write-ahead log.
//
// A SegmentedWAL is the WAL's record framing and group-commit protocol
// (see wal.go) over a sequence of numbered segment files instead of one
// monolithic file:
//
//	<path>.000001   sealed — full, fsynced, never written again
//	<path>.000002   sealed
//	<path>.000003   active — appends go here
//
// A segment that grows past the roll threshold is sealed: it is fsynced
// one final time and the next numbered segment becomes the active one.
// Because sealing always fsyncs — under every sync policy — a sealed
// segment is durable in its entirety, which buys two structural
// guarantees:
//
//   - a group-commit leader advances the global durability watermark
//     after fsyncing only the active file (bytes it did not cover live in
//     sealed segments, which are durable already);
//   - recovery may treat a torn tail in any non-final segment as
//     corruption: torn tails can only form in the segment that was
//     active at the crash, which is by construction the highest-numbered
//     one that survived.
//
// Checkpoint truncation becomes deletion: DropThrough removes the sealed
// segments a checkpoint's cut mark covers entirely and never rewrites a
// byte — the stage-tail-and-rename rotation of WAL.TruncateTo (and the
// WALTailBytesRewritten cost it was charged under) does not exist here.
// Records the mark covers only partially stay in place; recovery skips
// them by sequence number, so correctness never depends on their removal.
//
// Sealed segments are also the log's replication unit: a follower can
// read sealed files without coordination (their content is frozen) and
// tail the active one, trusting the CRC framing to stop at a frame that
// is still being written. Logical offsets (WALToken, the durability
// watermark) run monotonically across segments and never reset.

// DefaultWALSegmentBytes is the roll threshold used when the caller does
// not specify one.
const DefaultWALSegmentBytes = 4 << 20

// SegPos addresses a byte position in a segmented log: a 1-based segment
// index and a byte offset inside that segment. It is the segmented
// equivalent of WAL.Mark's logical offset — checkpoints capture one at
// their cut and pass it to DropThrough at their publish.
type SegPos struct {
	Seg uint64
	Off int64
}

// Less orders positions (segment-major).
func (p SegPos) Less(q SegPos) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

// segInfo is one sealed segment's bookkeeping.
type segInfo struct {
	idx  uint64
	base int64 // logical offset of the segment's first byte
	size int64
}

// SegmentedWAL is an append-only commit log over numbered segment files.
// All methods are safe for concurrent use. Framing, sync policies, group
// commit, and the fail-stop poisoning contract are identical to WAL.
type SegmentedWAL struct {
	fs       VFS
	path     string
	policy   WALSyncPolicy
	window   time.Duration
	rollSize int64

	// mu guards the active handle, offsets, and the sealed-segment list.
	mu        sync.Mutex
	f         VFile // active segment
	activeIdx uint64
	activeOff int64
	base      int64 // logical offset of the active segment's first byte
	sealed    []segInfo
	err       error // poisoned: every later Append/Commit fails

	// Group-commit state; same lock discipline as WAL (sm may acquire mu,
	// never the reverse).
	sm      sync.Mutex
	sc      *sync.Cond
	syncing bool
	synced  int64 // logical offset made durable

	frame []byte // reusable append scratch (guarded by mu)

	appends atomic.Uint64
	syncs   atomic.Uint64
	bytes   atomic.Uint64
	// sealedN/removedN count segment lifecycle events since open: rolls
	// that sealed an active segment, and sealed segments DropThrough
	// deleted.
	sealedN  atomic.Uint64
	removedN atomic.Uint64

	// obs holds the owner's latency histograms (nil fields record
	// nothing). Set once via Observe before the log sees concurrent use.
	// lastSyncApps tracks the append count at the previous durability
	// advance (guarded by sm), so each fsync can report its group size.
	obs          WALObserver
	lastSyncApps uint64
}

// WALObserver carries the instruments a SegmentedWAL feeds: per-append
// write duration, per-group fsync duration, and records made durable per
// fsync (the group-commit batch size). All fields are optional; recording
// on the histograms is zero-alloc, so the hot paths carry them at full
// speed.
type WALObserver struct {
	AppendNanos  *obs.Histogram
	FsyncNanos   *obs.Histogram
	FsyncRecords *obs.Histogram
}

// Observe attaches the observer. Call before the log sees concurrent
// appends (peb wires it during open); it is not synchronized against
// in-flight operations.
func (w *SegmentedWAL) Observe(o WALObserver) { w.obs = o }

// SegmentWALName returns the file name of segment idx of the log at path.
func SegmentWALName(path string, idx uint64) string {
	return fmt.Sprintf("%s.%06d", path, idx)
}

// parseSegmentIndex extracts the index from a segment file name, or 0.
func parseSegmentIndex(path, name string) uint64 {
	rest, ok := strings.CutPrefix(name, path+".")
	if !ok || len(rest) < 6 {
		return 0
	}
	idx, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0
	}
	return idx
}

// ListWALSegments returns the indices of the log's segment files at path,
// sorted ascending. The legacy single file at path itself is not listed.
func ListWALSegments(fs VFS, path string) ([]uint64, error) {
	names, err := fs.ListDir(filepath.Dir(path))
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, name := range names {
		if idx := parseSegmentIndex(path, name); idx > 0 {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// SegmentedWALExists reports whether a log exists at path in either
// generation: the legacy single file or any numbered segment.
func SegmentedWALExists(fs VFS, path string) (bool, error) {
	if ok, err := fs.Exists(path); err != nil || ok {
		return ok, err
	}
	idxs, err := ListWALSegments(fs, path)
	if err != nil {
		return false, err
	}
	return len(idxs) > 0, nil
}

// RemoveSegmentedWAL deletes every file of the log at path — the legacy
// single file and all segments. Best effort: the first error is returned
// but the sweep continues.
func RemoveSegmentedWAL(fs VFS, path string) error {
	var firstErr error
	if ok, _ := fs.Exists(path); ok {
		if err := fs.Remove(path); err != nil {
			firstErr = err
		}
	}
	idxs, err := ListWALSegments(fs, path)
	if err != nil {
		if firstErr == nil {
			firstErr = err
		}
		return firstErr
	}
	for _, idx := range idxs {
		if err := fs.Remove(SegmentWALName(path, idx)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// OpenSegmentedWAL opens (creating if needed) the segmented log at path
// and scans it: the returned records are the durable committed prefix
// across all segments, in append order. A torn or corrupt tail in the
// final segment is truncated away; an invalid tail in any earlier
// (sealed) segment is corruption and fails the open.
//
// A legacy single-file log at path itself (written by OpenWAL) is
// migrated first: the file is atomically renamed to segment 000001, so
// existing directories upgrade in place and a crash mid-migration leaves
// either generation intact.
//
// rollSize is the seal threshold; <= 0 selects DefaultWALSegmentBytes.
func OpenSegmentedWAL(fs VFS, path string, policy WALSyncPolicy, rollSize int64) (*SegmentedWAL, [][]byte, error) {
	if rollSize <= 0 {
		rollSize = DefaultWALSegmentBytes
	}
	// A crash mid-rotation under the legacy single-file log can leave its
	// staging file behind; it was never renamed, so its content is dead.
	if ok, _ := fs.Exists(path + ".tmp"); ok {
		_ = fs.Remove(path + ".tmp")
	}

	idxs, err := ListWALSegments(fs, path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: list wal segments: %w", err)
	}
	if ok, err := fs.Exists(path); err != nil {
		return nil, nil, fmt.Errorf("store: probe legacy wal: %w", err)
	} else if ok {
		if len(idxs) > 0 {
			// The migration rename is atomic, so the protocol never leaves
			// both generations; a mixed directory was assembled by hand and
			// the relative order of its records is unknowable.
			return nil, nil, fmt.Errorf("store: both legacy wal %s and segments exist", path)
		}
		if err := fs.Rename(path, SegmentWALName(path, 1)); err != nil {
			return nil, nil, fmt.Errorf("store: migrate legacy wal: %w", err)
		}
		idxs = []uint64{1}
	}
	if len(idxs) == 0 {
		idxs = []uint64{1}
	}

	w := &SegmentedWAL{fs: fs, path: path, policy: policy, window: DefaultGroupWindow, rollSize: rollSize}
	w.sc = sync.NewCond(&w.sm)

	var records [][]byte
	for i, idx := range idxs {
		last := i == len(idxs)-1
		name := SegmentWALName(path, idx)
		f, err := fs.OpenFile(name)
		if err != nil {
			return nil, nil, fmt.Errorf("store: open wal segment %s: %w", name, err)
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: stat wal segment %s: %w", name, err)
		}
		var data []byte
		if size > 0 {
			data = make([]byte, size)
			if _, err := f.ReadAt(data, 0); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("store: read wal segment %s: %w", name, err)
			}
		}
		segRecords, valid := scanWAL(data)
		if int64(valid) < size && !last {
			// Sealing fsyncs before the next segment is created, so only
			// the final segment can carry a torn tail (see type comment).
			f.Close()
			return nil, nil, fmt.Errorf("store: wal segment %s has an invalid tail but is not the last segment", name)
		}
		records = append(records, segRecords...)
		if !last {
			f.Close()
			w.sealed = append(w.sealed, segInfo{idx: idx, base: w.base, size: int64(valid)})
			w.base += int64(valid)
			continue
		}
		if int64(valid) < size {
			if err := f.Truncate(int64(valid)); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("store: drop torn wal tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("store: sync truncated wal: %w", err)
			}
		}
		w.f = f
		w.activeIdx = idx
		w.activeOff = int64(valid)
	}
	w.synced = w.base + w.activeOff
	return w, records, nil
}

// ScanWALFrames parses the CRC-framed records at the front of data,
// returning the payloads and the number of framed bytes consumed. It is
// the tailing primitive replicas read segments with: a torn or in-flight
// frame simply ends the scan (consumed < len(data)), and the caller
// re-reads once more bytes land.
func ScanWALFrames(data []byte) ([][]byte, int) {
	return scanWAL(data)
}

// Poison permanently disables the log with err — same fail-stop contract
// as WAL.Poison.
func (w *SegmentedWAL) Poison(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = fmt.Errorf("store: wal poisoned: %w", err)
	}
}

// Stats returns the number of records appended and fsyncs performed since
// open (seal fsyncs included).
func (w *SegmentedWAL) Stats() (appends, syncs uint64) {
	return w.appends.Load(), w.syncs.Load()
}

// SegmentStats returns the number of segments sealed and removed since
// open.
func (w *SegmentedWAL) SegmentStats() (sealed, removed uint64) {
	return w.sealedN.Load(), w.removedN.Load()
}

// BytesAppended returns the framed bytes appended since open. Segment
// removal does not reset it: it measures write volume, not file size.
func (w *SegmentedWAL) BytesAppended() uint64 {
	return w.bytes.Load()
}

// Append buffers one record at the log's tail, sealing and rolling the
// active segment first if it has reached the threshold. The returned
// token is the logical end offset, for Commit. On any error the log is
// poisoned.
func (w *SegmentedWAL) Append(payload []byte) (WALToken, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var start time.Time
	if w.obs.AppendNanos != nil {
		start = time.Now()
	}
	if w.err != nil {
		return 0, w.err
	}
	if len(payload) == 0 {
		// Same zero-filled-tail defense as WAL.Append.
		w.err = fmt.Errorf("store: wal record must not be empty")
		return 0, w.err
	}
	if len(payload) > walMaxRecord {
		w.err = fmt.Errorf("store: wal record %d bytes exceeds limit", len(payload))
		return 0, w.err
	}
	if w.activeOff >= w.rollSize && w.activeOff > 0 {
		if err := w.rollLocked(); err != nil {
			return 0, err
		}
	}
	if need := 8 + len(payload); cap(w.frame) < need {
		w.frame = make([]byte, need)
	}
	buf := w.frame[:8+len(payload)]
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:], crc32.Checksum(payload, walCRC))
	copy(buf[8:], payload)
	if _, err := w.f.WriteAt(buf, w.activeOff); err != nil {
		w.err = fmt.Errorf("store: wal append: %w", err)
		return 0, w.err
	}
	w.activeOff += int64(len(buf))
	w.appends.Add(1)
	w.bytes.Add(uint64(len(buf)))
	if w.obs.AppendNanos != nil {
		w.obs.AppendNanos.ObserveDuration(time.Since(start))
	}
	return WALToken(w.base + w.activeOff), nil
}

// rollLocked seals the active segment and opens the next one. Caller
// holds mu. The seal fsync runs under every sync policy: sealed segments
// must be durable in full (see the type comment for why both the
// watermark protocol and recovery depend on it).
//
// The durability watermark is NOT advanced here (mu holders never touch
// sm): a commit waiting on a sealed-segment record simply elects a sync
// leader, whose capture of the logical end under mu already covers the
// sealed bytes — its fsync of the new active file completes the claim.
func (w *SegmentedWAL) rollLocked() error {
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("store: wal seal sync: %w", err)
		return w.err
	}
	w.syncs.Add(1)
	next := w.activeIdx + 1
	nf, err := w.fs.OpenFile(SegmentWALName(w.path, next))
	if err != nil {
		w.err = fmt.Errorf("store: wal roll: %w", err)
		return w.err
	}
	w.sealed = append(w.sealed, segInfo{idx: w.activeIdx, base: w.base, size: w.activeOff})
	_ = w.f.Close()
	w.f = nf
	w.base += w.activeOff
	w.activeIdx = next
	w.activeOff = 0
	w.sealedN.Add(1)
	return nil
}

// Commit waits until the record identified by token is durable, per the
// sync policy. Records in removed segments count as durable (the
// checkpoint that removed them made them redundant).
func (w *SegmentedWAL) Commit(token WALToken) error {
	if token == 0 {
		return nil
	}
	if w.policy == WALSyncNone {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.err
	}
	return w.syncTo(int64(token))
}

// Sync forces everything appended so far to disk, regardless of policy.
func (w *SegmentedWAL) Sync() error {
	w.mu.Lock()
	target := w.base + w.activeOff
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.syncTo(target)
}

// syncTo blocks until the logical offset target is durable, electing a
// group-commit leader as needed — WAL.syncTo with one structural
// difference: the leader fsyncs only the active segment, which suffices
// because every sealed segment was fsynced when it was sealed.
func (w *SegmentedWAL) syncTo(target int64) error {
	w.sm.Lock()
	for {
		if w.synced >= target {
			w.sm.Unlock()
			return nil
		}
		w.mu.Lock()
		err := w.err
		w.mu.Unlock()
		if err != nil {
			w.sm.Unlock()
			return err
		}
		if !w.syncing {
			break
		}
		w.sc.Wait()
	}
	w.syncing = true
	w.sm.Unlock()

	if w.policy == WALSyncGrouped && w.window > 0 {
		time.Sleep(w.window)
	}
	// Capture end and handle together under mu: every byte <= end outside
	// the captured file lives in a sealed (already durable) segment, so
	// fsyncing the capture covers the whole claim even if a roll swaps the
	// active file before the fsync runs (the stale capture fsyncs the
	// now-sealed file — harmless).
	w.mu.Lock()
	end := w.base + w.activeOff
	f := w.f
	w.mu.Unlock()
	var fstart time.Time
	if w.obs.FsyncNanos != nil {
		fstart = time.Now()
	}
	serr := f.Sync()
	if serr == nil && w.obs.FsyncNanos != nil {
		w.obs.FsyncNanos.ObserveDuration(time.Since(fstart))
	}

	w.sm.Lock()
	w.syncing = false
	if serr == nil {
		if end > w.synced {
			w.synced = end
		}
		w.syncs.Add(1)
		if w.obs.FsyncRecords != nil {
			// The durability advance covers every record appended since
			// the previous advance — the group this fsync committed.
			a := w.appends.Load()
			w.obs.FsyncRecords.Observe(a - w.lastSyncApps)
			w.lastSyncApps = a
		}
	}
	w.sc.Broadcast()
	w.sm.Unlock()

	if serr != nil {
		w.mu.Lock()
		if w.err == nil {
			w.err = fmt.Errorf("store: wal sync: %w", serr)
		}
		err := w.err
		w.mu.Unlock()
		return err
	}
	return nil
}

// Mark returns the log's current append position. A checkpoint captures
// the mark at its cut (while its lock excludes appenders) and passes it
// to DropThrough at its publish, so only segments the checkpoint covers
// entirely are dropped.
func (w *SegmentedWAL) Mark() SegPos {
	w.mu.Lock()
	defer w.mu.Unlock()
	return SegPos{Seg: w.activeIdx, Off: w.activeOff}
}

// DropThrough deletes every sealed segment the mark covers entirely —
// segments below mark.Seg, plus mark.Seg itself when the mark sits at or
// past its end. Nothing is ever rewritten: records in a partially
// covered segment stay where they are (recovery skips them by sequence
// number), and the active segment is never removed. Returns the bytes
// and segment count removed.
//
// Removal is pure space reclamation, so a failed delete does not poison
// the log: the stale segment replays harmlessly and the next checkpoint
// retries. The first error is still reported.
func (w *SegmentedWAL) DropThrough(mark SegPos) (removed int64, segments int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, 0, w.err
	}
	kept := w.sealed[:0]
	for _, s := range w.sealed {
		covered := s.idx < mark.Seg || (s.idx == mark.Seg && mark.Off >= s.size)
		if !covered {
			kept = append(kept, s)
			continue
		}
		if rerr := w.fs.Remove(SegmentWALName(w.path, s.idx)); rerr != nil {
			if err == nil {
				err = fmt.Errorf("store: drop wal segment %06d: %w", s.idx, rerr)
			}
			kept = append(kept, s)
			continue
		}
		removed += s.size
		segments++
		w.removedN.Add(1)
	}
	w.sealed = kept
	return removed, segments, err
}

// Size returns the log's current on-disk length in bytes: the retained
// sealed segments plus the active one. This is what recovery would
// replay, the quantity AutoCheckpoint thresholds measure.
func (w *SegmentedWAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	size := w.activeOff
	for _, s := range w.sealed {
		size += s.size
	}
	return size
}

// Segments returns the indices of the retained segments in order, the
// active one last — the fetch units a replica tails.
func (w *SegmentedWAL) Segments() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	idxs := make([]uint64, 0, len(w.sealed)+1)
	for _, s := range w.sealed {
		idxs = append(idxs, s.idx)
	}
	return append(idxs, w.activeIdx)
}

// Close syncs and closes the log. A clean Close therefore loses nothing
// even under WALSyncNone.
func (w *SegmentedWAL) Close() error {
	serr := w.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	cerr := w.f.Close()
	if w.err == nil {
		w.err = fmt.Errorf("store: wal is closed")
	}
	if serr != nil {
		return serr
	}
	return cerr
}
