package store

import "fmt"

// FaultDisk wraps a DiskManager and injects a failure after a configured
// number of operations. It exists for failure-injection tests: structures
// above the buffer pool must propagate disk errors without leaking pins or
// corrupting their in-memory state.
type FaultDisk struct {
	Inner DiskManager
	// FailAfter counts down on every operation; when it reaches zero the
	// operation fails (and keeps failing until the countdown is reset).
	FailAfter int
	// Failures counts injected failures.
	Failures int
}

// ErrInjected is the error returned by injected failures.
var ErrInjected = fmt.Errorf("store: injected disk fault")

func (d *FaultDisk) tick() error {
	d.FailAfter--
	if d.FailAfter < 0 {
		d.Failures++
		return ErrInjected
	}
	return nil
}

// Allocate implements DiskManager.
func (d *FaultDisk) Allocate() (PageID, error) {
	if err := d.tick(); err != nil {
		return InvalidPageID, err
	}
	return d.Inner.Allocate()
}

// Free implements DiskManager.
func (d *FaultDisk) Free(id PageID) error {
	if err := d.tick(); err != nil {
		return err
	}
	return d.Inner.Free(id)
}

// Read implements DiskManager.
func (d *FaultDisk) Read(id PageID, buf []byte) error {
	if err := d.tick(); err != nil {
		return err
	}
	return d.Inner.Read(id, buf)
}

// Write implements DiskManager.
func (d *FaultDisk) Write(id PageID, buf []byte) error {
	if err := d.tick(); err != nil {
		return err
	}
	return d.Inner.Write(id, buf)
}

// Sync implements DiskManager.
func (d *FaultDisk) Sync() error {
	if err := d.tick(); err != nil {
		return err
	}
	return d.Inner.Sync()
}

// Stats implements DiskManager.
func (d *FaultDisk) Stats() DiskStats { return d.Inner.Stats() }

// ResetStats implements DiskManager.
func (d *FaultDisk) ResetStats() { d.Inner.ResetStats() }
