package store

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// BufferStats counts logical page requests against a BufferPool.
//
// Misses is the quantity the paper calls "I/O cost": a page request that
// could not be served from the buffer and required a disk read.
type BufferStats struct {
	Hits      uint64 // requests served from the buffer
	Misses    uint64 // requests that read from disk (the paper's I/O)
	Evictions uint64 // pages pushed out of the buffer
	WriteBack uint64 // dirty pages written to disk on eviction/flush
}

// Accesses returns the total number of logical page requests.
func (s BufferStats) Accesses() uint64 { return s.Hits + s.Misses }

// IOCounter accumulates hit/miss counts for one handle (e.g. a pinned
// snapshot), independently of the pool's global counters. A nil *IOCounter
// is valid everywhere one is accepted and records nothing. All methods are
// safe for concurrent use.
type IOCounter struct {
	hits   atomic.Uint64
	misses atomic.Uint64
}

// Stats returns the counter's accumulated values. Only Hits and Misses are
// populated: evictions and write-backs are pool-wide effects that cannot be
// attributed to one handle.
func (c *IOCounter) Stats() BufferStats {
	if c == nil {
		return BufferStats{}
	}
	return BufferStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// record notes one page request and whether it missed.
func (c *IOCounter) record(miss bool) {
	if c == nil {
		return
	}
	if miss {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
}

// BufferPool caches pages in memory with an LRU replacement policy, exactly
// the "50-page LRU buffer" simulated by the paper (Sec. 7.1).
//
// Pages are pinned while in use. Fetch/NewPage return pinned pages; callers
// must Unpin them (with a dirty flag) when done. Unpinned pages stay cached
// until evicted by LRU.
//
// Concurrency: the pool's own bookkeeping (frame table, LRU order, pin
// counts, statistics, and the underlying disk) is guarded by an internal
// mutex, so any number of goroutines may Fetch/Unpin concurrently. The
// mutex is held across miss-path disk reads and eviction write-backs,
// which keeps the LRU order and the paper's I/O accounting exact but
// serializes concurrent readers on every miss — parallel read throughput
// therefore requires the working set to be buffer-resident (hits release
// the lock immediately; node decoding happens outside it). Page
// *contents* are not guarded: a pinned page's Data may be read by many
// goroutines at once, but mutating it (writeLeaf etc., followed by
// MarkDirty) requires that no other goroutine is using the page. Callers
// obtain that exclusivity externally — peb.DB runs all mutations under a
// write lock while queries hold the read side (single-writer/multi-reader).
type BufferPool struct {
	disk     DiskManager
	capacity int

	mu     sync.Mutex
	frames map[PageID]*frame
	lru    *list.List // front = most recently used; holds *frame

	stats BufferStats
}

type frame struct {
	page Page
	elem *list.Element // position in lru, nil while pinned
}

// DefaultBufferPages matches the paper's experimental setting.
const DefaultBufferPages = 50

// NewBufferPool creates a pool over disk holding at most capacity pages.
// A capacity below 1 panics: the pool could not hold a single working page.
func NewBufferPool(disk DiskManager, capacity int) *BufferPool {
	if capacity < 1 {
		panic(fmt.Sprintf("store: buffer capacity %d < 1", capacity))
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the maximum number of cached pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Stats returns the cumulative hit/miss counters.
func (bp *BufferPool) Stats() BufferStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the counters. Cached contents are unaffected, so a
// reset-then-measure sequence observes a warm buffer, while DropAll followed
// by ResetStats observes a cold one.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = BufferStats{}
}

// Fetch returns the page with the given id, pinned. The caller must Unpin it.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) { return bp.FetchCounted(id, nil) }

// FetchCounted is Fetch with an additional per-handle counter: the request's
// hit/miss outcome is recorded into c (when non-nil) as well as the pool's
// global statistics. Query handles use it to report per-session I/O.
func (bp *BufferPool) FetchCounted(id PageID, c *IOCounter) (*Page, error) {
	if id == InvalidPageID {
		return nil, fmt.Errorf("store: fetch of invalid page id")
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		c.record(false)
		bp.pin(f)
		return &f.page, nil
	}
	bp.stats.Misses++
	c.record(true)
	f, err := bp.admit(id)
	if err != nil {
		return nil, err
	}
	if err := bp.disk.Read(id, f.page.data[:]); err != nil {
		delete(bp.frames, id)
		return nil, err
	}
	bp.pin(f)
	return &f.page, nil
}

// NewPage allocates a fresh disk page and returns it pinned and zeroed.
func (bp *BufferPool) NewPage() (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	id, err := bp.disk.Allocate()
	if err != nil {
		return nil, err
	}
	f, err := bp.admit(id)
	if err != nil {
		// Roll back the allocation so the disk does not leak the page.
		_ = bp.disk.Free(id)
		return nil, err
	}
	for i := range f.page.data {
		f.page.data[i] = 0
	}
	f.page.dirty = true // ensure the zeroed page reaches disk
	bp.pin(f)
	return &f.page, nil
}

// Unpin releases one pin on the page. dirty declares whether the caller
// modified the page since Fetch/NewPage.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("store: unpin of non-resident page %d", id)
	}
	if f.page.pins <= 0 {
		return fmt.Errorf("store: unpin of unpinned page %d", id)
	}
	if dirty {
		f.page.dirty = true
	}
	f.page.pins--
	if f.page.pins == 0 {
		f.elem = bp.lru.PushFront(f)
	}
	return nil
}

// FreePage removes the page from the pool and returns it to the disk
// allocator. The page must be resident with exactly one pin (the caller's).
func (bp *BufferPool) FreePage(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("store: free of non-resident page %d", id)
	}
	if f.page.pins != 1 {
		return fmt.Errorf("store: free of page %d with %d pins, want 1", id, f.page.pins)
	}
	delete(bp.frames, id)
	return bp.disk.Free(id)
}

// Release frees a page that is no longer referenced by any tree version:
// unlike FreePage it does not require the caller to hold a pin (the page
// may not even be resident). A resident frame is dropped without write-back
// — the contents are garbage by definition — and the page returns to the
// disk allocator. Releasing a pinned page is an error.
func (bp *BufferPool) Release(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		if f.page.pins > 0 {
			return fmt.Errorf("store: release of pinned page %d", id)
		}
		if f.elem != nil {
			bp.lru.Remove(f.elem)
			f.elem = nil
		}
		delete(bp.frames, id)
	}
	return bp.disk.Free(id)
}

// FlushAll writes every dirty cached page back to disk. Pinned pages are
// flushed too (they remain resident and pinned).
//
// FlushAll holds the pool mutex for the entire sweep, stalling every
// concurrent Fetch for its duration. Callers that must stay responsive
// while flushing — the checkpoint build phase — capture DirtyPages and
// hand the list to FlushPages instead.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.flushAllLocked()
}

// DirtyPages returns the ids of every resident dirty page, sorted. A
// checkpoint captures this list inside its cut critical section; the pages
// of a just-sealed tree image are immutable from that point on, so the
// list stays exact until FlushPages writes it out.
func (bp *BufferPool) DirtyPages() []PageID {
	bp.mu.Lock()
	ids := make([]PageID, 0, len(bp.frames))
	for id, f := range bp.frames {
		if f.page.dirty {
			ids = append(ids, id)
		}
	}
	bp.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FlushPages writes the given pages back to disk, re-acquiring the pool
// mutex per page so concurrent Fetch/NewPage/Unpin interleave between
// writes instead of stalling behind the whole sweep (the flush-safety a
// non-blocking checkpoint build needs). Pages that are no longer resident
// or no longer dirty — evicted (and therefore already written back) or
// never redirtied — are skipped. Returns the number of pages written.
//
// The caller must guarantee the pages' contents are stable for the
// duration — e.g. they belong to a sealed tree image, which concurrent
// mutations only ever copy-on-write, never rewrite.
func (bp *BufferPool) FlushPages(ids []PageID) (int, error) {
	flushed := 0
	for _, id := range ids {
		bp.mu.Lock()
		f, ok := bp.frames[id]
		if !ok || !f.page.dirty {
			bp.mu.Unlock()
			continue
		}
		if err := bp.disk.Write(id, f.page.data[:]); err != nil {
			bp.mu.Unlock()
			return flushed, err
		}
		f.page.dirty = false
		bp.stats.WriteBack++
		flushed++
		bp.mu.Unlock()
	}
	return flushed, nil
}

func (bp *BufferPool) flushAllLocked() error {
	for id, f := range bp.frames {
		if !f.page.dirty {
			continue
		}
		if err := bp.disk.Write(id, f.page.data[:]); err != nil {
			return err
		}
		f.page.dirty = false
		bp.stats.WriteBack++
	}
	return nil
}

// DropAll flushes and then discards every unpinned cached page, producing a
// cold buffer. It fails if any page is still pinned.
func (bp *BufferPool) DropAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.frames {
		if f.page.pins > 0 {
			return fmt.Errorf("store: drop with page %d still pinned", id)
		}
	}
	if err := bp.flushAllLocked(); err != nil {
		return err
	}
	bp.frames = make(map[PageID]*frame, bp.capacity)
	bp.lru.Init()
	return nil
}

// PinnedPages returns the number of currently pinned pages (for leak tests).
func (bp *BufferPool) PinnedPages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, f := range bp.frames {
		if f.page.pins > 0 {
			n++
		}
	}
	return n
}

// pin marks the frame in-use and removes it from the eviction order.
func (bp *BufferPool) pin(f *frame) {
	if f.elem != nil {
		bp.lru.Remove(f.elem)
		f.elem = nil
	}
	f.page.pins++
}

// admit makes room for and installs a frame for id (unpinned, not in LRU).
func (bp *BufferPool) admit(id PageID) (*frame, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{}
	f.page.id = id
	f.page.dirty = false
	f.page.pins = 0
	bp.frames[id] = f
	return f, nil
}

// evictOne removes the least recently used unpinned page.
func (bp *BufferPool) evictOne() error {
	back := bp.lru.Back()
	if back == nil {
		return fmt.Errorf("store: buffer full (%d pages) and all pinned", bp.capacity)
	}
	f := back.Value.(*frame)
	bp.lru.Remove(back)
	f.elem = nil
	if f.page.dirty {
		if err := bp.disk.Write(f.page.id, f.page.data[:]); err != nil {
			return err
		}
		bp.stats.WriteBack++
	}
	delete(bp.frames, f.page.id)
	bp.stats.Evictions++
	return nil
}
