// Package store provides the paged-storage substrate that every index in
// this repository is built on: fixed-size pages, a simulated (or
// file-backed) disk manager, and an LRU buffer pool with pin/unpin
// semantics and I/O statistics.
//
// The paper evaluates indexes by I/O cost — the number of page reads that
// miss a 50-page LRU buffer over 4 KB pages (Sec. 7.1). This package makes
// that quantity directly measurable: every page fetch goes through a
// BufferPool, and BufferPool.Stats() reports hits, misses (= the paper's
// I/O), and write-backs.
package store

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of every page in bytes. The paper sets the disk page
// size to 4 KB (Sec. 7.1).
const PageSize = 4096

// PageID identifies a page on disk. InvalidPageID is never allocated.
type PageID uint32

// InvalidPageID marks "no page" (e.g., a missing sibling pointer).
const InvalidPageID PageID = 0

// Page is a fixed-size block of bytes plus bookkeeping used by the buffer
// pool. The Data slice is always exactly PageSize long.
type Page struct {
	id    PageID
	data  [PageSize]byte
	dirty bool
	pins  int
}

// ID returns the page's identifier.
func (p *Page) ID() PageID { return p.id }

// Data returns the page's backing bytes. Callers that mutate the contents
// must call MarkDirty so the buffer pool writes the page back on eviction.
func (p *Page) Data() []byte { return p.data[:] }

// MarkDirty records that the page's contents changed.
func (p *Page) MarkDirty() { p.dirty = true }

// Dirty reports whether the page has unwritten changes.
func (p *Page) Dirty() bool { return p.dirty }

// PinCount returns the number of outstanding pins (callers that may still
// use the page). A page with pins > 0 cannot be evicted.
func (p *Page) PinCount() int { return p.pins }

// Uint16 reads a little-endian uint16 at off.
func (p *Page) Uint16(off int) uint16 { return binary.LittleEndian.Uint16(p.data[off:]) }

// PutUint16 writes a little-endian uint16 at off.
func (p *Page) PutUint16(off int, v uint16) { binary.LittleEndian.PutUint16(p.data[off:], v) }

// Uint32 reads a little-endian uint32 at off.
func (p *Page) Uint32(off int) uint32 { return binary.LittleEndian.Uint32(p.data[off:]) }

// PutUint32 writes a little-endian uint32 at off.
func (p *Page) PutUint32(off int, v uint32) { binary.LittleEndian.PutUint32(p.data[off:], v) }

// Uint64 reads a little-endian uint64 at off.
func (p *Page) Uint64(off int) uint64 { return binary.LittleEndian.Uint64(p.data[off:]) }

// PutUint64 writes a little-endian uint64 at off.
func (p *Page) PutUint64(off int, v uint64) { binary.LittleEndian.PutUint64(p.data[off:], v) }

// String implements fmt.Stringer for debugging.
func (p *Page) String() string {
	return fmt.Sprintf("page(id=%d dirty=%v pins=%d)", p.id, p.dirty, p.pins)
}
