package store

import (
	"errors"
	"testing"
)

func TestFaultDiskInjects(t *testing.T) {
	fd := &FaultDisk{Inner: NewMemDisk(), FailAfter: 2}
	if _, err := fd.Allocate(); err != nil { // 1st op ok
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := fd.Write(1, buf); err != nil { // 2nd op ok
		t.Fatal(err)
	}
	if err := fd.Read(1, buf); !errors.Is(err, ErrInjected) { // 3rd fails
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if err := fd.Free(1); !errors.Is(err, ErrInjected) { // keeps failing
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if fd.Failures != 2 {
		t.Errorf("Failures = %d, want 2", fd.Failures)
	}
	// Reset re-arms the disk.
	fd.FailAfter = 10
	if err := fd.Read(1, buf); err != nil {
		t.Fatalf("read after reset: %v", err)
	}
	if fd.Stats().Reads != 1 {
		t.Errorf("inner stats not visible: %+v", fd.Stats())
	}
	fd.ResetStats()
	if fd.Stats().Reads != 0 {
		t.Error("ResetStats not forwarded")
	}
}

func TestBufferPoolSurfacesFaults(t *testing.T) {
	fd := &FaultDisk{Inner: NewMemDisk(), FailAfter: 1 << 30}
	pool := NewBufferPool(fd, 2)
	p, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID()
	if err := pool.Unpin(id, true); err != nil {
		t.Fatal(err)
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	// Fault on the next disk op: Fetch must fail cleanly.
	fd.FailAfter = 0
	if _, err := pool.Fetch(id); err == nil {
		t.Fatal("fetch did not surface fault")
	}
	if pool.PinnedPages() != 0 {
		t.Error("pin leaked on failed fetch")
	}
	// Recovery.
	fd.FailAfter = 1 << 30
	if _, err := pool.Fetch(id); err != nil {
		t.Fatalf("fetch after recovery: %v", err)
	}
	if err := pool.Unpin(id, false); err != nil {
		t.Fatal(err)
	}
}
