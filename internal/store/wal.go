package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"
)

// Write-ahead log.
//
// The WAL is an append-only file of length-prefixed, CRC-checksummed
// records. Callers append a record per committed logical batch and then
// wait for the record to become durable (Commit); on restart, Records
// returns exactly the durable prefix — a torn or corrupt tail (the record
// being appended when power was lost) is detected by the checksum and cut
// off.
//
// Record framing:
//
//	[4 bytes] payload length (big endian)
//	[4 bytes] CRC-32 (Castagnoli) of the payload
//	[n bytes] payload (opaque to the WAL)
//
// Group commit: Append only buffers the record in the file; Commit makes it
// durable according to the sync policy. Under WALSyncAlways the first
// committer becomes the sync leader and fsyncs everything appended so far,
// so concurrent commits share one fsync (the classic group commit).
// WALSyncGrouped adds a short gathering window before the leader syncs,
// trading commit latency for fewer fsyncs under load. WALSyncNone never
// syncs on commit — the OS (or the next checkpoint/Close) flushes — so a
// crash may lose a suffix of acknowledged commits, but recovery still sees
// a clean committed prefix.
//
// Error handling is strict: after any write or sync failure the WAL is
// poisoned and every subsequent Append/Commit fails. A log that may have a
// hole must never accept later records, or recovery would silently skip
// committed work.

// WALSyncPolicy selects how Commit waits for durability.
type WALSyncPolicy int

const (
	// WALSyncAlways fsyncs before Commit returns; concurrent commits share
	// a single fsync opportunistically.
	WALSyncAlways WALSyncPolicy = iota
	// WALSyncGrouped is WALSyncAlways plus a short gathering window, so
	// even lightly concurrent committers amortize one fsync.
	WALSyncGrouped
	// WALSyncNone returns from Commit without syncing. Durability is
	// deferred to the OS, Sync, Truncate, or Close.
	WALSyncNone
)

// DefaultGroupWindow is the gathering delay of WALSyncGrouped.
const DefaultGroupWindow = 500 * time.Microsecond

// walMaxRecord bounds a record's payload, rejecting absurd lengths that a
// corrupt header would otherwise turn into huge allocations.
const walMaxRecord = 64 << 20

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// WALToken identifies an appended record for Commit. The zero token is
// never returned by Append and commits trivially.
type WALToken int64

// WAL is an append-only commit log over a VFile. All methods are safe for
// concurrent use.
type WAL struct {
	fs     VFS
	path   string
	policy WALSyncPolicy
	window time.Duration

	// mu guards the file handle, the append offset, and the logical byte
	// counter.
	mu      sync.Mutex
	f       VFile
	fileOff int64 // physical append position
	base    int64 // logical bytes truncated away so far
	err     error // poisoned: every later Append/Commit fails

	// sm guards the group-commit state. Lock ordering: sm is never held
	// while acquiring mu is waited on by an mu holder — appenders release
	// mu before touching sm, the sync leader releases sm before taking mu.
	sm      sync.Mutex
	sc      *sync.Cond
	syncing bool
	synced  int64 // logical offset made durable

	// frame is the reusable append scratch buffer (guarded by mu): the
	// header and payload are assembled here for the single WriteAt, so a
	// steady-state append allocates nothing once the buffer has grown to
	// the workload's record size.
	frame []byte

	appends atomic.Uint64
	syncs   atomic.Uint64
	// bytes counts framed bytes appended (header + payload) since OpenWAL —
	// the log-volume side of the codec's size story.
	bytes atomic.Uint64
}

// OpenWAL opens (creating if needed) the log at path and scans it: the
// returned records are the durable committed prefix, in append order. A
// torn or corrupt tail is truncated away so subsequent appends extend a
// clean log.
func OpenWAL(fs VFS, path string, policy WALSyncPolicy) (*WAL, [][]byte, error) {
	// A crash mid-rotation (TruncateTo) can leave a staging file behind;
	// it was never renamed, so its content is dead — sweep it.
	if ok, _ := fs.Exists(path + ".tmp"); ok {
		_ = fs.Remove(path + ".tmp")
	}
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open wal: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: stat wal: %w", err)
	}
	var data []byte
	if size > 0 {
		data = make([]byte, size)
		if _, err := f.ReadAt(data, 0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: read wal: %w", err)
		}
	}
	records, valid := scanWAL(data)
	if int64(valid) < size {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: drop torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: sync truncated wal: %w", err)
		}
	}
	w := &WAL{fs: fs, path: path, f: f, policy: policy, window: DefaultGroupWindow,
		fileOff: int64(valid), synced: int64(valid)}
	w.sc = sync.NewCond(&w.sm)
	return w, records, nil
}

// scanWAL walks the framing and returns the valid records plus the byte
// length of the valid prefix. A zero length is treated as tail garbage,
// not an empty record: an all-zero header would otherwise self-validate
// (the CRC-32C of an empty payload is 0), and a crashed filesystem often
// leaves exactly that — a file extended with zeros before the data
// reached disk. Append enforces the matching non-empty invariant.
func scanWAL(data []byte) ([][]byte, int) {
	var records [][]byte
	off := 0
	for {
		if off+8 > len(data) {
			return records, off
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		if n == 0 || n > walMaxRecord || off+8+n > len(data) {
			return records, off
		}
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, walCRC) != crc {
			return records, off
		}
		records = append(records, append([]byte(nil), payload...))
		off += 8 + n
	}
}

// Poison permanently disables the log with err: every subsequent Append
// and Commit fails. Owners call it when they applied a mutation but could
// not produce its record — the log now has a hole, and fail-stop is the
// only state that cannot silently lose the unlogged commit on recovery.
func (w *WAL) Poison(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = fmt.Errorf("store: wal poisoned: %w", err)
	}
}

// Stats returns the number of records appended and fsyncs performed since
// OpenWAL.
func (w *WAL) Stats() (appends, syncs uint64) {
	return w.appends.Load(), w.syncs.Load()
}

// BytesAppended returns the framed bytes (headers + payloads) appended
// since OpenWAL. Rotation does not reset it: it measures write volume, not
// file size.
func (w *WAL) BytesAppended() uint64 {
	return w.bytes.Load()
}

// Append buffers one record at the log's tail and returns a token for
// Commit. Appends are durable only after a Commit (or Sync) covering the
// token. On any error the WAL is poisoned.
func (w *WAL) Append(payload []byte) (WALToken, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	// Validation failures poison too: callers apply state before logging,
	// so ANY record this log fails to take leaves the log with a hole —
	// accepting later records would let recovery silently skip committed
	// work (the fail-stop contract).
	if len(payload) == 0 {
		// Empty records are indistinguishable from a zero-filled torn
		// tail (see scanWAL) and would be dropped by recovery.
		w.err = fmt.Errorf("store: wal record must not be empty")
		return 0, w.err
	}
	if len(payload) > walMaxRecord {
		w.err = fmt.Errorf("store: wal record %d bytes exceeds limit", len(payload))
		return 0, w.err
	}
	if need := 8 + len(payload); cap(w.frame) < need {
		w.frame = make([]byte, need)
	}
	buf := w.frame[:8+len(payload)]
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:], crc32.Checksum(payload, walCRC))
	copy(buf[8:], payload)
	if _, err := w.f.WriteAt(buf, w.fileOff); err != nil {
		w.err = fmt.Errorf("store: wal append: %w", err)
		return 0, w.err
	}
	w.fileOff += int64(len(buf))
	w.appends.Add(1)
	w.bytes.Add(uint64(len(buf)))
	return WALToken(w.base + w.fileOff), nil
}

// Commit waits until the record identified by token is durable, per the
// sync policy. Records checkpointed away by Truncate count as durable.
func (w *WAL) Commit(token WALToken) error {
	if token == 0 {
		return nil
	}
	if w.policy == WALSyncNone {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.err
	}
	return w.syncTo(int64(token))
}

// Sync forces everything appended so far to disk, regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	target := w.base + w.fileOff
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.syncTo(target)
}

// syncTo blocks until the logical offset target is durable, electing a
// group-commit leader as needed.
func (w *WAL) syncTo(target int64) error {
	w.sm.Lock()
	for {
		// Durability first, poison second: a record that some earlier
		// fsync (or Truncate-after-checkpoint) already covered is
		// committed, and a failure that poisoned the log afterwards must
		// not retroactively fail it.
		if w.synced >= target {
			w.sm.Unlock()
			return nil
		}
		w.mu.Lock()
		err := w.err
		w.mu.Unlock()
		if err != nil {
			w.sm.Unlock()
			return err
		}
		if !w.syncing {
			break
		}
		w.sc.Wait()
	}
	w.syncing = true
	w.sm.Unlock()

	if w.policy == WALSyncGrouped && w.window > 0 {
		// Gather companions: commits arriving during the window ride this
		// fsync instead of paying their own.
		time.Sleep(w.window)
	}
	// Capture the handle under mu: TruncateTo swaps it during log rotation
	// (rotation excludes sync leaders via the syncing flag, but belt and
	// braces — a stale capture would merely fsync the superseded file).
	w.mu.Lock()
	end := w.base + w.fileOff
	f := w.f
	w.mu.Unlock()
	serr := f.Sync()

	w.sm.Lock()
	w.syncing = false
	if serr == nil {
		if end > w.synced {
			w.synced = end
		}
		w.syncs.Add(1)
	}
	w.sc.Broadcast()
	w.sm.Unlock()

	if serr != nil {
		w.mu.Lock()
		if w.err == nil {
			w.err = fmt.Errorf("store: wal sync: %w", serr)
		}
		err := w.err
		w.mu.Unlock()
		return err
	}
	return nil
}

// Truncate empties the log after a checkpoint has made its records
// redundant. Outstanding commits for pre-truncation records are satisfied
// (the checkpoint made them durable by other means).
func (w *WAL) Truncate() error {
	_, _, err := w.TruncateTo(w.Mark())
	return err
}

// Mark returns the log's current logical end offset — the position after
// the last appended record. A checkpoint captures the mark at its cut
// (while its lock excludes appenders) and passes it to TruncateTo at its
// publish, so only the records the checkpoint covers are dropped.
func (w *WAL) Mark() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base + w.fileOff
}

// TruncateTo drops every record before mark (a value from Mark), keeping
// the records appended since — the commits a concurrent checkpoint build
// did not cover. It returns the number of bytes removed and the number of
// bytes rewritten to keep the surviving tail: rotation copies only the
// uncovered suffix, never the whole log, so rewritten is exactly the tail
// length (and zero when the mark is the log's end and the file is simply
// emptied in place). Callers surface rewritten in their stats — it is the
// per-checkpoint cost a future segmented log would eliminate.
//
// When mark is the current end the file is simply truncated (the old
// whole-log behavior). Otherwise the log rotates: the surviving tail is
// staged into <path>.tmp, fsynced, and renamed over the log — atomic on
// the VFS contract — and the WAL switches to the new file. A crash at any
// point leaves either the old complete log or the tail-only log; both
// replay correctly against the checkpoint the caller just committed
// (records before mark are skipped by their sequence numbers). Either
// way, everything remaining in the log is durable on return, so
// outstanding Commit waiters are satisfied.
func (w *WAL) TruncateTo(mark int64) (removed, rewritten int64, err error) {
	// Exclude group-commit sync leaders for the duration: a leader fsyncs
	// the file handle outside any lock, and rotation replaces that handle.
	w.sm.Lock()
	for w.syncing {
		w.sc.Wait()
	}
	w.syncing = true
	w.sm.Unlock()

	w.mu.Lock()
	removed, rewritten, end, err := w.truncateToLocked(mark)
	w.mu.Unlock()

	w.sm.Lock()
	w.syncing = false
	if err == nil && end > w.synced {
		w.synced = end
	}
	w.sc.Broadcast()
	w.sm.Unlock()
	return removed, rewritten, err
}

// truncateToLocked is TruncateTo's body; the caller holds mu and has
// blocked out sync leaders. Returns bytes removed, tail bytes rewritten,
// and the logical end made durable.
func (w *WAL) truncateToLocked(mark int64) (int64, int64, int64, error) {
	if w.err != nil {
		return 0, 0, 0, w.err
	}
	end := w.base + w.fileOff
	switch {
	case mark <= w.base:
		return 0, 0, 0, nil // already truncated past mark
	case mark > end:
		w.err = fmt.Errorf("store: wal truncate mark %d beyond log end %d", mark, end)
		return 0, 0, 0, w.err
	case mark == end:
		// No surviving tail: empty the file in place.
		if err := w.f.Truncate(0); err != nil {
			w.err = fmt.Errorf("store: wal truncate: %w", err)
			return 0, 0, 0, w.err
		}
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("store: wal truncate sync: %w", err)
			return 0, 0, 0, w.err
		}
		removed := mark - w.base
		w.base = mark
		w.fileOff = 0
		return removed, 0, end, nil
	}

	// Rotate: stage the tail, publish it by rename, adopt the new file.
	tail := make([]byte, end-mark)
	if _, err := w.f.ReadAt(tail, mark-w.base); err != nil {
		w.err = fmt.Errorf("store: wal rotate read: %w", err)
		return 0, 0, 0, w.err
	}
	if err := WriteFileAtomic(w.fs, w.path, tail); err != nil {
		w.err = fmt.Errorf("store: wal rotate: %w", err)
		return 0, 0, 0, w.err
	}
	nf, err := w.fs.OpenFile(w.path)
	if err != nil {
		w.err = fmt.Errorf("store: wal rotate reopen: %w", err)
		return 0, 0, 0, w.err
	}
	_ = w.f.Close()
	w.f = nf
	removed := mark - w.base
	w.base = mark
	w.fileOff = end - mark
	return removed, int64(len(tail)), end, nil
}

// Size returns the log's current length in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fileOff
}

// Close syncs and closes the log. A clean Close therefore loses nothing
// even under WALSyncNone.
func (w *WAL) Close() error {
	serr := w.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	cerr := w.f.Close()
	if w.err == nil {
		w.err = fmt.Errorf("store: wal is closed")
	}
	if serr != nil {
		return serr
	}
	return cerr
}
