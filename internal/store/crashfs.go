package store

import (
	"fmt"
	"path/filepath"
	"sync"
)

// CrashFS is an in-memory VFS for crash-recovery testing, the byte-level
// sibling of FaultDisk. Every file keeps two images:
//
//   - volatile: what the running process observes (all completed writes);
//   - durable: what survives a power cut (the content as of the last Sync).
//
// A configured fault point (SetFailAfter) kills the "process" mid-operation:
// the fatal write applies only a prefix of its bytes — a torn write — and
// every subsequent operation fails with ErrInjected, exactly as if the
// machine lost power. Reboot then reconstructs the post-crash disk, either
// pessimistically (only durable bytes survive) or optimistically (unsynced
// writes survived the cut too, including the torn one); a correct recovery
// protocol must handle both, because a real crash lands anywhere in
// between.
//
// Rename is modeled as atomic and immediately durable (journaled-filesystem
// semantics); file contents still require Sync, so the standard
// write-temp → sync → rename pattern is exactly as safe as on a real disk,
// and a crash before the rename leaves the old file.
//
// Faultable operations — counted by Ops and eligible as fault points — are
// WriteAt, Sync, Truncate, and Rename. Reads never fault (a dead process
// does not read; post-crash reads happen after Reboot).
type CrashFS struct {
	mu    sync.Mutex
	files map[string]*crashNode
	// durable holds each file's last-synced image, keyed by current name.
	durable map[string][]byte

	ops       int  // faultable operations performed
	failAfter int  // fault on the (failAfter+1)-th operation; <0 = disabled
	dead      bool // the simulated process has crashed
}

// crashNode is one file's volatile image. Open handles reference the node,
// so a handle follows its file across Rename like an OS file descriptor.
type crashNode struct {
	name string
	data []byte
}

// NewCrashFS returns an empty filesystem with fault injection disabled.
func NewCrashFS() *CrashFS {
	return &CrashFS{
		files:     make(map[string]*crashNode),
		durable:   make(map[string][]byte),
		failAfter: -1,
	}
}

// SetFailAfter arms the fault point: the next n faultable operations
// succeed and the (n+1)-th tears/fails, killing the filesystem. n < 0
// disarms. The operation counter is not reset — use Ops to coordinate.
func (c *CrashFS) SetFailAfter(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		c.failAfter = -1
		return
	}
	c.failAfter = c.ops + n
}

// Ops returns the number of faultable operations performed so far.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Dead reports whether the simulated process has crashed (fault point hit
// or CutPower called).
func (c *CrashFS) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// CutPower kills the filesystem immediately: every subsequent operation
// fails with ErrInjected until Reboot.
func (c *CrashFS) CutPower() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = true
}

// Reboot models the machine coming back up: the filesystem becomes usable
// again with fault injection disarmed. With keepUnsynced=false only durable
// (synced) content survives — the pessimistic crash. With keepUnsynced=true
// every completed (and the torn) write survives — the optimistic crash. Any
// real power cut yields a disk between the two, so recovery code must
// tolerate both. Open handles from before the reboot are dead; reopen files
// through the rebooted filesystem.
func (c *CrashFS) Reboot(keepUnsynced bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !keepUnsynced {
		files := make(map[string]*crashNode, len(c.durable))
		for name, data := range c.durable {
			files[name] = &crashNode{name: name, data: append([]byte(nil), data...)}
		}
		c.files = files
	} else {
		// Keep volatile content, but drop any stale handle aliasing by
		// re-keying nodes under their current names only.
		for name, n := range c.files {
			n.name = name
		}
	}
	c.dead = false
	c.failAfter = -1
}

// tick accounts one faultable operation. It returns (tear, err): err is
// non-nil when the filesystem is already dead or this operation faults;
// tear is true when this operation is the fault point itself (the caller
// applies a torn prefix before dying).
func (c *CrashFS) tick() (bool, error) {
	if c.dead {
		return false, ErrInjected
	}
	c.ops++
	if c.failAfter >= 0 && c.ops > c.failAfter {
		c.dead = true
		return true, ErrInjected
	}
	return false, nil
}

// OpenFile implements VFS.
func (c *CrashFS) OpenFile(name string) (VFile, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, ErrInjected
	}
	n, ok := c.files[name]
	if !ok {
		n = &crashNode{name: name}
		c.files[name] = n
	}
	return &crashFile{fs: c, node: n}, nil
}

// ReadFile implements VFS.
func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, ErrInjected
	}
	n, ok := c.files[name]
	if !ok {
		return nil, notExistError(name)
	}
	return append([]byte(nil), n.data...), nil
}

// Rename implements VFS (atomic, immediately durable — see type comment).
func (c *CrashFS) Rename(oldname, newname string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.tick(); err != nil {
		return err
	}
	n, ok := c.files[oldname]
	if !ok {
		return notExistError(oldname)
	}
	delete(c.files, oldname)
	n.name = newname
	c.files[newname] = n
	if d, ok := c.durable[oldname]; ok {
		delete(c.durable, oldname)
		c.durable[newname] = d
	} else {
		delete(c.durable, newname)
	}
	return nil
}

// Remove implements VFS.
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return ErrInjected
	}
	if _, ok := c.files[name]; !ok {
		return notExistError(name)
	}
	delete(c.files, name)
	delete(c.durable, name)
	return nil
}

// ListDir implements VFS. CrashFS namespaces are flat; a file belongs to
// dir when filepath.Dir of its name equals dir (so relative names like
// "db.idx" live in ".").
func (c *CrashFS) ListDir(dir string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, ErrInjected
	}
	var names []string
	for name := range c.files {
		if filepath.Dir(name) == dir {
			names = append(names, name)
		}
	}
	return names, nil
}

// Exists implements VFS.
func (c *CrashFS) Exists(name string) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return false, ErrInjected
	}
	_, ok := c.files[name]
	return ok, nil
}

// crashFile is an open handle on a CrashFS file.
type crashFile struct {
	fs   *CrashFS
	node *crashNode
}

func (f *crashFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.dead {
		return 0, ErrInjected
	}
	data := f.node.data
	if off >= int64(len(data)) {
		return 0, fmt.Errorf("store: read at %d past end of %s (%d bytes)", off, f.node.name, len(data))
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, fmt.Errorf("store: short read of %s at %d", f.node.name, off)
	}
	return n, nil
}

func (f *crashFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	tear, err := f.fs.tick()
	n := len(p)
	if err != nil {
		if !tear {
			return 0, err
		}
		// The fatal write: only a prefix reaches the (volatile) file.
		n = len(p) / 2
	}
	if grow := off + int64(n) - int64(len(f.node.data)); grow > 0 {
		f.node.data = append(f.node.data, make([]byte, grow)...)
	}
	copy(f.node.data[off:], p[:n])
	if err != nil {
		return n, err
	}
	return n, nil
}

func (f *crashFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.dead {
		return 0, ErrInjected
	}
	return int64(len(f.node.data)), nil
}

func (f *crashFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, err := f.fs.tick(); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("store: truncate %s to negative size", f.node.name)
	}
	if size <= int64(len(f.node.data)) {
		f.node.data = f.node.data[:size]
	} else {
		f.node.data = append(f.node.data, make([]byte, size-int64(len(f.node.data)))...)
	}
	return nil
}

func (f *crashFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, err := f.fs.tick(); err != nil {
		return err
	}
	f.fs.durable[f.node.name] = append([]byte(nil), f.node.data...)
	return nil
}

func (f *crashFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.dead {
		return ErrInjected
	}
	return nil
}
