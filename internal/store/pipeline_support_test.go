package store

import (
	"bytes"
	"sync"
	"testing"
)

// Unit tests for the primitives the phased checkpoint pipeline leans on:
// WAL tail rotation (TruncateTo), incremental buffer flushing
// (DirtyPages/FlushPages), and deferred page reclamation
// (FileDisk.DeferFrees).

func walRecords(t *testing.T, fs VFS, path string) [][]byte {
	t.Helper()
	w, recs, err := OpenWAL(fs, path, WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWALTruncateToKeepsTail(t *testing.T) {
	fs := NewCrashFS()
	w, recs, err := OpenWAL(fs, "t.wal", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal holds %d records", len(recs))
	}
	appendRec := func(s string) WALToken {
		t.Helper()
		tok, err := w.Append([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(tok); err != nil {
			t.Fatal(err)
		}
		return tok
	}
	appendRec("alpha")
	appendRec("beta")
	mark := w.Mark()
	appendRec("gamma")
	appendRec("delta")

	removed, rewritten, err := w.TruncateTo(mark)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2*8 + len("alpha") + len("beta")); removed != want {
		t.Fatalf("removed %d bytes, want %d", removed, want)
	}
	if want := int64(2*8 + len("gamma") + len("delta")); rewritten != want {
		t.Fatalf("rewrote %d bytes, want the uncovered suffix (%d)", rewritten, want)
	}
	// Records appended after the mark survive, both live and on reopen.
	tok, err := w.Append([]byte("epsilon"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(tok); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := walRecords(t, fs, "t.wal")
	want := []string{"gamma", "delta", "epsilon"}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i, s := range want {
		if !bytes.Equal(got[i], []byte(s)) {
			t.Fatalf("record %d = %q, want %q", i, got[i], s)
		}
	}
}

func TestWALTruncateToEverything(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenWAL(fs, "e.wal", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tok, err := w.Append([]byte{byte('a' + i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(tok); err != nil {
			t.Fatal(err)
		}
	}
	if _, rewritten, err := w.TruncateTo(w.Mark()); err != nil || rewritten != 0 {
		t.Fatalf("full truncate = (rewritten %d, %v), want no rewrite", rewritten, err)
	}
	if w.Size() != 0 {
		t.Fatalf("size after full truncate = %d", w.Size())
	}
	// The logical offset keeps advancing across the truncation: appends
	// after it replay correctly.
	tok, err := w.Append([]byte("post"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(tok); err != nil {
		t.Fatal(err)
	}
	// A second truncate to an already-covered mark is a no-op.
	if n, _, err := w.TruncateTo(0); err != nil || n != 0 {
		t.Fatalf("stale-mark truncate = (%d, %v), want (0, nil)", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := walRecords(t, fs, "e.wal")
	if len(got) != 1 || !bytes.Equal(got[0], []byte("post")) {
		t.Fatalf("recovered %v, want [post]", got)
	}
}

// TestWALTruncateToCommitSatisfied: rotation makes everything remaining
// durable, so Commit tokens from before it return without another fsync.
func TestWALTruncateToCommitSatisfied(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenWAL(fs, "c.wal", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	tokA, err := w.Append([]byte("covered"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(tokA); err != nil {
		t.Fatal(err)
	}
	mark := w.Mark()
	tokB, err := w.Append([]byte("tail"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.TruncateTo(mark); err != nil {
		t.Fatal(err)
	}
	_, syncsBefore := w.Stats()
	if err := w.Commit(tokA); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(tokB); err != nil {
		t.Fatal(err)
	}
	if _, syncsAfter := w.Stats(); syncsAfter != syncsBefore {
		t.Fatalf("commits after rotation paid %d extra fsyncs", syncsAfter-syncsBefore)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALTruncateToCrash sweeps a fault point over every operation of a
// rotation: recovery must see either the whole log or exactly the tail —
// never a torn mix, and never a lost tail record.
func TestWALTruncateToCrash(t *testing.T) {
	run := func(fs *CrashFS) {
		w, _, err := OpenWAL(fs, "r.wal", WALSyncAlways)
		if err != nil {
			return
		}
		for _, s := range []string{"aa", "bb"} {
			tok, err := w.Append([]byte(s))
			if err != nil {
				return
			}
			if err := w.Commit(tok); err != nil {
				return
			}
		}
		mark := w.Mark()
		tok, err := w.Append([]byte("cc"))
		if err != nil {
			return
		}
		if err := w.Commit(tok); err != nil {
			return
		}
		_, _, _ = w.TruncateTo(mark)
	}

	golden := NewCrashFS()
	run(golden)
	total := golden.Ops()
	if total < 5 {
		t.Fatalf("suspiciously few ops: %d", total)
	}
	for _, keepUnsynced := range []bool{false, true} {
		for k := 0; k < total; k++ {
			fs := NewCrashFS()
			fs.SetFailAfter(k)
			run(fs)
			if !fs.Dead() {
				fs.CutPower()
			}
			fs.Reboot(keepUnsynced)
			recs := walRecords(t, fs, "r.wal")
			var got []string
			for _, r := range recs {
				got = append(got, string(r))
			}
			ok := false
			switch len(got) {
			case 0:
				ok = true // crashed before any commit was acknowledged
			case 1:
				ok = got[0] == "aa" || got[0] == "cc"
			case 2:
				ok = got[0] == "aa" && got[1] == "bb"
			case 3:
				ok = got[0] == "aa" && got[1] == "bb" && got[2] == "cc"
			}
			if !ok {
				t.Fatalf("k=%d keep=%v: recovered %v — torn rotation", k, keepUnsynced, got)
			}
			// The tail record, once the rotation completed, must survive:
			// if the log no longer starts with "aa", it must be exactly
			// ["cc"].
			if len(got) > 0 && got[0] != "aa" && !(len(got) == 1 && got[0] == "cc") {
				t.Fatalf("k=%d keep=%v: rotated log is %v, want [cc]", k, keepUnsynced, got)
			}
			if ok, _ := fs.Exists("r.wal.tmp"); ok {
				t.Fatalf("k=%d keep=%v: rotation staging file leaked past reopen", k, keepUnsynced)
			}
		}
	}
}

func TestBufferFlushPages(t *testing.T) {
	disk := NewMemDisk()
	bp := NewBufferPool(disk, 8)
	var ids []PageID
	for i := 0; i < 3; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.Data()[0] = byte(i + 1)
		ids = append(ids, p.ID())
		if err := bp.Unpin(p.ID(), true); err != nil {
			t.Fatal(err)
		}
	}
	dirty := bp.DirtyPages()
	if len(dirty) != 3 {
		t.Fatalf("DirtyPages = %v, want 3 ids", dirty)
	}
	n, err := bp.FlushPages(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("flushed %d pages, want 3", n)
	}
	// Idempotent: nothing left dirty, including ids that were never dirty
	// or are no longer resident.
	n, err = bp.FlushPages(append(dirty, PageID(999)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("second flush wrote %d pages, want 0", n)
	}
	var buf [PageSize]byte
	for i, id := range ids {
		if err := disk.Read(id, buf[:]); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d byte = %d, want %d", id, buf[0], i+1)
		}
	}
}

// TestBufferFlushPagesConcurrent runs FlushPages while other goroutines
// fetch and allocate — the flush-safety contract, exercised under -race.
func TestBufferFlushPagesConcurrent(t *testing.T) {
	disk := NewMemDisk()
	bp := NewBufferPool(disk, 16)
	var ids []PageID
	for i := 0; i < 12; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.Data()[0] = byte(i)
		ids = append(ids, p.ID())
		if err := bp.Unpin(p.ID(), true); err != nil {
			t.Fatal(err)
		}
	}
	dirty := bp.DirtyPages()
	var wg sync.WaitGroup
	errCh := make(chan error, 3)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[i%len(ids)]
				p, err := bp.Fetch(id)
				if err != nil {
					errCh <- err
					return
				}
				_ = p.Data()[0]
				if err := bp.Unpin(id, false); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := bp.FlushPages(dirty); err != nil {
			errCh <- err
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestFileDiskDeferFrees(t *testing.T) {
	fs := NewCrashFS()
	d, err := OpenFileDiskOn(fs, "d.idx")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	d.DeferFrees(true)
	if err := d.Free(ids[1]); err != nil {
		t.Fatal(err)
	}
	if got := d.PendingList(); len(got) != 1 || got[0] != ids[1] {
		t.Fatalf("PendingList = %v, want [%d]", got, ids[1])
	}
	if got := d.FreeList(); len(got) != 0 {
		t.Fatalf("FreeList = %v, want empty while deferred", got)
	}
	// A parked page must not be reallocated: the next Allocate extends.
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == ids[1] {
		t.Fatalf("parked page %d was reallocated mid-defer", id)
	}
	d.FlushPending()
	d.DeferFrees(false)
	if got := d.FreeList(); len(got) != 1 || got[0] != ids[1] {
		t.Fatalf("FreeList after flush = %v, want [%d]", got, ids[1])
	}
	id, err = d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[1] {
		t.Fatalf("Allocate after flush = %d, want recycled %d", id, ids[1])
	}
}

func TestListDir(t *testing.T) {
	fs := NewCrashFS()
	for _, name := range []string{"a.idx", "a.idx.meta", "a.idx.policies.3"} {
		f, err := fs.OpenFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("x"), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	names, err := fs.ListDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("ListDir = %v, want 3 names", names)
	}
	seen := make(map[string]bool)
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"a.idx", "a.idx.meta", "a.idx.policies.3"} {
		if !seen[want] {
			t.Fatalf("ListDir missing %s (got %v)", want, names)
		}
	}
}

// countingVFS wraps a VFS and counts the bytes written through WriteAt,
// per path, so tests can pin the I/O cost of an operation.
type countingVFS struct {
	VFS
	mu      sync.Mutex
	written map[string]int64
}

func newCountingVFS(inner VFS) *countingVFS {
	return &countingVFS{VFS: inner, written: make(map[string]int64)}
}

func (c *countingVFS) OpenFile(name string) (VFile, error) {
	f, err := c.VFS.OpenFile(name)
	if err != nil {
		return nil, err
	}
	return &countingVFile{VFile: f, fs: c, name: name}, nil
}

func (c *countingVFS) bytesWritten(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written[name]
}

type countingVFile struct {
	VFile
	fs   *countingVFS
	name string
}

func (f *countingVFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.VFile.WriteAt(p, off)
	f.fs.mu.Lock()
	f.fs.written[f.name] += int64(n)
	f.fs.mu.Unlock()
	return n, err
}

// TestWALTruncateToRewritesOnlySuffix pins log rotation's write cost to the
// uncovered suffix: however large the covered prefix grows, rotating away N
// prefix bytes must write only the surviving tail bytes (plus nothing to
// the log file itself) — the groundwork invariant for future segmentation.
func TestWALTruncateToRewritesOnlySuffix(t *testing.T) {
	fs := newCountingVFS(NewCrashFS())
	w, _, err := OpenWAL(fs, "s.wal", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately bulky covered prefix and a small tail.
	prefix := bytes.Repeat([]byte("p"), 4096)
	for i := 0; i < 32; i++ {
		tok, err := w.Append(prefix)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(tok); err != nil {
			t.Fatal(err)
		}
	}
	mark := w.Mark()
	tail := []byte("tiny-tail-record")
	tok, err := w.Append(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(tok); err != nil {
		t.Fatal(err)
	}

	before := fs.bytesWritten("s.wal.tmp") + fs.bytesWritten("s.wal")
	removed, rewritten, err := w.TruncateTo(mark)
	if err != nil {
		t.Fatal(err)
	}
	after := fs.bytesWritten("s.wal.tmp") + fs.bytesWritten("s.wal")

	tailFramed := int64(8 + len(tail))
	if rewritten != tailFramed {
		t.Fatalf("reported rewrite of %d bytes, want the %d-byte suffix", rewritten, tailFramed)
	}
	if want := int64(32 * (8 + len(prefix))); removed != want {
		t.Fatalf("removed %d bytes, want %d", removed, want)
	}
	if wrote := after - before; wrote != tailFramed {
		t.Fatalf("rotation physically wrote %d bytes, want exactly the %d-byte suffix", wrote, tailFramed)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs := walRecords(t, fs, "s.wal")
	if len(recs) != 1 || !bytes.Equal(recs[0], tail) {
		t.Fatalf("post-rotation log holds %d records", len(recs))
	}
}
