package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// appendCommit appends one record and commits it.
func appendCommit(t *testing.T, w *WAL, payload []byte) {
	t.Helper()
	tok, err := w.Append(payload)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Commit(tok); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestWALAppendReplay(t *testing.T) {
	for _, policy := range []WALSyncPolicy{WALSyncAlways, WALSyncGrouped, WALSyncNone} {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			fs := NewCrashFS()
			w, recs, err := OpenWAL(fs, "log", policy)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 0 {
				t.Fatalf("fresh wal holds %d records", len(recs))
			}
			var want [][]byte
			for i := 0; i < 20; i++ {
				payload := bytes.Repeat([]byte{byte(i)}, i*7+1)
				want = append(want, payload)
				appendCommit(t, w, payload)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			_, got, err := OpenWAL(fs, "log", policy)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("reopened wal holds %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestWALTornTailDropped(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	appendCommit(t, w, []byte("alpha"))
	appendCommit(t, w, []byte("beta"))

	// Tear the third append mid-write: the record's prefix lands in the
	// file without its full payload/CRC.
	fs.SetFailAfter(0)
	if _, err := w.Append([]byte("gamma-torn-record")); err == nil {
		t.Fatal("append survived injected tear")
	}
	fs.Reboot(true) // keep the torn bytes: the checksum must reject them

	_, recs, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "alpha" || string(recs[1]) != "beta" {
		t.Fatalf("recovered %q, want [alpha beta]", recs)
	}
}

func TestWALCorruptTailTruncatedOnOpen(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	appendCommit(t, w, []byte("keep"))
	w.Close()

	// Flip a payload byte of a appended-but-valid second record.
	f, _ := fs.OpenFile("log")
	size, _ := f.Size()
	w2, _, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	appendCommit(t, w2, []byte("corrupt-me"))
	w2.Close()
	if _, err := f.WriteAt([]byte{0xFF}, size+9); err != nil {
		t.Fatal(err)
	}

	_, recs, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "keep" {
		t.Fatalf("recovered %q, want [keep]", recs)
	}
	// The corrupt tail was truncated away, so appends extend a clean log.
	f2, _ := fs.OpenFile("log")
	if got, _ := f2.Size(); got != size {
		t.Fatalf("log size %d after truncation, want %d", got, size)
	}
}

func TestWALZeroFilledTailDropped(t *testing.T) {
	// A crashed filesystem often extends a file with zeros before the data
	// reaches disk. An all-zero header must read as tail garbage — not as
	// an endless run of valid empty records (CRC-32C of "" is 0).
	fs := NewCrashFS()
	w, _, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	appendCommit(t, w, []byte("real"))
	w.Close()
	f, _ := fs.OpenFile("log")
	size, _ := f.Size()
	if _, err := f.WriteAt(make([]byte, 64), size); err != nil {
		t.Fatal(err)
	}

	_, recs, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "real" {
		t.Fatalf("recovered %q, want [real]", recs)
	}
	f2, _ := fs.OpenFile("log")
	if got, _ := f2.Size(); got != size {
		t.Fatalf("zero tail not truncated: size %d, want %d", got, size)
	}
	// And the source of such records is rejected at the door.
	w2, _, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
}

func TestWALTruncateSatisfiesCommits(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenWAL(fs, "log", WALSyncNone)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := w.Append([]byte("will-be-checkpointed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	// The record is gone from the log (a checkpoint covers it); its commit
	// must still succeed, and the log must be empty on reopen.
	if err := w.Commit(tok); err != nil {
		t.Fatalf("commit after truncate: %v", err)
	}
	appendCommit(t, w, []byte("next-era"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs, err := OpenWAL(fs, "log", WALSyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "next-era" {
		t.Fatalf("recovered %q, want [next-era]", recs)
	}
}

func TestWALPoisonedAfterSyncFailure(t *testing.T) {
	fs := NewCrashFS()
	w, _, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	appendCommit(t, w, []byte("ok"))
	fs.SetFailAfter(1) // the append's write succeeds, its fsync fails
	tok, err := w.Append([]byte("doomed"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Commit(tok); err == nil {
		t.Fatal("commit survived failed fsync")
	}
	// Poisoned: later appends and commits must keep failing.
	fs.Reboot(true)
	if _, err := w.Append([]byte("after")); err == nil {
		t.Fatal("append accepted on poisoned wal")
	}
	if err := w.Commit(tok); err == nil {
		t.Fatal("commit accepted on poisoned wal")
	}
}

func TestWALValidationFailuresPoison(t *testing.T) {
	// Owners apply state before logging, so a record the WAL refuses is a
	// hole: the log must go fail-stop, not shrug and take later records.
	fs := NewCrashFS()
	w, _, err := OpenWAL(fs, "log", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(make([]byte, walMaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if _, err := w.Append([]byte("after")); err == nil {
		t.Fatal("append accepted after a refused record")
	}

	w2, _, err := OpenWAL(fs, "log2", WALSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	w2.Poison(fmt.Errorf("owner could not marshal a record"))
	if _, err := w2.Append([]byte("x")); err == nil {
		t.Fatal("append accepted on explicitly poisoned wal")
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	for _, policy := range []WALSyncPolicy{WALSyncAlways, WALSyncGrouped} {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			fs := NewCrashFS()
			w, _, err := OpenWAL(fs, "log", policy)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines, per = 8, 25
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						tok, err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i)))
						if err == nil {
							err = w.Commit(tok)
						}
						if err != nil {
							errs <- err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
			w.Close()
			_, recs, err := OpenWAL(fs, "log", policy)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != goroutines*per {
				t.Fatalf("recovered %d records, want %d", len(recs), goroutines*per)
			}
		})
	}
}

func TestCrashFSDurability(t *testing.T) {
	fs := NewCrashFS()
	f, err := fs.OpenFile("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("synced"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("UNSYNC"), 6); err != nil {
		t.Fatal(err)
	}
	fs.CutPower()
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("write on dead fs: %v", err)
	}
	fs.Reboot(false)
	got, err := fs.ReadFile("data")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced" {
		t.Fatalf("pessimistic reboot kept %q, want %q", got, "synced")
	}
}

func TestCrashFSRenameAtomicDurable(t *testing.T) {
	fs := NewCrashFS()
	f, _ := fs.OpenFile("meta.tmp")
	if _, err := f.WriteAt([]byte("new"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("meta.tmp", "meta"); err != nil {
		t.Fatal(err)
	}
	fs.CutPower()
	fs.Reboot(false)
	got, err := fs.ReadFile("meta")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("renamed file = %q, want %q", got, "new")
	}
	if ok, _ := fs.Exists("meta.tmp"); ok {
		t.Fatal("temp name survived rename")
	}
}
