package store

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// VFS is the small filesystem surface the durability layer runs on: the
// backing data file, the write-ahead log, and the checkpoint side files all
// perform their I/O through a VFS so crash tests can substitute CrashFS —
// an in-memory filesystem that tears writes and simulates power cuts —
// while production code uses OSFS.
//
// Durability semantics implementations must provide:
//
//   - writes become durable only after VFile.Sync returns;
//   - Rename atomically replaces newname with oldname's file, and the
//     rename itself is durable once it returns (journaled-filesystem
//     behavior) — callers still Sync file *contents* before renaming;
//   - a missing file is reported with an error satisfying
//     errors.Is(err, fs.ErrNotExist).
type VFS interface {
	// OpenFile opens name for read/write, creating it (empty) if absent.
	OpenFile(name string) (VFile, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name. Removing a missing file is an error
	// (fs.ErrNotExist).
	Remove(name string) error
	// Exists reports whether name exists.
	Exists(name string) (bool, error)
	// ListDir returns the full paths of the files in dir (no recursion,
	// no ordering guarantee). Startup housekeeping uses it to sweep
	// orphaned temp and superseded side files a crash left behind.
	ListDir(dir string) ([]string, error)
}

// VFile is an open file of a VFS. Implementations need not be safe for
// concurrent use beyond what the WAL requires: concurrent WriteAt to
// disjoint ranges; Sync concurrent with WriteAt, with another Sync, and
// with Truncate (a checkpoint truncates the log while a group-commit
// leader may still be inside its fsync).
type VFile interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	// Size returns the file's current length.
	Size() (int64, error)
	// Truncate resizes the file to size bytes.
	Truncate(size int64) error
	// Sync makes all written data durable.
	Sync() error
	Close() error
}

// OSFS is the production VFS, backed by the operating system.
type OSFS struct{}

// OpenFile implements VFS. Creating a file fsyncs the parent directory:
// on POSIX the new directory entry is otherwise not durable, and a WAL
// whose *file* could vanish in a power cut would void every durability
// acknowledgment made through it.
func (OSFS) OpenFile(name string) (VFile, error) {
	_, statErr := os.Stat(name)
	creating := os.IsNotExist(statErr)
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if creating {
		if err := syncDir(filepath.Dir(name)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return osFile{f}, nil
}

// syncDir fsyncs a directory, making entry changes (creates, renames)
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("store: sync dir: %w", serr)
	}
	return cerr
}

// ReadFile implements VFS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements VFS. The parent directory is fsynced afterwards: the
// VFS contract promises the rename is durable on return (checkpoint
// commit points depend on it), and on POSIX a rename lives in the
// directory, not the file.
func (OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	return syncDir(filepath.Dir(newname))
}

// Remove implements VFS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ListDir implements VFS.
func (OSFS) ListDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	return names, nil
}

// Exists implements VFS.
func (OSFS) Exists(name string) (bool, error) {
	_, err := os.Stat(name)
	switch {
	case err == nil:
		return true, nil
	case os.IsNotExist(err):
		return false, nil
	default:
		return false, err
	}
}

// osFile adapts *os.File to VFile.
type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Close() error                             { return o.f.Close() }

func (o osFile) Size() (int64, error) {
	info, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// notExistError builds a VFS not-found error for in-memory implementations.
func notExistError(name string) error {
	return fmt.Errorf("store: %s: %w", name, fs.ErrNotExist)
}

// WriteFileAtomic durably replaces path with data: the bytes are written
// to path+".tmp", truncated to length (the temp file may be a longer
// leftover from an interrupted attempt), fsynced, and renamed over path.
// A crash at any point leaves either the old file or the new one, never a
// torn mix — the write-temp/fsync/rename pattern checkpoint side files
// are published with.
func WriteFileAtomic(vfs VFS, path string, data []byte) error {
	if err := StageFile(vfs, path, data); err != nil {
		return err
	}
	return CommitStagedFile(vfs, path)
}

// StageFile durably writes data to path+".tmp" without publishing it: the
// staged bytes are written, truncated to length, and fsynced, but path
// itself is untouched. CommitStagedFile publishes the staged content with
// a single rename. Splitting the two lets a checkpoint pay the content
// fsyncs in its lock-free build phase and keep only the rename — the
// commit point — inside its publish critical section.
func StageFile(vfs VFS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := vfs.OpenFile(tmp)
	if err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := f.Truncate(int64(len(data))); err != nil {
		f.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	return nil
}

// CommitStagedFile atomically replaces path with the content StageFile
// staged at path+".tmp". The rename is durable on return (VFS contract).
func CommitStagedFile(vfs VFS, path string) error {
	if err := vfs.Rename(path+".tmp", path); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	return nil
}
