package store

import (
	"fmt"
	"sort"
	"sync"
)

// FileDisk is a DiskManager backed by a regular file (through a VFS, so
// crash tests can substitute CrashFS), for indexes that persist across
// processes. Page id N lives at byte offset (N-1)*PageSize.
//
// The allocator state — the high-water mark and the free list — is held in
// memory; the owner persists it in its checkpoint metadata and restores it
// with Reconcile after reopening, so pages freed before a checkpoint are
// reusable after a restart instead of leaking. Without Reconcile an
// existing file is treated conservatively as fully allocated up to its
// length (the pre-free-list behavior, still used for v1 checkpoints).
//
// FileDisk guards its own state with an internal mutex, so the owner may
// call it from several goroutines — the buffer pool serializing most
// access, plus a checkpoint build phase reading allocator state and
// syncing the file without holding the pool's lock.
type FileDisk struct {
	mu    sync.Mutex
	f     VFile
	next  PageID
	free  []PageID
	alive map[PageID]bool
	stats DiskStats

	// Deferred reclamation (checkpoint builds). While deferFrees is set,
	// Free parks ids in pending instead of the free list: a page freed
	// while a checkpoint image is being built must not be reallocated —
	// and overwritten — before that checkpoint's commit point, because the
	// *previous* checkpoint may still reference it as live. FlushPending
	// moves the parked ids to the free list once the new commit point is
	// durable.
	deferFrees bool
	pending    []PageID
}

// OpenFileDisk opens (creating if necessary) a file-backed disk at path on
// the operating system's filesystem.
func OpenFileDisk(path string) (*FileDisk, error) {
	return OpenFileDiskOn(OSFS{}, path)
}

// OpenFileDiskOn opens (creating if necessary) a file-backed disk at path
// on fs. An existing file is treated as fully allocated up to its length;
// call Reconcile to restore checkpointed allocator state.
func OpenFileDiskOn(fs VFS, path string) (*FileDisk, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: open file disk: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat file disk: %w", err)
	}
	pages := PageID(size / PageSize)
	fd := &FileDisk{f: f, next: pages + 1, alive: make(map[PageID]bool)}
	for id := PageID(1); id <= pages; id++ {
		fd.alive[id] = true
	}
	fd.stats.PagesAlive = uint64(pages)
	return fd, nil
}

// Reconcile restores checkpointed allocator state: the disk holds numPages
// pages of which free are unallocated. The backing file must cover all
// numPages (a shorter file means the checkpoint references pages that were
// never made durable — corruption the caller should have detected). Extra
// file length beyond numPages (pages allocated after the checkpoint being
// restored) is abandoned; those byte ranges are rewritten when the ids are
// allocated again.
func (d *FileDisk) Reconcile(numPages uint64, free []PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	size, err := d.f.Size()
	if err != nil {
		return fmt.Errorf("store: stat file disk: %w", err)
	}
	if uint64(size/PageSize) < numPages {
		return fmt.Errorf("store: file holds %d pages, checkpoint expects %d", size/PageSize, numPages)
	}
	alive := make(map[PageID]bool, numPages)
	for id := PageID(1); id <= PageID(numPages); id++ {
		alive[id] = true
	}
	for _, id := range free {
		if id == InvalidPageID || uint64(id) > numPages {
			return fmt.Errorf("store: free page %d outside disk of %d pages", id, numPages)
		}
		if !alive[id] {
			return fmt.Errorf("store: page %d freed twice in checkpoint", id)
		}
		delete(alive, id)
	}
	d.next = PageID(numPages) + 1
	d.free = append([]PageID(nil), free...)
	// Pop the smallest id first, for deterministic layouts (like MemDisk).
	sort.Slice(d.free, func(i, j int) bool { return d.free[i] > d.free[j] })
	d.alive = alive
	d.stats.PagesAlive = uint64(len(alive))
	return nil
}

// NumPages returns the allocator's high-water mark: every page id ever
// allocated is ≤ NumPages.
func (d *FileDisk) NumPages() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint64(d.next - 1)
}

// FreeList returns the currently free page ids (ascending). Parked ids
// (see DeferFrees) are not included — use PendingList.
func (d *FileDisk) FreeList() []PageID {
	d.mu.Lock()
	out := append([]PageID(nil), d.free...)
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AliveList returns the currently allocated page ids (ascending).
func (d *FileDisk) AliveList() []PageID {
	d.mu.Lock()
	out := make([]PageID, 0, len(d.alive))
	for id := range d.alive {
		out = append(out, id)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeferFrees toggles deferred reclamation: while enabled, freed pages are
// parked (unallocated but not reusable) instead of entering the free list.
// A checkpoint enables it at its cut and flushes the parked ids at its
// publish, so no page freed mid-build can be reallocated while an on-disk
// checkpoint might still reference it. Disabling does NOT flush pending —
// an aborted checkpoint keeps its parked pages out of circulation until a
// later checkpoint commits (they are reported by PendingList so the later
// checkpoint's metadata can account for them as free).
func (d *FileDisk) DeferFrees(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deferFrees = on
}

// PendingList returns the parked page ids (ascending).
func (d *FileDisk) PendingList() []PageID {
	d.mu.Lock()
	out := append([]PageID(nil), d.pending...)
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FlushPending moves every parked id to the free list, making the pages
// reallocatable. Called after a checkpoint's commit point is durable.
func (d *FileDisk) FlushPending() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.free = append(d.free, d.pending...)
	d.pending = nil
}

// Close flushes and closes the underlying file.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// Sync implements DiskManager: it fsyncs the backing file, making every
// completed Write durable. Sync deliberately does not hold the disk mutex
// across the (possibly long) fsync, so concurrent page I/O proceeds; the
// VFile contract requires Sync to be safe alongside WriteAt.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	f := d.f
	d.mu.Unlock()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync file disk: %w", err)
	}
	return nil
}

// Allocate implements DiskManager.
func (d *FileDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var id PageID
	if n := len(d.free); n > 0 {
		// Reused slots are not re-zeroed: every allocation goes through
		// BufferPool.NewPage, which zeroes the frame and marks it dirty,
		// so the slot is rewritten before anything can read it.
		id = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		id = d.next
		d.next++
		if d.next == 0 {
			return InvalidPageID, fmt.Errorf("store: page id space exhausted")
		}
		// Extend the file so reads of the fresh page succeed.
		var zero [PageSize]byte
		if _, err := d.f.WriteAt(zero[:], int64(id-1)*PageSize); err != nil {
			d.next-- // return the id so the allocator does not leak it
			return InvalidPageID, fmt.Errorf("store: extend file disk: %w", err)
		}
	}
	d.alive[id] = true
	d.stats.Allocs++
	d.stats.PagesAlive++
	return id, nil
}

// Free implements DiskManager. Under DeferFrees the id is parked rather
// than made reallocatable (see DeferFrees).
func (d *FileDisk) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.alive[id] {
		return fmt.Errorf("store: free of unallocated page %d", id)
	}
	delete(d.alive, id)
	if d.deferFrees {
		d.pending = append(d.pending, id)
	} else {
		d.free = append(d.free, id)
	}
	d.stats.Frees++
	d.stats.PagesAlive--
	return nil
}

// Read implements DiskManager.
func (d *FileDisk) Read(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(buf) != PageSize {
		return fmt.Errorf("store: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if !d.alive[id] {
		return fmt.Errorf("store: read of unallocated page %d", id)
	}
	if _, err := d.f.ReadAt(buf, int64(id-1)*PageSize); err != nil {
		return fmt.Errorf("store: read page %d: %w", id, err)
	}
	d.stats.Reads++
	return nil
}

// Write implements DiskManager.
func (d *FileDisk) Write(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(buf) != PageSize {
		return fmt.Errorf("store: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if !d.alive[id] {
		return fmt.Errorf("store: write to unallocated page %d", id)
	}
	if _, err := d.f.WriteAt(buf, int64(id-1)*PageSize); err != nil {
		return fmt.Errorf("store: write page %d: %w", id, err)
	}
	d.stats.Writes++
	return nil
}

// Stats implements DiskManager.
func (d *FileDisk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats implements DiskManager.
func (d *FileDisk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	alive := d.stats.PagesAlive
	d.stats = DiskStats{PagesAlive: alive}
}
