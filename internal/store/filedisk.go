package store

import (
	"fmt"
	"sort"
)

// FileDisk is a DiskManager backed by a regular file (through a VFS, so
// crash tests can substitute CrashFS), for indexes that persist across
// processes. Page id N lives at byte offset (N-1)*PageSize.
//
// The allocator state — the high-water mark and the free list — is held in
// memory; the owner persists it in its checkpoint metadata and restores it
// with Reconcile after reopening, so pages freed before a checkpoint are
// reusable after a restart instead of leaking. Without Reconcile an
// existing file is treated conservatively as fully allocated up to its
// length (the pre-free-list behavior, still used for v1 checkpoints).
type FileDisk struct {
	f     VFile
	next  PageID
	free  []PageID
	alive map[PageID]bool
	stats DiskStats
}

// OpenFileDisk opens (creating if necessary) a file-backed disk at path on
// the operating system's filesystem.
func OpenFileDisk(path string) (*FileDisk, error) {
	return OpenFileDiskOn(OSFS{}, path)
}

// OpenFileDiskOn opens (creating if necessary) a file-backed disk at path
// on fs. An existing file is treated as fully allocated up to its length;
// call Reconcile to restore checkpointed allocator state.
func OpenFileDiskOn(fs VFS, path string) (*FileDisk, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: open file disk: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat file disk: %w", err)
	}
	pages := PageID(size / PageSize)
	fd := &FileDisk{f: f, next: pages + 1, alive: make(map[PageID]bool)}
	for id := PageID(1); id <= pages; id++ {
		fd.alive[id] = true
	}
	fd.stats.PagesAlive = uint64(pages)
	return fd, nil
}

// Reconcile restores checkpointed allocator state: the disk holds numPages
// pages of which free are unallocated. The backing file must cover all
// numPages (a shorter file means the checkpoint references pages that were
// never made durable — corruption the caller should have detected). Extra
// file length beyond numPages (pages allocated after the checkpoint being
// restored) is abandoned; those byte ranges are rewritten when the ids are
// allocated again.
func (d *FileDisk) Reconcile(numPages uint64, free []PageID) error {
	size, err := d.f.Size()
	if err != nil {
		return fmt.Errorf("store: stat file disk: %w", err)
	}
	if uint64(size/PageSize) < numPages {
		return fmt.Errorf("store: file holds %d pages, checkpoint expects %d", size/PageSize, numPages)
	}
	alive := make(map[PageID]bool, numPages)
	for id := PageID(1); id <= PageID(numPages); id++ {
		alive[id] = true
	}
	for _, id := range free {
		if id == InvalidPageID || uint64(id) > numPages {
			return fmt.Errorf("store: free page %d outside disk of %d pages", id, numPages)
		}
		if !alive[id] {
			return fmt.Errorf("store: page %d freed twice in checkpoint", id)
		}
		delete(alive, id)
	}
	d.next = PageID(numPages) + 1
	d.free = append([]PageID(nil), free...)
	// Pop the smallest id first, for deterministic layouts (like MemDisk).
	sort.Slice(d.free, func(i, j int) bool { return d.free[i] > d.free[j] })
	d.alive = alive
	d.stats.PagesAlive = uint64(len(alive))
	return nil
}

// NumPages returns the allocator's high-water mark: every page id ever
// allocated is ≤ NumPages.
func (d *FileDisk) NumPages() uint64 { return uint64(d.next - 1) }

// FreeList returns the currently free page ids (ascending).
func (d *FileDisk) FreeList() []PageID {
	out := append([]PageID(nil), d.free...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AliveList returns the currently allocated page ids (ascending).
func (d *FileDisk) AliveList() []PageID {
	out := make([]PageID, 0, len(d.alive))
	for id := range d.alive {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Close flushes and closes the underlying file.
func (d *FileDisk) Close() error { return d.f.Close() }

// Sync implements DiskManager: it fsyncs the backing file, making every
// completed Write durable.
func (d *FileDisk) Sync() error {
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("store: sync file disk: %w", err)
	}
	return nil
}

// Allocate implements DiskManager.
func (d *FileDisk) Allocate() (PageID, error) {
	var id PageID
	if n := len(d.free); n > 0 {
		// Reused slots are not re-zeroed: every allocation goes through
		// BufferPool.NewPage, which zeroes the frame and marks it dirty,
		// so the slot is rewritten before anything can read it.
		id = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		id = d.next
		d.next++
		if d.next == 0 {
			return InvalidPageID, fmt.Errorf("store: page id space exhausted")
		}
		// Extend the file so reads of the fresh page succeed.
		var zero [PageSize]byte
		if _, err := d.f.WriteAt(zero[:], int64(id-1)*PageSize); err != nil {
			d.next-- // return the id so the allocator does not leak it
			return InvalidPageID, fmt.Errorf("store: extend file disk: %w", err)
		}
	}
	d.alive[id] = true
	d.stats.Allocs++
	d.stats.PagesAlive++
	return id, nil
}

// Free implements DiskManager.
func (d *FileDisk) Free(id PageID) error {
	if !d.alive[id] {
		return fmt.Errorf("store: free of unallocated page %d", id)
	}
	delete(d.alive, id)
	d.free = append(d.free, id)
	d.stats.Frees++
	d.stats.PagesAlive--
	return nil
}

// Read implements DiskManager.
func (d *FileDisk) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("store: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if !d.alive[id] {
		return fmt.Errorf("store: read of unallocated page %d", id)
	}
	if _, err := d.f.ReadAt(buf, int64(id-1)*PageSize); err != nil {
		return fmt.Errorf("store: read page %d: %w", id, err)
	}
	d.stats.Reads++
	return nil
}

// Write implements DiskManager.
func (d *FileDisk) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("store: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if !d.alive[id] {
		return fmt.Errorf("store: write to unallocated page %d", id)
	}
	if _, err := d.f.WriteAt(buf, int64(id-1)*PageSize); err != nil {
		return fmt.Errorf("store: write page %d: %w", id, err)
	}
	d.stats.Writes++
	return nil
}

// Stats implements DiskManager.
func (d *FileDisk) Stats() DiskStats { return d.stats }

// ResetStats implements DiskManager.
func (d *FileDisk) ResetStats() {
	alive := d.stats.PagesAlive
	d.stats = DiskStats{PagesAlive: alive}
}
