package store

import (
	"fmt"
	"os"
)

// FileDisk is a DiskManager backed by a regular file, for users who want
// indexes that persist across processes. Page id N lives at byte offset
// (N-1)*PageSize. The free list is kept in memory only; a production system
// would persist it, but experiments in this repository rebuild indexes from
// workloads, so persistence of the allocator is out of scope.
type FileDisk struct {
	f     *os.File
	next  PageID
	free  []PageID
	alive map[PageID]bool
	stats DiskStats
}

// OpenFileDisk opens (creating if necessary) a file-backed disk at path.
// An existing file is treated as fully allocated up to its length.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open file disk: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat file disk: %w", err)
	}
	pages := PageID(info.Size() / PageSize)
	fd := &FileDisk{f: f, next: pages + 1, alive: make(map[PageID]bool)}
	for id := PageID(1); id <= pages; id++ {
		fd.alive[id] = true
	}
	fd.stats.PagesAlive = uint64(pages)
	return fd, nil
}

// Close flushes and closes the underlying file.
func (d *FileDisk) Close() error { return d.f.Close() }

// Allocate implements DiskManager.
func (d *FileDisk) Allocate() (PageID, error) {
	var id PageID
	if n := len(d.free); n > 0 {
		id = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		id = d.next
		d.next++
		if d.next == 0 {
			return InvalidPageID, fmt.Errorf("store: page id space exhausted")
		}
		// Extend the file so reads of the fresh page succeed.
		var zero [PageSize]byte
		if _, err := d.f.WriteAt(zero[:], int64(id-1)*PageSize); err != nil {
			return InvalidPageID, fmt.Errorf("store: extend file disk: %w", err)
		}
	}
	d.alive[id] = true
	d.stats.Allocs++
	d.stats.PagesAlive++
	return id, nil
}

// Free implements DiskManager.
func (d *FileDisk) Free(id PageID) error {
	if !d.alive[id] {
		return fmt.Errorf("store: free of unallocated page %d", id)
	}
	delete(d.alive, id)
	d.free = append(d.free, id)
	d.stats.Frees++
	d.stats.PagesAlive--
	return nil
}

// Read implements DiskManager.
func (d *FileDisk) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("store: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if !d.alive[id] {
		return fmt.Errorf("store: read of unallocated page %d", id)
	}
	if _, err := d.f.ReadAt(buf, int64(id-1)*PageSize); err != nil {
		return fmt.Errorf("store: read page %d: %w", id, err)
	}
	d.stats.Reads++
	return nil
}

// Write implements DiskManager.
func (d *FileDisk) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("store: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if !d.alive[id] {
		return fmt.Errorf("store: write to unallocated page %d", id)
	}
	if _, err := d.f.WriteAt(buf, int64(id-1)*PageSize); err != nil {
		return fmt.Errorf("store: write page %d: %w", id, err)
	}
	d.stats.Writes++
	return nil
}

// Stats implements DiskManager.
func (d *FileDisk) Stats() DiskStats { return d.stats }

// ResetStats implements DiskManager.
func (d *FileDisk) ResetStats() {
	alive := d.stats.PagesAlive
	d.stats = DiskStats{PagesAlive: alive}
}
