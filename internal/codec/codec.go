// Package codec holds the low-level binary serialization primitives shared
// by the durability formats: the WAL record codec (peb/walcodec.go) and the
// policy snapshot envelope (internal/policy/persist.go).
//
// Two conventions tie the formats together:
//
//   - Append-style encoding. Every encoder is a pure append onto a
//     caller-owned []byte, so hot paths reuse one buffer and allocate
//     nothing at steady state.
//
//   - Magic-byte versioning against legacy gob. The first byte of an
//     encoding/gob stream is the first byte of a uvarint message length:
//     either a direct small length (0x00–0x7F) or a length-of-length marker
//     (0xF8–0xFF). Any byte in 0x80–0xF7 therefore unambiguously marks a
//     post-gob binary format, letting readers dispatch old/new on one byte.
//     Formats pick distinct magics from that range (LegacyGobFirstByte
//     reports the gob side of the dispatch).
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Magic bytes of the binary formats. All must satisfy !LegacyGobFirstByte.
const (
	// MagicWALRecord marks a binary WAL record (peb/walcodec.go).
	MagicWALRecord = 0xB6
	// MagicPolicySnapshot marks an enveloped policy snapshot
	// (internal/policy/persist.go).
	MagicPolicySnapshot = 0xC7
)

// LegacyGobFirstByte reports whether b can begin an encoding/gob stream —
// the dispatch predicate binary formats rely on when sniffing legacy data.
func LegacyGobFirstByte(b byte) bool { return b <= 0x7F || b >= 0xF8 }

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendFloat appends f as a "vfloat": the IEEE-754 bits byte-reversed,
// then varint-encoded. Real-world coordinates and timestamps are mostly
// small integers or short decimals whose mantissa tail is zero; the byte
// swap moves those zeros to the top where the varint drops them, so
// typical values cost 2–4 bytes instead of 8. The transform is exact for
// every float64 (NaN, ±Inf and −0 included).
func AppendFloat(b []byte, f float64) []byte {
	return binary.AppendUvarint(b, bits.ReverseBytes64(math.Float64bits(f)))
}

// AppendBytes appends p as a uvarint length followed by the raw bytes.
func AppendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// Reader is a strict bounds-checked decoder over one encoded buffer. Every
// Take* method validates its read and records the first failure in err;
// after a failure all further reads return zero values, so decoders can
// read a whole structure and check Err once. A Reader never panics on
// arbitrary input — the property the WAL fuzz tests pin.
type Reader struct {
	data []byte
	pos  int
	err  error
}

// NewReader returns a Reader over data starting at offset pos (callers
// typically skip the magic byte they already dispatched on).
func NewReader(data []byte, pos int) *Reader {
	return &Reader{data: data, pos: pos}
}

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.data) - r.pos }

// Failf records a decode failure (the first one wins). Decoders use it for
// semantic validation beyond raw bounds checks.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// ExpectEnd fails unless the buffer is fully consumed — trailing garbage
// means a framing bug or corruption, never padding.
func (r *Reader) ExpectEnd() {
	if r.err == nil && r.pos != len(r.data) {
		r.Failf("%d trailing bytes", len(r.data)-r.pos)
	}
}

// TakeUvarint reads one unsigned varint; what names the field in errors.
func (r *Reader) TakeUvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.Failf("truncated %s at byte %d", what, r.pos)
		return 0
	}
	r.pos += n
	return v
}

// TakeFloat reads one vfloat (see AppendFloat).
func (r *Reader) TakeFloat(what string) float64 {
	return math.Float64frombits(bits.ReverseBytes64(r.TakeUvarint(what)))
}

// TakeByte reads one raw byte.
func (r *Reader) TakeByte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.Failf("truncated %s at byte %d", what, r.pos)
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// TakeBytes reads a length-prefixed byte field (see AppendBytes), copying
// the payload so the result outlives the encoded buffer. The length is
// validated against the remaining input before any allocation, so a
// corrupt length cannot trigger a huge make.
func (r *Reader) TakeBytes(what string) []byte {
	n := r.TakeUvarint(what + " length")
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) {
		r.Failf("%s length %d exceeds %d remaining bytes", what, n, len(r.data)-r.pos)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return out
}

// TakeCount reads a uvarint element count and validates it against the
// bytes that could possibly back it (minBytes per element), so decoders
// can size slices up front without a corrupt count causing an OOM.
func (r *Reader) TakeCount(what string, minBytes int) int {
	n := r.TakeUvarint(what)
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(r.Len()/minBytes) {
		r.Failf("%s %d exceeds %d remaining bytes", what, n, r.Len())
		return 0
	}
	return int(n)
}
