package codec

import (
	"bytes"
	"math"
	"testing"
)

func TestFloatRoundTrip(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 3.141592653589793,
		1e-300, 1e300, math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(),
		42, 999.25, 1440, -273.15,
	}
	for _, f := range cases {
		b := AppendFloat(nil, f)
		r := NewReader(b, 0)
		got := r.TakeFloat("f")
		r.ExpectEnd()
		if err := r.Err(); err != nil {
			t.Fatalf("%g: %v", f, err)
		}
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("%g round-tripped to %g (bits %x vs %x)",
				f, got, math.Float64bits(f), math.Float64bits(got))
		}
	}
}

// TestFloatCompact pins the codec's reason to exist: typical small-
// magnitude coordinates cost a fraction of the flat 8 bytes.
func TestFloatCompact(t *testing.T) {
	for _, f := range []float64{0, 1, 2, 100, 512, 999} {
		if n := len(AppendFloat(nil, f)); n > 4 {
			t.Fatalf("AppendFloat(%g) = %d bytes, want ≤ 4", f, n)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("f"), []byte("role-name"), bytes.Repeat([]byte{0xAB}, 1000)} {
		b := AppendBytes(nil, payload)
		r := NewReader(b, 0)
		got := r.TakeBytes("p")
		r.ExpectEnd()
		if err := r.Err(); err != nil {
			t.Fatalf("%q: %v", payload, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip: %q -> %q", payload, got)
		}
	}
}

func TestReaderStrictness(t *testing.T) {
	// Truncated varint.
	r := NewReader([]byte{0x80}, 0)
	r.TakeUvarint("v")
	if r.Err() == nil {
		t.Fatal("truncated varint accepted")
	}
	// Byte-string length past the buffer.
	b := AppendUvarint(nil, 100)
	r = NewReader(append(b, 1, 2, 3), 0)
	r.TakeBytes("p")
	if r.Err() == nil {
		t.Fatal("oversized byte-string length accepted")
	}
	// Trailing garbage.
	r = NewReader(AppendUvarint(nil, 7), 0)
	r.TakeUvarint("v")
	r.ExpectEnd()
	if r.Err() != nil {
		t.Fatalf("clean end rejected: %v", r.Err())
	}
	r = NewReader(append(AppendUvarint(nil, 7), 0x00), 0)
	r.TakeUvarint("v")
	r.ExpectEnd()
	if r.Err() == nil {
		t.Fatal("trailing byte accepted")
	}
	// Count exceeding what the remaining bytes could back.
	r = NewReader(AppendUvarint(nil, 1<<40), 0)
	r.TakeCount("items", 1)
	if r.Err() == nil {
		t.Fatal("absurd count accepted")
	}
	// First error sticks: later takes return zero values, not panics.
	r = NewReader([]byte{0x80}, 0)
	r.TakeUvarint("v")
	first := r.Err()
	if got := r.TakeFloat("f"); got != 0 {
		t.Fatalf("take after error = %g, want 0", got)
	}
	if r.Err() != first {
		t.Fatal("later take replaced the first error")
	}
}

// TestGobFirstByteDisjoint proves the dispatch property the WAL and the
// policy envelope rely on: the magic bytes can never begin a gob stream.
func TestGobFirstByteDisjoint(t *testing.T) {
	for _, m := range []byte{MagicWALRecord, MagicPolicySnapshot} {
		if LegacyGobFirstByte(m) {
			t.Fatalf("magic 0x%X is a possible gob first byte", m)
		}
	}
	for b := 0; b <= 0x7F; b++ {
		if !LegacyGobFirstByte(byte(b)) {
			t.Fatalf("0x%X should be a legacy gob first byte", b)
		}
	}
	for b := 0xF8; b <= 0xFF; b++ {
		if !LegacyGobFirstByte(byte(b)) {
			t.Fatalf("0x%X should be a legacy gob first byte", b)
		}
	}
}
