package btree

import (
	"context"

	"repro/internal/store"
)

// Reader is a read-only view of a Tree, fixed at the moment Reader() was
// called: the root linkage and counters are copied out, so a Reader never
// observes a half-applied root split or a torn size update. All lookups and
// scans live on Reader; Tree's own read methods delegate to a fresh one.
//
// Any number of goroutines may use Readers (or one Reader) concurrently —
// page accesses go through the buffer pool, which synchronizes its own
// bookkeeping — PROVIDED the pages the Reader can reach are not mutated
// meanwhile. There are two ways to guarantee that:
//
//   - Fencing: hold a read lock across every Reader use and a write lock
//     across Insert/Delete (peb.DB's default query path). A Reader taken
//     before an unsealed mutation is invalid once the mutation starts.
//   - Sealing: take the Reader right after Tree.Seal(). Sealed pages are
//     never rewritten in place — mutations copy-on-write — so the Reader
//     stays valid across later mutations with no locking, until its pages
//     are freed (the owner must keep retired pages alive while the Reader
//     is in use). This is how pinned snapshots work.
type Reader struct {
	pool      *store.BufferPool
	root      store.PageID
	height    int
	size      int
	leafCount int
	io        *store.IOCounter // optional per-handle stats sink
}

// Reader returns a read-only view of the tree's current state.
func (t *Tree) Reader() *Reader {
	return &Reader{pool: t.pool, root: t.root, height: t.height, size: t.size, leafCount: t.leafCount}
}

// ReaderIO is Reader with the per-handle I/O sink attached at creation —
// one allocation instead of Reader().WithIO's two, for owners that build
// a counted reader on every view republish.
func (t *Tree) ReaderIO(c *store.IOCounter) *Reader {
	r := t.Reader()
	r.io = c
	return r
}

// WithIO returns a copy of the Reader that additionally records every page
// request's hit/miss outcome into c. The pool's global counters are
// unaffected. Used for per-snapshot I/O statistics.
func (r *Reader) WithIO(c *store.IOCounter) *Reader {
	nr := *r
	nr.io = c
	return &nr
}

// Size returns the number of entries at view time.
func (r *Reader) Size() int { return r.size }

// Height returns the number of levels at view time (1 = single leaf).
func (r *Reader) Height() int { return r.height }

// LeafCount returns the number of leaf pages at view time.
func (r *Reader) LeafCount() int { return r.leafCount }

// Pool exposes the underlying buffer pool (for I/O statistics).
func (r *Reader) Pool() *store.BufferPool { return r.pool }

// fetch pins a page, routing the access through the per-handle counter.
func (r *Reader) fetch(pid store.PageID) (*store.Page, error) {
	return r.pool.FetchCounted(pid, r.io)
}

// descendToLeaf walks from the root to the leaf whose key range covers kv,
// recording the internal path in a cursor stack so the scan can continue
// into following leaves without sibling pointers.
func (r *Reader) descendToLeaf(kv KV) ([]pathFrame, []leafEntry, error) {
	pid := r.root
	var stack []pathFrame
	for {
		p, err := r.fetch(pid)
		if err != nil {
			return nil, nil, err
		}
		if pageType(p) == internalType {
			in := readInternal(p)
			if err := r.pool.Unpin(pid, false); err != nil {
				return nil, nil, err
			}
			ci := childIndex(in, kv)
			stack = append(stack, pathFrame{node: in, child: ci})
			pid = in.children[ci]
			continue
		}
		entries := readLeaf(p)
		if err := r.pool.Unpin(pid, false); err != nil {
			return nil, nil, err
		}
		return stack, entries, nil
	}
}

// Get returns the payload stored under kv.
func (r *Reader) Get(kv KV) (Payload, bool, error) {
	_, entries, err := r.descendToLeaf(kv)
	if err != nil {
		return Payload{}, false, err
	}
	idx, ok := searchLeaf(entries, kv)
	if !ok {
		return Payload{}, false, nil
	}
	return entries[idx].payload, true, nil
}

// Seek positions a cursor at the first entry with composite key >= kv.
func (r *Reader) Seek(kv KV) (*Cursor, error) {
	stack, entries, err := r.descendToLeaf(kv)
	if err != nil {
		return nil, err
	}
	idx, _ := searchLeaf(entries, kv)
	c := &Cursor{r: r, stack: stack, entries: entries, idx: idx, valid: true}
	if idx >= len(entries) {
		// kv is past this leaf; advance into the next one.
		if err := c.advanceLeaf(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// RangeScan calls fn for every entry with lo <= key <= hi, in order. fn
// returning false stops the scan early.
func (r *Reader) RangeScan(lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	return r.RangeScanCtx(context.Background(), lo, hi, fn)
}

// RangeScanCtx is RangeScan with cancellation: ctx is checked every time
// the scan crosses onto a new leaf page, so a slow or unbounded scan stops
// within one page of ctx being canceled and returns ctx.Err().
func (r *Reader) RangeScanCtx(ctx context.Context, lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	if hi.Less(lo) {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c, err := r.Seek(lo)
	if err != nil {
		return err
	}
	for c.Valid() {
		kv := c.Key()
		if hi.Less(kv) {
			return nil
		}
		if !fn(kv, c.Payload()) {
			return nil
		}
		atLeafEnd := c.idx == len(c.entries)-1
		if atLeafEnd {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

// ScanLeaves visits every leaf page holding keys in [lo, hi] and calls fn
// for EVERY entry on those leaves, including entries outside the range on
// the boundary leaves. The page fetches are identical to RangeScan's; the
// extra entries are free because their pages are already in memory.
//
// Query algorithms use this to examine candidates opportunistically: once
// a page holding a friend's key range has been paid for, every user stored
// on it can be checked at no additional I/O — the mechanism behind the
// paper's "once a candidate user is found, the remaining search intervals
// formed by this user's SV value are skipped" rule.
func (r *Reader) ScanLeaves(lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	return r.ScanLeavesCtx(context.Background(), lo, hi, fn)
}

// ScanLeavesCtx is ScanLeaves with cancellation, checked between leaf
// pages like RangeScanCtx.
func (r *Reader) ScanLeavesCtx(ctx context.Context, lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	if hi.Less(lo) {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Descend to the leaf covering lo (same page trajectory as Seek).
	stack, entries, err := r.descendToLeaf(lo)
	if err != nil {
		return err
	}
	c := &Cursor{r: r, stack: stack, entries: entries, valid: true}
	for {
		covered := false // does this leaf hold any key > hi?
		for _, e := range c.entries {
			if hi.Less(e.kv) {
				covered = true
			}
			if !fn(e.kv, e.payload) {
				return nil
			}
		}
		if covered {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		ok, err := c.nextLeaf()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}
