package btree

import (
	"repro/internal/store"
)

// Reader is a read-only view of a Tree, fixed at the moment Reader() was
// called: the root linkage and counters are copied out, so a Reader never
// observes a half-applied root split or a torn size update. All lookups and
// scans live on Reader; Tree's own read methods delegate to a fresh one.
//
// Any number of goroutines may use Readers (or one Reader) concurrently —
// page accesses go through the buffer pool, which synchronizes its own
// bookkeeping — PROVIDED no goroutine mutates the underlying tree
// meanwhile. A mutation rewrites node pages in place, so the usual
// single-writer/multi-reader discipline applies to the page contents:
// callers hold a read lock across every Reader use and a write lock across
// Insert/Delete (see peb.DB). A Reader taken before a mutation is invalid
// once the mutation starts.
type Reader struct {
	pool      *store.BufferPool
	root      store.PageID
	height    int
	size      int
	leafCount int
}

// Reader returns a read-only view of the tree's current state.
func (t *Tree) Reader() *Reader {
	return &Reader{pool: t.pool, root: t.root, height: t.height, size: t.size, leafCount: t.leafCount}
}

// Size returns the number of entries at view time.
func (r *Reader) Size() int { return r.size }

// Height returns the number of levels at view time (1 = single leaf).
func (r *Reader) Height() int { return r.height }

// LeafCount returns the number of leaf pages at view time.
func (r *Reader) LeafCount() int { return r.leafCount }

// Pool exposes the underlying buffer pool (for I/O statistics).
func (r *Reader) Pool() *store.BufferPool { return r.pool }

// descendToLeaf walks from the root to the leaf whose key range covers kv
// and returns that leaf's entries plus its right-sibling pointer.
func (r *Reader) descendToLeaf(kv KV) ([]leafEntry, store.PageID, error) {
	pid := r.root
	for {
		p, err := r.pool.Fetch(pid)
		if err != nil {
			return nil, store.InvalidPageID, err
		}
		if pageType(p) == internalType {
			in := readInternal(p)
			next := in.children[childIndex(in, kv)]
			if err := r.pool.Unpin(pid, false); err != nil {
				return nil, store.InvalidPageID, err
			}
			pid = next
			continue
		}
		entries, next := readLeaf(p)
		if err := r.pool.Unpin(pid, false); err != nil {
			return nil, store.InvalidPageID, err
		}
		return entries, next, nil
	}
}

// Get returns the payload stored under kv.
func (r *Reader) Get(kv KV) (Payload, bool, error) {
	entries, _, err := r.descendToLeaf(kv)
	if err != nil {
		return Payload{}, false, err
	}
	idx, ok := searchLeaf(entries, kv)
	if !ok {
		return Payload{}, false, nil
	}
	return entries[idx].payload, true, nil
}

// Seek positions a cursor at the first entry with composite key >= kv.
func (r *Reader) Seek(kv KV) (*Cursor, error) {
	entries, next, err := r.descendToLeaf(kv)
	if err != nil {
		return nil, err
	}
	idx, _ := searchLeaf(entries, kv)
	c := &Cursor{r: r, entries: entries, next: next, idx: idx, valid: true}
	if idx >= len(entries) {
		// kv is past this leaf; advance into the next one.
		if err := c.advanceLeaf(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// RangeScan calls fn for every entry with lo <= key <= hi, in order. fn
// returning false stops the scan early.
func (r *Reader) RangeScan(lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	if hi.Less(lo) {
		return nil
	}
	c, err := r.Seek(lo)
	if err != nil {
		return err
	}
	for c.Valid() {
		kv := c.Key()
		if hi.Less(kv) {
			return nil
		}
		if !fn(kv, c.Payload()) {
			return nil
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

// ScanLeaves visits every leaf page holding keys in [lo, hi] and calls fn
// for EVERY entry on those leaves, including entries outside the range on
// the boundary leaves. The page fetches are identical to RangeScan's; the
// extra entries are free because their pages are already in memory.
//
// Query algorithms use this to examine candidates opportunistically: once
// a page holding a friend's key range has been paid for, every user stored
// on it can be checked at no additional I/O — the mechanism behind the
// paper's "once a candidate user is found, the remaining search intervals
// formed by this user's SV value are skipped" rule.
func (r *Reader) ScanLeaves(lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	if hi.Less(lo) {
		return nil
	}
	// Descend to the leaf covering lo (same page trajectory as Seek).
	entries, next, err := r.descendToLeaf(lo)
	if err != nil {
		return err
	}
	for {
		covered := false // does this leaf hold any key > hi?
		for _, e := range entries {
			if hi.Less(e.kv) {
				covered = true
			}
			if !fn(e.kv, e.payload) {
				return nil
			}
		}
		if covered || next == store.InvalidPageID {
			return nil
		}
		np, err := r.pool.Fetch(next)
		if err != nil {
			return err
		}
		id := next
		entries, next = readLeaf(np)
		if err := r.pool.Unpin(id, false); err != nil {
			return err
		}
	}
}
