package btree

import (
	"context"
)

// pathFrame is one level of a cursor's descent stack: the decoded internal
// node and the index of the child the descent took.
type pathFrame struct {
	node  internalNode
	child int
}

// Cursor iterates tree entries in ascending key order. It buffers one leaf
// at a time and keeps the stack of internal nodes on the path from the root,
// advancing to the next leaf by backtracking up the stack and descending
// the leftmost path of the next subtree — leaves carry no sibling pointers
// (they could not survive copy-on-write). Each internal page is fetched
// once per subtree traversal, so a full scan still costs one fetch per leaf
// plus a lower-order number of internal fetches.
//
// Cursors are created by Reader.Seek (or Tree.Seek, which takes a fresh
// Reader) and are only coherent while the pages they walk are stable: under
// the caller's read lock, or over sealed pages (see Reader). Using one
// across an unfenced mutation gives unspecified (but memory-safe) results.
type Cursor struct {
	r       *Reader
	stack   []pathFrame
	entries []leafEntry
	idx     int
	valid   bool
}

// Seek positions a cursor at the first entry with composite key >= kv.
func (t *Tree) Seek(kv KV) (*Cursor, error) { return t.Reader().Seek(kv) }

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid && c.idx < len(c.entries) }

// Key returns the current composite key. Valid must be true.
func (c *Cursor) Key() KV { return c.entries[c.idx].kv }

// Payload returns the current payload. Valid must be true.
func (c *Cursor) Payload() Payload { return c.entries[c.idx].payload }

// Next advances to the following entry, loading the next leaf when the
// current one is exhausted.
func (c *Cursor) Next() error {
	if !c.Valid() {
		return nil
	}
	c.idx++
	if c.idx >= len(c.entries) {
		return c.advanceLeaf()
	}
	return nil
}

// advanceLeaf loads following leaves until one with entries is found or the
// tree is exhausted, leaving the cursor positioned at the first entry.
func (c *Cursor) advanceLeaf() error {
	for {
		ok, err := c.nextLeaf()
		if err != nil {
			return err
		}
		if !ok {
			c.valid = false
			return nil
		}
		c.idx = 0
		if len(c.entries) > 0 {
			return nil
		}
	}
}

// nextLeaf replaces the buffered leaf with the next one in key order by
// backtracking up the descent stack. It reports false when no leaf follows.
func (c *Cursor) nextLeaf() (bool, error) {
	for len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		top.child++
		if top.child >= len(top.node.children) {
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		// Descend the leftmost path of the next subtree.
		pid := top.node.children[top.child]
		for {
			p, err := c.r.fetch(pid)
			if err != nil {
				return false, err
			}
			if pageType(p) == internalType {
				in := readInternal(p)
				if err := c.r.pool.Unpin(pid, false); err != nil {
					return false, err
				}
				c.stack = append(c.stack, pathFrame{node: in, child: 0})
				pid = in.children[0]
				continue
			}
			c.entries = readLeaf(p)
			c.idx = 0
			if err := c.r.pool.Unpin(pid, false); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}

// RangeScan calls fn for every entry with lo <= key <= hi, in order. fn
// returning false stops the scan early.
func (t *Tree) RangeScan(lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	return t.Reader().RangeScan(lo, hi, fn)
}

// RangeScanCtx is RangeScan with cancellation between leaf pages.
func (t *Tree) RangeScanCtx(ctx context.Context, lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	return t.Reader().RangeScanCtx(ctx, lo, hi, fn)
}

// ScanLeaves visits every leaf page holding keys in [lo, hi] and calls fn
// for every entry on those leaves; see Reader.ScanLeaves.
func (t *Tree) ScanLeaves(lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	return t.Reader().ScanLeaves(lo, hi, fn)
}
