package btree

import (
	"repro/internal/store"
)

// Cursor iterates tree entries in ascending key order by walking the leaf
// sibling chain. A cursor buffers one leaf at a time, so a scan fetches
// each leaf page exactly once regardless of how many entries it yields.
//
// Cursors are created by Reader.Seek (or Tree.Seek, which takes a fresh
// Reader) and are invalidated by any mutation of the tree; using one after
// an Insert or Delete gives unspecified (but memory-safe) results.
type Cursor struct {
	r       *Reader
	entries []leafEntry
	next    store.PageID
	idx     int
	valid   bool
}

// Seek positions a cursor at the first entry with composite key >= kv.
func (t *Tree) Seek(kv KV) (*Cursor, error) { return t.Reader().Seek(kv) }

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid && c.idx < len(c.entries) }

// Key returns the current composite key. Valid must be true.
func (c *Cursor) Key() KV { return c.entries[c.idx].kv }

// Payload returns the current payload. Valid must be true.
func (c *Cursor) Payload() Payload { return c.entries[c.idx].payload }

// Next advances to the following entry, loading the next leaf when the
// current one is exhausted.
func (c *Cursor) Next() error {
	if !c.Valid() {
		return nil
	}
	c.idx++
	if c.idx >= len(c.entries) {
		return c.advanceLeaf()
	}
	return nil
}

// advanceLeaf loads leaves along the sibling chain until one with entries
// is found or the chain ends.
func (c *Cursor) advanceLeaf() error {
	for {
		if c.next == store.InvalidPageID {
			c.valid = false
			return nil
		}
		p, err := c.r.pool.Fetch(c.next)
		if err != nil {
			return err
		}
		pid := c.next
		c.entries, c.next = readLeaf(p)
		c.idx = 0
		if err := c.r.pool.Unpin(pid, false); err != nil {
			return err
		}
		if len(c.entries) > 0 {
			return nil
		}
	}
}

// RangeScan calls fn for every entry with lo <= key <= hi, in order. fn
// returning false stops the scan early.
func (t *Tree) RangeScan(lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	return t.Reader().RangeScan(lo, hi, fn)
}

// ScanLeaves visits every leaf page holding keys in [lo, hi] and calls fn
// for every entry on those leaves; see Reader.ScanLeaves.
func (t *Tree) ScanLeaves(lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	return t.Reader().ScanLeaves(lo, hi, fn)
}
