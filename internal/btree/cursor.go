package btree

import (
	"repro/internal/store"
)

// Cursor iterates tree entries in ascending key order by walking the leaf
// sibling chain. A cursor buffers one leaf at a time, so a scan fetches
// each leaf page exactly once regardless of how many entries it yields.
//
// Cursors are invalidated by any mutation of the tree; using one after an
// Insert or Delete gives unspecified (but memory-safe) results.
type Cursor struct {
	tree    *Tree
	entries []leafEntry
	next    store.PageID
	idx     int
	valid   bool
}

// Seek positions a cursor at the first entry with composite key >= kv.
func (t *Tree) Seek(kv KV) (*Cursor, error) {
	pid := t.root
	for {
		p, err := t.pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		if pageType(p) == internalType {
			in := readInternal(p)
			next := in.children[childIndex(in, kv)]
			if err := t.pool.Unpin(pid, false); err != nil {
				return nil, err
			}
			pid = next
			continue
		}
		entries, next := readLeaf(p)
		if err := t.pool.Unpin(pid, false); err != nil {
			return nil, err
		}
		idx, _ := searchLeaf(entries, kv)
		c := &Cursor{tree: t, entries: entries, next: next, idx: idx, valid: true}
		if idx >= len(entries) {
			// kv is past this leaf; advance into the next one.
			if err := c.advanceLeaf(); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid && c.idx < len(c.entries) }

// Key returns the current composite key. Valid must be true.
func (c *Cursor) Key() KV { return c.entries[c.idx].kv }

// Payload returns the current payload. Valid must be true.
func (c *Cursor) Payload() Payload { return c.entries[c.idx].payload }

// Next advances to the following entry, loading the next leaf when the
// current one is exhausted.
func (c *Cursor) Next() error {
	if !c.Valid() {
		return nil
	}
	c.idx++
	if c.idx >= len(c.entries) {
		return c.advanceLeaf()
	}
	return nil
}

// advanceLeaf loads leaves along the sibling chain until one with entries
// is found or the chain ends.
func (c *Cursor) advanceLeaf() error {
	for {
		if c.next == store.InvalidPageID {
			c.valid = false
			return nil
		}
		p, err := c.tree.pool.Fetch(c.next)
		if err != nil {
			return err
		}
		pid := c.next
		c.entries, c.next = readLeaf(p)
		c.idx = 0
		if err := c.tree.pool.Unpin(pid, false); err != nil {
			return err
		}
		if len(c.entries) > 0 {
			return nil
		}
	}
}

// RangeScan calls fn for every entry with lo <= key <= hi, in order. fn
// returning false stops the scan early.
func (t *Tree) RangeScan(lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	if hi.Less(lo) {
		return nil
	}
	c, err := t.Seek(lo)
	if err != nil {
		return err
	}
	for c.Valid() {
		kv := c.Key()
		if hi.Less(kv) {
			return nil
		}
		if !fn(kv, c.Payload()) {
			return nil
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

// ScanLeaves visits every leaf page holding keys in [lo, hi] and calls fn
// for EVERY entry on those leaves, including entries outside the range on
// the boundary leaves. The page fetches are identical to RangeScan's; the
// extra entries are free because their pages are already in memory.
//
// Query algorithms use this to examine candidates opportunistically: once
// a page holding a friend's key range has been paid for, every user stored
// on it can be checked at no additional I/O — the mechanism behind the
// paper's "once a candidate user is found, the remaining search intervals
// formed by this user's SV value are skipped" rule.
func (t *Tree) ScanLeaves(lo, hi KV, fn func(kv KV, payload Payload) bool) error {
	if hi.Less(lo) {
		return nil
	}
	// Descend to the leaf covering lo (same page trajectory as Seek).
	pid := t.root
	for {
		p, err := t.pool.Fetch(pid)
		if err != nil {
			return err
		}
		if pageType(p) == internalType {
			in := readInternal(p)
			next := in.children[childIndex(in, lo)]
			if err := t.pool.Unpin(pid, false); err != nil {
				return err
			}
			pid = next
			continue
		}
		entries, next := readLeaf(p)
		if err := t.pool.Unpin(pid, false); err != nil {
			return err
		}
		for {
			covered := false // does this leaf hold any key > hi?
			for _, e := range entries {
				if hi.Less(e.kv) {
					covered = true
				}
				if !fn(e.kv, e.payload) {
					return nil
				}
			}
			if covered || next == store.InvalidPageID {
				return nil
			}
			np, err := t.pool.Fetch(next)
			if err != nil {
				return err
			}
			id := next
			entries, next = readLeaf(np)
			if err := t.pool.Unpin(id, false); err != nil {
				return err
			}
		}
	}
}
