package btree

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/store"
)

// collect returns the full contents of the tree seen through r.
func collect(t *testing.T, r *Reader) []KV {
	t.Helper()
	var out []KV
	err := r.RangeScan(KV{}, KV{Key: ^uint64(0), UID: ^uint32(0)}, func(kv KV, _ Payload) bool {
		out = append(out, kv)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSealedReaderSurvivesMutations pins a Reader at a sealed version and
// verifies it returns bit-identical results while the tree churns through
// inserts and deletes — the property pinned snapshots are built on.
func TestSealedReaderSurvivesMutations(t *testing.T) {
	disk := store.NewMemDisk()
	pool := store.NewBufferPool(disk, 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 0, 3000)
	for i := 0; i < 3000; i++ {
		k := rng.Uint64() % 50_000
		keys = append(keys, k)
		if err := tr.Insert(KV{Key: k, UID: uint32(i)}, Payload{}); err != nil {
			t.Fatal(err)
		}
	}

	tr.Seal()
	pinned := tr.Reader()
	want := collect(t, pinned)

	// Churn: delete a third, insert replacements, delete more.
	for i, k := range keys {
		switch i % 3 {
		case 0:
			if _, err := tr.Delete(KV{Key: k, UID: uint32(i)}); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := tr.Insert(KV{Key: rng.Uint64() % 50_000, UID: uint32(10_000 + i)}, Payload{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("mutated tree invalid: %v", err)
	}

	got := collect(t, pinned)
	if len(got) != len(want) {
		t.Fatalf("pinned reader sees %d entries after churn, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pinned reader entry %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Point reads through the pinned reader also see the old state.
	if _, found, err := pinned.Get(KV{Key: keys[0], UID: 0}); err != nil || !found {
		t.Fatalf("pinned Get(deleted key) = %v, %v; want found", found, err)
	}

	// Once the pinned reader is dropped, retired pages can be released and
	// the current tree must remain fully valid.
	for _, pid := range tr.TakeRetired() {
		if err := pool.Release(pid); err != nil {
			t.Fatal(err)
		}
	}
	tr.Unseal()
	if err := tr.Check(); err != nil {
		t.Fatalf("tree invalid after releasing retired pages: %v", err)
	}
}

// TestTxnRollbackRestoresTree verifies that Rollback restores the exact
// pre-transaction contents and releases every page the transaction
// allocated (no disk-space leak).
func TestTxnRollbackRestoresTree(t *testing.T) {
	disk := store.NewMemDisk()
	pool := store.NewBufferPool(disk, 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1500; i++ {
		if err := tr.Insert(KV{Key: rng.Uint64() % 20_000, UID: uint32(i)}, Payload{}); err != nil {
			t.Fatal(err)
		}
	}
	want := collect(t, tr.Reader())
	wantMeta := tr.Meta()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pagesBefore := disk.Stats().PagesAlive

	txn := tr.Begin()
	for i := 0; i < 800; i++ {
		if err := tr.Insert(KV{Key: rng.Uint64() % 20_000, UID: uint32(50_000 + i)}, Payload{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i += 2 {
		if _, err := tr.Delete(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}

	if tr.Meta() != wantMeta {
		t.Fatalf("meta after rollback = %+v, want %+v", tr.Meta(), wantMeta)
	}
	got := collect(t, tr.Reader())
	if len(got) != len(want) {
		t.Fatalf("rollback left %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("tree invalid after rollback: %v", err)
	}
	if alive := disk.Stats().PagesAlive; alive != pagesBefore {
		t.Fatalf("rollback leaked pages: %d alive, want %d", alive, pagesBefore)
	}
	if retired := tr.TakeRetired(); len(retired) != 0 {
		t.Fatalf("rollback left %d retired pages", len(retired))
	}
}

// TestTxnCommitKeepsChanges is the positive counterpart: after Commit the
// new contents stand and the superseded pages can be released.
func TestTxnCommitKeepsChanges(t *testing.T) {
	pool := store.NewBufferPool(store.NewMemDisk(), 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		if err := tr.Insert(KV{Key: i}, Payload{}); err != nil {
			t.Fatal(err)
		}
	}
	txn := tr.Begin()
	for i := uint64(1000); i < 1500; i++ {
		if err := tr.Insert(KV{Key: i}, Payload{}); err != nil {
			t.Fatal(err)
		}
	}
	txn.Commit()
	for _, pid := range tr.TakeRetired() {
		if err := pool.Release(pid); err != nil {
			t.Fatal(err)
		}
	}
	tr.Unseal()
	if tr.Size() != 1500 {
		t.Fatalf("size after commit = %d, want 1500", tr.Size())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestScanCtxCancellation verifies RangeScanCtx and ScanLeavesCtx stop with
// ctx.Err() once the context is canceled mid-scan.
func TestScanCtxCancellation(t *testing.T) {
	pool := store.NewBufferPool(store.NewMemDisk(), 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		if err := tr.Insert(KV{Key: i}, Payload{}); err != nil {
			t.Fatal(err)
		}
	}
	full := 0
	if err := tr.RangeScan(KV{}, KV{Key: ^uint64(0), UID: ^uint32(0)}, func(KV, Payload) bool {
		full++
		return true
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	err = tr.Reader().RangeScanCtx(ctx, KV{}, KV{Key: ^uint64(0), UID: ^uint32(0)}, func(KV, Payload) bool {
		seen++
		if seen == 10 {
			cancel()
		}
		return true
	})
	if err != context.Canceled {
		t.Fatalf("RangeScanCtx error = %v, want context.Canceled", err)
	}
	if seen >= full {
		t.Fatalf("cancellation did not stop the scan (saw all %d entries)", seen)
	}
	// Cancellation is page-granular: the scan finishes the buffered leaf but
	// must stop before fetching another.
	if seen > 10+LeafCapacity {
		t.Fatalf("scan continued %d entries past cancellation", seen-10)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	seen = 0
	err = tr.Reader().ScanLeavesCtx(ctx2, KV{}, KV{Key: ^uint64(0), UID: ^uint32(0)}, func(KV, Payload) bool {
		seen++
		if seen == 1 {
			cancel2()
		}
		return true
	})
	if err != context.Canceled {
		t.Fatalf("ScanLeavesCtx error = %v, want context.Canceled", err)
	}
	if seen > LeafCapacity {
		t.Fatalf("leaf scan continued %d entries past cancellation", seen)
	}
	// An already-canceled context stops the scan before any page fetch.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if err := tr.Reader().RangeScanCtx(pre, KV{}, KV{Key: 100}, func(KV, Payload) bool {
		t.Fatal("callback despite pre-canceled context")
		return false
	}); err != context.Canceled {
		t.Fatalf("pre-canceled scan error = %v", err)
	}
}
