package btree

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/store"
)

// Failure injection: disk faults at arbitrary points must surface as
// errors (never panics) and must not leak page pins, so the buffer pool
// stays usable after the fault clears.

func TestInsertSurvivesDiskFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		fd := &store.FaultDisk{Inner: store.NewMemDisk(), FailAfter: 1 << 30}
		pool := store.NewBufferPool(fd, 8)
		tr, err := New(pool)
		if err != nil {
			t.Fatal(err)
		}
		// Build a healthy tree first.
		for i := 0; i < 500; i++ {
			if err := tr.Insert(KV{Key: rng.Uint64() % 10_000}, Payload{}); err != nil {
				t.Fatal(err)
			}
		}
		// Arm the fault and keep inserting until it fires.
		fd.FailAfter = rng.Intn(20)
		var faultErr error
		for i := 0; i < 1000 && faultErr == nil; i++ {
			faultErr = tr.Insert(KV{Key: rng.Uint64() % 10_000}, Payload{})
		}
		if faultErr == nil {
			t.Fatalf("trial %d: fault never fired", trial)
		}
		if !errors.Is(faultErr, store.ErrInjected) {
			// The pool may wrap the error; unwrapping via Is must work.
			t.Logf("trial %d: got wrapped error %v", trial, faultErr)
		}
		if n := pool.PinnedPages(); n != 0 {
			t.Fatalf("trial %d: %d pages pinned after fault", trial, n)
		}
	}
}

func TestQueryAfterFaultClears(t *testing.T) {
	fd := &store.FaultDisk{Inner: store.NewMemDisk(), FailAfter: 1 << 30}
	pool := store.NewBufferPool(fd, 8)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		if err := tr.Insert(KV{Key: i}, Payload{}); err != nil {
			t.Fatal(err)
		}
	}
	// Fault during a scan.
	fd.FailAfter = 2
	err = tr.RangeScan(KV{}, KV{Key: 999, UID: ^uint32(0)}, func(KV, Payload) bool { return true })
	if err == nil {
		t.Fatal("scan did not surface the injected fault")
	}
	if n := pool.PinnedPages(); n != 0 {
		t.Fatalf("%d pages pinned after failed scan", n)
	}
	// Clear the fault: the tree must be fully readable again.
	fd.FailAfter = 1 << 30
	count := 0
	err = tr.RangeScan(KV{}, KV{Key: ^uint64(0), UID: ^uint32(0)}, func(KV, Payload) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatalf("scan after fault cleared: %v", err)
	}
	if count != 1000 {
		t.Fatalf("scan found %d entries, want 1000", count)
	}
}

func TestDeleteSurvivesDiskFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		fd := &store.FaultDisk{Inner: store.NewMemDisk(), FailAfter: 1 << 30}
		pool := store.NewBufferPool(fd, 8)
		tr, err := New(pool)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]uint64, 0, 800)
		for i := 0; i < 800; i++ {
			k := rng.Uint64() % 5_000
			keys = append(keys, k)
			if err := tr.Insert(KV{Key: k}, Payload{}); err != nil {
				t.Fatal(err)
			}
		}
		fd.FailAfter = rng.Intn(15)
		var faultErr error
		for _, k := range keys {
			if _, faultErr = tr.Delete(KV{Key: k}); faultErr != nil {
				break
			}
		}
		if faultErr == nil {
			t.Fatalf("trial %d: fault never fired", trial)
		}
		if n := pool.PinnedPages(); n != 0 {
			t.Fatalf("trial %d: %d pages pinned after fault", trial, n)
		}
	}
}
