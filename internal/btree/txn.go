package btree

import (
	"fmt"

	"repro/internal/store"
)

// Copy-on-write versioning.
//
// By default the tree rewrites node pages in place: that is the fastest
// path and exactly the paper's single-threaded behavior. Seal switches the
// tree into copy-on-write mode: every page that existed at seal time
// becomes immutable, and a mutation that would modify such a page instead
// writes a fresh page and repoints the parent (copying the whole root path
// in the worst case). A Reader taken at seal time therefore stays valid —
// bit for bit — across any number of subsequent mutations, which is what
// lets pinned snapshots run without holding any lock.
//
// Pages superseded by copy-on-write are "retired": still allocated (old
// readers reach them) but no longer part of the current tree. The owner
// collects them with TakeRetired and frees them (BufferPool.Release) once
// no reader pinned at or before their retirement version remains. Unseal
// drops back to in-place mutation when no pinned readers are left.
//
// Versioning: Seal returns a monotonically increasing version number. All
// pages retired while the tree is at version v carry the tag v; they may be
// referenced by any reader pinned at a version ≤ v, and are safe to free
// once every live pinned version is > v.

// Seal makes every currently reachable page immutable and returns the new
// version. Mutations after Seal copy-on-write. Sealing an already-sealed,
// unmodified tree returns the current version without bumping it, so
// back-to-back snapshots share one version.
func (t *Tree) Seal() uint64 {
	if t.sealed && !t.mutated {
		return t.version
	}
	t.sealed = true
	t.mutated = false
	t.fresh = make(map[store.PageID]struct{})
	t.version++
	return t.version
}

// Unseal returns the tree to in-place mutation. The caller asserts that no
// pinned Reader from any earlier version is still in use and that all
// retired pages have been collected.
func (t *Tree) Unseal() {
	t.sealed = false
	t.mutated = false
	t.fresh = nil
}

// Sealed reports whether the tree is in copy-on-write mode.
func (t *Tree) Sealed() bool { return t.sealed }

// Version returns the current seal version (0 if never sealed).
func (t *Tree) Version() uint64 { return t.version }

// TakeRetired returns and clears the pages superseded since the last call.
// The caller owns freeing them once no pinned reader can reach them.
func (t *Tree) TakeRetired() []store.PageID {
	r := t.retired
	t.retired = nil
	return r
}

// writable reports whether the page may be rewritten in place: always when
// the tree is unsealed, otherwise only for pages allocated after the seal.
func (t *Tree) writable(pid store.PageID) bool {
	if !t.sealed {
		return true
	}
	_, ok := t.fresh[pid]
	return ok
}

// allocPage allocates a pinned page for new node content and registers it
// as fresh (writable in place until the next seal).
func (t *Tree) allocPage() (*store.Page, error) {
	p, err := t.pool.NewPage()
	if err != nil {
		return nil, err
	}
	if t.sealed {
		t.fresh[p.ID()] = struct{}{}
	}
	return p, nil
}

// redirect returns the pinned page that should receive the rewritten
// content of node pid, whose current page p the caller has fetched and
// decoded. In place (unsealed or fresh pid) it returns p and pid unchanged.
// Under copy-on-write it unpins p clean, allocates a fresh page, retires
// pid, and returns the new page: the caller must write the node there and
// report the moved id to its parent.
func (t *Tree) redirect(pid store.PageID, p *store.Page) (*store.Page, store.PageID, error) {
	if t.writable(pid) {
		return p, pid, nil
	}
	if err := t.pool.Unpin(pid, false); err != nil {
		return nil, store.InvalidPageID, err
	}
	np, err := t.allocPage()
	if err != nil {
		return nil, store.InvalidPageID, fmt.Errorf("btree: copy-on-write of page %d: %w", pid, err)
	}
	t.retired = append(t.retired, pid)
	return np, np.ID(), nil
}

// discardPinned removes node pid from the current tree: fresh pages are
// freed immediately (no reader can reference them), sealed pages are
// retired for deferred freeing. The caller must hold exactly one pin on the
// page; discardPinned consumes it in either branch.
func (t *Tree) discardPinned(pid store.PageID) error {
	if t.writable(pid) {
		if t.sealed {
			delete(t.fresh, pid)
		}
		return t.pool.FreePage(pid)
	}
	if err := t.pool.Unpin(pid, false); err != nil {
		return err
	}
	t.retired = append(t.retired, pid)
	return nil
}

// Txn brackets a batch of mutations so they can be rolled back as a unit.
// Begin seals the tree (pre-transaction pages become immutable), so a
// failed batch restores the exact pre-transaction tree: Rollback resets the
// metadata, frees every page the transaction allocated, and un-retires the
// pages the transaction superseded. Commit keeps the new state and leaves
// the retired pages for the owner to collect.
//
// A Txn covers only this tree's pages and counters; the caller rolls back
// its own bookkeeping (e.g. key maps) separately.
type Txn struct {
	t          *Tree
	meta       Meta
	retiredLen int
}

// Begin starts a transaction. The tree must not have another Txn open.
func (t *Tree) Begin() *Txn {
	t.Seal()
	return &Txn{t: t, meta: t.Meta(), retiredLen: len(t.retired)}
}

// Commit finalizes the transaction's mutations.
func (txn *Txn) Commit() {}

// Rollback restores the tree to its state at Begin. It returns the first
// error encountered while freeing transaction-allocated pages; even then
// the tree metadata is restored (a failed free only leaks a page).
func (txn *Txn) Rollback() error {
	t := txn.t
	t.root = txn.meta.Root
	t.height = txn.meta.Height
	t.size = txn.meta.Size
	t.leafCount = txn.meta.LeafCount
	// Pages superseded during the transaction are live again.
	t.retired = t.retired[:txn.retiredLen]
	// Pages allocated during the transaction are garbage. t.fresh holds
	// exactly those (Begin's seal cleared it), minus any already freed.
	var firstErr error
	for pid := range t.fresh {
		if err := t.pool.Release(pid); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.fresh = make(map[store.PageID]struct{})
	// The restored state is exactly the sealed state, so a following Seal
	// need not bump the version.
	t.mutated = false
	return firstErr
}
