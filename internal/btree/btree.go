// Package btree implements a disk-based B+-tree over the paged store in
// internal/store. It is the common substrate of the Bx-tree (internal/bxtree)
// and the PEB-tree (internal/core): "The PEB-tree is based on the Bx-tree,
// which in turn is based on the B+-tree" (Sec. 5.2).
//
// Keys are composite (uint64 index key, uint32 user id); payloads are fixed
// 40-byte records. All node accesses go through the buffer pool, so query
// I/O cost is observable as buffer misses, matching the paper's metric.
//
// Concurrency follows a single-writer/multi-reader discipline: mutations
// (Insert, Delete) require exclusive access, while any number of goroutines
// may read concurrently through Reader views (the buffer pool synchronizes
// its own bookkeeping). Callers enforce the discipline externally — see
// peb.DB, which holds a write lock across mutations and a read lock across
// queries. Additionally, Seal (see txn.go) switches the tree into
// copy-on-write mode, under which a Reader pinned at seal time stays valid
// across later mutations with no locking at all — the basis of pinned
// snapshots.
package btree

import (
	"fmt"

	"repro/internal/store"
)

// Tree is a disk-based B+-tree.
type Tree struct {
	pool      *store.BufferPool
	root      store.PageID
	height    int // 1 = root is a leaf
	size      int // total entries
	leafCount int // total leaf pages (Nl in the cost model)

	// Copy-on-write state (txn.go). When sealed, pages not in fresh are
	// immutable; mutations write fresh pages and retire the old ones.
	sealed  bool
	mutated bool // mutations since the last Seal
	version uint64
	fresh   map[store.PageID]struct{}
	retired []store.PageID
}

// New creates an empty tree whose nodes live in pool.
func New(pool *store.BufferPool) (*Tree, error) {
	p, err := pool.NewPage()
	if err != nil {
		return nil, fmt.Errorf("btree: allocate root: %w", err)
	}
	writeLeaf(p, nil)
	id := p.ID()
	if err := pool.Unpin(id, true); err != nil {
		return nil, err
	}
	return &Tree{pool: pool, root: id, height: 1, leafCount: 1}, nil
}

// Size returns the number of entries.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels (1 = single leaf).
func (t *Tree) Height() int { return t.height }

// LeafCount returns the number of leaf pages; the cost model's Nl.
func (t *Tree) LeafCount() int { return t.leafCount }

// Pool exposes the underlying buffer pool (for I/O statistics).
func (t *Tree) Pool() *store.BufferPool { return t.pool }

// Get returns the payload stored under kv.
func (t *Tree) Get(kv KV) (Payload, bool, error) { return t.Reader().Get(kv) }

// Insert stores payload under kv, replacing any existing entry with the
// same composite key.
func (t *Tree) Insert(kv KV, payload Payload) error {
	t.mutated = true
	newRoot, split, sep, right, replaced, err := t.insertRec(t.root, kv, payload)
	if err != nil {
		return err
	}
	t.root = newRoot
	if !replaced {
		t.size++
	}
	if !split {
		return nil
	}
	// Grow a new root above the old one.
	p, err := t.allocPage()
	if err != nil {
		return fmt.Errorf("btree: allocate new root: %w", err)
	}
	writeInternal(p, internalNode{
		seps:     []KV{sep},
		children: []store.PageID{t.root, right},
	})
	rootID := p.ID()
	if err := t.pool.Unpin(rootID, true); err != nil {
		return err
	}
	t.root = rootID
	t.height++
	return nil
}

// insertRec descends to the leaf for kv and inserts. newPid is the id the
// node lives at afterwards — under copy-on-write a modified node moves to a
// fresh page, and the caller repoints its child link. On overflow the node
// splits and the separator plus new right sibling are reported upward.
func (t *Tree) insertRec(pid store.PageID, kv KV, payload Payload) (newPid store.PageID, split bool, sep KV, right store.PageID, replaced bool, err error) {
	p, err := t.pool.Fetch(pid)
	if err != nil {
		return pid, false, KV{}, store.InvalidPageID, false, err
	}

	if pageType(p) == leafType {
		entries := readLeaf(p)
		idx, exact := searchLeaf(entries, kv)
		if exact {
			entries[idx].payload = payload
			p, newPid, err = t.redirect(pid, p)
			if err != nil {
				return pid, false, KV{}, store.InvalidPageID, false, err
			}
			writeLeaf(p, entries)
			err = t.pool.Unpin(newPid, true)
			return newPid, false, KV{}, store.InvalidPageID, true, err
		}
		entries = append(entries, leafEntry{})
		copy(entries[idx+1:], entries[idx:])
		entries[idx] = leafEntry{kv: kv, payload: payload}

		if len(entries) <= LeafCapacity {
			p, newPid, err = t.redirect(pid, p)
			if err != nil {
				return pid, false, KV{}, store.InvalidPageID, false, err
			}
			writeLeaf(p, entries)
			err = t.pool.Unpin(newPid, true)
			return newPid, false, KV{}, store.InvalidPageID, false, err
		}

		// Split: left keeps the first half, right takes the rest.
		mid := len(entries) / 2
		rp, nerr := t.allocPage()
		if nerr != nil {
			_ = t.pool.Unpin(pid, false)
			return pid, false, KV{}, store.InvalidPageID, false, fmt.Errorf("btree: allocate leaf: %w", nerr)
		}
		writeLeaf(rp, entries[mid:])
		right = rp.ID()
		if err := t.pool.Unpin(right, true); err != nil {
			_ = t.pool.Unpin(pid, false)
			return pid, false, KV{}, store.InvalidPageID, false, err
		}
		p, newPid, err = t.redirect(pid, p)
		if err != nil {
			return pid, false, KV{}, store.InvalidPageID, false, err
		}
		writeLeaf(p, entries[:mid])
		t.leafCount++
		sep = entries[mid].kv
		err = t.pool.Unpin(newPid, true)
		return newPid, true, sep, right, false, err
	}

	// Internal node.
	in := readInternal(p)
	ci := childIndex(in, kv)
	child := in.children[ci]
	// Release the parent while recursing; re-fetch to apply child changes.
	if err := t.pool.Unpin(pid, false); err != nil {
		return pid, false, KV{}, store.InvalidPageID, false, err
	}
	newChild, csplit, csep, cright, creplaced, err := t.insertRec(child, kv, payload)
	if err != nil {
		return pid, false, KV{}, store.InvalidPageID, false, err
	}
	if !csplit && newChild == child {
		// Nothing to record at this level.
		return pid, false, KV{}, store.InvalidPageID, creplaced, nil
	}

	p, err = t.pool.Fetch(pid)
	if err != nil {
		return pid, false, KV{}, store.InvalidPageID, creplaced, err
	}
	in = readInternal(p)
	// The child set cannot have changed (single-threaded), so ci is stable.
	in.children[ci] = newChild
	if csplit {
		in.seps = append(in.seps, KV{})
		copy(in.seps[ci+1:], in.seps[ci:])
		in.seps[ci] = csep
		in.children = append(in.children, store.InvalidPageID)
		copy(in.children[ci+2:], in.children[ci+1:])
		in.children[ci+1] = cright
	}

	if len(in.seps) <= InternalCapacity {
		p, newPid, err = t.redirect(pid, p)
		if err != nil {
			return pid, false, KV{}, store.InvalidPageID, creplaced, err
		}
		writeInternal(p, in)
		err = t.pool.Unpin(newPid, true)
		return newPid, false, KV{}, store.InvalidPageID, creplaced, err
	}

	// Split the internal node: the middle separator moves up.
	mid := len(in.seps) / 2
	upSep := in.seps[mid]
	rightNode := internalNode{
		seps:     append([]KV(nil), in.seps[mid+1:]...),
		children: append([]store.PageID(nil), in.children[mid+1:]...),
	}
	leftNode := internalNode{
		seps:     in.seps[:mid],
		children: in.children[:mid+1],
	}
	rp, nerr := t.allocPage()
	if nerr != nil {
		_ = t.pool.Unpin(pid, false)
		return pid, false, KV{}, store.InvalidPageID, creplaced, fmt.Errorf("btree: allocate internal: %w", nerr)
	}
	writeInternal(rp, rightNode)
	right = rp.ID()
	if err := t.pool.Unpin(right, true); err != nil {
		_ = t.pool.Unpin(pid, false)
		return pid, false, KV{}, store.InvalidPageID, creplaced, err
	}
	p, newPid, err = t.redirect(pid, p)
	if err != nil {
		return pid, false, KV{}, store.InvalidPageID, creplaced, err
	}
	writeInternal(p, leftNode)
	err = t.pool.Unpin(newPid, true)
	return newPid, true, upSep, right, creplaced, err
}
