package btree

import (
	"math/rand"
	"testing"

	"repro/internal/store"
)

// These tests drive the tree tall enough (height ≥ 3) that deletions
// exercise internal-node redistribution and merging, not just leaf-level
// rebalancing.

func buildSequential(t *testing.T, n int) (*Tree, *store.BufferPool) {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemDisk(), 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tr.Insert(KV{Key: uint64(i)}, Payload{}); err != nil {
			t.Fatal(err)
		}
	}
	return tr, pool
}

func TestTallTreeSequentialDeleteAscending(t *testing.T) {
	const n = 25_000
	tr, _ := buildSequential(t, n)
	if tr.Height() < 3 {
		t.Fatalf("height = %d, want >= 3 (grow n)", tr.Height())
	}
	for i := 0; i < n; i++ {
		found, err := tr.Delete(KV{Key: uint64(i)})
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !found {
			t.Fatalf("delete %d: not found", i)
		}
		if i%5000 == 4999 {
			if err := tr.Check(); err != nil {
				t.Fatalf("invariants broken after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Size() != 0 || tr.Height() != 1 {
		t.Fatalf("after full delete: size=%d height=%d", tr.Size(), tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTallTreeSequentialDeleteDescending(t *testing.T) {
	const n = 25_000
	tr, _ := buildSequential(t, n)
	for i := n - 1; i >= 0; i-- {
		if _, err := tr.Delete(KV{Key: uint64(i)}); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if i%5000 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("invariants broken at %d: %v", i, err)
			}
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestTallTreeDeleteMiddleThenScan(t *testing.T) {
	const n = 25_000
	tr, _ := buildSequential(t, n)
	// Carve out the middle 60%: stresses merges whose parents then
	// underflow and must themselves rebalance.
	lo, hi := n/5, n*4/5
	for i := lo; i < hi; i++ {
		if _, err := tr.Delete(KV{Key: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// The survivors must be exactly [0, lo) ∪ [hi, n).
	want := uint64(0)
	err := tr.RangeScan(KV{}, KV{Key: ^uint64(0), UID: ^uint32(0)}, func(kv KV, _ Payload) bool {
		if kv.Key != want {
			t.Fatalf("scan: got key %d, want %d", kv.Key, want)
		}
		want++
		if want == uint64(lo) {
			want = uint64(hi)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if want != uint64(n) {
		t.Fatalf("scan ended at %d, want %d", want, n)
	}
}

func TestTallTreeRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pool := store.NewBufferPool(store.NewMemDisk(), 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[uint64]bool)
	// Alternate heavy insert and heavy delete phases to push the height up
	// and back down repeatedly.
	for phase := 0; phase < 6; phase++ {
		if phase%2 == 0 {
			for i := 0; i < 8000; i++ {
				k := rng.Uint64() % 200_000
				if err := tr.Insert(KV{Key: k}, Payload{}); err != nil {
					t.Fatal(err)
				}
				live[k] = true
			}
		} else {
			for k := range live {
				if rng.Intn(100) < 70 {
					found, err := tr.Delete(KV{Key: k})
					if err != nil {
						t.Fatal(err)
					}
					if !found {
						t.Fatalf("live key %d missing", k)
					}
					delete(live, k)
				}
			}
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		if tr.Size() != len(live) {
			t.Fatalf("phase %d: size %d, model %d", phase, tr.Size(), len(live))
		}
	}
	// Spot-check membership.
	for k := range live {
		if _, ok, err := tr.Get(KV{Key: k}); err != nil || !ok {
			t.Fatalf("live key %d: ok=%v err=%v", k, ok, err)
		}
	}
	if pool.PinnedPages() != 0 {
		t.Fatalf("%d pages pinned after churn", pool.PinnedPages())
	}
}

func TestDeleteFromEmptyAndMissing(t *testing.T) {
	pool := store.NewBufferPool(store.NewMemDisk(), 8)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	found, err := tr.Delete(KV{Key: 42})
	if err != nil || found {
		t.Fatalf("delete from empty = %v, %v", found, err)
	}
	if err := tr.Insert(KV{Key: 1}, Payload{}); err != nil {
		t.Fatal(err)
	}
	found, err = tr.Delete(KV{Key: 1, UID: 9}) // same key, different uid
	if err != nil || found {
		t.Fatalf("delete wrong uid = %v, %v", found, err)
	}
	if tr.Size() != 1 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestKVStringer(t *testing.T) {
	if got := (KV{Key: 5, UID: 7}).String(); got != "(5,7)" {
		t.Errorf("String = %q", got)
	}
}
