package btree

import (
	"fmt"

	"repro/internal/store"
)

// Check validates the structural invariants of the tree and returns the
// first violation found. It is used by tests and is also handy when
// debugging index corruption:
//
//   - every entry and separator is in strictly ascending (Key, UID) order,
//   - separators correctly bound the keys of their subtrees,
//   - all leaves are at the same depth,
//   - non-root nodes respect minimum occupancy,
//   - the leaf sibling chain visits every leaf in order,
//   - Size() and LeafCount() match the actual contents.
func (t *Tree) Check() error {
	stats := &checkStats{}
	var min, max *KV
	if err := t.checkNode(t.root, 1, min, max, stats); err != nil {
		return err
	}
	if stats.entries != t.size {
		return fmt.Errorf("btree: Size()=%d but tree holds %d entries", t.size, stats.entries)
	}
	if stats.leaves != t.leafCount {
		return fmt.Errorf("btree: LeafCount()=%d but tree has %d leaves", t.leafCount, stats.leaves)
	}
	if stats.depth != t.height {
		return fmt.Errorf("btree: Height()=%d but leaves at depth %d", t.height, stats.depth)
	}
	return t.checkChain(stats)
}

type checkStats struct {
	entries   int
	leaves    int
	depth     int
	firstLeaf store.PageID
}

func (t *Tree) checkNode(pid store.PageID, depth int, min, max *KV, stats *checkStats) error {
	p, err := t.pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer func() { _ = t.pool.Unpin(pid, false) }()

	switch pageType(p) {
	case leafType:
		if stats.depth == 0 {
			stats.depth = depth
			stats.firstLeaf = pid
		} else if stats.depth != depth {
			return fmt.Errorf("btree: leaf %d at depth %d, expected %d", pid, depth, stats.depth)
		}
		entries, _ := readLeaf(p)
		if pid != t.root && len(entries) < minLeafEntries {
			return fmt.Errorf("btree: leaf %d underfull (%d < %d)", pid, len(entries), minLeafEntries)
		}
		stats.leaves++
		stats.entries += len(entries)
		for i, e := range entries {
			if i > 0 && !entries[i-1].kv.Less(e.kv) {
				return fmt.Errorf("btree: leaf %d entries out of order at %d", pid, i)
			}
			if min != nil && e.kv.Less(*min) {
				return fmt.Errorf("btree: leaf %d entry %v below bound %v", pid, e.kv, *min)
			}
			if max != nil && !e.kv.Less(*max) {
				return fmt.Errorf("btree: leaf %d entry %v at or above bound %v", pid, e.kv, *max)
			}
		}
		return nil

	case internalType:
		in := readInternal(p)
		if pid != t.root && len(in.seps) < minInternalEntries {
			return fmt.Errorf("btree: internal %d underfull (%d < %d)", pid, len(in.seps), minInternalEntries)
		}
		if pid == t.root && len(in.seps) == 0 && t.height > 1 {
			return fmt.Errorf("btree: internal root with no separators")
		}
		for i, s := range in.seps {
			if i > 0 && !in.seps[i-1].Less(s) {
				return fmt.Errorf("btree: internal %d separators out of order at %d", pid, i)
			}
			if min != nil && s.Less(*min) {
				return fmt.Errorf("btree: internal %d separator %v below bound %v", pid, s, *min)
			}
			if max != nil && !s.Less(*max) {
				return fmt.Errorf("btree: internal %d separator %v at or above bound %v", pid, s, *max)
			}
		}
		for i, child := range in.children {
			cmin, cmax := min, max
			if i > 0 {
				cmin = &in.seps[i-1]
			}
			if i < len(in.seps) {
				cmax = &in.seps[i]
			}
			if err := t.checkNode(child, depth+1, cmin, cmax, stats); err != nil {
				return err
			}
		}
		return nil

	default:
		return fmt.Errorf("btree: page %d has unknown type %d", pid, pageType(p))
	}
}

// checkChain verifies the leaf sibling chain covers all leaves in order.
func (t *Tree) checkChain(stats *checkStats) error {
	pid := stats.firstLeaf
	var prev *KV
	leaves, entries := 0, 0
	for pid != store.InvalidPageID {
		p, err := t.pool.Fetch(pid)
		if err != nil {
			return err
		}
		if pageType(p) != leafType {
			_ = t.pool.Unpin(pid, false)
			return fmt.Errorf("btree: sibling chain reached non-leaf page %d", pid)
		}
		es, next := readLeaf(p)
		if err := t.pool.Unpin(pid, false); err != nil {
			return err
		}
		leaves++
		entries += len(es)
		for i := range es {
			if prev != nil && !prev.Less(es[i].kv) {
				return fmt.Errorf("btree: sibling chain out of order at page %d entry %d", pid, i)
			}
			kv := es[i].kv
			prev = &kv
		}
		pid = next
		if leaves > stats.leaves {
			return fmt.Errorf("btree: sibling chain longer than leaf count %d", stats.leaves)
		}
	}
	if leaves != stats.leaves {
		return fmt.Errorf("btree: sibling chain visits %d leaves, tree has %d", leaves, stats.leaves)
	}
	if entries != stats.entries {
		return fmt.Errorf("btree: sibling chain sees %d entries, tree has %d", entries, stats.entries)
	}
	return nil
}
