package btree

import (
	"fmt"

	"repro/internal/store"
)

// Check validates the structural invariants of the tree and returns the
// first violation found. It is used by tests and is also handy when
// debugging index corruption:
//
//   - every entry and separator is in strictly ascending (Key, UID) order,
//   - separators correctly bound the keys of their subtrees,
//   - all leaves are at the same depth,
//   - non-root nodes respect minimum occupancy,
//   - an in-order walk (the cursor's descent-stack traversal) visits every
//     entry in strictly ascending order,
//   - Size() and LeafCount() match the actual contents.
func (t *Tree) Check() error {
	stats := &checkStats{}
	var min, max *KV
	if err := t.checkNode(t.root, 1, min, max, stats); err != nil {
		return err
	}
	if stats.entries != t.size {
		return fmt.Errorf("btree: Size()=%d but tree holds %d entries", t.size, stats.entries)
	}
	if stats.leaves != t.leafCount {
		return fmt.Errorf("btree: LeafCount()=%d but tree has %d leaves", t.leafCount, stats.leaves)
	}
	if stats.depth != t.height {
		return fmt.Errorf("btree: Height()=%d but leaves at depth %d", t.height, stats.depth)
	}
	return t.checkScan(stats)
}

type checkStats struct {
	entries int
	leaves  int
	depth   int
}

func (t *Tree) checkNode(pid store.PageID, depth int, min, max *KV, stats *checkStats) error {
	p, err := t.pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer func() { _ = t.pool.Unpin(pid, false) }()

	switch pageType(p) {
	case leafType:
		if stats.depth == 0 {
			stats.depth = depth
		} else if stats.depth != depth {
			return fmt.Errorf("btree: leaf %d at depth %d, expected %d", pid, depth, stats.depth)
		}
		entries := readLeaf(p)
		if pid != t.root && len(entries) < minLeafEntries {
			return fmt.Errorf("btree: leaf %d underfull (%d < %d)", pid, len(entries), minLeafEntries)
		}
		stats.leaves++
		stats.entries += len(entries)
		for i, e := range entries {
			if i > 0 && !entries[i-1].kv.Less(e.kv) {
				return fmt.Errorf("btree: leaf %d entries out of order at %d", pid, i)
			}
			if min != nil && e.kv.Less(*min) {
				return fmt.Errorf("btree: leaf %d entry %v below bound %v", pid, e.kv, *min)
			}
			if max != nil && !e.kv.Less(*max) {
				return fmt.Errorf("btree: leaf %d entry %v at or above bound %v", pid, e.kv, *max)
			}
		}
		return nil

	case internalType:
		in := readInternal(p)
		if pid != t.root && len(in.seps) < minInternalEntries {
			return fmt.Errorf("btree: internal %d underfull (%d < %d)", pid, len(in.seps), minInternalEntries)
		}
		if pid == t.root && len(in.seps) == 0 && t.height > 1 {
			return fmt.Errorf("btree: internal root with no separators")
		}
		for i, s := range in.seps {
			if i > 0 && !in.seps[i-1].Less(s) {
				return fmt.Errorf("btree: internal %d separators out of order at %d", pid, i)
			}
			if min != nil && s.Less(*min) {
				return fmt.Errorf("btree: internal %d separator %v below bound %v", pid, s, *min)
			}
			if max != nil && !s.Less(*max) {
				return fmt.Errorf("btree: internal %d separator %v at or above bound %v", pid, s, *max)
			}
		}
		for i, child := range in.children {
			cmin, cmax := min, max
			if i > 0 {
				cmin = &in.seps[i-1]
			}
			if i < len(in.seps) {
				cmax = &in.seps[i]
			}
			if err := t.checkNode(child, depth+1, cmin, cmax, stats); err != nil {
				return err
			}
		}
		return nil

	default:
		return fmt.Errorf("btree: page %d has unknown type %d", pid, pageType(p))
	}
}

// checkScan verifies the cursor's in-order traversal covers every entry in
// strictly ascending order — the same walk RangeScan and ScanLeaves use.
func (t *Tree) checkScan(stats *checkStats) error {
	var prev *KV
	var orderErr error
	entries := 0
	err := t.RangeScan(KV{}, KV{Key: ^uint64(0), UID: ^uint32(0)}, func(kv KV, _ Payload) bool {
		entries++
		if prev != nil && !prev.Less(kv) {
			orderErr = fmt.Errorf("btree: in-order walk out of order at %v", kv)
			return false
		}
		k := kv
		prev = &k
		return true
	})
	if err != nil {
		return err
	}
	if orderErr != nil {
		return orderErr
	}
	if entries != stats.entries {
		return fmt.Errorf("btree: in-order walk sees %d entries, tree has %d", entries, stats.entries)
	}
	return nil
}
