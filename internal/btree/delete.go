package btree

import (
	"fmt"

	"repro/internal/store"
)

// Delete removes the entry with the given composite key. It returns false
// if no such entry exists. Underfull nodes are rebalanced by redistribution
// with a sibling or by merging, and the root collapses when it has a single
// child, so the tree keeps B+-tree occupancy invariants under the heavy
// delete+insert churn of moving-object updates.
func (t *Tree) Delete(kv KV) (bool, error) {
	t.mutated = true
	newRoot, found, _, err := t.deleteRec(t.root, kv)
	if err != nil {
		return false, err
	}
	t.root = newRoot
	if found {
		t.size--
	}
	// Collapse the root while it is an internal node with one child.
	for t.height > 1 {
		p, err := t.pool.Fetch(t.root)
		if err != nil {
			return found, err
		}
		if pageType(p) != internalType || pageCount(p) > 0 {
			if err := t.pool.Unpin(t.root, false); err != nil {
				return found, err
			}
			break
		}
		in := readInternal(p)
		child := in.children[0]
		if err := t.discardPinned(t.root); err != nil {
			return found, err
		}
		t.root = child
		t.height--
	}
	return found, nil
}

// deleteRec removes kv from the subtree rooted at pid. newPid is the id the
// node lives at afterwards (copy-on-write may move it). underflow reports
// whether the node dropped below minimum occupancy; the caller rebalances.
func (t *Tree) deleteRec(pid store.PageID, kv KV) (newPid store.PageID, found, underflow bool, err error) {
	p, err := t.pool.Fetch(pid)
	if err != nil {
		return pid, false, false, err
	}

	if pageType(p) == leafType {
		entries := readLeaf(p)
		idx, exact := searchLeaf(entries, kv)
		if !exact {
			err = t.pool.Unpin(pid, false)
			return pid, false, false, err
		}
		entries = append(entries[:idx], entries[idx+1:]...)
		p, newPid, err = t.redirect(pid, p)
		if err != nil {
			return pid, false, false, err
		}
		writeLeaf(p, entries)
		err = t.pool.Unpin(newPid, true)
		return newPid, true, len(entries) < minLeafEntries, err
	}

	in := readInternal(p)
	ci := childIndex(in, kv)
	child := in.children[ci]
	if err := t.pool.Unpin(pid, false); err != nil {
		return pid, false, false, err
	}

	newChild, found, childUnder, err := t.deleteRec(child, kv)
	if err != nil {
		return pid, false, false, err
	}
	if !childUnder && newChild == child {
		return pid, found, false, nil
	}

	p, err = t.pool.Fetch(pid)
	if err != nil {
		return pid, found, false, err
	}
	in = readInternal(p)
	in.children[ci] = newChild
	if childUnder {
		if err := t.rebalanceChild(&in, ci); err != nil {
			_ = t.pool.Unpin(pid, false)
			return pid, found, false, err
		}
	}
	p, newPid, err = t.redirect(pid, p)
	if err != nil {
		return pid, found, false, err
	}
	writeInternal(p, in)
	underflow = len(in.seps) < minInternalEntries
	err = t.pool.Unpin(newPid, true)
	return newPid, found, underflow, err
}

// rebalanceChild restores occupancy of in.children[ci] by redistributing
// entries with an adjacent sibling or merging the pair. It mutates *in
// (the parent's separators/children); the caller writes the parent back.
// Sibling nodes rewritten under copy-on-write move to fresh pages, and the
// parent's child pointers are updated accordingly.
func (t *Tree) rebalanceChild(in *internalNode, ci int) error {
	// Normalize to the adjacent pair (li, li+1) with separator index li.
	li := ci
	if li == len(in.children)-1 {
		li = ci - 1
	}
	if li < 0 || len(in.children) < 2 {
		return nil // root's only child: nothing to rebalance against
	}
	leftID, rightID := in.children[li], in.children[li+1]

	lp, err := t.pool.Fetch(leftID)
	if err != nil {
		return err
	}
	rp, err := t.pool.Fetch(rightID)
	if err != nil {
		_ = t.pool.Unpin(leftID, false)
		return err
	}

	if pageType(lp) != pageType(rp) {
		_ = t.pool.Unpin(leftID, false)
		_ = t.pool.Unpin(rightID, false)
		return fmt.Errorf("btree: sibling type mismatch at pages %d/%d", leftID, rightID)
	}

	if pageType(lp) == leafType {
		le := readLeaf(lp)
		re := readLeaf(rp)
		if len(le)+len(re) <= LeafCapacity {
			// Merge right into left.
			merged := append(le, re...)
			lp, newLeft, err := t.redirect(leftID, lp)
			if err != nil {
				_ = t.pool.Unpin(rightID, false)
				return err
			}
			writeLeaf(lp, merged)
			if err := t.pool.Unpin(newLeft, true); err != nil {
				_ = t.pool.Unpin(rightID, false)
				return err
			}
			if err := t.discardPinned(rightID); err != nil {
				return err
			}
			t.leafCount--
			in.children[li] = newLeft
			in.seps = append(in.seps[:li], in.seps[li+1:]...)
			in.children = append(in.children[:li+1], in.children[li+2:]...)
			return nil
		}
		// Redistribute evenly; the new separator is right's first key.
		all := append(le, re...)
		mid := len(all) / 2
		lp, newLeft, err := t.redirect(leftID, lp)
		if err != nil {
			_ = t.pool.Unpin(rightID, false)
			return err
		}
		writeLeaf(lp, all[:mid])
		if err := t.pool.Unpin(newLeft, true); err != nil {
			_ = t.pool.Unpin(rightID, false)
			return err
		}
		rp, newRight, err := t.redirect(rightID, rp)
		if err != nil {
			return err
		}
		writeLeaf(rp, all[mid:])
		in.children[li] = newLeft
		in.children[li+1] = newRight
		in.seps[li] = all[mid].kv
		return t.pool.Unpin(newRight, true)
	}

	// Internal siblings: pull the parent separator down between them.
	ln := readInternal(lp)
	rn := readInternal(rp)
	combinedSeps := make([]KV, 0, len(ln.seps)+1+len(rn.seps))
	combinedSeps = append(combinedSeps, ln.seps...)
	combinedSeps = append(combinedSeps, in.seps[li])
	combinedSeps = append(combinedSeps, rn.seps...)
	combinedKids := make([]store.PageID, 0, len(ln.children)+len(rn.children))
	combinedKids = append(combinedKids, ln.children...)
	combinedKids = append(combinedKids, rn.children...)

	if len(combinedSeps) <= InternalCapacity {
		// Merge into the left node.
		lp, newLeft, err := t.redirect(leftID, lp)
		if err != nil {
			_ = t.pool.Unpin(rightID, false)
			return err
		}
		writeInternal(lp, internalNode{seps: combinedSeps, children: combinedKids})
		if err := t.pool.Unpin(newLeft, true); err != nil {
			_ = t.pool.Unpin(rightID, false)
			return err
		}
		if err := t.discardPinned(rightID); err != nil {
			return err
		}
		in.children[li] = newLeft
		in.seps = append(in.seps[:li], in.seps[li+1:]...)
		in.children = append(in.children[:li+1], in.children[li+2:]...)
		return nil
	}

	// Redistribute: the middle separator returns to the parent.
	mid := len(combinedSeps) / 2
	lp, newLeft, err := t.redirect(leftID, lp)
	if err != nil {
		_ = t.pool.Unpin(rightID, false)
		return err
	}
	writeInternal(lp, internalNode{
		seps:     append([]KV(nil), combinedSeps[:mid]...),
		children: append([]store.PageID(nil), combinedKids[:mid+1]...),
	})
	if err := t.pool.Unpin(newLeft, true); err != nil {
		_ = t.pool.Unpin(rightID, false)
		return err
	}
	rp, newRight, err := t.redirect(rightID, rp)
	if err != nil {
		return err
	}
	writeInternal(rp, internalNode{
		seps:     append([]KV(nil), combinedSeps[mid+1:]...),
		children: append([]store.PageID(nil), combinedKids[mid+1:]...),
	})
	in.children[li] = newLeft
	in.children[li+1] = newRight
	in.seps[li] = combinedSeps[mid]
	return t.pool.Unpin(newRight, true)
}
