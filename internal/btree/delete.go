package btree

import (
	"fmt"

	"repro/internal/store"
)

// Delete removes the entry with the given composite key. It returns false
// if no such entry exists. Underfull nodes are rebalanced by redistribution
// with a sibling or by merging, and the root collapses when it has a single
// child, so the tree keeps B+-tree occupancy invariants under the heavy
// delete+insert churn of moving-object updates.
func (t *Tree) Delete(kv KV) (bool, error) {
	found, _, err := t.deleteRec(t.root, kv)
	if err != nil {
		return false, err
	}
	if found {
		t.size--
	}
	// Collapse the root while it is an internal node with one child.
	for t.height > 1 {
		p, err := t.pool.Fetch(t.root)
		if err != nil {
			return found, err
		}
		if pageType(p) != internalType || pageCount(p) > 0 {
			if err := t.pool.Unpin(t.root, false); err != nil {
				return found, err
			}
			break
		}
		in := readInternal(p)
		child := in.children[0]
		if err := t.pool.FreePage(t.root); err != nil {
			return found, err
		}
		t.root = child
		t.height--
	}
	return found, nil
}

// deleteRec removes kv from the subtree rooted at pid. underflow reports
// whether the node at pid dropped below its minimum occupancy; the caller
// is responsible for rebalancing it.
func (t *Tree) deleteRec(pid store.PageID, kv KV) (found, underflow bool, err error) {
	p, err := t.pool.Fetch(pid)
	if err != nil {
		return false, false, err
	}

	if pageType(p) == leafType {
		entries, next := readLeaf(p)
		idx, exact := searchLeaf(entries, kv)
		if !exact {
			err = t.pool.Unpin(pid, false)
			return false, false, err
		}
		entries = append(entries[:idx], entries[idx+1:]...)
		writeLeaf(p, entries, next)
		err = t.pool.Unpin(pid, true)
		return true, len(entries) < minLeafEntries, err
	}

	in := readInternal(p)
	ci := childIndex(in, kv)
	child := in.children[ci]
	if err := t.pool.Unpin(pid, false); err != nil {
		return false, false, err
	}

	found, childUnder, err := t.deleteRec(child, kv)
	if err != nil || !childUnder {
		return found, false, err
	}

	// Rebalance the underfull child against a sibling.
	p, err = t.pool.Fetch(pid)
	if err != nil {
		return found, false, err
	}
	in = readInternal(p)
	if err := t.rebalanceChild(p, &in, ci); err != nil {
		_ = t.pool.Unpin(pid, true)
		return found, false, err
	}
	writeInternal(p, in)
	underflow = len(in.seps) < minInternalEntries
	err = t.pool.Unpin(pid, true)
	return found, underflow, err
}

// rebalanceChild restores occupancy of in.children[ci] by redistributing
// entries with an adjacent sibling or merging the pair. It mutates *in
// (the parent's separators/children); the caller writes the parent back.
func (t *Tree) rebalanceChild(parent *store.Page, in *internalNode, ci int) error {
	// Normalize to the adjacent pair (li, li+1) with separator index li.
	li := ci
	if li == len(in.children)-1 {
		li = ci - 1
	}
	if li < 0 || len(in.children) < 2 {
		return nil // root's only child: nothing to rebalance against
	}
	leftID, rightID := in.children[li], in.children[li+1]

	lp, err := t.pool.Fetch(leftID)
	if err != nil {
		return err
	}
	rp, err := t.pool.Fetch(rightID)
	if err != nil {
		_ = t.pool.Unpin(leftID, false)
		return err
	}

	if pageType(lp) != pageType(rp) {
		_ = t.pool.Unpin(leftID, false)
		_ = t.pool.Unpin(rightID, false)
		return fmt.Errorf("btree: sibling type mismatch at pages %d/%d", leftID, rightID)
	}

	if pageType(lp) == leafType {
		le, _ := readLeaf(lp)
		re, rnext := readLeaf(rp)
		if len(le)+len(re) <= LeafCapacity {
			// Merge right into left.
			merged := append(le, re...)
			writeLeaf(lp, merged, rnext)
			if err := t.pool.Unpin(leftID, true); err != nil {
				_ = t.pool.Unpin(rightID, false)
				return err
			}
			if err := t.pool.FreePage(rightID); err != nil {
				return err
			}
			t.leafCount--
			in.seps = append(in.seps[:li], in.seps[li+1:]...)
			in.children = append(in.children[:li+1], in.children[li+2:]...)
			return nil
		}
		// Redistribute evenly; the new separator is right's first key.
		all := append(le, re...)
		mid := len(all) / 2
		// writeLeaf(lp, ...) keeps left's existing next pointer = rightID.
		writeLeaf(lp, all[:mid], rightID)
		writeLeaf(rp, all[mid:], rnext)
		in.seps[li] = all[mid].kv
		if err := t.pool.Unpin(leftID, true); err != nil {
			_ = t.pool.Unpin(rightID, true)
			return err
		}
		return t.pool.Unpin(rightID, true)
	}

	// Internal siblings: pull the parent separator down between them.
	ln := readInternal(lp)
	rn := readInternal(rp)
	combinedSeps := make([]KV, 0, len(ln.seps)+1+len(rn.seps))
	combinedSeps = append(combinedSeps, ln.seps...)
	combinedSeps = append(combinedSeps, in.seps[li])
	combinedSeps = append(combinedSeps, rn.seps...)
	combinedKids := make([]store.PageID, 0, len(ln.children)+len(rn.children))
	combinedKids = append(combinedKids, ln.children...)
	combinedKids = append(combinedKids, rn.children...)

	if len(combinedSeps) <= InternalCapacity {
		// Merge into the left node.
		writeInternal(lp, internalNode{seps: combinedSeps, children: combinedKids})
		if err := t.pool.Unpin(leftID, true); err != nil {
			_ = t.pool.Unpin(rightID, false)
			return err
		}
		if err := t.pool.FreePage(rightID); err != nil {
			return err
		}
		in.seps = append(in.seps[:li], in.seps[li+1:]...)
		in.children = append(in.children[:li+1], in.children[li+2:]...)
		return nil
	}

	// Redistribute: the middle separator returns to the parent.
	mid := len(combinedSeps) / 2
	writeInternal(lp, internalNode{
		seps:     append([]KV(nil), combinedSeps[:mid]...),
		children: append([]store.PageID(nil), combinedKids[:mid+1]...),
	})
	writeInternal(rp, internalNode{
		seps:     append([]KV(nil), combinedSeps[mid+1:]...),
		children: append([]store.PageID(nil), combinedKids[mid+1:]...),
	})
	in.seps[li] = combinedSeps[mid]
	if err := t.pool.Unpin(leftID, true); err != nil {
		_ = t.pool.Unpin(rightID, true)
		return err
	}
	return t.pool.Unpin(rightID, true)
}
