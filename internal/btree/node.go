package btree

import (
	"fmt"

	"repro/internal/store"
)

// Page layout
//
// Every node occupies one 4 KB page:
//
//	byte 0      node type (leafType or internalType)
//	byte 1      reserved
//	bytes 2-3   entry count (uint16)
//	bytes 4-7   leaf: reserved (zero); internal: leftmost child page id
//	bytes 8-11  reserved
//	bytes 12-   entries
//
// A leaf entry is (key uint64, uid uint32, payload [PayloadSize]byte).
// An internal entry is (sepKey uint64, sepUID uint32, child PageID); the
// separator at index i is the smallest KV reachable through child i+1.
//
// Leaves carry no sibling pointers: scans walk the tree with a descent
// stack instead (see Cursor). A chain pointer cannot survive copy-on-write
// — copying one leaf would stale its left sibling's pointer — and the
// snapshot design (Seal) depends on never rewriting a sealed page. Bytes
// 4–7 of a leaf are reserved so pages written by earlier versions (which
// stored a sibling id there) remain readable.
const (
	leafType     = 1
	internalType = 2

	headerSize = 12

	// PayloadSize is the fixed number of payload bytes stored with every
	// key. 40 bytes holds a moving-object state (x, y, vx, vy, t as
	// float64), the leaf record format of Sec. 5.2.
	PayloadSize = 40

	leafEntrySize     = 8 + 4 + PayloadSize
	internalEntrySize = 8 + 4 + 4

	// LeafCapacity and InternalCapacity are the per-node fanouts implied
	// by the 4 KB page size. The cost model (Sec. 6) uses LeafCapacity to
	// estimate the leaf count Nl.
	LeafCapacity     = (store.PageSize - headerSize) / leafEntrySize
	InternalCapacity = (store.PageSize - headerSize) / internalEntrySize

	minLeafEntries     = LeafCapacity / 2
	minInternalEntries = InternalCapacity / 2
)

// KV is the composite key of every tree entry: the index key (a Bx or PEB
// key value) plus the user id, which disambiguates users that share a key.
type KV struct {
	Key uint64
	UID uint32
}

// Less orders KVs lexicographically by (Key, UID).
func (a KV) Less(b KV) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.UID < b.UID
}

// String implements fmt.Stringer.
func (a KV) String() string { return fmt.Sprintf("(%d,%d)", a.Key, a.UID) }

// Payload is the fixed-size record stored with each leaf entry.
type Payload [PayloadSize]byte

// leafEntry is the in-memory form of a leaf slot.
type leafEntry struct {
	kv      KV
	payload Payload
}

// pageType reads the node type byte.
func pageType(p *store.Page) byte { return p.Data()[0] }

// pageCount reads the entry count.
func pageCount(p *store.Page) int { return int(p.Uint16(2)) }

// readLeaf decodes a leaf page into entries.
func readLeaf(p *store.Page) []leafEntry {
	n := pageCount(p)
	entries := make([]leafEntry, n)
	for i := 0; i < n; i++ {
		off := headerSize + i*leafEntrySize
		entries[i].kv.Key = p.Uint64(off)
		entries[i].kv.UID = p.Uint32(off + 8)
		copy(entries[i].payload[:], p.Data()[off+12:off+12+PayloadSize])
	}
	return entries
}

// writeLeaf encodes entries into a leaf page.
func writeLeaf(p *store.Page, entries []leafEntry) {
	if len(entries) > LeafCapacity {
		panic(fmt.Sprintf("btree: writing %d entries to leaf (cap %d)", len(entries), LeafCapacity))
	}
	d := p.Data()
	d[0] = leafType
	d[1] = 0
	p.PutUint16(2, uint16(len(entries)))
	p.PutUint32(4, 0)
	p.PutUint32(8, 0)
	for i, e := range entries {
		off := headerSize + i*leafEntrySize
		p.PutUint64(off, e.kv.Key)
		p.PutUint32(off+8, e.kv.UID)
		copy(d[off+12:off+12+PayloadSize], e.payload[:])
	}
	p.MarkDirty()
}

// internalNode is the in-memory form of an internal page: len(children) is
// always len(seps)+1, and seps[i] separates children[i] from children[i+1].
type internalNode struct {
	seps     []KV
	children []store.PageID
}

// readInternal decodes an internal page.
func readInternal(p *store.Page) internalNode {
	n := pageCount(p)
	in := internalNode{
		seps:     make([]KV, n),
		children: make([]store.PageID, n+1),
	}
	in.children[0] = store.PageID(p.Uint32(4))
	for i := 0; i < n; i++ {
		off := headerSize + i*internalEntrySize
		in.seps[i].Key = p.Uint64(off)
		in.seps[i].UID = p.Uint32(off + 8)
		in.children[i+1] = store.PageID(p.Uint32(off + 12))
	}
	return in
}

// writeInternal encodes an internal node into its page.
func writeInternal(p *store.Page, in internalNode) {
	if len(in.children) != len(in.seps)+1 {
		panic(fmt.Sprintf("btree: internal node with %d seps, %d children", len(in.seps), len(in.children)))
	}
	if len(in.seps) > InternalCapacity {
		panic(fmt.Sprintf("btree: writing %d seps to internal (cap %d)", len(in.seps), InternalCapacity))
	}
	d := p.Data()
	d[0] = internalType
	d[1] = 0
	p.PutUint16(2, uint16(len(in.seps)))
	p.PutUint32(4, uint32(in.children[0]))
	p.PutUint32(8, 0)
	for i, s := range in.seps {
		off := headerSize + i*internalEntrySize
		p.PutUint64(off, s.Key)
		p.PutUint32(off+8, s.UID)
		p.PutUint32(off+12, uint32(in.children[i+1]))
	}
	p.MarkDirty()
}

// searchLeaf returns the index of the first entry >= kv and whether that
// entry equals kv exactly.
func searchLeaf(entries []leafEntry, kv KV) (int, bool) {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].kv.Less(kv) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(entries) && entries[lo].kv == kv
}

// childIndex returns which child of in covers kv: the number of separators
// <= kv (entries equal to a separator live in the right child).
func childIndex(in internalNode, kv KV) int {
	lo, hi := 0, len(in.seps)
	for lo < hi {
		mid := (lo + hi) / 2
		if kv.Less(in.seps[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
