package btree

import (
	"fmt"

	"repro/internal/store"
)

// Item is one entry for BulkLoad.
type Item struct {
	KV      KV
	Payload Payload
}

// bulkLeafFill and bulkInternalFill are the target occupancies of
// bulk-built nodes: denser than the ~50% incremental splits converge to,
// so a bulk-loaded tree has fewer pages and cheaper scans, while leaving
// headroom so the first trickle of post-load inserts does not split every
// leaf it touches.
const (
	bulkLeafFill     = LeafCapacity * 3 / 4
	bulkInternalFill = (InternalCapacity + 1) * 3 / 4 // children per node
)

// BulkLoad replaces an empty tree's contents with items, which must be in
// strictly ascending KV order. The tree is built bottom-up: leaves are
// written left-to-right at bulkLeafFill occupancy and each separator level
// is assembled on top, so every page is allocated, written once, and never
// revisited — where repeated Insert would descend, split, and re-dirty
// pages throughout the load. Entry counts are balanced within each level,
// so every non-root node meets its minimum occupancy.
//
// BulkLoad participates in copy-on-write like any mutation: all pages it
// writes are fresh, the superseded empty root is retired or freed, and a
// surrounding Txn rolls the whole build back.
func (t *Tree) BulkLoad(items []Item) error {
	if t.size != 0 {
		return fmt.Errorf("btree: BulkLoad into non-empty tree (%d entries)", t.size)
	}
	if len(items) == 0 {
		return nil
	}
	for i := 1; i < len(items); i++ {
		if !items[i-1].KV.Less(items[i].KV) {
			return fmt.Errorf("btree: BulkLoad items not strictly ascending at %d (%v, %v)",
				i, items[i-1].KV, items[i].KV)
		}
	}
	t.mutated = true

	// The empty root leaf is superseded by the built tree.
	if _, err := t.pool.Fetch(t.root); err != nil {
		return err
	}
	if err := t.discardPinned(t.root); err != nil {
		return err
	}
	t.leafCount = 0

	// childRef carries what the level above needs: the subtree's smallest
	// key (the separator) and its page.
	type childRef struct {
		first KV
		pid   store.PageID
	}

	// Leaf level.
	counts := balancedChunks(len(items), bulkLeafFill, minLeafEntries)
	level := make([]childRef, 0, len(counts))
	off := 0
	for _, c := range counts {
		chunk := make([]leafEntry, c)
		for j := 0; j < c; j++ {
			chunk[j] = leafEntry{kv: items[off+j].KV, payload: items[off+j].Payload}
		}
		off += c
		p, err := t.allocPage()
		if err != nil {
			return fmt.Errorf("btree: bulk leaf: %w", err)
		}
		writeLeaf(p, chunk)
		pid := p.ID()
		if err := t.pool.Unpin(pid, true); err != nil {
			return err
		}
		level = append(level, childRef{first: chunk[0].kv, pid: pid})
		t.leafCount++
	}

	// Separator levels, bottom-up, until one root remains.
	height := 1
	for len(level) > 1 {
		counts := balancedChunks(len(level), bulkInternalFill, minInternalEntries+1)
		next := make([]childRef, 0, len(counts))
		off := 0
		for _, c := range counts {
			group := level[off : off+c]
			off += c
			in := internalNode{
				seps:     make([]KV, c-1),
				children: make([]store.PageID, c),
			}
			for j, ch := range group {
				in.children[j] = ch.pid
				if j > 0 {
					in.seps[j-1] = ch.first
				}
			}
			p, err := t.allocPage()
			if err != nil {
				return fmt.Errorf("btree: bulk internal: %w", err)
			}
			writeInternal(p, in)
			pid := p.ID()
			if err := t.pool.Unpin(pid, true); err != nil {
				return err
			}
			next = append(next, childRef{first: group[0].first, pid: pid})
		}
		level = next
		height++
	}

	t.root = level[0].pid
	t.height = height
	t.size = len(items)
	return nil
}

// balancedChunks splits n items into chunks of at most `fill` and — when
// more than one chunk is needed — at least `min`, spreading items evenly.
func balancedChunks(n, fill, min int) []int {
	chunks := (n + fill - 1) / fill
	if chunks > 1 {
		if most := n / min; chunks > most {
			chunks = most
		}
	}
	if chunks < 1 {
		chunks = 1
	}
	base := n / chunks
	extra := n % chunks
	out := make([]int, chunks)
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}
