package btree

import (
	"fmt"

	"repro/internal/store"
)

// Meta captures the tree's root linkage and counters, everything needed to
// re-attach a Tree to its pages after a process restart. Callers persist
// Meta out of band (the page store holds only node pages).
type Meta struct {
	Root      store.PageID
	Height    int
	Size      int
	LeafCount int
}

// Meta returns the tree's current persistence record. The caller must
// flush the buffer pool before persisting it, or the pages it points at
// may not be on disk yet.
func (t *Tree) Meta() Meta {
	return Meta{Root: t.root, Height: t.height, Size: t.size, LeafCount: t.leafCount}
}

// Open re-attaches a tree to existing pages in pool using a Meta record
// produced by Meta. The root page is validated: it must be a leaf when
// Height is 1 and an internal node otherwise.
func Open(pool *store.BufferPool, m Meta) (*Tree, error) {
	if m.Root == store.InvalidPageID || m.Height < 1 || m.Size < 0 || m.LeafCount < 1 {
		return nil, fmt.Errorf("btree: invalid meta %+v", m)
	}
	p, err := pool.Fetch(m.Root)
	if err != nil {
		return nil, fmt.Errorf("btree: open root: %w", err)
	}
	typ := pageType(p)
	if err := pool.Unpin(m.Root, false); err != nil {
		return nil, err
	}
	wantLeaf := m.Height == 1
	if wantLeaf && typ != leafType || !wantLeaf && typ != internalType {
		return nil, fmt.Errorf("btree: root page %d has type %d, inconsistent with height %d",
			m.Root, typ, m.Height)
	}
	return &Tree{pool: pool, root: m.Root, height: m.Height, size: m.Size, leafCount: m.LeafCount}, nil
}
