package btree

import (
	"fmt"

	"repro/internal/store"
)

// WalkPages traverses the tree top-down and returns every reachable page
// id. Unlike Check it is defensive: it is meant to run against pages that
// may be arbitrary garbage (a corrupt or mismatched checkpoint), so every
// structural property is validated *before* a node is decoded — node type,
// entry count against the page capacity, child ids against maxPage, cycles,
// and leaf depth against the tree's height — and a violation is reported as
// an error instead of an out-of-range panic deep in the node codec.
//
// maxPage, when non-zero, is the highest page id the backing store holds;
// any reference beyond it is corruption. The walk is also how checkpoints
// compute reachability: every allocated page not returned here (and not
// pinned by a snapshot) is dead and can be freed.
func (t *Tree) WalkPages(maxPage store.PageID) ([]store.PageID, error) {
	return t.Reader().WalkPages(maxPage)
}

// WalkPages is the reachability walk on a fixed view of the tree (see
// Tree.WalkPages for the validation it performs). Because a Reader is
// pinned at its creation, a checkpoint can capture one inside its cut
// critical section — right after sealing the tree — and run the walk
// during its lock-free build phase: sealed pages are immutable (concurrent
// mutations copy-on-write fresh pages that the sealed root cannot reach),
// so the walk observes exactly the cut image no matter how many commits
// land meanwhile.
func (r *Reader) WalkPages(maxPage store.PageID) ([]store.PageID, error) {
	visited := make(map[store.PageID]bool)
	out := make([]store.PageID, 0, r.leafCount*2)
	var walk func(pid store.PageID, depth int) error
	walk = func(pid store.PageID, depth int) error {
		if pid == store.InvalidPageID {
			return fmt.Errorf("btree: invalid page id at depth %d", depth)
		}
		if maxPage > 0 && pid > maxPage {
			return fmt.Errorf("btree: page %d beyond store of %d pages", pid, maxPage)
		}
		if visited[pid] {
			return fmt.Errorf("btree: page %d reachable twice", pid)
		}
		if depth > r.height {
			return fmt.Errorf("btree: node %d at depth %d exceeds height %d", pid, depth, r.height)
		}
		visited[pid] = true
		out = append(out, pid)

		p, err := r.fetch(pid)
		if err != nil {
			return err
		}
		var children []store.PageID
		typ, n := pageType(p), pageCount(p)
		switch typ {
		case leafType:
			if n > LeafCapacity {
				err = fmt.Errorf("btree: leaf %d claims %d entries (cap %d)", pid, n, LeafCapacity)
			} else if depth != r.height {
				err = fmt.Errorf("btree: leaf %d at depth %d, height is %d", pid, depth, r.height)
			}
		case internalType:
			if n > InternalCapacity {
				err = fmt.Errorf("btree: internal %d claims %d separators (cap %d)", pid, n, InternalCapacity)
			} else if depth == r.height {
				err = fmt.Errorf("btree: internal %d at leaf depth %d", pid, depth)
			} else {
				children = append(children, readInternal(p).children...)
			}
		default:
			err = fmt.Errorf("btree: page %d has unknown type %d", pid, typ)
		}
		if uerr := r.pool.Unpin(pid, false); err == nil {
			err = uerr
		}
		if err != nil {
			return err
		}
		for _, c := range children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if r.height < 1 {
		return nil, fmt.Errorf("btree: invalid height %d", r.height)
	}
	if err := walk(r.root, 1); err != nil {
		return nil, err
	}
	return out, nil
}
