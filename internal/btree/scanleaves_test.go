package btree

import (
	"math/rand"
	"testing"

	"repro/internal/store"
)

// TestScanLeavesSuperset: ScanLeaves must deliver every entry RangeScan
// delivers, touch the same number of pages, and only add entries from the
// boundary leaves.
func TestScanLeavesSuperset(t *testing.T) {
	pool := store.NewBufferPool(store.NewMemDisk(), 8)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = rng.Uint64() % 100_000
		if err := tr.Insert(KV{Key: keys[i], UID: uint32(i)}, Payload{}); err != nil {
			t.Fatal(err)
		}
	}

	for trial := 0; trial < 50; trial++ {
		lo := KV{Key: rng.Uint64() % 100_000}
		hi := KV{Key: lo.Key + rng.Uint64()%5_000, UID: ^uint32(0)}

		base := pool.Stats().Accesses()
		var ranged []KV
		if err := tr.RangeScan(lo, hi, func(kv KV, _ Payload) bool {
			ranged = append(ranged, kv)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		rangedIO := pool.Stats().Accesses() - base

		base = pool.Stats().Accesses()
		var leaves []KV
		if err := tr.ScanLeaves(lo, hi, func(kv KV, _ Payload) bool {
			leaves = append(leaves, kv)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		leavesIO := pool.Stats().Accesses() - base

		// Page-access parity: same tree walk, same leaf chain.
		if leavesIO > rangedIO {
			t.Fatalf("trial %d: ScanLeaves accesses %d > RangeScan %d", trial, leavesIO, rangedIO)
		}

		// Every ranged entry appears in the leaves scan, in order.
		inLeaves := make(map[KV]bool, len(leaves))
		for _, kv := range leaves {
			inLeaves[kv] = true
		}
		for _, kv := range ranged {
			if !inLeaves[kv] {
				t.Fatalf("trial %d: entry %v missing from ScanLeaves", trial, kv)
			}
		}
		// Extra entries may only come from the boundary leaves: each is
		// either < lo or > hi, never strictly inside without being ranged.
		for _, kv := range leaves {
			if (lo.Less(kv) || kv == lo) && (kv.Less(hi) || kv == hi) && !contains(ranged, kv) {
				t.Fatalf("trial %d: in-range entry %v from ScanLeaves missing in RangeScan", trial, kv)
			}
		}
	}
}

func contains(kvs []KV, kv KV) bool {
	for _, k := range kvs {
		if k == kv {
			return true
		}
	}
	return false
}

func TestScanLeavesEmptyAndReversed(t *testing.T) {
	pool := store.NewBufferPool(store.NewMemDisk(), 8)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed range: no-op.
	if err := tr.ScanLeaves(KV{Key: 10}, KV{Key: 5}, func(KV, Payload) bool {
		t.Fatal("callback on reversed range")
		return false
	}); err != nil {
		t.Fatal(err)
	}
	// Empty tree: no entries, no error.
	calls := 0
	if err := tr.ScanLeaves(KV{}, KV{Key: ^uint64(0)}, func(KV, Payload) bool {
		calls++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("empty tree produced %d callbacks", calls)
	}
}

func TestScanLeavesEarlyStop(t *testing.T) {
	pool := store.NewBufferPool(store.NewMemDisk(), 8)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := tr.Insert(KV{Key: i}, Payload{}); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	if err := tr.ScanLeaves(KV{}, KV{Key: 499}, func(KV, Payload) bool {
		calls++
		return calls < 7
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Fatalf("early stop after %d callbacks, want 7", calls)
	}
}
