package btree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/store"
)

func newTestTree(t testing.TB, bufPages int) *Tree {
	t.Helper()
	tree, err := New(store.NewBufferPool(store.NewMemDisk(), bufPages))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tree
}

func payloadFor(kv KV) Payload {
	var p Payload
	p[0] = byte(kv.Key)
	p[1] = byte(kv.Key >> 8)
	p[2] = byte(kv.UID)
	p[3] = byte(kv.UID >> 8)
	return p
}

func TestEmptyTree(t *testing.T) {
	tree := newTestTree(t, 8)
	if tree.Size() != 0 || tree.Height() != 1 || tree.LeafCount() != 1 {
		t.Fatalf("empty tree: size=%d height=%d leaves=%d", tree.Size(), tree.Height(), tree.LeafCount())
	}
	if _, ok, err := tree.Get(KV{1, 1}); err != nil || ok {
		t.Fatalf("Get on empty tree: ok=%v err=%v", ok, err)
	}
	if found, err := tree.Delete(KV{1, 1}); err != nil || found {
		t.Fatalf("Delete on empty tree: found=%v err=%v", found, err)
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestInsertGetSingleLeaf(t *testing.T) {
	tree := newTestTree(t, 8)
	kvs := []KV{{5, 0}, {1, 0}, {3, 2}, {3, 1}, {9, 7}}
	for _, kv := range kvs {
		if err := tree.Insert(kv, payloadFor(kv)); err != nil {
			t.Fatalf("Insert(%v): %v", kv, err)
		}
	}
	for _, kv := range kvs {
		p, ok, err := tree.Get(kv)
		if err != nil || !ok {
			t.Fatalf("Get(%v): ok=%v err=%v", kv, ok, err)
		}
		if p != payloadFor(kv) {
			t.Fatalf("Get(%v) wrong payload", kv)
		}
	}
	if _, ok, _ := tree.Get(KV{3, 3}); ok {
		t.Fatalf("Get of absent uid succeeded")
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestInsertReplaces(t *testing.T) {
	tree := newTestTree(t, 8)
	kv := KV{42, 7}
	_ = tree.Insert(kv, payloadFor(kv))
	var other Payload
	other[0] = 0xFF
	if err := tree.Insert(kv, other); err != nil {
		t.Fatalf("replacing insert: %v", err)
	}
	if tree.Size() != 1 {
		t.Fatalf("Size = %d after replace, want 1", tree.Size())
	}
	p, ok, _ := tree.Get(kv)
	if !ok || p != other {
		t.Fatalf("replace did not stick")
	}
}

func TestSplitsGrowHeight(t *testing.T) {
	tree := newTestTree(t, 64)
	n := LeafCapacity*3 + 5
	for i := 0; i < n; i++ {
		kv := KV{Key: uint64(i), UID: uint32(i)}
		if err := tree.Insert(kv, payloadFor(kv)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tree.Height() < 2 {
		t.Fatalf("height = %d after %d inserts, want >= 2", tree.Height(), n)
	}
	if tree.Size() != n {
		t.Fatalf("Size = %d, want %d", tree.Size(), n)
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	for i := 0; i < n; i++ {
		kv := KV{Key: uint64(i), UID: uint32(i)}
		if _, ok, _ := tree.Get(kv); !ok {
			t.Fatalf("entry %d lost after splits", i)
		}
	}
}

func TestThreeLevelTree(t *testing.T) {
	tree := newTestTree(t, 64)
	// Enough entries to force an internal split (height 3).
	n := LeafCapacity * (InternalCapacity + 2)
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(n)
	for _, i := range perm {
		kv := KV{Key: uint64(i), UID: 0}
		if err := tree.Insert(kv, payloadFor(kv)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tree.Height() < 3 {
		t.Fatalf("height = %d, want >= 3", tree.Height())
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// Spot-check membership.
	for i := 0; i < n; i += 997 {
		if _, ok, _ := tree.Get(KV{uint64(i), 0}); !ok {
			t.Fatalf("entry %d missing", i)
		}
	}
}

func TestDeleteSimple(t *testing.T) {
	tree := newTestTree(t, 8)
	for i := 0; i < 10; i++ {
		kv := KV{uint64(i), 0}
		_ = tree.Insert(kv, payloadFor(kv))
	}
	found, err := tree.Delete(KV{5, 0})
	if err != nil || !found {
		t.Fatalf("Delete: found=%v err=%v", found, err)
	}
	if _, ok, _ := tree.Get(KV{5, 0}); ok {
		t.Fatalf("deleted entry still present")
	}
	if tree.Size() != 9 {
		t.Fatalf("Size = %d, want 9", tree.Size())
	}
	found, _ = tree.Delete(KV{5, 0})
	if found {
		t.Fatalf("double delete reported found")
	}
}

func TestDeleteEverythingCollapsesRoot(t *testing.T) {
	tree := newTestTree(t, 64)
	n := LeafCapacity * 5
	for i := 0; i < n; i++ {
		kv := KV{uint64(i), 0}
		_ = tree.Insert(kv, payloadFor(kv))
	}
	if tree.Height() < 2 {
		t.Fatalf("setup: height %d", tree.Height())
	}
	for i := 0; i < n; i++ {
		found, err := tree.Delete(KV{uint64(i), 0})
		if err != nil || !found {
			t.Fatalf("Delete %d: found=%v err=%v", i, found, err)
		}
	}
	if tree.Size() != 0 {
		t.Fatalf("Size = %d after deleting all", tree.Size())
	}
	if tree.Height() != 1 || tree.LeafCount() != 1 {
		t.Fatalf("tree did not collapse: height=%d leaves=%d", tree.Height(), tree.LeafCount())
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

// modelTest drives the tree and a reference map with the same random
// operations and verifies they agree.
func modelTest(t *testing.T, seed int64, ops, keySpace int, bufPages int) {
	t.Helper()
	tree := newTestTree(t, bufPages)
	model := make(map[KV]Payload)
	rng := rand.New(rand.NewSource(seed))

	for i := 0; i < ops; i++ {
		kv := KV{Key: uint64(rng.Intn(keySpace)), UID: uint32(rng.Intn(4))}
		switch rng.Intn(3) {
		case 0, 1: // insert biased 2:1 so the tree grows
			p := payloadFor(kv)
			p[4] = byte(i)
			if err := tree.Insert(kv, p); err != nil {
				t.Fatalf("op %d Insert(%v): %v", i, kv, err)
			}
			model[kv] = p
		case 2:
			found, err := tree.Delete(kv)
			if err != nil {
				t.Fatalf("op %d Delete(%v): %v", i, kv, err)
			}
			if _, want := model[kv]; found != want {
				t.Fatalf("op %d Delete(%v) found=%v want %v", i, kv, found, want)
			}
			delete(model, kv)
		}
		if i%500 == 499 {
			if err := tree.Check(); err != nil {
				t.Fatalf("op %d Check: %v", i, err)
			}
		}
	}

	if tree.Size() != len(model) {
		t.Fatalf("Size = %d, model has %d", tree.Size(), len(model))
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("final Check: %v", err)
	}
	for kv, want := range model {
		got, ok, err := tree.Get(kv)
		if err != nil || !ok {
			t.Fatalf("Get(%v): ok=%v err=%v", kv, ok, err)
		}
		if got != want {
			t.Fatalf("Get(%v) payload mismatch", kv)
		}
	}
	// Full scan agrees with the sorted model.
	var wantKeys []KV
	for kv := range model {
		wantKeys = append(wantKeys, kv)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i].Less(wantKeys[j]) })
	var gotKeys []KV
	err := tree.RangeScan(KV{0, 0}, KV{^uint64(0), ^uint32(0)}, func(kv KV, _ Payload) bool {
		gotKeys = append(gotKeys, kv)
		return true
	})
	if err != nil {
		t.Fatalf("RangeScan: %v", err)
	}
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("scan yields %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("scan key %d = %v, want %v", i, gotKeys[i], wantKeys[i])
		}
	}
}

func TestModelSmallKeySpace(t *testing.T)  { modelTest(t, 1, 4000, 200, 16) }
func TestModelMediumKeySpace(t *testing.T) { modelTest(t, 2, 6000, 5000, 32) }
func TestModelLargeKeySpace(t *testing.T)  { modelTest(t, 3, 8000, 1_000_000, 50) }
func TestModelTinyBuffer(t *testing.T)     { modelTest(t, 4, 3000, 2000, 8) }

func TestModelDeleteHeavy(t *testing.T) {
	tree := newTestTree(t, 32)
	model := make(map[KV]Payload)
	rng := rand.New(rand.NewSource(99))
	// Build up, then delete down to empty in random order.
	var kvs []KV
	for i := 0; i < 3000; i++ {
		kv := KV{Key: uint64(rng.Intn(1 << 30)), UID: uint32(i)}
		_ = tree.Insert(kv, payloadFor(kv))
		model[kv] = payloadFor(kv)
		kvs = append(kvs, kv)
	}
	rng.Shuffle(len(kvs), func(i, j int) { kvs[i], kvs[j] = kvs[j], kvs[i] })
	for i, kv := range kvs {
		found, err := tree.Delete(kv)
		if err != nil || !found {
			t.Fatalf("Delete %d (%v): found=%v err=%v", i, kv, found, err)
		}
		if i%250 == 249 {
			if err := tree.Check(); err != nil {
				t.Fatalf("Check after %d deletes: %v", i+1, err)
			}
		}
	}
	if tree.Size() != 0 {
		t.Fatalf("Size = %d", tree.Size())
	}
}

func TestCursorSeekBetweenKeys(t *testing.T) {
	tree := newTestTree(t, 16)
	for _, k := range []uint64{10, 20, 30, 40} {
		kv := KV{k, 0}
		_ = tree.Insert(kv, payloadFor(kv))
	}
	c, err := tree.Seek(KV{25, 0})
	if err != nil {
		t.Fatalf("Seek: %v", err)
	}
	if !c.Valid() || c.Key() != (KV{30, 0}) {
		t.Fatalf("Seek(25) at %v, want (30,0)", c.Key())
	}
	// Seek past the end.
	c, err = tree.Seek(KV{100, 0})
	if err != nil {
		t.Fatalf("Seek: %v", err)
	}
	if c.Valid() {
		t.Fatalf("Seek past end is valid at %v", c.Key())
	}
}

func TestCursorCrossesLeaves(t *testing.T) {
	tree := newTestTree(t, 64)
	n := LeafCapacity * 4
	for i := 0; i < n; i++ {
		kv := KV{uint64(i * 2), 0}
		_ = tree.Insert(kv, payloadFor(kv))
	}
	c, err := tree.Seek(KV{0, 0})
	if err != nil {
		t.Fatalf("Seek: %v", err)
	}
	count := 0
	var prev KV
	for c.Valid() {
		if count > 0 && !prev.Less(c.Key()) {
			t.Fatalf("cursor out of order at %d", count)
		}
		prev = c.Key()
		count++
		if err := c.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if count != n {
		t.Fatalf("cursor saw %d entries, want %d", count, n)
	}
}

func TestRangeScanBounds(t *testing.T) {
	tree := newTestTree(t, 16)
	for i := 0; i < 100; i++ {
		kv := KV{uint64(i), 0}
		_ = tree.Insert(kv, payloadFor(kv))
	}
	var got []uint64
	_ = tree.RangeScan(KV{10, 0}, KV{20, 0}, func(kv KV, _ Payload) bool {
		got = append(got, kv.Key)
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Fatalf("RangeScan[10,20] = %v", got)
	}
	// Empty range.
	got = nil
	_ = tree.RangeScan(KV{20, 0}, KV{10, 0}, func(kv KV, _ Payload) bool {
		got = append(got, kv.Key)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("inverted RangeScan returned %v", got)
	}
	// Early stop.
	got = nil
	_ = tree.RangeScan(KV{0, 0}, KV{99, 0}, func(kv KV, _ Payload) bool {
		got = append(got, kv.Key)
		return len(got) < 5
	})
	if len(got) != 5 {
		t.Fatalf("early stop returned %d entries", len(got))
	}
}

func TestDuplicateKeysDistinctUIDs(t *testing.T) {
	tree := newTestTree(t, 32)
	const key = 77
	n := LeafCapacity + 10 // force duplicates to span leaves
	for i := 0; i < n; i++ {
		kv := KV{key, uint32(i)}
		_ = tree.Insert(kv, payloadFor(kv))
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	count := 0
	_ = tree.RangeScan(KV{key, 0}, KV{key, ^uint32(0)}, func(kv KV, _ Payload) bool {
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan over duplicate key saw %d, want %d", count, n)
	}
}

func TestNoPinLeaks(t *testing.T) {
	tree := newTestTree(t, 16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		kv := KV{uint64(rng.Intn(500)), 0}
		switch rng.Intn(3) {
		case 0, 1:
			_ = tree.Insert(kv, payloadFor(kv))
		case 2:
			_, _ = tree.Delete(kv)
		}
	}
	_, _, _ = tree.Get(KV{1, 0})
	_ = tree.RangeScan(KV{0, 0}, KV{100, 0}, func(KV, Payload) bool { return true })
	if n := tree.Pool().PinnedPages(); n != 0 {
		t.Fatalf("pin leak: %d pages still pinned", n)
	}
}

func TestIOAccounting(t *testing.T) {
	tree := newTestTree(t, 50)
	n := LeafCapacity * 20
	for i := 0; i < n; i++ {
		kv := KV{uint64(i), 0}
		_ = tree.Insert(kv, payloadFor(kv))
	}
	// Cold scan: drop the buffer and count misses.
	if err := tree.Pool().DropAll(); err != nil {
		t.Fatalf("DropAll: %v", err)
	}
	tree.Pool().ResetStats()
	_ = tree.RangeScan(KV{0, 0}, KV{^uint64(0), 0}, func(KV, Payload) bool { return true })
	s := tree.Pool().Stats()
	// A full scan must read at least every leaf once, and not wildly more.
	if s.Misses < uint64(tree.LeafCount()) {
		t.Fatalf("cold scan misses=%d < leaves=%d", s.Misses, tree.LeafCount())
	}
	if s.Misses > uint64(tree.LeafCount()+tree.Height()+2) {
		t.Fatalf("cold scan misses=%d, leaves=%d: too many", s.Misses, tree.LeafCount())
	}
}

func BenchmarkInsert(b *testing.B) {
	tree := newTestTree(b, 256)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := KV{rng.Uint64(), uint32(i)}
		if err := tree.Insert(kv, Payload{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tree := newTestTree(b, 256)
	for i := 0; i < 100_000; i++ {
		_ = tree.Insert(KV{uint64(i), 0}, Payload{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = tree.Get(KV{uint64(i % 100_000), 0})
	}
}
