// Package spatialidx implements the existing approach the paper compares
// against (Sec. 4): a plain spatial moving-object index — the Bx-tree —
// combined with a policy-filtering step. Privacy-aware queries are first
// processed as ordinary spatial queries, and only then are the candidates'
// location-privacy policies evaluated against the query issuer.
//
// The weakness this baseline exhibits, and that the PEB-tree removes, is
// that the spatial phase retrieves every user in the query region no matter
// whether the issuer is allowed to see them, so "very large and unnecessary
// intermediate results may occur" (Sec. 1).
package spatialidx

import (
	"math"
	"sort"

	"repro/internal/bxtree"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/zcurve"
)

// Index is the baseline: a Bx-tree plus post-hoc policy filtering.
type Index struct {
	bx       *bxtree.Tree
	policies *policy.Store
}

// New creates an empty baseline index whose pages live in pool.
func New(cfg bxtree.Config, pool *store.BufferPool, policies *policy.Store) (*Index, error) {
	bx, err := bxtree.New(cfg, pool)
	if err != nil {
		return nil, err
	}
	return &Index{bx: bx, policies: policies}, nil
}

// Config returns the underlying Bx-tree configuration.
func (ix *Index) Config() bxtree.Config { return ix.bx.Config() }

// Size returns the number of indexed objects.
func (ix *Index) Size() int { return ix.bx.Size() }

// LeafCount returns the number of B+-tree leaf pages.
func (ix *Index) LeafCount() int { return ix.bx.LeafCount() }

// Pool returns the underlying buffer pool, for I/O accounting.
func (ix *Index) Pool() *store.BufferPool { return ix.bx.Pool() }

// Insert adds or replaces the index entry for o.UID.
func (ix *Index) Insert(o motion.Object) error { return ix.bx.Insert(o) }

// Update is a synonym for Insert that documents intent at call sites.
func (ix *Index) Update(o motion.Object) error { return ix.bx.Update(o) }

// Delete removes uid's entry.
func (ix *Index) Delete(uid motion.UserID) error { return ix.bx.Delete(uid) }

// Get returns uid's current object state.
func (ix *Index) Get(uid motion.UserID) (motion.Object, bool, error) { return ix.bx.Get(uid) }

// PRQ answers the privacy-aware range query by filtering: a spatial range
// query retrieves everyone in the window, then policies are evaluated.
func (ix *Index) PRQ(issuer motion.UserID, w bxtree.Window, tq float64) ([]motion.Object, error) {
	candidates, err := ix.bx.RangeQuery(w, tq)
	if err != nil {
		return nil, err
	}
	out := candidates[:0]
	for _, o := range candidates {
		if o.UID == issuer {
			continue
		}
		if ix.allows(o, issuer, tq) {
			out = append(out, o)
		}
	}
	return out, nil
}

// PKNN answers the privacy-aware kNN query by filtering: the search window
// is enlarged round by round, every user found is policy-checked, and the
// search stops only when k *qualified* users lie within the guaranteed
// radius — which is why non-qualifying nearby users inflate the cost
// (the u100 problem of the paper's running example, Fig. 4).
func (ix *Index) PKNN(issuer motion.UserID, qx, qy float64, k int, tq float64) ([]bxtree.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	n := ix.bx.Size()
	if n == 0 {
		return nil, nil
	}
	cfg := ix.bx.Config()
	L := cfg.Grid.Side
	rq := bxtree.EstimateDk(k, n, L) / float64(k)
	if rq <= 0 || math.IsNaN(rq) {
		rq = L / 64
	}

	scanned := make(map[uint64]*zcurve.IntervalSet)
	seen := make(map[motion.UserID]bool)
	var qualified []bxtree.Neighbor
	for round := 1; ; round++ {
		radius := rq * float64(round)
		w := bxtree.Square(qx, qy, radius)
		err := ix.bx.ScanWindow(w, tq, scanned, func(o motion.Object) {
			if seen[o.UID] {
				return
			}
			seen[o.UID] = true
			if o.UID == issuer || !ix.allows(o, issuer, tq) {
				return
			}
			qualified = append(qualified, bxtree.Neighbor{
				Object: o,
				Dist:   o.DistanceAt(tq, qx, qy),
			})
		})
		if err != nil {
			return nil, err
		}
		within := 0
		for _, nb := range qualified {
			if nb.Dist <= radius {
				within++
			}
		}
		covered := w.MinX <= 0 && w.MinY <= 0 && w.MaxX >= L && w.MaxY >= L
		if within >= k || covered {
			break
		}
	}

	sort.Slice(qualified, func(i, j int) bool {
		if qualified[i].Dist != qualified[j].Dist {
			return qualified[i].Dist < qualified[j].Dist
		}
		return qualified[i].Object.UID < qualified[j].Object.UID
	})
	if len(qualified) > k {
		qualified = qualified[:k]
	}
	return qualified, nil
}

// allows evaluates the policy predicate of Definitions 2–3 for a candidate.
func (ix *Index) allows(o motion.Object, issuer motion.UserID, tq float64) bool {
	x, y := o.PositionAt(tq)
	return ix.policies.Allows(policy.UserID(o.UID), policy.UserID(issuer), x, y, tq)
}
