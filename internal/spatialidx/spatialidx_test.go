package spatialidx

import (
	"math"
	"sort"
	"testing"

	"repro/internal/bxtree"
	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/workload"
)

// buildPair generates a dataset and loads it into both the baseline index
// and a PEB-tree so their answers can be cross-checked.
func buildPair(t *testing.T, cfg workload.Config) (*workload.Dataset, *Index, *core.Tree) {
	t.Helper()
	d, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bxCfg := bxtree.DefaultConfig()
	ix, err := New(bxCfg, store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages), d.Policies)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := d.Assign()
	if err != nil {
		t.Fatal(err)
	}
	pebCfg := core.DefaultConfig()
	peb, err := core.New(pebCfg, store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages), d.Policies, assign)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range d.Objects {
		if err := ix.Insert(o); err != nil {
			t.Fatal(err)
		}
		if err := peb.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	return d, ix, peb
}

func testConfig() workload.Config {
	cfg := workload.DefaultConfig()
	cfg.NumUsers = 400
	cfg.PoliciesPerUser = 8
	cfg.GroupSize = 25
	return cfg
}

// brutePRQ applies Definition 2 literally.
func brutePRQ(d *workload.Dataset, issuer motion.UserID, w bxtree.Window, tq float64) map[motion.UserID]bool {
	out := make(map[motion.UserID]bool)
	for _, o := range d.Objects {
		if o.UID == issuer {
			continue
		}
		x, y := o.PositionAt(tq)
		if w.Contains(x, y) && d.Policies.Allows(policy.UserID(o.UID), policy.UserID(issuer), x, y, tq) {
			out[o.UID] = true
		}
	}
	return out
}

// brutePKNN applies Definition 3 literally.
func brutePKNN(d *workload.Dataset, issuer motion.UserID, qx, qy float64, k int, tq float64) []motion.UserID {
	type cand struct {
		uid  motion.UserID
		dist float64
	}
	var cands []cand
	for _, o := range d.Objects {
		if o.UID == issuer {
			continue
		}
		x, y := o.PositionAt(tq)
		if d.Policies.Allows(policy.UserID(o.UID), policy.UserID(issuer), x, y, tq) {
			cands = append(cands, cand{o.UID, math.Hypot(x-qx, y-qy)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].uid < cands[j].uid
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]motion.UserID, len(cands))
	for i, c := range cands {
		out[i] = c.uid
	}
	return out
}

func TestPRQMatchesBruteForceAndPEB(t *testing.T) {
	d, ix, peb := buildPair(t, testConfig())
	qs := d.GenPRQueries(40, 400, 70)
	for i, q := range qs {
		got, err := ix.PRQ(q.Issuer, q.W, q.T)
		if err != nil {
			t.Fatalf("PRQ: %v", err)
		}
		want := brutePRQ(d, q.Issuer, q.W, q.T)
		gotSet := make(map[motion.UserID]bool, len(got))
		for _, o := range got {
			gotSet[o.UID] = true
		}
		if len(gotSet) != len(want) {
			t.Errorf("query %d: baseline got %d, want %d", i, len(gotSet), len(want))
			continue
		}
		for uid := range want {
			if !gotSet[uid] {
				t.Errorf("query %d: baseline missing u%d", i, uid)
			}
		}
		// The PEB-tree must return exactly the same answer set.
		pgot, err := peb.PRQ(q.Issuer, q.W, q.T)
		if err != nil {
			t.Fatalf("PEB PRQ: %v", err)
		}
		if len(pgot) != len(want) {
			t.Errorf("query %d: PEB got %d, want %d", i, len(pgot), len(want))
		}
		for _, o := range pgot {
			if !want[o.UID] {
				t.Errorf("query %d: PEB returned unexpected u%d", i, o.UID)
			}
		}
	}
}

func TestPKNNMatchesBruteForceAndPEB(t *testing.T) {
	d, ix, peb := buildPair(t, testConfig())
	qs := d.GenKNNQueries(30, 5, 70)
	for i, q := range qs {
		got, err := ix.PKNN(q.Issuer, q.X, q.Y, q.K, q.T)
		if err != nil {
			t.Fatalf("PKNN: %v", err)
		}
		want := brutePKNN(d, q.Issuer, q.X, q.Y, q.K, q.T)
		if len(got) != len(want) {
			t.Fatalf("query %d: baseline got %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].Object.UID != want[j] {
				t.Errorf("query %d: baseline neighbor %d = u%d, want u%d", i, j, got[j].Object.UID, want[j])
			}
		}
		pgot, err := peb.PKNN(q.Issuer, q.X, q.Y, q.K, q.T)
		if err != nil {
			t.Fatalf("PEB PKNN: %v", err)
		}
		if len(pgot) != len(want) {
			t.Fatalf("query %d: PEB got %d, want %d", i, len(pgot), len(want))
		}
		for j := range want {
			if pgot[j].Object.UID != want[j] {
				t.Errorf("query %d: PEB neighbor %d = u%d, want u%d", i, j, pgot[j].Object.UID, want[j])
			}
		}
	}
}

func TestPKNNEdgeCases(t *testing.T) {
	d, ix, _ := buildPair(t, testConfig())
	if got, err := ix.PKNN(1, 500, 500, 0, 60); err != nil || got != nil {
		t.Errorf("k=0: %v, %v", got, err)
	}
	// Issuer with no grantors gets nothing even with a huge k.
	got, err := ix.PKNN(99999, 500, 500, 1000, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("friendless issuer got %d neighbors", len(got))
	}
	_ = d
}

func TestUpdateDelete(t *testing.T) {
	cfg := testConfig()
	cfg.NumUsers = 50
	d, ix, _ := buildPair(t, cfg)
	o := d.Objects[0]
	o.X, o.Y, o.T = 1, 1, 100
	if err := ix.Update(o); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ix.Get(o.UID)
	if err != nil || !ok || got != o {
		t.Fatalf("Get after update = %+v, %v, %v", got, ok, err)
	}
	if err := ix.Delete(o.UID); err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 49 {
		t.Errorf("Size = %d, want 49", ix.Size())
	}
}

// TestBaselineScansMoreThanPEB checks the headline claim on a modest
// dataset: the baseline's PRQ buffer misses exceed the PEB-tree's, because
// the baseline reads every user in the window while the PEB-tree reads
// only key ranges near the issuer's friends.
func TestBaselineScansMoreThanPEB(t *testing.T) {
	cfg := testConfig()
	cfg.NumUsers = 3000
	cfg.PoliciesPerUser = 10
	cfg.GroupSize = 50
	d, ix, peb := buildPair(t, cfg)
	qs := d.GenPRQueries(50, 300, 70)

	measure := func(run func(q workload.PRQuery) error, pool *store.BufferPool) uint64 {
		if err := pool.DropAll(); err != nil {
			t.Fatal(err)
		}
		pool.ResetStats()
		for _, q := range qs {
			if err := run(q); err != nil {
				t.Fatal(err)
			}
		}
		return pool.Stats().Misses
	}
	spatialIO := measure(func(q workload.PRQuery) error {
		_, err := ix.PRQ(q.Issuer, q.W, q.T)
		return err
	}, ix.Pool())
	pebIO := measure(func(q workload.PRQuery) error {
		_, err := peb.PRQ(q.Issuer, q.W, q.T)
		return err
	}, peb.Pool())

	if pebIO >= spatialIO {
		t.Errorf("PEB misses (%d) not below baseline misses (%d)", pebIO, spatialIO)
	}
}
