// Package report renders experiment result tables (the CSV output of
// cmd/pebbench) as Markdown tables with ASCII bar charts, for inclusion in
// EXPERIMENTS.md and terminal inspection.
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Series is a parsed result table: an x column plus named value columns.
type Series struct {
	XLabel  string
	Columns []string
	X       []float64
	Values  [][]float64 // Values[row][col]
}

// ParseCSV parses the CSV format written by exp.Table.CSV (header line,
// numeric cells, no quoting needed for the data we emit).
func ParseCSV(text string) (*Series, error) {
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 2 {
		return nil, fmt.Errorf("report: need a header and at least one row")
	}
	header := strings.Split(lines[0], ",")
	if len(header) < 2 {
		return nil, fmt.Errorf("report: need at least two columns, have %q", lines[0])
	}
	s := &Series{XLabel: header[0], Columns: header[1:]}
	for ln, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != len(header) {
			return nil, fmt.Errorf("report: row %d has %d cells, want %d", ln+1, len(cells), len(header))
		}
		x, err := strconv.ParseFloat(cells[0], 64)
		if err != nil {
			return nil, fmt.Errorf("report: row %d: %w", ln+1, err)
		}
		vals := make([]float64, len(cells)-1)
		for i, c := range cells[1:] {
			v, err := strconv.ParseFloat(c, 64)
			if err != nil {
				return nil, fmt.Errorf("report: row %d col %d: %w", ln+1, i+1, err)
			}
			vals[i] = v
		}
		s.X = append(s.X, x)
		s.Values = append(s.Values, vals)
	}
	return s, nil
}

// Markdown renders the series as a GitHub-flavored Markdown table.
func (s *Series) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + s.XLabel)
	for _, c := range s.Columns {
		b.WriteString(" | " + c)
	}
	b.WriteString(" |\n|")
	for i := 0; i <= len(s.Columns); i++ {
		b.WriteString("---:|")
	}
	b.WriteByte('\n')
	for r := range s.X {
		b.WriteString("| " + trim(s.X[r]))
		for _, v := range s.Values[r] {
			b.WriteString(" | " + trim(v))
		}
		b.WriteString(" |\n")
	}
	return b.String()
}

// Chart renders an ASCII bar chart of the chosen column, width chars wide.
func (s *Series) Chart(col int, width int) string {
	if col < 0 || col >= len(s.Columns) || width < 8 {
		return ""
	}
	max := 0.0
	for _, row := range s.Values {
		if row[col] > max {
			max = row[col]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s\n", s.Columns[col], s.XLabel)
	for r := range s.X {
		v := s.Values[r][col]
		n := 0
		if max > 0 {
			n = int(math.Round(v / max * float64(width)))
		}
		fmt.Fprintf(&b, "%10s | %-*s %s\n", trim(s.X[r]), width, strings.Repeat("█", n), trim(v))
	}
	return b.String()
}

// CompareChart renders all columns side by side per x value, normalized to
// the global maximum — the visual shape of a paper figure with one bar
// group per sweep value.
func (s *Series) CompareChart(width int) string {
	if width < 8 {
		width = 40
	}
	max := 0.0
	for _, row := range s.Values {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	marks := []string{"█", "░", "▒", "▓"}
	var b strings.Builder
	for c, name := range s.Columns {
		fmt.Fprintf(&b, "%s = %s  ", marks[c%len(marks)], name)
	}
	b.WriteByte('\n')
	for r := range s.X {
		for c := range s.Columns {
			v := s.Values[r][c]
			n := 0
			if max > 0 {
				n = int(math.Round(v / max * float64(width)))
			}
			label := ""
			if c == 0 {
				label = trim(s.X[r])
			}
			fmt.Fprintf(&b, "%10s | %-*s %s\n", label, width,
				strings.Repeat(marks[c%len(marks)], n), trim(v))
		}
	}
	return b.String()
}

// Ratio returns the per-row ratio of column b over column a (for "how many
// times better" summaries). Rows where a is 0 yield NaN.
func (s *Series) Ratio(a, b int) []float64 {
	out := make([]float64, len(s.X))
	for r := range s.X {
		if s.Values[r][a] == 0 {
			out[r] = math.NaN()
			continue
		}
		out[r] = s.Values[r][b] / s.Values[r][a]
	}
	return out
}

func trim(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
