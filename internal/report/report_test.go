package report

import (
	"math"
	"strings"
	"testing"
)

const sample = `users,peb_io,spatial_io
1000,10,20
2000,12,44.5
4000,12.5,90
`

func parse(t *testing.T) *Series {
	t.Helper()
	s, err := ParseCSV(sample)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseCSV(t *testing.T) {
	s := parse(t)
	if s.XLabel != "users" || len(s.Columns) != 2 {
		t.Fatalf("header parsed as %q %v", s.XLabel, s.Columns)
	}
	if len(s.X) != 3 || s.X[2] != 4000 {
		t.Fatalf("x = %v", s.X)
	}
	if s.Values[1][1] != 44.5 {
		t.Fatalf("values = %v", s.Values)
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"users,a",        // header only
		"users\n1",       // single column
		"users,a\n1,2,3", // ragged row
		"users,a\nx,2",   // non-numeric x
		"users,a\n1,y",   // non-numeric value
	}
	for _, c := range cases {
		if _, err := ParseCSV(c); err == nil {
			t.Errorf("ParseCSV(%q) accepted", c)
		}
	}
}

func TestMarkdown(t *testing.T) {
	md := parse(t).Markdown()
	for _, want := range []string{"| users | peb_io | spatial_io |", "| 2000 | 12 | 44.50 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 5 { // header + separator + 3 rows
		t.Errorf("markdown has %d lines", len(lines))
	}
}

func TestChart(t *testing.T) {
	s := parse(t)
	ch := s.Chart(1, 20)
	if !strings.Contains(ch, "spatial_io vs users") {
		t.Errorf("chart header missing:\n%s", ch)
	}
	// The 90-value row must have the longest bar (full width).
	lines := strings.Split(strings.TrimSpace(ch), "\n")
	last := lines[len(lines)-1]
	if got := strings.Count(last, "█"); got != 20 {
		t.Errorf("max row has %d bars, want 20: %q", got, last)
	}
	if s.Chart(5, 20) != "" || s.Chart(0, 2) != "" {
		t.Error("invalid chart inputs should return empty")
	}
}

func TestCompareChart(t *testing.T) {
	ch := parse(t).CompareChart(20)
	if !strings.Contains(ch, "█ = peb_io") || !strings.Contains(ch, "░ = spatial_io") {
		t.Errorf("legend missing:\n%s", ch)
	}
	if strings.Count(ch, "\n") < 7 { // legend + 3 groups × 2 rows
		t.Errorf("chart too short:\n%s", ch)
	}
}

func TestRatio(t *testing.T) {
	s := parse(t)
	r := s.Ratio(0, 1)
	if len(r) != 3 || r[0] != 2 || math.Abs(r[2]-7.2) > 1e-9 {
		t.Errorf("ratio = %v", r)
	}
	s.Values[0][0] = 0
	if !math.IsNaN(s.Ratio(0, 1)[0]) {
		t.Error("zero denominator should give NaN")
	}
}
