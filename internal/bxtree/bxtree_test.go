package bxtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/motion"
	"repro/internal/store"
)

func newTestTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages)
	tr, err := New(cfg, pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.DeltaTmu = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ∆tmu accepted")
	}
	bad = DefaultConfig()
	bad.Partitions = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero partitions accepted")
	}
	bad = DefaultConfig()
	bad.MaxSpeed = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative speed accepted")
	}
	bad = DefaultConfig()
	bad.Grid.Order = 31 // 62 ZV bits
	bad.Partitions = 7  // 3 TID bits → 65 > 64
	if err := bad.Validate(); err == nil {
		t.Error("overflowing key layout accepted")
	}
}

func TestLabelIndexPaperExample(t *testing.T) {
	// Paper Sec. 2.1: ∆tmu with n = 2 → label duration 60. Objects updated
	// between time 0 and 60 are indexed as of time 120 (index 2), whose
	// partition is (2−1) mod 3 = 1.
	cfg := DefaultConfig() // ∆tmu = 120, n = 2
	for _, tu := range []float64{0.5, 30, 59.9, 60} {
		li := cfg.LabelIndex(tu)
		if li != 2 {
			t.Errorf("LabelIndex(%g) = %d, want 2", tu, li)
		}
		if p := cfg.PartitionOf(li); p != 1 {
			t.Errorf("PartitionOf(2) = %d, want 1", p)
		}
	}
	// Updates in (60, 120] land at label 180, partition (3−1) mod 3 = 2.
	if li := cfg.LabelIndex(90); li != 3 {
		t.Errorf("LabelIndex(90) = %d, want 3", li)
	}
	if p := cfg.PartitionOf(3); p != 2 {
		t.Errorf("PartitionOf(3) = %d, want 2", p)
	}
	// Partitions rotate with period n+1 = 3.
	if p := cfg.PartitionOf(4); p != 0 {
		t.Errorf("PartitionOf(4) = %d, want 0", p)
	}
}

func TestPartitionOfNonNegative(t *testing.T) {
	cfg := DefaultConfig()
	for li := int64(-5); li < 10; li++ {
		p := cfg.PartitionOf(li)
		if p > uint64(cfg.Partitions) {
			t.Errorf("PartitionOf(%d) = %d out of range", li, p)
		}
	}
}

func TestInsertGetDelete(t *testing.T) {
	tr := newTestTree(t, DefaultConfig())
	o := motion.Object{UID: 7, X: 100, Y: 200, VX: 1, VY: -1, T: 10}
	if err := tr.Insert(o); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, ok, err := tr.Get(7)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v, %v", got, ok, err)
	}
	if got != o {
		t.Errorf("Get = %+v, want %+v", got, o)
	}
	if tr.Size() != 1 {
		t.Errorf("Size = %d, want 1", tr.Size())
	}
	if err := tr.Delete(7); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, _ := tr.Get(7); ok {
		t.Error("Get after Delete found entry")
	}
	if err := tr.Delete(7); err == nil {
		t.Error("double Delete succeeded")
	}
}

func TestUpdateReplaces(t *testing.T) {
	tr := newTestTree(t, DefaultConfig())
	if err := tr.Insert(motion.Object{UID: 1, X: 10, Y: 10, T: 0}); err != nil {
		t.Fatal(err)
	}
	upd := motion.Object{UID: 1, X: 900, Y: 900, VX: 2, T: 50}
	if err := tr.Update(upd); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 1 {
		t.Fatalf("Size after update = %d, want 1", tr.Size())
	}
	got, ok, err := tr.Get(1)
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if got != upd {
		t.Errorf("Get = %+v, want %+v", got, upd)
	}
	// Old label slot must be vacated: only one active label remains.
	if tr.parts.LabelCount() != 1 {
		t.Errorf("LabelCount = %d, want 1", tr.parts.LabelCount())
	}
}

// randomObjects creates n objects with positions in [0, side) and speeds in
// [0, maxSpeed], all updated at times in [0, tmax).
func randomObjects(rng *rand.Rand, n int, side, maxSpeed, tmax float64) []motion.Object {
	out := make([]motion.Object, n)
	for i := range out {
		speed := rng.Float64() * maxSpeed
		dir := rng.Float64() * 2 * math.Pi
		out[i] = motion.Object{
			UID: motion.UserID(i + 1),
			X:   rng.Float64() * side,
			Y:   rng.Float64() * side,
			VX:  speed * math.Cos(dir),
			VY:  speed * math.Sin(dir),
			T:   rng.Float64() * tmax,
		}
	}
	return out
}

// bruteRange is the oracle: every object whose extrapolated position at tq
// is inside w.
func bruteRange(objs []motion.Object, w Window, tq float64) map[motion.UserID]bool {
	out := make(map[motion.UserID]bool)
	for _, o := range objs {
		if x, y := o.PositionAt(tq); w.Contains(x, y) {
			out[o.UID] = true
		}
	}
	return out
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(42))
	objs := randomObjects(rng, 500, cfg.Grid.Side, cfg.MaxSpeed, 60)
	tr := newTestTree(t, cfg)
	for _, o := range objs {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 30; trial++ {
		cx := rng.Float64() * cfg.Grid.Side
		cy := rng.Float64() * cfg.Grid.Side
		r := 20 + rng.Float64()*150
		w := Square(cx, cy, r)
		tq := rng.Float64() * 70
		got, err := tr.RangeQuery(w, tq)
		if err != nil {
			t.Fatalf("RangeQuery: %v", err)
		}
		want := bruteRange(objs, w, tq)
		gotSet := make(map[motion.UserID]bool, len(got))
		for _, o := range got {
			if gotSet[o.UID] {
				t.Errorf("trial %d: duplicate uid %d", trial, o.UID)
			}
			gotSet[o.UID] = true
		}
		if len(gotSet) != len(want) {
			t.Errorf("trial %d: got %d results, want %d (w=%v tq=%g)", trial, len(gotSet), len(want), w, tq)
			continue
		}
		for uid := range want {
			if !gotSet[uid] {
				t.Errorf("trial %d: missing uid %d", trial, uid)
			}
		}
	}
}

func TestRangeQueryInvalidWindow(t *testing.T) {
	tr := newTestTree(t, DefaultConfig())
	if _, err := tr.RangeQuery(Window{MinX: 10, MaxX: 0, MinY: 0, MaxY: 10}, 0); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestRangeQueryOutsideSpace(t *testing.T) {
	cfg := DefaultConfig()
	tr := newTestTree(t, cfg)
	if err := tr.Insert(motion.Object{UID: 1, X: 500, Y: 500, T: 0}); err != nil {
		t.Fatal(err)
	}
	got, err := tr.RangeQuery(Window{MinX: -500, MinY: -500, MaxX: -100, MaxY: -100}, 0)
	if err != nil {
		t.Fatalf("RangeQuery: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("window outside space returned %d objects", len(got))
	}
}

func bruteKNN(objs []motion.Object, qx, qy float64, k int, tq float64) []motion.UserID {
	type cand struct {
		uid  motion.UserID
		dist float64
	}
	cands := make([]cand, len(objs))
	for i, o := range objs {
		cands[i] = cand{o.UID, o.DistanceAt(tq, qx, qy)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].uid < cands[j].uid
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]motion.UserID, len(cands))
	for i, c := range cands {
		out[i] = c.uid
	}
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(7))
	objs := randomObjects(rng, 400, cfg.Grid.Side, cfg.MaxSpeed, 60)
	tr := newTestTree(t, cfg)
	for _, o := range objs {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		qx := rng.Float64() * cfg.Grid.Side
		qy := rng.Float64() * cfg.Grid.Side
		k := 1 + rng.Intn(10)
		tq := rng.Float64() * 70
		got, err := tr.KNN(qx, qy, k, tq)
		if err != nil {
			t.Fatalf("KNN: %v", err)
		}
		want := bruteKNN(objs, qx, qy, k, tq)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d neighbors, want %d", trial, len(got), len(want))
		}
		// Distances must match the oracle's (uid ties can differ only at
		// exactly equal distances, which the tie-break rules out here).
		for i := range want {
			if got[i].Object.UID != want[i] {
				t.Errorf("trial %d: neighbor %d = u%d, want u%d (dist %g)",
					trial, i, got[i].Object.UID, want[i], got[i].Dist)
			}
		}
		// Results must be sorted by distance.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Errorf("trial %d: results not sorted at %d", trial, i)
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	cfg := DefaultConfig()
	tr := newTestTree(t, cfg)
	// Empty index.
	got, err := tr.KNN(500, 500, 3, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty KNN = %v, %v", got, err)
	}
	// k <= 0.
	if got, _ := tr.KNN(500, 500, 0, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	// Fewer objects than k: return all.
	for i := 1; i <= 3; i++ {
		if err := tr.Insert(motion.Object{UID: motion.UserID(i), X: float64(i * 100), Y: 500, T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	got, err = tr.KNN(0, 500, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("KNN with k>size returned %d, want 3", len(got))
	}
	if got[0].Object.UID != 1 || got[2].Object.UID != 3 {
		t.Errorf("order = %v", got)
	}
}

func TestEstimateDk(t *testing.T) {
	// k = n: Dk = 2L/√π (the full-coverage estimate).
	want := 2 / math.SqrtPi * 1000
	if got := EstimateDk(100, 100, 1000); math.Abs(got-want) > 1e-9 {
		t.Errorf("EstimateDk(n=k) = %g, want %g", got, want)
	}
	// Monotone in k.
	prev := 0.0
	for k := 1; k <= 50; k++ {
		d := EstimateDk(k, 1000, 1000)
		if d <= prev {
			t.Fatalf("EstimateDk not increasing at k=%d: %g <= %g", k, d, prev)
		}
		prev = d
	}
	if EstimateDk(0, 100, 1000) != 0 || EstimateDk(5, 0, 1000) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestUpdatesPreserveQueryCorrectness(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(99))
	objs := randomObjects(rng, 200, cfg.Grid.Side, cfg.MaxSpeed, 30)
	tr := newTestTree(t, cfg)
	for _, o := range objs {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	// Update every object to a fresh position/time, as the experiment in
	// Sec. 7.9 does, then re-check query correctness.
	for round := 0; round < 2; round++ {
		base := 30 + float64(round)*60
		for i := range objs {
			objs[i].X = rng.Float64() * cfg.Grid.Side
			objs[i].Y = rng.Float64() * cfg.Grid.Side
			objs[i].T = base + rng.Float64()*30
			if err := tr.Update(objs[i]); err != nil {
				t.Fatal(err)
			}
		}
		tq := base + 40
		w := Square(500, 500, 200)
		got, err := tr.RangeQuery(w, tq)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteRange(objs, w, tq)
		if len(got) != len(want) {
			t.Fatalf("round %d: got %d, want %d", round, len(got), len(want))
		}
	}
	if tr.Size() != 200 {
		t.Errorf("Size = %d, want 200", tr.Size())
	}
}

func TestNoPinLeaks(t *testing.T) {
	cfg := DefaultConfig()
	pool := store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages)
	tr, err := New(cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, o := range randomObjects(rng, 300, cfg.Grid.Side, cfg.MaxSpeed, 60) {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.RangeQuery(Square(500, 500, 100), 60); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.KNN(500, 500, 5, 60); err != nil {
		t.Fatal(err)
	}
	if n := pool.PinnedPages(); n != 0 {
		t.Errorf("%d pages still pinned after queries", n)
	}
}
