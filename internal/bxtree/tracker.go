package bxtree

import (
	"sort"

	"repro/internal/motion"
)

// PartitionRef identifies one active index partition at query time.
type PartitionRef struct {
	TID uint64  // partition id (the key's TID component)
	Gap float64 // |tq − tlab|, the window-enlargement time gap
}

// PartitionTracker records which label timestamp each object is stored
// under, so query processing can visit exactly the partitions that hold
// objects. It is shared by the Bx-tree and the PEB-tree (internal/core),
// whose keys differ only below the TID component.
type PartitionTracker struct {
	cfg        Config
	objLabel   map[motion.UserID]int64
	labelCount map[int64]int
}

// NewPartitionTracker returns an empty tracker for cfg's label layout.
func NewPartitionTracker(cfg Config) *PartitionTracker {
	return &PartitionTracker{
		cfg:        cfg,
		objLabel:   make(map[motion.UserID]int64),
		labelCount: make(map[int64]int),
	}
}

// Set records that uid is now stored under label index li, replacing any
// previous label.
func (pt *PartitionTracker) Set(uid motion.UserID, li int64) {
	if old, ok := pt.objLabel[uid]; ok {
		pt.dec(old)
	}
	pt.objLabel[uid] = li
	pt.labelCount[li]++
}

// Remove forgets uid. Removing an untracked uid is a no-op.
func (pt *PartitionTracker) Remove(uid motion.UserID) {
	if old, ok := pt.objLabel[uid]; ok {
		pt.dec(old)
		delete(pt.objLabel, uid)
	}
}

// Clone returns an independent deep copy of the tracker. Pinned snapshots
// use it to keep a stable partition picture while the original mutates.
func (pt *PartitionTracker) Clone() *PartitionTracker {
	c := &PartitionTracker{
		cfg:        pt.cfg,
		objLabel:   make(map[motion.UserID]int64, len(pt.objLabel)),
		labelCount: make(map[int64]int, len(pt.labelCount)),
	}
	for uid, li := range pt.objLabel {
		c.objLabel[uid] = li
	}
	for li, n := range pt.labelCount {
		c.labelCount[li] = n
	}
	return c
}

// Label returns uid's current label index.
func (pt *PartitionTracker) Label(uid motion.UserID) (int64, bool) {
	li, ok := pt.objLabel[uid]
	return li, ok
}

// Size returns the number of tracked objects.
func (pt *PartitionTracker) Size() int { return len(pt.objLabel) }

// LabelCount returns the number of distinct active label timestamps.
func (pt *PartitionTracker) LabelCount() int { return len(pt.labelCount) }

func (pt *PartitionTracker) dec(li int64) {
	pt.labelCount[li]--
	if pt.labelCount[li] == 0 {
		delete(pt.labelCount, li)
	}
}

// Active returns one entry per label timestamp currently holding objects,
// sorted by label, each with its partition id and the absolute time gap to
// tq used for window enlargement. Labels aliasing to the same partition
// (possible only if updates overrun ∆tmu) are merged under the larger gap
// so each partition is scanned once with a safe enlargement.
func (pt *PartitionTracker) Active(tq float64) []PartitionRef {
	labels := make([]int64, 0, len(pt.labelCount))
	for li := range pt.labelCount {
		labels = append(labels, li)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })

	byTID := make(map[uint64]int, len(labels))
	var out []PartitionRef
	for _, li := range labels {
		gap := pt.cfg.LabelTime(li) - tq
		if gap < 0 {
			gap = -gap
		}
		tid := pt.cfg.PartitionOf(li)
		if i, ok := byTID[tid]; ok {
			if gap > out[i].Gap {
				out[i].Gap = gap
			}
			continue
		}
		byTID[tid] = len(out)
		out = append(out, PartitionRef{TID: tid, Gap: gap})
	}
	return out
}
