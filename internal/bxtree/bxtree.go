// Package bxtree implements the Bx-tree of Jensen, Lin, and Ooi [13], the
// moving-object index the paper builds on (Sec. 2.1) and the substrate of
// both the PEB-tree (internal/core) and the spatial-index baseline
// (internal/spatialidx).
//
// The Bx-tree linearizes an object's predicted position as of a label
// timestamp with a Z-curve and stores the value, prefixed by a rotating
// time-partition id, in a disk B+-tree:
//
//	BxKey = [partition]₂ ⊕ [ZV]₂
//
// Range queries enlarge the query window per partition by the maximum
// object speed times the query-to-label time gap (Fig. 2), decompose the
// enlarged window into Z-value intervals, scan them, and refine candidates
// against their extrapolated positions at the query time. kNN queries run
// range queries with incrementally enlarged windows until k neighbors are
// guaranteed (Sec. 2.1 and [13]).
//
// The tree is not safe for concurrent use.
package bxtree

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/motion"
	"repro/internal/store"
)

// Tree is a Bx-tree over a paged B+-tree.
type Tree struct {
	cfg  Config
	tree *btree.Tree

	// cur tracks each user's live index entry so Update and Delete can
	// locate it; real deployments obtain the old key from the update
	// message, which carries the previous position [13].
	cur map[motion.UserID]btree.KV
	// parts tracks which label timestamps hold objects, so queries visit
	// exactly the active partitions.
	parts *PartitionTracker
}

// New creates an empty Bx-tree whose pages live in pool.
func New(cfg Config, pool *store.BufferPool) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bt, err := btree.New(pool)
	if err != nil {
		return nil, err
	}
	return &Tree{
		cfg:   cfg,
		tree:  bt,
		cur:   make(map[motion.UserID]btree.KV),
		parts: NewPartitionTracker(cfg),
	}, nil
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Size returns the number of indexed objects.
func (t *Tree) Size() int { return len(t.cur) }

// LeafCount returns the number of B+-tree leaf pages (the cost model's Nl).
func (t *Tree) LeafCount() int { return t.tree.LeafCount() }

// Pool returns the underlying buffer pool, for I/O accounting.
func (t *Tree) Pool() *store.BufferPool { return t.tree.Pool() }

// keyFor computes the object's Bx key: its position is advanced to the
// label timestamp (Eq. 3) and Z-encoded, then prefixed with the partition.
func (t *Tree) keyFor(o motion.Object) (btree.KV, int64) {
	li := t.cfg.LabelIndex(o.T)
	x, y := o.PositionAt(t.cfg.LabelTime(li))
	zv := t.cfg.CurveValue(x, y)
	return btree.KV{Key: t.cfg.Key(t.cfg.PartitionOf(li), zv), UID: uint32(o.UID)}, li
}

// Insert adds or replaces the index entry for o.UID. Replacement implements
// a location update: the old entry is removed and the new state is indexed
// as of its own label timestamp.
func (t *Tree) Insert(o motion.Object) error {
	if old, ok := t.cur[o.UID]; ok {
		if err := t.removeEntry(o.UID, old); err != nil {
			return err
		}
	}
	kv, li := t.keyFor(o)
	if err := t.tree.Insert(kv, motion.EncodePayload(o)); err != nil {
		return fmt.Errorf("bxtree: insert u%d: %w", o.UID, err)
	}
	t.cur[o.UID] = kv
	t.parts.Set(o.UID, li)
	return nil
}

// Update is a synonym for Insert that documents intent at call sites.
func (t *Tree) Update(o motion.Object) error { return t.Insert(o) }

// Delete removes uid's entry. Deleting an absent user is an error.
func (t *Tree) Delete(uid motion.UserID) error {
	kv, ok := t.cur[uid]
	if !ok {
		return fmt.Errorf("bxtree: delete of unknown user %d", uid)
	}
	return t.removeEntry(uid, kv)
}

// Get returns uid's current object state.
func (t *Tree) Get(uid motion.UserID) (motion.Object, bool, error) {
	kv, ok := t.cur[uid]
	if !ok {
		return motion.Object{}, false, nil
	}
	payload, found, err := t.tree.Get(kv)
	if err != nil || !found {
		return motion.Object{}, found, err
	}
	return motion.DecodePayload(uid, payload), true, nil
}

func (t *Tree) removeEntry(uid motion.UserID, kv btree.KV) error {
	found, err := t.tree.Delete(kv)
	if err != nil {
		return fmt.Errorf("bxtree: delete u%d: %w", uid, err)
	}
	if !found {
		return fmt.Errorf("bxtree: entry for u%d missing from tree", uid)
	}
	t.parts.Remove(uid)
	delete(t.cur, uid)
	return nil
}
