package bxtree

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/zcurve"
)

// Config fixes the Bx-tree parameters. The defaults mirror the settings the
// paper takes "from the literature [13]" (Sec. 7.1): space 1000 × 1000,
// 2^10 grid cells per axis, maximum update interval 120, n = 2 partitions.
type Config struct {
	// Grid maps continuous space onto the Z-curve grid.
	Grid zcurve.Grid
	// DeltaTmu is the maximum update interval ∆tmu: every object issues an
	// update at least this often (Sec. 2.1).
	DeltaTmu float64
	// Partitions is n, the number of sub-partitions of ∆tmu. The time axis
	// carries n+1 rotating index partitions.
	Partitions int
	// MaxSpeed bounds object speed per axis; query windows are enlarged by
	// MaxSpeed times the query-to-label time gap (Fig. 2).
	MaxSpeed float64
	// MaxIntervals caps the Z-curve decomposition size per query window.
	// Zero means DefaultMaxIntervals.
	MaxIntervals int
	// Curve selects the space-filling curve used to linearize locations.
	// The paper uses the Z-curve; the Hilbert curve is provided for an
	// ablation study, since the clustering analysis the paper cites [22]
	// concerns the Hilbert curve.
	Curve CurveKind
}

// CurveKind selects a space-filling curve.
type CurveKind int

const (
	// CurveZ is the Z-order (Morton) curve the paper uses.
	CurveZ CurveKind = iota
	// CurveHilbert is the Hilbert curve (ablation alternative).
	CurveHilbert
)

// String implements fmt.Stringer.
func (k CurveKind) String() string {
	switch k {
	case CurveZ:
		return "z-order"
	case CurveHilbert:
		return "hilbert"
	default:
		return fmt.Sprintf("CurveKind(%d)", int(k))
	}
}

// Default parameter values (Sec. 7.1 and [13]).
const (
	DefaultSpaceSide    = 1000.0
	DefaultGridOrder    = 10
	DefaultDeltaTmu     = 120.0
	DefaultPartitions   = 2
	DefaultMaxSpeed     = 3.0
	DefaultMaxIntervals = 16
)

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig() Config {
	g, err := zcurve.NewGrid(DefaultSpaceSide, DefaultGridOrder)
	if err != nil {
		panic(err) // constants are valid
	}
	return Config{
		Grid:         g,
		DeltaTmu:     DefaultDeltaTmu,
		Partitions:   DefaultPartitions,
		MaxSpeed:     DefaultMaxSpeed,
		MaxIntervals: DefaultMaxIntervals,
	}
}

// Validate checks the configuration and fills defaulted fields.
func (c *Config) Validate() error {
	if c.Grid.Side <= 0 || c.Grid.Order <= 0 {
		return fmt.Errorf("bxtree: grid not initialized: %+v", c.Grid)
	}
	if c.DeltaTmu <= 0 || math.IsNaN(c.DeltaTmu) || math.IsInf(c.DeltaTmu, 0) {
		return fmt.Errorf("bxtree: invalid ∆tmu %g", c.DeltaTmu)
	}
	if c.Partitions < 1 {
		return fmt.Errorf("bxtree: partitions %d < 1", c.Partitions)
	}
	if c.MaxSpeed < 0 {
		return fmt.Errorf("bxtree: negative max speed %g", c.MaxSpeed)
	}
	if c.MaxIntervals == 0 {
		c.MaxIntervals = DefaultMaxIntervals
	}
	if c.MaxIntervals < 1 {
		return fmt.Errorf("bxtree: max intervals %d < 1", c.MaxIntervals)
	}
	if c.Curve != CurveZ && c.Curve != CurveHilbert {
		return fmt.Errorf("bxtree: unknown curve %d", int(c.Curve))
	}
	if c.TIDBits()+2*c.Grid.Order > 64 {
		return fmt.Errorf("bxtree: key layout overflows 64 bits (tid %d + zv %d)",
			c.TIDBits(), 2*c.Grid.Order)
	}
	return nil
}

// LabelDuration returns the label-timestamp spacing ∆tmu/n.
func (c Config) LabelDuration() float64 { return c.DeltaTmu / float64(c.Partitions) }

// TIDBits returns the key bits needed for the partition id (0..n).
func (c Config) TIDBits() int { return bits.Len(uint(c.Partitions)) }

// LabelIndex returns the label-timestamp index an update at time tu is
// stored under: tlab = ⌈tu + ∆tmu/n⌉_l, expressed as an integer multiple of
// the label duration (Sec. 2.1). For n = 2, ∆tmu = 120: updates in (0, 60]
// get label index 2 (time 120), matching the paper's example.
func (c Config) LabelIndex(tu float64) int64 {
	d := c.LabelDuration()
	return int64(math.Ceil((tu + d) / d))
}

// LabelTime returns the timestamp of label index li.
func (c Config) LabelTime(li int64) float64 { return float64(li) * c.LabelDuration() }

// PartitionOf returns the rotating index-partition id of label index li:
// (tlab/(∆tmu/n) − 1) mod (n+1) (Eq. 2).
func (c Config) PartitionOf(li int64) uint64 {
	m := int64(c.Partitions) + 1
	return uint64(((li-1)%m + m) % m)
}

// Key assembles a Bx key: [partition]₂ ⊕ [zv]₂ (Eq. 1).
func (c Config) Key(partition, zv uint64) uint64 {
	return partition<<(2*c.Grid.Order) | zv
}

// KeyRange returns the key interval covering partition × [zlo, zhi].
func (c Config) KeyRange(partition, zlo, zhi uint64) (uint64, uint64) {
	return c.Key(partition, zlo), c.Key(partition, zhi)
}

// CurveValue linearizes a continuous point with the configured curve.
func (c Config) CurveValue(x, y float64) uint64 {
	if c.Curve == CurveHilbert {
		return c.Grid.HilbertValue(x, y)
	}
	return c.Grid.ZValue(x, y)
}

// DecomposeRect converts a grid rectangle into covering curve-value
// intervals under the configured curve (the ZVconvert step of Fig. 7).
func (c Config) DecomposeRect(r zcurve.Rect) ([]zcurve.Interval, error) {
	if c.Curve == CurveHilbert {
		return zcurve.HilbertDecompose(r, c.Grid.Order, c.MaxIntervals)
	}
	return zcurve.Decompose(r, c.Grid.Order, c.MaxIntervals)
}

// CoverInterval returns the single curve-value interval spanning the
// rectangle — "the one interval formed by the minimum and maximum
// 1-dimensional values of the query range" (Sec. 5.4). For the Z-curve,
// component-wise monotonicity puts the extremes at the rectangle's corners;
// for the Hilbert curve the decomposition is coalesced to one interval.
func (c Config) CoverInterval(r zcurve.Rect) (zcurve.Interval, error) {
	if c.Curve == CurveHilbert {
		ivs, err := zcurve.HilbertDecompose(r, c.Grid.Order, 1)
		if err != nil {
			return zcurve.Interval{}, err
		}
		if len(ivs) == 0 {
			return zcurve.Interval{}, fmt.Errorf("bxtree: empty hilbert cover for %+v", r)
		}
		return ivs[0], nil
	}
	return zcurve.Interval{
		Lo: zcurve.Encode(r.MinX, r.MinY),
		Hi: zcurve.Encode(r.MaxX, r.MaxY),
	}, nil
}
