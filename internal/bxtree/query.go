package bxtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/btree"
	"repro/internal/motion"
	"repro/internal/zcurve"
)

// Window is an axis-aligned query rectangle in continuous space.
type Window struct {
	MinX, MinY, MaxX, MaxY float64
}

// Valid reports whether the window is well ordered.
func (w Window) Valid() bool { return w.MinX <= w.MaxX && w.MinY <= w.MaxY }

// Contains reports whether (x, y) lies in the window (closed).
func (w Window) Contains(x, y float64) bool {
	return w.MinX <= x && x <= w.MaxX && w.MinY <= y && y <= w.MaxY
}

// Enlarge grows the window by d on every side (Fig. 2's query enlargement).
func (w Window) Enlarge(d float64) Window {
	return Window{MinX: w.MinX - d, MinY: w.MinY - d, MaxX: w.MaxX + d, MaxY: w.MaxY + d}
}

// Square returns the window centered at (x, y) with half-side r.
func Square(x, y, r float64) Window {
	return Window{MinX: x - r, MinY: y - r, MaxX: x + r, MaxY: y + r}
}

// String implements fmt.Stringer.
func (w Window) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", w.MinX, w.MaxX, w.MinY, w.MaxY)
}

// RangeQuery returns all objects whose extrapolated position at time tq
// lies inside w. Per active partition, the window is enlarged by
// MaxSpeed·|tq − tlab|, decomposed into Z-value intervals, and scanned;
// candidates are refined against their exact positions at tq.
func (t *Tree) RangeQuery(w Window, tq float64) ([]motion.Object, error) {
	if !w.Valid() {
		return nil, fmt.Errorf("bxtree: invalid query window %v", w)
	}
	var out []motion.Object
	err := t.ScanWindow(w, tq, nil, func(o motion.Object) {
		if x, y := o.PositionAt(tq); w.Contains(x, y) {
			out = append(out, o)
		}
	})
	return out, err
}

// ScanWindow runs the partition-wise enlarged-window scan delivering every
// stored object whose index key falls in the window's Z intervals. When
// scanned is non-nil it records covered key intervals per partition and
// skips ranges already covered (used by kNN's incremental enlargement).
func (t *Tree) ScanWindow(w Window, tq float64, scanned map[uint64]*zcurve.IntervalSet, emit func(motion.Object)) error {
	for _, pr := range t.parts.Active(tq) {
		ew := w.Enlarge(t.cfg.MaxSpeed * pr.Gap)
		rect, ok := t.cfg.Grid.RectOf(ew.MinX, ew.MinY, ew.MaxX, ew.MaxY)
		if !ok {
			continue // window entirely outside the space
		}
		ivs, err := t.cfg.DecomposeRect(rect)
		if err != nil {
			return err
		}
		todo := ivs
		if scanned != nil {
			set := scanned[pr.TID]
			if set == nil {
				set = &zcurve.IntervalSet{}
				scanned[pr.TID] = set
			}
			todo = todo[:0:0]
			for _, iv := range ivs {
				todo = append(todo, set.Subtract(iv)...)
			}
			for _, iv := range ivs {
				set.Add(iv)
			}
		}
		for _, iv := range todo {
			loK, hiK := t.cfg.KeyRange(pr.TID, iv.Lo, iv.Hi)
			lo := btree.KV{Key: loK, UID: 0}
			hi := btree.KV{Key: hiK, UID: ^uint32(0)}
			err := t.tree.RangeScan(lo, hi, func(kv btree.KV, p btree.Payload) bool {
				emit(motion.DecodePayload(motion.UserID(kv.UID), p))
				return true
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Neighbor is one kNN result.
type Neighbor struct {
	Object motion.Object
	Dist   float64 // distance from the query point at query time
}

// EstimateDk returns the estimated distance from a query point to its k'th
// nearest neighbor among n uniformly distributed users in a square space of
// side L (Tao et al. [33], scaled from the unit square):
//
//	Dk = 2/√π · (1 − √(1 − (k/n)^½)) · L
func EstimateDk(k, n int, L float64) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	frac := math.Sqrt(float64(k) / float64(n))
	if frac > 1 {
		frac = 1
	}
	return 2 / math.SqrtPi * (1 - math.Sqrt(1-frac)) * L
}

// KNN returns the k objects nearest to (qx, qy) at time tq, sorted by
// ascending distance (ties by user id). Fewer than k objects are returned
// only when the index holds fewer than k.
//
// The algorithm follows [13] (Sec. 2.1): a square window with radius
// rq = Dk/k is searched and repeatedly extended by rq; each round scans
// only the newly covered key ranges, and the search stops once k objects
// lie within the current guaranteed radius.
func (t *Tree) KNN(qx, qy float64, k int, tq float64) ([]Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	n := t.Size()
	if n == 0 {
		return nil, nil
	}
	want := k
	if want > n {
		want = n
	}
	L := t.cfg.Grid.Side
	rq := EstimateDk(k, n, L) / float64(k)
	if rq <= 0 || math.IsNaN(rq) {
		rq = L / 64
	}

	scanned := make(map[uint64]*zcurve.IntervalSet)
	cands := make(map[motion.UserID]Neighbor)
	for round := 1; ; round++ {
		radius := rq * float64(round)
		w := Square(qx, qy, radius)
		err := t.ScanWindow(w, tq, scanned, func(o motion.Object) {
			if _, ok := cands[o.UID]; ok {
				return
			}
			cands[o.UID] = Neighbor{Object: o, Dist: o.DistanceAt(tq, qx, qy)}
		})
		if err != nil {
			return nil, err
		}
		// Every object within `radius` of q at tq is guaranteed found: the
		// enlarged windows cover all index positions it could be stored at.
		within := 0
		for _, c := range cands {
			if c.Dist <= radius {
				within++
			}
		}
		covered := w.MinX <= 0 && w.MinY <= 0 && w.MaxX >= L && w.MaxY >= L
		if within >= want || covered {
			break
		}
	}

	out := make([]Neighbor, 0, len(cands))
	for _, c := range cands {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Object.UID < out[j].Object.UID
	})
	if len(out) > want {
		out = out[:want]
	}
	return out, nil
}
