package bxtree

import (
	"testing"

	"repro/internal/motion"
	"repro/internal/store"
	"repro/internal/zcurve"
)

func TestAccessors(t *testing.T) {
	cfg := DefaultConfig()
	pool := store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages)
	tr, err := New(cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Config(); got.DeltaTmu != cfg.DeltaTmu {
		t.Errorf("Config = %+v", got)
	}
	if tr.Pool() != pool {
		t.Error("Pool mismatch")
	}
	if tr.LeafCount() != 1 {
		t.Errorf("empty tree LeafCount = %d, want 1", tr.LeafCount())
	}
	for i := 0; i < 200; i++ {
		if err := tr.Insert(motion.Object{UID: motion.UserID(i + 1), X: float64(i), Y: float64(i), T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.LeafCount() < 2 {
		t.Errorf("LeafCount = %d after 200 inserts", tr.LeafCount())
	}
}

func TestCurveKindString(t *testing.T) {
	if CurveZ.String() != "z-order" || CurveHilbert.String() != "hilbert" {
		t.Error("CurveKind.String mismatch")
	}
	if CurveKind(9).String() == "" {
		t.Error("unknown CurveKind should still stringify")
	}
}

func TestConfigRejectsUnknownCurve(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Curve = CurveKind(42)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown curve accepted")
	}
}

func TestCurveValueAndDecomposeHilbert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Curve = CurveHilbert
	// CurveValue must agree with the grid's Hilbert mapping.
	if got, want := cfg.CurveValue(500, 500), cfg.Grid.HilbertValue(500, 500); got != want {
		t.Errorf("CurveValue = %d, want %d", got, want)
	}
	rect, ok := cfg.Grid.RectOf(100, 100, 300, 300)
	if !ok {
		t.Fatal("RectOf failed")
	}
	ivs, err := cfg.DecomposeRect(rect)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) == 0 || len(ivs) > cfg.MaxIntervals {
		t.Fatalf("DecomposeRect returned %d intervals (cap %d)", len(ivs), cfg.MaxIntervals)
	}
	// Every cell of the rectangle must be covered.
	for x := rect.MinX; x <= rect.MaxX; x += 37 {
		for y := rect.MinY; y <= rect.MaxY; y += 41 {
			h := zcurve.HilbertEncode(x, y, cfg.Grid.Order)
			covered := false
			for _, iv := range ivs {
				if iv.Contains(h) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("cell (%d,%d) h=%d not covered", x, y, h)
			}
		}
	}
}

func TestCoverIntervalBothCurves(t *testing.T) {
	for _, curve := range []CurveKind{CurveZ, CurveHilbert} {
		cfg := DefaultConfig()
		cfg.Curve = curve
		rect, ok := cfg.Grid.RectOf(200, 300, 450, 650)
		if !ok {
			t.Fatal("RectOf failed")
		}
		iv, err := cfg.CoverInterval(rect)
		if err != nil {
			t.Fatalf("%v: %v", curve, err)
		}
		// The interval must contain every cell's curve value.
		for x := rect.MinX; x <= rect.MaxX; x += 53 {
			for y := rect.MinY; y <= rect.MaxY; y += 59 {
				var v uint64
				if curve == CurveHilbert {
					v = zcurve.HilbertEncode(x, y, cfg.Grid.Order)
				} else {
					v = zcurve.Encode(x, y)
				}
				if !iv.Contains(v) {
					t.Fatalf("%v: cell (%d,%d) value %d outside cover %v", curve, x, y, v, iv)
				}
			}
		}
		// Nesting: a sub-rectangle's cover lies inside the cover.
		sub := zcurve.Rect{MinX: rect.MinX + 10, MinY: rect.MinY + 10, MaxX: rect.MaxX - 10, MaxY: rect.MaxY - 10}
		siv, err := cfg.CoverInterval(sub)
		if err != nil {
			t.Fatal(err)
		}
		if siv.Lo < iv.Lo || siv.Hi > iv.Hi {
			t.Fatalf("%v: sub-cover %v escapes cover %v", curve, siv, iv)
		}
	}
}

func TestPartitionTrackerDirect(t *testing.T) {
	cfg := DefaultConfig()
	pt := NewPartitionTracker(cfg)
	if pt.Size() != 0 || pt.LabelCount() != 0 {
		t.Fatal("fresh tracker not empty")
	}
	pt.Set(1, 2)
	pt.Set(2, 2)
	pt.Set(3, 3)
	if pt.Size() != 3 || pt.LabelCount() != 2 {
		t.Fatalf("Size=%d LabelCount=%d", pt.Size(), pt.LabelCount())
	}
	if li, ok := pt.Label(1); !ok || li != 2 {
		t.Errorf("Label(1) = %d, %v", li, ok)
	}
	if _, ok := pt.Label(99); ok {
		t.Error("Label of untracked uid")
	}
	// Move u1 to another label.
	pt.Set(1, 3)
	if pt.LabelCount() != 2 {
		t.Errorf("LabelCount after move = %d", pt.LabelCount())
	}
	pt.Remove(2)
	if pt.LabelCount() != 1 || pt.Size() != 2 {
		t.Errorf("after remove: LabelCount=%d Size=%d", pt.LabelCount(), pt.Size())
	}
	pt.Remove(99) // no-op
	// Active merges labels that alias to one partition under the max gap.
	pt2 := NewPartitionTracker(cfg) // n=2 → period 3: labels 2 and 5 alias
	pt2.Set(1, 2)
	pt2.Set(2, 5)
	refs := pt2.Active(100)
	if len(refs) != 1 {
		t.Fatalf("aliasing labels produced %d partitions, want 1", len(refs))
	}
	// Gaps: |120−100| = 20, |300−100| = 200 → merged gap 200.
	if refs[0].Gap != 200 {
		t.Errorf("merged gap = %g, want 200", refs[0].Gap)
	}
}
