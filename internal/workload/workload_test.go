package workload

import (
	"math"
	"testing"

	"repro/internal/policy"
)

// smallConfig returns a fast test configuration.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumUsers = 500
	cfg.PoliciesPerUser = 10
	cfg.GroupSize = 25
	return cfg
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero users", func(c *Config) { c.NumUsers = 0 }},
		{"negative speed", func(c *Config) { c.MaxSpeed = -1 }},
		{"theta > 1", func(c *Config) { c.GroupingFactor = 1.5 }},
		{"theta < 0", func(c *Config) { c.GroupingFactor = -0.1 }},
		{"bad region fracs", func(c *Config) { c.RegionFracMin = 0.9; c.RegionFracMax = 0.2 }},
		{"network no hubs", func(c *Config) { c.Distribution = Network; c.NumHubs = 1 }},
		{"negative update window", func(c *Config) { c.UpdateWindow = -5 }},
	}
	for _, tc := range cases {
		c := DefaultConfig()
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestGenerateUniform(t *testing.T) {
	cfg := smallConfig()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Objects) != cfg.NumUsers {
		t.Fatalf("objects = %d, want %d", len(d.Objects), cfg.NumUsers)
	}
	for _, o := range d.Objects {
		if o.X < 0 || o.X > cfg.Space || o.Y < 0 || o.Y > cfg.Space {
			t.Fatalf("u%d out of space: (%g, %g)", o.UID, o.X, o.Y)
		}
		if sp := o.Speed(); sp > cfg.MaxSpeed+1e-9 {
			t.Fatalf("u%d speed %g > max %g", o.UID, sp, cfg.MaxSpeed)
		}
		if o.T < 0 || o.T >= d.Cfg.UpdateWindow {
			t.Fatalf("u%d update time %g outside [0, %g)", o.UID, o.T, d.Cfg.UpdateWindow)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Objects {
		if d1.Objects[i] != d2.Objects[i] {
			t.Fatalf("object %d differs across runs with same seed", i)
		}
	}
	if d1.Policies.NumPolicies() != d2.Policies.NumPolicies() {
		t.Fatal("policy counts differ across runs with same seed")
	}
	cfg2 := cfg
	cfg2.Seed = 999
	d3, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range d1.Objects {
		if d1.Objects[i] == d3.Objects[i] {
			same++
		}
	}
	if same == len(d1.Objects) {
		t.Error("different seeds produced identical objects")
	}
}

func TestPolicyCounts(t *testing.T) {
	cfg := smallConfig()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.NumUsers * cfg.PoliciesPerUser
	if got := d.Policies.NumPolicies(); got != want {
		t.Errorf("NumPolicies = %d, want %d", got, want)
	}
}

func TestGroupingFactorExtremes(t *testing.T) {
	// θ = 1: every policy stays in-group.
	cfg := smallConfig()
	cfg.GroupingFactor = 1
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Policies.RelatedPairs(func(a, b policy.UserID) {
		ga := (int(a) - 1) / cfg.GroupSize
		gb := (int(b) - 1) / cfg.GroupSize
		if ga != gb {
			t.Errorf("θ=1 produced cross-group pair (%d, %d)", a, b)
		}
	})

	// θ = 0: policies connect arbitrary users; expect a large majority of
	// pairs to cross group boundaries (in-group mass is GroupSize/N = 5%).
	cfg = smallConfig()
	cfg.GroupingFactor = 0
	d, err = Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cross, total := 0, 0
	d.Policies.RelatedPairs(func(a, b policy.UserID) {
		total++
		if (int(a)-1)/cfg.GroupSize != (int(b)-1)/cfg.GroupSize {
			cross++
		}
	})
	if total == 0 {
		t.Fatal("no related pairs generated")
	}
	if frac := float64(cross) / float64(total); frac < 0.8 {
		t.Errorf("θ=0: only %.0f%% of pairs cross groups", frac*100)
	}
}

func TestGenerateNetwork(t *testing.T) {
	cfg := smallConfig()
	cfg.Distribution = Network
	cfg.NumHubs = 10
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range d.Objects {
		if o.X < -1e-9 || o.X > cfg.Space+1e-9 || o.Y < -1e-9 || o.Y > cfg.Space+1e-9 {
			t.Fatalf("u%d off-space at (%g, %g)", o.UID, o.X, o.Y)
		}
		if sp := o.Speed(); sp > cfg.MaxSpeed+1e-9 {
			t.Fatalf("u%d speed %g > max", o.UID, sp)
		}
	}
}

// TestNetworkSkew checks the property the hub count controls: fewer hubs
// concentrate users, so the average pairwise... rather, the fraction of
// occupied grid cells is smaller than under the uniform distribution.
func TestNetworkSkew(t *testing.T) {
	occupied := func(cfg Config) int {
		d, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const cells = 32
		seen := make(map[int]bool)
		for _, o := range d.Objects {
			cx := int(o.X / cfg.Space * cells)
			cy := int(o.Y / cfg.Space * cells)
			if cx >= cells {
				cx = cells - 1
			}
			if cy >= cells {
				cy = cells - 1
			}
			seen[cy*cells+cx] = true
		}
		return len(seen)
	}
	uni := smallConfig()
	uni.NumUsers = 2000
	few := uni
	few.Distribution = Network
	few.NumHubs = 5
	many := uni
	many.Distribution = Network
	many.NumHubs = 200
	nUni, nFew, nMany := occupied(uni), occupied(few), occupied(many)
	if nFew >= nUni {
		t.Errorf("5-hub network occupies %d cells, uniform %d — expected skew", nFew, nUni)
	}
	if nFew >= nMany {
		t.Errorf("5 hubs occupy %d cells, 200 hubs %d — expected fewer", nFew, nMany)
	}
}

func TestGenPRQueries(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := d.GenPRQueries(50, 200, 60)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if got := q.W.MaxX - q.W.MinX; math.Abs(got-200) > 1e-9 {
			t.Fatalf("window width %g, want 200", got)
		}
		if q.T != 60 {
			t.Fatalf("query time %g", q.T)
		}
		if q.Issuer == 0 {
			t.Fatal("zero issuer")
		}
	}
}

func TestGenKNNQueries(t *testing.T) {
	cfg := smallConfig()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := d.GenKNNQueries(50, 5, 60)
	for _, q := range qs {
		if q.K != 5 || q.T != 60 {
			t.Fatalf("bad query %+v", q)
		}
		if q.X < 0 || q.X > cfg.Space || q.Y < 0 || q.Y > cfg.Space {
			t.Fatalf("qLoc (%g, %g) outside space", q.X, q.Y)
		}
	}
}

func TestUpdateBatch(t *testing.T) {
	cfg := smallConfig()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := 100.0
	batch := d.UpdateBatch(0.25, now)
	if len(batch) != cfg.NumUsers/4 {
		t.Fatalf("batch size %d, want %d", len(batch), cfg.NumUsers/4)
	}
	seen := make(map[int]bool)
	for _, o := range batch {
		if seen[int(o.UID)] {
			t.Fatalf("u%d updated twice in one batch", o.UID)
		}
		seen[int(o.UID)] = true
		if o.T != now {
			t.Fatalf("u%d update time %g, want %g", o.UID, o.T, now)
		}
		if o.X < 0 || o.X > cfg.Space || o.Y < 0 || o.Y > cfg.Space {
			t.Fatalf("u%d bounced outside space: (%g, %g)", o.UID, o.X, o.Y)
		}
		if d.Objects[o.UID-1] != o {
			t.Fatalf("dataset object not updated in place for u%d", o.UID)
		}
	}
	// Four batches of 25% must cover everyone exactly once.
	for i := 0; i < 3; i++ {
		for _, o := range d.UpdateBatch(0.25, now+float64(i+1)) {
			if seen[int(o.UID)] {
				t.Fatalf("u%d updated twice across batches", o.UID)
			}
			seen[int(o.UID)] = true
		}
	}
	if len(seen) != cfg.NumUsers {
		t.Fatalf("covered %d users, want %d", len(seen), cfg.NumUsers)
	}
}

func TestUpdateBatchNetwork(t *testing.T) {
	cfg := smallConfig()
	cfg.Distribution = Network
	cfg.NumHubs = 10
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := d.UpdateBatch(0.5, 120)
	for _, o := range batch {
		if o.X < -1e-9 || o.X > cfg.Space+1e-9 || o.Y < -1e-9 || o.Y > cfg.Space+1e-9 {
			t.Fatalf("u%d off-space after update: (%g, %g)", o.UID, o.X, o.Y)
		}
		if sp := o.Speed(); sp > cfg.MaxSpeed+1e-9 {
			t.Fatalf("u%d speed %g > max after update", o.UID, sp)
		}
	}
}

func TestAssign(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Assign()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SV) != len(d.Users) {
		t.Fatalf("assigned %d SVs, want %d", len(a.SV), len(d.Users))
	}
	for u, sv := range a.SV {
		if sv <= 1 {
			t.Fatalf("u%d SV %g <= 1", u, sv)
		}
	}
}
