package workload

import "repro/internal/motion"

// Geofence is one standing region of interest — a fence a deployment
// keeps under continuous watch — together with the user whose
// privacy-filtered view the watch runs under.
type Geofence struct {
	Issuer                 motion.UserID
	MinX, MinY, MaxX, MaxY float64
}

// Geofences draws count standing geofences for the city scenario. On a
// Network dataset the fence centers cluster around the network's
// destinations — the spots a city deployment actually watches (stations,
// venues, depots): each fence picks a random hub and offsets from it by
// up to one side length, so fences overlap the route corridors where the
// population concentrates. On a Uniform dataset the centers are uniform.
// Side lengths are uniform in [0.5, 1.5]·side; fences are clamped to the
// space. Issuers are uniform over the user population.
func (d *Dataset) Geofences(count int, side float64) []Geofence {
	out := make([]Geofence, count)
	for i := range out {
		issuer := d.Users[d.rng.Intn(len(d.Users))]
		var cx, cy float64
		if d.net != nil && len(d.net.hubs) > 0 {
			h := d.net.hubs[d.rng.Intn(len(d.net.hubs))]
			cx = h.x + (d.rng.Float64()-0.5)*2*side
			cy = h.y + (d.rng.Float64()-0.5)*2*side
		} else {
			cx = d.rng.Float64() * d.Cfg.Space
			cy = d.rng.Float64() * d.Cfg.Space
		}
		half := side * (0.5 + d.rng.Float64()) / 2
		out[i] = Geofence{
			Issuer: motion.UserID(issuer),
			MinX:   clamp(cx-half, 0, d.Cfg.Space),
			MinY:   clamp(cy-half, 0, d.Cfg.Space),
			MaxX:   clamp(cx+half, 0, d.Cfg.Space),
			MaxY:   clamp(cy+half, 0, d.Cfg.Space),
		}
	}
	return out
}
