// Package workload generates the synthetic datasets, query workloads, and
// update streams of the paper's empirical study (Sec. 7.1):
//
//   - uniformly distributed moving users (random position, direction, and
//     speed in [0, max]);
//   - network-based users moving between a configurable number of
//     destinations ("hubs"), re-implementing the behavior of the generator
//     of Šaltenis et al. [27]: three speed classes, acceleration away from
//     and deceleration toward destinations, random re-targeting;
//   - location-privacy policies controlled by the grouping factor
//     θ = Ngr/Np (Sec. 6): users are divided into groups and a fraction θ
//     of each user's Np policies point at same-group users, the rest at
//     random users; and
//   - privacy-aware range and kNN query workloads and fractional update
//     batches (Sec. 7.9).
//
// All generation is deterministic in Config.Seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/motion"
	"repro/internal/policy"
)

// Distribution selects how user positions and movement are generated.
type Distribution int

const (
	// Uniform scatters users uniformly with random directions (Sec. 7.1).
	Uniform Distribution = iota
	// Network moves users along routes between hub destinations [27].
	Network
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Network:
		return "network"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Config fixes a dataset. The zero value is not valid; use DefaultConfig.
type Config struct {
	NumUsers int     // N
	Space    float64 // side length of the square space
	MaxSpeed float64 // objects move at speeds in [0, MaxSpeed]
	DayLen   float64 // time-domain length for policy tint normalization

	PoliciesPerUser int     // Np
	GroupingFactor  float64 // θ ∈ [0, 1]
	GroupSize       int     // users per policy group; 0 = max(100, Np+1)

	// Policy shape: locr side lengths are uniform in
	// [RegionFracMin, RegionFracMax]·Space, and tint durations are uniform
	// in [TintFracMin, TintFracMax]·DayLen. Zero values select defaults.
	RegionFracMin, RegionFracMax float64
	TintFracMin, TintFracMax     float64

	Distribution Distribution
	NumHubs      int // Network only

	// UpdateWindow is the time span over which initial updates are spread:
	// object update times are uniform in [0, UpdateWindow). Zero selects
	// half the Bx-tree's default maximum update interval.
	UpdateWindow float64

	Seed int64
}

// Defaults from Table 1 (bold values).
const (
	DefaultNumUsers        = 60_000
	DefaultSpace           = 1000.0
	DefaultMaxSpeed        = 3.0
	DefaultDayLen          = 1440.0
	DefaultPoliciesPerUser = 50
	DefaultGroupingFactor  = 0.7
	DefaultRegionFracMin   = 0.2
	DefaultRegionFracMax   = 0.9
	DefaultTintFracMin     = 0.25
	DefaultTintFracMax     = 0.75
	DefaultUpdateWindow    = 60.0
)

// DefaultConfig returns the paper's default workload (60 K uniform users,
// 50 policies each, θ = 0.7).
func DefaultConfig() Config {
	return Config{
		NumUsers:        DefaultNumUsers,
		Space:           DefaultSpace,
		MaxSpeed:        DefaultMaxSpeed,
		DayLen:          DefaultDayLen,
		PoliciesPerUser: DefaultPoliciesPerUser,
		GroupingFactor:  DefaultGroupingFactor,
		Distribution:    Uniform,
		Seed:            1,
	}
}

// Validate checks the configuration and fills defaulted fields.
func (c *Config) Validate() error {
	if c.NumUsers <= 0 {
		return fmt.Errorf("workload: %d users", c.NumUsers)
	}
	if c.Space <= 0 {
		return fmt.Errorf("workload: space side %g", c.Space)
	}
	if c.MaxSpeed < 0 {
		return fmt.Errorf("workload: max speed %g", c.MaxSpeed)
	}
	if c.DayLen <= 0 {
		return fmt.Errorf("workload: day length %g", c.DayLen)
	}
	if c.PoliciesPerUser < 0 {
		return fmt.Errorf("workload: %d policies per user", c.PoliciesPerUser)
	}
	if c.GroupingFactor < 0 || c.GroupingFactor > 1 {
		return fmt.Errorf("workload: grouping factor %g outside [0,1]", c.GroupingFactor)
	}
	if c.GroupSize == 0 {
		c.GroupSize = c.PoliciesPerUser + 1
		if c.GroupSize < 100 {
			c.GroupSize = 100
		}
	}
	if c.GroupSize < 2 {
		return fmt.Errorf("workload: group size %d < 2", c.GroupSize)
	}
	if c.RegionFracMin == 0 && c.RegionFracMax == 0 {
		c.RegionFracMin, c.RegionFracMax = DefaultRegionFracMin, DefaultRegionFracMax
	}
	if c.TintFracMin == 0 && c.TintFracMax == 0 {
		c.TintFracMin, c.TintFracMax = DefaultTintFracMin, DefaultTintFracMax
	}
	if !(c.RegionFracMin > 0 && c.RegionFracMin <= c.RegionFracMax && c.RegionFracMax <= 1) {
		return fmt.Errorf("workload: region fractions [%g,%g]", c.RegionFracMin, c.RegionFracMax)
	}
	if !(c.TintFracMin > 0 && c.TintFracMin <= c.TintFracMax && c.TintFracMax <= 1) {
		return fmt.Errorf("workload: tint fractions [%g,%g]", c.TintFracMin, c.TintFracMax)
	}
	if c.Distribution == Network && c.NumHubs < 2 {
		return fmt.Errorf("workload: network distribution needs ≥ 2 hubs, have %d", c.NumHubs)
	}
	if c.UpdateWindow == 0 {
		c.UpdateWindow = DefaultUpdateWindow
	}
	if c.UpdateWindow < 0 {
		return fmt.Errorf("workload: update window %g", c.UpdateWindow)
	}
	return nil
}

// Dataset is a generated population: moving objects plus the policy store
// that holds every user's location-privacy policies.
type Dataset struct {
	Cfg      Config
	Objects  []motion.Object
	Policies *policy.Store
	Users    []policy.UserID

	// net carries the movement state for network datasets, used by the
	// update stream; nil for uniform datasets.
	net *networkSim
	rng *rand.Rand
	// cursor walks the population round-robin for UpdateBatch.
	cursor int
}

// Generate builds a dataset from cfg.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Cfg: cfg, rng: rng}

	d.Users = make([]policy.UserID, cfg.NumUsers)
	for i := range d.Users {
		d.Users[i] = policy.UserID(i + 1)
	}

	switch cfg.Distribution {
	case Uniform:
		d.Objects = genUniform(cfg, rng)
	case Network:
		d.net = newNetworkSim(cfg, rng)
		d.Objects = d.net.snapshot(cfg, rng)
	default:
		return nil, fmt.Errorf("workload: unknown distribution %d", int(cfg.Distribution))
	}

	pol, err := genPolicies(cfg, d.Users, rng)
	if err != nil {
		return nil, err
	}
	d.Policies = pol
	return d, nil
}

// genUniform scatters users uniformly with random directions and speeds.
func genUniform(cfg Config, rng *rand.Rand) []motion.Object {
	objs := make([]motion.Object, cfg.NumUsers)
	for i := range objs {
		speed := rng.Float64() * cfg.MaxSpeed
		dir := rng.Float64() * 2 * math.Pi
		objs[i] = motion.Object{
			UID: motion.UserID(i + 1),
			X:   rng.Float64() * cfg.Space,
			Y:   rng.Float64() * cfg.Space,
			VX:  speed * math.Cos(dir),
			VY:  speed * math.Sin(dir),
			T:   rng.Float64() * cfg.UpdateWindow,
		}
	}
	return objs
}

// genPolicies builds every user's policies under the grouping factor θ:
// users are split into groups of cfg.GroupSize consecutive ids; each user
// owns round(θ·Np) policies toward random distinct same-group peers and
// Np − round(θ·Np) toward random other users (Sec. 6). Each owner→peer
// pair gets a dedicated role, one relation, and one random policy.
func genPolicies(cfg Config, users []policy.UserID, rng *rand.Rand) (*policy.Store, error) {
	space := policy.Region{MinX: 0, MinY: 0, MaxX: cfg.Space, MaxY: cfg.Space}
	pol, err := policy.NewStore(space, cfg.DayLen)
	if err != nil {
		return nil, err
	}
	n := len(users)
	if cfg.PoliciesPerUser == 0 {
		return pol, nil
	}
	inGroup := int(math.Round(cfg.GroupingFactor * float64(cfg.PoliciesPerUser)))

	for i, owner := range users {
		gStart := i / cfg.GroupSize * cfg.GroupSize
		gEnd := gStart + cfg.GroupSize
		if gEnd > n {
			gEnd = n
		}
		chosen := make(map[policy.UserID]bool, cfg.PoliciesPerUser)
		addPolicy := func(peer policy.UserID) error {
			role := policy.Role(fmt.Sprintf("p%d", peer))
			pol.SetRelation(owner, peer, role)
			return pol.AddPolicy(owner, randomPolicy(cfg, role, rng))
		}
		// In-group policies. Group size can undercut the target near the
		// tail of the id space; cap at the available distinct peers.
		target := inGroup
		if avail := gEnd - gStart - 1; target > avail {
			target = avail
		}
		for len(chosen) < target {
			peer := users[gStart+rng.Intn(gEnd-gStart)]
			if peer == owner || chosen[peer] {
				continue
			}
			chosen[peer] = true
			if err := addPolicy(peer); err != nil {
				return nil, err
			}
		}
		// Out-of-group policies toward anyone.
		for len(chosen) < cfg.PoliciesPerUser && len(chosen) < n-1 {
			peer := users[rng.Intn(n)]
			if peer == owner || chosen[peer] {
				continue
			}
			chosen[peer] = true
			if err := addPolicy(peer); err != nil {
				return nil, err
			}
		}
	}
	return pol, nil
}

// randomPolicy draws a policy with random spatial range and time interval
// within the configured fractions (Sec. 7.1: "random policies by varying
// the spatial ranges and time intervals").
func randomPolicy(cfg Config, role policy.Role, rng *rand.Rand) policy.Policy {
	frac := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	w := frac(cfg.RegionFracMin, cfg.RegionFracMax) * cfg.Space
	h := frac(cfg.RegionFracMin, cfg.RegionFracMax) * cfg.Space
	x := rng.Float64() * (cfg.Space - w)
	y := rng.Float64() * (cfg.Space - h)
	start := rng.Float64() * cfg.DayLen
	dur := frac(cfg.TintFracMin, cfg.TintFracMax) * cfg.DayLen
	return policy.Policy{
		Role: role,
		Locr: policy.Region{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h},
		Tint: policy.TimeInterval{Start: start, End: math.Mod(start+dur, cfg.DayLen)},
	}
}

// Assign runs the offline policy-encoding phase (Sec. 5.1) for the dataset.
func (d *Dataset) Assign() (policy.Assignment, error) {
	return policy.AssignSequenceValues(d.Policies, d.Users, policy.AssignOptions{})
}
