package workload

import (
	"math"

	"repro/internal/bxtree"
	"repro/internal/motion"
)

// PRQuery is one privacy-aware range query (Definition 2).
type PRQuery struct {
	Issuer motion.UserID
	W      bxtree.Window
	T      float64
}

// KNNQuery is one privacy-aware kNN query (Definition 3). (X, Y) is qLoc,
// the issuer's location at query time.
type KNNQuery struct {
	Issuer motion.UserID
	X, Y   float64
	K      int
	T      float64
}

// GenPRQueries draws count range queries with quadratic windows of the
// given side length (Table 1's "query window size"), centered uniformly at
// random, issued by uniformly random users at time tq.
func (d *Dataset) GenPRQueries(count int, side, tq float64) []PRQuery {
	out := make([]PRQuery, count)
	for i := range out {
		issuer := d.Users[d.rng.Intn(len(d.Users))]
		cx := d.rng.Float64() * d.Cfg.Space
		cy := d.rng.Float64() * d.Cfg.Space
		out[i] = PRQuery{
			Issuer: motion.UserID(issuer),
			W:      bxtree.Square(cx, cy, side/2),
			T:      tq,
		}
	}
	return out
}

// GenKNNQueries draws count kNN queries issued by uniformly random users
// at time tq; qLoc is the issuer's extrapolated position at tq.
func (d *Dataset) GenKNNQueries(count, k int, tq float64) []KNNQuery {
	out := make([]KNNQuery, count)
	for i := range out {
		idx := d.rng.Intn(len(d.Objects))
		o := d.Objects[idx]
		x, y := o.PositionAt(tq)
		out[i] = KNNQuery{Issuer: o.UID, X: clamp(x, 0, d.Cfg.Space), Y: clamp(y, 0, d.Cfg.Space), K: k, T: tq}
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// UpdateBatch advances the next fraction of the population (round-robin)
// to time now and returns their fresh update records, mirroring the
// Sec. 7.9 experiment ("each time 25% of the data set has been updated").
// The dataset's Objects slice is updated in place so that oracles and
// query generation stay consistent with the index contents.
func (d *Dataset) UpdateBatch(fraction, now float64) []motion.Object {
	n := len(d.Objects)
	count := int(math.Round(fraction * float64(n)))
	if count > n {
		count = n
	}
	out := make([]motion.Object, 0, count)
	for i := 0; i < count; i++ {
		idx := d.cursor
		d.cursor = (d.cursor + 1) % n
		out = append(out, d.updateOne(idx, now))
	}
	return out
}

// updateOne advances object idx to time now under its movement model and
// returns the new record.
func (d *Dataset) updateOne(idx int, now float64) motion.Object {
	o := d.Objects[idx]
	if d.net != nil {
		dt := now - o.T
		if dt > 0 {
			d.net.advance(idx, dt, d.rng)
		}
		x, y, vx, vy := d.net.state(d.net.objs[idx])
		upd := motion.Object{UID: o.UID, X: x, Y: y, VX: vx, VY: vy, T: now}
		d.Objects[idx] = upd
		return upd
	}
	// Uniform movers: extrapolate, bounce off the space boundary, then
	// pick a fresh random direction with a fresh speed.
	x, y := o.PositionAt(now)
	x = bounce(x, d.Cfg.Space)
	y = bounce(y, d.Cfg.Space)
	speed := d.rng.Float64() * d.Cfg.MaxSpeed
	dir := d.rng.Float64() * 2 * math.Pi
	upd := motion.Object{
		UID: o.UID,
		X:   x,
		Y:   y,
		VX:  speed * math.Cos(dir),
		VY:  speed * math.Sin(dir),
		T:   now,
	}
	d.Objects[idx] = upd
	return upd
}

// bounce reflects a coordinate back into [0, side].
func bounce(v, side float64) float64 {
	for v < 0 || v > side {
		if v < 0 {
			v = -v
		}
		if v > side {
			v = 2*side - v
		}
	}
	return v
}
