package workload

import (
	"math"
	"math/rand"

	"repro/internal/motion"
)

// networkSim re-implements the documented behavior of the network-based
// data generator of Šaltenis et al. [27] used in Sec. 7.7: users move in a
// network of two-way routes connecting a configurable number of
// destinations. Objects start at random positions on routes, belong to one
// of three speed classes (maximum speeds 0.75, 1.5, and 3 for the default
// maximum speed 3 — i.e., 1/4, 1/2, and 1/1 of MaxSpeed), accelerate as
// they leave a destination, decelerate as they approach one, and choose
// the next destination at random on arrival.
//
// The property the experiment exercises — spatial skew controlled by the
// number of destinations — is preserved: the fewer the hubs, the more the
// population concentrates along few route corridors.
type networkSim struct {
	hubs []hub
	objs []netObject
}

type hub struct{ x, y float64 }

// netObject is one mover's route state.
type netObject struct {
	from, to int     // hub indices of the current route leg
	pos      float64 // distance travelled along the leg
	maxSpeed float64 // the object's speed-class maximum
}

// decelFrac is the fraction of a leg over which objects accelerate from /
// decelerate to rest at the endpoints.
const decelFrac = 0.2

// speedClasses are the per-class maximum speeds as fractions of MaxSpeed,
// matching the generator's 0.75 / 1.5 / 3 classes at MaxSpeed 3.
var speedClasses = [3]float64{0.25, 0.5, 1.0}

func newNetworkSim(cfg Config, rng *rand.Rand) *networkSim {
	s := &networkSim{
		hubs: make([]hub, cfg.NumHubs),
		objs: make([]netObject, cfg.NumUsers),
	}
	for i := range s.hubs {
		s.hubs[i] = hub{x: rng.Float64() * cfg.Space, y: rng.Float64() * cfg.Space}
	}
	for i := range s.objs {
		from := rng.Intn(len(s.hubs))
		to := s.nextHub(from, rng)
		s.objs[i] = netObject{
			from:     from,
			to:       to,
			pos:      rng.Float64() * s.legLen(from, to),
			maxSpeed: speedClasses[rng.Intn(len(speedClasses))] * cfg.MaxSpeed,
		}
	}
	return s
}

// nextHub picks a random destination different from cur.
func (s *networkSim) nextHub(cur int, rng *rand.Rand) int {
	for {
		h := rng.Intn(len(s.hubs))
		if h != cur {
			return h
		}
	}
}

func (s *networkSim) legLen(from, to int) float64 {
	a, b := s.hubs[from], s.hubs[to]
	return math.Hypot(b.x-a.x, b.y-a.y)
}

// state returns the object's current position, velocity, and unit direction.
func (s *networkSim) state(o netObject) (x, y, vx, vy float64) {
	a, b := s.hubs[o.from], s.hubs[o.to]
	leg := s.legLen(o.from, o.to)
	if leg == 0 {
		return a.x, a.y, 0, 0
	}
	ux, uy := (b.x-a.x)/leg, (b.y-a.y)/leg
	x = a.x + ux*o.pos
	y = a.y + uy*o.pos
	speed := o.currentSpeed(leg)
	return x, y, ux * speed, uy * speed
}

// currentSpeed applies the acceleration/deceleration profile: speed ramps
// linearly from rest over the first decelFrac of the leg and back to rest
// over the last decelFrac, clamped to a floor so objects keep moving.
func (o netObject) currentSpeed(leg float64) float64 {
	zone := leg * decelFrac
	if zone <= 0 {
		return o.maxSpeed
	}
	speed := o.maxSpeed
	if o.pos < zone {
		speed = o.maxSpeed * (o.pos / zone)
	}
	if rem := leg - o.pos; rem < zone {
		s := o.maxSpeed * (rem / zone)
		if s < speed {
			speed = s
		}
	}
	const floor = 0.1
	if speed < o.maxSpeed*floor {
		speed = o.maxSpeed * floor
	}
	return speed
}

// snapshot converts the simulation state into linear-motion update records
// with update times spread over the configured window.
func (s *networkSim) snapshot(cfg Config, rng *rand.Rand) []motion.Object {
	objs := make([]motion.Object, len(s.objs))
	for i, o := range s.objs {
		x, y, vx, vy := s.state(o)
		objs[i] = motion.Object{
			UID: motion.UserID(i + 1),
			X:   x,
			Y:   y,
			VX:  vx,
			VY:  vy,
			T:   rng.Float64() * cfg.UpdateWindow,
		}
	}
	return objs
}

// advance moves object i by dt along its route, re-targeting at hubs.
func (s *networkSim) advance(i int, dt float64, rng *rand.Rand) {
	o := &s.objs[i]
	for dt > 0 {
		leg := s.legLen(o.from, o.to)
		speed := o.currentSpeed(leg)
		if speed <= 0 {
			speed = o.maxSpeed * 0.1
		}
		step := speed * dt
		if o.pos+step < leg {
			o.pos += step
			return
		}
		// Arrived: spend the proportional share of dt, pick a new target.
		dt -= (leg - o.pos) / speed
		o.from = o.to
		o.to = s.nextHub(o.from, rng)
		o.pos = 0
	}
}
