package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/peb"
)

// The hot-path report is the measurement layer behind pebbench -json: one
// JSON document per run covering the commit path (latency percentiles,
// allocations, fsyncs, log volume), the WAL codec before/after (gob vs
// binary over the identical stream), the checkpoint pipeline (full vs
// incremental builds, pages walked and flushed), and the pooled PkNN
// query path. CI uploads the document as the BENCH_pr6.json artifact and
// diffs its *stable* counters — allocations, fsyncs/op, pages walked per
// incremental build, bytes per record — against the committed baseline.
// Latencies and ns/op are reported for the trajectory but never diffed:
// they measure the runner, not the code.

// HotPathReport is the pebbench -json document.
type HotPathReport struct {
	Schema      int               `json:"schema"` // bump when fields change meaning
	Quick       bool              `json:"quick"`
	GoVersion   string            `json:"go_version"`
	Codec       peb.WALCodecBench `json:"wal_codec"`
	Commit      CommitBench       `json:"commit"`
	Checkpoint  CheckpointBench   `json:"checkpoint"`
	PKNN        PKNNBench         `json:"pknn"`
	Replication ReplicationBench  `json:"replication"`
	Resharding  ReshardingBench   `json:"resharding"`
}

// CommitBench measures durable single-object commits (Durability: Sync —
// fsync before every ack) against a file-backed DB.
type CommitBench struct {
	Ops int `json:"ops"`
	// Latency percentiles in microseconds. Machine-dependent.
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// Stable counters: heap allocations, physical fsyncs, and framed log
	// bytes per acknowledged commit.
	AllocsPerOp   float64 `json:"allocs_per_op"`
	FsyncsPerOp   float64 `json:"fsyncs_per_op"`
	WALBytesPerOp float64 `json:"wal_bytes_per_op"`
}

// CheckpointBench measures a churn/checkpoint regime: one full build
// anchors the chain, every later build should ride the dead-extent ledger.
type CheckpointBench struct {
	Cycles            int    `json:"cycles"`
	ObjectsPerCycle   int    `json:"objects_per_cycle"`
	FullBuilds        uint64 `json:"full_builds"`
	IncrementalBuilds uint64 `json:"incremental_builds"`
	// PagesWalkedFull is what the anchor's liveness sweep visited — the
	// per-checkpoint cost the ledger then eliminates.
	PagesWalkedFull           uint64  `json:"pages_walked_full"`
	PagesWalkedPerIncremental float64 `json:"pages_walked_per_incremental"`
	PagesFlushed              uint64  `json:"pages_flushed"`
	PagesReclaimed            uint64  `json:"pages_reclaimed"`
}

// PKNNBench measures the pooled k-nearest-neighbors query path on an
// in-memory DB (no page I/O in the counter).
type PKNNBench struct {
	Friends     int     `json:"friends"`
	K           int     `json:"k"`
	Queries     int     `json:"queries"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	P50Micros   float64 `json:"p50_us"`
}

// ReplicationBench measures a replica tailing a committing primary: apply
// lag (in WAL records) sampled after every commit, and the replica's read
// latency once caught up. FinalLagRecords is the stable counter — after a
// synchronous CatchUp on a quiesced primary the replica must report zero
// lag, or the tailing protocol is broken.
type ReplicationBench struct {
	Commits         int     `json:"commits"`
	LagP50Records   float64 `json:"lag_p50_records"`
	LagP99Records   float64 `json:"lag_p99_records"`
	FinalLagRecords float64 `json:"final_lag_records"`
	ReadP50Micros   float64 `json:"read_p50_us"`
}

// ReshardingBench measures the skewed-commit workload against a static
// uniform 8-shard topology and again after the AutoReshard maintainer has
// reshaped that layout around the load — the hot range split in two, the
// cold ranges merged (see resharding.go). Splits, Merges and LostObjects
// are the stable facts CI gates on — both kinds of topology change must
// fire and the population must survive the migrations exactly; the shard
// counts, latency and throughput fields are the trajectory.
type ReshardingBench struct {
	Commits      int     `json:"commits"`       // per measured phase
	ShardsBefore int     `json:"shards_before"` // the static layout
	ShardsAfter  int     `json:"shards_after"`  // the converged dynamic layout
	Splits       uint64  `json:"splits"`
	Merges       uint64  `json:"merges"`
	LostObjects  float64 `json:"lost_objects"`
	// Hot-rectangle commit p99 (µs) on the static vs post-split topology.
	HotP99StaticMicros float64 `json:"hot_p99_static_us"`
	HotP99SplitMicros  float64 `json:"hot_p99_split_us"`
	OpsPerSecStatic    float64 `json:"ops_per_sec_static"`
	OpsPerSecSplit     float64 `json:"ops_per_sec_split"`
}

func hotObj(uid, salt int) peb.Object {
	return peb.Object{
		UID: peb.UserID(uid),
		X:   float64((uid*37 + salt*131) % 1000),
		Y:   float64((uid*59 + salt*17) % 1000),
		VX:  float64(uid%5) - 2,
		VY:  float64(salt%5) - 2,
		T:   float64(salt % 50),
	}
}

// allocsPerOp is testing.AllocsPerRun without the testing import: average
// mallocs per fn call, pinned to one P.
func allocsPerOp(runs int, fn func(i int) error) (float64, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	if err := fn(0); err != nil {
		return 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if err := fn(i); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs), nil
}

func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e3
}

// RunHotPath produces the full report. quick shrinks every loop to CI
// smoke size; the counters it diffs are size-independent.
func RunHotPath(quick bool, logf func(string, ...interface{})) (HotPathReport, error) {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	rep := HotPathReport{Schema: 1, Quick: quick, GoVersion: runtime.Version()}

	codecRecords, commitOps, ckptCycles, ckptObjs, pknnQueries := 20000, 4000, 8, 200, 2000
	if quick {
		codecRecords, commitOps, ckptCycles, ckptObjs, pknnQueries = 4000, 600, 4, 80, 400
	}

	logf("hotpath: codec bench (%d records)", codecRecords)
	rep.Codec = peb.RunWALCodecBench(codecRecords)

	dir, err := os.MkdirTemp("", "pebbench-hotpath")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dir)

	logf("hotpath: commit bench (%d durable commits)", commitOps)
	rep.Commit, err = runCommitBench(filepath.Join(dir, "commit.idx"), commitOps)
	if err != nil {
		return rep, fmt.Errorf("commit bench: %w", err)
	}

	logf("hotpath: checkpoint bench (%d cycles x %d objects)", ckptCycles, ckptObjs)
	rep.Checkpoint, err = runCheckpointBench(filepath.Join(dir, "ckpt.idx"), ckptCycles, ckptObjs)
	if err != nil {
		return rep, fmt.Errorf("checkpoint bench: %w", err)
	}

	logf("hotpath: pknn bench (%d queries)", pknnQueries)
	rep.PKNN, err = runPKNNBench(pknnQueries)
	if err != nil {
		return rep, fmt.Errorf("pknn bench: %w", err)
	}

	repCommits := commitOps / 2
	logf("hotpath: replication bench (%d commits tailed)", repCommits)
	rep.Replication, err = runReplicationBench(filepath.Join(dir, "rep.idx"), repCommits)
	if err != nil {
		return rep, fmt.Errorf("replication bench: %w", err)
	}

	// The resharding phases get a floor rather than the quick-mode commit
	// count: the p99 columns are queueing-delay tails and the throughput
	// delta is a steady-state effect — 600-commit phases make both too
	// noisy to read.
	reshCommits := commitOps
	if reshCommits < 2400 {
		reshCommits = 2400
	}
	logf("hotpath: resharding bench (%d skewed commits per phase)", reshCommits)
	rep.Resharding, err = runReshardingBench(filepath.Join(dir, "reshard"), reshCommits)
	if err != nil {
		return rep, fmt.Errorf("resharding bench: %w", err)
	}
	return rep, nil
}

// runReplicationBench commits against a durable primary while a replica
// tails it, sampling the replica's apply lag after every commit, then
// quiesces, catches the replica up, and measures its read path.
func runReplicationBench(path string, commits int) (ReplicationBench, error) {
	db, err := peb.Open(peb.Options{Path: path, Durability: peb.DurabilitySync, BufferPages: 64})
	if err != nil {
		return ReplicationBench{}, err
	}
	defer db.Close()
	const population = 256
	space := peb.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	day := peb.TimeInterval{Start: 0, End: 1440}
	for i := 2; i <= population; i++ {
		if err := db.DefineRelation(peb.UserID(i), 1, "f"); err != nil {
			return ReplicationBench{}, err
		}
	}
	if err := db.Grant(2, "f", space, day); err != nil {
		return ReplicationBench{}, err
	}
	b := db.NewBatch()
	for i := 1; i <= population; i++ {
		b.Upsert(hotObj(i, 0))
	}
	if err := db.Apply(b); err != nil {
		return ReplicationBench{}, err
	}

	r, err := peb.NewReplica(db)
	if err != nil {
		return ReplicationBench{}, err
	}
	defer r.Close()

	lags := make([]uint64, 0, commits)
	for i := 0; i < commits; i++ {
		if err := db.Upsert(hotObj(i%population+1, i+1)); err != nil {
			return ReplicationBench{}, err
		}
		if seq, h := db.CommitSeq(), r.Horizon(); h < seq {
			lags = append(lags, seq-h)
		} else {
			lags = append(lags, 0)
		}
	}
	if _, err := r.CatchUp(); err != nil {
		return ReplicationBench{}, err
	}
	res := ReplicationBench{
		Commits:         commits,
		LagP50Records:   pctlU64(lags, 50),
		LagP99Records:   pctlU64(lags, 99),
		FinalLagRecords: float64(db.CommitSeq()) - float64(r.Horizon()),
	}

	reads := commits / 4
	if reads < 100 {
		reads = 100
	}
	lat := make([]time.Duration, reads)
	for i := range lat {
		start := time.Now()
		if _, err := r.RangeQuery(1, space, 10); err != nil {
			return ReplicationBench{}, err
		}
		lat[i] = time.Since(start)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.ReadP50Micros = percentile(lat, 0.50)
	return res, nil
}

func runCommitBench(path string, ops int) (CommitBench, error) {
	db, err := peb.Open(peb.Options{Path: path, Durability: peb.DurabilitySync, BufferPages: 64})
	if err != nil {
		return CommitBench{}, err
	}
	defer db.Close()
	const population = 256
	b := db.NewBatch()
	for i := 1; i <= population; i++ {
		b.Upsert(hotObj(i, 0))
	}
	if err := db.Apply(b); err != nil {
		return CommitBench{}, err
	}

	// Timed pass: per-op latency plus WAL counter deltas.
	before := db.WALStats()
	lat := make([]time.Duration, ops)
	for i := 0; i < ops; i++ {
		start := time.Now()
		if err := db.Upsert(hotObj(i%population+1, i+1)); err != nil {
			return CommitBench{}, err
		}
		lat[i] = time.Since(start)
	}
	after := db.WALStats()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

	res := CommitBench{
		Ops:           ops,
		P50Micros:     percentile(lat, 0.50),
		P99Micros:     percentile(lat, 0.99),
		FsyncsPerOp:   float64(after.Syncs-before.Syncs) / float64(ops),
		WALBytesPerOp: float64(after.BytesAppended-before.BytesAppended) / float64(ops),
	}
	// Separate alloc pass: timing calls inside the measured window would
	// charge the clock's allocations to the commit path.
	allocRuns := ops / 4
	if allocRuns < 100 {
		allocRuns = 100
	}
	res.AllocsPerOp, err = allocsPerOp(allocRuns, func(i int) error {
		return db.Upsert(hotObj(i%population+1, ops+i+2))
	})
	return res, err
}

func runCheckpointBench(path string, cycles, objs int) (CheckpointBench, error) {
	db, err := peb.Open(peb.Options{Path: path, Durability: peb.DurabilitySync, BufferPages: 64})
	if err != nil {
		return CheckpointBench{}, err
	}
	defer db.Close()
	churn := func(salt int) error {
		b := db.NewBatch()
		for i := 1; i <= objs; i++ {
			b.Upsert(hotObj(i, salt))
		}
		return db.Apply(b)
	}
	if err := churn(0); err != nil {
		return CheckpointBench{}, err
	}
	if err := db.Checkpoint(); err != nil { // the anchoring full build
		return CheckpointBench{}, err
	}
	anchor := db.CheckpointStats()
	for c := 1; c <= cycles; c++ {
		if err := churn(c); err != nil {
			return CheckpointBench{}, err
		}
		if err := db.Checkpoint(); err != nil {
			return CheckpointBench{}, err
		}
	}
	st := db.CheckpointStats()
	res := CheckpointBench{
		Cycles:            cycles,
		ObjectsPerCycle:   objs,
		FullBuilds:        st.FullBuilds,
		IncrementalBuilds: st.IncrementalBuilds,
		PagesWalkedFull:   anchor.PagesWalked,
		PagesFlushed:      st.PagesFlushed,
		PagesReclaimed:    st.PagesReclaimed,
	}
	if st.IncrementalBuilds > 0 {
		res.PagesWalkedPerIncremental =
			float64(st.PagesWalked-anchor.PagesWalked) / float64(st.IncrementalBuilds)
	}
	return res, nil
}

func runPKNNBench(queries int) (PKNNBench, error) {
	db, err := peb.Open(peb.Options{}) // in-memory: measure the query path, not page I/O
	if err != nil {
		return PKNNBench{}, err
	}
	defer db.Close()
	const friends = 39
	space := peb.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	day := peb.TimeInterval{Start: 0, End: 1440}
	// Each friend considers u1 a friend and grants friends visibility, so
	// u1's queries assemble a real candidate set rather than measuring an
	// empty result path.
	for i := 2; i <= friends+1; i++ {
		if err := db.DefineRelation(peb.UserID(i), 1, "f"); err != nil {
			return PKNNBench{}, err
		}
		if err := db.Grant(peb.UserID(i), "f", space, day); err != nil {
			return PKNNBench{}, err
		}
	}
	if err := db.EncodePolicies(); err != nil {
		return PKNNBench{}, err
	}
	for i := 1; i <= friends+1; i++ {
		if err := db.Upsert(hotObj(i, 0)); err != nil {
			return PKNNBench{}, err
		}
	}
	const k = 5
	query := func() error {
		_, err := db.NearestNeighbors(1, 500, 500, k, 10)
		return err
	}
	// Warm the pooled search state, and refuse to "measure" an empty
	// result set — that would make every counter trivially flattering.
	warm, err := db.NearestNeighbors(1, 500, 500, k, 10)
	if err != nil {
		return PKNNBench{}, err
	}
	if len(warm) != k {
		return PKNNBench{}, fmt.Errorf("pknn bench returned %d results, want %d — policy setup broken", len(warm), k)
	}
	res := PKNNBench{Friends: friends, K: k, Queries: queries}
	lat := make([]time.Duration, queries)
	for i := range lat {
		start := time.Now()
		if err := query(); err != nil {
			return PKNNBench{}, err
		}
		lat[i] = time.Since(start)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P50Micros = percentile(lat, 0.50)
	res.AllocsPerOp, err = allocsPerOp(queries, func(int) error { return query() })
	return res, err
}

// CompareHotPath diffs the report's stable counters against a baseline and
// returns one message per violated budget (empty = within budget). Each
// check allows relative-plus-absolute slack because allocation counts
// wobble slightly across Go releases and map growth boundaries; latencies
// are never compared.
func CompareHotPath(base, cur HotPathReport) []string {
	var bad []string
	check := func(name string, baseV, curV, relSlack, absSlack float64) {
		limit := baseV*(1+relSlack) + absSlack
		if curV > limit {
			bad = append(bad, fmt.Sprintf("%s: %.3f exceeds baseline %.3f (limit %.3f)",
				name, curV, baseV, limit))
		}
	}
	check("wal_codec.binary_bytes_per_record", base.Codec.BinaryBytesPerRecord, cur.Codec.BinaryBytesPerRecord, 0.05, 1)
	check("wal_codec.binary_allocs_per_op", base.Codec.BinaryAllocsPerOp, cur.Codec.BinaryAllocsPerOp, 0, 0.5)
	check("commit.allocs_per_op", base.Commit.AllocsPerOp, cur.Commit.AllocsPerOp, 0.5, 2)
	check("commit.fsyncs_per_op", base.Commit.FsyncsPerOp, cur.Commit.FsyncsPerOp, 0.1, 0.01)
	check("commit.wal_bytes_per_op", base.Commit.WALBytesPerOp, cur.Commit.WALBytesPerOp, 0.1, 4)
	check("checkpoint.pages_walked_per_incremental", base.Checkpoint.PagesWalkedPerIncremental,
		cur.Checkpoint.PagesWalkedPerIncremental, 0, 0.01)
	if cur.Checkpoint.FullBuilds > base.Checkpoint.FullBuilds {
		bad = append(bad, fmt.Sprintf("checkpoint.full_builds: %d exceeds baseline %d — the incremental chain broke",
			cur.Checkpoint.FullBuilds, base.Checkpoint.FullBuilds))
	}
	check("pknn.allocs_per_op", base.PKNN.AllocsPerOp, cur.PKNN.AllocsPerOp, 0.5, 2)
	check("replication.final_lag_records", base.Replication.FinalLagRecords, cur.Replication.FinalLagRecords, 0, 0.01)
	check("resharding.lost_objects", base.Resharding.LostObjects, cur.Resharding.LostObjects, 0, 0.01)
	if base.Resharding.Splits > 0 && cur.Resharding.Splits == 0 {
		bad = append(bad, "resharding.splits: 0 — the load-driven split never fired")
	}
	if base.Resharding.Merges > 0 && cur.Resharding.Merges == 0 {
		bad = append(bad, "resharding.merges: 0 — the cold shards never coalesced")
	}
	return bad
}
