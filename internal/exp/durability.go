package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/peb"
)

// The durability experiment measures what crash safety costs at the commit
// path: the same single-object commits run against a file-backed DB under
// each write-ahead-log sync policy, at increasing commit concurrency.
// Reported per concurrency level: mean commit latency (µs) for
// DurabilitySync (fsync before every ack), DurabilityGrouped (gathering
// window + shared fsync), and DurabilityAsync (ack before fsync), plus the
// number of physical fsyncs the sync and grouped policies performed —
// group commit's whole point is syncs ≪ commits. This is not a paper
// figure; it validates the ROADMAP's durability subsystem (PR 3).

const (
	durabilityID     = "durability"
	durabilityTitle  = "Commit latency vs. WAL sync policy (µs/commit; fsyncs shared via group commit)"
	durabilityXLabel = "committers"
)

var durabilityColumns = []string{"sync_us", "group_us", "async_us", "syncs_sync", "syncs_group"}

// durabilityCommitters is the concurrency sweep.
var durabilityCommitters = []int{1, 2, 8}

// commitBench drives committers goroutines, each performing per single-
// object commits against a fresh durable DB, and returns the mean commit
// latency and the WAL's fsync count.
func commitBench(dir string, d peb.Durability, committers, per int) (meanUS float64, syncs uint64, err error) {
	path := filepath.Join(dir, fmt.Sprintf("dur-%d-%d.idx", d, committers))
	db, err := peb.Open(peb.Options{Path: path, Durability: d})
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		total   time.Duration
		firstEr error
	)
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var local time.Duration
			for i := 0; i < per; i++ {
				uid := peb.UserID(g*1_000_000 + i + 1)
				o := peb.Object{UID: uid, X: float64(i % 1000), Y: float64(g % 1000), T: float64(i)}
				start := time.Now()
				err := db.Upsert(o)
				local += time.Since(start)
				if err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			total += local
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if firstEr != nil {
		return 0, 0, firstEr
	}
	commits := committers * per
	stats := db.WALStats()
	return float64(total.Microseconds()) / float64(commits), stats.Syncs, nil
}

var expDurability = Experiment{
	ID:      durabilityID,
	Title:   durabilityTitle,
	XLabel:  durabilityXLabel,
	Columns: durabilityColumns,
	Run: func(o Options) (*Table, error) {
		o.normalize()
		// Commits per goroutine: scaled like populations, floored so even
		// -quick exercises group sharing.
		per := int(200 * o.Scale)
		if per < 25 {
			per = 25
		}
		dir, err := os.MkdirTemp("", "pebbench-durability-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		rows := make([]Row, 0, len(durabilityCommitters))
		for _, committers := range durabilityCommitters {
			syncUS, syncSyncs, err := commitBench(dir, peb.DurabilitySync, committers, per)
			if err != nil {
				return nil, err
			}
			groupUS, groupSyncs, err := commitBench(dir, peb.DurabilityGrouped, committers, per)
			if err != nil {
				return nil, err
			}
			asyncUS, _, err := commitBench(dir, peb.DurabilityAsync, committers, per)
			if err != nil {
				return nil, err
			}
			o.logf("durability c=%d: sync %.1fµs (%d fsyncs), grouped %.1fµs (%d fsyncs), async %.1fµs over %d commits",
				committers, syncUS, syncSyncs, groupUS, groupSyncs, asyncUS, committers*per)
			rows = append(rows, Row{X: float64(committers), Vals: []float64{
				syncUS, groupUS, asyncUS, float64(syncSyncs), float64(groupSyncs),
			}})
		}
		return &Table{ID: durabilityID, Title: durabilityTitle, XLabel: durabilityXLabel,
			Columns: durabilityColumns, Rows: rows}, nil
	},
}
