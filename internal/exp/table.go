package exp

import (
	"fmt"
	"strings"
)

// Row is one data point of a result table: the sweep value plus one value
// per column.
type Row struct {
	X    float64
	Vals []float64
}

// Table is the result of one experiment: a sweep with one or more measured
// series, printable as aligned text or CSV.
type Table struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string
	Rows    []Row
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	headers := append([]string{t.XLabel}, t.Columns...)
	widths := make([]int, len(headers))
	cells := make([][]string, len(t.Rows))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for r, row := range t.Rows {
		cells[r] = make([]string, len(headers))
		cells[r][0] = formatNum(row.X)
		for c, v := range row.Vals {
			cells[r][c+1] = formatNum(v)
		}
		for c, s := range cells[r] {
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for i, h := range headers {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[i], h)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(formatNum(row.X))
		for _, v := range row.Vals {
			b.WriteByte(',')
			b.WriteString(formatNum(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
