// Package exp is the experiment harness behind every table and figure of
// the paper's empirical study (Sec. 7). Each figure is registered as an
// Experiment that, when run, generates the workload, builds the PEB-tree
// and the spatial-index baseline over identical data, replays the query
// set against both, and reports the mean I/O cost — buffer misses against
// a 50-page LRU buffer over 4 KB pages, the paper's metric — per query.
//
// Experiments accept a population scale factor so the full sweeps can be
// reproduced quickly at reduced size; shapes are preserved.
package exp

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/bxtree"
	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/spatialidx"
	"repro/internal/store"
	"repro/internal/workload"
)

// Config fixes one experimental data point (Table 1's settings).
type Config struct {
	Workload   workload.Config
	Buffer     int     // LRU buffer capacity in pages
	WindowSide float64 // PRQ window side length
	K          int     // PkNN k
	QueryCount int     // queries averaged per data point
	QueryTime  float64 // tq
}

// Defaults from Table 1 (bold values).
const (
	DefaultWindowSide = 200.0
	DefaultK          = 5
	DefaultQueryCount = 200
	DefaultQueryTime  = 60.0
)

// DefaultConfig returns the paper's default setting: 60 K uniform users,
// 50 policies per user, θ = 0.7, window 200, k = 5, 50-page buffer,
// 200 queries per measurement.
func DefaultConfig() Config {
	return Config{
		Workload:   workload.DefaultConfig(),
		Buffer:     store.DefaultBufferPages,
		WindowSide: DefaultWindowSide,
		K:          DefaultK,
		QueryCount: DefaultQueryCount,
		QueryTime:  DefaultQueryTime,
	}
}

// Testbed holds one dataset and both indexes built over it.
type Testbed struct {
	Cfg        Config
	DS         *workload.Dataset
	Assignment policy.Assignment
	// EncodeTime is the wall-clock duration of the offline policy-encoding
	// phase (sequence-value assignment), the quantity of Fig. 11.
	EncodeTime time.Duration

	PEB     *core.Tree
	Spatial *spatialidx.Index
}

// indexConfig derives the index parameters from the workload so that the
// grid, speeds, and space agree.
func indexConfig(cfg Config) (core.Config, error) {
	base := bxtree.DefaultConfig()
	grid := base.Grid
	grid.Side = cfg.Workload.Space
	base.Grid = grid
	base.MaxSpeed = cfg.Workload.MaxSpeed
	c := core.DefaultConfig()
	c.Base = base
	if err := c.Validate(); err != nil {
		return core.Config{}, err
	}
	return c, nil
}

// Build generates the dataset, runs policy encoding, and loads both
// indexes. The two indexes use separate disks and buffer pools so their
// I/O counters are independent.
func Build(cfg Config) (*Testbed, error) {
	ds, err := workload.Generate(cfg.Workload)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	assignment, err := ds.Assign()
	if err != nil {
		return nil, err
	}
	encodeTime := time.Since(start)

	pebCfg, err := indexConfig(cfg)
	if err != nil {
		return nil, err
	}
	peb, err := core.New(pebCfg, store.NewBufferPool(store.NewMemDisk(), cfg.Buffer), ds.Policies, assignment)
	if err != nil {
		return nil, err
	}
	spatial, err := spatialidx.New(pebCfg.Base, store.NewBufferPool(store.NewMemDisk(), cfg.Buffer), ds.Policies)
	if err != nil {
		return nil, err
	}
	for _, o := range ds.Objects {
		if err := peb.Insert(o); err != nil {
			return nil, err
		}
		if err := spatial.Insert(o); err != nil {
			return nil, err
		}
	}
	return &Testbed{
		Cfg:        cfg,
		DS:         ds,
		Assignment: assignment,
		EncodeTime: encodeTime,
		PEB:        peb,
		Spatial:    spatial,
	}, nil
}

// Measured is the mean per-query I/O (buffer misses) of both approaches.
type Measured struct {
	PEB     float64
	Spatial float64
}

// resetPool cold-starts a pool for a measurement run.
func resetPool(pool *store.BufferPool) error {
	if err := pool.DropAll(); err != nil {
		return err
	}
	pool.ResetStats()
	return nil
}

// MeasurePRQ replays the range queries against both indexes and returns
// their mean I/O. As a safety net against divergence, the result counts of
// the two approaches are compared query by query.
func (tb *Testbed) MeasurePRQ(qs []workload.PRQuery) (Measured, error) {
	if len(qs) == 0 {
		return Measured{}, fmt.Errorf("exp: empty query set")
	}
	counts := make([]int, len(qs))
	if err := resetPool(tb.PEB.Pool()); err != nil {
		return Measured{}, err
	}
	for i, q := range qs {
		res, err := tb.PEB.PRQ(q.Issuer, q.W, q.T)
		if err != nil {
			return Measured{}, err
		}
		counts[i] = len(res)
	}
	pebIO := float64(tb.PEB.Pool().Stats().Misses) / float64(len(qs))

	if err := resetPool(tb.Spatial.Pool()); err != nil {
		return Measured{}, err
	}
	for i, q := range qs {
		res, err := tb.Spatial.PRQ(q.Issuer, q.W, q.T)
		if err != nil {
			return Measured{}, err
		}
		if len(res) != counts[i] {
			return Measured{}, fmt.Errorf("exp: PRQ result divergence on query %d: peb %d vs spatial %d",
				i, counts[i], len(res))
		}
	}
	spatialIO := float64(tb.Spatial.Pool().Stats().Misses) / float64(len(qs))
	return Measured{PEB: pebIO, Spatial: spatialIO}, nil
}

// MeasurePKNN replays the kNN queries against both indexes and returns
// their mean I/O, cross-checking result counts.
func (tb *Testbed) MeasurePKNN(qs []workload.KNNQuery) (Measured, error) {
	if len(qs) == 0 {
		return Measured{}, fmt.Errorf("exp: empty query set")
	}
	counts := make([]int, len(qs))
	if err := resetPool(tb.PEB.Pool()); err != nil {
		return Measured{}, err
	}
	for i, q := range qs {
		res, err := tb.PEB.PKNN(q.Issuer, q.X, q.Y, q.K, q.T)
		if err != nil {
			return Measured{}, err
		}
		counts[i] = len(res)
	}
	pebIO := float64(tb.PEB.Pool().Stats().Misses) / float64(len(qs))

	if err := resetPool(tb.Spatial.Pool()); err != nil {
		return Measured{}, err
	}
	for i, q := range qs {
		res, err := tb.Spatial.PKNN(q.Issuer, q.X, q.Y, q.K, q.T)
		if err != nil {
			return Measured{}, err
		}
		if len(res) != counts[i] {
			return Measured{}, fmt.Errorf("exp: PkNN result divergence on query %d: peb %d vs spatial %d",
				i, counts[i], len(res))
		}
	}
	spatialIO := float64(tb.Spatial.Pool().Stats().Misses) / float64(len(qs))
	return Measured{PEB: pebIO, Spatial: spatialIO}, nil
}

// ApplyUpdates feeds an update batch to both indexes (Sec. 7.9).
func (tb *Testbed) ApplyUpdates(batch []motion.Object) error {
	for _, o := range batch {
		if err := tb.PEB.Update(o); err != nil {
			return err
		}
		if err := tb.Spatial.Update(o); err != nil {
			return err
		}
	}
	return nil
}

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies every population size in the sweep (default 1, the
	// paper's scale). Scaled populations are floored at 1000 users.
	Scale float64
	// Seed offsets the workload seeds, for variance studies. Default 1.
	Seed int64
	// Parallel bounds how many data points build concurrently. Default
	// min(4, GOMAXPROCS). Testbeds are large; each worker holds one.
	Parallel int
	// QueryCount overrides the number of queries per point (default 200).
	QueryCount int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
	// MonitorAddr, when non-empty, mounts the live observability endpoint
	// (repro/peb/obs: /metrics, /statusz, /debug/pprof) on this address for
	// the experiments that drive a full engine — currently the resharding
	// experiment's sharded DB. Figure experiments measure bare core.Tree
	// testbeds and have no registry to serve.
	MonitorAddr string
}

func (o *Options) normalize() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
		if o.Parallel > 4 {
			o.Parallel = 4
		}
	}
	if o.QueryCount <= 0 {
		o.QueryCount = DefaultQueryCount
	}
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// users scales a paper population size.
func (o Options) users(n int) int {
	scaled := int(math.Round(float64(n) * o.Scale))
	if scaled < 1000 {
		scaled = 1000
	}
	return scaled
}

// baseConfig returns the default config under these options.
func (o Options) baseConfig() Config {
	cfg := DefaultConfig()
	cfg.Workload.NumUsers = o.users(cfg.Workload.NumUsers)
	cfg.Workload.Seed = o.Seed
	cfg.QueryCount = o.QueryCount
	return cfg
}

// forEachPoint runs fn(i) for i in [0, n) with bounded parallelism,
// collecting the first error.
func forEachPoint(parallel, n int, fn func(i int) error) error {
	if parallel > n {
		parallel = n
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		rerr error
	)
	next := make(chan int)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if rerr == nil {
						rerr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return rerr
}
