package exp

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/peb"
	"repro/peb/sharded"
)

// The replication experiment measures what follower reads buy the query
// path: a fixed reader pool runs policy-constrained range queries flat
// out against a 2-shard durable router while one writer keeps committing
// movement updates, with (x=0) reads served by the shard primaries and
// (x=1,2,4) reads served round-robin by that many tailing replicas per
// shard under a zero staleness bound. Reported per row: read throughput,
// read latency percentiles, the fraction of reads a follower actually
// served, and the replicas' apply lag (in WAL records) sampled after
// every commit.
//
// What to expect: with a zero staleness bound every follower read pays a
// horizon check against the shard's latest routed commit, so the offload
// fraction is the honest number — a read that catches a replica mid-drain
// falls back to the primary rather than serve stale data. Apply lag stays
// small (the tailer wakes on every commit) but nonzero under load; the
// p99 is the interesting number. On a single-CPU runner the throughput
// ratio stays ~1× by construction, so CI asserts the experiment runs, not
// its ratios. This is not a paper figure; it validates the replication
// layer (ROADMAP).
const (
	replicationID     = "replication"
	replicationTitle  = "Follower-read offload (x = replicas per shard; 0 = primary reads)"
	replicationXLabel = "replicas"
)

var replicationColumns = []string{
	"reads_per_sec", "read_p50_us", "read_p99_us", "follower_share", "lag_p50_recs", "lag_p99_recs",
}

// pctlU64 returns the p-th percentile of unsorted uint64 samples.
func pctlU64(samples []uint64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return float64(sorted[idx])
}

// replicationSetup builds the social graph the readers query through:
// every user considers u1 a friend and grants friends full visibility, so
// u1's range queries assemble real result sets.
func replicationSetup(db *sharded.DB, users int) error {
	space := sharded.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	day := sharded.TimeInterval{Start: 0, End: 1440}
	for i := 2; i <= users; i++ {
		if err := db.DefineRelation(sharded.UserID(i), 1, "f"); err != nil {
			return err
		}
		if err := db.Grant(sharded.UserID(i), "f", space, day); err != nil {
			return err
		}
	}
	if err := db.EncodePolicies(); err != nil {
		return err
	}
	for i := 1; i <= users; i++ {
		if err := db.Upsert(shardingObj(i, 0)); err != nil {
			return err
		}
	}
	return nil
}

var expReplication = Experiment{
	ID:      replicationID,
	Title:   replicationTitle,
	XLabel:  replicationXLabel,
	Columns: replicationColumns,
	Run: func(o Options) (*Table, error) {
		o.normalize()
		reads := int(4000 * o.Scale)
		if reads < 400 {
			reads = 400
		}
		const readers = 4
		users := reads / 8
		if users < 64 {
			users = 64
		}
		dir, err := os.MkdirTemp("", "pebbench-replication-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		window := sharded.Region{MinX: 100, MinY: 100, MaxX: 900, MaxY: 900}
		variants := []int{0, 1, 2, 4}
		rows := make([]Row, 0, len(variants))
		for _, replicas := range variants {
			db, err := sharded.Open(sharded.Options{
				Shards:           2,
				Dir:              fmt.Sprintf("%s/rep-%d", dir, replicas),
				DB:               peb.Options{Durability: peb.DurabilityGrouped},
				ReplicasPerShard: replicas,
			})
			if err != nil {
				return nil, err
			}
			if err := replicationSetup(db, users); err != nil {
				db.Close()
				return nil, fmt.Errorf("replication x=%d: setup: %w", replicas, err)
			}

			// One writer commits continuously (sampling apply lag after
			// every commit) while the reader pool drains its query budget.
			var (
				wg, wwg sync.WaitGroup
				mu      sync.Mutex
				lat     = make([]time.Duration, 0, reads)
				lags    []uint64
				runErr  error
			)
			fail := func(e error) {
				mu.Lock()
				if runErr == nil {
					runErr = e
				}
				mu.Unlock()
			}
			done := make(chan struct{})
			wwg.Add(1)
			go func() {
				defer wwg.Done()
				for salt := 1; ; salt++ {
					select {
					case <-done:
						return
					default:
					}
					uid := salt%users + 1
					if err := db.Upsert(shardingObj(uid, salt)); err != nil {
						fail(fmt.Errorf("writer: %w", err))
						return
					}
					for _, pool := range db.FollowerLags() {
						mu.Lock()
						lags = append(lags, pool...)
						mu.Unlock()
					}
				}
			}()
			start := time.Now()
			per := reads / readers
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					local := make([]time.Duration, 0, per)
					for i := 0; i < per; i++ {
						s := time.Now()
						if _, err := db.RangeQuery(1, window, float64(i%50)); err != nil {
							fail(fmt.Errorf("reader %d: %w", w, err))
							return
						}
						local = append(local, time.Since(s))
					}
					mu.Lock()
					lat = append(lat, local...)
					mu.Unlock()
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(done)
			wwg.Wait()
			st := db.Stats()
			if err := db.Close(); err != nil && runErr == nil {
				runErr = err
			}
			if runErr != nil {
				return nil, fmt.Errorf("replication x=%d: %w", replicas, runErr)
			}

			share := 0.0
			if total := st.FollowerReads + st.PrimaryFallbacks; replicas > 0 && total > 0 {
				share = float64(st.FollowerReads) / float64(total)
			}
			throughput := float64(len(lat)) / elapsed.Seconds()
			o.logf("replication x=%d: %d reads in %v (%.0f/s), p50 %v p99 %v, follower share %.2f, lag p50/p99 %.0f/%.0f recs",
				replicas, len(lat), elapsed.Round(time.Millisecond), throughput,
				pctl(lat, 50), pctl(lat, 99), share, pctlU64(lags, 50), pctlU64(lags, 99))
			rows = append(rows, Row{X: float64(replicas), Vals: []float64{
				throughput,
				float64(pctl(lat, 50).Microseconds()),
				float64(pctl(lat, 99).Microseconds()),
				share,
				pctlU64(lags, 50),
				pctlU64(lags, 99),
			}})
		}
		return &Table{ID: replicationID, Title: replicationTitle, XLabel: replicationXLabel,
			Columns: replicationColumns, Rows: rows}, nil
	},
}
