package exp

import (
	"strings"
	"testing"
)

// tinyOptions makes experiments fast enough for unit testing: populations
// floor at 1000 users and 20 queries per point.
func tinyOptions() Options {
	return Options{Scale: 0.0001, QueryCount: 20, Parallel: 4}
}

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Workload.NumUsers = 1500
	cfg.Workload.PoliciesPerUser = 10
	cfg.Workload.GroupSize = 30
	cfg.QueryCount = 25
	return cfg
}

func TestBuildTestbed(t *testing.T) {
	tb, err := Build(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tb.PEB.Size() != 1500 || tb.Spatial.Size() != 1500 {
		t.Fatalf("sizes = %d, %d; want 1500", tb.PEB.Size(), tb.Spatial.Size())
	}
	if tb.EncodeTime <= 0 {
		t.Error("encode time not recorded")
	}
	if len(tb.Assignment.SV) != 1500 {
		t.Errorf("assignment covers %d users", len(tb.Assignment.SV))
	}
}

func TestMeasurePRQAndPKNN(t *testing.T) {
	tb, err := Build(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	prq := tb.DS.GenPRQueries(25, 200, 60)
	m, err := tb.MeasurePRQ(prq)
	if err != nil {
		t.Fatal(err)
	}
	if m.PEB <= 0 || m.Spatial <= 0 {
		t.Errorf("non-positive I/O: %+v", m)
	}
	knn := tb.DS.GenKNNQueries(25, 5, 60)
	m, err = tb.MeasurePKNN(knn)
	if err != nil {
		t.Fatal(err)
	}
	if m.PEB <= 0 || m.Spatial <= 0 {
		t.Errorf("non-positive kNN I/O: %+v", m)
	}
}

func TestMeasureEmptyQueries(t *testing.T) {
	tb, err := Build(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.MeasurePRQ(nil); err == nil {
		t.Error("empty PRQ set accepted")
	}
	if _, err := tb.MeasurePKNN(nil); err == nil {
		t.Error("empty PkNN set accepted")
	}
}

func TestByID(t *testing.T) {
	for _, e := range Experiments {
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%q) failed", e.ID)
		}
		if e.Title == "" || e.XLabel == "" || len(e.Columns) == 0 || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
	// IDs must be unique.
	seen := make(map[string]bool)
	for _, e := range Experiments {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestExperimentsSmoke runs every registered experiment at minimum scale
// and validates the result tables' structure.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds many testbeds")
	}
	o := tinyOptions()
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table id %q, want %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tbl.Rows {
				if len(row.Vals) != len(tbl.Columns) {
					t.Fatalf("row %g has %d values, want %d", row.X, len(row.Vals), len(tbl.Columns))
				}
			}
		})
	}
}

func TestTableFormats(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo", XLabel: "n",
		Columns: []string{"a", "b"},
		Rows:    []Row{{X: 1, Vals: []float64{2, 3.5}}, {X: 10, Vals: []float64{20, 30}}},
	}
	s := tbl.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "3.500") {
		t.Errorf("String output missing content:\n%s", s)
	}
	csv := tbl.CSV()
	want := "n,a,b\n1,2,3.500\n10,20,30\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	o.normalize()
	if o.Scale != 1 || o.Seed != 1 || o.Parallel < 1 || o.QueryCount != DefaultQueryCount {
		t.Errorf("normalized = %+v", o)
	}
	if n := (Options{Scale: 0.001}).users(60_000); n != 1000 {
		t.Errorf("users floor = %d, want 1000", n)
	}
	if n := (Options{Scale: 0.5}).users(60_000); n != 30_000 {
		t.Errorf("users(0.5 × 60K) = %d", n)
	}
}
