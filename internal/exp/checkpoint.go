package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/peb"
)

// The checkpoint experiment measures what a checkpoint costs the serving
// path: one committer and one querier run flat out against a file-backed
// durable DB while checkpoints happen, and the experiment reports their
// p50/p99/max latencies plus the total write-lock stall the checkpoints
// imposed (CheckpointStats: cut + publish phases, plus build under
// stop-the-world). Three modes, one row each:
//
//	x=0  stw     Options.StopTheWorldCheckpoints — the whole pipeline in
//	             one write-lock critical section (the pre-phased
//	             behavior); the baseline.
//	x=1  phased  the default pipeline — only cut and publish lock.
//	x=2  auto    no manual Checkpoint calls at all: AutoCheckpoint
//	             triggers from the WAL record threshold (steady state).
//
// Stall time, not throughput ratios, is the headline number: the CI box
// has one CPU, so a background build phase still steals cycles — what the
// pipeline eliminates is the *lock-held* window where every commit and
// query must wait, and that is what stall_ms reports. This is not a paper
// figure; it validates the phased checkpoint pipeline (ROADMAP).
const (
	checkpointID     = "checkpoint"
	checkpointTitle  = "Commit/query latency with checkpoints running (mode 0=stw 1=phased 2=auto)"
	checkpointXLabel = "mode"
)

var checkpointColumns = []string{
	"commit_p50_us", "commit_p99_us", "commit_max_us",
	"query_p99_us", "stall_ms", "ckpts",
}

// pctl returns the p-th percentile (0 < p ≤ 100) of the samples.
func pctl(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*p/100) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// checkpointBench runs one mode and returns the latency samples and the
// DB's final checkpoint statistics.
func checkpointBench(dir, mode string, commits, preload int) (commitLat, queryLat []time.Duration, st peb.CheckpointStats, err error) {
	opts := peb.Options{
		Path:       filepath.Join(dir, "ckpt-"+mode+".idx"),
		Durability: peb.DurabilityGrouped,
		// Size the buffer to the index so the build phase's page flushing,
		// not miss-path serialization, is the effect under test.
		BufferPages:             preload/8 + 256,
		StopTheWorldCheckpoints: mode == "stw",
	}
	if mode == "auto" {
		opts.AutoCheckpoint = peb.AutoCheckpointPolicy{WALRecords: uint64(commits / 4)}
	}
	db, err := peb.Open(opts)
	if err != nil {
		return nil, nil, st, err
	}
	defer db.Close()

	obj := func(uid, salt int) peb.Object {
		return peb.Object{
			UID: peb.UserID(uid),
			X:   float64((uid*37 + salt*131) % 1000),
			Y:   float64((uid*59 + salt*17) % 1000),
			T:   float64(salt % 50),
		}
	}
	// Preload the population and enough policies that the measured range
	// query scans real leaves: users grant visibility to user 1's role.
	day := peb.TimeInterval{Start: 0, End: 1440}
	space := peb.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	b := db.NewBatch()
	for i := 1; i <= preload; i++ {
		b.Upsert(obj(i, 0))
	}
	grantors := preload
	if grantors > 200 {
		grantors = 200
	}
	for i := 2; i <= grantors; i++ {
		b.DefineRelation(peb.UserID(i), 1, "f")
		b.Grant(peb.UserID(i), "f", space, day)
	}
	if err := db.Apply(b); err != nil {
		return nil, nil, st, err
	}
	if err := db.EncodePolicies(); err != nil {
		return nil, nil, st, err
	}
	if err := db.Checkpoint(); err != nil { // baseline image; the measured ones are incremental
		return nil, nil, st, err
	}

	var (
		done   atomic.Bool
		wg     sync.WaitGroup
		qLat   []time.Duration
		qErr   error
		ckptWG sync.WaitGroup
	)
	ckptErrs := make(chan error, 3) // one slot per triggered checkpoint
	all := peb.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	wg.Add(1)
	go func() { // querier
		defer wg.Done()
		for !done.Load() {
			start := time.Now()
			if _, e := db.RangeQuery(1, all, 30); e != nil {
				qErr = e
				return
			}
			if len(qLat) < 1<<20 { // bound memory on long runs
				qLat = append(qLat, time.Since(start))
			}
		}
	}()

	commitLat = make([]time.Duration, 0, commits)
	trigger := map[int]bool{commits / 4: true, commits / 2: true, 3 * commits / 4: true}
	for i := 1; i <= commits; i++ {
		if mode != "auto" && trigger[i] {
			// Fire the checkpoint alongside the load; under stw its whole
			// pipeline holds the write lock, under phased only cut+publish.
			ckptWG.Add(1)
			go func() {
				defer ckptWG.Done()
				if e := db.Checkpoint(); e != nil {
					select {
					case ckptErrs <- e:
					default:
					}
				}
			}()
		}
		start := time.Now()
		e := db.Upsert(obj(i%preload+1, i))
		commitLat = append(commitLat, time.Since(start))
		if e != nil {
			done.Store(true)
			wg.Wait()
			return nil, nil, st, e
		}
	}
	ckptWG.Wait()
	done.Store(true)
	wg.Wait()
	if qErr != nil {
		return nil, nil, st, qErr
	}
	select {
	case e := <-ckptErrs:
		return nil, nil, st, e
	default:
	}
	return commitLat, qLat, db.CheckpointStats(), nil
}

var expCheckpoint = Experiment{
	ID:      checkpointID,
	Title:   checkpointTitle,
	XLabel:  checkpointXLabel,
	Columns: checkpointColumns,
	Run: func(o Options) (*Table, error) {
		o.normalize()
		commits := int(2000 * o.Scale)
		if commits < 200 {
			commits = 200
		}
		preload := int(4000 * o.Scale)
		if preload < 300 {
			preload = 300
		}
		dir, err := os.MkdirTemp("", "pebbench-checkpoint-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		modes := []string{"stw", "phased", "auto"}
		rows := make([]Row, 0, len(modes))
		for x, mode := range modes {
			cLat, qLat, st, err := checkpointBench(dir, mode, commits, preload)
			if err != nil {
				return nil, fmt.Errorf("checkpoint mode %s: %w", mode, err)
			}
			// The write-lock stall the checkpoints imposed: cut+publish
			// always hold it; under stop-the-world the build does too.
			stall := st.TotalCut + st.TotalPublish
			if mode == "stw" {
				stall += st.TotalBuild
			}
			o.logf("checkpoint %s: %d ckpts (%d auto, %d coalesced), commit p99 %v max %v, query p99 %v, stall %v (cut %v build %v publish %v), %d pages flushed, %d reclaimed, %d wal bytes truncated",
				mode, st.Checkpoints, st.AutoTriggered, st.Coalesced,
				pctl(cLat, 99), pctl(cLat, 100), pctl(qLat, 99),
				stall, st.TotalCut, st.TotalBuild, st.TotalPublish,
				st.PagesFlushed, st.PagesReclaimed, st.WALBytesTruncated)
			rows = append(rows, Row{X: float64(x), Vals: []float64{
				float64(pctl(cLat, 50).Microseconds()),
				float64(pctl(cLat, 99).Microseconds()),
				float64(pctl(cLat, 100).Microseconds()),
				float64(pctl(qLat, 99).Microseconds()),
				float64(stall.Milliseconds()) + float64(stall.Microseconds()%1000)/1000,
				float64(st.Checkpoints),
			}})
		}
		return &Table{ID: checkpointID, Title: checkpointTitle, XLabel: checkpointXLabel,
			Columns: checkpointColumns, Rows: rows}, nil
	},
}
