package exp

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/peb"
	pebobs "repro/peb/obs"
	"repro/peb/sharded"
)

// The resharding experiment measures what load-driven topology change buys
// a skewed commit stream. The space is provisioned as 8 uniform Hilbert
// ranges — the right layout for uniform load — but the workload is
// rush-hour: a fixed committer pool sends 70% of its updates into one
// small hot rectangle that routes to a single shard, while the rest
// trickles uniformly across all eight. Row x=0 keeps the static topology:
// one shard absorbs the burst while seven idle shards each keep their own
// WAL, group-commit pipeline, and fsync stream alive for a few commits per
// second. Row x=1 turns the AutoReshard maintainer on: the hot shard's
// EWMA commit rate trips the split threshold and its range splits at the
// observed population median while serving; the cold shards' rates sit
// under the merge threshold and their ranges coalesce. The topology
// converges to load-proportional shards — two hot halves plus one or two
// merged cold ranges — and the measured phase runs on that settled layout.
//
// Reported per row: aggregate commit throughput, the p99 latency of the
// hot-rectangle commits, the final shard count, and the automatic splits
// and merges that fired. The split/merge thresholds are derived from the
// static row's measured throughput (60% and 15% of it), so the trigger
// tracks the machine instead of hard-coding a rate.
//
// What to expect: the fitted topology beats the static one on both
// columns — the hot range's commits spread over two pipelines while the
// cold ranges stop fragmenting the group-commit batches eight ways. CI
// asserts the stable facts (the split and the merges fired, no object was
// lost); the latency columns are the trajectory. This is not a paper
// figure; it validates the dynamic resharding engine (ROADMAP).
const (
	reshardingID     = "resharding"
	reshardingTitle  = "Skewed commits: static 8-shard layout vs load-driven resharding (x = 1)"
	reshardingXLabel = "auto_reshard"
)

// reshardStaticShards is the provisioned-for-uniform-load topology both
// variants start from.
const reshardStaticShards = 8

var reshardingColumns = []string{
	"commits_per_sec", "hot_commit_p99_us", "shards_final", "splits", "merges",
}

// reshardObj derives commit salt's position for user uid. Users with
// uid%10 < 7 live inside the hot rectangle [50,200)² — entirely within the
// curve's first 1/16th, so the 8-shard uniform layout routes all of them
// to shard 0 — and the rest roam the whole space. A hot user's position is
// a function of uid alone (its updates advance only T), so a split never
// turns the hot stream into cross-shard rehomes: the measurement isolates
// the topology effect.
func reshardObj(uid, salt int) peb.Object {
	if uid%10 < 7 {
		return peb.Object{
			UID: peb.UserID(uid),
			X:   float64(50 + (uid*13)%150),
			Y:   float64(50 + (uid*29)%150),
			T:   float64(salt % 50),
		}
	}
	return peb.Object{
		UID: peb.UserID(uid),
		X:   float64((uid*37 + salt*131) % 1000),
		Y:   float64((uid*59 + salt*17) % 1000),
		T:   float64(salt % 50),
	}
}

// reshardDrive runs the committer pool for one phase, collecting the
// latency of every hot-rectangle commit.
func reshardDrive(commits, committers, users, saltBase int,
	upsert func(peb.Object) error) (hotLat []time.Duration, ops int, elapsed time.Duration, err error) {

	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	errCh := make(chan error, committers)
	per := commits / committers
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				uid := w*users/committers + i%(users/committers) + 1
				o := reshardObj(uid, saltBase+i)
				s := time.Now()
				e := upsert(o)
				d := time.Since(s)
				if e != nil {
					select {
					case errCh <- e:
					default:
					}
					return
				}
				if uid%10 < 7 {
					local = append(local, d)
				}
			}
			mu.Lock()
			hotLat = append(hotLat, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed = time.Since(start)
	select {
	case err = <-errCh:
	default:
	}
	return hotLat, committers * per, elapsed, err
}

// reshardUsers sizes the population: a multiple of the committer count, so
// the pool's uid arithmetic covers every user exactly and the post-run
// Size() has a precise expectation.
func reshardUsers(commits, committers int) int {
	users := commits / 4
	users -= users % committers
	if users < 4*committers {
		users = 4 * committers
	}
	return users
}

// reshardResult is one variant's measured phase.
type reshardResult struct {
	opsPerSec float64
	hotP99    time.Duration
	shards    int
	splits    uint64
	merges    uint64
	size      int
}

// reshardQuiet summarizes one Stats() poll for the convergence wait: the
// topology is settled when this is unchanged across consecutive polls and
// no migration is in flight.
type reshardQuiet struct {
	shards, splits, merges uint64
	inFlight               bool
}

func reshardObserve(st sharded.Stats) reshardQuiet {
	q := reshardQuiet{shards: uint64(len(st.Shards)), splits: st.Splits, merges: st.Merges}
	for _, ss := range st.Shards {
		if ss.NoRoute || ss.Cover != ss.Route {
			q.inFlight = true // a merge is draining or a split's covers have not contracted
		}
	}
	return q
}

// reshardRun opens one sharded DB on the 8-uniform layout and measures one
// phase of the skewed workload against it. splitRate > 0 turns the
// AutoReshard maintainer on with the given thresholds; the run then keeps
// driving load until the topology has converged — the split fired, no
// migration is in flight, and nothing changed across three consecutive
// polls — so the measured phase sees the settled layout.
func reshardRun(dir string, commits, committers, users int, splitRate, mergeRate float64, mon string) (reshardResult, error) {
	opts := sharded.Options{
		Shards: reshardStaticShards,
		Dir:    dir,
		DB:     peb.Options{Durability: peb.DurabilityGrouped},
	}
	dynamic := splitRate > 0
	if dynamic {
		opts.LoadRateHalfLife = 100 * time.Millisecond
		opts.AutoReshard = sharded.AutoReshardPolicy{
			Interval:        10 * time.Millisecond,
			SplitCommitRate: splitRate,
			MergeCommitRate: mergeRate,
			// One split beyond the provisioned count is enough for the hot
			// range; merges then reclaim the cold shards.
			MaxShards: reshardStaticShards + 1,
		}
	}
	db, err := sharded.Open(opts)
	if err != nil {
		return reshardResult{}, err
	}
	defer db.Close()
	if mon != "" {
		srv, err := pebobs.Serve(mon, pebobs.ForSharded(db))
		if err != nil {
			return reshardResult{}, fmt.Errorf("resharding: monitor endpoint: %w", err)
		}
		defer srv.Close()
	}

	// Warm phase: both variants drive the same unmeasured volume, so the
	// measured phases start from comparable WAL and page state; the dynamic
	// variant then keeps bursting until the maintainer has reshaped the
	// topology and the layout has settled.
	salt := 1
	if _, _, _, err := reshardDrive(commits, committers, users, salt, db.Upsert); err != nil {
		return reshardResult{}, err
	}
	salt += commits
	if dynamic {
		deadline := time.Now().Add(20 * time.Second)
		stable, last := 0, reshardQuiet{}
		for {
			q := reshardObserve(db.Stats())
			if q.splits >= 1 && !q.inFlight && q == last {
				stable++
				if stable >= 3 {
					break
				}
			} else {
				stable = 0
			}
			last = q
			if time.Now().After(deadline) {
				if q.splits == 0 {
					return reshardResult{}, fmt.Errorf("resharding: no automatic split after 20s of hot load")
				}
				break // split fired; settle for a still-moving tail
			}
			if _, _, _, err := reshardDrive(400, committers, users, salt, db.Upsert); err != nil {
				return reshardResult{}, err
			}
			salt += 400
		}
	}

	hotLat, ops, elapsed, err := reshardDrive(commits, committers, users, salt, db.Upsert)
	if err != nil {
		return reshardResult{}, err
	}
	st := db.Stats()
	return reshardResult{
		opsPerSec: float64(ops) / elapsed.Seconds(),
		hotP99:    pctl(hotLat, 99),
		shards:    len(st.Shards),
		splits:    st.Splits,
		merges:    st.Merges,
		size:      db.Size(),
	}, db.Close()
}

// reshardThresholds derives the maintainer's trigger rates from the static
// run's measured throughput: the hot shard carries ~70% of it (the halves
// ~35% each), the cold shards ~3.75% each, so 60%/15% split the hot range
// once and coalesce the cold ranges — and then hold still. The split
// margin is deliberately wide at the top: the fitted topology commits
// ~20-30% faster than the static one, which lifts every shard's rate by
// the same factor, and the halves must stay under the threshold even so.
func reshardThresholds(staticOpsPerSec float64) (split, merge float64) {
	return 0.60 * staticOpsPerSec, 0.15 * staticOpsPerSec
}

var expResharding = Experiment{
	ID:      reshardingID,
	Title:   reshardingTitle,
	XLabel:  reshardingXLabel,
	Columns: reshardingColumns,
	Run: func(o Options) (*Table, error) {
		o.normalize()
		commits := int(6000 * o.Scale)
		if commits < 400 {
			commits = 400
		}
		const committers = 16
		users := reshardUsers(commits, committers)
		dir, err := os.MkdirTemp("", "pebbench-resharding-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		static, err := reshardRun(filepath.Join(dir, "static"), commits, committers, users, 0, 0, o.MonitorAddr)
		if err != nil {
			return nil, fmt.Errorf("resharding static: %w", err)
		}
		splitRate, mergeRate := reshardThresholds(static.opsPerSec)
		dyn, err := reshardRun(filepath.Join(dir, "dynamic"), commits, committers, users, splitRate, mergeRate, o.MonitorAddr)
		if err != nil {
			return nil, fmt.Errorf("resharding dynamic: %w", err)
		}

		rows := make([]Row, 0, 2)
		for _, r := range []struct {
			x   float64
			res reshardResult
		}{{0, static}, {1, dyn}} {
			o.logf("resharding x=%g: %.0f commits/s, hot p99 %v, %d shards, %d splits, %d merges",
				r.x, r.res.opsPerSec, r.res.hotP99, r.res.shards, r.res.splits, r.res.merges)
			rows = append(rows, Row{X: r.x, Vals: []float64{
				r.res.opsPerSec,
				float64(r.res.hotP99.Microseconds()),
				float64(r.res.shards),
				float64(r.res.splits),
				float64(r.res.merges),
			}})
		}
		return &Table{ID: reshardingID, Title: reshardingTitle, XLabel: reshardingXLabel,
			Columns: reshardingColumns, Rows: rows}, nil
	},
}

// runReshardingBench is the hot-path report's view of the same workload:
// the static 8-shard phase, then the dynamic phase measured after the
// maintainer has reshaped the topology around the load. The stable facts
// CI gates on are that the split and the merges fired and that no object
// was lost or duplicated; the latency and throughput fields are the
// machine-dependent trajectory.
func runReshardingBench(dir string, commits int) (ReshardingBench, error) {
	const committers = 16
	users := reshardUsers(commits, committers)
	static, err := reshardRun(filepath.Join(dir, "static"), commits, committers, users, 0, 0, "")
	if err != nil {
		return ReshardingBench{}, fmt.Errorf("static phase: %w", err)
	}
	splitRate, mergeRate := reshardThresholds(static.opsPerSec)
	dyn, err := reshardRun(filepath.Join(dir, "dynamic"), commits, committers, users, splitRate, mergeRate, "")
	if err != nil {
		return ReshardingBench{}, fmt.Errorf("dynamic phase: %w", err)
	}
	return ReshardingBench{
		Commits:            commits,
		ShardsBefore:       static.shards,
		ShardsAfter:        dyn.shards,
		Splits:             dyn.splits,
		Merges:             dyn.merges,
		LostObjects:        math.Abs(float64(users - dyn.size)),
		HotP99StaticMicros: float64(static.hotP99.Microseconds()),
		HotP99SplitMicros:  float64(dyn.hotP99.Microseconds()),
		OpsPerSecStatic:    static.opsPerSec,
		OpsPerSecSplit:     dyn.opsPerSec,
	}, nil
}
