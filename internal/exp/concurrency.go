package exp

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/workload"
	"repro/peb"
)

// This file measures the DB-level concurrency model rather than a paper
// figure: peb.DB serves queries under a read lock against an immutable
// index snapshot, so PRQ throughput should grow with reader goroutines,
// while a serialized DB (the pre-concurrency design: one mutex around
// every call) stays flat. The "scaling" experiment reports both, plus
// their ratio, at 1/2/4/8 goroutines.
//
// Throughput here is wall-clock queries per second, not the paper's I/O
// metric: lock scaling is invisible to buffer-miss counts. Speedup beyond
// 1× requires actual parallel hardware (GOMAXPROCS > 1); on a single core
// the two designs should tie, which the experiment also makes visible.

// scalingGoroutines are the reader counts swept by the experiment.
var scalingGoroutines = []int{1, 2, 4, 8}

// BuildDB assembles a peb.DB over a generated workload via the public API:
// the dataset's policy store is snapshotted into the DB (which re-runs
// policy encoding), then the whole population is bulk-loaded with one
// staged Batch — one lock acquisition and one view republish, the handle
// the API provides for exactly this. bufferPages sizes the LRU buffer;
// pass 0 for an index-resident buffer, which isolates lock-and-snapshot
// scaling from eviction churn.
func BuildDB(cfg Config, bufferPages int) (*peb.DB, *workload.Dataset, error) {
	ds, err := workload.Generate(cfg.Workload)
	if err != nil {
		return nil, nil, err
	}
	if bufferPages == 0 {
		// Leaves are at least half full, so this comfortably covers every
		// node page of the tree plus the internal levels.
		bufferPages = cfg.Workload.NumUsers/16 + 256
	}
	db, err := peb.Open(peb.Options{
		SpaceSide:   cfg.Workload.Space,
		DayLength:   cfg.Workload.DayLen,
		MaxSpeed:    cfg.Workload.MaxSpeed,
		BufferPages: bufferPages,
	})
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := ds.Policies.Save(&buf); err != nil {
		db.Close()
		return nil, nil, err
	}
	if err := db.LoadPolicies(&buf); err != nil {
		db.Close()
		return nil, nil, err
	}
	batch := db.NewBatch()
	for _, o := range ds.Objects {
		batch.Upsert(o)
	}
	if err := db.Apply(batch); err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, ds, nil
}

// measureThroughput replays total range queries split across g goroutines
// and returns queries per second. With serialized set, every query
// additionally acquires one global mutex — the pre-concurrency baseline.
func measureThroughput(db *peb.DB, qs []workload.PRQuery, g, total int, serialized bool) (float64, error) {
	var serialMu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, g)
	start := time.Now()
	for w := 0; w < g; w++ {
		lo, hi := w*total/g, (w+1)*total/g
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				q := qs[i%len(qs)]
				r := peb.Region{MinX: q.W.MinX, MinY: q.W.MinY, MaxX: q.W.MaxX, MaxY: q.W.MaxY}
				if serialized {
					serialMu.Lock()
				}
				_, err := db.RangeQuery(q.Issuer, r, q.T)
				if serialized {
					serialMu.Unlock()
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(total) / elapsed.Seconds(), nil
}

const (
	scalingID     = "scaling"
	scalingTitle  = "Concurrent PRQ throughput vs. reader goroutines (RWMutex+snapshot vs. serialized)"
	scalingXLabel = "goroutines"
)

var scalingColumns = []string{"qps_concurrent", "qps_serialized", "speedup"}

var expScaling = Experiment{
	ID:      scalingID,
	Title:   scalingTitle,
	XLabel:  scalingXLabel,
	Columns: scalingColumns,
	Run: func(o Options) (*Table, error) {
		o.normalize()
		cfg := o.baseConfig()
		db, ds, err := BuildDB(cfg, 0)
		if err != nil {
			return nil, err
		}
		defer db.Close()
		qs := ds.GenPRQueries(cfg.QueryCount, cfg.WindowSide, cfg.QueryTime)
		if len(qs) == 0 {
			return nil, fmt.Errorf("scaling: empty query set")
		}
		// Warm the buffer so every timed pass reads index-resident pages.
		if _, err := measureThroughput(db, qs, 1, len(qs), false); err != nil {
			return nil, err
		}

		total := 4 * len(qs)
		rows := make([]Row, 0, len(scalingGoroutines))
		for _, g := range scalingGoroutines {
			conc, err := measureThroughput(db, qs, g, total, false)
			if err != nil {
				return nil, err
			}
			serial, err := measureThroughput(db, qs, g, total, true)
			if err != nil {
				return nil, err
			}
			speedup := 0.0
			if serial > 0 {
				speedup = conc / serial
			}
			o.logf("scaling g=%d: concurrent=%.0f qps serialized=%.0f qps (%.2fx)", g, conc, serial, speedup)
			rows = append(rows, Row{X: float64(g), Vals: []float64{conc, serial, speedup}})
		}
		return &Table{ID: scalingID, Title: scalingTitle, XLabel: scalingXLabel,
			Columns: scalingColumns, Rows: rows}, nil
	},
}
