package exp

import (
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/workload"
)

// NewPEBVariant builds a second PEB-tree over the testbed's dataset and
// assignment with a modified configuration (different key layout, curve, or
// search order). The variant gets its own disk and buffer pool so I/O
// comparisons are independent. Used by the ablation experiments.
func (tb *Testbed) NewPEBVariant(mutate func(*core.Config)) (*core.Tree, error) {
	cfg := tb.PEB.Config()
	mutate(&cfg)
	tree, err := core.New(cfg, store.NewBufferPool(store.NewMemDisk(), tb.Cfg.Buffer), tb.DS.Policies, tb.Assignment)
	if err != nil {
		return nil, err
	}
	for _, o := range tb.DS.Objects {
		if err := tree.Insert(o); err != nil {
			return nil, err
		}
	}
	return tree, nil
}

// MeasurePRQOn replays range queries against a single PEB-tree (variant or
// primary) and returns its mean I/O.
func MeasurePRQOn(t *core.Tree, qs []workload.PRQuery) (float64, error) {
	if err := resetPool(t.Pool()); err != nil {
		return 0, err
	}
	for _, q := range qs {
		if _, err := t.PRQ(q.Issuer, q.W, q.T); err != nil {
			return 0, err
		}
	}
	return float64(t.Pool().Stats().Misses) / float64(len(qs)), nil
}

// MeasurePKNNOn replays kNN queries against a single PEB-tree and returns
// its mean I/O.
func MeasurePKNNOn(t *core.Tree, qs []workload.KNNQuery) (float64, error) {
	if err := resetPool(t.Pool()); err != nil {
		return 0, err
	}
	for _, q := range qs {
		if _, err := t.PKNN(q.Issuer, q.X, q.Y, q.K, q.T); err != nil {
			return 0, err
		}
	}
	return float64(t.Pool().Stats().Misses) / float64(len(qs)), nil
}
