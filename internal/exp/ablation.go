package exp

import (
	"repro/internal/bxtree"
	"repro/internal/core"
)

// Ablation experiments isolate the PEB-tree's design choices that Sec. 5
// argues for: SV-above-ZV key ordering, the triangular search order, and
// the choice of space-filling curve.

var expAblationKeyOrder = Experiment{
	ID:      "ablation-keyorder",
	Title:   "Key layout ablation: SV-first (paper) vs. ZV-first keys",
	XLabel:  "users",
	Columns: []string{"svfirst_prq", "zvfirst_prq", "svfirst_pknn", "zvfirst_pknn"},
	Run: func(o Options) (*Table, error) {
		o.normalize()
		paperNs := []int{10_000, 30_000, 60_000}
		rows := make([]Row, len(paperNs))
		err := forEachPoint(o.Parallel, len(paperNs), func(i int) error {
			cfg := o.baseConfig()
			cfg.Workload.NumUsers = o.users(paperNs[i])
			tb, err := Build(cfg)
			if err != nil {
				return err
			}
			zvTree, err := tb.NewPEBVariant(func(c *core.Config) { c.Layout = core.ZVFirst })
			if err != nil {
				return err
			}
			prqs := tb.DS.GenPRQueries(cfg.QueryCount, cfg.WindowSide, cfg.QueryTime)
			knns := tb.DS.GenKNNQueries(cfg.QueryCount, cfg.K, cfg.QueryTime)
			svPRQ, err := MeasurePRQOn(tb.PEB, prqs)
			if err != nil {
				return err
			}
			zvPRQ, err := MeasurePRQOn(zvTree, prqs)
			if err != nil {
				return err
			}
			svKNN, err := MeasurePKNNOn(tb.PEB, knns)
			if err != nil {
				return err
			}
			zvKNN, err := MeasurePKNNOn(zvTree, knns)
			if err != nil {
				return err
			}
			o.logf("ablation-keyorder N=%d: prq %.1f vs %.1f, pknn %.1f vs %.1f",
				cfg.Workload.NumUsers, svPRQ, zvPRQ, svKNN, zvKNN)
			rows[i] = Row{X: float64(cfg.Workload.NumUsers), Vals: []float64{svPRQ, zvPRQ, svKNN, zvKNN}}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return &Table{ID: "ablation-keyorder", Title: "Key layout ablation: SV-first (paper) vs. ZV-first keys",
			XLabel: "users", Columns: []string{"svfirst_prq", "zvfirst_prq", "svfirst_pknn", "zvfirst_pknn"}, Rows: rows}, nil
	},
}

var expAblationSearchOrder = Experiment{
	ID:      "ablation-searchorder",
	Title:   "PkNN search-order ablation: triangular (Fig. 9) vs. column-major",
	XLabel:  "k",
	Columns: []string{"triangular_io", "columnmajor_io"},
	Run: func(o Options) (*Table, error) {
		o.normalize()
		tb, err := Build(o.baseConfig())
		if err != nil {
			return nil, err
		}
		cmTree, err := tb.NewPEBVariant(func(c *core.Config) { c.PKNNOrder = core.ColumnMajor })
		if err != nil {
			return nil, err
		}
		ks := []int{1, 3, 5, 7, 10}
		rows := make([]Row, 0, len(ks))
		for _, k := range ks {
			qs := tb.DS.GenKNNQueries(tb.Cfg.QueryCount, k, tb.Cfg.QueryTime)
			tri, err := MeasurePKNNOn(tb.PEB, qs)
			if err != nil {
				return nil, err
			}
			cm, err := MeasurePKNNOn(cmTree, qs)
			if err != nil {
				return nil, err
			}
			o.logf("ablation-searchorder k=%d: triangular=%.1f column-major=%.1f", k, tri, cm)
			rows = append(rows, Row{X: float64(k), Vals: []float64{tri, cm}})
		}
		return &Table{ID: "ablation-searchorder", Title: "PkNN search-order ablation: triangular (Fig. 9) vs. column-major",
			XLabel: "k", Columns: []string{"triangular_io", "columnmajor_io"}, Rows: rows}, nil
	},
}

var expAblationCurve = Experiment{
	ID:      "ablation-curve",
	Title:   "Space-filling-curve ablation: Z-order (paper) vs. Hilbert",
	XLabel:  "window_side",
	Columns: []string{"zcurve_io", "hilbert_io"},
	Run: func(o Options) (*Table, error) {
		o.normalize()
		tb, err := Build(o.baseConfig())
		if err != nil {
			return nil, err
		}
		hilTree, err := tb.NewPEBVariant(func(c *core.Config) { c.Base.Curve = bxtree.CurveHilbert })
		if err != nil {
			return nil, err
		}
		sides := []float64{100, 200, 400, 600, 800, 1000}
		rows := make([]Row, 0, len(sides))
		for _, side := range sides {
			qs := tb.DS.GenPRQueries(tb.Cfg.QueryCount, side, tb.Cfg.QueryTime)
			z, err := MeasurePRQOn(tb.PEB, qs)
			if err != nil {
				return nil, err
			}
			h, err := MeasurePRQOn(hilTree, qs)
			if err != nil {
				return nil, err
			}
			o.logf("ablation-curve side=%g: z=%.1f hilbert=%.1f", side, z, h)
			rows = append(rows, Row{X: side, Vals: []float64{z, h}})
		}
		return &Table{ID: "ablation-curve", Title: "Space-filling-curve ablation: Z-order (paper) vs. Hilbert",
			XLabel: "window_side", Columns: []string{"zcurve_io", "hilbert_io"}, Rows: rows}, nil
	},
}
