package exp

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/workload"
	"repro/peb"
	"repro/peb/cq"
)

// The cq experiment measures the standing-query engine on the city
// scenario: a network-constrained population streams movement updates
// into a peb.DB while x standing geofences (privacy-filtered range
// subscriptions clustered around the network hubs) watch it. Reported
// per row: candidate evaluations per commit for the incremental engine
// and for the naive strategy that re-runs every subscription on every
// commit (the engine's Naive counter), their ratio, and the wall-clock
// latency from commit to delta receipt at the subscriber.
//
// What to expect: incremental evaluation touches only the subscriptions
// whose grantor sets contain a committed object, so evaluated-per-commit
// tracks the batch size times the per-user subscription fan-in — orders
// of magnitude below naive, and roughly flat as fences are added while
// naive grows linearly. Delta latency stays in the tens of microseconds:
// deltas are computed under the commit critical section and handed to
// buffered channels.
const (
	cqID     = "cq"
	cqTitle  = "Standing geofences: incremental vs naive evaluation (x = geofences)"
	cqXLabel = "geofences"
)

var cqColumns = []string{
	"evaluated_per_commit", "naive_per_commit", "reduction_x",
	"delta_p50_us", "delta_p99_us",
}

// cqFenceSide is the geofence side length (city-block scale relative to
// the 1000-unit space, smaller than the PRQ default window).
const cqFenceSide = 100.0

// cqPoint drives one data point: build the city, subscribe the fences,
// stream updates, and read the engine's counters back.
func cqPoint(o Options, fences int) (Row, error) {
	wcfg := workload.DefaultConfig()
	wcfg.NumUsers = o.users(10_000)
	wcfg.Distribution = workload.Network
	wcfg.NumHubs = 50
	wcfg.Seed = o.Seed
	ds, err := workload.Generate(wcfg)
	if err != nil {
		return Row{}, err
	}

	db, err := peb.Open(peb.Options{
		SpaceSide: wcfg.Space,
		DayLength: wcfg.DayLen,
		MaxSpeed:  wcfg.MaxSpeed,
	})
	if err != nil {
		return Row{}, err
	}
	defer db.Close()

	var buf bytes.Buffer
	if err := ds.Policies.Save(&buf); err != nil {
		return Row{}, err
	}
	if err := db.LoadPolicies(&buf); err != nil {
		return Row{}, err
	}
	b := db.NewBatch()
	for i, obj := range ds.Objects {
		b.Upsert(obj)
		if b.Len() >= 1000 || i == len(ds.Objects)-1 {
			if err := db.Apply(b); err != nil {
				return Row{}, err
			}
			b = db.NewBatch()
		}
	}

	// Commit-time timestamps for delta latency. Registered before Attach so
	// this hook fires first: the instant is recorded before the engine's
	// hook hands any delta of that commit to a subscriber channel.
	var (
		stampMu sync.Mutex
		stamps  = make(map[uint64]time.Time)
	)
	removeStamp := db.AddCommitHook(func(info peb.CommitInfo, _ *peb.CommitView) {
		stampMu.Lock()
		stamps[info.Seq] = time.Now()
		stampMu.Unlock()
	})
	defer removeStamp()

	eng, err := cq.Attach(db)
	if err != nil {
		return Row{}, err
	}
	defer eng.Close()

	// The standing geofences. Each consumer mirrors nothing — it only
	// timestamps receipt, the measurement of interest.
	qt := wcfg.UpdateWindow + 10
	var (
		latMu sync.Mutex
		lats  []time.Duration
		wg    sync.WaitGroup
	)
	subs := make([]*cq.Subscription, 0, fences)
	for _, g := range ds.Geofences(fences, cqFenceSide) {
		sub, _, err := eng.SubscribeRange(peb.UserID(g.Issuer),
			peb.Region{MinX: g.MinX, MinY: g.MinY, MaxX: g.MaxX, MaxY: g.MaxY},
			qt, cq.SubOptions{Buffer: 1024})
		if err != nil {
			return Row{}, err
		}
		subs = append(subs, sub)
		wg.Add(1)
		go func(sub *cq.Subscription) {
			defer wg.Done()
			local := make([]time.Duration, 0, 64)
			for d := range sub.Deltas() {
				stampMu.Lock()
				t0, ok := stamps[d.Seq]
				stampMu.Unlock()
				if ok {
					local = append(local, time.Since(t0))
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(sub)
	}

	// Stream the day: each commit advances a handful of movers along their
	// routes, keeping |t − qt| within the update contract so the Hilbert
	// prune stays armed.
	commits := int(3000 * o.Scale)
	if commits < 400 {
		commits = 400
	}
	base := eng.Stats()
	now := wcfg.UpdateWindow
	frac := 4 / float64(len(ds.Objects))
	for i := 0; i < commits; i++ {
		now += 0.01
		cb := db.NewBatch()
		for _, m := range ds.UpdateBatch(frac, now) {
			cb.Upsert(m)
		}
		if err := db.Apply(cb); err != nil {
			return Row{}, err
		}
	}
	st := eng.Stats()

	for _, sub := range subs {
		sub.Close()
	}
	wg.Wait()

	nCommits := st.Commits - base.Commits
	if nCommits == 0 {
		return Row{}, fmt.Errorf("cq: no commits observed")
	}
	evalPer := float64(st.Evaluated-base.Evaluated) / float64(nCommits)
	naivePer := float64(st.Naive-base.Naive) / float64(nCommits)
	reduction := 0.0
	if evalPer > 0 {
		reduction = naivePer / evalPer
	}
	o.logf("cq x=%d: %d commits, %.1f evaluated/commit vs %.0f naive (%.0fx), %d deltas, p50 %v p99 %v",
		fences, nCommits, evalPer, naivePer, reduction, len(lats),
		pctl(lats, 50), pctl(lats, 99))
	return Row{X: float64(fences), Vals: []float64{
		evalPer,
		naivePer,
		reduction,
		float64(pctl(lats, 50).Microseconds()),
		float64(pctl(lats, 99).Microseconds()),
	}}, nil
}

var expCQ = Experiment{
	ID:      cqID,
	Title:   cqTitle,
	XLabel:  cqXLabel,
	Columns: cqColumns,
	Run: func(o Options) (*Table, error) {
		o.normalize()
		counts := []int{100, 250, 500, 1000}
		rows := make([]Row, len(counts))
		// Points run sequentially: each one saturates the machine with its
		// subscriber goroutines, and latency numbers would smear otherwise.
		for i, n := range counts {
			row, err := cqPoint(o, n)
			if err != nil {
				return nil, fmt.Errorf("cq x=%d: %w", n, err)
			}
			rows[i] = row
		}
		return &Table{ID: cqID, Title: cqTitle, XLabel: cqXLabel,
			Columns: cqColumns, Rows: rows}, nil
	},
}
