package exp

import (
	"time"

	"repro/internal/motion"
	"repro/internal/workload"
	"repro/peb"
)

// The bulkload experiment measures what write batching buys: loading the
// same population into a fresh peb.DB once with per-call Upsert (N lock
// round-trips, N view republishes) and once with a staged Batch applied
// atomically (one of each). Reported per population size: view swaps and
// buffer write I/O (misses + write-backs) for both paths, and the
// wall-clock speedup of the batched load. This is not a paper figure; it
// validates the handle-based API against ROADMAP's bulk-ingest goal.

// bulkloadUsers are the population sizes swept (scaled by Options.Scale).
var bulkloadUsers = []int{10_000, 20_000, 40_000}

const (
	bulkloadID     = "bulkload"
	bulkloadTitle  = "Bulk load: Apply(batch) vs per-call Upsert (view swaps, write I/O, time)"
	bulkloadXLabel = "users"
)

var bulkloadColumns = []string{"swaps_percall", "swaps_batch", "io_percall", "io_batch", "speedup"}

// loadResult captures one load's cost.
type loadResult struct {
	swaps   uint64
	io      float64
	elapsed time.Duration
}

// runLoad opens a fresh DB and loads objs through fn, measuring view swaps,
// write I/O (buffer misses plus write-backs — bulk loading is write-heavy,
// so eviction write-backs are the dominant disk traffic), and wall time.
func runLoad(cfg Config, objs []motion.Object, fn func(db *peb.DB) error) (loadResult, error) {
	db, err := peb.Open(peb.Options{
		SpaceSide: cfg.Workload.Space,
		DayLength: cfg.Workload.DayLen,
		MaxSpeed:  cfg.Workload.MaxSpeed,
		// The paper's 50-page buffer: bulk load I/O dominated by evictions.
		BufferPages: cfg.Buffer,
	})
	if err != nil {
		return loadResult{}, err
	}
	defer db.Close()
	db.ResetStats()
	swapsBefore := db.ViewSwaps()
	start := time.Now()
	if err := fn(db); err != nil {
		return loadResult{}, err
	}
	elapsed := time.Since(start)
	stats := db.IOStats()
	return loadResult{
		swaps:   db.ViewSwaps() - swapsBefore,
		io:      float64(stats.Misses + stats.WriteBack),
		elapsed: elapsed,
	}, nil
}

var expBulkload = Experiment{
	ID:      bulkloadID,
	Title:   bulkloadTitle,
	XLabel:  bulkloadXLabel,
	Columns: bulkloadColumns,
	Run: func(o Options) (*Table, error) {
		o.normalize()
		rows := make([]Row, 0, len(bulkloadUsers))
		for _, n := range bulkloadUsers {
			cfg := o.baseConfig()
			cfg.Workload.NumUsers = o.users(n)
			// Bulk load exercises only movement ingest; policies are not
			// needed and generating them would dominate setup time.
			cfg.Workload.PoliciesPerUser = 0
			ds, err := workload.Generate(cfg.Workload)
			if err != nil {
				return nil, err
			}

			perCall, err := runLoad(cfg, ds.Objects, func(db *peb.DB) error {
				for _, obj := range ds.Objects {
					if err := db.Upsert(obj); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			batched, err := runLoad(cfg, ds.Objects, func(db *peb.DB) error {
				b := db.NewBatch()
				for _, obj := range ds.Objects {
					b.Upsert(obj)
				}
				return db.Apply(b)
			})
			if err != nil {
				return nil, err
			}

			speedup := 0.0
			if batched.elapsed > 0 {
				speedup = float64(perCall.elapsed) / float64(batched.elapsed)
			}
			o.logf("bulkload n=%d: per-call %d swaps %.0f io %v; batch %d swaps %.0f io %v (%.2fx)",
				cfg.Workload.NumUsers, perCall.swaps, perCall.io, perCall.elapsed.Round(time.Millisecond),
				batched.swaps, batched.io, batched.elapsed.Round(time.Millisecond), speedup)
			rows = append(rows, Row{X: float64(cfg.Workload.NumUsers), Vals: []float64{
				float64(perCall.swaps), float64(batched.swaps), perCall.io, batched.io, speedup,
			}})
		}
		return &Table{ID: bulkloadID, Title: bulkloadTitle, XLabel: bulkloadXLabel,
			Columns: bulkloadColumns, Rows: rows}, nil
	},
}
