package exp

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/peb"
	"repro/peb/sharded"
)

// The sharding experiment measures what space partitioning buys the commit
// path: a fixed committer pool runs upserts flat out against (x=0) one
// durable peb.DB and (x=1,2,4,8) a sharded.DB with that many shards, with
// a checkpoint fired mid-run. Reported per row: commit throughput, commit
// latency percentiles, and the total write-lock stall the checkpoints
// imposed (summed cut+publish lock-held time across all trees).
//
// What to expect: every shard has its own write lock, write-ahead log, and
// checkpoint pipeline, so commits to different shards stop contending —
// throughput scales with shards up to the core count, and each
// checkpoint's stall confines itself to one shard's commits instead of
// stopping the world. On a single-CPU runner the throughput ratio stays
// ~1× by construction (there is only one core to scale onto) — the
// 1-shard row doubling as a router-overhead check against the baseline —
// so CI asserts the experiment runs, not its ratios. This is not a paper
// figure; it validates the sharded engine (ROADMAP).
const (
	shardingID     = "sharding"
	shardingTitle  = "Commit throughput with sharding (x = shards; 0 = unsharded baseline)"
	shardingXLabel = "shards"
)

var shardingColumns = []string{
	"commits_per_sec", "commit_p50_us", "commit_p99_us", "stall_ms",
}

// shardingObj derives a deterministic position for commit i of user uid,
// spread uniformly so the shards stay balanced.
func shardingObj(uid, salt int) peb.Object {
	return peb.Object{
		UID: peb.UserID(uid),
		X:   float64((uid*37 + salt*131) % 1000),
		Y:   float64((uid*59 + salt*17) % 1000),
		T:   float64(salt % 50),
	}
}

// shardingMeasure drives the committer pool against one target and fires a
// checkpoint at the halfway mark.
func shardingMeasure(commits, committers, users int,
	upsert func(peb.Object) error, checkpoint func() error) (lat []time.Duration, elapsed time.Duration, err error) {

	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		ckptWG sync.WaitGroup
	)
	errCh := make(chan error, committers+1)
	lat = make([]time.Duration, 0, commits)
	per := commits / committers
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				if w == 0 && i == per/2 {
					// Fire the checkpoint alongside the load, as a
					// maintainer would.
					ckptWG.Add(1)
					go func() {
						defer ckptWG.Done()
						if e := checkpoint(); e != nil {
							select {
							case errCh <- e:
							default:
							}
						}
					}()
				}
				uid := w*users/committers + i%(users/committers) + 1
				s := time.Now()
				e := upsert(shardingObj(uid, i))
				local = append(local, time.Since(s))
				if e != nil {
					select {
					case errCh <- e:
					default:
					}
					return
				}
			}
			mu.Lock()
			lat = append(lat, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	ckptWG.Wait()
	elapsed = time.Since(start)
	select {
	case err = <-errCh:
	default:
	}
	return lat, elapsed, err
}

var expSharding = Experiment{
	ID:      shardingID,
	Title:   shardingTitle,
	XLabel:  shardingXLabel,
	Columns: shardingColumns,
	Run: func(o Options) (*Table, error) {
		o.normalize()
		commits := int(6000 * o.Scale)
		if commits < 400 {
			commits = 400
		}
		const committers = 4
		users := commits / 4
		if users < committers {
			users = committers
		}
		dir, err := os.MkdirTemp("", "pebbench-sharding-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		type variant struct {
			shards int // 0 = unsharded baseline
		}
		variants := []variant{{0}, {1}, {2}, {4}, {8}}
		rows := make([]Row, 0, len(variants))
		for _, v := range variants {
			var (
				lat     []time.Duration
				elapsed time.Duration
				stall   time.Duration
				runErr  error
			)
			if v.shards == 0 {
				db, err := peb.Open(peb.Options{
					Path:       fmt.Sprintf("%s/base.idx", dir),
					Durability: peb.DurabilityGrouped,
				})
				if err != nil {
					return nil, err
				}
				lat, elapsed, runErr = shardingMeasure(commits, committers, users, db.Upsert, db.Checkpoint)
				st := db.CheckpointStats()
				stall = st.TotalCut + st.TotalPublish
				db.Close()
			} else {
				db, err := sharded.Open(sharded.Options{
					Shards: v.shards,
					Dir:    fmt.Sprintf("%s/shards-%d", dir, v.shards),
					DB:     peb.Options{Durability: peb.DurabilityGrouped},
				})
				if err != nil {
					return nil, err
				}
				lat, elapsed, runErr = shardingMeasure(commits, committers, users, db.Upsert, db.Checkpoint)
				agg := db.Stats().Checkpoints
				stall = agg.TotalCut + agg.TotalPublish
				db.Close()
			}
			if runErr != nil {
				return nil, fmt.Errorf("sharding x=%d: %w", v.shards, runErr)
			}
			throughput := float64(len(lat)) / elapsed.Seconds()
			o.logf("sharding x=%d: %d commits in %v (%.0f/s), p50 %v p99 %v, stall %v",
				v.shards, len(lat), elapsed.Round(time.Millisecond), throughput,
				pctl(lat, 50), pctl(lat, 99), stall)
			rows = append(rows, Row{X: float64(v.shards), Vals: []float64{
				throughput,
				float64(pctl(lat, 50).Microseconds()),
				float64(pctl(lat, 99).Microseconds()),
				float64(stall.Milliseconds()) + float64(stall.Microseconds()%1000)/1000,
			}})
		}
		return &Table{ID: shardingID, Title: shardingTitle, XLabel: shardingXLabel,
			Columns: shardingColumns, Rows: rows}, nil
	},
}
