package exp

import (
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/workload"
)

// Experiment is one reproducible table or figure from the paper.
type Experiment struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string
	Run     func(o Options) (*Table, error)
}

// Experiments lists every registered experiment in paper order.
var Experiments = []Experiment{
	expFig11a, expFig11b,
	expFig12a, expFig12b,
	expFig13a, expFig13b,
	expFig14a, expFig14b,
	expFig15a, expFig15b,
	expFig16a, expFig16b,
	expFig17a, expFig17b,
	expFig18a, expFig18b,
	expFig19a, expFig19b, expFig19c,
	expAblationKeyOrder, expAblationSearchOrder, expAblationCurve,
	expScaling, expBulkload, expDurability, expCheckpoint, expSharding,
	expCQ, expReplication, expResharding,
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Sweep values from Table 1.
var (
	sweepUsers    = []int{10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000, 80_000, 90_000, 100_000}
	sweepPolicies = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	sweepTheta    = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	sweepWindow   = []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	sweepK        = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sweepHubs     = []int{25, 50, 100, 200, 300, 400, 500}
	sweepSpeed    = []float64{1, 2, 3, 4, 5, 6}
)

// queryMode distinguishes the two query families.
type queryMode int

const (
	modePRQ queryMode = iota
	modePKNN
)

func (m queryMode) String() string {
	if m == modePKNN {
		return "PkNN"
	}
	return "PRQ"
}

// genQueries draws the point's query set under its own configuration.
func genQueries(tb *Testbed, mode queryMode) ([]workload.PRQuery, []workload.KNNQuery) {
	if mode == modePKNN {
		return nil, tb.DS.GenKNNQueries(tb.Cfg.QueryCount, tb.Cfg.K, tb.Cfg.QueryTime)
	}
	return tb.DS.GenPRQueries(tb.Cfg.QueryCount, tb.Cfg.WindowSide, tb.Cfg.QueryTime), nil
}

// measurePoint builds one testbed and measures one query family on it.
func measurePoint(cfg Config, mode queryMode) (Measured, *Testbed, error) {
	tb, err := Build(cfg)
	if err != nil {
		return Measured{}, nil, err
	}
	prq, knn := genQueries(tb, mode)
	var m Measured
	if mode == modePKNN {
		m, err = tb.MeasurePKNN(knn)
	} else {
		m, err = tb.MeasurePRQ(prq)
	}
	if err != nil {
		return Measured{}, nil, err
	}
	return m, tb, nil
}

// sweepIO runs the standard two-column (PEB vs spatial) sweep used by most
// figures: one testbed per x value, built in parallel.
func sweepIO(o Options, id string, xs []float64, mode queryMode, mkCfg func(i int) Config) ([]Row, error) {
	rows := make([]Row, len(xs))
	err := forEachPoint(o.Parallel, len(xs), func(i int) error {
		start := time.Now()
		m, tb, err := measurePoint(mkCfg(i), mode)
		if err != nil {
			return fmt.Errorf("%s point %g: %w", id, xs[i], err)
		}
		o.logf("%s %s x=%g: peb=%.1f spatial=%.1f (N=%d, %v)",
			id, mode, xs[i], m.PEB, m.Spatial, tb.DS.Cfg.NumUsers, time.Since(start).Round(time.Millisecond))
		rows[i] = Row{X: xs[i], Vals: []float64{m.PEB, m.Spatial}}
		return nil
	})
	return rows, err
}

var ioColumns = []string{"peb_io", "spatial_io"}

// --- Fig. 11: preprocessing time for policy encoding -----------------------

var expFig11a = Experiment{
	ID:      "fig11a",
	Title:   "Preprocessing time vs. number of users (Fig. 11a)",
	XLabel:  "users",
	Columns: []string{"encode_seconds"},
	Run: func(o Options) (*Table, error) {
		o.normalize()
		rows := make([]Row, len(sweepUsers))
		err := forEachPoint(o.Parallel, len(sweepUsers), func(i int) error {
			cfg := o.baseConfig()
			cfg.Workload.NumUsers = o.users(sweepUsers[i])
			ds, err := workload.Generate(cfg.Workload)
			if err != nil {
				return err
			}
			start := time.Now()
			if _, err := ds.Assign(); err != nil {
				return err
			}
			secs := time.Since(start).Seconds()
			o.logf("fig11a N=%d: %.2fs", cfg.Workload.NumUsers, secs)
			rows[i] = Row{X: float64(cfg.Workload.NumUsers), Vals: []float64{secs}}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return &Table{ID: "fig11a", Title: "Preprocessing time vs. number of users (Fig. 11a)", XLabel: "users", Columns: []string{"encode_seconds"}, Rows: rows}, nil
	},
}

var expFig11b = Experiment{
	ID:      "fig11b",
	Title:   "Preprocessing time vs. policies per user (Fig. 11b)",
	XLabel:  "policies_per_user",
	Columns: []string{"encode_seconds"},
	Run: func(o Options) (*Table, error) {
		o.normalize()
		rows := make([]Row, len(sweepPolicies))
		err := forEachPoint(o.Parallel, len(sweepPolicies), func(i int) error {
			cfg := o.baseConfig()
			cfg.Workload.PoliciesPerUser = sweepPolicies[i]
			cfg.Workload.GroupSize = 0 // re-derive from Np
			ds, err := workload.Generate(cfg.Workload)
			if err != nil {
				return err
			}
			start := time.Now()
			if _, err := ds.Assign(); err != nil {
				return err
			}
			secs := time.Since(start).Seconds()
			o.logf("fig11b Np=%d: %.2fs", sweepPolicies[i], secs)
			rows[i] = Row{X: float64(sweepPolicies[i]), Vals: []float64{secs}}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return &Table{ID: "fig11b", Title: "Preprocessing time vs. policies per user (Fig. 11b)", XLabel: "policies_per_user", Columns: []string{"encode_seconds"}, Rows: rows}, nil
	},
}

// --- Fig. 12: effect of total number of users -------------------------------

func usersSweep(id, title string, mode queryMode) Experiment {
	return Experiment{
		ID: id, Title: title, XLabel: "users", Columns: ioColumns,
		Run: func(o Options) (*Table, error) {
			o.normalize()
			xs := make([]float64, len(sweepUsers))
			for i, n := range sweepUsers {
				xs[i] = float64(o.users(n))
			}
			rows, err := sweepIO(o, id, xs, mode, func(i int) Config {
				cfg := o.baseConfig()
				cfg.Workload.NumUsers = o.users(sweepUsers[i])
				return cfg
			})
			if err != nil {
				return nil, err
			}
			return &Table{ID: id, Title: title, XLabel: "users", Columns: ioColumns, Rows: rows}, nil
		},
	}
}

var (
	expFig12a = usersSweep("fig12a", "PRQ I/O vs. number of users (Fig. 12a)", modePRQ)
	expFig12b = usersSweep("fig12b", "PkNN I/O vs. number of users (Fig. 12b)", modePKNN)
)

// --- Fig. 13: effect of number of policies per user -------------------------

func policiesSweep(id, title string, mode queryMode) Experiment {
	return Experiment{
		ID: id, Title: title, XLabel: "policies_per_user", Columns: ioColumns,
		Run: func(o Options) (*Table, error) {
			o.normalize()
			xs := make([]float64, len(sweepPolicies))
			for i, np := range sweepPolicies {
				xs[i] = float64(np)
			}
			rows, err := sweepIO(o, id, xs, mode, func(i int) Config {
				cfg := o.baseConfig()
				cfg.Workload.PoliciesPerUser = sweepPolicies[i]
				cfg.Workload.GroupSize = 0
				return cfg
			})
			if err != nil {
				return nil, err
			}
			return &Table{ID: id, Title: title, XLabel: "policies_per_user", Columns: ioColumns, Rows: rows}, nil
		},
	}
}

var (
	expFig13a = policiesSweep("fig13a", "PRQ I/O vs. policies per user (Fig. 13a)", modePRQ)
	expFig13b = policiesSweep("fig13b", "PkNN I/O vs. policies per user (Fig. 13b)", modePKNN)
)

// --- Fig. 14: effect of the grouping factor ---------------------------------

func thetaSweep(id, title string, mode queryMode) Experiment {
	return Experiment{
		ID: id, Title: title, XLabel: "grouping_factor", Columns: ioColumns,
		Run: func(o Options) (*Table, error) {
			o.normalize()
			rows, err := sweepIO(o, id, sweepTheta, mode, func(i int) Config {
				cfg := o.baseConfig()
				cfg.Workload.GroupingFactor = sweepTheta[i]
				return cfg
			})
			if err != nil {
				return nil, err
			}
			return &Table{ID: id, Title: title, XLabel: "grouping_factor", Columns: ioColumns, Rows: rows}, nil
		},
	}
}

var (
	expFig14a = thetaSweep("fig14a", "PRQ I/O vs. grouping factor (Fig. 14a)", modePRQ)
	expFig14b = thetaSweep("fig14b", "PkNN I/O vs. grouping factor (Fig. 14b)", modePKNN)
)

// --- Fig. 15: effect of query parameters ------------------------------------

var expFig15a = Experiment{
	ID:      "fig15a",
	Title:   "PRQ I/O vs. query window size (Fig. 15a)",
	XLabel:  "window_side",
	Columns: ioColumns,
	Run: func(o Options) (*Table, error) {
		o.normalize()
		tb, err := Build(o.baseConfig())
		if err != nil {
			return nil, err
		}
		rows := make([]Row, 0, len(sweepWindow))
		for _, side := range sweepWindow {
			qs := tb.DS.GenPRQueries(tb.Cfg.QueryCount, side, tb.Cfg.QueryTime)
			m, err := tb.MeasurePRQ(qs)
			if err != nil {
				return nil, err
			}
			o.logf("fig15a side=%g: peb=%.1f spatial=%.1f", side, m.PEB, m.Spatial)
			rows = append(rows, Row{X: side, Vals: []float64{m.PEB, m.Spatial}})
		}
		return &Table{ID: "fig15a", Title: "PRQ I/O vs. query window size (Fig. 15a)", XLabel: "window_side", Columns: ioColumns, Rows: rows}, nil
	},
}

var expFig15b = Experiment{
	ID:      "fig15b",
	Title:   "PkNN I/O vs. k (Fig. 15b)",
	XLabel:  "k",
	Columns: ioColumns,
	Run: func(o Options) (*Table, error) {
		o.normalize()
		tb, err := Build(o.baseConfig())
		if err != nil {
			return nil, err
		}
		rows := make([]Row, 0, len(sweepK))
		for _, k := range sweepK {
			qs := tb.DS.GenKNNQueries(tb.Cfg.QueryCount, k, tb.Cfg.QueryTime)
			m, err := tb.MeasurePKNN(qs)
			if err != nil {
				return nil, err
			}
			o.logf("fig15b k=%d: peb=%.1f spatial=%.1f", k, m.PEB, m.Spatial)
			rows = append(rows, Row{X: float64(k), Vals: []float64{m.PEB, m.Spatial}})
		}
		return &Table{ID: "fig15b", Title: "PkNN I/O vs. k (Fig. 15b)", XLabel: "k", Columns: ioColumns, Rows: rows}, nil
	},
}

// --- Fig. 16: effect of spatial distribution (network data) -----------------

func hubsSweep(id, title string, mode queryMode) Experiment {
	return Experiment{
		ID: id, Title: title, XLabel: "destinations", Columns: ioColumns,
		Run: func(o Options) (*Table, error) {
			o.normalize()
			xs := make([]float64, len(sweepHubs))
			for i, h := range sweepHubs {
				xs[i] = float64(h)
			}
			rows, err := sweepIO(o, id, xs, mode, func(i int) Config {
				cfg := o.baseConfig()
				cfg.Workload.Distribution = workload.Network
				cfg.Workload.NumHubs = sweepHubs[i]
				return cfg
			})
			if err != nil {
				return nil, err
			}
			return &Table{ID: id, Title: title, XLabel: "destinations", Columns: ioColumns, Rows: rows}, nil
		},
	}
}

var (
	expFig16a = hubsSweep("fig16a", "PRQ I/O vs. number of destinations, network data (Fig. 16a)", modePRQ)
	expFig16b = hubsSweep("fig16b", "PkNN I/O vs. number of destinations, network data (Fig. 16b)", modePKNN)
)

// --- Fig. 17: effect of object speed ----------------------------------------

func speedSweep(id, title string, mode queryMode) Experiment {
	return Experiment{
		ID: id, Title: title, XLabel: "max_speed", Columns: ioColumns,
		Run: func(o Options) (*Table, error) {
			o.normalize()
			rows, err := sweepIO(o, id, sweepSpeed, mode, func(i int) Config {
				cfg := o.baseConfig()
				cfg.Workload.MaxSpeed = sweepSpeed[i]
				return cfg
			})
			if err != nil {
				return nil, err
			}
			return &Table{ID: id, Title: title, XLabel: "max_speed", Columns: ioColumns, Rows: rows}, nil
		},
	}
}

var (
	expFig17a = speedSweep("fig17a", "PRQ I/O vs. maximum speed (Fig. 17a)", modePRQ)
	expFig17b = speedSweep("fig17b", "PkNN I/O vs. maximum speed (Fig. 17b)", modePKNN)
)

// --- Fig. 18: effect of updates ---------------------------------------------

func updatesSweep(id, title string, mode queryMode) Experiment {
	return Experiment{
		ID: id, Title: title, XLabel: "percent_updated", Columns: ioColumns,
		Run: func(o Options) (*Table, error) {
			o.normalize()
			cfg := o.baseConfig()
			tb, err := Build(cfg)
			if err != nil {
				return nil, err
			}
			// Eight 25% batches: the dataset is fully updated twice
			// (Sec. 7.9). Batches are 10 time units apart, so no object's
			// inter-update gap exceeds ∆tmu = 120.
			rows := make([]Row, 0, 8)
			now := cfg.QueryTime
			for batch := 1; batch <= 8; batch++ {
				now += 10
				if err := tb.ApplyUpdates(tb.DS.UpdateBatch(0.25, now)); err != nil {
					return nil, err
				}
				var m Measured
				if mode == modePKNN {
					m, err = tb.MeasurePKNN(tb.DS.GenKNNQueries(cfg.QueryCount, cfg.K, now))
				} else {
					m, err = tb.MeasurePRQ(tb.DS.GenPRQueries(cfg.QueryCount, cfg.WindowSide, now))
				}
				if err != nil {
					return nil, err
				}
				pct := float64(batch) * 25
				o.logf("%s %.0f%% updated: peb=%.1f spatial=%.1f", id, pct, m.PEB, m.Spatial)
				rows = append(rows, Row{X: pct, Vals: []float64{m.PEB, m.Spatial}})
			}
			return &Table{ID: id, Title: title, XLabel: "percent_updated", Columns: ioColumns, Rows: rows}, nil
		},
	}
}

var (
	expFig18a = updatesSweep("fig18a", "PRQ I/O after update rounds (Fig. 18a)", modePRQ)
	expFig18b = updatesSweep("fig18b", "PkNN I/O after update rounds (Fig. 18b)", modePKNN)
)

// --- Fig. 19: cost-model accuracy -------------------------------------------

// calibrate measures two default-workload points at different densities and
// fits Eq. 7's a1, a2 (Sec. 6: "any two sample points from the experiments
// on the datasets with the same location distribution").
func calibrate(o Options) (costmodel.Model, error) {
	sample := func(users int) (costmodel.Sample, error) {
		cfg := o.baseConfig()
		cfg.Workload.NumUsers = users
		m, tb, err := measurePoint(cfg, modePRQ)
		if err != nil {
			return costmodel.Sample{}, err
		}
		return costmodel.Sample{
			Params: costmodel.Params{
				N:     users,
				Np:    cfg.Workload.PoliciesPerUser,
				Theta: cfg.Workload.GroupingFactor,
				Nl:    tb.PEB.LeafCount(),
				L:     cfg.Workload.Space,
			},
			IO: m.PEB,
		}, nil
	}
	n1 := o.users(20_000)
	n2 := o.users(80_000)
	if n2 <= n1 {
		n2 = 2 * n1 // tiny scales floor both sizes; keep densities distinct
	}
	s1, err := sample(n1)
	if err != nil {
		return costmodel.Model{}, err
	}
	s2, err := sample(n2)
	if err != nil {
		return costmodel.Model{}, err
	}
	model, err := costmodel.Calibrate(s1, s2)
	if err != nil {
		return costmodel.Model{}, err
	}
	o.logf("calibrated cost model: a1=%.4g a2=%.4g", model.A1, model.A2)
	return model, nil
}

var modelColumns = []string{"measured_io", "model_io"}

// costModelSweep compares measured PEB PRQ I/O with the calibrated model
// while varying one parameter.
func costModelSweep(id, title, xlabel string, xs []float64, mkCfg func(o Options, i int) Config) Experiment {
	return Experiment{
		ID: id, Title: title, XLabel: xlabel, Columns: modelColumns,
		Run: func(o Options) (*Table, error) {
			o.normalize()
			model, err := calibrate(o)
			if err != nil {
				return nil, err
			}
			rows := make([]Row, len(xs))
			err = forEachPoint(o.Parallel, len(xs), func(i int) error {
				cfg := mkCfg(o, i)
				m, tb, err := measurePoint(cfg, modePRQ)
				if err != nil {
					return err
				}
				est, err := model.Cost(costmodel.Params{
					N:     cfg.Workload.NumUsers,
					Np:    cfg.Workload.PoliciesPerUser,
					Theta: cfg.Workload.GroupingFactor,
					Nl:    tb.PEB.LeafCount(),
					L:     cfg.Workload.Space,
				})
				if err != nil {
					return err
				}
				o.logf("%s x=%g: measured=%.1f model=%.1f", id, xs[i], m.PEB, est)
				rows[i] = Row{X: xs[i], Vals: []float64{m.PEB, est}}
				return nil
			})
			if err != nil {
				return nil, err
			}
			return &Table{ID: id, Title: title, XLabel: xlabel, Columns: modelColumns, Rows: rows}, nil
		},
	}
}

var expFig19a = costModelSweep("fig19a",
	"Cost model vs. measured I/O, sweeping users (Fig. 19 left)", "users",
	func() []float64 {
		xs := make([]float64, len(sweepUsers))
		for i, n := range sweepUsers {
			xs[i] = float64(n)
		}
		return xs
	}(),
	func(o Options, i int) Config {
		cfg := o.baseConfig()
		cfg.Workload.NumUsers = o.users(sweepUsers[i])
		return cfg
	})

var expFig19b = costModelSweep("fig19b",
	"Cost model vs. measured I/O, sweeping policies per user (Fig. 19 middle)", "policies_per_user",
	func() []float64 {
		xs := make([]float64, len(sweepPolicies))
		for i, np := range sweepPolicies {
			xs[i] = float64(np)
		}
		return xs
	}(),
	func(o Options, i int) Config {
		cfg := o.baseConfig()
		cfg.Workload.PoliciesPerUser = sweepPolicies[i]
		cfg.Workload.GroupSize = 0
		return cfg
	})

var expFig19c = costModelSweep("fig19c",
	"Cost model vs. measured I/O, sweeping grouping factor (Fig. 19 right)", "grouping_factor",
	sweepTheta,
	func(o Options, i int) Config {
		cfg := o.baseConfig()
		cfg.Workload.GroupingFactor = sweepTheta[i]
		return cfg
	})

// Note: fig19a's x axis reports the paper-scale user counts; the scaled
// population is what is actually measured (same as fig12a).
