// Package costmodel implements the query I/O cost model of Sec. 6: the
// grouping-only estimate C1 (Eq. 6) and the density-calibrated estimate C
// (Eq. 7) for privacy-aware range queries on the PEB-tree.
//
// The model's reasoning: sequence values dominate PEB keys, so query cost
// is governed by how well the sequence-value assignment groups the issuer's
// related users. Np (policies per user) bounds the number of leaves a query
// may touch, the grouping factor θ discounts it by Np^θ (well-grouped users
// share leaves), Nl caps it (there are only that many leaves), and the
// object density N/L² scales it linearly (larger populations spread related
// users across more distinct sequence-value bands).
package costmodel

import (
	"fmt"
	"math"
)

// Params describes one workload point for the cost model.
type Params struct {
	N     int     // total number of users
	Np    int     // policies per user
	Theta float64 // grouping factor θ ∈ [0, 1]
	Nl    int     // number of leaf nodes in the PEB-tree
	L     float64 // side length of the space
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("costmodel: N = %d", p.N)
	}
	if p.Np < 0 {
		return fmt.Errorf("costmodel: Np = %d", p.Np)
	}
	if p.Theta < 0 || p.Theta > 1 {
		return fmt.Errorf("costmodel: θ = %g outside [0,1]", p.Theta)
	}
	if p.Nl <= 0 {
		return fmt.Errorf("costmodel: Nl = %d", p.Nl)
	}
	if p.L <= 0 {
		return fmt.Errorf("costmodel: L = %g", p.L)
	}
	return nil
}

// groupingTerm returns Np − Np^θ capped by the leaf count: the estimated
// number of leaf nodes holding the issuer's related users (Eq. 6's varying
// term). θ = 1 collapses it to 0 (everyone shares the anchor's leaves);
// θ = 0 leaves Np − 1 (no grouping at all).
func (p Params) groupingTerm() float64 {
	base := float64(p.Np)
	if p.Np > p.Nl {
		base = float64(p.Nl)
	}
	return base - math.Pow(float64(p.Np), p.Theta)
}

// C1 estimates the PRQ I/O cost from grouping alone (Eq. 6).
func C1(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return 1 + p.groupingTerm(), nil
}

// Model is the calibrated cost function C (Eq. 7):
//
//	C = 1 + (a1·N/L² + a2) · (min(Np, Nl) − Np^θ)
//
// A1 and A2 are obtained from two sample measurements on datasets with the
// same location distribution (Sec. 6 quotes a1 = 10, a2 = 0.3 for uniform).
type Model struct {
	A1, A2 float64
}

// Cost evaluates the model at p.
func (m Model) Cost(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	density := float64(p.N) / (p.L * p.L)
	c := 1 + (m.A1*density+m.A2)*p.groupingTerm()
	if c < 1 {
		c = 1 // a query touches at least one leaf
	}
	return c, nil
}

// Sample is one calibration observation: a workload point and the measured
// mean query I/O cost at that point.
type Sample struct {
	Params Params
	IO     float64
}

// Calibrate solves for A1 and A2 from two samples (Sec. 6: "parameters a1
// and a2 are obtained by taking as input any two sample points"). Writing
// g = min(Np, Nl) − Np^θ and d = N/L², each sample yields a linear
// equation (IO − 1)/g = a1·d + a2; two samples with distinct densities
// determine the line.
func Calibrate(s1, s2 Sample) (Model, error) {
	for _, s := range []Sample{s1, s2} {
		if err := s.Params.Validate(); err != nil {
			return Model{}, err
		}
		if s.Params.groupingTerm() <= 0 {
			return Model{}, fmt.Errorf("costmodel: sample at θ=%g has no grouping signal (term %g)",
				s.Params.Theta, s.Params.groupingTerm())
		}
	}
	d1 := float64(s1.Params.N) / (s1.Params.L * s1.Params.L)
	d2 := float64(s2.Params.N) / (s2.Params.L * s2.Params.L)
	if d1 == d2 {
		return Model{}, fmt.Errorf("costmodel: calibration samples share density %g; need two distinct N/L²", d1)
	}
	y1 := (s1.IO - 1) / s1.Params.groupingTerm()
	y2 := (s2.IO - 1) / s2.Params.groupingTerm()
	a1 := (y2 - y1) / (d2 - d1)
	a2 := y1 - a1*d1
	return Model{A1: a1, A2: a2}, nil
}
