package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func validParams() Params {
	return Params{N: 60_000, Np: 50, Theta: 0.7, Nl: 800, L: 1000}
}

func TestParamsValidate(t *testing.T) {
	if err := validParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"N=0", func(p *Params) { p.N = 0 }},
		{"Np<0", func(p *Params) { p.Np = -1 }},
		{"theta>1", func(p *Params) { p.Theta = 1.1 }},
		{"Nl=0", func(p *Params) { p.Nl = 0 }},
		{"L=0", func(p *Params) { p.L = 0 }},
	}
	for _, tc := range cases {
		p := validParams()
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestC1Endpoints(t *testing.T) {
	// θ = 1: perfect grouping, C1 = 1 + Np − Np = 1.
	p := validParams()
	p.Theta = 1
	got, err := C1(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("C1(θ=1) = %g, want 1", got)
	}
	// θ = 0: no grouping, C1 = 1 + Np − 1 = Np.
	p.Theta = 0
	got, err = C1(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != float64(p.Np) {
		t.Errorf("C1(θ=0) = %g, want %d", got, p.Np)
	}
}

func TestC1LeafCap(t *testing.T) {
	// Np > Nl: the leaf count caps the varying term (Eq. 6, second case).
	p := validParams()
	p.Np = 2000
	p.Nl = 100
	p.Theta = 0.5
	got, err := C1(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 100 - math.Pow(2000, 0.5)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("C1 = %g, want %g", got, want)
	}
}

func TestC1MonotoneInTheta(t *testing.T) {
	prev := math.Inf(1)
	for theta := 0.0; theta <= 1.0; theta += 0.1 {
		p := validParams()
		p.Theta = theta
		c, err := C1(p)
		if err != nil {
			t.Fatal(err)
		}
		if c > prev {
			t.Fatalf("C1 not non-increasing in θ at %g: %g > %g", theta, c, prev)
		}
		prev = c
	}
}

func TestModelCostMonotoneInN(t *testing.T) {
	m := Model{A1: 10, A2: 0.3} // the paper's uniform-distribution values
	prev := 0.0
	for n := 10_000; n <= 100_000; n += 10_000 {
		p := validParams()
		p.N = n
		c, err := m.Cost(p)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Fatalf("Cost not increasing in N at %d: %g <= %g", n, c, prev)
		}
		prev = c
	}
}

func TestModelCostFloor(t *testing.T) {
	// Negative calibration must not push the estimate below one page.
	m := Model{A1: -100, A2: -100}
	c, err := m.Cost(validParams())
	if err != nil {
		t.Fatal(err)
	}
	if c < 1 {
		t.Errorf("Cost = %g < 1", c)
	}
}

func TestCalibrateRecoversModel(t *testing.T) {
	truth := Model{A1: 10, A2: 0.3}
	p1 := validParams()
	p1.N = 20_000
	p2 := validParams()
	p2.N = 80_000
	io1, err := truth.Cost(p1)
	if err != nil {
		t.Fatal(err)
	}
	io2, err := truth.Cost(p2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Calibrate(Sample{p1, io1}, Sample{p2, io2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A1-truth.A1) > 1e-9 || math.Abs(got.A2-truth.A2) > 1e-9 {
		t.Errorf("Calibrate = %+v, want %+v", got, truth)
	}
}

func TestCalibrateRejectsDegenerate(t *testing.T) {
	p := validParams()
	if _, err := Calibrate(Sample{p, 10}, Sample{p, 20}); err == nil {
		t.Error("same-density samples accepted")
	}
	p1 := validParams()
	p1.Theta = 1 // no grouping signal: term = 0
	p2 := validParams()
	p2.N = 2 * p1.N
	if _, err := Calibrate(Sample{p1, 10}, Sample{p2, 20}); err == nil {
		t.Error("zero grouping term accepted")
	}
}

// Property: calibration through any two generated points reproduces both
// exactly (the model is linear in density for fixed grouping term).
func TestCalibrateRoundTripProperty(t *testing.T) {
	f := func(a1Raw, a2Raw uint8, n1Raw, n2Raw uint16) bool {
		a1 := float64(a1Raw)/10 + 0.1
		a2 := float64(a2Raw) / 100
		n1 := int(n1Raw)%50_000 + 1_000
		n2 := n1 + int(n2Raw)%50_000 + 1_000 // distinct density
		truth := Model{A1: a1, A2: a2}
		p1, p2 := validParams(), validParams()
		p1.N, p2.N = n1, n2
		io1, err1 := truth.Cost(p1)
		io2, err2 := truth.Cost(p2)
		if err1 != nil || err2 != nil {
			return false
		}
		if io1 <= 1 || io2 <= 1 {
			return true // floor clipped; not invertible, skip
		}
		m, err := Calibrate(Sample{p1, io1}, Sample{p2, io2})
		if err != nil {
			return false
		}
		r1, _ := m.Cost(p1)
		r2, _ := m.Cost(p2)
		return math.Abs(r1-io1) < 1e-6 && math.Abs(r2-io2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
