package policy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// newRandFromSeed and randomTestPolicy are local helpers for the
// property-based tests in this file.
func newRandFromSeed(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func randomTestPolicy(rng *rand.Rand, role Role) Policy {
	w := rng.Float64() * 100
	h := rng.Float64() * 100
	x := rng.Float64() * (100 - w)
	y := rng.Float64() * (100 - h)
	start := rng.Float64() * 100
	end := rng.Float64() * 100
	return Policy{
		Role: role,
		Locr: Region{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h},
		Tint: TimeInterval{Start: start, End: end},
	}
}

func multiStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(Region{MaxX: 100, MaxY: 100}, 100)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// With exactly one policy per direction, AlphaMulti must equal Alpha.
func TestAlphaMultiReducesToAlpha(t *testing.T) {
	s := multiStore(t)
	s.SetRelation(1, 2, "f")
	s.SetRelation(2, 1, "g")
	addPol := func(owner UserID, role Role, r Region, iv TimeInterval) {
		t.Helper()
		if err := s.AddPolicy(owner, Policy{Role: role, Locr: r, Tint: iv}); err != nil {
			t.Fatal(err)
		}
	}
	addPol(1, "f", Region{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50}, TimeInterval{Start: 0, End: 60})
	addPol(2, "g", Region{MinX: 25, MinY: 25, MaxX: 75, MaxY: 75}, TimeInterval{Start: 30, End: 90})

	a1, m1 := s.Alpha(1, 2)
	a2, m2 := s.AlphaMulti(1, 2)
	if a1 != a2 || m1 != m2 {
		t.Errorf("single policy: Alpha=(%g,%v) AlphaMulti=(%g,%v)", a1, m1, a2, m2)
	}
	if s.Compatibility(1, 2) != s.CompatibilityMulti(1, 2) {
		t.Error("compatibility degrees diverge on a single policy pair")
	}
}

// A second policy that adds overlap must increase α; Alpha (single-policy)
// cannot see it.
func TestAlphaMultiSeesSecondPolicy(t *testing.T) {
	s := multiStore(t)
	s.SetRelation(1, 2, "f")
	s.SetRelation(2, 1, "g")
	// First pair: disjoint in time → not mutual under single-policy α.
	if err := s.AddPolicy(1, Policy{Role: "f",
		Locr: Region{MaxX: 100, MaxY: 100}, Tint: TimeInterval{Start: 0, End: 40}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPolicy(2, Policy{Role: "g",
		Locr: Region{MaxX: 100, MaxY: 100}, Tint: TimeInterval{Start: 50, End: 90}}); err != nil {
		t.Fatal(err)
	}
	if _, mutual := s.Alpha(1, 2); mutual {
		t.Fatal("single-policy α should see disjoint windows")
	}
	// u1 adds a second policy overlapping u2's window.
	if err := s.AddPolicy(1, Policy{Role: "f",
		Locr: Region{MaxX: 100, MaxY: 100}, Tint: TimeInterval{Start: 50, End: 70}}); err != nil {
		t.Fatal(err)
	}
	if _, mutual := s.Alpha(1, 2); mutual {
		t.Fatal("single-policy α must still read only the first policy")
	}
	alpha, mutual := s.AlphaMulti(1, 2)
	if !mutual {
		t.Fatal("multi-policy α missed the overlapping second policy")
	}
	// Overlap is 20/100 of time over the full space.
	if math.Abs(alpha-0.2) > 1e-12 {
		t.Errorf("α = %g, want 0.2", alpha)
	}
	if c := s.CompatibilityMulti(1, 2); math.Abs(c-0.6) > 1e-12 {
		t.Errorf("C = %g, want 0.6", c)
	}
}

// α must stay within [0, 1] no matter how many policies pile up.
func TestAlphaMultiCapped(t *testing.T) {
	s := multiStore(t)
	s.SetRelation(1, 2, "f")
	s.SetRelation(2, 1, "g")
	full := Region{MaxX: 100, MaxY: 100}
	allDay := TimeInterval{Start: 0, End: 100}
	for i := 0; i < 5; i++ {
		if err := s.AddPolicy(1, Policy{Role: "f", Locr: full, Tint: allDay}); err != nil {
			t.Fatal(err)
		}
		if err := s.AddPolicy(2, Policy{Role: "g", Locr: full, Tint: allDay}); err != nil {
			t.Fatal(err)
		}
	}
	alpha, mutual := s.AlphaMulti(1, 2)
	if !mutual || alpha != 1 {
		t.Errorf("stacked full policies: α = %g (mutual %v), want capped 1", alpha, mutual)
	}
	if c := s.CompatibilityMulti(1, 2); c != 1 {
		t.Errorf("C = %g, want 1", c)
	}
}

// Property: CompatibilityMulti obeys the same bounds as Eq. 4 — in [0, 1],
// > 0.5 exactly for mutual pairs — and is symmetric.
func TestCompatibilityMultiBounds(t *testing.T) {
	f := func(seed int64) bool {
		s, err := NewStore(Region{MaxX: 100, MaxY: 100}, 100)
		if err != nil {
			return false
		}
		rng := newRandFromSeed(seed)
		s.SetRelation(1, 2, "f")
		s.SetRelation(2, 1, "g")
		for i := 0; i < 1+rng.Intn(4); i++ {
			s.AddPolicy(1, randomTestPolicy(rng, "f"))
		}
		for i := 0; i < rng.Intn(4); i++ {
			s.AddPolicy(2, randomTestPolicy(rng, "g"))
		}
		c12 := s.CompatibilityMulti(1, 2)
		c21 := s.CompatibilityMulti(2, 1)
		if c12 != c21 {
			return false
		}
		if c12 < 0 || c12 > 1 {
			return false
		}
		// Mutual pairs sit strictly above 0.5 mathematically; with a
		// vanishing overlap (1+α)/2 rounds to exactly 0.5 in float64, so
		// the boundary itself is allowed on both sides.
		_, mutual := s.AlphaMulti(1, 2)
		if mutual && c12 < 0.5 {
			return false
		}
		if !mutual && c12 > 0.5 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Multi-policy assignment runs end to end and honors the band invariants.
func TestAssignWithMultiPolicy(t *testing.T) {
	s := multiStore(t)
	users := []UserID{1, 2, 3, 4}
	for _, pair := range [][2]UserID{{1, 2}, {2, 3}} {
		s.SetRelation(pair[0], pair[1], "f")
		if err := s.AddPolicy(pair[0], Policy{Role: "f",
			Locr: Region{MaxX: 100, MaxY: 100}, Tint: TimeInterval{Start: 0, End: 50}}); err != nil {
			t.Fatal(err)
		}
		// A second policy for the same role widens the time window.
		if err := s.AddPolicy(pair[0], Policy{Role: "f",
			Locr: Region{MaxX: 100, MaxY: 100}, Tint: TimeInterval{Start: 50, End: 80}}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := AssignSequenceValues(s, users, AssignOptions{MultiPolicy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SV) != 4 {
		t.Fatalf("assigned %d SVs", len(a.SV))
	}
	for _, u := range users {
		if a.SV[u] <= 1 {
			t.Errorf("SV(%d) = %g", u, a.SV[u])
		}
	}
}
