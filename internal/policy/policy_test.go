package policy

import (
	"math"
	"testing"
	"testing/quick"
)

const day = 1440.0 // minutes

func testStore(t testing.TB) *Store {
	t.Helper()
	s, err := NewStore(Region{0, 0, 1000, 1000}, day)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

// pairPolicy wires a one-directional policy owner→viewer with a dedicated
// role, the "one policy per particular user" setting of Sec. 7.4.
func pairPolicy(t testing.TB, s *Store, owner, viewer UserID, locr Region, tint TimeInterval) {
	t.Helper()
	role := Role(string(rune('A'+owner)) + "->" + string(rune('A'+viewer)))
	s.SetRelation(owner, viewer, role)
	if err := s.AddPolicy(owner, Policy{Role: role, Locr: locr, Tint: tint}); err != nil {
		t.Fatalf("AddPolicy: %v", err)
	}
}

func TestRegionBasics(t *testing.T) {
	r := Region{0, 0, 10, 20}
	if r.Area() != 200 {
		t.Errorf("Area = %g", r.Area())
	}
	if !r.Contains(0, 0) || !r.Contains(10, 20) || r.Contains(11, 5) {
		t.Errorf("Contains wrong")
	}
	if (Region{5, 5, 1, 1}).Area() != 0 {
		t.Errorf("invalid region has nonzero area")
	}
	o := Region{5, 10, 15, 30}
	if got := r.OverlapArea(o); got != 50 {
		t.Errorf("OverlapArea = %g, want 50", got)
	}
	if got := r.OverlapArea(Region{100, 100, 200, 200}); got != 0 {
		t.Errorf("disjoint OverlapArea = %g", got)
	}
	// Touching edges overlap with zero area.
	if got := r.OverlapArea(Region{10, 0, 20, 20}); got != 0 {
		t.Errorf("edge OverlapArea = %g", got)
	}
}

func TestTimeIntervalLinear(t *testing.T) {
	iv := TimeInterval{480, 1020} // 8:00–17:00
	if iv.Duration(day) != 540 {
		t.Errorf("Duration = %g", iv.Duration(day))
	}
	if !iv.Contains(480, day) || iv.Contains(1020, day) || !iv.Contains(700, day) {
		t.Errorf("Contains wrong")
	}
	if iv.Contains(100, day) {
		t.Errorf("Contains(100) true")
	}
	// Modulo behavior: next day's 9:00.
	if !iv.Contains(day+540, day) {
		t.Errorf("mod-day Contains failed")
	}
}

func TestTimeIntervalWrapping(t *testing.T) {
	iv := TimeInterval{1320, 360} // 22:00–06:00
	if iv.Duration(day) != 480 {
		t.Errorf("Duration = %g", iv.Duration(day))
	}
	if !iv.Contains(1380, day) || !iv.Contains(100, day) || iv.Contains(720, day) {
		t.Errorf("wrapping Contains wrong")
	}
	// Overlap of a wrapping with a linear interval.
	other := TimeInterval{300, 600}
	if got := iv.OverlapDuration(other, day); got != 60 {
		t.Errorf("OverlapDuration = %g, want 60", got)
	}
	// Overlap of two wrapping intervals.
	o2 := TimeInterval{1400, 60}
	want := 40.0 + 60.0 // [1400,1440) plus [0,60)
	if got := iv.OverlapDuration(o2, day); math.Abs(got-want) > 1e-9 {
		t.Errorf("wrap-wrap OverlapDuration = %g, want %g", got, want)
	}
}

func TestTimeIntervalOverlapSymmetric(t *testing.T) {
	f := func(a0, a1, b0, b1 uint16) bool {
		a := TimeInterval{float64(a0 % 1440), float64(a1 % 1440)}
		b := TimeInterval{float64(b0 % 1440), float64(b1 % 1440)}
		return math.Abs(a.OverlapDuration(b, day)-b.OverlapDuration(a, day)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRelationsAndPolicies(t *testing.T) {
	s := testStore(t)
	s.SetRelation(1, 2, "colleague")
	if err := s.AddPolicy(1, Policy{
		Role: "colleague",
		Locr: Region{0, 0, 500, 500},
		Tint: TimeInterval{480, 1020},
	}); err != nil {
		t.Fatalf("AddPolicy: %v", err)
	}

	if _, ok := s.PolicyFor(1, 2); !ok {
		t.Fatalf("PolicyFor(1,2) missing")
	}
	if _, ok := s.PolicyFor(2, 1); ok {
		t.Fatalf("PolicyFor(2,1) exists")
	}
	if _, ok := s.PolicyFor(1, 3); ok {
		t.Fatalf("PolicyFor(1,3) exists without relation")
	}

	// Bob's example: colleagues see him in town during work hours.
	if !s.Allows(1, 2, 100, 100, 600) {
		t.Errorf("Allows in-region in-hours = false")
	}
	if s.Allows(1, 2, 600, 100, 600) {
		t.Errorf("Allows out-of-region = true")
	}
	if s.Allows(1, 2, 100, 100, 100) {
		t.Errorf("Allows out-of-hours = true")
	}
	if s.Allows(1, 3, 100, 100, 600) {
		t.Errorf("Allows unrelated viewer = true")
	}
}

func TestAllowsConsultsAllPoliciesOfRole(t *testing.T) {
	s := testStore(t)
	s.SetRelation(1, 2, "friend")
	_ = s.AddPolicy(1, Policy{Role: "friend", Locr: Region{0, 0, 10, 10}, Tint: TimeInterval{0, 100}})
	_ = s.AddPolicy(1, Policy{Role: "friend", Locr: Region{500, 500, 600, 600}, Tint: TimeInterval{0, 100}})
	if !s.Allows(1, 2, 550, 550, 50) {
		t.Errorf("second policy of role ignored")
	}
}

func TestGrantorsIndex(t *testing.T) {
	s := testStore(t)
	pairPolicy(t, s, 3, 1, Region{0, 0, 100, 100}, TimeInterval{0, 720})
	pairPolicy(t, s, 5, 1, Region{0, 0, 100, 100}, TimeInterval{0, 720})
	pairPolicy(t, s, 1, 5, Region{0, 0, 100, 100}, TimeInterval{0, 720})

	g := s.Grantors(1)
	if len(g) != 2 || g[0] != 3 || g[1] != 5 {
		t.Fatalf("Grantors(1) = %v, want [3 5]", g)
	}
	if !s.HasGrantor(5, 1) || s.HasGrantor(3, 1) {
		t.Errorf("HasGrantor wrong")
	}

	// Relation set before policy must still index once the policy lands.
	s.SetRelation(7, 1, "late")
	if s.HasGrantor(1, 7) {
		t.Fatalf("grantor before policy exists")
	}
	_ = s.AddPolicy(7, Policy{Role: "late", Locr: Region{0, 0, 1, 1}, Tint: TimeInterval{0, 1}})
	if !s.HasGrantor(1, 7) {
		t.Fatalf("grantor index not refreshed by AddPolicy")
	}
}

func TestAlphaMutualOverlap(t *testing.T) {
	s := testStore(t)
	// Quarter-space regions overlapping in 250000/4 = large area; both
	// intervals overlap for 360 min.
	pairPolicy(t, s, 1, 2, Region{0, 0, 500, 500}, TimeInterval{0, 720})
	pairPolicy(t, s, 2, 1, Region{250, 250, 750, 750}, TimeInterval{360, 1080})

	alpha, mutual := s.Alpha(1, 2)
	if !mutual {
		t.Fatalf("mutual = false")
	}
	wantO := 250.0 * 250.0 / 1e6 // overlap area / S
	wantD := 360.0 / day
	if math.Abs(alpha-wantO*wantD) > 1e-12 {
		t.Fatalf("alpha = %g, want %g", alpha, wantO*wantD)
	}
	// C > 0.5 for the simultaneous case.
	if c := s.Compatibility(1, 2); c <= 0.5 || math.Abs(c-(1+alpha)/2) > 1e-12 {
		t.Fatalf("C = %g", c)
	}
}

func TestAlphaDisjointPolicies(t *testing.T) {
	s := testStore(t)
	// Disjoint regions: never simultaneously visible.
	pairPolicy(t, s, 1, 2, Region{0, 0, 100, 100}, TimeInterval{0, 720})
	pairPolicy(t, s, 2, 1, Region{500, 500, 600, 600}, TimeInterval{0, 720})

	alpha, mutual := s.Alpha(1, 2)
	if mutual {
		t.Fatalf("mutual = true for disjoint regions")
	}
	term := (100.0 * 100.0 / 1e6) * (720.0 / day)
	if math.Abs(alpha-term) > 1e-12 { // ½(term + term) = term
		t.Fatalf("alpha = %g, want %g", alpha, term)
	}
	if alpha > 0.5 {
		t.Fatalf("disjoint alpha %g exceeds 0.5", alpha)
	}
	if c := s.Compatibility(1, 2); c != alpha {
		t.Fatalf("C = %g, want alpha %g", c, alpha)
	}
}

func TestAlphaOneSided(t *testing.T) {
	s := testStore(t)
	pairPolicy(t, s, 1, 2, Region{0, 0, 200, 200}, TimeInterval{0, 360})

	alpha, mutual := s.Alpha(1, 2)
	if mutual {
		t.Fatalf("one-sided policy reported mutual")
	}
	want := 0.5 * (200.0 * 200.0 / 1e6) * (360.0 / day)
	if math.Abs(alpha-want) > 1e-12 {
		t.Fatalf("alpha = %g, want %g", want, alpha)
	}
	// Symmetric regardless of argument order.
	a2, _ := s.Alpha(2, 1)
	if math.Abs(alpha-a2) > 1e-12 {
		t.Fatalf("Alpha not symmetric: %g vs %g", alpha, a2)
	}
}

func TestAlphaUnrelated(t *testing.T) {
	s := testStore(t)
	alpha, mutual := s.Alpha(8, 9)
	if alpha != 0 || mutual {
		t.Fatalf("unrelated alpha = %g mutual=%v", alpha, mutual)
	}
	if s.Compatibility(8, 9) != 0 || s.Related(8, 9) {
		t.Fatalf("unrelated users reported related")
	}
}

func TestCompatibilityBoundsQuick(t *testing.T) {
	s := testStore(t)
	// Random pair policies; C must stay in [0,1], and mutual pairs > 0.5.
	f := func(ax, ay, bx, by uint16, t0, t1 uint16, oneSided bool) bool {
		s2 := testStore(t)
		r1 := Region{float64(ax % 500), float64(ay % 500),
			float64(ax%500) + 100, float64(ay%500) + 100}
		r2 := Region{float64(bx % 500), float64(by % 500),
			float64(bx%500) + 100, float64(by%500) + 100}
		iv1 := TimeInterval{float64(t0 % 1440), float64(t1 % 1440)}
		pairPolicy(t, s2, 1, 2, r1, iv1)
		if !oneSided {
			pairPolicy(t, s2, 2, 1, r2, TimeInterval{float64(t1 % 1440), float64(t0 % 1440)})
		}
		c := s2.Compatibility(1, 2)
		if c < 0 || c > 1 {
			return false
		}
		_, mutual := s2.Alpha(1, 2)
		if mutual && c <= 0.5 {
			return false
		}
		if !mutual && c > 0.5 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	_ = s
}

// TestSequenceValuesWorkedExample replays the 6-user example of Sec. 5.1:
// C(u2,u1)=0.4, C(u4,u1)=0.9, C(u4,u3)=0.8, C(u5,u3)=0.2, C(u6,u3)=0.6,
// expecting the published values u3=2, u4=2.2, u5=2.8, u6=2.4, u1=4, u2=4.6.
func TestSequenceValuesWorkedExample(t *testing.T) {
	s := testStore(t)
	// Craft policies realizing the exact compatibility values.
	//   C > 0.5 requires the mutual case C = (1+α)/2: two identical
	//   full-day policies over a region of area (2C−1)·S give α = 2C−1.
	//   C ≤ 0.5 uses a one-sided policy: C = α = ½·|locr|/S·|tint|/T,
	//   so a full-day region of area 2C·S gives exactly C.
	addPair := func(a, b UserID, c float64) {
		if c > 0.5 {
			side := math.Sqrt((2*c - 1) * 1e6)
			r := Region{0, 0, side, side}
			pairPolicy(t, s, a, b, r, TimeInterval{0, day})
			pairPolicy(t, s, b, a, r, TimeInterval{0, day})
			return
		}
		side := math.Sqrt(2 * c * 1e6)
		pairPolicy(t, s, a, b, Region{0, 0, side, side}, TimeInterval{0, day})
	}
	addPair(2, 1, 0.4)
	addPair(4, 1, 0.9)
	addPair(4, 3, 0.8)
	addPair(5, 3, 0.2)
	addPair(6, 3, 0.6)

	for _, c := range []struct {
		a, b UserID
		want float64
	}{{2, 1, 0.4}, {4, 1, 0.9}, {4, 3, 0.8}, {5, 3, 0.2}, {6, 3, 0.6}} {
		if got := s.Compatibility(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("C(%d,%d) = %g, want %g", c.a, c.b, got, c.want)
		}
	}

	users := []UserID{1, 2, 3, 4, 5, 6}
	asg, err := AssignSequenceValues(s, users, AssignOptions{InitialSV: 2, Delta: 2})
	if err != nil {
		t.Fatalf("AssignSequenceValues: %v", err)
	}
	want := map[UserID]float64{3: 2, 4: 2.2, 5: 2.8, 6: 2.4, 1: 4, 2: 4.6}
	for u, w := range want {
		if got := asg.SV[u]; math.Abs(got-w) > 1e-9 {
			t.Errorf("SV(u%d) = %g, want %g", u, got, w)
		}
	}
	if asg.Groups != 2 {
		t.Errorf("Groups = %d, want 2", asg.Groups)
	}
	if math.Abs(asg.MaxSV-4.6) > 1e-9 {
		t.Errorf("MaxSV = %g, want 4.6", asg.MaxSV)
	}
}

func TestSequenceValuesInvariants(t *testing.T) {
	s := testStore(t)
	// Random-ish network: 40 users, ring + chords.
	users := make([]UserID, 40)
	for i := range users {
		users[i] = UserID(i + 1)
	}
	for i := 0; i < 40; i++ {
		a := users[i]
		b := users[(i+1)%40]
		pairPolicy(t, s, a, b, Region{0, 0, 300, 300}, TimeInterval{0, 720})
		if i%5 == 0 {
			c := users[(i+13)%40]
			pairPolicy(t, s, a, c, Region{100, 100, 400, 400}, TimeInterval{360, 1080})
		}
	}
	asg, err := AssignSequenceValues(s, users, AssignOptions{})
	if err != nil {
		t.Fatalf("AssignSequenceValues: %v", err)
	}
	// Every user assigned; all values >= initial; distinct anchors δ apart.
	if len(asg.SV) != len(users) {
		t.Fatalf("assigned %d of %d users", len(asg.SV), len(users))
	}
	for u, sv := range asg.SV {
		if sv < 2 {
			t.Errorf("SV(%d) = %g < initial", u, sv)
		}
	}
	// Related users must be within (0, 1] of some shared band anchor, so
	// |SV(a)-SV(b)| < 2δ always holds for directly related pairs assigned
	// in the same band. Weak check: pairs assigned consecutively in one
	// band differ by < 1+δ.
	s.RelatedPairs(func(a, b UserID) {
		if d := math.Abs(asg.SV[a] - asg.SV[b]); d > 100 {
			t.Errorf("related pair (%d,%d) SV distance %g", a, b, d)
		}
	})
}

func TestSequenceValuesIsolatedUsers(t *testing.T) {
	s := testStore(t)
	users := []UserID{1, 2, 3}
	asg, err := AssignSequenceValues(s, users, AssignOptions{})
	if err != nil {
		t.Fatalf("AssignSequenceValues: %v", err)
	}
	// Three singleton anchors 2, 4, 6.
	seen := map[float64]bool{}
	for _, u := range users {
		seen[asg.SV[u]] = true
	}
	for _, want := range []float64{2, 4, 6} {
		if !seen[want] {
			t.Errorf("missing anchor value %g in %v", want, asg.SV)
		}
	}
	if asg.Groups != 3 {
		t.Errorf("Groups = %d", asg.Groups)
	}
}

func TestSequenceValuesBandsDisjoint(t *testing.T) {
	// Regression for the anchor-spacing rule: bands must never interleave
	// even when the sorted order alternates between groups.
	s := testStore(t)
	var users []UserID
	for i := UserID(1); i <= 30; i++ {
		users = append(users, i)
	}
	// Two stars with shared sizes plus isolated users.
	for i := UserID(2); i <= 8; i++ {
		pairPolicy(t, s, 1, i, Region{0, 0, 500, 500}, TimeInterval{0, 720})
	}
	for i := UserID(11); i <= 17; i++ {
		pairPolicy(t, s, 10, i, Region{0, 0, 500, 500}, TimeInterval{0, 720})
	}
	asg, err := AssignSequenceValues(s, users, AssignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Anchors are the even integers 2, 4, … (members always carry a
	// fractional offset here). Every member value must lie inside
	// (anchor, anchor+1] of exactly one anchor, i.e., bands are disjoint.
	anchors := map[float64]bool{}
	for _, sv := range asg.SV {
		if sv == math.Trunc(sv) {
			anchors[sv] = true
		}
	}
	for u, sv := range asg.SV {
		if anchors[sv] {
			continue
		}
		base := math.Floor(sv)
		if !anchors[base] {
			t.Fatalf("member SV(%d)=%g has no anchor at %g", u, sv, base)
		}
		if sv-base > 1 {
			t.Fatalf("member SV(%d)=%g more than 1 above anchor %g", u, sv, base)
		}
	}
}

func TestAssignOptionsValidation(t *testing.T) {
	s := testStore(t)
	if _, err := AssignSequenceValues(s, []UserID{1}, AssignOptions{InitialSV: 0.5, Delta: 2}); err == nil {
		t.Errorf("InitialSV <= 1 accepted")
	}
	if _, err := AssignSequenceValues(s, []UserID{1}, AssignOptions{InitialSV: 2, Delta: 1}); err == nil {
		t.Errorf("Delta <= 1 accepted")
	}
}

func TestSVCodecRoundTrip(t *testing.T) {
	c := SVCodec{Bits: 26, FracBits: 6}
	for _, sv := range []float64{0, 2, 2.2, 4.6, 1000.25, 200002.984375} {
		v, err := c.Encode(sv)
		if err != nil {
			t.Fatalf("Encode(%g): %v", sv, err)
		}
		back := c.Decode(v)
		if math.Abs(back-sv) > 1.0/128+1e-12 {
			t.Errorf("roundtrip %g -> %g", sv, back)
		}
	}
	if _, err := c.Encode(-1); err == nil {
		t.Errorf("negative accepted")
	}
	if _, err := c.Encode(1e9); err == nil {
		t.Errorf("overflow accepted")
	}
}

func TestSVCodecPreservesOrder(t *testing.T) {
	c := SVCodec{Bits: 26, FracBits: 6}
	f := func(a, b uint32) bool {
		sva := float64(a%1_000_000) / 64 // exactly representable steps
		svb := float64(b%1_000_000) / 64
		ea, err1 := c.Encode(sva)
		eb, err2 := c.Encode(svb)
		if err1 != nil || err2 != nil {
			return false
		}
		if sva < svb {
			return ea < eb
		}
		if sva > svb {
			return ea > eb
		}
		return ea == eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore(Region{10, 10, 0, 0}, day); err == nil {
		t.Errorf("invalid space accepted")
	}
	if _, err := NewStore(Region{0, 0, 100, 100}, 0); err == nil {
		t.Errorf("zero day length accepted")
	}
	s := testStore(t)
	if err := s.AddPolicy(1, Policy{Role: "x", Locr: Region{5, 5, 1, 1}}); err == nil {
		t.Errorf("invalid locr accepted")
	}
}
