package policy

// Multi-policy compatibility — the first of the paper's future-work items
// (Sec. 8: "consider multiple policies between two users for computing
// policy compatibility degree"). The paper's α (Sec. 5.1) reads one policy
// per direction; these variants aggregate over every policy the owner's
// matching role carries.
//
// Semantics: the "simultaneously visible" measure generalizes to the
// space-time measure of the union of pairwise policy intersections. The
// union is approximated by the sum of pairwise intersection measures,
// capped at 1 (exact when policies do not overlap each other, an upper
// bound otherwise); the one-sided measure is likewise the capped sum over
// the owner's policies. The single-policy case reduces exactly to Alpha.

// policiesFor returns every policy of owner whose role matches the
// owner→viewer relation.
func (s *Store) policiesFor(owner, viewer UserID) []Policy {
	role, ok := s.relations[owner][viewer]
	if !ok {
		return nil
	}
	return s.policies[owner][role]
}

// AlphaMulti computes the α score between u1 and u2 over all policies in
// both directions, and reports whether any pair makes the users
// simultaneously visible (the P1→2 ↔ P2→1 case).
func (s *Store) AlphaMulti(u1, u2 UserID) (alpha float64, mutual bool) {
	if u2 < u1 {
		// Canonical argument order keeps floating-point summation order —
		// and therefore the result — exactly symmetric.
		u1, u2 = u2, u1
	}
	p12 := s.policiesFor(u1, u2)
	p21 := s.policiesFor(u2, u1)
	S := s.space.Area()
	T := s.dayLen

	if len(p12) == 0 && len(p21) == 0 {
		return 0, false
	}
	// Mutual case: sum of pairwise space-time intersections, capped.
	both := 0.0
	for _, p := range p12 {
		for _, q := range p21 {
			O := p.Locr.OverlapArea(q.Locr)
			D := p.Tint.OverlapDuration(q.Tint, T)
			if O > 0 && D > 0 {
				both += O / S * D / T
			}
		}
	}
	if both > 0 {
		if both > 1 {
			both = 1
		}
		return both, true
	}
	// One-sided / disjoint case: half the capped per-side measures. The
	// result is additionally capped at 0.5 so Eq. 4's priority invariant —
	// non-mutual compatibility never exceeds mutual compatibility — holds
	// even when a side's own policies overlap each other (the per-side sum
	// double-counts overlapping measure).
	side := func(ps []Policy) float64 {
		m := 0.0
		for _, p := range ps {
			m += p.Locr.Area() / S * p.Tint.Duration(T) / T
		}
		if m > 1 {
			m = 1
		}
		return m
	}
	a := (side(p12) + side(p21)) / 2
	if a > 0.5 {
		a = 0.5
	}
	return a, false
}

// CompatibilityMulti is Eq. 4 evaluated over AlphaMulti.
func (s *Store) CompatibilityMulti(u1, u2 UserID) float64 {
	alpha, mutual := s.AlphaMulti(u1, u2)
	if alpha == 0 && !mutual {
		return 0
	}
	if mutual {
		return (1 + alpha) / 2
	}
	return alpha
}
