package policy

// This file implements the policy-comparison phase of Sec. 5.1: the score
// α ∈ [0,1] and the compatibility degree C(u1, u2) of Eq. 4.

// Alpha computes the α score between u1 and u2 and reports whether the two
// policies are "simultaneous" (the paper's P1→2 ↔ P2→1 case: the users can
// sometimes see each other at the same time, i.e., their locr and tint
// overlap).
//
// Cases (Sec. 5.1):
//   - no policy either way: α = 0.
//   - both policies exist and their regions and intervals overlap:
//     α = O(locr1,locr2)/S · D(tint1,tint2)/T, mutual = true.
//   - both exist but never simultaneously visible, or only one exists:
//     α = ½(|locr1|/S·|tint1|/T + |locr2|/S·|tint2|/T), with the missing
//     term omitted; mutual = false. This α never exceeds 0.5.
func (s *Store) Alpha(u1, u2 UserID) (alpha float64, mutual bool) {
	if u2 < u1 {
		// Canonical argument order keeps floating-point summation order —
		// and therefore the result — exactly symmetric.
		u1, u2 = u2, u1
	}
	p12, ok12 := s.PolicyFor(u1, u2)
	p21, ok21 := s.PolicyFor(u2, u1)
	S := s.space.Area()
	T := s.dayLen

	if !ok12 && !ok21 {
		return 0, false
	}
	if ok12 && ok21 {
		O := p12.Locr.OverlapArea(p21.Locr)
		D := p12.Tint.OverlapDuration(p21.Tint, T)
		if O > 0 && D > 0 {
			return O / S * D / T, true
		}
	}
	a := 0.0
	if ok12 {
		a += p12.Locr.Area() / S * p12.Tint.Duration(T) / T
	}
	if ok21 {
		a += p21.Locr.Area() / S * p21.Tint.Duration(T) / T
	}
	return a / 2, false
}

// Compatibility returns C(u1, u2) per Eq. 4:
//
//	C = (1 + α)/2   when the users can sometimes see each other
//	                simultaneously (always > 0.5),
//	C = α           when they cannot (never exceeds 0.5),
//	C = 0           when they are unrelated.
//
// Users with C > 0 are "related"; higher values mean the pair is more
// likely to appear in each other's query results, so they should be stored
// closer together.
func (s *Store) Compatibility(u1, u2 UserID) float64 {
	alpha, mutual := s.Alpha(u1, u2)
	if alpha == 0 && !mutual {
		return 0
	}
	if mutual {
		return (1 + alpha) / 2
	}
	return alpha
}

// Related reports whether C(u1, u2) > 0.
func (s *Store) Related(u1, u2 UserID) bool {
	return s.Compatibility(u1, u2) > 0
}
