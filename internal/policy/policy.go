// Package policy implements the location-privacy-policy model of the paper
// (Sec. 3 Def. 1 and Sec. 5.1): policies ⟨role, locr, tint⟩, the pairwise
// score α, the compatibility degree C(u1,u2) (Eq. 4), and the
// sequence-value assignment algorithm (Fig. 5) whose output is embedded in
// PEB-tree keys.
package policy

import (
	"fmt"
	"math"
)

// UserID identifies a service user.
type UserID uint32

// Role names the relationship a policy applies to ("friend", "colleague").
// A policy of owner o with role r grants every user u with
// Relation(o, u) = r the right to see o's location under the policy's
// spatio-temporal conditions.
type Role string

// Region is an axis-aligned rectangle in the service space; the locr
// component of a policy and also the shape of range queries.
type Region struct {
	MinX, MinY, MaxX, MaxY float64
}

// Valid reports whether the region is well formed (possibly empty).
func (r Region) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Area returns the region's area.
func (r Region) Area() float64 {
	if !r.Valid() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Contains reports whether point (x, y) lies in the region (closed).
func (r Region) Contains(x, y float64) bool {
	return r.MinX <= x && x <= r.MaxX && r.MinY <= y && y <= r.MaxY
}

// Intersect returns the overlap of two regions and whether it is non-empty.
func (r Region) Intersect(o Region) (Region, bool) {
	out := Region{
		MinX: math.Max(r.MinX, o.MinX),
		MinY: math.Max(r.MinY, o.MinY),
		MaxX: math.Min(r.MaxX, o.MaxX),
		MaxY: math.Min(r.MaxY, o.MaxY),
	}
	if out.MinX > out.MaxX || out.MinY > out.MaxY {
		return Region{}, false
	}
	return out, true
}

// OverlapArea returns the area of the intersection of two regions
// (the O(locr1, locr2) term of Sec. 5.1).
func (r Region) OverlapArea(o Region) float64 {
	iv, ok := r.Intersect(o)
	if !ok {
		return 0
	}
	return iv.Area()
}

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// TimeInterval is a half-open daily time window [Start, End) in the same
// unit as query timestamps, taken modulo the day length; the tint component
// of a policy. Start may exceed End to wrap midnight.
type TimeInterval struct {
	Start, End float64
}

// Duration returns the interval's length within a day of length dayLen.
func (t TimeInterval) Duration(dayLen float64) float64 {
	if t.Start == t.End {
		return 0
	}
	if t.Start < t.End {
		return t.End - t.Start
	}
	return dayLen - t.Start + t.End
}

// Contains reports whether clock time tm (taken mod dayLen) falls inside.
func (t TimeInterval) Contains(tm, dayLen float64) bool {
	tm = math.Mod(tm, dayLen)
	if tm < 0 {
		tm += dayLen
	}
	if t.Start <= t.End {
		return t.Start <= tm && tm < t.End
	}
	return tm >= t.Start || tm < t.End
}

// OverlapDuration returns the length of the intersection of two intervals
// within a day of length dayLen (the D(tint1, tint2) term of Sec. 5.1).
func (t TimeInterval) OverlapDuration(o TimeInterval, dayLen float64) float64 {
	// Split wrapping intervals into at most two linear segments each.
	segs := func(iv TimeInterval) [][2]float64 {
		if iv.Start == iv.End {
			return nil
		}
		if iv.Start < iv.End {
			return [][2]float64{{iv.Start, iv.End}}
		}
		return [][2]float64{{iv.Start, dayLen}, {0, iv.End}}
	}
	total := 0.0
	for _, a := range segs(t) {
		for _, b := range segs(o) {
			lo := math.Max(a[0], b[0])
			hi := math.Min(a[1], b[1])
			if hi > lo {
				total += hi - lo
			}
		}
	}
	return total
}

// Policy is a location-privacy policy ⟨role, locr, tint⟩ (Def. 1): users
// related to the owner by Role may see the owner's location while the
// owner is inside Locr during Tint.
type Policy struct {
	Role Role
	Locr Region
	Tint TimeInterval
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	return fmt.Sprintf("<%s, %s, [%g,%g)>", p.Role, p.Locr, p.Tint.Start, p.Tint.End)
}
