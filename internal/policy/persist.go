package policy

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// Persistence: policies are the slowly-changing state of the system (the
// paper notes "policy updates are usually infrequent", Sec. 5.1), so a
// deployment snapshots the policy store and rebuilds indexes from live
// movement data. The format is a gob stream of a versioned snapshot;
// iteration orders are canonicalized so identical stores serialize
// identically.

const snapshotVersion = 1

// snapshot is the serialized form of a Store.
type snapshot struct {
	Version   int
	Space     Region
	DayLen    float64
	Relations []relationRec
	Policies  []policyRec
}

type relationRec struct {
	Owner, Peer UserID
	Role        Role
}

type policyRec struct {
	Owner  UserID
	Policy Policy
}

// Save writes the store's full state to w.
func (s *Store) Save(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Space:   s.space,
		DayLen:  s.dayLen,
	}
	for owner, peers := range s.relations {
		for peer, role := range peers {
			snap.Relations = append(snap.Relations, relationRec{Owner: owner, Peer: peer, Role: role})
		}
	}
	sort.Slice(snap.Relations, func(i, j int) bool {
		a, b := snap.Relations[i], snap.Relations[j]
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		return a.Peer < b.Peer
	})
	for owner, byRole := range s.policies {
		roles := make([]Role, 0, len(byRole))
		for r := range byRole {
			roles = append(roles, r)
		}
		sort.Slice(roles, func(i, j int) bool { return roles[i] < roles[j] })
		for _, r := range roles {
			for _, p := range byRole[r] { // insertion order preserved
				snap.Policies = append(snap.Policies, policyRec{Owner: owner, Policy: p})
			}
		}
	}
	sort.SliceStable(snap.Policies, func(i, j int) bool {
		return snap.Policies[i].Owner < snap.Policies[j].Owner
	})
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("policy: save: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save and reconstructs the store.
func Load(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("policy: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("policy: snapshot version %d not supported (want %d)",
			snap.Version, snapshotVersion)
	}
	s, err := NewStore(snap.Space, snap.DayLen)
	if err != nil {
		return nil, fmt.Errorf("policy: load: %w", err)
	}
	// Policies first so relation re-indexing sees them; AddPolicy also
	// handles the reverse order, so this is belt and braces.
	for _, pr := range snap.Policies {
		if err := s.AddPolicy(pr.Owner, pr.Policy); err != nil {
			return nil, fmt.Errorf("policy: load: %w", err)
		}
	}
	for _, rr := range snap.Relations {
		s.SetRelation(rr.Owner, rr.Peer, rr.Role)
	}
	return s, nil
}
