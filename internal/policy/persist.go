package policy

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/codec"
)

// Persistence: policies are the slowly-changing state of the system (the
// paper notes "policy updates are usually infrequent", Sec. 5.1), so a
// deployment snapshots the policy store and rebuilds indexes from live
// movement data. The body is a gob stream of a versioned snapshot;
// iteration orders are canonicalized so identical stores serialize
// identically.
//
// Since the durability codec pass, Save wraps the gob body in a small
// integrity envelope on the shared internal/codec conventions:
//
//	magic    1 byte  0xC7 (codec.MagicPolicySnapshot)
//	version  1 byte  0x01
//	crc      uvarint CRC-32C of the body
//	body     vbytes  the gob snapshot stream
//
// A gob stream can never begin with the magic byte (see internal/codec),
// so Load dispatches on it and reads bare gob-era snapshots — checkpoint
// side files and logged policy blobs written before the envelope existed —
// unchanged forever.

const snapshotVersion = 1

// envelopeVersion is the integrity envelope's format revision.
const envelopeVersion = 1

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// snapshot is the serialized form of a Store.
type snapshot struct {
	Version   int
	Space     Region
	DayLen    float64
	Relations []relationRec
	Policies  []policyRec
}

type relationRec struct {
	Owner, Peer UserID
	Role        Role
}

type policyRec struct {
	Owner  UserID
	Policy Policy
}

// Save writes the store's full state to w.
func (s *Store) Save(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Space:   s.space,
		DayLen:  s.dayLen,
	}
	for owner, peers := range s.relations {
		for peer, role := range peers {
			snap.Relations = append(snap.Relations, relationRec{Owner: owner, Peer: peer, Role: role})
		}
	}
	sort.Slice(snap.Relations, func(i, j int) bool {
		a, b := snap.Relations[i], snap.Relations[j]
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		return a.Peer < b.Peer
	})
	for owner, byRole := range s.policies {
		roles := make([]Role, 0, len(byRole))
		for r := range byRole {
			roles = append(roles, r)
		}
		sort.Slice(roles, func(i, j int) bool { return roles[i] < roles[j] })
		for _, r := range roles {
			for _, p := range byRole[r] { // insertion order preserved
				snap.Policies = append(snap.Policies, policyRec{Owner: owner, Policy: p})
			}
		}
	}
	sort.SliceStable(snap.Policies, func(i, j int) bool {
		return snap.Policies[i].Owner < snap.Policies[j].Owner
	})
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(snap); err != nil {
		return fmt.Errorf("policy: save: %w", err)
	}
	out := make([]byte, 0, body.Len()+16)
	out = append(out, codec.MagicPolicySnapshot, envelopeVersion)
	out = codec.AppendUvarint(out, uint64(crc32.Checksum(body.Bytes(), snapshotCRC)))
	out = codec.AppendBytes(out, body.Bytes())
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("policy: save: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save — enveloped or legacy bare gob —
// and reconstructs the store.
func Load(r io.Reader) (*Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("policy: load: %w", err)
	}
	body := data
	if len(data) > 0 && data[0] == codec.MagicPolicySnapshot {
		rd := codec.NewReader(data, 1)
		if v := rd.TakeByte("envelope version"); rd.Err() == nil && v > envelopeVersion {
			return nil, fmt.Errorf("policy: snapshot envelope version %d not supported (max %d)", v, envelopeVersion)
		}
		crc := rd.TakeUvarint("snapshot crc")
		body = rd.TakeBytes("snapshot body")
		rd.ExpectEnd()
		if err := rd.Err(); err != nil {
			return nil, fmt.Errorf("policy: corrupt snapshot: %w", err)
		}
		if crc != uint64(crc32.Checksum(body, snapshotCRC)) {
			return nil, fmt.Errorf("policy: corrupt snapshot: checksum mismatch")
		}
	}
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("policy: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("policy: snapshot version %d not supported (want %d)",
			snap.Version, snapshotVersion)
	}
	s, err := NewStore(snap.Space, snap.DayLen)
	if err != nil {
		return nil, fmt.Errorf("policy: load: %w", err)
	}
	// Policies first so relation re-indexing sees them; AddPolicy also
	// handles the reverse order, so this is belt and braces.
	for _, pr := range snap.Policies {
		if err := s.AddPolicy(pr.Owner, pr.Policy); err != nil {
			return nil, fmt.Errorf("policy: load: %w", err)
		}
	}
	for _, rr := range snap.Relations {
		s.SetRelation(rr.Owner, rr.Peer, rr.Role)
	}
	return s, nil
}
