package policy

import (
	"fmt"
	"sort"
)

// This file implements the sequence-value assignment algorithm of Fig. 5.
// Sequence values place policy-compatible users close together on the
// one-dimensional key axis: each "anchor" user starts a band δ above the
// previous user, and every related user sits inside the anchor's band at
// offset 1 − C(anchor, member), so high-compatibility pairs get the
// smallest key distance.

// AssignOptions tunes the assignment. The zero value selects the paper's
// defaults (initial value 2, δ = 2 — the worked example of Sec. 5.1).
type AssignOptions struct {
	// InitialSV is the sequence value of the first anchor (sv in Fig. 5,
	// "sv > 1"). Default 2.
	InitialSV float64
	// Delta is the inter-group spacing (δ > 1 in Fig. 5). Default 2.
	Delta float64
	// MultiPolicy selects the multi-policy compatibility degree
	// (CompatibilityMulti) instead of the paper's single-policy Eq. 4 —
	// the paper's first future-work extension (Sec. 8).
	MultiPolicy bool
}

func (o *AssignOptions) setDefaults() error {
	if o.InitialSV == 0 {
		o.InitialSV = 2
	}
	if o.Delta == 0 {
		o.Delta = 2
	}
	if o.InitialSV <= 1 {
		return fmt.Errorf("policy: initial sequence value %g must exceed 1", o.InitialSV)
	}
	if o.Delta <= 1 {
		return fmt.Errorf("policy: delta %g must exceed 1", o.Delta)
	}
	return nil
}

// Assignment is the result of the sequence-value computation.
type Assignment struct {
	// SV maps each user to its sequence value.
	SV map[UserID]float64
	// MaxSV is the largest assigned value (useful for key-width sizing).
	MaxSV float64
	// Groups is the number of anchor users (distinct δ-bands).
	Groups int
}

// AssignSequenceValues runs the Fig. 5 algorithm over all the given users
// using compatibilities from the store. Every user in users receives a
// value, including users with no policies at all (they become singleton
// anchors, matching the algorithm's "if SV(uk) = ⊥" path).
//
// Following Fig. 5 lines 1–5, each user's group G(ui) is the set of users
// with C(ui, uj) > 0; users are processed in descending order of |G| so
// larger social clusters claim compact bands first (ties broken by id for
// determinism).
func AssignSequenceValues(s *Store, users []UserID, opts AssignOptions) (Assignment, error) {
	if err := opts.setDefaults(); err != nil {
		return Assignment{}, err
	}
	compat := s.Compatibility
	if opts.MultiPolicy {
		compat = s.CompatibilityMulti
	}

	// Build adjacency from stored policy pairs (C > 0 ⇔ some policy exists
	// with positive area and duration; verify with the compatibility degree
	// to honor degenerate zero-area policies).
	adj := make(map[UserID][]UserID, len(users))
	inSet := make(map[UserID]bool, len(users))
	for _, u := range users {
		inSet[u] = true
	}
	s.RelatedPairs(func(a, b UserID) {
		if !inSet[a] || !inSet[b] {
			return
		}
		if compat(a, b) <= 0 {
			return
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	})
	for _, l := range adj {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}

	// Sort users by descending group size (Fig. 5 line 5).
	sorted := append([]UserID(nil), users...)
	sort.Slice(sorted, func(i, j int) bool {
		gi, gj := len(adj[sorted[i]]), len(adj[sorted[j]])
		if gi != gj {
			return gi > gj
		}
		return sorted[i] < sorted[j]
	})

	// Fig. 5 line 9 spaces a new anchor δ above its list predecessor; we
	// space it δ above the previous *anchor* (as in the paper's worked
	// example, where SV(u1) = SV(u3) + δ). This keeps bands disjoint even
	// when the list predecessor is a low member of an earlier band.
	out := Assignment{SV: make(map[UserID]float64, len(users))}
	prevAnchor := opts.InitialSV - opts.Delta // so the first anchor gets InitialSV
	for _, uk := range sorted {
		if _, assigned := out.SV[uk]; assigned {
			continue
		}
		sv := prevAnchor + opts.Delta
		out.SV[uk] = sv
		out.Groups++
		if sv > out.MaxSV {
			out.MaxSV = sv
		}
		for _, uj := range adj[uk] {
			if _, assigned := out.SV[uj]; assigned {
				continue
			}
			v := sv + (1 - compat(uk, uj))
			out.SV[uj] = v
			if v > out.MaxSV {
				out.MaxSV = v
			}
		}
		prevAnchor = sv
	}
	return out, nil
}

// SVCodec converts float sequence values into the fixed-point integers
// embedded in PEB keys. FracBits sets the resolution (values are rounded
// to multiples of 2^-FracBits); Bits is the total field width.
type SVCodec struct {
	Bits     int // total field width in the key
	FracBits int // bits of the fraction
}

// Encode converts a sequence value to its fixed-point representation.
// Values that would overflow the field are reported as errors — the caller
// should widen the key layout rather than silently wrap.
func (c SVCodec) Encode(sv float64) (uint64, error) {
	if sv < 0 {
		return 0, fmt.Errorf("policy: negative sequence value %g", sv)
	}
	v := uint64(sv*float64(uint64(1)<<uint(c.FracBits)) + 0.5)
	if c.Bits < 64 && v >= uint64(1)<<uint(c.Bits) {
		return 0, fmt.Errorf("policy: sequence value %g overflows %d-bit field", sv, c.Bits)
	}
	return v, nil
}

// Decode converts a fixed-point representation back to a float (with
// quantization error at most 2^-(FracBits+1)).
func (c SVCodec) Decode(v uint64) float64 {
	return float64(v) / float64(uint64(1)<<uint(c.FracBits))
}
