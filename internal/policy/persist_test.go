package policy

import (
	"bytes"
	"math/rand"
	"testing"
)

func buildRandomStore(t *testing.T, seed int64, n, policies int) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s, err := NewStore(Region{MaxX: 1000, MaxY: 1000}, 1440)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		owner := UserID(i)
		for p := 0; p < policies; p++ {
			peer := UserID(rng.Intn(n) + 1)
			if peer == owner {
				continue
			}
			role := Role(rune('a' + p%5))
			s.SetRelation(owner, peer, role)
			pol := Policy{
				Role: role,
				Locr: Region{
					MinX: rng.Float64() * 500, MinY: rng.Float64() * 500,
					MaxX: 500 + rng.Float64()*500, MaxY: 500 + rng.Float64()*500,
				},
				Tint: TimeInterval{Start: rng.Float64() * 1440, End: rng.Float64() * 1440},
			}
			if err := s.AddPolicy(owner, pol); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := buildRandomStore(t, 3, 60, 6)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Space() != s.Space() || got.DayLength() != s.DayLength() {
		t.Fatal("domain parameters not preserved")
	}
	if got.NumPolicies() != s.NumPolicies() {
		t.Fatalf("policies = %d, want %d", got.NumPolicies(), s.NumPolicies())
	}
	// Behavioral equivalence: Allows, Compatibility, and Grantors agree.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		a := UserID(rng.Intn(60) + 1)
		b := UserID(rng.Intn(60) + 1)
		x, y := rng.Float64()*1000, rng.Float64()*1000
		tm := rng.Float64() * 1440
		if s.Allows(a, b, x, y, tm) != got.Allows(a, b, x, y, tm) {
			t.Fatalf("Allows(%d,%d) diverges", a, b)
		}
		if s.Compatibility(a, b) != got.Compatibility(a, b) {
			t.Fatalf("Compatibility(%d,%d) diverges", a, b)
		}
	}
	for u := UserID(1); u <= 60; u++ {
		g1, g2 := s.Grantors(u), got.Grantors(u)
		if len(g1) != len(g2) {
			t.Fatalf("Grantors(%d): %d vs %d", u, len(g1), len(g2))
		}
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("Grantors(%d) diverge at %d", u, i)
			}
		}
	}
}

func TestSaveDeterministic(t *testing.T) {
	s := buildRandomStore(t, 5, 40, 4)
	var b1, b2 bytes.Buffer
	if err := s.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two saves of the same store differ")
	}
}

func TestSequenceValuesSurviveRoundTrip(t *testing.T) {
	s := buildRandomStore(t, 7, 50, 5)
	users := make([]UserID, 50)
	for i := range users {
		users[i] = UserID(i + 1)
	}
	a1, err := AssignSequenceValues(s, users, AssignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AssignSequenceValues(loaded, users, AssignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		if a1.SV[u] != a2.SV[u] {
			t.Fatalf("SV(%d) = %g vs %g after round trip", u, a1.SV[u], a2.SV[u])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
