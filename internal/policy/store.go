package policy

import (
	"fmt"
	"sort"
)

// Store holds all users' policies and role relations, playing the part of
// the server-side policy database the paper assumes ("the server has access
// to all users' privacy policies", Sec. 3).
//
// The store also maintains the reverse index the query algorithms need:
// for each viewer, the set of owners that have a policy applicable to that
// viewer (the paper's per-user list of Sec. 5.3, step 2).
type Store struct {
	space  Region
	dayLen float64

	// relations[o][u] is the role owner o assigns to user u.
	relations map[UserID]map[UserID]Role
	// policies[o][r] are owner o's policies for role r, in insertion order.
	policies map[UserID]map[Role][]Policy
	// grantors[u] is the set of owners o for which PolicyFor(o, u) exists.
	grantors map[UserID]map[UserID]bool

	numPolicies int
}

// NewStore creates a store for the given space domain and day length
// (the S and T normalizers of Sec. 5.1).
func NewStore(space Region, dayLen float64) (*Store, error) {
	if !space.Valid() || space.Area() <= 0 {
		return nil, fmt.Errorf("policy: invalid space %v", space)
	}
	if dayLen <= 0 {
		return nil, fmt.Errorf("policy: invalid day length %g", dayLen)
	}
	return &Store{
		space:     space,
		dayLen:    dayLen,
		relations: make(map[UserID]map[UserID]Role),
		policies:  make(map[UserID]map[Role][]Policy),
		grantors:  make(map[UserID]map[UserID]bool),
	}, nil
}

// Clone returns an independent deep copy of the store. peb.DB uses it for
// copy-on-write policy updates: while a pinned snapshot references a store,
// mutations go to a clone that is swapped in atomically, so the snapshot
// keeps evaluating the policies that were in force when it was taken.
// Policies change rarely (the paper's premise), so paying O(store) per
// policy mutation to keep snapshot reads lock-free is the right trade.
func (s *Store) Clone() *Store {
	c := &Store{
		space:       s.space,
		dayLen:      s.dayLen,
		relations:   make(map[UserID]map[UserID]Role, len(s.relations)),
		policies:    make(map[UserID]map[Role][]Policy, len(s.policies)),
		grantors:    make(map[UserID]map[UserID]bool, len(s.grantors)),
		numPolicies: s.numPolicies,
	}
	for owner, rel := range s.relations {
		m := make(map[UserID]Role, len(rel))
		for peer, role := range rel {
			m[peer] = role
		}
		c.relations[owner] = m
	}
	for owner, byRole := range s.policies {
		m := make(map[Role][]Policy, len(byRole))
		for role, ps := range byRole {
			m[role] = append([]Policy(nil), ps...)
		}
		c.policies[owner] = m
	}
	for viewer, owners := range s.grantors {
		m := make(map[UserID]bool, len(owners))
		for o := range owners {
			m[o] = true
		}
		c.grantors[viewer] = m
	}
	return c
}

// Space returns the space domain used for normalization.
func (s *Store) Space() Region { return s.space }

// DayLength returns the time domain length used for normalization.
func (s *Store) DayLength() float64 { return s.dayLen }

// NumPolicies returns the total number of stored policies.
func (s *Store) NumPolicies() int { return s.numPolicies }

// SetRelation records that owner considers peer to hold role.
func (s *Store) SetRelation(owner, peer UserID, role Role) {
	m := s.relations[owner]
	if m == nil {
		m = make(map[UserID]Role)
		s.relations[owner] = m
	}
	m[peer] = role
	s.reindexPeer(owner, peer)
}

// Relation returns the role owner assigns to peer, if any.
func (s *Store) Relation(owner, peer UserID) (Role, bool) {
	r, ok := s.relations[owner][peer]
	return r, ok
}

// AddPolicy stores a policy for owner. Multiple policies per role are kept
// in insertion order; PolicyFor returns the first (the paper computes
// compatibility from one policy per pair and lists multiples as future
// work, Sec. 8). Re-adding a policy identical to one the owner already
// holds is a no-op: the duplicate would change no query answer, and the
// idempotence makes crash-recovery log replay safe to overlap with a
// checkpointed policy snapshot.
func (s *Store) AddPolicy(owner UserID, p Policy) error {
	if !p.Locr.Valid() {
		return fmt.Errorf("policy: invalid locr %v", p.Locr)
	}
	m := s.policies[owner]
	if m == nil {
		m = make(map[Role][]Policy)
		s.policies[owner] = m
	}
	for _, q := range m[p.Role] {
		if q == p {
			return nil
		}
	}
	m[p.Role] = append(m[p.Role], p)
	s.numPolicies++
	// A new policy may activate existing relations of this owner.
	for peer, role := range s.relations[owner] {
		if role == p.Role {
			s.addGrantor(peer, owner)
		}
	}
	return nil
}

// PolicyFor returns owner's policy applicable to viewer: the first policy
// whose role matches the owner→viewer relation. This is P_owner→viewer in
// the paper's notation.
func (s *Store) PolicyFor(owner, viewer UserID) (Policy, bool) {
	role, ok := s.relations[owner][viewer]
	if !ok {
		return Policy{}, false
	}
	ps := s.policies[owner][role]
	if len(ps) == 0 {
		return Policy{}, false
	}
	return ps[0], true
}

// Allows reports whether viewer may see owner's location when the owner is
// at (x, y) at time tq — the policy-evaluation predicate of Definitions 2
// and 3. All policies matching the relation's role are consulted.
func (s *Store) Allows(owner, viewer UserID, x, y, tq float64) bool {
	role, ok := s.relations[owner][viewer]
	if !ok {
		return false
	}
	for _, p := range s.policies[owner][role] {
		if p.Locr.Contains(x, y) && p.Tint.Contains(tq, s.dayLen) {
			return true
		}
	}
	return false
}

// Grantors returns, sorted by id, the users that have a policy applicable
// to viewer — the candidate set Upol of Sec. 5.3 step 2 ("users who may
// allow the query issuer to see their locations").
func (s *Store) Grantors(viewer UserID) []UserID {
	m := s.grantors[viewer]
	out := make([]UserID, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasGrantor reports whether owner has a policy applicable to viewer.
func (s *Store) HasGrantor(viewer, owner UserID) bool {
	return s.grantors[viewer][owner]
}

// ForEachGrant calls fn for every (owner, viewer) pair connected by a
// relation with at least one policy, passing the policy PolicyFor would
// return. Iteration order is unspecified; fn returning false stops early.
func (s *Store) ForEachGrant(fn func(owner, viewer UserID, p Policy) bool) {
	for owner, peers := range s.relations {
		for viewer, role := range peers {
			ps := s.policies[owner][role]
			if len(ps) == 0 {
				continue
			}
			if !fn(owner, viewer, ps[0]) {
				return
			}
		}
	}
}

// RelatedPairs calls fn once for every unordered user pair (a, b), a < b,
// connected by at least one policy in either direction. This is the edge
// set the sequence-value assignment groups users by.
func (s *Store) RelatedPairs(fn func(a, b UserID)) {
	seen := make(map[uint64]bool)
	emit := func(o, v UserID) {
		a, b := o, v
		if a > b {
			a, b = b, a
		}
		if a == b {
			return
		}
		key := uint64(a)<<32 | uint64(b)
		if seen[key] {
			return
		}
		seen[key] = true
		fn(a, b)
	}
	for viewer, owners := range s.grantors {
		for owner := range owners {
			emit(owner, viewer)
		}
	}
}

// reindexPeer refreshes the grantor index entry for (owner → peer) after a
// relation change.
func (s *Store) reindexPeer(owner, peer UserID) {
	role := s.relations[owner][peer]
	if len(s.policies[owner][role]) > 0 {
		s.addGrantor(peer, owner)
	}
}

func (s *Store) addGrantor(viewer, owner UserID) {
	m := s.grantors[viewer]
	if m == nil {
		m = make(map[UserID]bool)
		s.grantors[viewer] = m
	}
	m[owner] = true
}
