package policy

import "testing"

func TestForEachGrant(t *testing.T) {
	s, err := NewStore(Region{MaxX: 100, MaxY: 100}, 24)
	if err != nil {
		t.Fatal(err)
	}
	all := Region{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	day := TimeInterval{Start: 0, End: 24}

	// u1 grants "f" to u2 and u3; u2 grants "g" to u1. u4 has a relation
	// but no policy for its role, so it must not be visited.
	s.SetRelation(1, 2, "f")
	s.SetRelation(1, 3, "f")
	s.SetRelation(2, 1, "g")
	s.SetRelation(4, 1, "h")
	if err := s.AddPolicy(1, Policy{Role: "f", Locr: all, Tint: day}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPolicy(2, Policy{Role: "g", Locr: all, Tint: day}); err != nil {
		t.Fatal(err)
	}

	type pair struct{ o, v UserID }
	got := make(map[pair]Role)
	s.ForEachGrant(func(owner, viewer UserID, p Policy) bool {
		got[pair{owner, viewer}] = p.Role
		return true
	})
	want := map[pair]Role{
		{1, 2}: "f",
		{1, 3}: "f",
		{2, 1}: "g",
	}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for k, r := range want {
		if got[k] != r {
			t.Errorf("grant %v = %q, want %q", k, got[k], r)
		}
	}

	// Early stop.
	calls := 0
	s.ForEachGrant(func(UserID, UserID, Policy) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop made %d calls", calls)
	}
}
