// Citygrid: privacy-aware queries over a city partitioned into shards.
//
// A city-wide location service runs the sharded engine: the service space
// is split into four shards by Hilbert-curve range — with four shards,
// one per city quadrant — each with its own PEB-tree, write lock, and
// commit path, so update traffic from different districts never contends.
// The example loads a population clustered around four district hubs,
// then serves the two query families through the router:
//
//   - a privacy-aware range query over one district, which the router
//     prunes to the shards whose curve range can matter (watch the
//     per-shard population to see why most shards are skipped);
//   - a privacy-aware k-nearest-neighbor query, answered by best-first
//     shard expansion — the shard containing the query point first, the
//     rest only while they could still beat the k-th best candidate;
//   - the same queries on a consistent Snapshot taken under the router's
//     brief global barrier, while updates keep flowing.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/peb"
	"repro/peb/obs"
	"repro/peb/sharded"
)

func main() {
	mon := flag.String("mon", "", "serve /metrics, /statusz, and /debug/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	db, err := sharded.Open(sharded.Options{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if *mon != "" {
		srv, err := obs.Serve(*mon, obs.ForSharded(db))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability endpoint on http://%s (curl /metrics, /statusz)\n\n", srv.Addr())
	}

	// Four district hubs, one per quadrant of the 1000×1000 space.
	hubs := [4][2]float64{{250, 250}, {250, 750}, {750, 750}, {750, 250}}
	day := peb.TimeInterval{Start: 0, End: 1440}
	city := peb.Region{MaxX: 1000, MaxY: 1000}
	const (
		dispatcher = sharded.UserID(1)
		residents  = 600
	)

	// Residents opt in to the dispatcher city-wide; policies are broadcast
	// to every shard so any shard can evaluate them for its own objects.
	setup := db.NewBatch()
	for i := 0; i < residents; i++ {
		u := sharded.UserID(10 + i)
		setup.DefineRelation(u, dispatcher, "service")
		setup.Grant(u, "service", city, day)
	}
	if err := db.Apply(setup); err != nil {
		log.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		log.Fatal(err)
	}

	// Load the population clustered around the hubs. The batch spans every
	// shard; Apply commits it atomically across all of them.
	rng := rand.New(rand.NewSource(7))
	load := db.NewBatch()
	for i := 0; i < residents; i++ {
		hub := hubs[i%len(hubs)]
		load.Upsert(sharded.Object{
			UID: sharded.UserID(10 + i),
			X:   hub[0] + rng.Float64()*300 - 150,
			Y:   hub[1] + rng.Float64()*300 - 150,
			VX:  (rng.Float64() - 0.5) * 4,
			VY:  (rng.Float64() - 0.5) * 4,
			T:   float64(i%40) * 0.1,
		})
	}
	if err := db.Apply(load); err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("City loaded: %d residents across %d shards (", db.Size(), db.Shards())
	for i, ss := range st.Shards {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("shard %d: %d", i, ss.Size)
	}
	fmt.Println(")")

	// A range query over the north-east district: the router consults only
	// the shards whose Hilbert range intersects the (motion-enlarged)
	// window.
	northEast := peb.Region{MinX: 600, MinY: 600, MaxX: 900, MaxY: 900}
	inDistrict, err := db.RangeQuery(dispatcher, northEast, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPRQ over the north-east district at t=10: %d residents visible\n", len(inDistrict))

	// Nearest units to an incident downtown: best-first shard expansion
	// with a global distance bound.
	const k = 5
	nearest, err := db.NearestNeighbors(dispatcher, 500, 500, k, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d nearest residents to the incident at (500,500):\n", k)
	for _, nb := range nearest {
		fmt.Printf("  u%-4d at distance %6.1f\n", nb.Object.UID, nb.Dist)
	}

	// A consistent cut across all shards: updates keep committing, the
	// snapshot keeps answering from the pinned state.
	snap, err := db.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	for i := 0; i < 50; i++ { // concurrent-looking churn after the cut
		hub := hubs[rng.Intn(len(hubs))]
		if err := db.Upsert(sharded.Object{
			UID: sharded.UserID(10 + rng.Intn(residents)),
			X:   hub[0] + rng.Float64()*300 - 150,
			Y:   hub[1] + rng.Float64()*300 - 150,
			T:   20,
		}); err != nil {
			log.Fatal(err)
		}
	}
	pinned, err := snap.RangeQuery(dispatcher, northEast, 10)
	if err != nil {
		log.Fatal(err)
	}
	live, err := db.RangeQuery(dispatcher, northEast, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAfter churn: snapshot still answers %d (pinned cut), live answers %d\n",
		len(pinned), len(live))

	agg := db.Stats()
	fmt.Printf("\nAggregate view swaps: %d; per-shard WAL appends:", agg.ViewSwaps)
	for _, ss := range agg.Shards {
		fmt.Printf(" %d", ss.WAL.Appends)
	}
	fmt.Println(" (memory-backed: zero)")
}
