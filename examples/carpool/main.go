// Carpool: commute matching on the public peb API.
//
// Employees of a company opt in to being discoverable by colleagues — but
// only along the commute corridor and only during commute hours. As the
// clock sweeps through the day, the same nearest-neighbor query returns
// different people: policies, not just positions, shape the answer.
//
// Each probe round works the way a real service tick would: the device
// fleet's position reports arrive as one batched write (a thousand updates,
// one lock acquisition, one view republish), then the rider's queries run
// on a pinned snapshot of that instant.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/peb"
)

func main() {
	db, err := peb.Open(peb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const (
		rider     = peb.UserID(1) // the person looking for a carpool
		employees = 300
		others    = 700
	)
	corridor := peb.Region{MinX: 100, MinY: 450, MaxX: 900, MaxY: 550} // the highway band
	morningCommute := peb.TimeInterval{Start: 420, End: 540}           // 7:00–9:00
	eveningCommute := peb.TimeInterval{Start: 1020, End: 1140}         // 17:00–19:00

	// Colleagues grant visibility twice a day, corridor-only. (Two
	// policies per owner under the same role: either window suffices.)
	// The whole policy set is staged and applied atomically.
	optIn := db.NewBatch()
	for i := 0; i < employees; i++ {
		u := peb.UserID(100 + i)
		optIn.DefineRelation(u, rider, "colleague")
		optIn.Grant(u, "colleague", corridor, morningCommute)
		optIn.Grant(u, "colleague", corridor, eveningCommute)
	}
	if err := db.Apply(optIn); err != nil {
		log.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		log.Fatal(err)
	}

	// Everyone drives along (or near) the corridor with varying speeds;
	// non-employees are spread across the city. Devices report fresh
	// updates regularly (the moving-object model requires an update at
	// least every ∆tmu); each refresh lands as one batch.
	rng := rand.New(rand.NewSource(11))
	refresh := func(now float64) {
		b := db.NewBatch()
		for i := 0; i < employees; i++ {
			b.Upsert(peb.Object{
				UID: peb.UserID(100 + i),
				X:   100 + rng.Float64()*800,
				Y:   460 + rng.Float64()*80,
				VX:  1 + rng.Float64()*2, // eastbound traffic
				VY:  0,
				T:   now - rng.Float64()*10,
			})
		}
		for i := 0; i < others; i++ {
			b.Upsert(peb.Object{
				UID: peb.UserID(10_000 + i),
				X:   rng.Float64() * 1000,
				Y:   rng.Float64() * 1000,
				VX:  rng.Float64()*4 - 2,
				VY:  rng.Float64()*4 - 2,
				T:   now - rng.Float64()*10,
			})
		}
		if err := db.Apply(b); err != nil {
			log.Fatal(err)
		}
	}
	refresh(0)
	fmt.Printf("%d users indexed (%d opted-in colleagues)\n\n", db.Size(), employees)

	// The rider sits at the on-ramp and asks for the 3 nearest visible
	// colleagues at different times of day. Note: positions barely change
	// between 8:00 and 8:01, but visibility flips hard at the policy
	// boundaries.
	const rampX, rampY = 300.0, 500.0
	for _, probe := range []struct {
		clock float64
		label string
	}{
		{400, "6:40 (before commute)"},
		{480, "8:00 (morning commute)"},
		{700, "11:40 (midday)"},
		{1080, "18:00 (evening commute)"},
		{1260, "21:00 (night)"},
	} {
		refresh(probe.clock)
		snap, err := db.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		matches, err := snap.NearestNeighbors(rider, rampX, rampY, 3, probe.clock)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %d match(es)", probe.label, len(matches))
		for _, m := range matches {
			fmt.Printf("  u%d(%.0f away)", m.Object.UID, m.Dist)
		}
		fmt.Println()
		snap.Close()
	}

	// And the corridor-wide view during the morning commute: range query
	// and kNN from the same snapshot see the same instant, and the
	// session's I/O is measured on its own counters.
	refresh(480)
	snap, err := db.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	visible, err := snap.RangeQuery(rider, corridor, 480)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8:00 corridor sweep: %d colleagues visible\n", len(visible))
	stats := snap.IOStats()
	fmt.Printf("Sweep I/O: %d requests, %d misses\n", stats.Accesses(), stats.Misses)
}
