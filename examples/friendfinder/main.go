// Friendfinder: the paper's motivating application — "find my k nearest
// friends who are willing to be seen" — on a network-based workload.
//
// A population of users moves between hub destinations (the workload of
// Sec. 7.7). Each user grants visibility to a small social circle. The
// example issues privacy-aware kNN queries from several users and compares
// the PEB-tree's I/O against the spatial-index-plus-filtering baseline on
// the same data, reproducing the paper's headline effect end to end.
package main

import (
	"fmt"
	"log"

	"repro/internal/bxtree"
	"repro/internal/core"
	"repro/internal/spatialidx"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	// 10K users moving between 50 hubs; everyone has 20 policies, 80% of
	// them inside their social group.
	cfg := workload.DefaultConfig()
	cfg.NumUsers = 10_000
	cfg.PoliciesPerUser = 20
	cfg.GroupingFactor = 0.8
	cfg.Distribution = workload.Network
	cfg.NumHubs = 50
	cfg.Seed = 7

	ds, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	assignment, err := ds.Assign()
	if err != nil {
		log.Fatal(err)
	}

	// Index parameters: grid and speeds must match the workload.
	pebCfg := core.DefaultConfig()
	pebCfg.Base.MaxSpeed = cfg.MaxSpeed

	peb, err := core.New(pebCfg, store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages), ds.Policies, assignment)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := spatialidx.New(pebCfg.Base, store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages), ds.Policies)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range ds.Objects {
		if err := peb.Insert(o); err != nil {
			log.Fatal(err)
		}
		if err := baseline.Insert(o); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("Indexed %d users moving between %d hubs (%d policies)\n",
		peb.Size(), cfg.NumHubs, ds.Policies.NumPolicies())

	// Issue "find my 3 nearest visible friends" for a few users.
	const tq = 60.0
	queries := ds.GenKNNQueries(5, 3, tq)
	for _, q := range queries {
		found, err := peb.PKNN(q.Issuer, q.X, q.Y, q.K, q.T)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nu%d at (%.0f, %.0f) — %d visible friend(s):\n", q.Issuer, q.X, q.Y, len(found))
		for i, nb := range found {
			x, y := nb.Object.PositionAt(tq)
			fmt.Printf("  %d. u%-6d %.1f away at (%.0f, %.0f)\n", i+1, nb.Object.UID, nb.Dist, x, y)
		}
		if len(found) == 0 {
			fmt.Println("  (no friend is currently willing to share their location)")
		}
	}

	// Replay a larger batch on both indexes and compare I/O.
	batch := ds.GenKNNQueries(200, 3, tq)
	measure := func(name string, pool *store.BufferPool, run func(q workload.KNNQuery) error) float64 {
		if err := pool.DropAll(); err != nil {
			log.Fatal(err)
		}
		pool.ResetStats()
		for _, q := range batch {
			if err := run(q); err != nil {
				log.Fatal(err)
			}
		}
		io := float64(pool.Stats().Misses) / float64(len(batch))
		fmt.Printf("  %-28s %6.1f I/Os per query\n", name, io)
		return io
	}
	fmt.Printf("\nMean I/O over %d privacy-aware 3NN queries:\n", len(batch))
	pebIO := measure("PEB-tree", peb.Pool(), func(q workload.KNNQuery) error {
		_, err := peb.PKNN(q.Issuer, q.X, q.Y, q.K, q.T)
		return err
	})
	spatIO := measure("spatial index + filtering", baseline.Pool(), func(q workload.KNNQuery) error {
		_, err := baseline.PKNN(q.Issuer, q.X, q.Y, q.K, q.T)
		return err
	})
	fmt.Printf("  → the PEB-tree uses %.1f× less I/O\n", spatIO/pebIO)
	_ = bxtree.Window{} // the bxtree types flow through the public API
}
