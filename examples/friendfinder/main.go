// Friendfinder: the paper's motivating application — "find my k nearest
// friends who are willing to be seen" — on a network-based workload.
//
// A population of users moves between hub destinations (the workload of
// Sec. 7.7). Each user grants visibility to a small social circle. The
// example serves the PEB side entirely through the public peb API — bulk
// policy restore, batched movement ingest, pinned snapshots with
// per-session I/O counters — and compares its query I/O against the
// spatial-index-plus-filtering baseline on the same data, reproducing the
// paper's headline effect end to end.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/bxtree"
	"repro/internal/spatialidx"
	"repro/internal/store"
	"repro/internal/workload"
	"repro/peb"
)

func main() {
	// 10K users moving between 50 hubs; everyone has 20 policies, 80% of
	// them inside their social group.
	cfg := workload.DefaultConfig()
	cfg.NumUsers = 10_000
	cfg.PoliciesPerUser = 20
	cfg.GroupingFactor = 0.8
	cfg.Distribution = workload.Network
	cfg.NumHubs = 50
	cfg.Seed = 7

	ds, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The service database: restore the policy store (which re-runs the
	// offline encoding of Sec. 5.1), then bulk-load all movement in one
	// batch. The paper's 50-page buffer keeps I/O comparable.
	db, err := peb.Open(peb.Options{
		SpaceSide: cfg.Space,
		DayLength: cfg.DayLen,
		MaxSpeed:  cfg.MaxSpeed,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	var buf bytes.Buffer
	if err := ds.Policies.Save(&buf); err != nil {
		log.Fatal(err)
	}
	if err := db.LoadPolicies(&buf); err != nil {
		log.Fatal(err)
	}
	load := db.NewBatch()
	for _, o := range ds.Objects {
		load.Upsert(o)
	}
	if err := db.Apply(load); err != nil {
		log.Fatal(err)
	}

	// The privacy-unaware baseline: a spatial index plus post-filtering,
	// over its own disk and buffer so I/O counts are independent.
	base := bxtree.DefaultConfig()
	grid := base.Grid
	grid.Side = cfg.Space
	base.Grid = grid
	base.MaxSpeed = cfg.MaxSpeed
	baseline, err := spatialidx.New(base, store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages), ds.Policies)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range ds.Objects {
		if err := baseline.Insert(o); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("Indexed %d users moving between %d hubs (%d policies)\n",
		db.Size(), cfg.NumHubs, ds.Policies.NumPolicies())

	// Issue "find my 3 nearest visible friends" for a few users, all from
	// one consistent snapshot.
	const tq = 60.0
	snap, err := db.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	for _, q := range ds.GenKNNQueries(5, 3, tq) {
		found, err := snap.NearestNeighbors(q.Issuer, q.X, q.Y, q.K, q.T)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nu%d at (%.0f, %.0f) — %d visible friend(s):\n", q.Issuer, q.X, q.Y, len(found))
		for i, nb := range found {
			x, y := nb.Object.PositionAt(tq)
			fmt.Printf("  %d. u%-6d %.1f away at (%.0f, %.0f)\n", i+1, nb.Object.UID, nb.Dist, x, y)
		}
		if len(found) == 0 {
			fmt.Println("  (no friend is currently willing to share their location)")
		}
	}

	// Replay a larger batch on both indexes and compare I/O. Both sides
	// start from a cold cache (the paper's measurement convention); the
	// PEB side then runs on a fresh snapshot whose counters cover exactly
	// this session.
	snap.Close() // release the demo session before dropping caches
	batch := ds.GenKNNQueries(200, 3, tq)
	fmt.Printf("\nMean I/O over %d privacy-aware 3NN queries:\n", len(batch))

	if err := db.DropCaches(); err != nil {
		log.Fatal(err)
	}
	session, err := db.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	for _, q := range batch {
		if _, err := session.NearestNeighbors(q.Issuer, q.X, q.Y, q.K, q.T); err != nil {
			log.Fatal(err)
		}
	}
	pebIO := float64(session.IOStats().Misses) / float64(len(batch))
	fmt.Printf("  %-28s %6.1f I/Os per query\n", "PEB-tree", pebIO)

	if err := baseline.Pool().DropAll(); err != nil {
		log.Fatal(err)
	}
	baseline.Pool().ResetStats()
	for _, q := range batch {
		if _, err := baseline.PKNN(q.Issuer, q.X, q.Y, q.K, q.T); err != nil {
			log.Fatal(err)
		}
	}
	spatIO := float64(baseline.Pool().Stats().Misses) / float64(len(batch))
	fmt.Printf("  %-28s %6.1f I/Os per query\n", "spatial index + filtering", spatIO)
	fmt.Printf("  → the PEB-tree uses %.1f× less I/O\n", spatIO/pebIO)
}
