// Geofence: time-windowed, privacy-aware presence alerts.
//
// A dispatcher (for example, an event organizer) repeatedly asks "which of
// the users that opted in are inside my venue right now?" — a privacy-aware
// range query (Definition 2) evaluated at successive timestamps. Users'
// policies restrict visibility to the venue area and to the event's hours,
// exactly the <role, locr, tint> structure of the paper's policies, so the
// same user appears and disappears from the answer as the clock and their
// position move.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bxtree"
	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
)

func main() {
	space := policy.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	const dayLen = 1440.0
	venue := policy.Region{MinX: 400, MinY: 400, MaxX: 600, MaxY: 600}
	eventHours := policy.TimeInterval{Start: 60, End: 240} // a 3-hour event

	policies, err := policy.NewStore(space, dayLen)
	if err != nil {
		log.Fatal(err)
	}

	// The dispatcher is user 1. 400 attendees opt in: they let the
	// dispatcher see them only while they are inside the venue during
	// event hours. Another 400 bystanders never opt in.
	const (
		dispatcher = policy.UserID(1)
		attendees  = 400
		bystanders = 400
	)
	users := []policy.UserID{dispatcher}
	for i := 0; i < attendees+bystanders; i++ {
		u := policy.UserID(10 + i)
		users = append(users, u)
		if i < attendees {
			policies.SetRelation(u, dispatcher, "organizer")
			err := policies.AddPolicy(u, policy.Policy{Role: "organizer", Locr: venue, Tint: eventHours})
			if err != nil {
				log.Fatal(err)
			}
		}
	}

	assignment, err := policy.AssignSequenceValues(policies, users, policy.AssignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pool := store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages)
	tree, err := core.New(core.DefaultConfig(), pool, policies, assignment)
	if err != nil {
		log.Fatal(err)
	}

	// Scatter everyone around the venue with drifting motion.
	rng := rand.New(rand.NewSource(3))
	for i, u := range users {
		if u == dispatcher {
			continue
		}
		obj := motion.Object{
			UID: motion.UserID(u),
			X:   300 + rng.Float64()*400,
			Y:   300 + rng.Float64()*400,
			VX:  (rng.Float64() - 0.5) * 4,
			VY:  (rng.Float64() - 0.5) * 4,
			T:   float64(i%50) * 0.1,
		}
		if err := tree.Insert(obj); err != nil {
			log.Fatal(err)
		}
	}

	// Poll the venue before, during, and after the event. The spatial
	// window is the venue; the policy layer trims the answer to opted-in
	// attendees inside their permitted window.
	window := bxtree.Window{MinX: venue.MinX, MinY: venue.MinY, MaxX: venue.MaxX, MaxY: venue.MaxY}
	fmt.Println("Privacy-aware venue presence (window = venue):")
	for _, tq := range []float64{30, 90, 150, 210, 300} {
		inside, err := tree.PRQ(motion.UserID(dispatcher), window, tq)
		if err != nil {
			log.Fatal(err)
		}
		phase := "during event"
		if !eventHours.Contains(tq, dayLen) {
			phase = "outside event hours"
		}
		fmt.Printf("  t=%3.0f (%-19s): %3d visible attendees\n", tq, phase, len(inside))
	}

	stats := pool.Stats()
	fmt.Printf("\nTotal I/O: %d requests, %d misses (%.1f%% buffer hit rate)\n",
		stats.Accesses(), stats.Misses, 100*float64(stats.Hits)/float64(stats.Accesses()))
}
