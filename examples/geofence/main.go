// Geofence: time-windowed, privacy-aware presence alerts on the public
// peb API.
//
// A dispatcher (for example, an event organizer) repeatedly asks "which of
// the users that opted in are inside my venue right now?" — a privacy-aware
// range query (Definition 2) evaluated at successive timestamps. Users'
// policies restrict visibility to the venue area and to the event's hours,
// exactly the <role, locr, tint> structure of the paper's policies, so the
// same user appears and disappears from the answer as the clock and their
// position move.
//
// The polling loop runs on a pinned Snapshot and consumes the query as a
// stream (RangeQueryCtx): attendees are counted as the index scan finds
// them, under a context deadline — the shape of a real alerting loop that
// must bound each poll's latency, and that must not hold any database lock
// while it processes results.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/peb"
)

func main() {
	db, err := peb.Open(peb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	venue := peb.Region{MinX: 400, MinY: 400, MaxX: 600, MaxY: 600}
	eventHours := peb.TimeInterval{Start: 60, End: 240} // a 3-hour event
	const dayLen = 1440.0

	// The dispatcher is user 1. 400 attendees opt in: they let the
	// dispatcher see them only while they are inside the venue during
	// event hours. Another 400 bystanders never opt in. All staged in one
	// batch.
	const (
		dispatcher = peb.UserID(1)
		attendees  = 400
		bystanders = 400
	)
	setup := db.NewBatch()
	for i := 0; i < attendees+bystanders; i++ {
		u := peb.UserID(10 + i)
		if i < attendees {
			setup.DefineRelation(u, dispatcher, "organizer")
			setup.Grant(u, "organizer", venue, eventHours)
		}
	}
	if err := db.Apply(setup); err != nil {
		log.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		log.Fatal(err)
	}

	// Scatter everyone around the venue with drifting motion and bulk-load.
	rng := rand.New(rand.NewSource(3))
	load := db.NewBatch()
	for i := 0; i < attendees+bystanders; i++ {
		load.Upsert(peb.Object{
			UID: peb.UserID(10 + i),
			X:   300 + rng.Float64()*400,
			Y:   300 + rng.Float64()*400,
			VX:  (rng.Float64() - 0.5) * 4,
			VY:  (rng.Float64() - 0.5) * 4,
			T:   float64(i%50) * 0.1,
		})
	}
	if err := db.Apply(load); err != nil {
		log.Fatal(err)
	}

	// Poll the venue before, during, and after the event. The spatial
	// window is the venue; the policy layer trims the answer to opted-in
	// attendees inside their permitted window. One pinned snapshot serves
	// the whole sweep — every poll sees the same consistent state, with no
	// lock held while results stream out.
	snap, err := db.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()

	fmt.Println("Privacy-aware venue presence (window = venue):")
	for _, tq := range []float64{30, 90, 150, 210, 300} {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		visible := 0
		for _, err := range snap.RangeQueryCtx(ctx, peb.UserID(dispatcher), venue, tq) {
			if err != nil {
				log.Fatal(err) // deadline exceeded or index error
			}
			visible++ // a real dispatcher would fire an alert per attendee here
		}
		cancel()
		phase := "during event"
		if !eventHours.Contains(tq, dayLen) {
			phase = "outside event hours"
		}
		fmt.Printf("  t=%3.0f (%-19s): %3d visible attendees\n", tq, phase, visible)
	}

	stats := snap.IOStats()
	fmt.Printf("\nSweep I/O: %d requests, %d misses (%.1f%% buffer hit rate)\n",
		stats.Accesses(), stats.Misses, 100*float64(stats.Hits)/float64(stats.Accesses()))
}
