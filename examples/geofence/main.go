// Geofence: standing, privacy-aware presence alerts on the peb/cq API.
//
// A dispatcher (for example, an event organizer) wants to know "which of
// the users that opted in are inside my venue?" — a privacy-aware range
// query (Definition 2). Earlier versions of this example polled: they
// re-ran the query at successive timestamps against a snapshot. Here the
// dispatcher instead registers the venue ONCE as a continuous query and
// the engine pushes enter/leave/update deltas at commit time, evaluating
// only the objects each commit touched. Users' policies restrict
// visibility to the venue area and to the event's hours — the
// <role, locr, tint> structure of the paper's policies — so bystanders
// who never opted in stay invisible no matter how they move.
//
// Deltas are enqueued synchronously under the commit critical section,
// so once Apply returns, every delta of that commit is already in the
// subscription's buffer: the non-blocking drain below is deterministic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/peb"
	"repro/peb/cq"
)

// drain empties the subscription's buffered deltas into the dispatcher's
// presence mirror and reports the enters/leaves seen.
func drain(sub *cq.Subscription, present map[peb.UserID]bool) (enters, leaves int) {
	for {
		select {
		case d, ok := <-sub.Deltas():
			if !ok {
				return
			}
			switch d.Kind {
			case cq.Enter:
				present[d.Object.UID] = true
				enters++
			case cq.Leave:
				delete(present, d.Object.UID)
				leaves++
			}
		default:
			return
		}
	}
}

func main() {
	db, err := peb.Open(peb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	venue := peb.Region{MinX: 400, MinY: 400, MaxX: 600, MaxY: 600}
	eventHours := peb.TimeInterval{Start: 60, End: 240} // a 3-hour event

	// The dispatcher is user 1. 400 attendees opt in: they let the
	// dispatcher see them only while they are inside the venue during
	// event hours. Another 400 bystanders never opt in. All staged in one
	// batch.
	const (
		dispatcher = peb.UserID(1)
		attendees  = 400
		bystanders = 400
	)
	setup := db.NewBatch()
	for i := 0; i < attendees+bystanders; i++ {
		u := peb.UserID(10 + i)
		if i < attendees {
			setup.DefineRelation(u, dispatcher, "organizer")
			setup.Grant(u, "organizer", venue, eventHours)
		}
	}
	if err := db.Apply(setup); err != nil {
		log.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		log.Fatal(err)
	}

	// Everyone starts scattered OUTSIDE the venue. Timestamps sit near the
	// subscription's evaluation time so the engine's Hilbert-interval prune
	// stays armed (the update contract: |t − tq| within ∆tmu).
	const tq = 150.0 // mid-event
	rng := rand.New(rand.NewSource(3))
	outside := func() (x, y float64) {
		x, y = rng.Float64()*1000, rng.Float64()*1000
		if x >= 350 && x <= 650 && y >= 350 && y <= 650 {
			x -= 350 // push out of the venue's neighborhood
		}
		return x, y
	}
	load := db.NewBatch()
	for i := 0; i < attendees+bystanders; i++ {
		x, y := outside()
		load.Upsert(peb.Object{UID: peb.UserID(10 + i), X: x, Y: y, T: 140})
	}
	if err := db.Apply(load); err != nil {
		log.Fatal(err)
	}

	// Register the standing query. The initial result seeds the mirror;
	// from here on, only deltas arrive.
	eng, err := cq.Attach(db)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	sub, initial, err := eng.SubscribeRange(dispatcher, venue, tq, cq.SubOptions{Buffer: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	present := make(map[peb.UserID]bool, attendees)
	for _, o := range initial {
		present[o.UID] = true
	}

	// move commits one batch of position updates: users[lo:hi) jump inside
	// the venue or back out, at time t.
	move := func(lo, hi int, intoVenue bool, t float64) {
		b := db.NewBatch()
		for i := lo; i < hi; i++ {
			var x, y float64
			if intoVenue {
				x = 410 + rng.Float64()*180
				y = 410 + rng.Float64()*180
			} else {
				x, y = outside()
			}
			b.Upsert(peb.Object{UID: peb.UserID(10 + i), X: x, Y: y, T: t})
		}
		if err := db.Apply(b); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("Standing privacy-aware venue watch (window = venue, evaluated mid-event):")
	phases := []struct {
		name string
		t    float64
		act  func(t float64)
	}{
		{"doors open", 145, func(t float64) {}},
		{"early arrivals", 155, func(t float64) { move(0, attendees/2, true, t) }},
		{"full house", 165, func(t float64) {
			move(attendees/2, attendees, true, t)
			// Bystanders wander in too — no grant, so no deltas fire.
			move(attendees, attendees+bystanders, true, t)
		}},
		{"milling crowd", 175, func(t float64) { move(0, attendees, true, t) }},
		{"everyone leaves", 185, func(t float64) { move(0, attendees+bystanders, false, t) }},
	}
	for _, ph := range phases {
		ph.act(ph.t)
		enters, leaves := drain(sub, present)
		fmt.Printf("  t=%3.0f (%-19s): %3d visible attendees (+%d/-%d)\n",
			ph.t, ph.name, len(present), enters, leaves)
	}

	st := eng.Stats()
	fmt.Printf("\nEngine: %d commits, %d deltas; evaluated %d candidates where naive re-runs cost %d (%.0fx less)\n",
		st.Commits, st.Deltas, st.Evaluated, st.Naive,
		float64(st.Naive)/float64(st.Evaluated))
}
