// Quickstart: the public peb API end to end — define location-privacy
// policies, bulk-load a handful of moving users with a write batch, and
// run one privacy-aware range query and one privacy-aware kNN query on a
// pinned snapshot.
//
// This mirrors the paper's running example (Fig. 3): user u1 looks for
// nearby friends, but only friends whose policies currently allow u1 to
// see them appear in the results.
package main

import (
	"fmt"
	"log"

	"repro/peb"
)

func main() {
	// The service space is 1000 × 1000 (think kilometres) and policy time
	// windows live on a 1440-minute day — the defaults.
	db, err := peb.Open(peb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// u1 is the query issuer. Users u12, u30, u59, u100, and u130 are
	// friends of u1 — each grants u1 visibility under different
	// spatio-temporal conditions, like the policies of Definition 1:
	// P = <friend, locr, tint>. Policies are staged in a batch and applied
	// atomically: no query anywhere can observe half the policy set.
	space := peb.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	downtown := peb.Region{MinX: 0, MinY: 0, MaxX: 500, MaxY: 500}
	morning := peb.TimeInterval{Start: 0, End: 720}
	evening := peb.TimeInterval{Start: 720, End: 1440}

	policies := db.NewBatch()
	grant := func(owner peb.UserID, locr peb.Region, tint peb.TimeInterval) {
		policies.DefineRelation(owner, 1, "friend")
		policies.Grant(owner, "friend", locr, tint)
	}
	grant(12, space, morning)    // u12: visible anywhere, in the morning
	grant(30, downtown, morning) // u30: visible only downtown, mornings
	grant(59, downtown, evening) // u59: downtown, evenings only
	grant(100, space, evening)   // u100: anywhere, but evenings only
	grant(130, downtown, morning)
	if err := db.Apply(policies); err != nil {
		log.Fatal(err)
	}

	// Offline policy encoding (Sec. 5.1): compatibility scores become
	// sequence values that place related users close together in the key
	// space.
	if err := db.EncodePolicies(); err != nil {
		log.Fatal(err)
	}

	// Bulk-load everyone's latest movement update (position, velocity,
	// time): one staged batch, one lock acquisition, one view republish.
	load := db.NewBatch()
	for _, o := range []peb.Object{
		{UID: 1, X: 300, Y: 300, VX: 0.5, VY: 0, T: 10},
		{UID: 12, X: 320, Y: 310, VX: -0.2, VY: 0.1, T: 12},
		{UID: 30, X: 280, Y: 290, VX: 0, VY: 0.3, T: 8},
		{UID: 59, X: 350, Y: 330, VX: 0.1, VY: -0.1, T: 15},
		{UID: 100, X: 305, Y: 295, VX: 0.2, VY: 0.2, T: 11},
		{UID: 130, X: 900, Y: 900, VX: -1, VY: -1, T: 9}, // far away
		{UID: 200, X: 310, Y: 305, VX: 0, VY: 0, T: 10},  // not a friend
		{UID: 201, X: 295, Y: 315, VX: 0.4, VY: 0.4, T: 14},
	} {
		load.Upsert(o)
	}
	if err := db.Apply(load); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d users indexed\n", db.Size())

	// Pin a snapshot: both queries below see the same consistent state,
	// and the I/O they cost is attributed to this session alone.
	snap, err := db.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()

	// A privacy-aware range query at t = 30 (morning): "who around
	// downtown may I see right now?"
	window := peb.Region{MinX: 200, MinY: 200, MaxX: 400, MaxY: 400}
	inRange, err := snap.RangeQuery(1, window, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPRQ %v at t=30 →", window)
	for _, o := range inRange {
		x, y := o.PositionAt(30)
		fmt.Printf(" u%d@(%.0f,%.0f)", o.UID, x, y)
	}
	fmt.Println()

	// A privacy-aware 2-NN query from u1's position: nearest friends who
	// are currently visible. u100 is nearby but evening-only, so — exactly
	// like the paper's running example — it is not returned.
	neighbors, err := snap.NearestNeighbors(1, 300, 300, 2, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nP2NN from (300,300) at t=30:")
	for i, nb := range neighbors {
		fmt.Printf("  %d. u%d at distance %.1f\n", i+1, nb.Object.UID, nb.Dist)
	}

	stats := snap.IOStats()
	fmt.Printf("\nSession I/O: %d page requests, %d buffer misses\n", stats.Accesses(), stats.Misses)
}
