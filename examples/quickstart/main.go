// Quickstart: build a PEB-tree over a handful of users, define
// location-privacy policies, and run one privacy-aware range query and one
// privacy-aware kNN query.
//
// This mirrors the paper's running example (Fig. 3): user u1 looks for
// nearby friends, but only friends whose policies currently allow u1 to
// see them appear in the results.
package main

import (
	"fmt"
	"log"

	"repro/internal/bxtree"
	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
)

func main() {
	// The service space is 1000 × 1000 (think kilometres) and policy time
	// windows live on a 1440-minute day.
	space := policy.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	const dayLen = 1440.0

	policies, err := policy.NewStore(space, dayLen)
	if err != nil {
		log.Fatal(err)
	}

	// u1 is the query issuer. Users u12, u30, u59, u100, and u130 are
	// friends of u1 — each grants u1 visibility under different
	// spatio-temporal conditions, like the policies of Definition 1:
	// P = <friend, locr, tint>.
	downtown := policy.Region{MinX: 0, MinY: 0, MaxX: 500, MaxY: 500}
	morning := policy.TimeInterval{Start: 0, End: 720}
	evening := policy.TimeInterval{Start: 720, End: 1440}

	grant := func(owner policy.UserID, locr policy.Region, tint policy.TimeInterval) {
		policies.SetRelation(owner, 1, "friend")
		if err := policies.AddPolicy(owner, policy.Policy{Role: "friend", Locr: locr, Tint: tint}); err != nil {
			log.Fatal(err)
		}
	}
	grant(12, space, morning)    // u12: visible anywhere, in the morning
	grant(30, downtown, morning) // u30: visible only downtown, mornings
	grant(59, downtown, evening) // u59: downtown, evenings only
	grant(100, space, evening)   // u100: anywhere, but evenings only
	grant(130, downtown, morning)

	// Offline policy encoding (Sec. 5.1): compatibility scores become
	// sequence values that place related users close together in the key
	// space.
	users := []policy.UserID{1, 12, 30, 59, 100, 130, 200, 201}
	assignment, err := policy.AssignSequenceValues(policies, users, policy.AssignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Sequence values:")
	for _, u := range users {
		fmt.Printf("  u%-4d SV = %.3f\n", u, assignment.SV[u])
	}

	// Build the PEB-tree over a 4 KB-page disk with the paper's 50-page
	// LRU buffer.
	pool := store.NewBufferPool(store.NewMemDisk(), store.DefaultBufferPages)
	tree, err := core.New(core.DefaultConfig(), pool, policies, assignment)
	if err != nil {
		log.Fatal(err)
	}

	// Insert everyone's latest movement update (position, velocity, time).
	objects := []motion.Object{
		{UID: 1, X: 300, Y: 300, VX: 0.5, VY: 0, T: 10},
		{UID: 12, X: 320, Y: 310, VX: -0.2, VY: 0.1, T: 12},
		{UID: 30, X: 280, Y: 290, VX: 0, VY: 0.3, T: 8},
		{UID: 59, X: 350, Y: 330, VX: 0.1, VY: -0.1, T: 15},
		{UID: 100, X: 305, Y: 295, VX: 0.2, VY: 0.2, T: 11},
		{UID: 130, X: 900, Y: 900, VX: -1, VY: -1, T: 9}, // far away
		{UID: 200, X: 310, Y: 305, VX: 0, VY: 0, T: 10},  // not a friend
		{UID: 201, X: 295, Y: 315, VX: 0.4, VY: 0.4, T: 14},
	}
	for _, o := range objects {
		if err := tree.Insert(o); err != nil {
			log.Fatal(err)
		}
	}

	// A privacy-aware range query at t = 30 (morning): "who around
	// downtown may I see right now?"
	window := bxtree.Window{MinX: 200, MinY: 200, MaxX: 400, MaxY: 400}
	inRange, err := tree.PRQ(1, window, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPRQ %v at t=30 →", window)
	for _, o := range inRange {
		x, y := o.PositionAt(30)
		fmt.Printf(" u%d@(%.0f,%.0f)", o.UID, x, y)
	}
	fmt.Println()

	// A privacy-aware 2-NN query from u1's position: nearest friends who
	// are currently visible. u100 is nearby but evening-only, so — exactly
	// like the paper's running example — it is not returned.
	neighbors, err := tree.PKNN(1, 300, 300, 2, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nP2NN from (300,300) at t=30:")
	for i, nb := range neighbors {
		fmt.Printf("  %d. u%d at distance %.1f\n", i+1, nb.Object.UID, nb.Dist)
	}

	stats := pool.Stats()
	fmt.Printf("\nI/O: %d page requests, %d buffer misses\n", stats.Accesses(), stats.Misses)
}
