// Costexplorer: what-if exploration with the query I/O cost model (Sec. 6).
//
// The example calibrates Eq. 7's a1 and a2 from two measured sample points,
// then prints predicted privacy-aware range-query costs across a grid of
// workload parameters — including the break-even analysis the paper closes
// Sec. 6 with: the PEB-tree stops paying off when a user is related to
// roughly 5% of the population.
//
// The sample points are measured through the public API: a peb.DB is
// bulk-loaded (exp.BuildDB: policy restore + one batched Apply) and the
// query replay runs on a pinned Snapshot, whose per-session I/O counters
// and LeafCount provide the measured cost and the model's Nl directly. The
// spatial baseline for the break-even line is measured the same way the
// paper does, on its own index.
package main

import (
	"fmt"
	"log"

	"repro/internal/bxtree"
	"repro/internal/costmodel"
	"repro/internal/exp"
	"repro/internal/spatialidx"
	"repro/internal/store"
	"repro/peb"
)

func main() {
	// Measure two real sample points at different densities (small scale
	// so the example runs in seconds).
	fmt.Println("Calibrating Eq. 7 from two measured sample points...")
	var baselineIO float64
	sample := func(users int) costmodel.Sample {
		cfg := exp.DefaultConfig()
		cfg.Workload.NumUsers = users
		cfg.Workload.PoliciesPerUser = 20
		cfg.Workload.GroupSize = 0
		cfg.QueryCount = 100

		// The paper's 50-page buffer, so misses are the paper's I/O metric.
		db, ds, err := exp.BuildDB(cfg, cfg.Buffer)
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		qs := ds.GenPRQueries(cfg.QueryCount, cfg.WindowSide, cfg.QueryTime)

		// Cold-start before measuring, exactly like the baseline below —
		// both sides must pay the same compulsory misses.
		if err := db.DropCaches(); err != nil {
			log.Fatal(err)
		}
		snap, err := db.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		defer snap.Close()
		for _, q := range qs {
			r := peb.Region{MinX: q.W.MinX, MinY: q.W.MinY, MaxX: q.W.MaxX, MaxY: q.W.MaxY}
			if _, err := snap.RangeQuery(q.Issuer, r, q.T); err != nil {
				log.Fatal(err)
			}
		}
		io := float64(snap.IOStats().Misses) / float64(len(qs))

		// The spatial baseline at the same density (kept for the larger
		// population's break-even line).
		base := bxtree.DefaultConfig()
		grid := base.Grid
		grid.Side = cfg.Workload.Space
		base.Grid = grid
		base.MaxSpeed = cfg.Workload.MaxSpeed
		spatial, err := spatialidx.New(base, store.NewBufferPool(store.NewMemDisk(), cfg.Buffer), ds.Policies)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range ds.Objects {
			if err := spatial.Insert(o); err != nil {
				log.Fatal(err)
			}
		}
		if err := spatial.Pool().DropAll(); err != nil {
			log.Fatal(err)
		}
		spatial.Pool().ResetStats()
		for _, q := range qs {
			if _, err := spatial.PRQ(q.Issuer, q.W, q.T); err != nil {
				log.Fatal(err)
			}
		}
		baselineIO = float64(spatial.Pool().Stats().Misses) / float64(len(qs))

		s := costmodel.Sample{
			Params: costmodel.Params{
				N:     users,
				Np:    cfg.Workload.PoliciesPerUser,
				Theta: cfg.Workload.GroupingFactor,
				Nl:    snap.LeafCount(),
				L:     cfg.Workload.Space,
			},
			IO: io,
		}
		fmt.Printf("  N=%-6d → measured %.1f I/Os (Nl=%d)\n", users, io, s.Params.Nl)
		return s
	}
	model, err := costmodel.Calibrate(sample(4_000), sample(12_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  calibrated: a1=%.4g, a2=%.4g\n\n", model.A1, model.A2)

	// What-if grid: predicted PRQ cost as policies per user and grouping
	// factor vary at a fixed population.
	const n = 12_000
	nl := 160 // leaves at this population (from the sample above)
	fmt.Printf("Predicted PRQ I/O at N=%d:\n", n)
	fmt.Printf("%14s", "Np \\ θ")
	thetas := []float64{0, 0.3, 0.5, 0.7, 0.9, 1.0}
	for _, th := range thetas {
		fmt.Printf("%8.1f", th)
	}
	fmt.Println()
	for _, np := range []int{10, 25, 50, 100, 200} {
		fmt.Printf("%14d", np)
		for _, th := range thetas {
			c, err := model.Cost(costmodel.Params{N: n, Np: np, Theta: th, Nl: nl, L: 1000})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.1f", c)
		}
		fmt.Println()
	}

	// Break-even analysis (end of Sec. 6): find the Np at which the
	// PEB-tree's predicted cost reaches the spatial baseline's measured
	// cost for the default window at this population.
	baseline := baselineIO
	fmt.Printf("\nBaseline (spatial index, default window, measured): %.1f I/Os\n", baseline)
	for _, th := range []float64{0.5, 0.7, 0.9} {
		for np := 1; np <= n; np++ {
			c, err := model.Cost(costmodel.Params{N: n, Np: np, Theta: th, Nl: nl, L: 1000})
			if err != nil {
				log.Fatal(err)
			}
			if c >= baseline {
				fmt.Printf("  θ=%.1f: PEB-tree stops winning at ≈ %d policies/user (%.2f%% of the population)\n",
					th, np, 100*float64(np)/float64(n))
				break
			}
			if np == n {
				fmt.Printf("  θ=%.1f: PEB-tree wins across the whole range\n", th)
			}
		}
	}
}
