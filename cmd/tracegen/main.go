// Command tracegen dumps the synthetic workloads used by the experiments —
// moving-object snapshots, location-privacy policies, and query sets — as
// CSV on stdout, for inspection or for feeding external tools.
//
// With -load, the generated movement snapshot is additionally bulk-loaded
// into an in-memory peb.DB through the batched write handle (NewBatch +
// Apply) and load statistics are printed to stderr — a quick end-to-end
// sanity check that a generated trace is ingestible, and a demonstration
// of the bulk-load path.
//
// Usage:
//
//	tracegen -kind objects -n 10000 -dist network -hubs 50
//	tracegen -kind policies -n 1000 -np 20 -theta 0.9
//	tracegen -kind queries -n 5000 -queries 200 -window 200
//	tracegen -kind objects -n 50000 -load
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/policy"
	"repro/internal/workload"
	"repro/peb"
)

func main() {
	var (
		kind    = flag.String("kind", "objects", "what to dump: objects | policies | queries | knnqueries")
		n       = flag.Int("n", 10_000, "number of users")
		np      = flag.Int("np", 50, "policies per user")
		theta   = flag.Float64("theta", 0.7, "grouping factor")
		dist    = flag.String("dist", "uniform", "distribution: uniform | network")
		hubs    = flag.Int("hubs", 100, "network destinations (network distribution)")
		speed   = flag.Float64("speed", 3, "maximum object speed")
		seed    = flag.Int64("seed", 1, "generator seed")
		queries = flag.Int("queries", 200, "number of queries (queries kinds)")
		window  = flag.Float64("window", 200, "query window side (queries kind)")
		k       = flag.Int("k", 5, "k (knnqueries kind)")
		tq      = flag.Float64("tq", 60, "query time")
		load    = flag.Bool("load", false, "bulk-load the objects into a peb.DB and report stats (stderr)")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.NumUsers = *n
	cfg.PoliciesPerUser = *np
	cfg.GroupingFactor = *theta
	cfg.MaxSpeed = *speed
	cfg.Seed = *seed
	switch *dist {
	case "uniform":
		cfg.Distribution = workload.Uniform
	case "network":
		cfg.Distribution = workload.Network
		cfg.NumHubs = *hubs
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	ds, err := workload.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}

	if *load {
		db, err := peb.Open(peb.Options{
			SpaceSide: cfg.Space,
			DayLength: cfg.DayLen,
			MaxSpeed:  cfg.MaxSpeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer db.Close()
		batch := db.NewBatch()
		for _, o := range ds.Objects {
			batch.Upsert(o)
		}
		start := time.Now()
		swaps := db.ViewSwaps()
		if err := db.Apply(batch); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: bulk load: %v\n", err)
			os.Exit(1)
		}
		stats := db.IOStats()
		fmt.Fprintf(os.Stderr, "tracegen: bulk-loaded %d objects in %v (%d buffer misses, %d write-backs, %d view republish)\n",
			db.Size(), time.Since(start).Round(time.Millisecond),
			stats.Misses, stats.WriteBack, db.ViewSwaps()-swaps)
	}

	switch *kind {
	case "objects":
		fmt.Println("uid,x,y,vx,vy,t")
		for _, o := range ds.Objects {
			fmt.Printf("%d,%g,%g,%g,%g,%g\n", o.UID, o.X, o.Y, o.VX, o.VY, o.T)
		}
	case "policies":
		fmt.Println("owner,viewer,role,min_x,min_y,max_x,max_y,tint_start,tint_end")
		ds.Policies.ForEachGrant(func(owner, viewer policy.UserID, p policy.Policy) bool {
			fmt.Printf("%d,%d,%s,%g,%g,%g,%g,%g,%g\n",
				owner, viewer, p.Role, p.Locr.MinX, p.Locr.MinY, p.Locr.MaxX, p.Locr.MaxY,
				p.Tint.Start, p.Tint.End)
			return true
		})
	case "queries":
		fmt.Println("issuer,min_x,min_y,max_x,max_y,t")
		for _, q := range ds.GenPRQueries(*queries, *window, *tq) {
			fmt.Printf("%d,%g,%g,%g,%g,%g\n", q.Issuer, q.W.MinX, q.W.MinY, q.W.MaxX, q.W.MaxY, q.T)
		}
	case "knnqueries":
		fmt.Println("issuer,x,y,k,t")
		for _, q := range ds.GenKNNQueries(*queries, *k, *tq) {
			fmt.Printf("%d,%g,%g,%d,%g\n", q.Issuer, q.X, q.Y, q.K, q.T)
		}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
