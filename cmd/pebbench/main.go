// Command pebbench reproduces the paper's experiments: it builds the
// PEB-tree and the spatial-index baseline over identical synthetic
// workloads and reports the mean query I/O cost per data point for every
// figure of Sec. 7 (plus three ablation studies).
//
// Usage:
//
//	pebbench -list
//	pebbench -exp fig12a [-scale 0.5] [-seed 1] [-parallel 4] [-queries 200] [-csv] [-v]
//	pebbench -exp bulkload -quick
//	pebbench -all -scale 0.25 -o results/
//	pebbench -json -quick [-baseline BENCH_pr6.json] > report.json
//
// -json runs the hot-path measurement pass instead of a figure experiment:
// durable-commit latency/allocations/fsyncs, the gob-vs-binary WAL codec
// comparison, full-vs-incremental checkpoint page counts, and the pooled
// PkNN query path, as one JSON document on stdout. With -baseline, the
// report's stable counters (allocations, fsyncs, pages walked, bytes per
// record — never latencies) are diffed against a committed report and the
// exit status is non-zero on regression.
//
// The -scale flag multiplies every population size in a sweep, so full
// paper-scale sweeps (-scale 1, the default) and quick shape checks
// (-scale 0.1) use the same code path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and default settings")
		expID    = flag.String("exp", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		scale    = flag.Float64("scale", 1, "population scale factor")
		seed     = flag.Int64("seed", 1, "workload seed")
		parallel = flag.Int("parallel", 0, "concurrent data points (0 = auto)")
		queries  = flag.Int("queries", 0, "queries per data point (0 = 200)")
		csv      = flag.Bool("csv", false, "print CSV instead of an aligned table")
		outDir   = flag.String("o", "", "also write <id>.csv files into this directory")
		verbose  = flag.Bool("v", false, "log per-point progress to stderr")
		quick    = flag.Bool("quick", false, "smoke-test preset: tiny populations, few queries (CI)")
		jsonOut  = flag.Bool("json", false, "run the hot-path bench and print its JSON report to stdout")
		baseline = flag.String("baseline", "", "with -json: diff stable counters against this committed report")
		mon      = flag.String("mon", "", "serve /metrics, /statusz, and /debug/pprof on this address while engine-driving experiments run (e.g. localhost:6060)")
	)
	flag.Parse()
	if *quick {
		if *scale > 0.02 {
			*scale = 0.02
		}
		if *queries == 0 {
			*queries = 20
		}
	}

	switch {
	case *list:
		printList()
		return
	case *jsonOut:
		runHotPath(*quick, *baseline, *verbose)
		return
	case *expID == "" && !*all:
		fmt.Fprintln(os.Stderr, "pebbench: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	opts := exp.Options{
		Scale:       *scale,
		Seed:        *seed,
		Parallel:    *parallel,
		QueryCount:  *queries,
		MonitorAddr: *mon,
	}
	if *verbose {
		opts.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, time.Now().Format("15:04:05 ")+format+"\n", args...)
		}
	}

	var targets []exp.Experiment
	if *all {
		targets = exp.Experiments
	} else {
		e, ok := exp.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "pebbench: unknown experiment %q (see -list)\n", *expID)
			os.Exit(2)
		}
		targets = []exp.Experiment{e}
	}

	for _, e := range targets {
		start := time.Now()
		table, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pebbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Print(table.String())
			fmt.Printf("(%s in %v at scale %g)\n\n", e.ID, time.Since(start).Round(time.Second), *scale)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "pebbench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "pebbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// runHotPath produces the -json report and, given a baseline, enforces its
// stable-counter budgets.
func runHotPath(quick bool, baselinePath string, verbose bool) {
	var logf func(string, ...interface{})
	if verbose {
		logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, time.Now().Format("15:04:05 ")+format+"\n", args...)
		}
	}
	rep, err := exp.RunHotPath(quick, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pebbench: hotpath: %v\n", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pebbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))

	if baselinePath == "" {
		return
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pebbench: baseline: %v\n", err)
		os.Exit(1)
	}
	var base exp.HotPathReport
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "pebbench: baseline %s: %v\n", baselinePath, err)
		os.Exit(1)
	}
	if bad := exp.CompareHotPath(base, rep); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "pebbench: %d stable counter(s) regressed vs %s:\n", len(bad), baselinePath)
		for _, msg := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", msg)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pebbench: stable counters within budget vs %s\n", baselinePath)
}

func printList() {
	fmt.Println("Experiments (paper figure → id):")
	for _, e := range exp.Experiments {
		fmt.Printf("  %-22s %s\n", e.ID, e.Title)
	}
	cfg := exp.DefaultConfig()
	fmt.Println("\nDefault settings (Table 1, bold values):")
	fmt.Printf("  users               %d\n", cfg.Workload.NumUsers)
	fmt.Printf("  policies per user   %d\n", cfg.Workload.PoliciesPerUser)
	fmt.Printf("  grouping factor     %g\n", cfg.Workload.GroupingFactor)
	fmt.Printf("  space               %g x %g\n", cfg.Workload.Space, cfg.Workload.Space)
	fmt.Printf("  max speed           %g\n", cfg.Workload.MaxSpeed)
	fmt.Printf("  query window side   %g\n", cfg.WindowSide)
	fmt.Printf("  k                   %d\n", cfg.K)
	fmt.Printf("  buffer              %d pages\n", cfg.Buffer)
	fmt.Printf("  queries per point   %d\n", cfg.QueryCount)
}
