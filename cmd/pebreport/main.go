// Command pebreport renders experiment result CSVs (written by
// `pebbench -o dir`) as Markdown tables and ASCII charts, for terminals and
// for inclusion in EXPERIMENTS.md.
//
// Usage:
//
//	pebreport results/fig12a.csv                 # markdown table + chart
//	pebreport -chart-only -width 60 results/*.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/report"
)

func main() {
	var (
		width     = flag.Int("width", 48, "chart width in characters")
		tableOnly = flag.Bool("table-only", false, "print only the markdown table")
		chartOnly = flag.Bool("chart-only", false, "print only the chart")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "pebreport: need at least one CSV file")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pebreport: %v\n", err)
			os.Exit(1)
		}
		s, err := report.ParseCSV(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pebreport: %s: %v\n", path, err)
			os.Exit(1)
		}
		name := filepath.Base(path)
		fmt.Printf("### %s\n\n", name)
		if !*chartOnly {
			fmt.Println(s.Markdown())
		}
		if !*tableOnly {
			fmt.Println("```")
			fmt.Print(s.CompareChart(*width))
			fmt.Println("```")
		}
		fmt.Println()
	}
}
