// Command pebmon is a one-shot console client for a running engine's
// observability endpoint (repro/peb/obs): it fetches /statusz and
// /metrics from the target address and prints a condensed live view —
// topology, per-shard rates, latency quantiles, recent maintainer
// events. For dashboards, point a real Prometheus scraper at /metrics
// instead; pebmon is for a quick look from a terminal.
//
// Usage:
//
//	pebmon [-addr localhost:6060] [-events 10] [-raw]
//	pebmon -watch 2s
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	var (
		addr   = flag.String("addr", "localhost:6060", "observability endpoint address (host:port)")
		events = flag.Int("events", 10, "recent events to print (0 = none)")
		raw    = flag.Bool("raw", false, "dump the raw /metrics text instead of the condensed view")
		watch  = flag.Duration("watch", 0, "refresh continuously at this interval (0 = one shot)")
	)
	flag.Parse()

	for {
		if err := report(*addr, *events, *raw); err != nil {
			fmt.Fprintf(os.Stderr, "pebmon: %v\n", err)
			if *watch == 0 {
				os.Exit(1)
			}
		}
		if *watch == 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println(strings.Repeat("-", 72))
	}
}

func fetch(url string) ([]byte, error) {
	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// event mirrors internal/obs.Event's JSON shape (pebmon speaks only the
// wire format, so it can monitor any binary serving the endpoint).
type event struct {
	Seq  uint64                 `json:"seq"`
	Time time.Time              `json:"time"`
	Type string                 `json:"type"`
	Msg  string                 `json:"msg"`
	KV   map[string]interface{} `json:"kv,omitempty"`
}

func report(addr string, eventCount int, rawDump bool) error {
	return reportTo(os.Stdout, addr, eventCount, rawDump)
}

func reportTo(w io.Writer, addr string, eventCount int, rawDump bool) error {
	base := "http://" + addr
	metrics, err := fetch(base + "/metrics")
	if err != nil {
		return err
	}
	if rawDump {
		_, err := w.Write(metrics)
		return err
	}

	var statusz struct {
		Time   time.Time       `json:"time"`
		Status json.RawMessage `json:"status"`
		Events []event         `json:"events"`
	}
	if sz, err := fetch(base + "/statusz"); err == nil {
		_ = json.Unmarshal(sz, &statusz)
	}

	samples := parseMetrics(metrics)
	fmt.Fprintf(w, "pebmon %s at %s\n\n", addr, time.Now().Format("15:04:05"))
	printScalars(w, samples)
	printShards(w, samples)
	printLatency(w, samples)
	if eventCount > 0 && len(statusz.Events) > 0 {
		n := eventCount
		if n > len(statusz.Events) {
			n = len(statusz.Events)
		}
		fmt.Fprintf(w, "\nrecent events (%d of %d shown):\n", n, len(statusz.Events))
		for _, ev := range statusz.Events[:n] {
			var kv []string
			for k, v := range ev.KV {
				kv = append(kv, fmt.Sprintf("%s=%v", k, v))
			}
			sort.Strings(kv)
			fmt.Fprintf(w, "  %s  %-16s %s  %s\n",
				ev.Time.Format("15:04:05.000"), ev.Type, ev.Msg, strings.Join(kv, " "))
		}
	}
	return nil
}

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels string // raw {...} text, "" when unlabeled
	value  float64
}

func parseMetrics(text []byte) []sample {
	var out []sample
	sc := bufio.NewScanner(strings.NewReader(string(text)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			continue
		}
		key := line[:sp]
		name, labels := key, ""
		if b := strings.IndexByte(key, '{'); b >= 0 {
			name, labels = key[:b], key[b:]
		}
		out = append(out, sample{name: name, labels: labels, value: v})
	}
	return out
}

func find(samples []sample, name string) (float64, bool) {
	var total float64
	found := false
	for _, s := range samples {
		if s.name == name {
			total += s.value
			found = true
		}
	}
	return total, found
}

func printScalars(w io.Writer, samples []sample) {
	rows := []struct{ label, metric string }{
		{"population", "peb_size"},
		{"commits", "peb_commit_seconds_count"},
		{"wal appends", "peb_wal_appends_total"},
		{"wal fsyncs", "peb_wal_syncs_total"},
		{"checkpoints", "peb_checkpoints_total"},
		{"buffer hits", "peb_buffer_hits_total"},
		{"buffer misses", "peb_buffer_misses_total"},
		{"shards", "peb_router_shards"},
		{"splits", "peb_router_splits_total"},
		{"merges", "peb_router_merges_total"},
		{"follower reads", "peb_router_follower_reads_total"},
	}
	for _, r := range rows {
		if v, ok := find(samples, r.metric); ok {
			fmt.Fprintf(w, "  %-16s %.0f\n", r.label, v)
		}
	}
}

func printShards(w io.Writer, samples []sample) {
	type shardRow struct {
		commits, queries, rate, size float64
	}
	shards := map[string]*shardRow{}
	get := func(labels string) (*shardRow, bool) {
		i := strings.Index(labels, `shard="`)
		if i < 0 {
			return nil, false
		}
		rest := labels[i+len(`shard="`):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			return nil, false
		}
		id := rest[:j]
		r, ok := shards[id]
		if !ok {
			r = &shardRow{}
			shards[id] = r
		}
		return r, true
	}
	for _, s := range samples {
		r, ok := get(s.labels)
		if !ok {
			continue
		}
		switch s.name {
		case "peb_shard_commits_total":
			r.commits = s.value
		case "peb_shard_queries_total":
			r.queries = s.value
		case "peb_shard_commit_rate":
			r.rate = s.value
		case "peb_shard_size":
			r.size = s.value
		}
	}
	if len(shards) == 0 {
		return
	}
	ids := make([]string, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "\n  %-6s %10s %10s %12s %8s\n", "shard", "commits", "queries", "commit/s", "size")
	for _, id := range ids {
		r := shards[id]
		fmt.Fprintf(w, "  %-6s %10.0f %10.0f %12.1f %8.0f\n", id, r.commits, r.queries, r.rate, r.size)
	}
}

func printLatency(w io.Writer, samples []sample) {
	var count, sum float64
	for _, s := range samples {
		switch s.name {
		case "peb_commit_seconds_count":
			count += s.value
		case "peb_commit_seconds_sum":
			sum += s.value
		}
	}
	if count > 0 {
		fmt.Fprintf(w, "\n  commit latency mean %.1fµs over %.0f commits\n", sum/count*1e6, count)
	}
}
