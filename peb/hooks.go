package peb

import "repro/internal/bxtree"

// Defaults a router needs before any DB exists (matching what Open's
// zero-value defaults produce).
const (
	// DefaultSpaceSide is the side length of the default service space.
	DefaultSpaceSide = bxtree.DefaultSpaceSide
	// DefaultGridOrder is the space-filling-curve grid order every DB
	// currently indexes on (see DB.GridOrder).
	DefaultGridOrder = bxtree.DefaultGridOrder
)

// Hooks for shard routers (peb/sharded). A space-partitioned deployment
// runs one DB per shard and routes queries by space-filling-curve range;
// the router needs a few read-only facts about each shard — its configured
// space, the curve order its keys are computed on, how stale a stored
// position can be, and (during recovery) which users it holds. These
// accessors expose exactly that, so the router never reaches into
// internals.

// Bounds returns the square service space the DB indexes — [0, SpaceSide]
// on both axes. The zero Region is returned on a closed DB.
func (db *DB) Bounds() Region {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return Region{}
	}
	return db.policies.Space()
}

// GridOrder returns the order of the space-filling-curve grid the index
// linearizes locations on (the grid is 2^order cells per axis). A router
// partitioning by curve-value range must compute shard ranges on the same
// grid. Zero on a closed DB.
func (db *DB) GridOrder() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0
	}
	return db.tree.Config().Base.Grid.Order
}

// MotionSlack returns, in distance units, how far an object's true
// position at time t can be from the position its index key was computed
// from: MaxSpeed times the largest label-time gap over the partitions
// currently holding objects. A router pruning shards by geometry must
// enlarge every shard's region by its slack, exactly as the index enlarges
// query windows internally. Zero on an empty or closed DB.
func (db *DB) MotionSlack(t float64) float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0
	}
	return db.view.MaxGap(t) * db.opts.MaxSpeed
}

// MaxSpeed returns the configured object speed bound (Options.MaxSpeed
// after defaulting). Zero on a closed DB.
func (db *DB) MaxSpeed() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0
	}
	return db.opts.MaxSpeed
}

// MaxUpdateInterval returns the configured ∆tmu — the longest a stored
// position may go without a refresh (Options.MaxUpdateInterval after
// defaulting). Zero on a closed DB.
func (db *DB) MaxUpdateInterval() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0
	}
	return db.opts.MaxUpdateInterval
}

// MotionSlack is the Snapshot form of DB.MotionSlack, evaluated against the
// pinned partition picture.
func (s *Snapshot) MotionSlack(t float64) float64 {
	if !s.acquire() {
		return 0
	}
	defer s.release()
	return s.view.MaxGap(t) * s.db.opts.MaxSpeed
}

// Objects returns every indexed object, sorted by user id — the full
// movement state of this DB. Shard recovery enumerates each shard with it
// to rebuild routing state and reconcile duplicates; it is O(population)
// and takes the read lock for the duration, so it is not a serving-path
// call.
func (db *DB) Objects() ([]Object, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	uids := db.view.UserIDs()
	out := make([]Object, 0, len(uids))
	for _, uid := range uids {
		o, ok, err := db.view.Get(uid)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, o)
		}
	}
	return out, nil
}
