package peb

import (
	"fmt"
	"math"

	"repro/internal/codec"
)

// Binary WAL record codec.
//
// The original WAL serialized records with encoding/gob, which costs
// reflection and several heap allocations per commit. This codec replaces
// it with a hand-rolled, append-style binary format on the shared
// primitives in internal/codec: the encoder only appends to a caller-owned
// buffer (zero allocations once the buffer has warmed up), and the decoder
// is a strict bounds-checked reader that returns an error — never panics —
// on arbitrary input.
//
// Record layout (uvarint/vfloat/vbytes as defined in internal/codec):
//
//	magic    1 byte  0xB6 (codec.MagicWALRecord)
//	version  1 byte  0x01
//	seq      uvarint
//	nextSV   vfloat
//	txnID    uvarint
//	txnState 1 byte
//	numOps   uvarint
//	ops      numOps × op
//
// Each op starts with a 1-byte kind, followed by exactly the fields that
// kind uses:
//
//	setSV         uid uvarint · sv vfloat
//	upsert        uid uvarint · x y vx vy t vfloat×5
//	remove        uid uvarint
//	relation      own uvarint · peer uvarint · role vbytes
//	grant         own uvarint · role vbytes · locr vfloat×4 · tint vfloat×2
//	encode        n uvarint · n×(uid uvarint · sv vfloat) · maxSV vfloat · groups uvarint
//	loadPolicies  blob vbytes
//
// Version compatibility: records written before this codec existed are raw
// gob streams, and codec.MagicWALRecord can never be a gob stream's first
// byte — unmarshalRecord (wal.go) dispatches on it and falls back to gob
// otherwise, which keeps gob-era logs replayable forever (pinned by the
// golden fixture under testdata/golden).

// walCodecVersion is the current binary format revision. Decoders reject
// newer versions (a downgraded binary must not misparse a future log) and
// accept all older ones.
const walCodecVersion = 1

// appendRecord encodes rec after b (usually b[:0] of a reused buffer) and
// returns the extended slice. It cannot fail: every walRecord value is
// encodable.
func appendRecord(b []byte, rec *walRecord) []byte {
	b = append(b, codec.MagicWALRecord, walCodecVersion)
	b = codec.AppendUvarint(b, rec.Seq)
	b = codec.AppendFloat(b, rec.NextSV)
	b = codec.AppendUvarint(b, rec.TxnID)
	b = append(b, rec.TxnState)
	b = codec.AppendUvarint(b, uint64(len(rec.Ops)))
	for i := range rec.Ops {
		op := &rec.Ops[i]
		b = append(b, byte(op.Kind))
		switch op.Kind {
		case walOpSetSV:
			b = codec.AppendUvarint(b, uint64(op.UID))
			b = codec.AppendFloat(b, op.SV)
		case walOpUpsert:
			b = codec.AppendUvarint(b, uint64(op.Obj.UID))
			b = codec.AppendFloat(b, op.Obj.X)
			b = codec.AppendFloat(b, op.Obj.Y)
			b = codec.AppendFloat(b, op.Obj.VX)
			b = codec.AppendFloat(b, op.Obj.VY)
			b = codec.AppendFloat(b, op.Obj.T)
		case walOpRemove:
			b = codec.AppendUvarint(b, uint64(op.UID))
		case walOpRelation:
			b = codec.AppendUvarint(b, uint64(op.Own))
			b = codec.AppendUvarint(b, uint64(op.Peer))
			b = codec.AppendBytes(b, []byte(op.Role))
		case walOpGrant:
			b = codec.AppendUvarint(b, uint64(op.Own))
			b = codec.AppendBytes(b, []byte(op.Role))
			b = codec.AppendFloat(b, op.Locr.MinX)
			b = codec.AppendFloat(b, op.Locr.MinY)
			b = codec.AppendFloat(b, op.Locr.MaxX)
			b = codec.AppendFloat(b, op.Locr.MaxY)
			b = codec.AppendFloat(b, op.Tint.Start)
			b = codec.AppendFloat(b, op.Tint.End)
		case walOpEncode:
			b = codec.AppendUvarint(b, uint64(len(op.Assign)))
			for _, r := range op.Assign {
				b = codec.AppendUvarint(b, uint64(r.UID))
				b = codec.AppendFloat(b, r.SV)
			}
			b = codec.AppendFloat(b, op.MaxSV)
			b = codec.AppendUvarint(b, uint64(op.Groups))
		case walOpLoadPolicies:
			b = codec.AppendBytes(b, op.Blob)
		default:
			// Unreachable for records we build; a future kind added without
			// codec support round-trips to an "unknown op kind" decode
			// error rather than silently dropping fields.
		}
	}
	return b
}

// takeUserID reads a uvarint that must fit a 32-bit user id.
func takeUserID(r *codec.Reader, what string) UserID {
	v := r.TakeUvarint(what)
	if v > math.MaxUint32 {
		r.Failf("%s %d overflows user id", what, v)
		return 0
	}
	return UserID(v)
}

// decodeRecord parses a binary-codec record (the caller has already
// dispatched on the magic byte). Strictness: every field bounds-checked,
// counts capped by the bytes that could possibly back them, unknown op
// kinds and trailing garbage rejected. Never panics on arbitrary input.
func decodeRecord(data []byte) (walRecord, error) {
	r := codec.NewReader(data, 1) // past magic
	if v := r.TakeByte("version"); r.Err() == nil && v > walCodecVersion {
		return walRecord{}, fmt.Errorf("peb: wal record codec version %d not supported (max %d)", v, walCodecVersion)
	}
	var rec walRecord
	rec.Seq = r.TakeUvarint("seq")
	rec.NextSV = r.TakeFloat("nextSV")
	rec.TxnID = r.TakeUvarint("txnID")
	rec.TxnState = r.TakeByte("txnState")
	// Each op costs at least one byte on the wire.
	numOps := r.TakeCount("op count", 1)
	if err := r.Err(); err != nil {
		return walRecord{}, fmt.Errorf("peb: corrupt wal record: %w", err)
	}
	if numOps > 0 {
		rec.Ops = make([]walOp, numOps)
	}
	for i := range rec.Ops {
		op := &rec.Ops[i]
		op.Kind = walOpKind(r.TakeByte("op kind"))
		switch op.Kind {
		case walOpSetSV:
			op.UID = takeUserID(r, "setSV uid")
			op.SV = r.TakeFloat("setSV sv")
		case walOpUpsert:
			op.Obj.UID = takeUserID(r, "upsert uid")
			op.Obj.X = r.TakeFloat("upsert x")
			op.Obj.Y = r.TakeFloat("upsert y")
			op.Obj.VX = r.TakeFloat("upsert vx")
			op.Obj.VY = r.TakeFloat("upsert vy")
			op.Obj.T = r.TakeFloat("upsert t")
		case walOpRemove:
			op.UID = takeUserID(r, "remove uid")
		case walOpRelation:
			op.Own = takeUserID(r, "relation owner")
			op.Peer = takeUserID(r, "relation peer")
			op.Role = Role(r.TakeBytes("relation role"))
		case walOpGrant:
			op.Own = takeUserID(r, "grant owner")
			op.Role = Role(r.TakeBytes("grant role"))
			op.Locr.MinX = r.TakeFloat("grant minX")
			op.Locr.MinY = r.TakeFloat("grant minY")
			op.Locr.MaxX = r.TakeFloat("grant maxX")
			op.Locr.MaxY = r.TakeFloat("grant maxY")
			op.Tint.Start = r.TakeFloat("grant start")
			op.Tint.End = r.TakeFloat("grant end")
		case walOpEncode:
			// Each assignment entry needs at least a uid and an sv varint.
			n := r.TakeCount("assignment count", 2)
			if n > 0 && r.Err() == nil {
				op.Assign = make([]assignRec, n)
			}
			for j := range op.Assign {
				op.Assign[j].UID = takeUserID(r, "assignment uid")
				op.Assign[j].SV = r.TakeFloat("assignment sv")
			}
			op.MaxSV = r.TakeFloat("assignment maxSV")
			g := r.TakeUvarint("assignment groups")
			if g > math.MaxInt32 {
				r.Failf("assignment groups %d implausible", g)
			}
			op.Groups = int(g)
		case walOpLoadPolicies:
			op.Blob = r.TakeBytes("policies blob")
		default:
			r.Failf("unknown op kind %d", op.Kind)
		}
		if err := r.Err(); err != nil {
			return walRecord{}, fmt.Errorf("peb: corrupt wal record: %w", err)
		}
	}
	r.ExpectEnd()
	if err := r.Err(); err != nil {
		return walRecord{}, fmt.Errorf("peb: corrupt wal record: %w", err)
	}
	return rec, nil
}
