package cq_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/peb"
	"repro/peb/cq"
)

// mirror replays a subscription's delta stream into a result-set copy,
// validating kind transitions as it goes (Enter only for absent objects,
// Leave/Update only for present ones).
type mirror struct {
	t    *testing.T
	name string
	objs map[peb.UserID]peb.Object
	dist map[peb.UserID]float64
}

func newMirror(t *testing.T, name string) *mirror {
	return &mirror{t: t, name: name, objs: make(map[peb.UserID]peb.Object), dist: make(map[peb.UserID]float64)}
}

func (m *mirror) drain(sub *cq.Subscription) {
	for {
		select {
		case d, ok := <-sub.Deltas():
			if !ok {
				m.t.Fatalf("%s: channel closed unexpectedly: %v", m.name, sub.Err())
			}
			if d.Dropped != 0 {
				m.t.Fatalf("%s: unexpected drop of %d deltas", m.name, d.Dropped)
			}
			m.apply(d)
		default:
			return
		}
	}
}

func (m *mirror) apply(d cq.Delta) {
	uid := d.Object.UID
	_, present := m.objs[uid]
	switch d.Kind {
	case cq.Enter:
		if present {
			m.t.Fatalf("%s: Enter for already-present user %d (seq %d)", m.name, uid, d.Seq)
		}
		m.objs[uid] = d.Object
		m.dist[uid] = d.Dist
	case cq.Leave:
		if !present {
			m.t.Fatalf("%s: Leave for absent user %d (seq %d)", m.name, uid, d.Seq)
		}
		delete(m.objs, uid)
		delete(m.dist, uid)
	case cq.Update:
		if !present {
			m.t.Fatalf("%s: Update for absent user %d (seq %d)", m.name, uid, d.Seq)
		}
		m.objs[uid] = d.Object
		m.dist[uid] = d.Dist
	default:
		m.t.Fatalf("%s: bad delta kind %v", m.name, d.Kind)
	}
}

func (m *mirror) checkRange(db *peb.DB, issuer peb.UserID, r peb.Region, qt float64) {
	m.t.Helper()
	want, err := db.RangeQuery(issuer, r, qt)
	if err != nil {
		m.t.Fatalf("%s: oracle query: %v", m.name, err)
	}
	if len(want) != len(m.objs) {
		m.t.Fatalf("%s: mirror has %d objects, oracle %d", m.name, len(m.objs), len(want))
	}
	for _, o := range want {
		got, ok := m.objs[o.UID]
		if !ok {
			m.t.Fatalf("%s: oracle has user %d, mirror does not", m.name, o.UID)
		}
		if got != o {
			m.t.Fatalf("%s: user %d state diverged: mirror %v oracle %v", m.name, o.UID, got, o)
		}
	}
}

func (m *mirror) checkKNN(db *peb.DB, issuer peb.UserID, x, y float64, k int, qt float64) {
	m.t.Helper()
	want, err := db.NearestNeighbors(issuer, x, y, k, qt)
	if err != nil {
		m.t.Fatalf("%s: oracle query: %v", m.name, err)
	}
	if len(want) != len(m.objs) {
		m.t.Fatalf("%s: mirror has %d neighbors, oracle %d", m.name, len(m.objs), len(want))
	}
	for _, n := range want {
		got, ok := m.objs[n.Object.UID]
		if !ok {
			m.t.Fatalf("%s: oracle has neighbor %d, mirror does not", m.name, n.Object.UID)
		}
		if got != n.Object {
			m.t.Fatalf("%s: neighbor %d state diverged", m.name, n.Object.UID)
		}
		if m.dist[n.Object.UID] != n.Dist {
			m.t.Fatalf("%s: neighbor %d distance diverged: mirror %g oracle %g", m.name, n.Object.UID, m.dist[n.Object.UID], n.Dist)
		}
	}
}

// seedPolicies wires nUsers users into overlapping friend groups with
// space- and time-restricted grants, so membership flips on movement.
func seedPolicies(t *testing.T, db *peb.DB, rng *rand.Rand, nUsers int) {
	t.Helper()
	everywhere := peb.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	allDay := peb.TimeInterval{Start: 0, End: 1440}
	for u := 1; u <= nUsers; u++ {
		role := peb.Role(fmt.Sprintf("peer%d", u))
		for f := 0; f < 2+rng.Intn(5); f++ {
			peer := peb.UserID(1 + rng.Intn(nUsers))
			if peer == peb.UserID(u) {
				continue
			}
			if err := db.DefineRelation(peb.UserID(u), peer, role); err != nil {
				t.Fatal(err)
			}
		}
		locr := everywhere
		tint := allDay
		if rng.Intn(2) == 0 {
			cx, cy := rng.Float64()*1000, rng.Float64()*1000
			locr = peb.Region{MinX: cx - 250, MinY: cy - 250, MaxX: cx + 250, MaxY: cy + 250}
			locr = clampRegion(locr)
		}
		if err := db.Grant(peb.UserID(u), role, locr, tint); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
}

func clampRegion(r peb.Region) peb.Region {
	if r.MinX < 0 {
		r.MinX = 0
	}
	if r.MinY < 0 {
		r.MinY = 0
	}
	if r.MaxX > 1000 {
		r.MaxX = 1000
	}
	if r.MaxY > 1000 {
		r.MaxY = 1000
	}
	return r
}

func randObject(rng *rand.Rand, uid peb.UserID, now float64) peb.Object {
	return peb.Object{
		UID: uid,
		X:   rng.Float64() * 1000,
		Y:   rng.Float64() * 1000,
		VX:  (rng.Float64() - 0.5) * 3,
		VY:  (rng.Float64() - 0.5) * 3,
		T:   now,
	}
}

// TestDeltaOracle drives a random commit stream — upserts, removes,
// batches, grant/relation flips, re-encodings — against live range and
// PkNN subscriptions and checks after every commit that replaying the
// delta stream reproduces exactly what a full re-run returns.
func TestDeltaOracle(t *testing.T) {
	const (
		nUsers = 40
		steps  = 400
		qt     = 300.0
	)
	rng := rand.New(rand.NewSource(7))
	db, err := peb.Open(peb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seedPolicies(t, db, rng, nUsers)

	eng, err := cq.Attach(db)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Initial population.
	b := db.NewBatch()
	for u := 1; u <= nUsers; u++ {
		b.Upsert(randObject(rng, peb.UserID(u), rng.Float64()*100))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}

	type rangeSub struct {
		sub    *cq.Subscription
		m      *mirror
		issuer peb.UserID
		region peb.Region
	}
	type knnSub struct {
		sub    *cq.Subscription
		m      *mirror
		issuer peb.UserID
		x, y   float64
		k      int
	}
	opt := cq.SubOptions{Buffer: 8192}

	var rsubs []rangeSub
	for i := 0; i < 6; i++ {
		issuer := peb.UserID(1 + rng.Intn(nUsers))
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		side := 100 + rng.Float64()*300
		region := clampRegion(peb.Region{MinX: cx - side/2, MinY: cy - side/2, MaxX: cx + side/2, MaxY: cy + side/2})
		sub, initial, err := eng.SubscribeRange(issuer, region, qt, opt)
		if err != nil {
			t.Fatal(err)
		}
		m := newMirror(t, fmt.Sprintf("range[%d]", i))
		for _, o := range initial {
			m.objs[o.UID] = o
		}
		m.checkRange(db, issuer, region, qt)
		rsubs = append(rsubs, rangeSub{sub, m, issuer, region})
	}
	var ksubs []knnSub
	for i := 0; i < 4; i++ {
		issuer := peb.UserID(1 + rng.Intn(nUsers))
		x, y := rng.Float64()*1000, rng.Float64()*1000
		k := 1 + rng.Intn(6)
		sub, initial, err := eng.SubscribePkNN(issuer, x, y, k, qt, opt)
		if err != nil {
			t.Fatal(err)
		}
		m := newMirror(t, fmt.Sprintf("knn[%d]", i))
		for _, n := range initial {
			m.objs[n.Object.UID] = n.Object
			m.dist[n.Object.UID] = n.Dist
		}
		m.checkKNN(db, issuer, x, y, k, qt)
		ksubs = append(ksubs, knnSub{sub, m, issuer, x, y, k})
	}

	now := 100.0
	removed := make(map[peb.UserID]bool)
	for step := 0; step < steps; step++ {
		now += rng.Float64() * 2
		switch op := rng.Intn(20); {
		case op < 10: // single upsert
			uid := peb.UserID(1 + rng.Intn(nUsers))
			if err := db.Upsert(randObject(rng, uid, now)); err != nil {
				t.Fatal(err)
			}
			delete(removed, uid)
		case op < 13: // batch of movement updates (some repeat users)
			nb := db.NewBatch()
			for j := 0; j < 1+rng.Intn(8); j++ {
				uid := peb.UserID(1 + rng.Intn(nUsers))
				nb.Upsert(randObject(rng, uid, now))
				delete(removed, uid)
			}
			if err := db.Apply(nb); err != nil {
				t.Fatal(err)
			}
		case op < 15: // remove an indexed user
			uid := peb.UserID(1 + rng.Intn(nUsers))
			if removed[uid] {
				continue
			}
			if err := db.Remove(uid); err != nil {
				t.Fatal(err)
			}
			removed[uid] = true
		case op < 17: // grant flip: add a policy for a random owner
			owner := peb.UserID(1 + rng.Intn(nUsers))
			role := peb.Role(fmt.Sprintf("peer%d", owner))
			cx, cy := rng.Float64()*1000, rng.Float64()*1000
			locr := clampRegion(peb.Region{MinX: cx - 200, MinY: cy - 200, MaxX: cx + 200, MaxY: cy + 200})
			if err := db.Grant(owner, role, locr, peb.TimeInterval{Start: 0, End: 1440}); err != nil {
				t.Fatal(err)
			}
		case op < 19: // relation flip: wire a new peer into an owner's role
			owner := peb.UserID(1 + rng.Intn(nUsers))
			peer := peb.UserID(1 + rng.Intn(nUsers))
			if owner == peer {
				continue
			}
			if err := db.DefineRelation(owner, peer, peb.Role(fmt.Sprintf("peer%d", owner))); err != nil {
				t.Fatal(err)
			}
		default: // re-encode (rebuild)
			if err := db.EncodePolicies(); err != nil {
				t.Fatal(err)
			}
		}

		for i := range rsubs {
			rs := &rsubs[i]
			rs.m.drain(rs.sub)
			rs.m.checkRange(db, rs.issuer, rs.region, qt)
		}
		for i := range ksubs {
			ks := &ksubs[i]
			ks.m.drain(ks.sub)
			ks.m.checkKNN(db, ks.issuer, ks.x, ks.y, ks.k, qt)
		}
	}

	st := eng.Stats()
	if st.Commits == 0 || st.Deltas == 0 {
		t.Fatalf("engine saw no traffic: %+v", st)
	}
	if st.Naive <= st.Evaluated {
		t.Errorf("incremental evaluation (%d) not cheaper than naive (%d)", st.Evaluated, st.Naive)
	}
	t.Logf("stats: %+v (reduction %.1fx)", st, float64(st.Naive)/float64(st.Evaluated+1))
}

// TestSubscribeAtomicity checks the delta stream continues the initial
// result exactly: an object present initially never Enters again without
// leaving first (guaranteed by the mirror's kind validation under load in
// TestDeltaOracle; here we check the simplest handoff explicitly).
func TestSubscribeAtomicity(t *testing.T) {
	db, err := peb.Open(peb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	everywhere := peb.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	if err := db.DefineRelation(2, 1, "f"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(2, "f", everywhere, peb.TimeInterval{Start: 0, End: 1440}); err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(peb.Object{UID: 2, X: 100, Y: 100, T: 0}); err != nil {
		t.Fatal(err)
	}

	eng, err := cq.Attach(db)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sub, initial, err := eng.SubscribeRange(1, everywhere, 10, cq.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(initial) != 1 || initial[0].UID != 2 {
		t.Fatalf("initial = %v, want user 2", initial)
	}
	// A movement update inside the region: exactly one Update delta.
	if err := db.Upsert(peb.Object{UID: 2, X: 200, Y: 200, T: 5}); err != nil {
		t.Fatal(err)
	}
	d := <-sub.Deltas()
	if d.Kind != cq.Update || d.Object.UID != 2 || d.Object.X != 200 {
		t.Fatalf("delta = %+v, want Update of user 2 at x=200", d)
	}
	// Leaving the space-time region: one Leave delta.
	if err := db.Remove(2); err != nil {
		t.Fatal(err)
	}
	d = <-sub.Deltas()
	if d.Kind != cq.Leave || d.Object.UID != 2 {
		t.Fatalf("delta = %+v, want Leave of user 2", d)
	}
	sub.Close()
	if _, ok := <-sub.Deltas(); ok {
		t.Fatal("channel still open after Close")
	}
	if sub.Err() != nil {
		t.Fatalf("err after plain Close = %v, want nil", sub.Err())
	}
}

// TestSlowConsumerDropOldest fills a tiny buffer and checks the oldest
// deltas are discarded with an exact Dropped count on the next delivery.
func TestSlowConsumerDropOldest(t *testing.T) {
	db, eng, sub := slowConsumerSetup(t, cq.SubOptions{Buffer: 2, Overflow: cq.DropOldest})
	defer db.Close()
	defer eng.Close()

	// 5 updates into a 2-slot buffer: 3 dropped.
	for i := 1; i <= 5; i++ {
		if err := db.Upsert(peb.Object{UID: 2, X: float64(100 + i), Y: 100, T: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d1 := <-sub.Deltas()
	d2 := <-sub.Deltas()
	if d1.Dropped+d2.Dropped != 3 {
		t.Fatalf("dropped %d+%d, want 3 total", d1.Dropped, d2.Dropped)
	}
	if d2.Object.X != 105 {
		t.Fatalf("newest delta x = %g, want 105 (drops must evict oldest)", d2.Object.X)
	}
	if st := eng.Stats(); st.Dropped != 3 {
		t.Fatalf("stats.Dropped = %d, want 3", st.Dropped)
	}
}

// TestSlowConsumerCancel checks the Cancel policy tears the subscription
// down with ErrSlowConsumer.
func TestSlowConsumerCancel(t *testing.T) {
	db, eng, sub := slowConsumerSetup(t, cq.SubOptions{Buffer: 1, Overflow: cq.Cancel})
	defer db.Close()
	defer eng.Close()

	for i := 1; i <= 3; i++ {
		if err := db.Upsert(peb.Object{UID: 2, X: float64(100 + i), Y: 100, T: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Drain until close.
	for range sub.Deltas() {
	}
	if !errors.Is(sub.Err(), cq.ErrSlowConsumer) {
		t.Fatalf("err = %v, want ErrSlowConsumer", sub.Err())
	}
	// The engine dropped the subscription: further commits are fine.
	if err := db.Upsert(peb.Object{UID: 2, X: 500, Y: 500, T: 10}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Live != 0 {
		t.Fatalf("live subs = %d, want 0", st.Live)
	}
}

func slowConsumerSetup(t *testing.T, opt cq.SubOptions) (*peb.DB, *cq.Engine, *cq.Subscription) {
	t.Helper()
	db, err := peb.Open(peb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	everywhere := peb.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	if err := db.DefineRelation(2, 1, "f"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(2, "f", everywhere, peb.TimeInterval{Start: 0, End: 1440}); err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(peb.Object{UID: 2, X: 100, Y: 100, T: 0}); err != nil {
		t.Fatal(err)
	}
	eng, err := cq.Attach(db)
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := eng.SubscribeRange(1, everywhere, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	return db, eng, sub
}

// TestEngineClose checks Close cancels live subscriptions with
// ErrEngineClosed and rejects new ones.
func TestEngineClose(t *testing.T) {
	db, eng, sub := slowConsumerSetup(t, cq.SubOptions{})
	defer db.Close()
	eng.Close()
	if _, ok := <-sub.Deltas(); ok {
		t.Fatal("channel open after engine close")
	}
	if !errors.Is(sub.Err(), cq.ErrEngineClosed) {
		t.Fatalf("err = %v, want ErrEngineClosed", sub.Err())
	}
	if _, _, err := eng.SubscribeRange(1, peb.Region{MaxX: 10, MaxY: 10}, 0, cq.SubOptions{}); !errors.Is(err, cq.ErrEngineClosed) {
		t.Fatalf("subscribe after close = %v, want ErrEngineClosed", err)
	}
	// Commits still work with the hook detached.
	if err := db.Upsert(peb.Object{UID: 2, X: 1, Y: 1, T: 20}); err != nil {
		t.Fatal(err)
	}
}
