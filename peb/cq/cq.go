// Package cq turns the PEB-tree's one-shot queries into standing ones: a
// caller registers a privacy-aware range query (PRQ) or k-nearest-neighbor
// query (PkNN) as a continuous query and receives enter/leave/update deltas
// over a channel instead of polling.
//
// # Incremental evaluation
//
// The engine hooks the DB's commit notifications (peb.CommitHook): every
// commit delivers the exact set of objects it touched, and each live
// subscription is re-evaluated against only those objects, pruned twice
// before any exact check runs:
//
//   - policy dimension — an inverted index from grantor to subscription:
//     an object that has granted the subscriber nothing can never appear
//     in the subscriber's results, so its movement is never evaluated.
//     This is the subscription-side analogue of the index's SV-band scan.
//   - space dimension — per-subscription Hilbert curve intervals,
//     precomputed by decomposing the query region enlarged by the motion
//     slack (MaxSpeed × MaxUpdateInterval): a touched state whose stored
//     position falls outside every interval (and that honors the speed
//     and update-interval bounds the slack assumes) provably cannot be a
//     member, before and after alike, so no exact check runs.
//
// What survives both prunes gets the exact membership predicate
// (peb.CommitView.Member — identical to what RangeQuery applies per
// candidate), and a delta is pushed iff membership or state changed. The
// steady path therefore does work proportional to the touched set, not
// the population and not the result size.
//
// Policy-changing commits (Grant, DefineRelation, LoadPolicies) can flip
// visibility for objects the commit never touched, so they fall back to a
// full rescan: recompute the grantor set, re-run the query once via the
// commit view, and emit the diff. Index rebuilds (EncodePolicies) rescan
// too — sequence values do not change results, so the diff is empty, but
// the rescan re-anchors the engine cheaply and unconditionally.
//
// PkNN subscriptions are incremental in their trigger, not their
// evaluation: a touched grantor that is in the current result, or could
// beat the current k'th distance, triggers one full re-run through the
// index (charged at the grantor-set size); any other touch is dismissed
// with a single distance comparison.
//
// # Delivery and slow consumers
//
// Deltas are delivered into a bounded per-subscription channel by the
// commit path itself, which must never block. When a consumer falls
// behind, the subscription's overflow policy decides: DropOldest (the
// default) discards the oldest undelivered delta and counts the loss in
// the next delivered Delta.Dropped, so the consumer knows its view has
// gaps it must repair (resubscribe, or treat the next rescan as truth);
// Cancel closes the subscription with ErrSlowConsumer. Either way the
// engine's own state stays exact — only the consumer's copy degrades.
//
// # Correctness contract
//
// For every commit sequence number, the deltas a subscription receives
// equal the diff of two consecutive full re-runs of the underlying query
// around that commit (the oracle the test suite enforces), provided
// objects honor the DB's MaxSpeed. Registration is atomic with respect to
// commits — SubscribeRange/SubscribePkNN evaluate the initial result and
// install the subscription under the DB's write lock — so the delta
// stream continues the initial result with no gap and no overlap.
package cq

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/zcurve"
	"repro/peb"
)

// Errors reported by Subscription.Err after the delta channel closes.
var (
	// ErrSlowConsumer: the subscription used OverflowCancel and its
	// consumer fell behind the commit stream.
	ErrSlowConsumer = errors.New("cq: subscription canceled: consumer too slow")
	// ErrEngineClosed: the engine detached from the DB.
	ErrEngineClosed = errors.New("cq: engine closed")
)

// maxSubIntervals bounds the Hilbert decomposition of one subscription's
// enlarged region. Coarsening only ever adds covered cells, so a small
// cap trades prune selectivity for O(log n) containment checks.
const maxSubIntervals = 32

// OverflowPolicy selects what the engine does when a subscription's
// channel is full at delivery time.
type OverflowPolicy uint8

const (
	// DropOldest discards the oldest undelivered delta to make room; the
	// loss is reported in the next delivered Delta.Dropped.
	DropOldest OverflowPolicy = iota
	// Cancel closes the subscription with ErrSlowConsumer.
	Cancel
)

// SubOptions configures one subscription. The zero value selects a
// 256-delta buffer with DropOldest.
type SubOptions struct {
	// Buffer is the delta channel capacity.
	Buffer int
	// Overflow is the slow-consumer policy.
	Overflow OverflowPolicy
}

func (o SubOptions) buffer() int {
	if o.Buffer <= 0 {
		return 256
	}
	return o.Buffer
}

// Stats are the engine's cumulative counters since Attach. The headline
// ratio is Naive / Evaluated: how much work incremental evaluation saved
// over re-running every subscription on every commit.
type Stats struct {
	// Commits is the number of commit notifications processed.
	Commits uint64
	// Evaluated counts exact checks: range membership predicates plus
	// kNN affected-checks and re-run candidate evaluations.
	Evaluated uint64
	// Pruned counts touched (subscription, object) pairs dismissed by the
	// Hilbert-interval prune without an exact check.
	Pruned uint64
	// Naive counts the candidate evaluations a full per-commit re-run of
	// every subscription would have performed (Σ grantor-set sizes, per
	// commit) — the baseline Evaluated is measured against.
	Naive uint64
	// Rescans counts full re-runs forced by policy changes or rebuilds.
	Rescans uint64
	// Deltas counts deltas delivered; Dropped counts deltas discarded or
	// subscriptions canceled by overflow.
	Deltas  uint64
	Dropped uint64
	// Live is the current number of registered subscriptions.
	Live int
}

// Engine evaluates continuous queries against one peb.DB. Create it with
// Attach, register standing queries with SubscribeRange/SubscribePkNN,
// and Close it to detach from the DB. All methods are safe for concurrent
// use.
type Engine struct {
	db     *peb.DB
	detach func()
	// delta is the DB's pre-registered commit-to-delta histogram: the time
	// from a commit's notification to the last delta of that commit being
	// enqueued (or dropped). Fed only while subscriptions exist.
	delta *obs.Histogram

	grid     zcurve.Grid
	maxSpeed float64
	maxUI    float64
	slack    float64

	mu           sync.Mutex
	subs         map[uint64]*sub
	byGrantor    map[peb.UserID]map[uint64]*sub
	grantorLinks int
	nextID       uint64
	closed       bool
	stats        Stats
	reap         []*sub
}

// sub is the engine-internal state of one subscription.
type sub struct {
	id     uint64
	issuer peb.UserID
	t      float64

	// Range subscriptions.
	knn      bool
	region   peb.Region
	ivs      zcurve.IntervalSet
	prunable bool

	// PkNN subscriptions.
	x, y float64
	k    int

	grantors map[peb.UserID]struct{}
	cur      map[peb.UserID]peb.Object
	dist     map[peb.UserID]float64 // knn only

	ch             chan Delta
	policy         OverflowPolicy
	pendingDropped int
	canceled       bool
	err            error
}

// Subscription is a caller's handle on one standing query: receive deltas
// from Deltas, stop with Close. After the channel closes, Err reports why
// (nil for a caller-initiated Close).
type Subscription struct {
	eng *Engine
	s   *sub
}

// Deltas returns the delta channel. It is closed when the subscription
// ends — by Close, by engine shutdown, or by the overflow policy.
func (s *Subscription) Deltas() <-chan Delta { return s.s.ch }

// Err returns the terminal error, if any: ErrSlowConsumer, ErrEngineClosed,
// or a query error hit during a rescan. Nil while live or after a plain
// Close.
func (s *Subscription) Err() error {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	return s.s.err
}

// Close unregisters the subscription and closes its channel. Idempotent;
// safe to call concurrently with commits.
func (s *Subscription) Close() {
	e := s.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	sb := s.s
	if !sb.canceled {
		sb.canceled = true
		close(sb.ch)
	}
	e.removeLocked(sb)
}

// Attach builds an engine over db and registers it for commit
// notifications. The engine adds no overhead to commits until the first
// subscription exists (beyond the DB's touched-set capture, which is
// enabled by any registered hook).
func Attach(db *peb.DB) (*Engine, error) {
	e := &Engine{
		db:        db,
		delta:     db.CQDeltaHistogram(),
		subs:      make(map[uint64]*sub),
		byGrantor: make(map[peb.UserID]map[uint64]*sub),
	}
	err := db.WithCommitView(func(cv *peb.CommitView) error {
		b := cv.Bounds()
		g, err := zcurve.NewGrid(b.MaxX, cv.GridOrder())
		if err != nil {
			return fmt.Errorf("cq: attach: %w", err)
		}
		e.grid = g
		e.maxSpeed = cv.MaxSpeed()
		e.maxUI = cv.MaxUpdateInterval()
		e.slack = e.maxSpeed * e.maxUI
		e.detach = cv.AddHook(e.onCommit)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Close cancels every subscription (their Err reports ErrEngineClosed),
// detaches from the DB, and makes further Subscribe calls fail.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for _, s := range e.subs {
		if !s.canceled {
			s.canceled = true
			s.err = ErrEngineClosed
			close(s.ch)
		}
	}
	e.subs = make(map[uint64]*sub)
	e.byGrantor = make(map[peb.UserID]map[uint64]*sub)
	e.grantorLinks = 0
	detach := e.detach
	e.detach = nil
	e.mu.Unlock()
	// Outside e.mu: detaching takes the DB write lock, and the commit
	// path acquires db.mu before e.mu — never invert that order.
	if detach != nil {
		detach()
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Live = len(e.subs)
	return st
}

// SubscribeRange registers issuer's PRQ over region r at evaluation time t
// as a continuous query. It returns the subscription and the query's
// current result; every subsequent commit that changes the result pushes
// a delta, starting exactly after the returned state (registration is
// atomic with respect to commits).
//
// t is fixed for the subscription's lifetime, like a query's timestamp:
// the result tracks commits (movement updates, policy changes), not the
// passage of time. Subscribers watching "now" resubscribe on their own
// clock or pick t at the window of interest.
func (e *Engine) SubscribeRange(issuer peb.UserID, r peb.Region, t float64, opt SubOptions) (*Subscription, []peb.Object, error) {
	var out *Subscription
	var initial []peb.Object
	err := e.db.WithCommitView(func(cv *peb.CommitView) error {
		res, err := cv.RangeQuery(issuer, r, t)
		if err != nil {
			return err
		}
		s := &sub{
			issuer: issuer,
			t:      t,
			region: r,
			ch:     make(chan Delta, opt.buffer()),
			policy: opt.Overflow,
			cur:    make(map[peb.UserID]peb.Object, len(res)),
		}
		e.computeIntervals(s)
		for _, o := range res {
			s.cur[o.UID] = o
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.closed {
			return ErrEngineClosed
		}
		e.registerLocked(s, cv.Grantors(issuer))
		initial = append([]peb.Object(nil), res...)
		out = &Subscription{eng: e, s: s}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, initial, nil
}

// SubscribePkNN registers issuer's PkNN centered at (x, y) with result
// size k, evaluated at time t, as a continuous query. Semantics mirror
// SubscribeRange; deltas carry the neighbor distance in Delta.Dist.
func (e *Engine) SubscribePkNN(issuer peb.UserID, x, y float64, k int, t float64, opt SubOptions) (*Subscription, []peb.Neighbor, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("cq: k must be positive, got %d", k)
	}
	var out *Subscription
	var initial []peb.Neighbor
	err := e.db.WithCommitView(func(cv *peb.CommitView) error {
		res, err := cv.NearestNeighbors(issuer, x, y, k, t)
		if err != nil {
			return err
		}
		s := &sub{
			issuer: issuer,
			t:      t,
			knn:    true,
			x:      x,
			y:      y,
			k:      k,
			ch:     make(chan Delta, opt.buffer()),
			policy: opt.Overflow,
			cur:    make(map[peb.UserID]peb.Object, len(res)),
			dist:   make(map[peb.UserID]float64, len(res)),
		}
		for _, n := range res {
			s.cur[n.Object.UID] = n.Object
			s.dist[n.Object.UID] = n.Dist
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.closed {
			return ErrEngineClosed
		}
		e.registerLocked(s, cv.Grantors(issuer))
		initial = append([]peb.Neighbor(nil), res...)
		out = &Subscription{eng: e, s: s}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, initial, nil
}

// computeIntervals precomputes the Hilbert intervals of the subscription's
// region enlarged by the engine's motion slack. A failed decomposition
// just disables the space prune for this subscription.
func (e *Engine) computeIntervals(s *sub) {
	rect, ok := e.grid.RectOf(
		s.region.MinX-e.slack, s.region.MinY-e.slack,
		s.region.MaxX+e.slack, s.region.MaxY+e.slack,
	)
	if !ok {
		// The enlarged region misses the space entirely: no stored
		// position can be a member, so every in-contract state is
		// prunable via the (empty) interval set.
		s.prunable = true
		return
	}
	ivs, err := zcurve.HilbertDecompose(rect, e.grid.Order, maxSubIntervals)
	if err != nil {
		s.prunable = false
		return
	}
	for _, iv := range ivs {
		s.ivs.Add(iv)
	}
	s.prunable = true
}

// registerLocked installs a new subscription and its grantor links.
// Caller holds e.mu.
func (e *Engine) registerLocked(s *sub, grantors []peb.UserID) {
	e.nextID++
	s.id = e.nextID
	e.subs[s.id] = s
	e.setGrantorsLocked(s, grantors)
}

// setGrantorsLocked replaces a subscription's grantor set and reindexes
// it. Caller holds e.mu.
func (e *Engine) setGrantorsLocked(s *sub, grantors []peb.UserID) {
	for uid := range s.grantors {
		if m := e.byGrantor[uid]; m != nil {
			delete(m, s.id)
			if len(m) == 0 {
				delete(e.byGrantor, uid)
			}
		}
	}
	e.grantorLinks -= len(s.grantors)
	s.grantors = make(map[peb.UserID]struct{}, len(grantors))
	for _, g := range grantors {
		if g == s.issuer {
			continue
		}
		if _, dup := s.grantors[g]; dup {
			continue
		}
		s.grantors[g] = struct{}{}
		m := e.byGrantor[g]
		if m == nil {
			m = make(map[uint64]*sub)
			e.byGrantor[g] = m
		}
		m[s.id] = s
	}
	e.grantorLinks += len(s.grantors)
}

// removeLocked unregisters a subscription. Idempotent; caller holds e.mu.
func (e *Engine) removeLocked(s *sub) {
	if _, ok := e.subs[s.id]; !ok {
		return
	}
	delete(e.subs, s.id)
	e.setGrantorsLocked(s, nil)
}
