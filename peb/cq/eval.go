package cq

import (
	"sort"
	"time"

	"repro/peb"
)

// onCommit is the engine's commit hook: it runs inside the DB's commit
// critical section, so everything here is bounded work over the touched
// set — no index scans on the steady path, no blocking sends, no locks
// beyond e.mu (which no query path takes).
func (e *Engine) onCommit(info peb.CommitInfo, cv *peb.CommitView) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || len(e.subs) == 0 {
		return
	}
	start := time.Now()
	defer func() { e.delta.ObserveDuration(time.Since(start)) }()
	e.stats.Commits++
	e.stats.Naive += uint64(e.grantorLinks)
	if info.PolicyChange || info.Rebuild {
		// Grants and relation changes flip visibility for objects the
		// commit never touched; incremental evaluation over the touched
		// set is unsound, so every subscription rescans. Rebuilds rescan
		// too — their diff is empty (encoding changes clustering, not
		// results) but the rescan revalidates grantor sets for free.
		for _, s := range e.subs {
			if s.canceled {
				continue
			}
			e.rescanLocked(s, cv, info.Seq)
		}
		e.reapLocked()
		return
	}
	for i := range info.Touched {
		tc := &info.Touched[i]
		for _, s := range e.byGrantor[tc.UID] {
			if s.canceled {
				continue
			}
			if s.knn {
				e.evalKNNTouchLocked(s, cv, tc, info.Seq)
			} else {
				e.evalRangeTouchLocked(s, cv, tc, info.Seq)
			}
		}
	}
	e.reapLocked()
}

// outside reports whether state o provably lies outside the
// subscription's enlarged region: its stored position's Hilbert cell is
// covered by none of the precomputed intervals, and the state honors the
// speed and freshness bounds the enlargement slack assumes. A nil state
// (absent from the index) is trivially outside.
func (e *Engine) outside(s *sub, o *peb.Object) bool {
	if o == nil {
		return true
	}
	if !s.prunable {
		return false
	}
	if o.Speed() > e.maxSpeed {
		return false
	}
	gap := s.t - o.T
	if gap < 0 {
		gap = -gap
	}
	if gap > e.maxUI {
		return false
	}
	return !s.ivs.Contains(e.grid.HilbertValue(o.X, o.Y))
}

// evalRangeTouchLocked re-evaluates one range subscription against one
// touched object: prune by curve intervals, then the exact membership
// predicate on the post-commit state, then a delta iff the result set
// changed. Caller holds e.mu inside a commit notification.
func (e *Engine) evalRangeTouchLocked(s *sub, cv *peb.CommitView, tc *peb.CommitTouch, seq uint64) {
	if e.outside(s, tc.Prev) && e.outside(s, tc.Cur) {
		// Not a member before, not a member after: no delta, no exact
		// check. The invariant that s.cur never holds a pruned object
		// makes the skip sound.
		e.stats.Pruned++
		return
	}
	e.stats.Evaluated++
	old, was := s.cur[tc.UID]
	var cur peb.Object
	is := false
	if tc.Cur != nil {
		cur = *tc.Cur
		is = cv.Member(s.issuer, s.region, cur, s.t)
	}
	switch {
	case is && !was:
		s.cur[tc.UID] = cur
		e.send(s, Delta{Kind: Enter, Object: cur, Seq: seq})
	case !is && was:
		delete(s.cur, tc.UID)
		e.send(s, Delta{Kind: Leave, Object: old, Seq: seq})
	case is && was && cur != old:
		s.cur[tc.UID] = cur
		e.send(s, Delta{Kind: Update, Object: cur, Seq: seq})
	}
}

// kthDist returns the current k'th neighbor distance, or +inf while the
// result holds fewer than k objects (anything could enter).
func (s *sub) kthDist() (float64, bool) {
	if len(s.dist) < s.k {
		return 0, false
	}
	max := 0.0
	for _, d := range s.dist {
		if d > max {
			max = d
		}
	}
	return max, true
}

// evalKNNTouchLocked decides whether one touched object can change a PkNN
// subscription's result — it is in the result now, or its new state could
// place at or before the current k'th distance — and if so re-runs the
// query once through the index and emits the diff. Caller holds e.mu.
func (e *Engine) evalKNNTouchLocked(s *sub, cv *peb.CommitView, tc *peb.CommitTouch, seq uint64) {
	_, in := s.cur[tc.UID]
	affected := in
	if !affected && tc.Cur != nil {
		kth, full := s.kthDist()
		// <= not <: at equal distance the (Dist, UID) order can still
		// admit the touched object; the re-run decides exactly.
		affected = !full || tc.Cur.DistanceAt(s.t, s.x, s.y) <= kth
	}
	e.stats.Evaluated++ // the affected-check itself
	if !affected {
		return
	}
	e.rerunKNNLocked(s, cv, seq)
}

// rerunKNNLocked re-runs a PkNN subscription through the index and emits
// the diff against its tracked result. Caller holds e.mu.
func (e *Engine) rerunKNNLocked(s *sub, cv *peb.CommitView, seq uint64) {
	res, err := cv.NearestNeighbors(s.issuer, s.x, s.y, s.k, s.t)
	if err != nil {
		e.cancelLocked(s, err)
		return
	}
	e.stats.Evaluated += uint64(len(s.grantors))
	newCur := make(map[peb.UserID]peb.Object, len(res))
	newDist := make(map[peb.UserID]float64, len(res))
	for _, n := range res {
		newCur[n.Object.UID] = n.Object
		newDist[n.Object.UID] = n.Dist
	}
	// Leaves first (sorted for determinism), then enters/updates in
	// neighbor order.
	var gone []peb.UserID
	for uid := range s.cur {
		if _, ok := newCur[uid]; !ok {
			gone = append(gone, uid)
		}
	}
	sort.Slice(gone, func(i, j int) bool { return gone[i] < gone[j] })
	for _, uid := range gone {
		e.send(s, Delta{Kind: Leave, Object: s.cur[uid], Dist: s.dist[uid], Seq: seq})
	}
	for _, n := range res {
		uid := n.Object.UID
		old, was := s.cur[uid]
		switch {
		case !was:
			e.send(s, Delta{Kind: Enter, Object: n.Object, Dist: n.Dist, Seq: seq})
		case old != n.Object || s.dist[uid] != n.Dist:
			e.send(s, Delta{Kind: Update, Object: n.Object, Dist: n.Dist, Seq: seq})
		}
	}
	s.cur = newCur
	s.dist = newDist
}

// rescanLocked is the policy-change fallback: recompute the grantor set,
// re-run the full query once, emit the diff. Caller holds e.mu.
func (e *Engine) rescanLocked(s *sub, cv *peb.CommitView, seq uint64) {
	e.stats.Rescans++
	e.setGrantorsLocked(s, cv.Grantors(s.issuer))
	if s.knn {
		e.rerunKNNLocked(s, cv, seq)
		return
	}
	res, err := cv.RangeQuery(s.issuer, s.region, s.t)
	if err != nil {
		e.cancelLocked(s, err)
		return
	}
	e.stats.Evaluated += uint64(len(s.grantors))
	newCur := make(map[peb.UserID]peb.Object, len(res))
	for _, o := range res {
		newCur[o.UID] = o
	}
	var gone []peb.UserID
	for uid := range s.cur {
		if _, ok := newCur[uid]; !ok {
			gone = append(gone, uid)
		}
	}
	sort.Slice(gone, func(i, j int) bool { return gone[i] < gone[j] })
	for _, uid := range gone {
		e.send(s, Delta{Kind: Leave, Object: s.cur[uid], Seq: seq})
	}
	for _, o := range res {
		old, was := s.cur[o.UID]
		switch {
		case !was:
			e.send(s, Delta{Kind: Enter, Object: o, Seq: seq})
		case old != o:
			e.send(s, Delta{Kind: Update, Object: o, Seq: seq})
		}
	}
	s.cur = newCur
}

// send delivers one delta without ever blocking the commit path. Caller
// holds e.mu.
func (e *Engine) send(s *sub, d Delta) {
	if s.canceled {
		return
	}
	for {
		d.Dropped = s.pendingDropped
		select {
		case s.ch <- d:
			s.pendingDropped = 0
			e.stats.Deltas++
			return
		default:
		}
		if s.policy == Cancel {
			e.stats.Dropped++
			e.cancelLocked(s, ErrSlowConsumer)
			return
		}
		// DropOldest: evict the head and retry. The consumer may race us
		// and drain the channel first — then the eviction no-ops and the
		// retry succeeds.
		select {
		case old := <-s.ch:
			s.pendingDropped += 1 + old.Dropped
			e.stats.Dropped++
		default:
		}
	}
}

// cancelLocked terminates a subscription from inside a notification. The
// channel closes immediately; map removal is deferred to reapLocked so
// the caller may still be iterating byGrantor. Caller holds e.mu.
func (e *Engine) cancelLocked(s *sub, err error) {
	if s.canceled {
		return
	}
	s.canceled = true
	s.err = err
	close(s.ch)
	e.reap = append(e.reap, s)
}

// reapLocked unregisters subscriptions canceled during the current
// notification. Caller holds e.mu.
func (e *Engine) reapLocked() {
	if len(e.reap) == 0 {
		return
	}
	for _, s := range e.reap {
		e.removeLocked(s)
	}
	e.reap = e.reap[:0]
}
