package cq_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/peb"
	"repro/peb/cq"
)

// TestConcurrentStress runs committers, subscribers, and unsubscribers
// concurrently against one engine. It asserts no deadlock, no panic, and
// (under -race) no data race; delta-level exactness is the oracle test's
// job — here consumers only validate stream framing (no zero kinds, no
// negative drops).
func TestConcurrentStress(t *testing.T) {
	const (
		nUsers          = 60
		committers      = 4
		commitsEach     = 250
		subscribers     = 4
		subCyclesEach   = 40
		deltasPerDrain  = 20
		everywhereSide  = 1000.0
		evalTime        = 200.0
		subscriberSeed  = 100
		committerSeed   = 200
		policyFlipEvery = 50
	)
	db, err := peb.Open(peb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(11))
	seedPolicies(t, db, rng, nUsers)
	for u := 1; u <= nUsers; u++ {
		if err := db.Upsert(randObject(rng, peb.UserID(u), 0)); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := cq.Attach(db)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var wg sync.WaitGroup
	errc := make(chan error, committers+subscribers)

	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			now := 1.0
			for i := 0; i < commitsEach; i++ {
				now += rng.Float64()
				uid := peb.UserID(1 + rng.Intn(nUsers))
				var err error
				switch {
				case i%policyFlipEvery == policyFlipEvery-1:
					err = db.Grant(uid, peb.Role(fmt.Sprintf("peer%d", uid)),
						peb.Region{MinX: 0, MinY: 0, MaxX: everywhereSide, MaxY: everywhereSide},
						peb.TimeInterval{Start: 0, End: 1440})
				case rng.Intn(10) == 0:
					err = db.Remove(uid)
					if err != nil {
						err = nil // racing removers may lose; that's fine
					}
				case rng.Intn(4) == 0:
					b := db.NewBatch()
					for j := 0; j < 1+rng.Intn(5); j++ {
						b.Upsert(randObject(rng, peb.UserID(1+rng.Intn(nUsers)), now))
					}
					err = db.Apply(b)
				default:
					err = db.Upsert(randObject(rng, uid, now))
				}
				if err != nil {
					errc <- fmt.Errorf("committer: %w", err)
					return
				}
			}
		}(committerSeed + int64(w))
	}

	for w := 0; w < subscribers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for c := 0; c < subCyclesEach; c++ {
				issuer := peb.UserID(1 + rng.Intn(nUsers))
				var sub *cq.Subscription
				var err error
				if rng.Intn(2) == 0 {
					cx, cy := rng.Float64()*everywhereSide, rng.Float64()*everywhereSide
					r := clampRegion(peb.Region{MinX: cx - 200, MinY: cy - 200, MaxX: cx + 200, MaxY: cy + 200})
					sub, _, err = eng.SubscribeRange(issuer, r, evalTime, cq.SubOptions{Buffer: 64})
				} else {
					sub, _, err = eng.SubscribePkNN(issuer, rng.Float64()*everywhereSide, rng.Float64()*everywhereSide,
						1+rng.Intn(5), evalTime, cq.SubOptions{Buffer: 64, Overflow: cq.Cancel})
				}
				if err != nil {
					errc <- fmt.Errorf("subscribe: %w", err)
					return
				}
				for i := 0; i < deltasPerDrain; i++ {
					select {
					case d, ok := <-sub.Deltas():
						if !ok {
							i = deltasPerDrain // canceled by overflow: stop draining
							break
						}
						if d.Kind == 0 || d.Dropped < 0 {
							errc <- fmt.Errorf("malformed delta %+v", d)
							return
						}
					default:
						i = deltasPerDrain
					}
				}
				sub.Close()
			}
		}(subscriberSeed + int64(w))
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := eng.Stats()
	if st.Live != 0 {
		t.Fatalf("live subscriptions leaked: %d", st.Live)
	}
	t.Logf("stress stats: %+v", st)
}
