package cq

import (
	"fmt"

	"repro/peb"
)

// Kind classifies a delta.
type Kind uint8

const (
	// Enter: the object joined the result set.
	Enter Kind = iota + 1
	// Leave: the object left the result set; Delta.Object is its last
	// known state.
	Leave
	// Update: the object remains in the result set with new state (a
	// movement update, or for PkNN a changed distance/rank).
	Update
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Enter:
		return "enter"
	case Leave:
		return "leave"
	case Update:
		return "update"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Delta is one change to a subscription's result set.
type Delta struct {
	Kind   Kind
	Object peb.Object
	// Dist is the neighbor distance at the subscription's evaluation time
	// (PkNN subscriptions only; zero for range subscriptions).
	Dist float64
	// Seq is the commit notification sequence that produced this delta.
	// All deltas of one commit share one Seq, so a consumer can group
	// them into atomic result transitions.
	Seq uint64
	// Dropped counts deltas the engine discarded (DropOldest overflow)
	// between the previously delivered delta and this one. A non-zero
	// value means the consumer's view has a gap: the stream is still
	// self-consistent from the engine's side, but the consumer should
	// resynchronize if it mirrors the full result set.
	Dropped int
}
