package peb

import (
	"fmt"
	"sort"

	"repro/internal/policy"
	"repro/internal/store"
)

// Split policy encoding, for shard routers. EncodePolicies computes a
// sequence-value assignment and rebuilds the index in one call; a sharded
// deployment wants the two halves apart, because the computation is
// identical on every shard (policies are broadcast) while the rebuild is
// per shard: compute the assignment once — over the union of every
// shard's users — and install the shared result everywhere. Sharing one
// assignment also keeps the shards' keys mutually consistent when a user
// re-homes: the user's sequence value is the same on the new shard as it
// was on the old.

// PolicyEncoding is a computed sequence-value assignment (the output of
// the paper's Fig. 5 algorithm), detached from any index. Obtain one from
// ComputeEncoding, install it with InstallEncoding — on the same DB or on
// any DB holding the same policy state.
type PolicyEncoding struct {
	assignment policy.Assignment
}

// Covers reports whether the encoding assigns a sequence value to uid.
func (e *PolicyEncoding) Covers(uid UserID) bool {
	_, ok := e.assignment.SV[policy.UserID(uid)]
	return ok
}

// ComputeEncoding runs the offline policy-encoding phase over this DB's
// known users plus extra, without touching the index. It is a read-only
// operation: commits keep flowing while it runs. The extra ids let a
// router fold in users this DB has never seen (users indexed on other
// shards), so the resulting encoding can be installed on every shard.
func (db *DB) ComputeEncoding(extra []UserID) (*PolicyEncoding, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	seen := make(map[policy.UserID]bool, len(db.users)+len(extra))
	users := make([]policy.UserID, 0, len(db.users)+len(extra))
	for u := range db.users {
		if !seen[policy.UserID(u)] {
			seen[policy.UserID(u)] = true
			users = append(users, policy.UserID(u))
		}
	}
	for _, u := range extra {
		if !seen[policy.UserID(u)] {
			seen[policy.UserID(u)] = true
			users = append(users, policy.UserID(u))
		}
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	assignment, err := policy.AssignSequenceValues(db.policies, users, policy.AssignOptions{})
	if err != nil {
		return nil, err
	}
	return &PolicyEncoding{assignment: assignment}, nil
}

// InstallEncoding rebuilds the index under a precomputed encoding —
// EncodePolicies' second half. The encoding must cover every user this DB
// currently indexes (checked before anything is touched); an encoding from
// ComputeEncoding over a superset of this DB's users always does. The
// rebuild is logged like an EncodePolicies rebuild, so replay restores the
// installed assignment without recomputing it.
func (db *DB) InstallEncoding(enc *PolicyEncoding) error {
	tok, err := db.installEncodingCommit(enc)
	if err != nil {
		return err
	}
	return db.walSync(tok)
}

func (db *DB) installEncodingCommit(enc *PolicyEncoding) (store.WALToken, error) {
	// Like encodePoliciesCommit: the rebuild swaps state an in-flight
	// checkpoint's build phase reads, so drain the pipeline first.
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	// Verify coverage before the rebuild destroys the old tree: an indexed
	// user without a sequence value would fail re-insertion halfway.
	for u := range db.users {
		if _, ok := enc.assignment.SV[policy.UserID(u)]; ok {
			continue
		}
		if _, indexed, err := db.tree.Get(u); err != nil {
			return 0, err
		} else if indexed {
			return 0, fmt.Errorf("peb: encoding does not cover indexed user %d", u)
		}
	}
	if err := db.rebuildLocked(enc.assignment); err != nil {
		return 0, err
	}
	db.fireCommitLocked(nil, false, true)
	recs, maxSV, groups := encodeAssignment(enc.assignment)
	return db.walAppend([]walOp{{Kind: walOpEncode, Assign: recs, MaxSV: maxSV, Groups: groups}})
}
