package peb

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func TestCheckpointRequiresFileBacking(t *testing.T) {
	db := mustOpen(t, Options{})
	if err := db.Checkpoint(); err == nil {
		t.Error("memory-backed checkpoint accepted")
	}
}

func TestCheckpointAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "city.idx")
	opts := Options{Path: path}
	db := mustOpen(t, opts)

	day := TimeInterval{Start: 0, End: 1440}
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(21))
	const n = 400
	for i := 1; i <= n; i++ {
		peer := UserID(rng.Intn(n) + 1)
		if peer != UserID(i) {
			db.DefineRelation(UserID(i), peer, "f")
			if err := db.Grant(UserID(i), "f", all, day); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			UID: UserID(i + 1),
			X:   rng.Float64() * 1000, Y: rng.Float64() * 1000,
			VX: rng.Float64()*4 - 2, VY: rng.Float64()*4 - 2,
			T: rng.Float64() * 50,
		}
		if err := db.Upsert(objs[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Reference answers before the checkpoint.
	type q struct {
		issuer UserID
		r      Region
		tq     float64
	}
	queries := make([]q, 20)
	refs := make([][]Object, 20)
	for i := range queries {
		queries[i] = q{
			issuer: UserID(rng.Intn(n) + 1),
			r:      Region{MinX: 100, MinY: 100, MaxX: 100 + rng.Float64()*800, MaxY: 100 + rng.Float64()*800},
			tq:     rng.Float64() * 60,
		}
		res, err := db.RangeQuery(queries[i].issuer, queries[i].r, queries[i].tq)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res
	}

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and replay: identical answers, no reinsertion.
	db2, err := OpenExisting(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Size() != n {
		t.Fatalf("reopened size = %d, want %d", db2.Size(), n)
	}
	for i, qq := range queries {
		res, err := db2.RangeQuery(qq.issuer, qq.r, qq.tq)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(refs[i]) {
			t.Fatalf("query %d: %d results after reopen, want %d", i, len(res), len(refs[i]))
		}
		want := make(map[UserID]bool, len(refs[i]))
		for _, o := range refs[i] {
			want[o.UID] = true
		}
		for _, o := range res {
			if !want[o.UID] {
				t.Fatalf("query %d: unexpected u%d after reopen", i, o.UID)
			}
		}
	}

	// The reopened DB accepts further updates and queries.
	upd := objs[0]
	upd.X, upd.Y, upd.T = 500, 500, 70
	if err := db2.Upsert(upd); err != nil {
		t.Fatal(err)
	}
	got, ok, err := db2.Lookup(upd.UID)
	if err != nil || !ok || got != upd {
		t.Fatalf("Lookup after reopen+update = %+v %v %v", got, ok, err)
	}
	// And a brand-new user gets a fresh sequence value (NextSV restored).
	if err := db2.Upsert(Object{UID: 9999, X: 1, Y: 1, T: 70}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenExistingErrors(t *testing.T) {
	if _, err := OpenExisting(Options{}); err == nil {
		t.Error("no path accepted")
	}
	if _, err := OpenExisting(Options{Path: filepath.Join(t.TempDir(), "missing.idx")}); err == nil {
		t.Error("missing checkpoint accepted")
	}
}
