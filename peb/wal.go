package peb

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
)

// Logical write-ahead logging.
//
// Every committed mutation appends one walRecord describing the operation
// with all nondeterminism resolved: fresh sequence values are logged as
// explicit SetSV operations, and EncodePolicies logs the computed
// assignment rather than its inputs, so replay reproduces the committed
// state exactly without re-running the assignment algorithm.
//
// Commit protocol: the mutation is applied in memory first (validating it),
// the record is appended under the write lock (so log order equals apply
// order), and the commit waits for the WAL sync *after* releasing the lock
// — which is what lets concurrent commits share one fsync (group commit).
// The published query view may therefore briefly show a commit that is not
// yet durable; a crash in that window loses only unacknowledged commits.
//
// Replay never double-applies: the meta file — the checkpoint's atomic
// commit point — names the exact policies snapshot and page image it
// pairs with (each checkpoint writes its policies under a fresh name), so
// recovery always starts from one checkpoint's complete state and applies
// only records past its WAL horizon. Policy operations are idempotent
// anyway (SetRelation by construction, AddPolicy deduplicates exact
// duplicates, load/encode replace state wholesale) as defense in depth.

type walOpKind uint8

const (
	walOpSetSV walOpKind = iota
	walOpUpsert
	walOpRemove
	walOpRelation
	walOpGrant
	walOpEncode
	walOpLoadPolicies
)

// assignRec is one user's entry of a logged sequence-value assignment.
type assignRec struct {
	UID UserID
	SV  float64
}

// walOp is one logical operation inside a committed record. Exactly the
// fields for Kind are populated.
type walOp struct {
	Kind walOpKind

	Obj  Object       // walOpUpsert
	UID  UserID       // walOpSetSV, walOpRemove
	SV   float64      // walOpSetSV
	Own  UserID       // walOpRelation, walOpGrant
	Peer UserID       // walOpRelation
	Role Role         // walOpRelation, walOpGrant
	Locr Region       // walOpGrant
	Tint TimeInterval // walOpGrant

	// walOpEncode: the assignment the index was rebuilt under.
	Assign []assignRec
	MaxSV  float64
	Groups int

	// walOpLoadPolicies: the policy snapshot (policy.Store gob format).
	Blob []byte
}

// Transaction states a record can carry (cross-shard two-phase commit;
// see prepared.go). Ordinary single-DB commits log txnNone records.
const (
	txnNone uint8 = iota
	// txnPrepared: the record's operations are applied in memory but their
	// durability fate rests with a coordinator. Replay applies the record
	// only if a later txnCommitted marker (or the coordinator's resolver)
	// confirms the transaction.
	txnPrepared
	// txnCommitted / txnAborted: marker records (no operations) sealing a
	// prepared transaction's fate in this participant's log.
	txnCommitted
	txnAborted
)

// walRecord is one commit: a batch of operations applied atomically, plus
// the post-commit nextSV so replay restores the sequence-value cursor.
// TxnID/TxnState tie the record into a cross-shard transaction: zero for
// ordinary commits, the coordinator's transaction id for prepared records
// and their commit/abort markers.
type walRecord struct {
	Seq      uint64
	NextSV   float64
	Ops      []walOp
	TxnID    uint64
	TxnState uint8
}

// encodeAssignment flattens an assignment into deterministic (sorted)
// records for logging.
func encodeAssignment(a policy.Assignment) ([]assignRec, float64, int) {
	recs := make([]assignRec, 0, len(a.SV))
	for uid, sv := range a.SV {
		recs = append(recs, assignRec{UID: UserID(uid), SV: sv})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].UID < recs[j].UID })
	return recs, a.MaxSV, a.Groups
}

// decodeAssignment rebuilds the assignment a walOpEncode logged.
func decodeAssignment(op walOp) policy.Assignment {
	a := policy.Assignment{
		SV:     make(map[policy.UserID]float64, len(op.Assign)),
		MaxSV:  op.MaxSV,
		Groups: op.Groups,
	}
	for _, r := range op.Assign {
		a.SV[policy.UserID(r.UID)] = r.SV
	}
	return a
}

// marshalRecord serializes a record for the WAL with the binary codec
// (walcodec.go). Each record is self-contained, so it decodes
// independently during replay.
func marshalRecord(rec *walRecord) ([]byte, error) {
	return appendRecord(nil, rec), nil
}

// marshalRecordGob is the original encoding/gob serialization, kept as the
// reference legacy writer: the codec benchmark uses it for before/after
// numbers, and tests use it to mint gob-era records for the fallback path
// below.
func marshalRecordGob(rec *walRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("peb: encode wal record: %w", err)
	}
	return buf.Bytes(), nil
}

// unmarshalRecord decodes either codec generation. Binary-codec records
// announce themselves with codec.MagicWALRecord, a byte no gob stream can
// start with (see internal/codec), so the dispatch is unambiguous;
// anything else is treated as a gob-era record.
func unmarshalRecord(data []byte) (walRecord, error) {
	if len(data) > 0 && data[0] == codec.MagicWALRecord {
		return decodeRecord(data)
	}
	var rec walRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return walRecord{}, fmt.Errorf("peb: decode wal record: %w", err)
	}
	return rec, nil
}

// walAppend logs one committed mutation. The caller holds the write lock
// and has already applied the mutation in memory successfully. The returned
// token is passed to walSync after the lock is released. A nil WAL (or a
// replay in progress) logs nothing.
//
// An append failure poisons the WAL: the in-memory state is ahead of the
// log, and accepting any later record would persist a history with a hole.
// All subsequent commits fail until the DB is reopened; reads and the
// already-applied mutation remain visible in memory.
func (db *DB) walAppend(ops []walOp) (store.WALToken, error) {
	return db.walAppendTxn(ops, 0, txnNone)
}

// walAppendTxn is walAppend carrying a transaction id and state — the form
// prepared records and their commit/abort markers are logged in.
func (db *DB) walAppendTxn(ops []walOp, txnID uint64, txnState uint8) (store.WALToken, error) {
	if txnID > db.maxTxn {
		db.maxTxn = txnID
	}
	if db.wal == nil {
		return 0, nil
	}
	db.walSeq++
	rec := walRecord{Seq: db.walSeq, NextSV: db.nextSV, Ops: ops, TxnID: txnID, TxnState: txnState}
	// Encode into the DB's reusable buffer: the caller holds the write
	// lock, and Append copies the payload into the frame before returning,
	// so the buffer is free again by the next commit. After the first few
	// commits warm it up, encoding allocates nothing.
	db.encBuf = appendRecord(db.encBuf[:0], &rec)
	tok, err := db.wal.Append(db.encBuf)
	if err != nil {
		return 0, fmt.Errorf("peb: wal append: %w", err)
	}
	// The commit may have pushed the log over an AutoCheckpoint threshold;
	// nudge the maintainer (non-blocking).
	db.maybeAutoCheckpoint()
	return tok, nil
}

// walSync completes a commit: it blocks until the record is durable
// according to the configured durability level. Called without the write
// lock (that is the point — waiters here share fsyncs with concurrent
// committers). The WAL pointer is re-read under the read lock because a
// concurrent Close may detach it; Close syncs the log first, so a commit
// that finds the WAL gone is already durable.
func (db *DB) walSync(tok store.WALToken) error {
	if tok == 0 {
		return nil
	}
	db.mu.RLock()
	w := db.wal
	db.mu.RUnlock()
	if w == nil {
		return nil
	}
	if err := w.Commit(tok); err != nil {
		return fmt.Errorf("peb: wal commit: %w", err)
	}
	return nil
}

// replayRecord re-applies one committed record during recovery. The DB is
// mid-open: no snapshots exist, no WAL is attached (nothing re-logs), and
// the caller refreshes the view afterwards.
func (db *DB) replayRecord(rec walRecord) error {
	var index []core.BatchOp
	for i := range rec.Ops {
		op := &rec.Ops[i]
		switch op.Kind {
		case walOpSetSV:
			index = append(index, core.BatchOp{Kind: core.OpSetSV, UID: motion.UserID(op.UID), SV: op.SV})
		case walOpUpsert:
			index = append(index, core.BatchOp{Kind: core.OpUpsert, Obj: op.Obj})
			db.noteUser(op.Obj.UID)
		case walOpRemove:
			index = append(index, core.BatchOp{Kind: core.OpRemove, UID: motion.UserID(op.UID)})
		case walOpRelation:
			db.policies.SetRelation(policy.UserID(op.Own), policy.UserID(op.Peer), op.Role)
			db.noteUser(op.Own)
			db.noteUser(op.Peer)
			db.encoded = false
		case walOpGrant:
			if err := db.policies.AddPolicy(policy.UserID(op.Own), policy.Policy{Role: op.Role, Locr: op.Locr, Tint: op.Tint}); err != nil {
				return fmt.Errorf("peb: replay grant: %w", err)
			}
			db.noteUser(op.Own)
			db.encoded = false
		case walOpEncode:
			// Flush any index ops staged before the rebuild (ordering within
			// a record is apply order).
			if err := db.replayIndexOps(index); err != nil {
				return err
			}
			index = nil
			if err := db.rebuildLocked(decodeAssignment(*op)); err != nil {
				return fmt.Errorf("peb: replay encode: %w", err)
			}
		case walOpLoadPolicies:
			loaded, err := policy.Load(bytes.NewReader(op.Blob))
			if err != nil {
				return fmt.Errorf("peb: replay load-policies: %w", err)
			}
			db.policies = loaded
			_ = db.tree.SetPolicies(loaded)
			loaded.ForEachGrant(func(owner, viewer policy.UserID, _ policy.Policy) bool {
				db.users[UserID(owner)] = true
				db.users[UserID(viewer)] = true
				return true
			})
			db.encoded = false
		default:
			return fmt.Errorf("peb: unknown wal op kind %d", op.Kind)
		}
	}
	if err := db.replayIndexOps(index); err != nil {
		return err
	}
	db.nextSV = rec.NextSV
	if db.nextSV < 2 {
		db.nextSV = 2
	}
	db.walSeq = rec.Seq
	return nil
}

// replayIndexOps applies a record's index operations through the same
// batch machinery commits use.
func (db *DB) replayIndexOps(ops []core.BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	if err := db.tree.ApplyBatch(ops); err != nil {
		return fmt.Errorf("peb: replay batch: %w", err)
	}
	return nil
}
