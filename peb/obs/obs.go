// Package obs exposes a running PEB-tree engine's observability surface
// over HTTP: Prometheus text at /metrics, a JSON status snapshot (stats,
// topology, recent maintainer events) at /statusz, and the standard
// net/http/pprof profiling endpoints under /debug/pprof/.
//
// The package is glue, not instrumentation: every series it serves is
// recorded by the engine itself (see repro/internal/obs and the Metrics
// and Events accessors on peb.DB and sharded.DB), so mounting or
// dropping the endpoint changes nothing on any hot path.
//
// Typical wiring:
//
//	db, _ := sharded.Open(opts)
//	srv, _ := obs.Serve("localhost:6060", obs.ForSharded(db))
//	defer srv.Close()
//	// curl localhost:6060/metrics
package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	iobs "repro/internal/obs"
	"repro/peb"
	"repro/peb/sharded"
)

// Target is one scrapable engine: where to gather metric registries, the
// event log tail, and the status snapshot. Gather is a function, not a
// fixed slice, because a sharded engine's registry set follows the
// topology — splits and merges add and retire per-shard registries
// between scrapes. Events and Status may be nil (the corresponding
// /statusz sections are omitted).
type Target struct {
	Gather func() []*iobs.Registry
	Events func() []iobs.Event
	Status func() any
}

// statusDB is /statusz for a single-tree engine.
type statusDB struct {
	Size        int                 `json:"size"`
	CommitSeq   uint64              `json:"commit_seq"`
	ViewSwaps   uint64              `json:"view_swaps"`
	WAL         peb.WALStats        `json:"wal"`
	Checkpoints peb.CheckpointStats `json:"checkpoints"`
	Buffer      bufferStatus        `json:"buffer"`
}

// statusSharded is /statusz for a sharded router: the aggregate plus the
// per-shard topology breakdown.
type statusSharded struct {
	Stats sharded.Stats `json:"stats"`
}

type bufferStatus struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// ForDB builds the Target for a single-tree engine.
func ForDB(db *peb.DB) Target {
	return Target{
		Gather: func() []*iobs.Registry { return []*iobs.Registry{db.Metrics()} },
		Events: func() []iobs.Event { return db.Events().Recent(0) },
		Status: func() any {
			io := db.IOStats()
			return statusDB{
				Size:        db.Size(),
				CommitSeq:   db.CommitSeq(),
				ViewSwaps:   db.ViewSwaps(),
				WAL:         db.WALStats(),
				Checkpoints: db.CheckpointStats(),
				Buffer:      bufferStatus{Hits: io.Hits, Misses: io.Misses},
			}
		},
	}
}

// ForSharded builds the Target for a sharded router: the merged registry
// set (router + every live shard), the router's event log, and the full
// per-shard stats as status. Per-shard engine events stay on each
// engine's own log; the router log holds the topology-scoped decisions.
func ForSharded(db *sharded.DB) Target {
	return Target{
		Gather: func() []*iobs.Registry { return db.MetricsRegistries() },
		Events: func() []iobs.Event { return db.Events().Recent(0) },
		Status: func() any { return statusSharded{Stats: db.Stats()} },
	}
}

// statuszPayload is the /statusz document.
type statuszPayload struct {
	Time   time.Time    `json:"time"`
	Status any          `json:"status,omitempty"`
	Events []iobs.Event `json:"events,omitempty"`
}

// Handler returns the endpoint's HTTP handler:
//
//	/metrics        Prometheus text exposition (all gathered registries)
//	/statusz        JSON snapshot: status struct + recent events
//	/debug/pprof/   the standard runtime profiles
func Handler(t Target) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = iobs.WriteText(w, t.Gather()...)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		p := statuszPayload{Time: time.Now()}
		if t.Status != nil {
			p.Status = t.Status()
		}
		if t.Events != nil {
			p.Events = t.Events()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live monitoring endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the endpoint on addr (e.g. "localhost:6060"; a ":0" port
// picks a free one — read it back from Addr). The listener is bound
// before Serve returns, so a scrape of Addr() never races the startup.
func Serve(addr string, t Target) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(t)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
