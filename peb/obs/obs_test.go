package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/peb"
	"repro/peb/sharded"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body)
}

func TestServeDB(t *testing.T) {
	db, err := peb.Open(peb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 1; i <= 10; i++ {
		if err := db.Upsert(peb.Object{UID: peb.UserID(i), X: float64(i), Y: float64(i), T: 1}); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := Serve("localhost:0", ForDB(db))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	metrics := scrape(t, base+"/metrics")
	for _, want := range []string{
		"# TYPE peb_commit_seconds histogram",
		"peb_commit_seconds_count 10",
		"peb_size 10",
		"peb_view_swaps_total 11",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var status struct {
		Status struct {
			Size      int    `json:"size"`
			ViewSwaps uint64 `json:"view_swaps"`
		} `json:"status"`
	}
	if err := json.Unmarshal([]byte(scrape(t, base+"/statusz")), &status); err != nil {
		t.Fatalf("parse /statusz: %v", err)
	}
	if status.Status.Size != 10 || status.Status.ViewSwaps != 11 {
		t.Errorf("statusz: size %d swaps %d, want 10/11", status.Status.Size, status.Status.ViewSwaps)
	}

	if !strings.Contains(scrape(t, base+"/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
}

func TestServeSharded(t *testing.T) {
	db, err := sharded.Open(sharded.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	side := db.Stats() // warm nothing; just prove it's callable pre-write
	_ = side
	bounds := 1000.0
	for i := 1; i <= 40; i++ {
		o := peb.Object{UID: peb.UserID(i), X: float64(i) * bounds / 41, Y: float64(i) * bounds / 41, T: 1}
		if err := db.Upsert(o); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := Serve("localhost:0", ForSharded(db))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	metrics := scrape(t, base+"/metrics")
	for _, want := range []string{
		`peb_shard_commits_total{shard="000"}`,
		`peb_shard_commits_total{shard="003"}`,
		`peb_commit_seconds_count{shard="000"}`,
		"peb_router_shards 4",
		"peb_router_epoch",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The per-shard families merge under a single header.
	if n := strings.Count(metrics, "# TYPE peb_commit_seconds histogram"); n != 1 {
		t.Errorf("peb_commit_seconds TYPE header appears %d times, want 1", n)
	}

	var status struct {
		Status struct {
			Stats struct {
				Shards []struct {
					ID   int `json:"ID"`
					Size int `json:"Size"`
				} `json:"Shards"`
			} `json:"stats"`
		} `json:"status"`
	}
	if err := json.Unmarshal([]byte(scrape(t, base+"/statusz")), &status); err != nil {
		t.Fatalf("parse /statusz: %v", err)
	}
	if len(status.Status.Stats.Shards) != 4 {
		t.Fatalf("statusz topology: %d shards, want 4", len(status.Status.Stats.Shards))
	}
	total := 0
	for _, ss := range status.Status.Stats.Shards {
		total += ss.Size
	}
	if total != 40 {
		t.Errorf("statusz population %d, want 40", total)
	}
}
