package peb

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// The tests in this file exercise the single-writer/multi-reader contract:
// many goroutines issue RangeQuery/NearestNeighbors while Upsert batches
// interleave. They are written to be meaningful under -race: the phased
// test cross-checks every concurrent result against a serial oracle, and
// the chaos test races queries directly against updates to surface any
// unsynchronized state.

const (
	stressUsers   = 150
	stressGroups  = 5
	stressReaders = 8
)

// buildStressDB creates a population of stressUsers users in stressGroups
// friend circles. Every member grants its circle visibility over a random
// sub-region of the space for the whole day, so query results depend on
// both location and policy. Returns the DB and the current object states.
func buildStressDB(t testing.TB, rng *rand.Rand) (*DB, map[UserID]Object) {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	day := TimeInterval{Start: 0, End: 1440}
	perGroup := stressUsers / stressGroups
	for g := 0; g < stressGroups; g++ {
		lo := UserID(1 + g*perGroup)
		for a := lo; a < lo+UserID(perGroup); a++ {
			for b := lo; b < lo+UserID(perGroup); b++ {
				if a != b {
					db.DefineRelation(a, b, "friend")
				}
			}
			// A random axis-aligned grant region; a handful of users grant
			// nothing and must never appear in anyone's results.
			if a%17 == 0 {
				continue
			}
			x0, y0 := rng.Float64()*600, rng.Float64()*600
			locr := Region{MinX: x0, MinY: y0, MaxX: x0 + 200 + rng.Float64()*200, MaxY: y0 + 200 + rng.Float64()*200}
			if err := db.Grant(a, "friend", locr, day); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}

	objs := make(map[UserID]Object, stressUsers)
	for u := UserID(1); u <= stressUsers; u++ {
		o := randomObject(u, 0, rng)
		if err := db.Upsert(o); err != nil {
			t.Fatal(err)
		}
		objs[u] = o
	}
	return db, objs
}

// randomObject draws a position inside the space and a velocity within the
// index's MaxSpeed bound.
func randomObject(u UserID, tNow float64, rng *rand.Rand) Object {
	return Object{
		UID: u,
		X:   50 + rng.Float64()*900,
		Y:   50 + rng.Float64()*900,
		VX:  rng.Float64()*2 - 1,
		VY:  rng.Float64()*2 - 1,
		T:   tNow,
	}
}

// oraclePRQ answers Definition 2 by brute force over the known states.
func oraclePRQ(db *DB, objs map[UserID]Object, issuer UserID, r Region, tq float64) map[UserID]bool {
	out := make(map[UserID]bool)
	for u, o := range objs {
		if u == issuer {
			continue
		}
		x, y := o.PositionAt(tq)
		if x < r.MinX || x > r.MaxX || y < r.MinY || y > r.MaxY {
			continue
		}
		if db.Allows(u, issuer, x, y, tq) {
			out[u] = true
		}
	}
	return out
}

// oracleKNNDists returns the ascending distances of every user qualified to
// appear in issuer's PkNN result at tq.
func oracleKNNDists(db *DB, objs map[UserID]Object, issuer UserID, qx, qy, tq float64) []float64 {
	var ds []float64
	for u, o := range objs {
		if u == issuer {
			continue
		}
		x, y := o.PositionAt(tq)
		if db.Allows(u, issuer, x, y, tq) {
			ds = append(ds, o.DistanceAt(tq, qx, qy))
		}
	}
	sort.Float64s(ds)
	return ds
}

// checkPRQ compares one concurrent RangeQuery result with the oracle.
func checkPRQ(db *DB, objs map[UserID]Object, issuer UserID, r Region, tq float64) error {
	got, err := db.RangeQuery(issuer, r, tq)
	if err != nil {
		return err
	}
	want := oraclePRQ(db, objs, issuer, r, tq)
	if len(got) != len(want) {
		return fmt.Errorf("issuer %d: PRQ returned %d users, oracle says %d", issuer, len(got), len(want))
	}
	for _, o := range got {
		if !want[o.UID] {
			return fmt.Errorf("issuer %d: PRQ returned unexpected user %d", issuer, o.UID)
		}
	}
	return nil
}

// checkKNN compares one concurrent NearestNeighbors result with the oracle
// by distance multiset, which is robust to ties between distinct users.
func checkKNN(db *DB, objs map[UserID]Object, issuer UserID, qx, qy float64, k int, tq float64) error {
	got, err := db.NearestNeighbors(issuer, qx, qy, k, tq)
	if err != nil {
		return err
	}
	all := oracleKNNDists(db, objs, issuer, qx, qy, tq)
	wantN := len(all)
	if wantN > k {
		wantN = k
	}
	if len(got) != wantN {
		return fmt.Errorf("issuer %d: PkNN returned %d neighbors, oracle says %d", issuer, len(got), wantN)
	}
	for i, nb := range got {
		if i > 0 && got[i-1].Dist > nb.Dist {
			return fmt.Errorf("issuer %d: PkNN result not sorted", issuer)
		}
		if math.Abs(nb.Dist-all[i]) > 1e-9 {
			return fmt.Errorf("issuer %d: PkNN dist[%d] = %g, oracle %g", issuer, i, nb.Dist, all[i])
		}
	}
	return nil
}

// TestConcurrentQueriesAgainstOracle interleaves Upsert batches with rounds
// of concurrent queries. Within a round the DB is quiescent, so every
// concurrent result must match a serial brute-force oracle exactly.
func TestConcurrentQueriesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db, objs := buildStressDB(t, rng)

	const rounds = 4
	for round := 0; round < rounds; round++ {
		// Mutate: move roughly half the population.
		tNow := float64(round)
		for u := UserID(1); u <= stressUsers; u++ {
			if rng.Intn(2) == 0 {
				continue
			}
			o := randomObject(u, tNow, rng)
			if err := db.Upsert(o); err != nil {
				t.Fatal(err)
			}
			objs[u] = o
		}
		tq := tNow + 5

		// Query concurrently against the now-quiescent state.
		var wg sync.WaitGroup
		errs := make(chan error, stressReaders)
		for r := 0; r < stressReaders; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rg := rand.New(rand.NewSource(seed))
				for i := 0; i < 8; i++ {
					issuer := UserID(1 + rg.Intn(stressUsers))
					x0, y0 := rg.Float64()*700, rg.Float64()*700
					reg := Region{MinX: x0, MinY: y0, MaxX: x0 + 300, MaxY: y0 + 300}
					if err := checkPRQ(db, objs, issuer, reg, tq); err != nil {
						errs <- err
						return
					}
					if err := checkKNN(db, objs, issuer, rg.Float64()*1000, rg.Float64()*1000, 1+rg.Intn(5), tq); err != nil {
						errs <- err
						return
					}
					if _, _, err := db.Lookup(issuer); err != nil {
						errs <- err
						return
					}
				}
			}(int64(round*100 + r))
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// oracleSnapPRQ answers Definition 2 by brute force against a frozen
// object table and a snapshot's pinned policy view.
func oracleSnapPRQ(snap *Snapshot, objs map[UserID]Object, issuer UserID, r Region, tq float64) map[UserID]bool {
	out := make(map[UserID]bool)
	for u, o := range objs {
		if u == issuer {
			continue
		}
		x, y := o.PositionAt(tq)
		if x < r.MinX || x > r.MaxX || y < r.MinY || y > r.MaxY {
			continue
		}
		if snap.Allows(u, issuer, x, y, tq) {
			out[u] = true
		}
	}
	return out
}

// TestSnapshotOracleUnderConcurrentWrites pins a Snapshot, freezes a copy
// of the object table, then races a continuous writer against snapshot
// readers: every concurrent snapshot query — eager and streaming — must
// match the frozen oracle exactly, for the whole life of the snapshot.
// This is the lock-free counterpart of TestConcurrentQueriesAgainstOracle:
// there the DB is quiescent during reads; here it never is. Run with -race.
func TestSnapshotOracleUnderConcurrentWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db, objs := buildStressDB(t, rng)

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	frozen := make(map[UserID]Object, len(objs))
	for u, o := range objs {
		frozen[u] = o
	}

	var wg sync.WaitGroup
	errs := make(chan error, stressReaders+1)

	// Writer: continuous churn — moves, removals, re-inserts, new users,
	// policy changes — all invisible to the pinned snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(77))
		for i := 0; i < 300; i++ {
			u := UserID(1 + wrng.Intn(stressUsers))
			switch i % 10 {
			case 7:
				if err := db.Remove(u); err != nil {
					errs <- fmt.Errorf("writer remove u%d: %w", u, err)
					return
				}
				if err := db.Upsert(randomObject(u, float64(i)/50, wrng)); err != nil {
					errs <- err
					return
				}
			case 8:
				nu := UserID(10_000 + i)
				if err := db.Upsert(randomObject(nu, float64(i)/50, wrng)); err != nil {
					errs <- err
					return
				}
			case 9:
				if err := db.DefineRelation(u, UserID(1+wrng.Intn(stressUsers)), "friend"); err != nil {
					errs <- err
					return
				}
			default:
				if err := db.Upsert(randomObject(u, float64(i)/50, wrng)); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	for r := 0; r < stressReaders; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rg := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				issuer := UserID(1 + rg.Intn(stressUsers))
				x0, y0 := rg.Float64()*700, rg.Float64()*700
				reg := Region{MinX: x0, MinY: y0, MaxX: x0 + 300, MaxY: y0 + 300}
				tq := 5.0
				want := oracleSnapPRQ(snap, frozen, issuer, reg, tq)

				got, err := snap.RangeQuery(issuer, reg, tq)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want) {
					errs <- fmt.Errorf("issuer %d: snapshot PRQ returned %d users, oracle says %d", issuer, len(got), len(want))
					return
				}
				for _, o := range got {
					if !want[o.UID] {
						errs <- fmt.Errorf("issuer %d: snapshot PRQ returned unexpected u%d", issuer, o.UID)
						return
					}
				}

				// The streaming form must agree with the oracle too.
				streamed := 0
				for o, serr := range snap.RangeQueryCtx(context.Background(), issuer, reg, tq) {
					if serr != nil {
						errs <- serr
						return
					}
					if !want[o.UID] {
						errs <- fmt.Errorf("issuer %d: stream yielded unexpected u%d", issuer, o.UID)
						return
					}
					streamed++
				}
				if streamed != len(want) {
					errs <- fmt.Errorf("issuer %d: stream yielded %d users, oracle says %d", issuer, streamed, len(want))
					return
				}

				if i%5 == 0 {
					if _, err := snap.NearestNeighbors(issuer, rg.Float64()*1000, rg.Float64()*1000, 3, tq); err != nil {
						errs <- err
						return
					}
					snap.IOStats()
				}
			}
		}(int64(5000 + r))
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the dust settles the snapshot still matches the frozen oracle
	// (and the live DB has moved on).
	issuer := UserID(3)
	reg := Region{MinX: 100, MinY: 100, MaxX: 600, MaxY: 600}
	want := oracleSnapPRQ(snap, frozen, issuer, reg, 5)
	got, err := snap.RangeQuery(issuer, reg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("post-churn snapshot PRQ %d results, oracle %d", len(got), len(want))
	}
}

// TestConcurrentQueriesDuringUpserts races queries directly against a
// writer applying continuous upserts. Results cannot be compared to a fixed
// oracle (each query sees some committed prefix of the update stream), so
// the test asserts what must hold in every state: queries never fail, PkNN
// results are sorted and duplicate-free, and every returned user is a
// member of the population. Run with -race to verify the locking.
func TestConcurrentQueriesDuringUpserts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db, _ := buildStressDB(t, rng)

	var wg sync.WaitGroup
	errs := make(chan error, stressReaders+1)

	// Writer: continuous position updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(99))
		for i := 0; i < 400; i++ {
			u := UserID(1 + wrng.Intn(stressUsers))
			if err := db.Upsert(randomObject(u, float64(i)/100, wrng)); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < stressReaders; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rg := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				issuer := UserID(1 + rg.Intn(stressUsers))
				x0, y0 := rg.Float64()*700, rg.Float64()*700
				reg := Region{MinX: x0, MinY: y0, MaxX: x0 + 300, MaxY: y0 + 300}
				res, err := db.RangeQuery(issuer, reg, 5)
				if err != nil {
					errs <- err
					return
				}
				seen := make(map[UserID]bool, len(res))
				for _, o := range res {
					if o.UID < 1 || o.UID > stressUsers {
						errs <- fmt.Errorf("PRQ returned unknown user %d", o.UID)
						return
					}
					if seen[o.UID] {
						errs <- fmt.Errorf("PRQ returned user %d twice", o.UID)
						return
					}
					seen[o.UID] = true
				}
				nn, err := db.NearestNeighbors(issuer, rg.Float64()*1000, rg.Float64()*1000, 5, 5)
				if err != nil {
					errs <- err
					return
				}
				for j := 1; j < len(nn); j++ {
					if nn[j-1].Dist > nn[j].Dist {
						errs <- fmt.Errorf("PkNN result not sorted: %v", nn)
						return
					}
				}
				db.IOStats() // exercise the stats read path under contention
			}
		}(int64(1000 + r))
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
