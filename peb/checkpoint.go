package peb

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/store"
)

// Checkpoint/restore: a file-backed DB (Options.Path) persists its index
// pages continuously; Checkpoint flushes them and writes two side files —
// <Path>.meta (JSON: tree linkage, sequence values) and <Path>.policies
// (the policy-store snapshot) — so OpenExisting can re-attach to the pages
// without reinsertion or re-encoding.

// metaFile is the JSON side-file format.
type metaFile struct {
	Version   int
	Root      uint32
	Height    int
	Size      int
	LeafCount int
	NextSV    float64
	SVs       []svRec
}

type svRec struct {
	UID UserID
	SV  uint64
}

const metaVersion = 1

// Checkpoint flushes all index pages to the backing file and writes the
// side files. Only file-backed DBs can checkpoint.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.fileDisk == nil {
		return fmt.Errorf("peb: checkpoint requires a file-backed DB (Options.Path)")
	}
	if err := db.tree.Pool().FlushAll(); err != nil {
		return err
	}
	snap := db.tree.Snapshot()
	mf := metaFile{
		Version:   metaVersion,
		Root:      uint32(snap.Tree.Root),
		Height:    snap.Tree.Height,
		Size:      snap.Tree.Size,
		LeafCount: snap.Tree.LeafCount,
		NextSV:    db.nextSV,
	}
	for uid, sv := range snap.SVs {
		mf.SVs = append(mf.SVs, svRec{UID: uid, SV: sv})
	}
	data, err := json.Marshal(mf)
	if err != nil {
		return err
	}
	if err := os.WriteFile(db.opts.Path+".meta", data, 0o644); err != nil {
		return err
	}
	pf, err := os.Create(db.opts.Path + ".policies")
	if err != nil {
		return err
	}
	if err := db.policies.Save(pf); err != nil {
		pf.Close()
		return err
	}
	return pf.Close()
}

// OpenExisting re-opens a DB from a previous Checkpoint. opts.Path must
// name the same backing file; the other options must match the original
// configuration (they are not persisted).
func OpenExisting(opts Options) (*DB, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	if opts.Path == "" {
		return nil, fmt.Errorf("%w: OpenExisting requires Options.Path", ErrBadOptions)
	}
	metaData, err := os.ReadFile(opts.Path + ".meta")
	if err != nil {
		return nil, fmt.Errorf("peb: read checkpoint meta: %w", err)
	}
	var mf metaFile
	if err := json.Unmarshal(metaData, &mf); err != nil {
		return nil, fmt.Errorf("peb: parse checkpoint meta: %w", err)
	}
	if mf.Version != metaVersion {
		return nil, fmt.Errorf("peb: checkpoint version %d not supported", mf.Version)
	}
	pf, err := os.Open(opts.Path + ".policies")
	if err != nil {
		return nil, fmt.Errorf("peb: read checkpoint policies: %w", err)
	}
	policies, err := policy.Load(pf)
	pf.Close()
	if err != nil {
		return nil, err
	}

	fd, err := store.OpenFileDisk(opts.Path)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	grid := cfg.Base.Grid
	grid.Side = opts.SpaceSide
	cfg.Base.Grid = grid
	cfg.Base.MaxSpeed = opts.MaxSpeed
	cfg.Base.DeltaTmu = opts.MaxUpdateInterval

	snap := core.Snapshot{
		Tree: btree.Meta{
			Root:      store.PageID(mf.Root),
			Height:    mf.Height,
			Size:      mf.Size,
			LeafCount: mf.LeafCount,
		},
		SVs: make(map[UserID]uint64, len(mf.SVs)),
	}
	for _, rec := range mf.SVs {
		snap.SVs[rec.UID] = rec.SV
	}
	tree, err := core.Open(cfg, store.NewBufferPool(fd, opts.BufferPages), policies, snap)
	if err != nil {
		fd.Close()
		return nil, err
	}

	db := &DB{
		opts:     opts,
		policies: policies,
		tree:     tree,
		view:     tree.View(),
		disk:     fd,
		fileDisk: fd,
		gen:      1,
		snaps:    make(map[*Snapshot]struct{}),
		users:    make(map[UserID]bool),
		nextSV:   mf.NextSV,
		encoded:  true,
	}
	for uid := range snap.SVs {
		db.users[uid] = true
	}
	if db.nextSV < 2 {
		db.nextSV = 2
	}
	return db, nil
}
