package peb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/store"
)

// Checkpoint/restore: a file-backed DB (Options.Path) persists its index
// pages continuously; Checkpoint makes a crash-consistent cut of that
// state and OpenExisting (or, with durability, Open) re-attaches to it
// without reinsertion or re-encoding.
//
// A checkpoint is three files, published in a strict order:
//
//	<Path>              the page file (flushed, then fsynced)
//	<Path>.policies.<n> the policy-store snapshot, written under a name
//	                    unique to this checkpoint (temp + fsync + rename)
//	<Path>.meta         JSON: tree linkage, sequence values, allocator
//	                    state, WAL horizon, and the *name* of the paired
//	                    policies file (temp + fsync + rename — the COMMIT
//	                    POINT)
//
// The meta rename is atomic and the policies file it names is never
// rewritten (each checkpoint writes a fresh one; the previous is deleted
// only after the new meta commits), so a crash anywhere in the sequence
// leaves either the old checkpoint — old meta, old policies file intact —
// or the new one, never a torn pairing of one era's policies with the
// other era's index.
//
// # The phased pipeline
//
// Checkpoint no longer stops the world. It runs as three explicit phases,
// and only the first and last hold the write lock:
//
//	cut     (write lock) — seal the tree so every page of the current
//	        image becomes immutable (later mutations copy-on-write);
//	        capture the root/meta/sequence-value snapshot, the policy
//	        store (clone-on-write pinned), the allocator state, the WAL
//	        horizon and byte mark, and the dirty-page list; switch the
//	        disk into deferred reclamation. No I/O.
//	build   (no write lock) — flush the captured dirty pages one at a
//	        time (the buffer pool re-locks per page, so concurrent
//	        fetches interleave), fsync the data file, run the
//	        reachability sweep over the sealed image via a btree.Reader,
//	        park the dead pages, write the .policies.<n> side file, and
//	        stage the .meta bytes durably at .meta.tmp. Commits and
//	        queries proceed against the live tree throughout.
//	publish (write lock) — rename .meta.tmp over .meta (the commit
//	        point), flip the parked pages into the allocator's free
//	        list, and delete the sealed WAL segments the cut's mark
//	        covers entirely (records committed during the build live in
//	        newer segments and are untouched — nothing is ever
//	        rewritten). The only I/O under the lock is the rename and
//	        the segment deletes — both O(1) in the index size.
//
// The cut image stays valid during the build because sealed pages are
// never rewritten in place, freed pages are parked rather than reused
// (store.FileDisk.DeferFrees), and retired pages are quarantined
// (DB.collectGarbage honors ckptBuilding). A crash in any phase before
// the meta rename leaves the previous checkpoint fully intact; after it,
// the new one — the same two-generals-free protocol as before, which the
// brute-force crash sweep (peb/crash_test.go) verifies fault point by
// fault point.
//
// Concurrent Checkpoint calls coalesce: a call that arrives while a
// pipeline is in flight waits for that pipeline and returns its result.
// Index rebuilds (EncodePolicies, LoadPolicies) and Close drain the
// pipeline first (DB.ckptMu). Options.AutoCheckpoint runs this same
// pipeline from a background maintainer when the write-ahead log crosses
// a size threshold.
//
// With a write-ahead log, the meta records the log sequence number of the
// last commit the checkpoint covers; recovery replays only newer records,
// and the publish phase deletes the log segments the cut covers entirely
// (pure space reclamation — correctness never depends on the removal
// happening, so partially covered records simply stay and replay as
// no-ops).

// metaFile is the JSON side-file format.
type metaFile struct {
	Version   int
	Root      uint32
	Height    int
	Size      int
	LeafCount int
	NextSV    float64
	SVs       []svRec

	// Version 2 fields. NumPages/Free persist the page allocator (v1
	// readers treated the whole file as allocated, leaking every page
	// freed before the checkpoint); WalSeq is the WAL horizon; Users and
	// Encoded restore the encoding population and its freshness; CkptSeq
	// numbers checkpoints and Policies names the policies snapshot
	// written by this one (empty: the legacy unversioned <Path>.policies).
	NumPages uint64   `json:",omitempty"`
	Free     []uint32 `json:",omitempty"`
	WalSeq   uint64   `json:",omitempty"`
	Users    []UserID `json:",omitempty"`
	Encoded  bool     `json:",omitempty"`
	CkptSeq  uint64   `json:",omitempty"`
	Policies string   `json:",omitempty"`
}

type svRec struct {
	UID UserID
	SV  uint64
}

// metaVersion is the current side-file version. Version 1 files (no
// allocator state, no WAL horizon) are still read.
const metaVersion = 2

// CheckpointStats reports checkpoint pipeline activity since Open. The
// Last* durations describe the most recent committed checkpoint; the
// Total* durations accumulate across all of them. Cut and Publish are the
// only phases that hold the write lock, so LastCut+LastPublish bounds the
// stall the last checkpoint imposed on commits and queries (under
// Options.StopTheWorldCheckpoints the build holds it too).
type CheckpointStats struct {
	// Checkpoints counts committed pipelines; Coalesced counts Checkpoint
	// calls satisfied by riding an already-in-flight pipeline instead of
	// running their own; AutoTriggered counts pipelines initiated by the
	// AutoCheckpoint maintainer.
	Checkpoints   uint64
	Coalesced     uint64
	AutoTriggered uint64

	LastCut, LastBuild, LastPublish    time.Duration
	TotalCut, TotalBuild, TotalPublish time.Duration

	// PagesFlushed counts dirty pages written by build phases;
	// PagesReclaimed counts dead pages returned to the allocator;
	// WALBytesTruncated counts log bytes dropped at publish. All
	// cumulative.
	PagesFlushed      uint64
	PagesReclaimed    uint64
	WALBytesTruncated uint64

	// FullBuilds and IncrementalBuilds split committed checkpoints by
	// liveness strategy: full builds walk the whole sealed image to find
	// dead pages, incremental builds reclaim the dead-extent ledger
	// tracked since the previous cut and walk nothing. PagesWalked counts
	// the pages full sweeps visited (cumulative; incremental builds add
	// zero) — the work the ledger saves.
	FullBuilds        uint64
	IncrementalBuilds uint64
	PagesWalked       uint64

	// WALSegmentsRemoved counts sealed log segments deleted at publish —
	// the segmented log's whole-file replacement for tail rotation
	// (cumulative).
	WALSegmentsRemoved uint64

	// WALTailBytesRewritten counted the bytes the pre-segmentation log
	// rotation copied to keep records committed during build phases. The
	// segmented log never rewrites a byte — publish deletes whole sealed
	// segments — so this is now always 0. The field survives for
	// compatibility, and the pipeline regression tests pin it to zero.
	WALTailBytesRewritten uint64
}

// CheckpointStats returns the pipeline's activity counters since Open.
func (db *DB) CheckpointStats() CheckpointStats {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return db.ckptStats
}

// ckptRun is one in-flight pipeline, shared by coalesced Checkpoint calls.
// cutDone (guarded by DB.ckptCoalMu) flips once the pipeline's cut has
// captured its image: only callers that arrive BEFORE the cut may
// coalesce, because only their pre-call commits are inside the image —
// a later caller riding along would be told "durable" about commits the
// pipeline never saw (fatal without a fsynced WAL to cover them).
type ckptRun struct {
	done    chan struct{}
	cutDone bool
	err     error
}

// ckptImage is everything the build and publish phases need, captured
// inside the cut critical section so no later phase reads mutable DB
// state without the lock.
type ckptImage struct {
	seq      uint64
	reader   *btree.Reader // the sealed cut image
	pool     *store.BufferPool
	fd       *store.FileDisk
	dirty    []store.PageID
	policies *policy.Store
	snap     core.Snapshot
	users    []UserID
	nextSV   float64
	encoded  bool
	walSeq   uint64
	walMark  store.SegPos
	numPages uint64
	free     []store.PageID        // free ∪ parked ids at cut
	alive    []store.PageID        // allocated ids at cut
	keep     map[store.PageID]bool // snapshot-pinned retired pages
	// incremental selects the build's liveness strategy: true means dead
	// was pre-filled at the cut from the dead-extent ledger and the build
	// skips the reachability sweep; false means the build computes dead by
	// walking the sealed image.
	incremental bool
	dead        []store.PageID // pre-filled at cut (incremental) or by build (full)
	walked      int            // pages visited by the build's sweep (0 when incremental)
	flushed     int            // filled by build
	polName     string         // filled by build
}

// Checkpoint publishes a crash-consistent cut of the database to its
// backing files. Only file-backed DBs can checkpoint. On return the
// checkpoint is durable: a crash at any later point recovers at least
// this state (plus, with durability enabled, every commit the WAL holds).
//
// Checkpoint runs as a three-phase pipeline — cut, build, publish — and
// holds the write lock only for the cut and publish moments, so commits
// and queries keep flowing while the bulk of the work (page flushing,
// fsync, the reachability sweep, side-file writes) happens; commits made
// during the build are simply not covered by this checkpoint and stay in
// the write-ahead log. A Checkpoint call that arrives while another is in
// flight but has not yet taken its cut coalesces with it — it waits for
// that pipeline and returns its result, which covers every commit the
// caller made before calling. A call that arrives after the cut waits the
// pipeline out and runs its own, so the durability promise above holds
// even without a write-ahead log.
//
// Checkpoint is also the storage reclamation point: pages that became
// unreachable since the last checkpoint (superseded by copy-on-write,
// abandoned by an index rebuild) and are not pinned by an open Snapshot
// are returned to the allocator, and the covered prefix of the
// write-ahead log is truncated.
func (db *DB) Checkpoint() error {
	var run *ckptRun
	for {
		db.ckptCoalMu.Lock()
		inflight := db.ckptInflight
		if inflight == nil {
			run = &ckptRun{done: make(chan struct{})}
			db.ckptInflight = run
			db.ckptCoalMu.Unlock()
			break
		}
		if !inflight.cutDone {
			// The in-flight pipeline will cut after this call arrived, so
			// its image covers our caller's commits: ride it.
			db.ckptCoalMu.Unlock()
			<-inflight.done
			db.statsMu.Lock()
			db.ckptStats.Coalesced++
			db.statsMu.Unlock()
			return inflight.err
		}
		// Cut already taken: its image may predate our caller's commits.
		// Wait it out and run a pipeline of our own.
		db.ckptCoalMu.Unlock()
		<-inflight.done
	}

	run.err = db.runCheckpoint(run)

	db.ckptCoalMu.Lock()
	db.ckptInflight = nil
	db.ckptCoalMu.Unlock()
	close(run.done)
	return run.err
}

// runCheckpoint drives one pipeline: cut under the write lock, build
// without it (unless Options.StopTheWorldCheckpoints), publish under it
// again. ckptMu is held for the whole pipeline, serializing it against
// other pipelines, index rebuilds, and Close. run is this pipeline's
// coalescing record: its cutDone flag flips the moment the image is
// captured, after which new Checkpoint calls must not ride this run.
func (db *DB) runCheckpoint(run *ckptRun) error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	stw := db.opts.StopTheWorldCheckpoints

	cutStart := time.Now()
	db.lockExcludingPrepared()
	img, err := db.ckptCut()
	db.ckptCoalMu.Lock()
	run.cutDone = true
	db.ckptCoalMu.Unlock()
	if err != nil {
		db.mu.Unlock()
		return err
	}
	cutDur := time.Since(cutStart)
	if !stw {
		db.mu.Unlock()
	}

	if !stw {
		db.hook("build")
	}
	buildStart := time.Now()
	buildErr := db.ckptBuild(img)
	buildDur := time.Since(buildStart)

	if !stw {
		db.hook("publish")
		db.mu.Lock()
	}
	publishStart := time.Now()
	if buildErr != nil {
		db.ckptAbortLocked(img)
		db.mu.Unlock()
		return buildErr
	}
	committed, walBytes, walSegs, err := db.ckptPublishLocked(img)
	if !committed {
		db.ckptAbortLocked(img)
		db.mu.Unlock()
		return err
	}
	publishDur := time.Since(publishStart)
	db.mu.Unlock()

	db.statsMu.Lock()
	st := &db.ckptStats
	st.Checkpoints++
	st.LastCut, st.LastBuild, st.LastPublish = cutDur, buildDur, publishDur
	st.TotalCut += cutDur
	st.TotalBuild += buildDur
	st.TotalPublish += publishDur
	st.PagesFlushed += uint64(img.flushed)
	st.PagesReclaimed += uint64(len(img.dead))
	st.WALBytesTruncated += uint64(walBytes)
	st.WALSegmentsRemoved += uint64(walSegs)
	if img.incremental {
		st.IncrementalBuilds++
	} else {
		st.FullBuilds++
		st.PagesWalked += uint64(img.walked)
	}
	db.statsMu.Unlock()

	db.met.ckptCut.ObserveDuration(cutDur)
	db.met.ckptBuild.ObserveDuration(buildDur)
	db.met.ckptPublish.ObserveDuration(publishDur)
	db.events.Record("checkpoint", "checkpoint committed",
		"cut", cutDur, "build", buildDur, "publish", publishDur,
		"flushed", img.flushed, "reclaimed", len(img.dead),
		"incremental", img.incremental,
		"wal_bytes_truncated", walBytes, "wal_segments_removed", walSegs)
	return err
}

// lockExcludingPrepared takes the write lock at a moment when no prepared
// cross-shard transaction is pending. A checkpoint cut must not land
// between a transaction's prepared record and its commit/abort marker: the
// cut image would contain the applied-but-undecided mutations while log
// truncation dropped the prepared record, leaving a later abort nothing to
// compensate against. Holding prepMu from the last pendingPrepared check
// until mu is acquired closes the race with a prepare that begins in
// between — the prepare's own prepMu acquisition serializes behind this
// lock, so its record lands after the cut's WAL mark and survives
// truncation intact. Lock order: prepMu strictly before mu.
func (db *DB) lockExcludingPrepared() {
	db.prepMu.Lock()
	for db.pendingPrepared > 0 {
		db.prepCond.Wait()
	}
	db.mu.Lock()
	db.prepMu.Unlock()
}

// hook invokes the test hook, if any, outside any DB lock. Under
// StopTheWorldCheckpoints the pipeline holds the write lock across the
// build, so hooks are not invoked at all there (a gating hook would
// deadlock the DB).
func (db *DB) hook(phase string) {
	if db.ckptHook != nil {
		db.ckptHook(phase)
	}
}

// ckptCut is the pipeline's first critical section (caller holds the
// write lock): freeze the image and capture everything the lock-free
// build needs. No file I/O happens here.
func (db *DB) ckptCut() (*ckptImage, error) {
	if db.closed {
		return nil, ErrClosed
	}
	if db.fileDisk == nil {
		return nil, fmt.Errorf("peb: checkpoint requires a file-backed DB (Options.Path)")
	}

	// Account pending retirements, then seal: every page reachable right
	// now becomes immutable, so the capture below stays bit-exact no
	// matter what commits land during the build.
	if pages := db.tree.TakeRetired(); len(pages) > 0 {
		db.garbage = append(db.garbage, gcBatch{ver: db.tree.Version(), pages: pages})
	}
	db.tree.Seal()

	// Liveness inputs: a page survives if the cut image reaches it (the
	// build computes that part) or an open snapshot still pins it. The
	// snapshot-pinned batches stay in the garbage list; the rest are
	// dropped here — their pages stay allocated until the build proves
	// them dead and the publish reclaims them.
	minVer, live := db.minLiveVersion()
	keep := make(map[store.PageID]bool)
	var kept []gcBatch
	for _, b := range db.garbage {
		if live && b.ver >= minVer {
			kept = append(kept, b)
			for _, id := range b.pages {
				keep[id] = true
			}
		} else {
			// Dropped unpinned batches are dead extents, same as the
			// quarantine drops in collectGarbage: record them so an
			// incremental build below can reclaim them without a sweep.
			db.ckptDead = append(db.ckptDead, b.pages...)
		}
	}
	db.garbage = kept

	img := &ckptImage{
		seq:      db.ckptSeq + 1,
		reader:   db.tree.Reader(),
		pool:     db.tree.Pool(),
		fd:       db.fileDisk,
		policies: db.policies,
		snap:     db.tree.Snapshot(),
		nextSV:   db.nextSV,
		encoded:  db.encoded,
		walSeq:   db.walSeq,
		numPages: db.fileDisk.NumPages(),
		// Parked ids from an earlier aborted pipeline are unreachable and
		// unallocated: free pages of the new image.
		free:  append(db.fileDisk.FreeList(), db.fileDisk.PendingList()...),
		alive: db.fileDisk.AliveList(),
		keep:  keep,
	}

	// Build-mode decision. The dead-extent ledger (db.ckptDead, fed by the
	// quarantine branch of collectGarbage and by the drop loop above) is
	// complete exactly when the tree has been sealed continuously since a
	// committed checkpoint of this incarnation — every page that died since
	// that cut passed through quarantine once — and nothing flagged it
	// incomplete (recovery, aborted pipeline). Then the build can reclaim
	// precisely the ledger and skip the full reachability sweep. In full
	// mode the captured ledger is DISCARDED, not merged: the sweep
	// rediscovers every unpinned dead page itself, and handing it the same
	// ids twice would double-free them. Either way the ledger restarts
	// empty: pages dying from here on belong to the next checkpoint.
	if db.ckptSealed && !db.ckptFullNeeded {
		img.incremental = true
		for _, id := range db.ckptDead {
			// A dead extent can never be snapshot-pinned (only unpinned
			// batches enter the ledger, and snapshots pin versions, not
			// retired pages) — but freeing a pinned page would corrupt the
			// snapshot, so filter defensively.
			if !keep[id] {
				img.dead = append(img.dead, id)
			}
		}
	}
	db.ckptDead = nil
	img.users = make([]UserID, 0, len(db.users))
	for uid := range db.users {
		img.users = append(img.users, uid)
	}
	sort.Slice(img.users, func(i, j int) bool { return img.users[i] < img.users[j] })
	if db.wal != nil {
		img.walMark = db.wal.Mark()
	}

	// From here until publish/abort: freed pages park instead of becoming
	// reallocatable, retired pages are quarantined (collectGarbage checks
	// ckptBuilding), and the policy store is clone-on-write pinned so the
	// build can serialize it lock-free.
	db.fileDisk.DeferFrees(true)
	db.policiesPinned = true
	db.ckptBuilding = true

	// The dirty list is exact at this instant and can only shrink: sealed
	// pages are never redirtied, and evictions write pages back.
	img.dirty = img.pool.DirtyPages()
	return img, nil
}

// ckptBuild is the pipeline's heavy phase, run WITHOUT the write lock
// (commits and queries proceed concurrently): persist the page image,
// compute liveness against the sealed cut, park the dead pages, and write
// every side file except the final meta rename.
func (db *DB) ckptBuild(img *ckptImage) error {
	flushed, err := img.pool.FlushPages(img.dirty)
	if err != nil {
		return err
	}
	img.flushed = flushed
	if err := img.fd.Sync(); err != nil {
		return err
	}

	// Liveness. Incremental mode: the cut pre-filled img.dead from the
	// dead-extent ledger — exactly the pages that died since the previous
	// committed image — so no walk is needed. Full mode: walk the sealed
	// image; anything allocated at the cut that the image does not reach
	// and no snapshot pins is dead.
	if !img.incremental {
		reach, err := img.reader.WalkPages(store.PageID(img.numPages))
		if err != nil {
			return err
		}
		img.walked = len(reach)
		reachable := make(map[store.PageID]bool, len(reach))
		for _, id := range reach {
			reachable[id] = true
		}
		for _, id := range img.alive {
			if !reachable[id] && !img.keep[id] {
				img.dead = append(img.dead, id)
			}
		}
	}
	// Park the dead pages now: Release evicts stale frames from the
	// buffer pool as well as freeing the ids, so a future reallocation
	// cannot collide with a cached ghost. DeferFrees keeps them
	// unreallocatable until the publish — the previous checkpoint may
	// still reference them as live.
	for _, id := range img.dead {
		if err := img.pool.Release(id); err != nil {
			return fmt.Errorf("peb: checkpoint reclaim page %d: %w", id, err)
		}
	}

	// Side files: the policies snapshot under its checkpoint-unique name,
	// then the meta staged (written + fsynced, NOT renamed) — publishing
	// the commit point is the publish phase's one job.
	img.polName = fmt.Sprintf("%s.policies.%d", db.opts.Path, img.seq)
	var buf bytes.Buffer
	if err := img.policies.Save(&buf); err != nil {
		return fmt.Errorf("peb: checkpoint policies: %w", err)
	}
	if err := store.WriteFileAtomic(db.opts.FS, img.polName, buf.Bytes()); err != nil {
		return fmt.Errorf("peb: checkpoint policies: %w", err)
	}
	metaData, err := img.metaBytes()
	if err != nil {
		return err
	}
	if err := store.StageFile(db.opts.FS, db.opts.Path+".meta", metaData); err != nil {
		return fmt.Errorf("peb: checkpoint meta: %w", err)
	}
	return nil
}

// metaBytes marshals the checkpoint metadata from the cut capture plus
// the build's liveness result.
func (img *ckptImage) metaBytes() ([]byte, error) {
	mf := metaFile{
		Version:   metaVersion,
		Root:      uint32(img.snap.Tree.Root),
		Height:    img.snap.Tree.Height,
		Size:      img.snap.Tree.Size,
		LeafCount: img.snap.Tree.LeafCount,
		NextSV:    img.nextSV,
		NumPages:  img.numPages,
		WalSeq:    img.walSeq,
		Encoded:   img.encoded,
		CkptSeq:   img.seq,
		Policies:  img.polName,
		Users:     img.users,
	}
	for uid, sv := range img.snap.SVs {
		mf.SVs = append(mf.SVs, svRec{UID: uid, SV: sv})
	}
	sort.Slice(mf.SVs, func(i, j int) bool { return mf.SVs[i].UID < mf.SVs[j].UID })
	free := make([]store.PageID, 0, len(img.free)+len(img.dead))
	free = append(append(free, img.free...), img.dead...)
	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	for _, id := range free {
		mf.Free = append(mf.Free, uint32(id))
	}
	return json.Marshal(mf)
}

// ckptPublishLocked is the pipeline's final critical section (caller
// holds the write lock): rename the staged meta — the atomic commit point
// — then make the reclaimed pages reallocatable and delete the sealed WAL
// segments the cut covers entirely (held down to any replica's retention
// floor). committed reports whether the commit point landed; on
// committed=true with err != nil the checkpoint succeeded but segment
// reclamation did not — the segments linger harmlessly until the next
// publish retries.
func (db *DB) ckptPublishLocked(img *ckptImage) (committed bool, walBytes int64, walSegs int, err error) {
	if db.closed {
		// Unreachable — Close drains the pipeline via ckptMu — but never
		// publish into a torn-down DB.
		return false, 0, 0, ErrClosed
	}
	if err := store.CommitStagedFile(db.opts.FS, db.opts.Path+".meta"); err != nil {
		return false, 0, 0, fmt.Errorf("peb: checkpoint meta: %w", err)
	}

	// Committed. The tree has been sealed since the cut; from now on the
	// image is the recovery base, so the permanent-quarantine regime
	// (ckptSealed) takes over from the build's temporary one.
	db.ckptSealed = true
	db.ckptBuilding = false
	db.ckptSeq = img.seq
	db.ckptWalSeq = img.walSeq
	// The committed image is now the baseline the dead-extent ledger is
	// relative to, so incremental builds are sound again until something
	// (recovery, abort, rebuild) breaks the tracking chain.
	db.ckptFullNeeded = false
	if db.prevPolicies != "" && db.prevPolicies != img.polName {
		// Best effort: the superseded snapshot is dead weight. A crash
		// before this Remove orphans it; OpenExisting sweeps orphans on
		// the next recovery.
		_ = db.opts.FS.Remove(db.prevPolicies)
	}
	db.prevPolicies = img.polName

	// Reclamation is safe now: the parked pages (the build's dead set,
	// plus anything freed mid-build) become reallocatable.
	db.fileDisk.FlushPending()
	db.fileDisk.DeferFrees(false)

	if db.wal != nil {
		// Attached replicas pin the log at their tail cursor: drop only
		// segments every reader — this checkpoint AND every replica — is
		// past. Segment removal is pure space reclamation (recovery skips
		// covered records by sequence number), so a failure neither fails
		// the checkpoint nor disables the log: the segments linger and the
		// next publish retries.
		n, segs, terr := db.wal.DropThrough(db.retentionFloor(img.walMark))
		walBytes, walSegs = n, segs
		if terr != nil {
			return true, walBytes, walSegs, fmt.Errorf("peb: checkpoint committed, but dropping covered wal segments failed (they linger until the next checkpoint): %w", terr)
		}
	} else if ok, _ := store.SegmentedWALExists(db.opts.FS, db.opts.Path+".wal"); ok {
		// Non-durable DB over a leftover log from a durable run: this
		// checkpoint's WalSeq covers every replayed record, so the log is
		// dead weight — drop it (best effort).
		_ = store.RemoveSegmentedWAL(db.opts.FS, db.opts.Path+".wal")
	}
	return true, walBytes, walSegs, nil
}

// retentionFloor lowers a checkpoint's drop mark to the lowest cursor of
// any attached replica, so sealed segments stay readable until every
// replica has tailed past them.
func (db *DB) retentionFloor(mark store.SegPos) store.SegPos {
	db.repMu.Lock()
	defer db.repMu.Unlock()
	for _, floor := range db.repFloors {
		if floor.Less(mark) {
			mark = floor
		}
	}
	return mark
}

// ckptAbortLocked unwinds a failed pipeline (caller holds the write
// lock). The previous checkpoint is untouched; the pages parked during
// the build stay parked — the old image may reference the dead ones — and
// are accounted as free by the next successful checkpoint, which also
// makes them reallocatable. The tree stays sealed; normal garbage
// collection unseals it once nothing pins it (when no checkpoint exists).
func (db *DB) ckptAbortLocked(img *ckptImage) {
	db.ckptBuilding = false
	db.fileDisk.DeferFrees(false)
	// The cut consumed the dead-extent ledger this pipeline was going to
	// reclaim (or, in full mode, discarded it for the sweep that now never
	// ran); either way the ledger no longer covers those pages, so the
	// next build must fall back to a full sweep to find them.
	db.ckptFullNeeded = true
	// Best effort: drop side files the failed build may have left. The
	// staged meta was never renamed and the policies file is referenced
	// by no meta, so both are inert either way.
	_ = db.opts.FS.Remove(db.opts.Path + ".meta.tmp")
	if img.polName != "" {
		_ = db.opts.FS.Remove(img.polName)
	}
}

// startAutoCheckpoint launches the background maintainer when the options
// ask for one (idempotent; no-op without thresholds or without a WAL).
func (db *DB) startAutoCheckpoint() {
	if !db.opts.AutoCheckpoint.enabled() || db.wal == nil || db.stopC != nil {
		return
	}
	db.autoC = make(chan struct{}, 1)
	db.stopC = make(chan struct{})
	db.maintWG.Add(1)
	go db.autoCheckpointLoop()
}

// stopAutoCheckpoint ends the maintainer and waits for it to exit
// (idempotent; called by Close before draining the pipeline).
func (db *DB) stopAutoCheckpoint() {
	if db.stopC == nil {
		return
	}
	db.stopOnce.Do(func() { close(db.stopC) })
	db.maintWG.Wait()
}

// autoCheckpointLoop is the maintainer: each trigger from the commit path
// re-checks the thresholds (the signal may be stale — a coalesced or
// just-finished checkpoint empties the log) and runs one pipeline.
// Failures are not fatal; the next threshold crossing retries.
func (db *DB) autoCheckpointLoop() {
	defer db.maintWG.Done()
	for {
		select {
		case <-db.stopC:
			return
		case <-db.autoC:
			if !db.autoCheckpointDue() {
				continue
			}
			db.statsMu.Lock()
			db.ckptStats.AutoTriggered++
			db.statsMu.Unlock()
			if err := db.Checkpoint(); errors.Is(err, ErrClosed) {
				return
			}
		}
	}
}

// autoCheckpointDue re-evaluates the trigger thresholds.
func (db *DB) autoCheckpointDue() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed || db.wal == nil {
		return false
	}
	p := db.opts.AutoCheckpoint
	if p.WALBytes > 0 && db.wal.Size() >= p.WALBytes {
		return true
	}
	if p.WALRecords > 0 && db.walSeq-db.ckptWalSeq >= p.WALRecords {
		return true
	}
	return false
}

// maybeAutoCheckpoint nudges the maintainer when a commit pushes the WAL
// over a threshold. Caller holds the write lock; the send never blocks.
func (db *DB) maybeAutoCheckpoint() {
	if db.autoC == nil || db.wal == nil {
		return
	}
	p := db.opts.AutoCheckpoint
	due := (p.WALBytes > 0 && db.wal.Size() >= p.WALBytes) ||
		(p.WALRecords > 0 && db.walSeq-db.ckptWalSeq >= p.WALRecords)
	if !due {
		return
	}
	select {
	case db.autoC <- struct{}{}:
	default:
	}
}

// corruptf wraps a violation as an ErrCorruptCheckpoint.
func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrCorruptCheckpoint, fmt.Sprintf(format, args...))
}

// OpenExisting re-opens a DB from its on-disk state: the last Checkpoint
// plus — when a write-ahead log is present — every commit logged after it,
// so after a crash the DB contains exactly the committed prefix of its
// history. opts.Path must name the same backing file; the other options
// must match the original configuration (they are not persisted).
//
// Invalid on-disk state (truncated files, unparsable metadata, index
// structure that does not match the page file) is reported as an error
// wrapping ErrCorruptCheckpoint rather than a panic.
//
// A log without any checkpoint (the DB crashed before its first
// Checkpoint) recovers too: replay starts from an empty index.
func OpenExisting(opts Options) (*DB, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	if opts.Path == "" {
		return nil, fmt.Errorf("%w: OpenExisting requires Options.Path", ErrBadOptions)
	}

	metaData, err := opts.FS.ReadFile(opts.Path + ".meta")
	var db *DB
	switch {
	case err == nil:
		db, err = openFromCheckpoint(opts, metaData)
	case errors.Is(err, fs.ErrNotExist):
		hasWAL, werr := store.SegmentedWALExists(opts.FS, opts.Path+".wal")
		if werr != nil {
			return nil, fmt.Errorf("peb: probe wal: %w", werr)
		}
		if !hasWAL {
			return nil, fmt.Errorf("peb: read checkpoint meta: %w", err)
		}
		db, err = openFromWALOnly(opts)
	default:
		return nil, fmt.Errorf("peb: read checkpoint meta: %w", err)
	}
	if err != nil {
		return nil, err
	}
	// Replay is complete: installing the hook now guarantees it observes
	// only post-recovery commits.
	if opts.OnCommit != nil {
		db.AddCommitHook(opts.OnCommit)
	}
	db.startAutoCheckpoint()
	return db, nil
}

// sweepCheckpointOrphans removes side files a crash can leave behind in
// <Path>'s namespace: staging files (.meta.tmp, .policies.<n>.tmp) that
// were never renamed, and superseded or never-committed .policies.<n>
// snapshots other than livePol (empty livePol means no policies file is
// live). Best effort — a failed sweep only leaks files, so errors are
// swallowed; the next recovery retries.
func sweepCheckpointOrphans(opts Options, livePol string) {
	names, err := opts.FS.ListDir(filepath.Dir(opts.Path))
	if err != nil {
		return
	}
	metaTmp := opts.Path + ".meta.tmp"
	polPrefix := opts.Path + ".policies"
	for _, name := range names {
		if name == livePol {
			continue
		}
		switch {
		case name == metaTmp:
			_ = opts.FS.Remove(name)
		case name == polPrefix, strings.HasPrefix(name, polPrefix+"."):
			// The legacy unversioned snapshot (when superseded), any
			// other checkpoint's .policies.<n>, and any .tmp staging
			// leftover.
			_ = opts.FS.Remove(name)
		}
	}
}

// openFromCheckpoint re-attaches to a checkpoint and replays any log tail.
func openFromCheckpoint(opts Options, metaData []byte) (*DB, error) {
	var mf metaFile
	if err := json.Unmarshal(metaData, &mf); err != nil {
		return nil, corruptf("parse checkpoint meta: %v", err)
	}
	if mf.Version < 1 || mf.Version > metaVersion {
		return nil, fmt.Errorf("peb: checkpoint version %d not supported", mf.Version)
	}

	polName := mf.Policies
	if polName == "" {
		polName = opts.Path + ".policies" // legacy unversioned snapshot
	} else {
		// Older metas recorded the policies path as written at checkpoint
		// time; side files always live beside the index, so resolve against
		// the index's directory to keep a DB directory relocatable.
		polName = filepath.Join(filepath.Dir(opts.Path), filepath.Base(polName))
	}
	pf, err := opts.FS.ReadFile(polName)
	if err != nil {
		return nil, corruptf("read checkpoint policies: %v", err)
	}
	policies, err := policy.Load(bytes.NewReader(pf))
	if err != nil {
		return nil, corruptf("parse checkpoint policies: %v", err)
	}

	fd, err := store.OpenFileDiskOn(opts.FS, opts.Path)
	if err != nil {
		return nil, err
	}
	// Restore (v2) or derive (v1) the allocator state, and validate the
	// meta's linkage against it before touching any page.
	numPages := fd.NumPages() // v1: every file page allocated
	if mf.Version >= 2 {
		free := make([]store.PageID, 0, len(mf.Free))
		for _, id := range mf.Free {
			free = append(free, store.PageID(id))
		}
		if err := fd.Reconcile(mf.NumPages, free); err != nil {
			fd.Close()
			return nil, corruptf("%v", err)
		}
		numPages = mf.NumPages
	}
	if mf.Root == 0 || uint64(mf.Root) > numPages {
		fd.Close()
		return nil, corruptf("root page %d outside file of %d pages", mf.Root, numPages)
	}
	if mf.Height < 1 || mf.Size < 0 || mf.LeafCount < 1 {
		fd.Close()
		return nil, corruptf("implausible tree shape: height %d, size %d, %d leaves",
			mf.Height, mf.Size, mf.LeafCount)
	}

	snap := core.Snapshot{
		Tree: btree.Meta{
			Root:      store.PageID(mf.Root),
			Height:    mf.Height,
			Size:      mf.Size,
			LeafCount: mf.LeafCount,
		},
		SVs: make(map[UserID]uint64, len(mf.SVs)),
	}
	for _, rec := range mf.SVs {
		snap.SVs[rec.UID] = rec.SV
	}
	tree, err := core.OpenChecked(opts.coreConfig(), store.NewBufferPool(fd, opts.BufferPages),
		policies, snap, store.PageID(numPages))
	if err != nil {
		fd.Close()
		return nil, corruptf("%v", err)
	}

	db := &DB{
		opts:         opts,
		policies:     policies,
		tree:         tree,
		view:         tree.View(),
		disk:         fd,
		fileDisk:     fd,
		gen:          1,
		snaps:        make(map[*Snapshot]struct{}),
		users:        make(map[UserID]bool),
		nextSV:       mf.NextSV,
		walSeq:       mf.WalSeq,
		ckptWalSeq:   mf.WalSeq,
		ckptSeq:      mf.CkptSeq,
		prevPolicies: polName,
	}
	db.prepCond = sync.NewCond(&db.prepMu)
	db.initObs()
	db.view = tree.ViewIO(db.qio)
	if mf.Version >= 2 {
		db.encoded = mf.Encoded
		for _, uid := range mf.Users {
			db.users[uid] = true
		}
	} else {
		db.encoded = true
	}
	for uid := range snap.SVs {
		db.users[uid] = true
	}
	policies.ForEachGrant(func(owner, viewer policy.UserID, _ policy.Policy) bool {
		db.users[UserID(owner)] = true
		db.users[UserID(viewer)] = true
		return true
	})
	if db.nextSV < 2 {
		db.nextSV = 2
	}
	// The attached image IS a checkpoint: seal immediately so nothing —
	// including WAL replay below — overwrites its pages in place.
	db.ckptSealed = true
	db.tree.Seal()
	// The crashed run's dead-extent ledger is gone, and pages its open
	// snapshots pinned may sit allocated-but-unreachable with no tracker:
	// the first checkpoint after recovery must re-derive liveness with a
	// full sweep.
	db.ckptFullNeeded = true
	// Startup housekeeping: sweep side files a crash orphaned — staging
	// leftovers and policies snapshots other than the committed one.
	sweepCheckpointOrphans(opts, polName)
	if err := db.attachWAL(mf.WalSeq); err != nil {
		db.fileDisk.Close()
		return nil, err
	}
	return db, nil
}

// openFromWALOnly recovers a durable DB that crashed before its first
// checkpoint: the page file holds no committed image, so it is discarded
// first and the log is replayed from an empty index.
func openFromWALOnly(opts Options) (*DB, error) {
	f, err := opts.FS.OpenFile(opts.Path)
	if err != nil {
		return nil, fmt.Errorf("peb: discard uncheckpointed pages: %w", err)
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("peb: discard uncheckpointed pages: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("peb: discard uncheckpointed pages: %w", err)
	}
	// No checkpoint ever committed, so any policies or meta staging file
	// in the namespace is an orphan of a checkpoint that never published.
	sweepCheckpointOrphans(opts, "")

	fresh := opts
	// attachWAL below opens the log itself (openFresh would refuse the
	// non-empty one).
	fresh.Durability = DurabilityNone
	db, err := openFresh(fresh)
	if err != nil {
		return nil, err
	}
	db.opts = opts
	if err := db.attachWAL(0); err != nil {
		db.fileDisk.Close()
		return nil, err
	}
	return db, nil
}

// attachWAL opens the log, replays every record newer than afterSeq, and —
// when the DB is durable — installs the log for subsequent commits. A
// non-durable reopen replays too (committed data must not be dropped) and
// then leaves the log in place: the replayed state exists only in memory,
// so the old checkpoint plus the old log remain its sole durable
// description. The log stays inert — every record's Seq is ≤ the restored
// walSeq, so a future Checkpoint's WalSeq covers it (Checkpoint then
// removes it) and a re-recovery before that reproduces this same state.
func (db *DB) attachWAL(afterSeq uint64) error {
	hasWAL, err := store.SegmentedWALExists(db.opts.FS, db.opts.Path+".wal")
	if err != nil {
		return fmt.Errorf("peb: probe wal: %w", err)
	}
	if !hasWAL && db.opts.Durability == DurabilityNone {
		return nil
	}
	// Opening migrates a legacy single-file log (pre-segmentation era) to
	// segment 000001 in place, then replays segments in order.
	wal, records, err := store.OpenSegmentedWAL(db.opts.FS, db.opts.Path+".wal",
		db.opts.Durability.walPolicy(), db.opts.WALSegmentBytes)
	if err != nil {
		return err
	}
	// Decode everything up front: a prepared record's fate may live later
	// in the log than the record itself.
	recs := make([]walRecord, 0, len(records))
	for i, payload := range records {
		rec, err := unmarshalRecord(payload)
		if err != nil {
			wal.Close()
			return corruptf("wal record %d: %v", i, err)
		}
		recs = append(recs, rec)
	}
	// Pass 1: resolve cross-shard transactions. Markers in this log decide
	// locally; a markerless prepared record (the process died between this
	// participant's prepare and the coordinator's marker) is decided by the
	// coordinator's resolver — absent one, aborted. Every id seen raises
	// the watermark so coordinators never recycle it.
	outcome := make(map[uint64]uint8)
	for i := range recs {
		if recs[i].TxnID > db.maxTxn {
			db.maxTxn = recs[i].TxnID
		}
		if recs[i].TxnState == txnCommitted || recs[i].TxnState == txnAborted {
			outcome[recs[i].TxnID] = recs[i].TxnState
		}
	}
	for i := range recs {
		if recs[i].TxnState != txnPrepared {
			continue
		}
		if _, ok := outcome[recs[i].TxnID]; ok {
			continue
		}
		if db.opts.TxnResolve != nil && db.opts.TxnResolve(recs[i].TxnID) {
			outcome[recs[i].TxnID] = txnCommitted
		} else {
			outcome[recs[i].TxnID] = txnAborted
		}
	}
	// Pass 2: sequential replay. An aborted prepared record is skipped
	// outright — its live abort restored the pre-transaction state exactly,
	// so the log minus the record replays to the same history; its marker
	// (when present) carries the restored sequence-value cursor.
	replayed := 0
	for i := range recs {
		rec := recs[i]
		if rec.Seq <= afterSeq {
			continue // covered by the checkpoint
		}
		if rec.TxnState == txnPrepared && outcome[rec.TxnID] != txnCommitted {
			db.walSeq = rec.Seq // the sequence number stays consumed
			continue
		}
		if err := db.replayRecord(rec); err != nil {
			wal.Close()
			return fmt.Errorf("peb: replay wal record %d: %w", i, err)
		}
		replayed++
	}
	db.refreshView()
	db.collectGarbage()
	db.events.Record("recovery", "write-ahead log replayed",
		"records", len(recs), "replayed", replayed, "after_seq", afterSeq,
		"resolved_txns", len(outcome), "commit_seq", db.walSeq)
	if db.opts.Durability == DurabilityNone {
		return wal.Close()
	}
	db.wal = wal
	db.observeWAL()
	return nil
}

// coreConfig derives the index configuration from the options.
func (o Options) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	grid := cfg.Base.Grid
	grid.Side = o.SpaceSide
	cfg.Base.Grid = grid
	cfg.Base.MaxSpeed = o.MaxSpeed
	cfg.Base.DeltaTmu = o.MaxUpdateInterval
	return cfg
}
