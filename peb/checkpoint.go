package peb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"sort"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/store"
)

// Checkpoint/restore: a file-backed DB (Options.Path) persists its index
// pages continuously; Checkpoint makes a crash-consistent cut of that
// state and OpenExisting (or, with durability, Open) re-attaches to it
// without reinsertion or re-encoding.
//
// A checkpoint is three files, published in a strict order:
//
//	<Path>              the page file (flushed, then fsynced)
//	<Path>.policies.<n> the policy-store snapshot, written under a name
//	                    unique to this checkpoint (temp + fsync + rename)
//	<Path>.meta         JSON: tree linkage, sequence values, allocator
//	                    state, WAL horizon, and the *name* of the paired
//	                    policies file (temp + fsync + rename — the COMMIT
//	                    POINT)
//
// The meta rename is atomic and the policies file it names is never
// rewritten (each checkpoint writes a fresh one; the previous is deleted
// only after the new meta commits), so a crash anywhere in the sequence
// leaves either the old checkpoint — old meta, old policies file intact —
// or the new one, never a torn pairing of one era's policies with the
// other era's index. The page image both metas describe stays valid
// because the tree is sealed after each checkpoint: later mutations
// copy-on-write fresh pages and checkpointed pages are quarantined from
// reuse until the *next* checkpoint commits (see DB.ckptSealed).
//
// With a write-ahead log, the meta records the log sequence number of the
// last commit the checkpoint covers; recovery replays only newer records,
// and Checkpoint truncates the log afterwards (pure space reclamation —
// correctness never depends on the truncation happening).

// metaFile is the JSON side-file format.
type metaFile struct {
	Version   int
	Root      uint32
	Height    int
	Size      int
	LeafCount int
	NextSV    float64
	SVs       []svRec

	// Version 2 fields. NumPages/Free persist the page allocator (v1
	// readers treated the whole file as allocated, leaking every page
	// freed before the checkpoint); WalSeq is the WAL horizon; Users and
	// Encoded restore the encoding population and its freshness; CkptSeq
	// numbers checkpoints and Policies names the policies snapshot
	// written by this one (empty: the legacy unversioned <Path>.policies).
	NumPages uint64   `json:",omitempty"`
	Free     []uint32 `json:",omitempty"`
	WalSeq   uint64   `json:",omitempty"`
	Users    []UserID `json:",omitempty"`
	Encoded  bool     `json:",omitempty"`
	CkptSeq  uint64   `json:",omitempty"`
	Policies string   `json:",omitempty"`
}

type svRec struct {
	UID UserID
	SV  uint64
}

// metaVersion is the current side-file version. Version 1 files (no
// allocator state, no WAL horizon) are still read.
const metaVersion = 2

// Checkpoint flushes all index pages to the backing file, fsyncs it, and
// atomically publishes the side files. Only file-backed DBs can
// checkpoint. On return the checkpoint is durable: a crash at any later
// point recovers at least this state (plus, with durability enabled, every
// commit the WAL holds).
//
// Checkpoint is also the storage reclamation point: pages that became
// unreachable since the last checkpoint (superseded by copy-on-write,
// abandoned by an index rebuild) and are not pinned by an open Snapshot
// are returned to the allocator, and the write-ahead log is truncated.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.fileDisk == nil {
		return fmt.Errorf("peb: checkpoint requires a file-backed DB (Options.Path)")
	}

	// Account pending retirements so the snapshot-pin arithmetic below
	// sees every page, then persist the page image.
	if pages := db.tree.TakeRetired(); len(pages) > 0 {
		db.garbage = append(db.garbage, gcBatch{ver: db.tree.Version(), pages: pages})
	}
	if err := db.tree.Pool().FlushAll(); err != nil {
		return err
	}
	if err := db.fileDisk.Sync(); err != nil {
		return err
	}

	// Liveness: a page survives if the current tree reaches it or an open
	// snapshot still pins it; everything else allocated is dead. The dead
	// set is only *computed* here — the allocator is untouched until the
	// meta rename commits, so a crash in between leaves the previous
	// checkpoint's view fully intact.
	reach, err := db.tree.Pages()
	if err != nil {
		return err
	}
	keep := make(map[store.PageID]bool, len(reach))
	for _, id := range reach {
		keep[id] = true
	}
	minVer, live := db.minLiveVersion()
	var keptGarbage []gcBatch
	for _, b := range db.garbage {
		if live && b.ver >= minVer {
			keptGarbage = append(keptGarbage, b)
			for _, id := range b.pages {
				keep[id] = true
			}
		}
	}
	var dead []store.PageID
	for _, id := range db.fileDisk.AliveList() {
		if !keep[id] {
			dead = append(dead, id)
		}
	}
	freeAll := db.fileDisk.FreeList()
	freeAll = append(freeAll, dead...)
	sort.Slice(freeAll, func(i, j int) bool { return freeAll[i] < freeAll[j] })

	// Publish the side files: the policies snapshot under a fresh
	// checkpoint-unique name, then the meta naming it — the commit point.
	// Until the meta rename lands, the previous checkpoint's files are
	// untouched, so there is no crash point that pairs one checkpoint's
	// policies with the other's index.
	newSeq := db.ckptSeq + 1
	polName := fmt.Sprintf("%s.policies.%d", db.opts.Path, newSeq)
	if err := db.writePolicies(polName); err != nil {
		return err
	}
	if err := db.writeMeta(freeAll, newSeq, polName); err != nil {
		return err
	}

	// Committed. Seal before anything else — even a failure in the
	// reclamation below must not leave the tree rewriting the pages the
	// just-published meta references in place.
	db.ckptSealed = true
	db.tree.Seal()
	db.garbage = keptGarbage
	db.ckptSeq = newSeq
	if db.prevPolicies != "" && db.prevPolicies != polName {
		// Best effort: the superseded snapshot is dead weight. A crash
		// before this Remove orphans it; OpenExisting sweeps the
		// predecessor name on the next recovery.
		_ = db.opts.FS.Remove(db.prevPolicies)
	}
	db.prevPolicies = polName

	// Reclamation is safe now. Release evicts stale frames from the
	// buffer pool as well as freeing the ids, so a future reallocation
	// cannot collide with a cached ghost. Failures only leak the page
	// until the next checkpoint's sweep finds it alive-but-unreachable
	// again, so they do not fail the (already committed) checkpoint.
	for _, id := range dead {
		_ = db.tree.Pool().Release(id)
	}
	if db.wal != nil {
		if err := db.wal.Truncate(); err != nil {
			// The checkpoint itself committed; this failure only disables
			// the (poisoned, fail-stop) log. Say so rather than reporting
			// the checkpoint as failed.
			return fmt.Errorf("peb: checkpoint committed, but log truncation failed and the write-ahead log is now disabled — reopen to restore durability: %w", err)
		}
	} else if ok, _ := db.opts.FS.Exists(db.opts.Path + ".wal"); ok {
		// Non-durable DB over a leftover log from a durable run: this
		// checkpoint's WalSeq covers every replayed record, so the log is
		// dead weight — drop it (best effort).
		_ = db.opts.FS.Remove(db.opts.Path + ".wal")
	}
	return nil
}

// writePolicies durably writes the policy snapshot under name.
func (db *DB) writePolicies(name string) error {
	var buf bytes.Buffer
	if err := db.policies.Save(&buf); err != nil {
		return fmt.Errorf("peb: checkpoint policies: %w", err)
	}
	if err := store.WriteFileAtomic(db.opts.FS, name, buf.Bytes()); err != nil {
		return fmt.Errorf("peb: checkpoint policies: %w", err)
	}
	return nil
}

// writeMeta atomically replaces <Path>.meta — the checkpoint commit point.
func (db *DB) writeMeta(free []store.PageID, ckptSeq uint64, polName string) error {
	snap := db.tree.Snapshot()
	mf := metaFile{
		Version:   metaVersion,
		Root:      uint32(snap.Tree.Root),
		Height:    snap.Tree.Height,
		Size:      snap.Tree.Size,
		LeafCount: snap.Tree.LeafCount,
		NextSV:    db.nextSV,
		NumPages:  db.fileDisk.NumPages(),
		WalSeq:    db.walSeq,
		Encoded:   db.encoded,
		CkptSeq:   ckptSeq,
		Policies:  polName,
	}
	for uid, sv := range snap.SVs {
		mf.SVs = append(mf.SVs, svRec{UID: uid, SV: sv})
	}
	sort.Slice(mf.SVs, func(i, j int) bool { return mf.SVs[i].UID < mf.SVs[j].UID })
	for _, id := range free {
		mf.Free = append(mf.Free, uint32(id))
	}
	for uid := range db.users {
		mf.Users = append(mf.Users, uid)
	}
	sort.Slice(mf.Users, func(i, j int) bool { return mf.Users[i] < mf.Users[j] })

	data, err := json.Marshal(mf)
	if err != nil {
		return err
	}
	if err := store.WriteFileAtomic(db.opts.FS, db.opts.Path+".meta", data); err != nil {
		return fmt.Errorf("peb: checkpoint meta: %w", err)
	}
	return nil
}

// corruptf wraps a violation as an ErrCorruptCheckpoint.
func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrCorruptCheckpoint, fmt.Sprintf(format, args...))
}

// OpenExisting re-opens a DB from its on-disk state: the last Checkpoint
// plus — when a write-ahead log is present — every commit logged after it,
// so after a crash the DB contains exactly the committed prefix of its
// history. opts.Path must name the same backing file; the other options
// must match the original configuration (they are not persisted).
//
// Invalid on-disk state (truncated files, unparsable metadata, index
// structure that does not match the page file) is reported as an error
// wrapping ErrCorruptCheckpoint rather than a panic.
//
// A log without any checkpoint (the DB crashed before its first
// Checkpoint) recovers too: replay starts from an empty index.
func OpenExisting(opts Options) (*DB, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	if opts.Path == "" {
		return nil, fmt.Errorf("%w: OpenExisting requires Options.Path", ErrBadOptions)
	}

	metaData, err := opts.FS.ReadFile(opts.Path + ".meta")
	switch {
	case err == nil:
		return openFromCheckpoint(opts, metaData)
	case errors.Is(err, fs.ErrNotExist):
		hasWAL, werr := opts.FS.Exists(opts.Path + ".wal")
		if werr != nil {
			return nil, fmt.Errorf("peb: probe wal: %w", werr)
		}
		if !hasWAL {
			return nil, fmt.Errorf("peb: read checkpoint meta: %w", err)
		}
		return openFromWALOnly(opts)
	default:
		return nil, fmt.Errorf("peb: read checkpoint meta: %w", err)
	}
}

// openFromCheckpoint re-attaches to a checkpoint and replays any log tail.
func openFromCheckpoint(opts Options, metaData []byte) (*DB, error) {
	var mf metaFile
	if err := json.Unmarshal(metaData, &mf); err != nil {
		return nil, corruptf("parse checkpoint meta: %v", err)
	}
	if mf.Version < 1 || mf.Version > metaVersion {
		return nil, fmt.Errorf("peb: checkpoint version %d not supported", mf.Version)
	}

	polName := mf.Policies
	if polName == "" {
		polName = opts.Path + ".policies" // legacy unversioned snapshot
	}
	pf, err := opts.FS.ReadFile(polName)
	if err != nil {
		return nil, corruptf("read checkpoint policies: %v", err)
	}
	policies, err := policy.Load(bytes.NewReader(pf))
	if err != nil {
		return nil, corruptf("parse checkpoint policies: %v", err)
	}

	fd, err := store.OpenFileDiskOn(opts.FS, opts.Path)
	if err != nil {
		return nil, err
	}
	// Restore (v2) or derive (v1) the allocator state, and validate the
	// meta's linkage against it before touching any page.
	numPages := fd.NumPages() // v1: every file page allocated
	if mf.Version >= 2 {
		free := make([]store.PageID, 0, len(mf.Free))
		for _, id := range mf.Free {
			free = append(free, store.PageID(id))
		}
		if err := fd.Reconcile(mf.NumPages, free); err != nil {
			fd.Close()
			return nil, corruptf("%v", err)
		}
		numPages = mf.NumPages
	}
	if mf.Root == 0 || uint64(mf.Root) > numPages {
		fd.Close()
		return nil, corruptf("root page %d outside file of %d pages", mf.Root, numPages)
	}
	if mf.Height < 1 || mf.Size < 0 || mf.LeafCount < 1 {
		fd.Close()
		return nil, corruptf("implausible tree shape: height %d, size %d, %d leaves",
			mf.Height, mf.Size, mf.LeafCount)
	}

	snap := core.Snapshot{
		Tree: btree.Meta{
			Root:      store.PageID(mf.Root),
			Height:    mf.Height,
			Size:      mf.Size,
			LeafCount: mf.LeafCount,
		},
		SVs: make(map[UserID]uint64, len(mf.SVs)),
	}
	for _, rec := range mf.SVs {
		snap.SVs[rec.UID] = rec.SV
	}
	tree, err := core.OpenChecked(opts.coreConfig(), store.NewBufferPool(fd, opts.BufferPages),
		policies, snap, store.PageID(numPages))
	if err != nil {
		fd.Close()
		return nil, corruptf("%v", err)
	}

	db := &DB{
		opts:         opts,
		policies:     policies,
		tree:         tree,
		view:         tree.View(),
		disk:         fd,
		fileDisk:     fd,
		gen:          1,
		snaps:        make(map[*Snapshot]struct{}),
		users:        make(map[UserID]bool),
		nextSV:       mf.NextSV,
		walSeq:       mf.WalSeq,
		ckptSeq:      mf.CkptSeq,
		prevPolicies: polName,
	}
	if mf.Version >= 2 {
		db.encoded = mf.Encoded
		for _, uid := range mf.Users {
			db.users[uid] = true
		}
	} else {
		db.encoded = true
	}
	for uid := range snap.SVs {
		db.users[uid] = true
	}
	policies.ForEachGrant(func(owner, viewer policy.UserID, _ policy.Policy) bool {
		db.users[UserID(owner)] = true
		db.users[UserID(viewer)] = true
		return true
	})
	if db.nextSV < 2 {
		db.nextSV = 2
	}
	// The attached image IS a checkpoint: seal immediately so nothing —
	// including WAL replay below — overwrites its pages in place.
	db.ckptSealed = true
	db.tree.Seal()
	// Sweep snapshots a crash may have orphaned: the predecessor version
	// (a crash between the meta rename and the predecessor removal leaks
	// exactly it) and, once versioned snapshots are in use, the legacy
	// unversioned file.
	if mf.CkptSeq >= 2 {
		_ = opts.FS.Remove(fmt.Sprintf("%s.policies.%d", opts.Path, mf.CkptSeq-1))
	}
	if mf.Policies != "" {
		_ = opts.FS.Remove(opts.Path + ".policies")
	}
	if err := db.attachWAL(mf.WalSeq); err != nil {
		db.fileDisk.Close()
		return nil, err
	}
	return db, nil
}

// openFromWALOnly recovers a durable DB that crashed before its first
// checkpoint: the page file holds no committed image, so it is discarded
// first and the log is replayed from an empty index.
func openFromWALOnly(opts Options) (*DB, error) {
	f, err := opts.FS.OpenFile(opts.Path)
	if err != nil {
		return nil, fmt.Errorf("peb: discard uncheckpointed pages: %w", err)
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("peb: discard uncheckpointed pages: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("peb: discard uncheckpointed pages: %w", err)
	}

	fresh := opts
	// attachWAL below opens the log itself (openFresh would refuse the
	// non-empty one).
	fresh.Durability = DurabilityNone
	db, err := openFresh(fresh)
	if err != nil {
		return nil, err
	}
	db.opts = opts
	if err := db.attachWAL(0); err != nil {
		db.fileDisk.Close()
		return nil, err
	}
	return db, nil
}

// attachWAL opens the log, replays every record newer than afterSeq, and —
// when the DB is durable — installs the log for subsequent commits. A
// non-durable reopen replays too (committed data must not be dropped) and
// then leaves the log in place: the replayed state exists only in memory,
// so the old checkpoint plus the old log remain its sole durable
// description. The log stays inert — every record's Seq is ≤ the restored
// walSeq, so a future Checkpoint's WalSeq covers it (Checkpoint then
// removes it) and a re-recovery before that reproduces this same state.
func (db *DB) attachWAL(afterSeq uint64) error {
	hasWAL, err := db.opts.FS.Exists(db.opts.Path + ".wal")
	if err != nil {
		return fmt.Errorf("peb: probe wal: %w", err)
	}
	if !hasWAL && db.opts.Durability == DurabilityNone {
		return nil
	}
	wal, records, err := store.OpenWAL(db.opts.FS, db.opts.Path+".wal", db.opts.Durability.walPolicy())
	if err != nil {
		return err
	}
	for i, payload := range records {
		rec, err := unmarshalRecord(payload)
		if err != nil {
			wal.Close()
			return corruptf("wal record %d: %v", i, err)
		}
		if rec.Seq <= afterSeq {
			continue // covered by the checkpoint
		}
		if err := db.replayRecord(rec); err != nil {
			wal.Close()
			return fmt.Errorf("peb: replay wal record %d: %w", i, err)
		}
	}
	db.refreshView()
	db.collectGarbage()
	if db.opts.Durability == DurabilityNone {
		return wal.Close()
	}
	db.wal = wal
	return nil
}

// coreConfig derives the index configuration from the options.
func (o Options) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	grid := cfg.Base.Grid
	grid.Side = o.SpaceSide
	cfg.Base.Grid = grid
	cfg.Base.MaxSpeed = o.MaxSpeed
	cfg.Base.DeltaTmu = o.MaxUpdateInterval
	return cfg
}
