package peb

import (
	"testing"
)

// Allocation-regression gates for the hot paths the speed pass optimized.
//
// The budgets are deliberate ceilings a little above today's measured
// allocs/op: they exist so the zero-alloc WAL codec and the PkNN scratch
// reuse cannot silently rot back toward gob-era numbers — not as exact
// pins, which would flake across Go releases. If a legitimate change
// raises a number, raise the budget in the same commit and say why.

const (
	// upsertSyncAllocBudget bounds one durable single-object commit:
	// apply + binary WAL encode (reused buffer) + group-commit sync.
	// Gob-era encoding alone cost ~40 allocs per record.
	upsertSyncAllocBudget = 15
	// applySyncAllocBudgetPerOp bounds a 100-upsert durable batch,
	// amortized per upsert. Batching amortizes the record and the sync;
	// the remainder (~12/op today) is dominated by B-tree copy-on-write
	// node work, not serialization.
	applySyncAllocBudgetPerOp = 16
	// pknnAllocBudget bounds one warm PkNN query (k=5) on a pooled
	// search state: result slice + friend-group assembly + leaf reads.
	pknnAllocBudget = 60
)

func allocDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Options{
		Path:        t.TempDir() + "/db.idx",
		Durability:  DurabilitySync,
		BufferPages: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for i := 1; i <= 64; i++ {
		if err := db.Upsert(goldenObj(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestUpsertSyncAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	db := allocDB(t)
	salt := 0
	got := testing.AllocsPerRun(200, func() {
		salt++
		if err := db.Upsert(goldenObj(1+salt%64, salt)); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Upsert (DurabilitySync): %.1f allocs/op (budget %d)", got, upsertSyncAllocBudget)
	if got > upsertSyncAllocBudget {
		t.Fatalf("Upsert allocates %.1f/op, budget %d — the durable commit path regressed", got, upsertSyncAllocBudget)
	}
}

func TestApplySyncAllocsPerOp(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	db := allocDB(t)
	const batchSize = 100
	salt := 0
	got := testing.AllocsPerRun(50, func() {
		salt++
		b := db.NewBatch()
		for i := 1; i <= batchSize; i++ {
			b.Upsert(goldenObj(i, salt))
		}
		if err := db.Apply(b); err != nil {
			t.Fatal(err)
		}
	})
	perOp := got / batchSize
	t.Logf("Apply (DurabilitySync, %d ops): %.1f allocs/batch, %.2f/op (budget %d/op)",
		batchSize, got, perOp, applySyncAllocBudgetPerOp)
	if perOp > applySyncAllocBudgetPerOp {
		t.Fatalf("Apply allocates %.2f per op, budget %d — the batch commit path regressed", perOp, applySyncAllocBudgetPerOp)
	}
}

func TestPKNNAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	db, err := Open(Options{}) // in-memory: measure the query path, not page I/O
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Each friend i considers u1 a friend and grants friends visibility
	// everywhere, all day — so u1's query actually assembles 39 candidate
	// grantors and returns k results (an empty result set would make this
	// gate trivially green).
	for i := 2; i <= 40; i++ {
		if err := db.DefineRelation(UserID(i), 1, "f"); err != nil {
			t.Fatal(err)
		}
		if err := db.Grant(UserID(i), "f", Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, TimeInterval{Start: 0, End: 1440}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := db.Upsert(goldenObj(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pooled search state, then measure steady-state queries.
	warm, err := db.NearestNeighbors(1, 500, 500, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != 5 {
		t.Fatalf("warm query returned %d results, want 5 — measuring an empty result set", len(warm))
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := db.NearestNeighbors(1, 500, 500, 5, 10); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("PkNN (k=5, 39 friends): %.1f allocs/op (budget %d)", got, pknnAllocBudget)
	if got > pknnAllocBudget {
		t.Fatalf("PkNN allocates %.1f/op, budget %d — the heap-reuse path regressed", got, pknnAllocBudget)
	}
}
