package peb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/policy"
)

// Golden-fixture compatibility test.
//
// peb/testdata/golden/gobwal holds an on-disk database — page file,
// checkpoint meta, policies snapshot, and a write-ahead log whose records
// were serialized with the ORIGINAL encoding/gob WAL codec (PR 3 era).
// The fixture is frozen: it was generated once, before the binary codec
// replaced gob on the append path, and pins the upgrade path forever —
// every future codec revision must still recover it to exactly the state
// scripted below.
//
// The script, the expected object set, and the expected policy snapshot
// are all reproduced here so the verification is self-contained: recovery
// must restore byte-for-byte identical object records (float fields are
// integers by construction, so equality is exact) and a byte-identical
// canonical policy snapshot.

// goldenDay and the regions below are the fixture's policy vocabulary.
var goldenDay = TimeInterval{Start: 0, End: 1440}

func goldenRegion(i int) Region {
	return Region{MinX: float64(i * 50), MinY: float64(i * 20), MaxX: float64(i*50 + 400), MaxY: float64(i*20 + 300)}
}

// goldenObj is the fixture's deterministic object generator; all fields are
// small integers, so recovered values compare exactly.
func goldenObj(uid, salt int) Object {
	return Object{
		UID: UserID(uid),
		X:   float64((uid*37 + salt*131) % 1000),
		Y:   float64((uid*59 + salt*17) % 1000),
		VX:  float64(uid%5) - 2,
		VY:  float64(salt%5) - 2,
		T:   float64(salt % 50),
	}
}

// runGoldenScript drives the fixture workload: policy setup, a bulk batch,
// an encode rebuild, single commits, a checkpoint, and a post-checkpoint
// tail that lives only in the write-ahead log (the part that exercises the
// record codec on recovery).
func runGoldenScript(db *DB) error {
	if err := db.DefineRelation(1, 2, "f"); err != nil {
		return err
	}
	if err := db.DefineRelation(2, 3, "f"); err != nil {
		return err
	}
	if err := db.DefineRelation(3, 1, "c"); err != nil {
		return err
	}
	for i := 1; i <= 3; i++ {
		role := Role("f")
		if i == 3 {
			role = "c"
		}
		if err := db.Grant(UserID(i), role, goldenRegion(i), goldenDay); err != nil {
			return err
		}
	}
	b := db.NewBatch()
	for i := 1; i <= 60; i++ {
		b.Upsert(goldenObj(i, 0))
	}
	if err := db.Apply(b); err != nil {
		return err
	}
	if err := db.EncodePolicies(); err != nil {
		return err
	}
	if err := db.Upsert(goldenObj(7, 1)); err != nil {
		return err
	}
	if err := db.Upsert(goldenObj(21, 1)); err != nil {
		return err
	}
	if err := db.Remove(5); err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	// Post-checkpoint history: recovered purely from WAL records.
	if err := db.Grant(4, "f", goldenRegion(4), goldenDay); err != nil {
		return err
	}
	mb := db.NewBatch()
	mb.Upsert(goldenObj(61, 2))
	mb.Remove(9)
	mb.DefineRelation(4, 1, "f")
	if err := db.Apply(mb); err != nil {
		return err
	}
	if err := db.Upsert(goldenObj(2, 3)); err != nil {
		return err
	}
	return nil
}

// goldenObjects returns the exact object set the fixture must recover to.
func goldenObjects() map[UserID]Object {
	want := make(map[UserID]Object)
	for i := 1; i <= 60; i++ {
		want[UserID(i)] = goldenObj(i, 0)
	}
	want[7] = goldenObj(7, 1)
	want[21] = goldenObj(21, 1)
	delete(want, 5)
	want[61] = goldenObj(61, 2)
	delete(want, 9)
	want[2] = goldenObj(2, 3)
	return want
}

// goldenPolicies rebuilds the fixture's expected policy store.
func goldenPolicies(t *testing.T) *policy.Store {
	t.Helper()
	space := policy.Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	ps, err := policy.NewStore(space, 1440)
	if err != nil {
		t.Fatal(err)
	}
	ps.SetRelation(1, 2, "f")
	ps.SetRelation(2, 3, "f")
	ps.SetRelation(3, 1, "c")
	for i := 1; i <= 3; i++ {
		role := policy.Role("f")
		if i == 3 {
			role = "c"
		}
		if err := ps.AddPolicy(policy.UserID(i), policy.Policy{Role: role, Locr: goldenRegion(i), Tint: goldenDay}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.AddPolicy(4, policy.Policy{Role: "f", Locr: goldenRegion(4), Tint: goldenDay}); err != nil {
		t.Fatal(err)
	}
	ps.SetRelation(4, 1, "f")
	return ps
}

const (
	// goldenDir is the PR 3-era fixture: gob-codec WAL records in a
	// single log file.
	goldenDir = "testdata/golden/gobwal"
	// goldenSingleWALDir is the PR 6-era fixture: binary-codec records,
	// still in the single `.wal` file that predates log segmentation. It
	// pins the segment-migration path the same way goldenDir pins the
	// codec upgrade.
	goldenSingleWALDir = "testdata/golden/singlewal"
)

func goldenOptions(dir string) Options {
	return Options{
		Path:        filepath.Join(dir, "golden.idx"),
		Durability:  DurabilitySync,
		BufferPages: 8,
	}
}

// copyGoldenFixture clones a committed fixture into a scratch directory
// (recovery legitimately migrates the log and sweeps side files).
func copyGoldenFixture(t *testing.T, fixture string) string {
	t.Helper()
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatalf("golden fixture missing: %v", err)
	}
	dir := t.TempDir()
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(fixture, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// verifyGoldenState checks a recovered DB against the scripted state.
func verifyGoldenState(t *testing.T, db *DB) {
	t.Helper()
	want := goldenObjects()
	if got := db.Size(); got != len(want) {
		t.Fatalf("recovered size = %d, want %d", got, len(want))
	}
	for uid, wo := range want {
		got, ok, err := db.Lookup(uid)
		if err != nil {
			t.Fatalf("lookup u%d: %v", uid, err)
		}
		if !ok {
			t.Fatalf("u%d missing after recovery", uid)
		}
		if got != wo {
			t.Fatalf("u%d = %+v, want %+v", uid, got, wo)
		}
	}
	var gotPol, wantPol bytes.Buffer
	if err := db.SavePolicies(&gotPol); err != nil {
		t.Fatal(err)
	}
	if err := goldenPolicies(t).Save(&wantPol); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPol.Bytes(), wantPol.Bytes()) {
		t.Fatal("recovered policy snapshot differs from the fixture's scripted state")
	}
}

// TestGoldenGobWALRecovery proves the upgrade path: a checkpoint plus a
// gob-era WAL written before the binary codec existed must recover to
// exactly the scripted state under the current code.
func TestGoldenGobWALRecovery(t *testing.T) {
	dir := copyGoldenFixture(t, goldenDir)
	db, err := OpenExisting(goldenOptions(dir))
	if err != nil {
		t.Fatalf("recover golden fixture: %v", err)
	}
	defer db.Close()
	verifyGoldenState(t, db)

	// The recovered DB must remain fully operational: accept new commits,
	// checkpoint (upgrading the log's covered prefix away), and survive a
	// second recovery with the new history intact.
	extra := goldenObj(99, 4)
	if err := db.Upsert(extra); err != nil {
		t.Fatalf("post-recovery upsert: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("post-recovery checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenExisting(goldenOptions(dir))
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer re.Close()
	got, ok, err := re.Lookup(99)
	if err != nil || !ok || got != extra {
		t.Fatalf("post-upgrade object lost: %+v ok=%v err=%v", got, ok, err)
	}
	want := goldenObjects()
	if got := re.Size(); got != len(want)+1 {
		t.Fatalf("post-upgrade size = %d, want %d", got, len(want)+1)
	}
}

// TestGoldenSingleWALMigration proves the log-segmentation upgrade path:
// a database whose write-ahead log is the pre-segmentation single `.wal`
// file (binary codec, PR 6 era) must open under the current code — which
// migrates the legacy file into the first numbered segment — and recover
// to exactly the scripted state, byte-for-byte policies included.
func TestGoldenSingleWALMigration(t *testing.T) {
	dir := copyGoldenFixture(t, goldenSingleWALDir)
	legacy := filepath.Join(dir, "golden.idx.wal")
	if _, err := os.Stat(legacy); err != nil {
		t.Fatalf("fixture must start with a legacy single-file log: %v", err)
	}
	db, err := OpenExisting(goldenOptions(dir))
	if err != nil {
		t.Fatalf("recover single-file-WAL fixture: %v", err)
	}
	defer db.Close()
	verifyGoldenState(t, db)

	// Migration renames the legacy log into segment 000001; the single
	// file itself must be gone so no future open sees two logs.
	if _, err := os.Stat(legacy); !os.IsNotExist(err) {
		t.Fatalf("legacy single-file log still present after migration (stat err=%v)", err)
	}
	if _, err := os.Stat(legacy + ".000001"); err != nil {
		t.Fatalf("migrated segment 000001 missing: %v", err)
	}

	// The migrated DB must keep working across commits, a checkpoint, and
	// a second recovery — now entirely on the segmented log.
	extra := goldenObj(98, 5)
	if err := db.Upsert(extra); err != nil {
		t.Fatalf("post-migration upsert: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("post-migration checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenExisting(goldenOptions(dir))
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer re.Close()
	got, ok, err := re.Lookup(98)
	if err != nil || !ok || got != extra {
		t.Fatalf("post-migration object lost: %+v ok=%v err=%v", got, ok, err)
	}
	want := goldenObjects()
	if got := re.Size(); got != len(want)+1 {
		t.Fatalf("post-migration size = %d, want %d", got, len(want)+1)
	}
}

// TestGoldenFixtureFrozen guards the fixture bytes themselves: the gobwal
// log must still be the gob-era one and the singlewal fixture must still
// carry a single pre-segmentation `.wal` file — so nobody regenerates
// either with a modern writer by accident.
func TestGoldenFixtureFrozen(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(goldenDir, "golden.idx.wal"))
	if err != nil {
		t.Fatalf("golden fixture missing: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("golden WAL is empty; the fixture must carry a post-checkpoint log tail")
	}
	data, err = os.ReadFile(filepath.Join(goldenSingleWALDir, "golden.idx.wal"))
	if err != nil {
		t.Fatalf("singlewal fixture missing: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("singlewal WAL is empty; the fixture must carry a post-checkpoint log tail")
	}
	entries, err := os.ReadDir(goldenSingleWALDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if n := e.Name(); len(n) > len("golden.idx.wal") && n[:len("golden.idx.wal.")] == "golden.idx.wal." {
			t.Fatalf("singlewal fixture contains a segment file %q; it must predate segmentation", n)
		}
	}
}

// TestRegenerateGoldenFixture is the fixtures' provenance record, not a
// test: run with PEB_REGEN_GOLDEN=1 it writes a fresh fixture into
// testdata/golden/regen-out (never over a committed one). It was run once
// while the WAL codec was still encoding/gob to produce
// testdata/golden/gobwal, and once more after the binary codec but before
// log segmentation to produce testdata/golden/singlewal — running it
// today would produce a segmented binary-codec log and must NOT replace
// either frozen fixture.
func TestRegenerateGoldenFixture(t *testing.T) {
	if os.Getenv("PEB_REGEN_GOLDEN") == "" {
		t.Skip("set PEB_REGEN_GOLDEN=1 to write a fresh fixture into testdata/golden/regen-out")
	}
	out := "testdata/golden/regen-out"
	if err := os.RemoveAll(out); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		t.Fatal(err)
	}
	db, err := Open(goldenOptions(out))
	if err != nil {
		t.Fatal(err)
	}
	if err := runGoldenScript(db); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("wrote %s/%s\n", out, e.Name())
	}
}
