// Package peb is the public API of the PEB-tree library: a privacy-aware
// moving-object database that answers range and k-nearest-neighbor queries
// under peer-wise location-privacy policies (Lin et al., PVLDB 5(1), 2011).
//
// A DB combines the three pieces a service provider needs:
//
//   - a policy store holding every user's location-privacy policies
//     ⟨role, locr, tint⟩ ("my colleagues may see me downtown, 8am–5pm");
//   - the offline policy-encoding phase that turns policy compatibility
//     into sequence values; and
//   - the PEB-tree index over the users' moving positions, whose keys
//     embed both the sequence values and a Z-curve location code.
//
// # Handles
//
// The API is organized around three explicit handles:
//
//   - DB is the live database. Its one-shot methods (Upsert, RangeQuery,
//     ...) are convenience wrappers: each takes the appropriate lock for
//     the duration of that single call.
//   - Snapshot (DB.Snapshot) is a pinned, immutable read handle: a
//     consistent multi-query session that runs without holding any lock
//     across calls, with per-snapshot I/O statistics and streaming,
//     context-aware queries. Writers proceed concurrently; the snapshot
//     keeps answering from the state it pinned.
//   - Batch (DB.NewBatch) stages writes in memory; DB.Apply applies them
//     atomically — one lock acquisition, all-or-nothing semantics, and a
//     single republish of the query snapshot, where N separate Upserts
//     would republish N times.
//
// Basic use:
//
//	db, _ := peb.Open(peb.Options{})
//	db.DefineRelation(alice, bob, "friend")
//	db.Grant(alice, "friend", downtown, mornings)
//	db.EncodePolicies()                      // offline phase, run after policy changes
//
//	b := db.NewBatch()                       // bulk load
//	b.Upsert(peb.Object{UID: alice, X: 10, Y: 20, VX: 1, VY: 0, T: 0})
//	db.Apply(b)
//
//	snap, _ := db.Snapshot()                 // consistent read session
//	defer snap.Close()
//	visible, _ := snap.RangeQuery(bob, area, now)
//	nearest, _ := snap.NearestNeighbors(bob, x, y, 5, now)
//	for o, err := range snap.RangeQueryCtx(ctx, bob, area, now) { ... }
//
// All DB methods are safe for concurrent use. The DB follows a
// single-writer/multi-reader discipline: updates (Upsert, Remove, Apply,
// Grant, DefineRelation, EncodePolicies, LoadPolicies) serialize behind a
// write lock, while one-shot queries (RangeQuery, NearestNeighbors, Lookup,
// Allows) take the read side and execute in parallel against an immutable
// snapshot of the index that is refreshed on every update. Pinned Snapshots
// go further: after creation they take no DB lock at all — the index pages
// they reach are copy-on-write-protected until the snapshot is closed.
package peb

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/bxtree"
	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/store"
)

// Re-exported domain types, so callers need only this package.
type (
	// UserID identifies a service user.
	UserID = motion.UserID
	// Object is a user's latest movement update: position (X, Y) and
	// velocity (VX, VY) as of time T.
	Object = motion.Object
	// Region is an axis-aligned rectangle (policy areas, query windows).
	Region = policy.Region
	// TimeInterval is a daily time window; Start may exceed End to wrap
	// midnight.
	TimeInterval = policy.TimeInterval
	// Role names a relationship ("friend", "colleague").
	Role = policy.Role
	// Neighbor is one nearest-neighbor result.
	Neighbor = bxtree.Neighbor
)

// Durability selects how much committed data a crash may cost on a
// file-backed DB. Anything stronger than DurabilityNone attaches a
// write-ahead log (<Path>.wal): every committed mutation is logged before
// the commit call returns, and Open/OpenExisting replay the log on top of
// the last checkpoint, so a crash — a power cut, a kill -9 — loses at most
// the commits the level lets it lose.
type Durability int

const (
	// DurabilityNone keeps no log. Data persists only via Checkpoint; a
	// crash loses everything after the last one. The default.
	DurabilityNone Durability = iota
	// DurabilitySync fsyncs the log before every commit returns: an
	// acknowledged commit is never lost. Concurrent commits share one
	// fsync opportunistically (group commit).
	DurabilitySync
	// DurabilityGrouped is DurabilitySync with a short gathering window
	// before each fsync, so even loosely overlapping commits amortize one
	// sync. Slightly higher commit latency, far fewer fsyncs under load;
	// the same no-lost-acknowledged-commit guarantee.
	DurabilityGrouped
	// DurabilityAsync appends to the log without waiting for fsync: a
	// crash may lose a suffix of recently acknowledged commits, but
	// recovery still restores an exact committed prefix. A clean Close
	// syncs, so only crashes lose anything.
	DurabilityAsync
)

// String implements fmt.Stringer.
func (d Durability) String() string {
	switch d {
	case DurabilityNone:
		return "none"
	case DurabilitySync:
		return "sync"
	case DurabilityGrouped:
		return "grouped"
	case DurabilityAsync:
		return "async"
	default:
		return fmt.Sprintf("Durability(%d)", int(d))
	}
}

// walPolicy maps the durability level to the WAL's sync policy.
func (d Durability) walPolicy() store.WALSyncPolicy {
	switch d {
	case DurabilityGrouped:
		return store.WALSyncGrouped
	case DurabilityAsync:
		return store.WALSyncNone
	default:
		return store.WALSyncAlways
	}
}

// Options configures a DB. The zero value selects the paper's defaults:
// a 1000 × 1000 space, 2^10 grid, 120-unit maximum update interval,
// 1440-unit day, and a 50-page buffer over an in-memory disk. Negative
// values are rejected by Open with an error wrapping ErrBadOptions.
type Options struct {
	// SpaceSide is the side length of the square service space.
	SpaceSide float64
	// DayLength is the period of policy time windows.
	DayLength float64
	// MaxSpeed bounds object speed; query windows are enlarged by it.
	MaxSpeed float64
	// MaxUpdateInterval is ∆tmu: every user must update at least this often.
	MaxUpdateInterval float64
	// BufferPages is the LRU buffer capacity.
	BufferPages int
	// Path, when non-empty, backs the index with a file instead of memory.
	// Checkpoint persists the index; with Durability enabled a write-ahead
	// log at <Path>.wal additionally makes every commit crash-safe.
	Path string
	// Durability selects the crash-safety level (see the constants).
	// Requires Path; with it, Open recovers existing on-disk state instead
	// of starting fresh.
	Durability Durability
	// FS substitutes the filesystem the data file, log, and checkpoint
	// side files are accessed through. Nil means the operating system's.
	// Tests inject store.CrashFS here to simulate torn writes and power
	// cuts.
	FS store.VFS
	// WALSegmentBytes is the write-ahead-log segment roll threshold: the
	// active segment is sealed (fsynced, never written again) and a new
	// one started once it grows past this many bytes. Sealed segments are
	// whole-file units — checkpoints delete the fully covered ones instead
	// of rewriting anything, and replicas fetch them without coordination.
	// Zero selects store.DefaultWALSegmentBytes.
	WALSegmentBytes int64
	// AutoCheckpoint, when any threshold is set, starts a background
	// maintainer that checkpoints automatically once the write-ahead log
	// exceeds the threshold, bounding recovery time without the
	// application ever calling Checkpoint by hand. Requires Durability
	// (the thresholds measure the log).
	AutoCheckpoint AutoCheckpointPolicy
	// TxnResolve, when non-nil, decides the fate of a prepared cross-shard
	// transaction whose outcome marker is missing from the write-ahead log
	// at recovery (the process died between this participant's prepare and
	// the coordinator's commit/abort marker). It is called with the
	// transaction id and must report whether the coordinator committed it —
	// typically by consulting the coordinator's decision log. Nil treats
	// every unresolved transaction as aborted, which is the correct default
	// for a standalone DB (it never prepares transactions).
	TxnResolve func(txnID uint64) bool
	// OnCommit, when non-nil, is registered as a commit hook before the
	// DB accepts its first post-open commit: it fires synchronously under
	// the write lock on every committed mutation, carrying the commit's
	// touched object set (see CommitHook and AddCommitHook for the full
	// contract). Recovery replay never fires it. Continuous-query engines
	// (peb/cq) are the intended consumer; most callers attach hooks later
	// via AddCommitHook instead.
	OnCommit CommitHook
	// Logger, when non-nil, receives every recorded maintainer event —
	// checkpoints, recovery summaries, transaction verdicts, slow queries
	// — as a structured log record, in addition to the bounded in-memory
	// event log every DB keeps (see Events).
	Logger *slog.Logger
	// SlowQueryThreshold, when positive, records an event (and bumps
	// peb_slow_queries_total) for every one-shot query slower than it.
	// Zero disables slow-query tracking.
	SlowQueryThreshold time.Duration
	// MetricsLabel, when non-empty, labels every metric series this DB
	// exports with shard="<MetricsLabel>". The sharded router sets it to
	// each engine's stable shard id so per-shard series stay attributable
	// across topology changes.
	MetricsLabel string
	// StopTheWorldCheckpoints is a benchmarking/debug knob: run the
	// entire checkpoint — flush, fsync, reachability sweep, side files —
	// inside one write-lock critical section (the pre-pipeline behavior)
	// instead of only its cut and publish phases. Every query and commit
	// stalls for the checkpoint's full duration; `pebbench -exp
	// checkpoint` uses it as the baseline the phased pipeline is measured
	// against.
	StopTheWorldCheckpoints bool
}

// AutoCheckpointPolicy sets the write-ahead-log thresholds that trigger an
// automatic background checkpoint. Zero values disable a threshold; the
// all-zero policy disables the maintainer entirely. When both are set,
// whichever trips first triggers.
type AutoCheckpointPolicy struct {
	// WALBytes triggers a checkpoint when the log exceeds this many bytes.
	WALBytes int64
	// WALRecords triggers a checkpoint after this many committed records
	// since the last checkpoint.
	WALRecords uint64
}

func (p AutoCheckpointPolicy) enabled() bool { return p.WALBytes > 0 || p.WALRecords > 0 }

func (o *Options) setDefaults() {
	if o.SpaceSide == 0 {
		o.SpaceSide = bxtree.DefaultSpaceSide
	}
	if o.DayLength == 0 {
		o.DayLength = 1440
	}
	if o.MaxSpeed == 0 {
		o.MaxSpeed = bxtree.DefaultMaxSpeed
	}
	if o.MaxUpdateInterval == 0 {
		o.MaxUpdateInterval = bxtree.DefaultDeltaTmu
	}
	if o.BufferPages == 0 {
		o.BufferPages = store.DefaultBufferPages
	}
	if o.FS == nil {
		o.FS = store.OSFS{}
	}
}

// gcBatch is a group of index pages superseded by copy-on-write at a given
// seal version, awaiting release until no snapshot pinned at or before that
// version remains.
type gcBatch struct {
	ver   uint64
	pages []store.PageID
}

// DB is a privacy-aware moving-object database.
type DB struct {
	// mu implements the single-writer/multi-reader discipline: every
	// update path holds the write lock; every query path holds the read
	// lock and runs against view, so queries from concurrent clients
	// proceed in parallel. Pinned Snapshots bypass mu entirely after
	// creation (copy-on-write keeps their pages stable).
	mu sync.RWMutex

	opts     Options
	policies *policy.Store
	tree     *core.Tree
	// view is the read-only snapshot one-shot queries execute on. It is
	// replaced (under the write lock) by every operation that mutates the
	// index, so a query sees the latest committed state for its whole
	// duration and never an in-progress update.
	view     *core.View
	disk     store.DiskManager
	fileDisk *store.FileDisk // non-nil when file-backed
	closed   bool

	// Durability state. wal is non-nil when Options.Durability is enabled;
	// walSeq numbers committed records (persisted in checkpoint meta, so
	// replay knows where the checkpoint's coverage ends). ckptSeq numbers
	// checkpoints: each writes its policies snapshot under a unique name,
	// of which prevPolicies is the live one (deleted when the next
	// checkpoint supersedes it). ckptSealed is true once a checkpoint
	// image exists for the current tree/disk incarnation: from then on
	// the tree stays permanently sealed (mutations copy-on-write) and
	// retired pages are quarantined rather than reused, so nothing ever
	// overwrites a page the checkpoint references — the invariant that
	// makes the image a valid recovery base under any crash. The next
	// Checkpoint's reachability sweep reclaims the quarantined pages.
	wal          *store.SegmentedWAL
	walSeq       uint64
	ckptSeq      uint64
	prevPolicies string
	ckptSealed   bool

	// Replica retention floors (replica.go): each attached in-process
	// Replica pins the log at its tail cursor, so checkpoint publication
	// never deletes a sealed segment a replica has yet to read.
	repMu     sync.Mutex
	repFloors map[*Replica]store.SegPos

	// encBuf is the reusable WAL record encode buffer: walAppendTxn
	// encodes into it under the write lock and WAL.Append copies the
	// payload out before returning, so steady-state commits allocate
	// nothing for serialization.
	encBuf []byte

	// Incremental-checkpoint bookkeeping (checkpoint.go). ckptDead
	// accumulates the pages that died — were retired by copy-on-write and
	// are pinned by no snapshot — since the last checkpoint cut; while the
	// tree has been sealed continuously since a committed checkpoint,
	// that list IS the next checkpoint's dead set, so its build can skip
	// the full reachability sweep. ckptFullNeeded forces the next build
	// back to a full sweep whenever the list may be incomplete: after
	// recovery (pages pinned by the crashed run's snapshots are untracked)
	// and after an aborted pipeline (its consumed list is lost). Both
	// guarded by mu.
	ckptDead       []store.PageID
	ckptFullNeeded bool

	// Cross-shard transaction state (prepared.go). pendingPrepared counts
	// transactions between PrepareApply and their Commit/Abort marker;
	// checkpoint cuts wait for it to reach zero (prepCond broadcasts every
	// decrement) so no checkpoint image can capture an applied-but-
	// undecided transaction whose marker would then outlive the truncated
	// log. maxTxn is the largest transaction id this DB has logged or
	// replayed — coordinators allocate ids above every participant's
	// watermark so a recycled id can never resurrect a stale prepared
	// record. prepMu is leaf-level and ordered strictly before mu.
	prepMu          sync.Mutex
	prepCond        *sync.Cond
	pendingPrepared int
	maxTxn          uint64

	// Checkpoint pipeline state (checkpoint.go). ckptMu serializes whole
	// checkpoint pipelines against each other, against index rebuilds
	// (EncodePolicies/LoadPolicies swap the tree and backing disk a build
	// phase would be reading), and against Close (which drains any
	// in-flight pipeline). Lock order: ckptMu strictly before mu; it is
	// held across the build phase precisely so that mu is NOT.
	// ckptBuilding (under mu) marks a build phase in flight: garbage
	// collection quarantines retired pages and keeps the policy store
	// pinned while set, protecting the cut image. ckptWalSeq (under mu)
	// is the WAL horizon of the last committed checkpoint — what the
	// AutoCheckpoint record threshold measures against. ckptHook is a
	// test hook called at phase boundaries ("build", "publish"); nil
	// outside tests.
	ckptMu       sync.Mutex
	ckptBuilding bool
	ckptWalSeq   uint64
	ckptHook     func(phase string)

	// Checkpoint coalescing: Checkpoint calls that arrive while a
	// pipeline is in flight wait for that pipeline and share its result
	// instead of queueing a redundant one. ckptCoalMu guards ckptInflight.
	ckptCoalMu   sync.Mutex
	ckptInflight *ckptRun

	// statsMu guards ckptStats (updated by the pipeline, read by
	// CheckpointStats; a leaf mutex so readers never touch mu).
	statsMu   sync.Mutex
	ckptStats CheckpointStats

	// AutoCheckpoint maintainer. autoC is the (capacity-1) trigger
	// channel commits signal when the WAL crosses a threshold; stopC ends
	// the maintainer goroutine; stopOnce makes Close idempotent about it.
	autoC    chan struct{}
	stopC    chan struct{}
	stopOnce sync.Once
	maintWG  sync.WaitGroup

	// viewSwaps counts view republishes — the quantity Apply amortizes:
	// a batch of N mutations republishes once where N Upserts republish N
	// times.
	viewSwaps uint64

	// Commit hooks (commithook.go). hooks fire in registration order
	// inside every commit critical section, after the view swap; commitSeq
	// numbers the notifications. Replay never fires hooks: none can be
	// registered before Open returns. All guarded by mu.
	hooks      []commitHookEntry
	nextHookID uint64
	commitSeq  uint64

	// Snapshot bookkeeping. gen identifies the current tree incarnation
	// (EncodePolicies and LoadPolicies rebuild the tree, starting a new
	// generation); snaps holds every open snapshot; garbage holds retired
	// pages of the current generation awaiting release; policiesPinned
	// marks the policy store as referenced by some snapshot, forcing
	// policy mutations to copy-on-write.
	gen            uint64
	snaps          map[*Snapshot]struct{}
	garbage        []gcBatch
	policiesPinned bool

	// Observability (observe.go). met holds the registered hot-path
	// instruments; events is the bounded maintainer event log; qio
	// accumulates the pages visited by one-shot queries on the published
	// view (the view is created with it attached). All three are built by
	// initObs during construction and live for the DB's lifetime.
	met    dbMetrics
	events *obs.EventLog
	qio    *store.IOCounter

	// users is every id ever seen (policies or movement), the population
	// the encoding phase assigns sequence values over.
	users map[UserID]bool
	// assignment is the latest encoding result; nextSV hands out fresh
	// singleton-anchor values to users that appear after encoding.
	assignment policy.Assignment
	nextSV     float64
	encoded    bool
}

// Open creates a DB. Invalid options are rejected with an error wrapping
// ErrBadOptions.
//
// With Durability enabled, Open is open-or-recover: if the path already
// holds a checkpoint or a write-ahead log — say, from a process that
// crashed — Open behaves as OpenExisting, replaying the log on top of the
// last checkpoint, so "crash, restart, Open" resumes exactly the committed
// state. A fresh path starts a fresh DB. Without durability Open starts
// fresh, but refuses a path holding a write-ahead log: the log's commits
// were acknowledged as durable, so discarding them must be explicit
// (recover via OpenExisting, or delete the log).
func Open(opts Options) (*DB, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	if opts.Path != "" {
		hasMeta, err := opts.FS.Exists(opts.Path + ".meta")
		if err != nil {
			return nil, fmt.Errorf("peb: probe checkpoint: %w", err)
		}
		hasWAL, err := store.SegmentedWALExists(opts.FS, opts.Path+".wal")
		if err != nil {
			return nil, fmt.Errorf("peb: probe wal: %w", err)
		}
		if opts.Durability != DurabilityNone && (hasMeta || hasWAL) {
			return OpenExisting(opts)
		}
		if opts.Durability == DurabilityNone && hasWAL {
			// The log holds commits that were acknowledged as durable;
			// starting a fresh unlogged history here would silently
			// destroy them. Make the data loss opt-in.
			return nil, fmt.Errorf(
				"peb: %s.wal holds logged commits; Open with Durability set (or OpenExisting) to recover them, or delete the log to discard them",
				opts.Path)
		}
	}
	db, err := openFresh(opts)
	if err != nil {
		return nil, err
	}
	if opts.OnCommit != nil {
		db.AddCommitHook(opts.OnCommit)
	}
	db.startAutoCheckpoint()
	return db, nil
}

// openFresh builds an empty DB (and, when durable, an empty log).
func openFresh(opts Options) (*DB, error) {
	space := Region{MinX: 0, MinY: 0, MaxX: opts.SpaceSide, MaxY: opts.SpaceSide}
	policies, err := policy.NewStore(space, opts.DayLength)
	if err != nil {
		return nil, err
	}
	db := &DB{
		opts:     opts,
		policies: policies,
		users:    make(map[UserID]bool),
		snaps:    make(map[*Snapshot]struct{}),
	}
	db.prepCond = sync.NewCond(&db.prepMu)
	db.initObs()
	if err := db.newTree(policy.Assignment{}); err != nil {
		return nil, err
	}
	if opts.Durability != DurabilityNone {
		wal, records, err := store.OpenSegmentedWAL(opts.FS, opts.Path+".wal",
			opts.Durability.walPolicy(), opts.WALSegmentBytes)
		if err != nil {
			db.fileDisk.Close()
			return nil, err
		}
		if len(records) > 0 {
			// Unreachable from Open (it routes existing logs to recovery),
			// but guard against a caller constructing this state by hand.
			wal.Close()
			db.fileDisk.Close()
			return nil, fmt.Errorf("peb: refusing to start fresh over a non-empty wal")
		}
		db.wal = wal
		db.observeWAL()
	}
	return db, nil
}

// newTree replaces the index with a fresh one under the given assignment,
// starting a new snapshot generation: snapshots taken against the previous
// tree keep reading it (their pool is unreachable from the new tree), and
// the previous generation's garbage is dropped with the old disk.
func (db *DB) newTree(assignment policy.Assignment) error {
	var disk store.DiskManager
	var fd *store.FileDisk
	if db.opts.Path != "" {
		var err error
		fd, err = store.OpenFileDiskOn(db.opts.FS, db.opts.Path)
		if err != nil {
			return err
		}
		disk = fd
	} else {
		disk = store.NewMemDisk()
	}

	tree, err := core.New(db.opts.coreConfig(), store.NewBufferPool(disk, db.opts.BufferPages), db.policies, assignment)
	if err != nil {
		if fd != nil {
			fd.Close()
		}
		return err
	}
	if db.fileDisk != nil {
		db.fileDisk.Close()
	}
	db.tree = tree
	db.disk = disk
	db.fileDisk = fd
	db.assignment = assignment
	db.gen++
	db.garbage = nil
	// The fresh tree starts a new incarnation with no checkpoint image of
	// its own. Any *previous* checkpoint on the same file stays recoverable
	// regardless: the fresh FileDisk marks every existing page allocated
	// and its free list starts empty, so nothing the old meta references
	// can be overwritten before the next Checkpoint supersedes it.
	db.ckptSealed = false
	// New incarnation, new dead-extent ledger: the first checkpoint is a
	// full sweep by construction (ckptSealed is false), and it alone can
	// reclaim the superseded incarnation's pages.
	db.ckptDead = nil
	db.ckptFullNeeded = false
	db.refreshView()
	db.nextSV = assignment.MaxSV
	if db.nextSV < 2 {
		db.nextSV = 2
	}
	return nil
}

// refreshView republishes the query snapshot after an index mutation. The
// caller holds the write lock, so no query observes the swap mid-flight.
func (db *DB) refreshView() {
	// The view carries the query I/O counter, so one-shot query page
	// visits are attributable separately from write-path I/O.
	db.view = db.tree.ViewIO(db.qio)
	db.viewSwaps++
}

// ViewSwaps returns the number of view republishes since Open — an
// observability hook for verifying write batching: Apply republishes once
// per batch, per-call Upserts once per call.
func (db *DB) ViewSwaps() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.viewSwaps
}

// collectGarbage moves freshly retired pages into the garbage list, then
// disposes of every batch no live snapshot of the current generation can
// reach. With no snapshots left at all it also unpins the policy store,
// and — unless a checkpoint image must stay intact — returns the tree to
// cheap in-place mutation. Caller holds the write lock.
//
// Disposal depends on whether a checkpoint image must stay intact: without
// one, unpinned pages go straight back to the allocator. With a committed
// checkpoint (ckptSealed) — or with a checkpoint build phase in flight
// (ckptBuilding), whose cut image is not yet durable — a retired page may
// be part of that on-disk image, so reusing it would corrupt the recovery
// base; unpinned batches are instead dropped and the pages stay allocated
// until a checkpoint's reachability sweep frees the ones its image does
// not contain. A build in flight likewise keeps the policy store pinned:
// the build phase is serializing the store captured at the cut.
func (db *DB) collectGarbage() {
	if pages := db.tree.TakeRetired(); len(pages) > 0 {
		db.garbage = append(db.garbage, gcBatch{ver: db.tree.Version(), pages: pages})
	}
	minVer, live := db.minLiveVersion()
	kept := db.garbage[:0]
	for _, b := range db.garbage {
		switch {
		case live && b.ver >= minVer:
			kept = append(kept, b)
		case db.ckptSealed || db.ckptBuilding:
			// Quarantined: the pages stay allocated until the next
			// checkpoint frees the ones its image does not contain. Record
			// them as dead extents so that checkpoint can (when nothing
			// forced a full sweep) reclaim exactly this list instead of
			// re-walking the whole image.
			db.ckptDead = append(db.ckptDead, b.pages...)
		default:
			for _, pid := range b.pages {
				// A failed release leaks one disk page; correctness is
				// unaffected, so the mutation that triggered collection
				// still reports success.
				_ = db.tree.Pool().Release(pid)
			}
		}
	}
	db.garbage = kept
	if !live && !db.ckptSealed && !db.ckptBuilding {
		db.tree.Unseal()
	}
	if len(db.snaps) == 0 && !db.ckptBuilding {
		db.policiesPinned = false
	}
}

// minLiveVersion returns the smallest pinned version among open snapshots
// of the current generation.
func (db *DB) minLiveVersion() (uint64, bool) {
	var min uint64
	live := false
	for s := range db.snaps {
		if s.gen != db.gen {
			continue
		}
		if !live || s.version < min {
			min = s.version
			live = true
		}
	}
	return min, live
}

// Close releases the DB's resources (the backing file and write-ahead
// log, if any). The log is synced before closing, so a clean Close loses
// nothing even under DurabilityAsync. All subsequent method calls — and
// queries on any still-open Snapshot of a file-backed DB — return
// ErrClosed or a disk error. Close is idempotent.
//
// Close drains checkpoints: it stops the AutoCheckpoint maintainer and
// waits for any in-flight checkpoint pipeline to finish (commit or fail)
// before tearing anything down, so a checkpoint never races a vanishing
// disk.
func (db *DB) Close() error {
	db.stopAutoCheckpoint()
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var firstErr error
	if db.wal != nil {
		firstErr = db.wal.Close()
		db.wal = nil
	}
	if db.fileDisk != nil {
		if err := db.fileDisk.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		db.fileDisk = nil
	}
	return firstErr
}

// DefineRelation records that owner considers peer to hold role. Policies
// owner has granted to that role then apply to peer.
func (db *DB) DefineRelation(owner, peer UserID, role Role) error {
	start := time.Now()
	tok, err := db.defineRelationCommit(owner, peer, role)
	if err != nil {
		return err
	}
	if err := db.walSync(tok); err != nil {
		return err
	}
	db.met.commit.ObserveDuration(time.Since(start))
	return nil
}

func (db *DB) defineRelationCommit(owner, peer UserID, role Role) (store.WALToken, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	db.mutatePolicies(func(ps *policy.Store) {
		ps.SetRelation(policy.UserID(owner), policy.UserID(peer), role)
	})
	db.noteUser(owner)
	db.noteUser(peer)
	db.encoded = false
	db.fireCommitLocked(nil, true, false)
	return db.walAppend([]walOp{{Kind: walOpRelation, Own: owner, Peer: peer, Role: role}})
}

// Grant adds a location-privacy policy for owner: users related to owner
// by role may see owner's location while owner is inside locr during tint.
func (db *DB) Grant(owner UserID, role Role, locr Region, tint TimeInterval) error {
	start := time.Now()
	tok, err := db.grantCommit(owner, role, locr, tint)
	if err != nil {
		return err
	}
	if err := db.walSync(tok); err != nil {
		return err
	}
	db.met.commit.ObserveDuration(time.Since(start))
	return nil
}

func (db *DB) grantCommit(owner UserID, role Role, locr Region, tint TimeInterval) (store.WALToken, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if !locr.Valid() {
		return 0, &InvalidRegionError{Region: locr}
	}
	var err error
	db.mutatePolicies(func(ps *policy.Store) {
		err = ps.AddPolicy(policy.UserID(owner), policy.Policy{Role: role, Locr: locr, Tint: tint})
	})
	if err != nil {
		return 0, err
	}
	db.noteUser(owner)
	db.encoded = false
	db.fireCommitLocked(nil, true, false)
	return db.walAppend([]walOp{{Kind: walOpGrant, Own: owner, Role: role, Locr: locr, Tint: tint}})
}

// mutatePolicies runs fn against the policy store, copying the store first
// if any snapshot has it pinned: snapshots keep evaluating the policies in
// force when they were taken, without any locking on their read path. The
// caller holds the write lock.
func (db *DB) mutatePolicies(fn func(*policy.Store)) {
	ps := db.policies
	if db.policiesPinned {
		ps = ps.Clone()
	}
	fn(ps)
	if ps != db.policies {
		db.policies = ps
		_ = db.tree.SetPolicies(ps) // ps is never nil here
		db.refreshView()            // the view carries a policy-store reference
		db.policiesPinned = false
	}
}

// Allows reports whether viewer may currently see owner located at (x, y)
// at time t — the raw policy predicate, evaluated without the index. On a
// closed DB it reports false.
func (db *DB) Allows(owner, viewer UserID, x, y, t float64) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return false
	}
	return db.policies.Allows(policy.UserID(owner), policy.UserID(viewer), x, y, t)
}

// EncodePolicies runs the offline policy-encoding phase (Sec. 5.1 of the
// paper): pairwise compatibility scores become sequence values, and the
// index is rebuilt so every stored user adopts its new key. Call it after
// batches of policy changes; queries work without it, but clustering — and
// therefore query I/O — is only as good as the latest encoding.
//
// Open snapshots keep reading the pre-encoding index (memory-backed DBs;
// on a file-backed DB the rebuild reuses the backing file, so snapshots
// from before the rebuild return errors).
func (db *DB) EncodePolicies() error {
	tok, err := db.encodePoliciesCommit()
	if err != nil {
		return err
	}
	return db.walSync(tok)
}

func (db *DB) encodePoliciesCommit() (store.WALToken, error) {
	// The rebuild swaps the tree and its backing disk — state an in-flight
	// checkpoint's build phase reads without the write lock — so rebuilds
	// first drain any pipeline via ckptMu (always taken before mu).
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	assignment, err := db.encodePoliciesLocked()
	if err != nil {
		return 0, err
	}
	db.fireCommitLocked(nil, false, true)
	recs, maxSV, groups := encodeAssignment(assignment)
	return db.walAppend([]walOp{{Kind: walOpEncode, Assign: recs, MaxSV: maxSV, Groups: groups}})
}

// encodePoliciesLocked is EncodePolicies' body; the caller holds the write
// lock (LoadPolicies runs it in the same critical section as its policy
// swap, so no query ever sees the new policies with the old encoding). The
// computed assignment is returned so the caller can log it: replay uses
// the logged values rather than re-running the assignment algorithm.
func (db *DB) encodePoliciesLocked() (policy.Assignment, error) {
	users := make([]policy.UserID, 0, len(db.users))
	for u := range db.users {
		users = append(users, policy.UserID(u))
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	assignment, err := policy.AssignSequenceValues(db.policies, users, policy.AssignOptions{})
	if err != nil {
		return policy.Assignment{}, err
	}
	if err := db.rebuildLocked(assignment); err != nil {
		return policy.Assignment{}, err
	}
	return assignment, nil
}

// rebuildLocked swaps in a fresh index under assignment and re-inserts the
// current population — the shared tail of EncodePolicies and WAL replay of
// an encode record. Caller holds the write lock.
func (db *DB) rebuildLocked(assignment policy.Assignment) error {
	// Collect the current population, swap in a fresh tree under the new
	// assignment, re-insert everything.
	objs := make([]Object, 0, db.tree.Size())
	for u := range db.users {
		o, ok, err := db.tree.Get(u)
		if err != nil {
			return err
		}
		if ok {
			objs = append(objs, o)
		}
	}
	if err := db.newTree(assignment); err != nil {
		return err
	}
	// Republish the snapshot on every exit below, so even a failed partial
	// rebuild leaves queries reading the tree's actual state.
	defer db.refreshView()
	for _, o := range objs {
		if err := db.tree.Insert(o); err != nil {
			return err
		}
	}
	db.encoded = true
	return nil
}

// Upsert stores or replaces a user's movement update. Users that appeared
// after the last EncodePolicies call receive a fresh singleton sequence
// value immediately; run EncodePolicies to integrate them properly. The
// sequence value is committed only if the insert succeeds — a failed
// insert leaves no orphan value behind.
//
// Bulk loads should stage updates in a Batch and call Apply: one lock
// acquisition and one view republish for the whole batch.
func (db *DB) Upsert(o Object) error {
	start := time.Now()
	tok, err := db.upsertCommit(o)
	if err != nil {
		return err
	}
	if err := db.walSync(tok); err != nil {
		return err
	}
	db.met.commit.ObserveDuration(time.Since(start))
	return nil
}

func (db *DB) upsertCommit(o Object) (store.WALToken, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	var prev *Object
	if db.hooksActive() {
		var err error
		if prev, err = db.capturePrev(o.UID); err != nil {
			return 0, err
		}
	}
	freshSV := false
	sv := db.nextSV + 2
	if _, ok := db.tree.SV(o.UID); !ok {
		if err := db.tree.SetSV(o.UID, sv); err != nil {
			return 0, err
		}
		freshSV = true
	}
	if err := db.tree.Insert(o); err != nil {
		if freshSV {
			// Stage-and-commit: the provisional sequence value is withdrawn
			// so the failed insert leaves no orphan SV and no burned anchor.
			_ = db.tree.UnsetSV(o.UID)
		}
		db.refreshView()
		db.collectGarbage()
		return 0, err
	}
	if freshSV {
		db.nextSV += 2 // δ spacing, a fresh singleton anchor (Fig. 5)
	}
	db.noteUser(o.UID)
	db.refreshView()
	db.collectGarbage()
	if db.hooksActive() {
		cur := o
		db.fireCommitLocked([]CommitTouch{{UID: o.UID, Prev: prev, Cur: &cur}}, false, false)
	}
	ops := make([]walOp, 0, 2)
	if freshSV {
		ops = append(ops, walOp{Kind: walOpSetSV, UID: o.UID, SV: sv})
	}
	ops = append(ops, walOp{Kind: walOpUpsert, Obj: o})
	return db.walAppend(ops)
}

// Remove deletes a user's index entry (the user's policies remain).
func (db *DB) Remove(uid UserID) error {
	start := time.Now()
	tok, err := db.removeCommit(uid)
	if err != nil {
		return err
	}
	if err := db.walSync(tok); err != nil {
		return err
	}
	db.met.commit.ObserveDuration(time.Since(start))
	return nil
}

func (db *DB) removeCommit(uid UserID) (store.WALToken, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	var prev *Object
	if db.hooksActive() {
		var perr error
		if prev, perr = db.capturePrev(uid); perr != nil {
			return 0, perr
		}
	}
	err := db.tree.Delete(uid)
	db.refreshView()
	db.collectGarbage()
	if err != nil {
		return 0, err
	}
	if db.hooksActive() {
		db.fireCommitLocked([]CommitTouch{{UID: uid, Prev: prev, Cur: nil}}, false, false)
	}
	return db.walAppend([]walOp{{Kind: walOpRemove, UID: uid}})
}

// Lookup returns a user's stored movement state.
func (db *DB) Lookup(uid UserID) (Object, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return Object{}, false, ErrClosed
	}
	return db.view.Get(uid)
}

// CommitSeq returns the WAL sequence number of the latest commit — the
// horizon a fully caught-up Replica of this DB reports. Routers use the
// pair for read-your-writes: a follower whose Horizon has reached the
// CommitSeq observed after a write serves reads that include it.
func (db *DB) CommitSeq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walSeq
}

// Size returns the number of indexed users (0 on a closed DB).
func (db *DB) Size() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0
	}
	return db.view.Size()
}

// RangeQuery returns the users inside r at time t whose policies let
// issuer see them there and then (the paper's PRQ, Definition 2).
//
// RangeQuery is a convenience wrapper: it is equivalent to taking a
// Snapshot, running the same query, and closing it, without the pinning
// cost. For multi-query consistency or streaming, use a Snapshot.
func (db *DB) RangeQuery(issuer UserID, r Region, t float64) ([]Object, error) {
	if !r.Valid() {
		return nil, &InvalidRegionError{Region: r}
	}
	start := time.Now()
	out, err := db.rangeQueryLocked(issuer, r, t)
	d := time.Since(start)
	db.met.prq.ObserveDuration(d)
	db.noteSlowQuery("prq", d, err)
	return out, err
}

func (db *DB) rangeQueryLocked(issuer UserID, r Region, t float64) ([]Object, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	w := bxtree.Window{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
	return db.view.PRQ(issuer, w, t)
}

// NearestNeighbors returns the k users nearest to (x, y) at time t whose
// policies let issuer see them (the paper's PkNN, Definition 3), sorted by
// ascending distance. Like RangeQuery, it is a per-call-snapshot wrapper.
func (db *DB) NearestNeighbors(issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error) {
	start := time.Now()
	out, err := db.nearestNeighborsLocked(issuer, x, y, k, t)
	d := time.Since(start)
	db.met.pknn.ObserveDuration(d)
	db.noteSlowQuery("pknn", d, err)
	return out, err
}

func (db *DB) nearestNeighborsLocked(issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	return db.view.PKNN(issuer, x, y, k, t)
}

// WALStats reports write-ahead-log activity: records appended and fsyncs
// performed. Under group commit, syncs < appends shows how many commits
// shared a sync. Zero-valued on a DB without durability.
type WALStats struct {
	Appends uint64
	Syncs   uint64
	// BytesAppended is the framed log volume written since open (headers +
	// payloads; segment removal does not reset it).
	BytesAppended uint64
	// SegmentsSealed counts active segments rolled into sealed (immutable,
	// fully fsynced) ones; SegmentsRemoved counts sealed segments deleted
	// by checkpoints whose cut covered them entirely.
	SegmentsSealed  uint64
	SegmentsRemoved uint64
}

// WALStats returns the log's activity counters since open.
func (db *DB) WALStats() WALStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return WALStats{}
	}
	appends, syncs := db.wal.Stats()
	sealed, removed := db.wal.SegmentStats()
	return WALStats{
		Appends: appends, Syncs: syncs, BytesAppended: db.wal.BytesAppended(),
		SegmentsSealed: sealed, SegmentsRemoved: removed,
	}
}

// IOStats reports the index's buffer statistics since the last ResetStats.
// For the I/O of one query session, use Snapshot.IOStats instead.
func (db *DB) IOStats() store.BufferStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return store.BufferStats{}
	}
	return db.tree.Pool().Stats()
}

// ResetStats zeroes the I/O counters.
func (db *DB) ResetStats() {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return
	}
	db.tree.Pool().ResetStats()
}

// DropCaches flushes and empties the page buffer and zeroes the I/O
// counters, producing a cold cache for reproducible I/O measurements
// (every index has its own buffer, so comparisons must cold-start both
// sides identically). It fails if any query holds a page pinned at this
// instant — avoid calling it while snapshot queries are in flight.
func (db *DB) DropCaches() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.tree.Pool().DropAll(); err != nil {
		return err
	}
	db.tree.Pool().ResetStats()
	return nil
}

// noteUser registers a user id in the population (caller holds the lock).
func (db *DB) noteUser(uid UserID) {
	db.users[uid] = true
}

// SavePolicies writes a snapshot of all relations and policies to w.
// Policies change rarely (the paper's premise), so snapshotting them and
// rebuilding indexes from live movement data is the natural recovery path.
func (db *DB) SavePolicies(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	return db.policies.Save(w)
}

// LoadPolicies replaces the DB's entire policy state with a snapshot
// written by SavePolicies, then re-runs policy encoding and rebuilds the
// index so stored users adopt keys under the restored policies.
func (db *DB) LoadPolicies(r io.Reader) error {
	tok, err := db.loadPoliciesCommit(r)
	if err != nil {
		return err
	}
	return db.walSync(tok)
}

func (db *DB) loadPoliciesCommit(r io.Reader) (store.WALToken, error) {
	// Like encodePoliciesCommit: the rebuild must not race an in-flight
	// checkpoint build, so drain pipelines first (ckptMu before mu).
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	loaded, err := policy.Load(r)
	if err != nil {
		return 0, err
	}
	if loaded.Space() != db.policies.Space() || loaded.DayLength() != db.policies.DayLength() {
		return 0, fmt.Errorf("peb: snapshot domain %v/%g does not match DB %v/%g",
			loaded.Space(), loaded.DayLength(), db.policies.Space(), db.policies.DayLength())
	}
	// The loaded store is a fresh object: open snapshots keep their pinned
	// store, and the new one is unpinned by construction.
	db.policies = loaded
	_ = db.tree.SetPolicies(loaded) // loaded is never nil here
	db.policiesPinned = false       // fresh store object: no snapshot pins it
	loaded.ForEachGrant(func(owner, viewer policy.UserID, _ policy.Policy) bool {
		db.users[UserID(owner)] = true
		db.users[UserID(viewer)] = true
		return true
	})
	db.encoded = false
	// Re-encode and rebuild in the same critical section: no query may
	// see the new policies paired with the old sequence-value encoding.
	assignment, err := db.encodePoliciesLocked()
	if err != nil {
		return 0, err
	}
	db.fireCommitLocked(nil, true, true)
	if db.wal == nil {
		return 0, nil
	}
	// One record carries the whole state swap: the policy snapshot (in its
	// canonical serialized form) plus the assignment the index was rebuilt
	// under, so replay is a wholesale, idempotent replacement.
	var blob bytes.Buffer
	if err := loaded.Save(&blob); err != nil {
		return 0, fmt.Errorf("peb: serialize policies for wal: %w", err)
	}
	recs, maxSV, groups := encodeAssignment(assignment)
	return db.walAppend([]walOp{
		{Kind: walOpLoadPolicies, Blob: blob.Bytes()},
		{Kind: walOpEncode, Assign: recs, MaxSV: maxSV, Groups: groups},
	})
}
