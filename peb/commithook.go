package peb

import (
	"repro/internal/bxtree"
	"repro/internal/policy"
)

// Commit notifications: the hook point continuous-query engines (peb/cq)
// build on. Every committed mutation — a single Upsert/Remove, an Apply
// batch, a prepared cross-shard sub-batch, a policy change, an index
// rebuild — fires the registered hooks exactly once, synchronously, under
// the write lock, immediately after the new query view is published. The
// hook therefore observes every commit in order, with no commit able to
// land between the view swap and the notification.
//
// Because hooks run inside the commit critical section they must be fast
// and must never block: a hook that waits on a channel or takes a lock a
// query path can hold wedges every writer. peb/cq keeps this contract by
// evaluating subscriptions against only the touched set and delivering
// deltas with non-blocking sends.
//
// Hooks never fire during recovery. Open installs Options.OnCommit only
// after WAL replay completes, and AddCommitHook requires an opened DB, so
// the first notification a hook can observe is the first post-recovery
// commit.

// CommitTouch records one object's index transition within a commit: the
// stored movement state before (nil if the user was not indexed) and after
// (nil if the commit removed the entry). A batch that writes the same user
// several times reports one CommitTouch with the first-touch Prev and the
// final Cur.
type CommitTouch struct {
	UID  UserID
	Prev *Object
	Cur  *Object
}

// CommitInfo describes one committed mutation to a commit hook.
type CommitInfo struct {
	// Seq numbers hook notifications 1, 2, 3, ... in commit order — the
	// stream position a subscription engine tags deltas with.
	Seq uint64
	// Touched lists the index transitions this commit performed. Empty for
	// pure policy commits and rebuilds.
	Touched []CommitTouch
	// PolicyChange reports that the commit changed the policy store
	// (Grant, DefineRelation, LoadPolicies, or a batch staging either):
	// visibility may have flipped for objects the commit never touched, so
	// incremental evaluation over Touched alone is not sound.
	PolicyChange bool
	// Rebuild reports that the commit swapped in a freshly built index
	// (EncodePolicies, LoadPolicies, InstallEncoding). Sequence values
	// changed; query results did not (encoding affects clustering only),
	// but engines that cache anything keyed on the index should resync.
	Rebuild bool
}

// CommitHook is a commit notification callback. It runs under the DB
// write lock; the CommitView is valid only for the duration of the call.
type CommitHook func(info CommitInfo, cv *CommitView)

// commitHookEntry pairs a hook with a registration id so removal is exact
// even when the same function value is registered twice.
type commitHookEntry struct {
	id uint64
	fn CommitHook
}

// CommitView is a query surface over the exact state a commit published,
// usable only while the write lock is held on the caller's behalf: inside
// a CommitHook invocation, or inside a DB.WithCommitView callback. Its
// methods take no locks (the caller already excludes every writer), so a
// hook can evaluate membership predicates or re-run full queries against
// precisely the post-commit state with no torn reads.
//
// A CommitView must not escape the call that provided it; every method
// returns ErrClosed once that call returns.
type CommitView struct {
	db    *DB
	valid bool
}

// Seq returns the notification sequence number of the most recent commit
// (the Seq the next hook firing would carry is Seq()+1).
func (cv *CommitView) Seq() uint64 {
	if !cv.valid {
		return 0
	}
	return cv.db.commitSeq
}

// RangeQuery answers the paper's PRQ against the published state (see
// DB.RangeQuery).
func (cv *CommitView) RangeQuery(issuer UserID, r Region, t float64) ([]Object, error) {
	if !cv.valid {
		return nil, ErrClosed
	}
	if !r.Valid() {
		return nil, &InvalidRegionError{Region: r}
	}
	w := bxtree.Window{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
	return cv.db.view.PRQ(issuer, w, t)
}

// NearestNeighbors answers the paper's PkNN against the published state
// (see DB.NearestNeighbors).
func (cv *CommitView) NearestNeighbors(issuer UserID, x, y float64, k int, t float64) ([]Neighbor, error) {
	if !cv.valid {
		return nil, ErrClosed
	}
	return cv.db.view.PKNN(issuer, x, y, k, t)
}

// Lookup returns a user's stored movement state.
func (cv *CommitView) Lookup(uid UserID) (Object, bool, error) {
	if !cv.valid {
		return Object{}, false, ErrClosed
	}
	return cv.db.view.Get(uid)
}

// Grantors returns every user who has granted viewer at least one policy —
// the complete candidate set of any query viewer issues. A subscription
// engine prunes by it: an object outside the issuer's grantor set can
// never appear in the issuer's results, whatever it does.
func (cv *CommitView) Grantors(viewer UserID) []UserID {
	if !cv.valid {
		return nil
	}
	src := cv.db.policies.Grantors(policy.UserID(viewer))
	out := make([]UserID, len(src))
	for i, u := range src {
		out[i] = UserID(u)
	}
	return out
}

// Member reports whether object o belongs to issuer's range query over r
// at time t — exactly the predicate DB.RangeQuery applies to every
// candidate: o is not the issuer, o's extrapolated position at t lies in r
// (closed bounds), and o's policies let issuer see it there and then. This
// is the incremental-evaluation primitive: for an object the commit
// touched, Member on the before and after states decides enter/leave/update
// without any index scan.
func (cv *CommitView) Member(issuer UserID, r Region, o Object, t float64) bool {
	if !cv.valid || o.UID == issuer {
		return false
	}
	x, y := o.PositionAt(t)
	if x < r.MinX || x > r.MaxX || y < r.MinY || y > r.MaxY {
		return false
	}
	return cv.db.policies.Allows(policy.UserID(o.UID), policy.UserID(issuer), x, y, t)
}

// Bounds returns the service space (see DB.Bounds).
func (cv *CommitView) Bounds() Region {
	if !cv.valid {
		return Region{}
	}
	return cv.db.policies.Space()
}

// GridOrder returns the space-filling-curve grid order (see DB.GridOrder).
func (cv *CommitView) GridOrder() int {
	if !cv.valid {
		return 0
	}
	return cv.db.tree.Config().Base.Grid.Order
}

// MaxSpeed returns the configured speed bound.
func (cv *CommitView) MaxSpeed() float64 {
	if !cv.valid {
		return 0
	}
	return cv.db.opts.MaxSpeed
}

// MaxUpdateInterval returns the configured ∆tmu: the longest a stored
// state may go without a refresh.
func (cv *CommitView) MaxUpdateInterval() float64 {
	if !cv.valid {
		return 0
	}
	return cv.db.opts.MaxUpdateInterval
}

// AddHook registers fn from inside a WithCommitView callback (the caller
// already holds the write lock, so DB.AddCommitHook would deadlock). The
// returned remove function must be called outside the callback.
func (cv *CommitView) AddHook(fn CommitHook) (remove func()) {
	if !cv.valid {
		return func() {}
	}
	return cv.db.addHookLocked(fn)
}

// AddCommitHook registers fn to be called on every subsequent commit, and
// returns a function that unregisters it. Multiple hooks fire in
// registration order. See the package comment on commit notifications for
// the contract hooks must honor.
func (db *DB) AddCommitHook(fn CommitHook) (remove func()) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.addHookLocked(fn)
}

func (db *DB) addHookLocked(fn CommitHook) (remove func()) {
	db.nextHookID++
	id := db.nextHookID
	db.hooks = append(db.hooks, commitHookEntry{id: id, fn: fn})
	return func() {
		db.mu.Lock()
		defer db.mu.Unlock()
		for i := range db.hooks {
			if db.hooks[i].id == id {
				db.hooks = append(db.hooks[:i], db.hooks[i+1:]...)
				return
			}
		}
	}
}

// WithCommitView runs fn with the commit stream frozen: the write lock is
// held for the duration, so no commit lands while fn executes and the
// CommitView answers queries against exactly the state the latest commit
// published. Subscription engines use it to evaluate an initial result and
// register a hook atomically — no commit can slip between the two, so the
// delta stream continues the initial result gap-free.
//
// fn must not call DB methods (they would self-deadlock on the write
// lock); the CommitView provides the query surface.
func (db *DB) WithCommitView(fn func(cv *CommitView) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	cv := &CommitView{db: db, valid: true}
	defer func() { cv.valid = false }()
	return fn(cv)
}

// hooksActive reports whether any commit hook is registered — commit paths
// skip touched-set capture entirely when none is. Caller holds the write
// lock.
func (db *DB) hooksActive() bool { return len(db.hooks) > 0 }

// fireCommitLocked delivers one commit notification to every registered
// hook. Caller holds the write lock and has already republished the view.
func (db *DB) fireCommitLocked(touched []CommitTouch, policyChange, rebuild bool) {
	if len(db.hooks) == 0 {
		return
	}
	db.commitSeq++
	info := CommitInfo{
		Seq:          db.commitSeq,
		Touched:      touched,
		PolicyChange: policyChange,
		Rebuild:      rebuild,
	}
	cv := &CommitView{db: db, valid: true}
	for i := range db.hooks {
		db.hooks[i].fn(info, cv)
	}
	cv.valid = false
}

// capturePrev snapshots a user's pre-mutation index state for a commit
// notification. Caller holds the write lock.
func (db *DB) capturePrev(uid UserID) (*Object, error) {
	prev, ok, err := db.tree.Get(uid)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	p := prev
	return &p, nil
}
