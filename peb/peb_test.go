package peb

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenDefaults(t *testing.T) {
	db := mustOpen(t, Options{})
	if db.Size() != 0 {
		t.Errorf("fresh DB size = %d", db.Size())
	}
}

func TestLifecycle(t *testing.T) {
	db := mustOpen(t, Options{})
	day := TimeInterval{Start: 0, End: 1440}
	everywhere := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

	db.DefineRelation(2, 1, "friend") // u2 considers u1 a friend
	if err := db.Grant(2, "friend", everywhere, day); err != nil {
		t.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}

	if err := db.Upsert(Object{UID: 1, X: 100, Y: 100, T: 0}); err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(Object{UID: 2, X: 110, Y: 105, T: 0}); err != nil {
		t.Fatal(err)
	}
	if db.Size() != 2 {
		t.Fatalf("Size = %d, want 2", db.Size())
	}

	// u1 may see u2 (u2 granted it); u2 may not see u1 (no grant).
	got, err := db.RangeQuery(1, Region{MinX: 0, MinY: 0, MaxX: 200, MaxY: 200}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].UID != 2 {
		t.Fatalf("u1's query = %v, want [u2]", got)
	}
	got, err = db.RangeQuery(2, Region{MinX: 0, MinY: 0, MaxX: 200, MaxY: 200}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("u2's query = %v, want empty", got)
	}

	nn, err := db.NearestNeighbors(1, 100, 100, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 1 || nn[0].Object.UID != 2 {
		t.Fatalf("NN = %v, want [u2]", nn)
	}

	obj, ok, err := db.Lookup(2)
	if err != nil || !ok || obj.UID != 2 {
		t.Fatalf("Lookup = %v %v %v", obj, ok, err)
	}
	if err := db.Remove(2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Lookup(2); ok {
		t.Error("Lookup after Remove found entry")
	}
}

func TestUpsertBeforeEncode(t *testing.T) {
	// Users inserted before any encoding get singleton sequence values and
	// remain queryable.
	db := mustOpen(t, Options{})
	day := TimeInterval{Start: 0, End: 1440}
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	for i := 1; i <= 20; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i * 10), Y: 500, T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	db.DefineRelation(7, 1, "f")
	if err := db.Grant(7, "f", all, day); err != nil {
		t.Fatal(err)
	}
	// u7 was inserted before its policy existed; without re-encoding the
	// query must still find it (clustering is just worse).
	got, err := db.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].UID != 7 {
		t.Fatalf("query = %v, want [u7]", got)
	}
	// Re-encoding rebuilds the index; results are unchanged.
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	got, err = db.RangeQuery(1, all, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].UID != 7 {
		t.Fatalf("query after re-encode = %v, want [u7]", got)
	}
	if db.Size() != 20 {
		t.Fatalf("size after re-encode = %d, want 20", db.Size())
	}
}

func TestInvalidRegionRejected(t *testing.T) {
	db := mustOpen(t, Options{})
	if _, err := db.RangeQuery(1, Region{MinX: 5, MaxX: 1, MinY: 0, MaxY: 1}, 0); err == nil {
		t.Error("invalid region accepted")
	}
}

func TestFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peb.idx")
	db := mustOpen(t, Options{Path: path})
	day := TimeInterval{Start: 0, End: 1440}
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	db.DefineRelation(2, 1, "f")
	if err := db.Grant(2, "f", all, day); err != nil {
		t.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 500; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i % 100 * 10), Y: float64(i % 97 * 10), T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.RangeQuery(1, all, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].UID != 2 {
		t.Fatalf("file-backed query = %d results, want [u2]", len(got))
	}
}

// TestMatchesOracle drives the DB with a random population and checks both
// query types against a literal implementation of Definitions 2–3.
func TestMatchesOracle(t *testing.T) {
	db := mustOpen(t, Options{})
	rng := rand.New(rand.NewSource(9))
	const n = 150
	day := func() TimeInterval {
		s := rng.Float64() * 1440
		return TimeInterval{Start: s, End: math.Mod(s+360+rng.Float64()*720, 1440)}
	}
	region := func() Region {
		w, h := 200+rng.Float64()*600, 200+rng.Float64()*600
		x, y := rng.Float64()*(1000-w), rng.Float64()*(1000-h)
		return Region{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
	}
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			UID: UserID(i + 1),
			X:   rng.Float64() * 1000, Y: rng.Float64() * 1000,
			VX: rng.Float64()*4 - 2, VY: rng.Float64()*4 - 2,
			T: rng.Float64() * 50,
		}
	}
	for i := 0; i < n; i++ {
		for f := 0; f < 5; f++ {
			peer := UserID(rng.Intn(n) + 1)
			if peer == UserID(i+1) {
				continue
			}
			role := Role(rune('a' + f))
			db.DefineRelation(UserID(i+1), peer, role)
			if err := db.Grant(UserID(i+1), role, region(), day()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := db.Upsert(o); err != nil {
			t.Fatal(err)
		}
	}

	for trial := 0; trial < 25; trial++ {
		issuer := UserID(rng.Intn(n) + 1)
		tq := rng.Float64() * 60
		r := region()
		got, err := db.RangeQuery(issuer, r, tq)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[UserID]bool)
		for _, o := range objs {
			if o.UID == issuer {
				continue
			}
			x, y := o.PositionAt(tq)
			if r.Contains(x, y) && db.Allows(o.UID, issuer, x, y, tq) {
				want[o.UID] = true
			}
		}
		if len(got) != len(want) {
			t.Errorf("trial %d: got %d, want %d", trial, len(got), len(want))
			continue
		}
		for _, o := range got {
			if !want[o.UID] {
				t.Errorf("trial %d: unexpected u%d", trial, o.UID)
			}
		}

		// kNN oracle.
		k := 1 + rng.Intn(4)
		qx, qy := rng.Float64()*1000, rng.Float64()*1000
		nn, err := db.NearestNeighbors(issuer, qx, qy, k, tq)
		if err != nil {
			t.Fatal(err)
		}
		type cand struct {
			uid  UserID
			dist float64
		}
		var cands []cand
		for _, o := range objs {
			if o.UID == issuer {
				continue
			}
			x, y := o.PositionAt(tq)
			if db.Allows(o.UID, issuer, x, y, tq) {
				cands = append(cands, cand{o.UID, math.Hypot(x-qx, y-qy)})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
		if len(cands) > k {
			cands = cands[:k]
		}
		if len(nn) != len(cands) {
			t.Fatalf("trial %d: kNN got %d, want %d", trial, len(nn), len(cands))
		}
		for i := range cands {
			if nn[i].Object.UID != cands[i].uid {
				t.Errorf("trial %d: kNN[%d] = u%d, want u%d", trial, i, nn[i].Object.UID, cands[i].uid)
			}
		}
	}
}

func TestSaveLoadPolicies(t *testing.T) {
	db := mustOpen(t, Options{})
	day := TimeInterval{Start: 0, End: 1440}
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	for i := 2; i <= 30; i++ {
		db.DefineRelation(UserID(i), 1, "f")
		if err := db.Grant(UserID(i), "f", all, day); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i * 30), Y: 500, T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.SavePolicies(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a second DB with the same movement data.
	db2 := mustOpen(t, Options{})
	if err := db2.LoadPolicies(&buf); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		if err := db2.Upsert(Object{UID: UserID(i), X: float64(i * 30), Y: 500, T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	q1, err := db.RangeQuery(1, all, 10)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := db2.RangeQuery(1, all, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(q1) != 29 || len(q2) != 29 {
		t.Fatalf("queries = %d and %d results, want 29 each", len(q1), len(q2))
	}

	// A mismatched domain must be rejected.
	var buf2 bytes.Buffer
	if err := db.SavePolicies(&buf2); err != nil {
		t.Fatal(err)
	}
	db3 := mustOpen(t, Options{SpaceSide: 500})
	if err := db3.LoadPolicies(&buf2); err == nil {
		t.Error("snapshot with mismatched space accepted")
	}
}

// TestConcurrentAccess checks that the mutex serializes mixed readers and
// writers (run with -race).
func TestConcurrentAccess(t *testing.T) {
	db := mustOpen(t, Options{})
	day := TimeInterval{Start: 0, End: 1440}
	all := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	for i := 1; i <= 50; i++ {
		db.DefineRelation(UserID(i), UserID(i%50+1), "f")
		if err := db.Grant(UserID(i), "f", all, day); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 100; i++ {
				uid := UserID(rng.Intn(50) + 1)
				switch i % 3 {
				case 0:
					_ = db.Upsert(Object{UID: uid, X: rng.Float64() * 1000, Y: rng.Float64() * 1000, T: float64(i)})
				case 1:
					_, _ = db.RangeQuery(uid, all, float64(i))
				default:
					_, _ = db.NearestNeighbors(uid, 500, 500, 3, float64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	if db.IOStats().Accesses() == 0 {
		t.Error("no page accesses recorded")
	}
	db.ResetStats()
	if db.IOStats().Accesses() != 0 {
		t.Error("ResetStats did not clear counters")
	}
}
