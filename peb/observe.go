package peb

import (
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Observability. Every DB carries a metrics registry and a bounded event
// log, always on: the hot-path instruments (commit and query latency
// histograms, WAL append/fsync timings) record with zero allocations, so
// there is no enablement knob to forget. The registry is scraped through
// peb/obs.Handler (Prometheus text at /metrics, JSON at /statusz); the
// event log records maintainer decisions — checkpoints, recovery, 2PC
// verdicts, slow queries — and mirrors them to Options.Logger when set.

// dbMetrics holds the DB's registered hot-path instruments. Registration
// happens once in initObs; recording is lock-free atomic adds.
type dbMetrics struct {
	reg         *obs.Registry
	commit      *obs.Histogram // peb_commit_seconds
	prq         *obs.Histogram // peb_query_seconds{op="prq"}
	pknn        *obs.Histogram // peb_query_seconds{op="pknn"}
	slow        *obs.Counter   // peb_slow_queries_total
	walAppend   *obs.Histogram // peb_wal_append_seconds
	walFsync    *obs.Histogram // peb_wal_fsync_seconds
	walGroup    *obs.Histogram // peb_wal_fsync_records
	ckptCut     *obs.Histogram // peb_checkpoint_cut_seconds
	ckptBuild   *obs.Histogram // peb_checkpoint_build_seconds
	ckptPublish *obs.Histogram // peb_checkpoint_publish_seconds
	cqDelta     *obs.Histogram // peb_cq_commit_delta_seconds
}

// initObs builds the DB's registry, event log, and query I/O counter.
// Called during construction, before the first view is published (the
// view carries qio) and before any commit can run.
func (db *DB) initObs() {
	var cl []obs.Label
	if db.opts.MetricsLabel != "" {
		cl = append(cl, obs.Label{Key: "shard", Value: db.opts.MetricsLabel})
	}
	reg := obs.NewRegistry(cl...)
	m := &db.met
	m.reg = reg
	m.commit = reg.Histogram("peb_commit_seconds",
		"Commit latency of write operations, through WAL append and fsync.", 1e-9)
	m.prq = reg.Histogram("peb_query_seconds",
		"One-shot query latency on the published view.", 1e-9, obs.Label{Key: "op", Value: "prq"})
	m.pknn = reg.Histogram("peb_query_seconds",
		"One-shot query latency on the published view.", 1e-9, obs.Label{Key: "op", Value: "pknn"})
	m.slow = reg.Counter("peb_slow_queries_total",
		"Queries slower than Options.SlowQueryThreshold.")
	m.walAppend = reg.Histogram("peb_wal_append_seconds",
		"Write-ahead-log append duration (framing + write).", 1e-9)
	m.walFsync = reg.Histogram("peb_wal_fsync_seconds",
		"Write-ahead-log fsync duration per group commit.", 1e-9)
	m.walGroup = reg.Histogram("peb_wal_fsync_records",
		"Records made durable per fsync (group-commit batch size).", 1)
	m.ckptCut = reg.Histogram("peb_checkpoint_cut_seconds",
		"Checkpoint cut-phase duration (write lock held).", 1e-9)
	m.ckptBuild = reg.Histogram("peb_checkpoint_build_seconds",
		"Checkpoint build-phase duration (no write lock).", 1e-9)
	m.ckptPublish = reg.Histogram("peb_checkpoint_publish_seconds",
		"Checkpoint publish-phase duration (write lock held).", 1e-9)
	m.cqDelta = reg.Histogram("peb_cq_commit_delta_seconds",
		"Commit-to-delta latency of continuous-query evaluation.", 1e-9)
	db.qio = &store.IOCounter{}
	db.events = obs.NewEventLog(obs.DefaultEventLogSize, db.opts.Logger)
	reg.Collect(db.collectMetrics)
}

// observeWAL attaches the WAL's instruments. Called wherever a log is
// opened (fresh open and both recovery paths), before concurrent commits.
func (db *DB) observeWAL() {
	if db.wal == nil {
		return
	}
	db.wal.Observe(store.WALObserver{
		AppendNanos:  db.met.walAppend,
		FsyncNanos:   db.met.walFsync,
		FsyncRecords: db.met.walGroup,
	})
}

// collectMetrics emits the pull-based series at scrape time, reading the
// same counters the Stats() structs expose — no double bookkeeping on the
// hot paths. It takes the DB's read lock briefly per stats read; scrapes
// are rare, so this never contends measurably.
func (db *DB) collectMetrics(e *obs.Emit) {
	ws := db.WALStats()
	e.Counter("peb_wal_appends_total", "WAL records appended since open.", float64(ws.Appends))
	e.Counter("peb_wal_syncs_total", "WAL fsyncs performed since open.", float64(ws.Syncs))
	e.Counter("peb_wal_bytes_appended_total", "Framed WAL bytes written since open.", float64(ws.BytesAppended))
	e.Counter("peb_wal_segments_sealed_total", "WAL segments sealed since open.", float64(ws.SegmentsSealed))
	e.Counter("peb_wal_segments_removed_total", "Sealed WAL segments deleted by checkpoints.", float64(ws.SegmentsRemoved))
	e.Gauge("peb_wal_size_bytes", "Live write-ahead-log size.", float64(db.walSizeBytes()))

	cs := db.CheckpointStats()
	e.Counter("peb_checkpoints_total", "Checkpoints committed since open.", float64(cs.Checkpoints))
	e.Counter("peb_checkpoints_auto_total", "Checkpoints triggered by the AutoCheckpoint maintainer.", float64(cs.AutoTriggered))
	e.Counter("peb_checkpoint_pages_flushed_total", "Pages flushed by checkpoint builds.", float64(cs.PagesFlushed))
	e.Counter("peb_checkpoint_pages_reclaimed_total", "Dead pages reclaimed by checkpoints.", float64(cs.PagesReclaimed))
	e.Counter("peb_checkpoint_wal_bytes_truncated_total", "WAL bytes released by checkpoint publication.", float64(cs.WALBytesTruncated))

	io := db.IOStats()
	e.Counter("peb_buffer_hits_total", "Buffer-pool hits.", float64(io.Hits))
	e.Counter("peb_buffer_misses_total", "Buffer-pool misses (page reads from disk).", float64(io.Misses))
	if acc := io.Accesses(); acc > 0 {
		e.Gauge("peb_buffer_hit_ratio", "Buffer-pool hit ratio since the last stats reset.", float64(io.Hits)/float64(acc))
	}
	q := db.QueryIOStats()
	e.Counter("peb_query_pages_total",
		"Index pages visited by one-shot queries on the published view.", float64(q.Hits+q.Misses))

	e.Counter("peb_commit_seq", "WAL sequence number of the latest commit.", float64(db.CommitSeq()))
	e.Counter("peb_view_swaps_total", "Query-view republishes since open.", float64(db.ViewSwaps()))
	e.Gauge("peb_size", "Indexed population.", float64(db.Size()))
	e.Counter("peb_events_total", "Events recorded since open (the ring retains the tail).", float64(db.events.Total()))
}

// walSizeBytes returns the live log size (0 without durability).
func (db *DB) walSizeBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Size()
}

// Metrics returns the DB's metrics registry. peb/obs.Handler scrapes it;
// subsystems layered on the DB (peb/cq) register their own series here so
// one endpoint exports the whole engine.
func (db *DB) Metrics() *obs.Registry { return db.met.reg }

// Events returns the DB's bounded event log: maintainer decisions
// (checkpoints, recovery, transaction verdicts, slow queries) with their
// inputs, newest retained.
func (db *DB) Events() *obs.EventLog { return db.events }

// CQDeltaHistogram returns the pre-registered commit-to-delta latency
// histogram the continuous-query engine feeds (peb/cq).
func (db *DB) CQDeltaHistogram() *obs.Histogram { return db.met.cqDelta }

// QueryIOStats reports the pages visited by one-shot queries on the
// published view (hits and misses only), separable from the write path's
// I/O in IOStats.
func (db *DB) QueryIOStats() store.BufferStats { return db.qio.Stats() }

// noteSlowQuery bumps the slow-query counter and records an event when d
// crosses Options.SlowQueryThreshold. Disabled (threshold 0) it is two
// predictable branches on the query path.
func (db *DB) noteSlowQuery(op string, d time.Duration, err error) {
	th := db.opts.SlowQueryThreshold
	if th <= 0 || d < th || err != nil {
		return
	}
	db.met.slow.Inc()
	db.events.Record("slow_query", "query exceeded SlowQueryThreshold",
		"op", op, "duration", d, "threshold", th)
}
