package peb

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/store"
)

// preparedTestObjects returns the full movement state, failing the test on
// error.
func preparedTestObjects(t *testing.T, db *DB) []Object {
	t.Helper()
	objs, err := db.Objects()
	if err != nil {
		t.Fatal(err)
	}
	return objs
}

func TestPreparedCommitSurvivesReopen(t *testing.T) {
	fs := store.NewCrashFS()
	opts := Options{Path: "p.idx", Durability: DurabilitySync, FS: fs}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(Object{UID: 1, X: 10, Y: 10}); err != nil {
		t.Fatal(err)
	}

	b := db.NewBatch()
	b.Upsert(Object{UID: 2, X: 20, Y: 20})
	b.DefineRelation(2, 1, "friend")
	b.Grant(2, "friend", Region{MaxX: 1000, MaxY: 1000}, TimeInterval{End: 1440})
	p, err := db.PrepareApply(b, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.MaxTxnID(); got != 7 {
		t.Fatalf("MaxTxnID = %d, want 7", got)
	}
	want := preparedTestObjects(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenExisting(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := preparedTestObjects(t, re); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered objects %v, want %v", got, want)
	}
	if !re.Allows(2, 1, 20, 20, 30) {
		t.Fatal("granted policy lost across reopen")
	}
	if got := re.MaxTxnID(); got != 7 {
		t.Fatalf("recovered MaxTxnID = %d, want 7", got)
	}
}

func TestPreparedAbortRestoresState(t *testing.T) {
	fs := store.NewCrashFS()
	opts := Options{Path: "a.idx", Durability: DurabilitySync, FS: fs}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Baseline state the abort must restore: two objects, one policy.
	if err := db.Upsert(Object{UID: 1, X: 10, Y: 10}); err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(Object{UID: 2, X: 20, Y: 20}); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRelation(1, 2, "friend"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(1, "friend", Region{MaxX: 1000, MaxY: 1000}, TimeInterval{End: 1440}); err != nil {
		t.Fatal(err)
	}
	before := preparedTestObjects(t, db)

	// The transaction touches every mutation kind: replace, insert-fresh,
	// remove, relation, grant.
	b := db.NewBatch()
	b.Upsert(Object{UID: 1, X: 99, Y: 99})
	b.Upsert(Object{UID: 3, X: 30, Y: 30})
	b.Remove(2)
	b.DefineRelation(3, 1, "colleague")
	b.Grant(3, "colleague", Region{MaxX: 500, MaxY: 500}, TimeInterval{End: 720})
	p, err := db.PrepareApply(b, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-window the mutations are visible.
	if o, ok, _ := db.Lookup(1); !ok || o.X != 99 {
		t.Fatalf("prepared upsert not visible: %v %v", o, ok)
	}
	if db.Size() != 2 { // 1 replaced, 3 added, 2 removed
		t.Fatalf("mid-window size = %d, want 2", db.Size())
	}
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}

	if got := preparedTestObjects(t, db); !reflect.DeepEqual(got, before) {
		t.Fatalf("aborted state %v, want %v", got, before)
	}
	if db.Allows(3, 1, 30, 30, 30) {
		t.Fatal("aborted grant still in force")
	}
	if !db.Allows(1, 2, 10, 10, 30) {
		t.Fatal("pre-transaction grant lost by abort")
	}

	// The aborted history must replay identically: reopen and compare.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenExisting(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := preparedTestObjects(t, re); !reflect.DeepEqual(got, before) {
		t.Fatalf("replayed state %v, want %v", got, before)
	}
	if re.Allows(3, 1, 30, 30, 30) {
		t.Fatal("aborted grant resurrected by replay")
	}
}

// TestPreparedUnresolvedRecovery: a crash between prepare and marker leaves
// the record's fate to the resolver — absent one it aborts, with one it
// commits.
func TestPreparedUnresolvedRecovery(t *testing.T) {
	build := func() (*store.CrashFS, Options) {
		fs := store.NewCrashFS()
		opts := Options{Path: "u.idx", Durability: DurabilitySync, FS: fs}
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Upsert(Object{UID: 1, X: 10, Y: 10}); err != nil {
			t.Fatal(err)
		}
		b := db.NewBatch()
		b.Upsert(Object{UID: 2, X: 20, Y: 20})
		if _, err := db.PrepareApply(b, 5); err != nil {
			t.Fatal(err)
		}
		// Crash before any marker is logged.
		fs.CutPower()
		fs.Reboot(false)
		return fs, opts
	}

	t.Run("no-resolver-aborts", func(t *testing.T) {
		_, opts := build()
		db, err := OpenExisting(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if _, ok, _ := db.Lookup(2); ok {
			t.Fatal("unresolved prepared record applied without a commit verdict")
		}
		if _, ok, _ := db.Lookup(1); !ok {
			t.Fatal("pre-transaction commit lost")
		}
		if got := db.MaxTxnID(); got != 5 {
			t.Fatalf("MaxTxnID = %d, want 5 (stale id must stay reserved)", got)
		}
	})
	t.Run("resolver-commits", func(t *testing.T) {
		_, opts := build()
		opts.TxnResolve = func(id uint64) bool { return id == 5 }
		db, err := OpenExisting(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if o, ok, _ := db.Lookup(2); !ok || o.X != 20 {
			t.Fatalf("resolver-committed record not applied: %v %v", o, ok)
		}
	})
}

// TestPreparedBlocksCheckpointCut: a checkpoint arriving inside a prepared
// window must wait for the marker, so no image can capture an undecided
// transaction.
func TestPreparedBlocksCheckpointCut(t *testing.T) {
	fs := store.NewCrashFS()
	db, err := Open(Options{Path: "c.idx", Durability: DurabilitySync, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Upsert(Object{UID: 1, X: 10, Y: 10}); err != nil {
		t.Fatal(err)
	}
	b := db.NewBatch()
	b.Upsert(Object{UID: 2, X: 20, Y: 20})
	p, err := db.PrepareApply(b, 3)
	if err != nil {
		t.Fatal(err)
	}

	ckptDone := make(chan error, 1)
	go func() { ckptDone <- db.Checkpoint() }()
	select {
	case err := <-ckptDone:
		t.Fatalf("checkpoint completed inside a prepared window (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
		// Blocked, as required.
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-ckptDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("checkpoint still blocked after the transaction finished")
	}
}

func TestPreparedValidation(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.PrepareApply(db.NewBatch(), 1); err == nil {
		t.Fatal("empty batch prepared")
	}
	b := db.NewBatch()
	b.Upsert(Object{UID: 1, X: 1, Y: 1})
	if _, err := db.PrepareApply(b, 0); err == nil {
		t.Fatal("zero transaction id accepted")
	}
	// A failed prepare needs no abort and leaves no state behind.
	bad := db.NewBatch()
	bad.Remove(42) // absent user: the batch must fail
	if _, err := db.PrepareApply(bad, 2); err == nil {
		t.Fatal("remove of absent user prepared")
	}
	if db.Size() != 0 {
		t.Fatalf("failed prepare left %d objects", db.Size())
	}
	// And a checkpointless in-memory DB still supports the prepare/abort
	// cycle (no WAL: purely in-memory undo).
	ok := db.NewBatch()
	ok.Upsert(Object{UID: 7, X: 5, Y: 5})
	p, err := db.PrepareApply(ok, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}
	if db.Size() != 0 {
		t.Fatalf("aborted in-memory prepare left %d objects", db.Size())
	}
	if err := p.Abort(); err == nil {
		t.Fatal("double finish accepted")
	}
}

// TestPreparedDoubleAbortAfterSyncFailure documents the walSync-failure
// path: PrepareApply auto-aborts and returns the error; the handle is
// finished.
func TestPreparedErrClosed(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	b := db.NewBatch()
	b.Upsert(Object{UID: 1, X: 1, Y: 1})
	if _, err := db.PrepareApply(b, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("PrepareApply on closed DB = %v, want ErrClosed", err)
	}
}

// TestPreparedAbortUpsertThenRemoveFreshUser: a batch that inserts and
// then removes a brand-new user nets to "absent"; aborting it must be a
// no-op for that user, not a spurious rollback failure.
func TestPreparedAbortUpsertThenRemoveFreshUser(t *testing.T) {
	fs := store.NewCrashFS()
	opts := Options{Path: "ur.idx", Durability: DurabilitySync, FS: fs}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Upsert(Object{UID: 1, X: 10, Y: 10}); err != nil {
		t.Fatal(err)
	}
	b := db.NewBatch()
	b.Upsert(Object{UID: 8, X: 20, Y: 20}) // fresh user...
	b.Remove(8)                            // ...gone again within the batch
	b.Upsert(Object{UID: 1, X: 30, Y: 30})
	p, err := db.PrepareApply(b, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Abort(); err != nil {
		t.Fatalf("abort of net-absent fresh user failed: %v", err)
	}
	if db.Size() != 1 {
		t.Fatalf("size after abort = %d, want 1", db.Size())
	}
	if o, ok, _ := db.Lookup(1); !ok || o.X != 10 {
		t.Fatalf("user 1 after abort = %v (ok=%v), want original state", o, ok)
	}
	// The log was not poisoned: ordinary commits still work and replay.
	if err := db.Upsert(Object{UID: 2, X: 40, Y: 40}); err != nil {
		t.Fatalf("commit after abort: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenExisting(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Size() != 2 {
		t.Fatalf("replayed size = %d, want 2", re.Size())
	}
}

// TestPreparedAppendFailureRollsBack: when the prepared record cannot be
// logged, the participant must report failure with nothing half-applied —
// the in-memory batch is undone on the spot.
func TestPreparedAppendFailureRollsBack(t *testing.T) {
	fs := store.NewCrashFS()
	db, err := Open(Options{Path: "af.idx", Durability: DurabilitySync, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Upsert(Object{UID: 1, X: 10, Y: 10}); err != nil {
		t.Fatal(err)
	}
	// Kill the filesystem so the prepared record's append fails.
	fs.SetFailAfter(0)
	b := db.NewBatch()
	b.Upsert(Object{UID: 2, X: 20, Y: 20})
	b.Upsert(Object{UID: 1, X: 99, Y: 99})
	if _, err := db.PrepareApply(b, 4); err == nil {
		t.Fatal("prepare succeeded on a dead log")
	}
	// Nothing of the batch is visible: the failure left a clean state.
	if _, ok, _ := db.Lookup(2); ok {
		t.Fatal("failed prepare left the fresh user applied")
	}
	if o, ok, _ := db.Lookup(1); !ok || o.X != 10 {
		t.Fatalf("failed prepare left user 1 at %v (ok=%v), want original", o, ok)
	}
	if db.Size() != 1 {
		t.Fatalf("size after failed prepare = %d, want 1", db.Size())
	}
}
