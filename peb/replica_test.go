package peb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// replicaHarness opens a durable primary on a CrashFS with a tiny segment
// size so even small workloads roll the log several times.
func replicaHarness(t *testing.T, segBytes int64) (*DB, *store.CrashFS) {
	t.Helper()
	fs := store.NewCrashFS()
	db, err := Open(Options{
		Path:            "rep.idx",
		FS:              fs,
		Durability:      DurabilitySync,
		WALSegmentBytes: segBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, fs
}

// assertReplicaEquals compares the replica's full applied state against
// the primary's: horizon, object set, and a policy-evaluated query. Both
// sides must be quiescent.
func assertReplicaEquals(t *testing.T, p *DB, r *Replica) {
	t.Helper()
	h, err := r.CatchUp()
	if err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	p.mu.RLock()
	pseq := p.walSeq
	p.mu.RUnlock()
	if h != pseq {
		t.Fatalf("horizon = %d, want primary walSeq %d", h, pseq)
	}
	want, err := p.Objects()
	if err != nil {
		t.Fatalf("primary Objects: %v", err)
	}
	got, err := r.db.Objects()
	if err != nil {
		t.Fatalf("replica Objects: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replica holds %d objects, primary %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("object %d: replica %+v, primary %+v", i, got[i], want[i])
		}
	}
	// Policy evaluation must agree too: the replica carries the policies,
	// relations, and sequence values, not just raw positions.
	all := Region{MaxX: p.opts.SpaceSide, MaxY: p.opts.SpaceSide}
	for _, issuer := range []UserID{1, 2, 7} {
		pr, perr := p.RangeQuery(issuer, all, 10)
		rr, rerr := r.RangeQuery(issuer, all, 10)
		if (perr == nil) != (rerr == nil) {
			t.Fatalf("issuer %d: primary err %v, replica err %v", issuer, perr, rerr)
		}
		if len(pr) != len(rr) {
			t.Fatalf("issuer %d: primary sees %d, replica sees %d", issuer, len(pr), len(rr))
		}
		for i := range pr {
			if pr[i] != rr[i] {
				t.Fatalf("issuer %d result %d: primary %+v, replica %+v", issuer, i, pr[i], rr[i])
			}
		}
	}
}

// TestReplicaOracle is the tentpole's correctness oracle: a replica's
// state at horizon H is exactly the primary's committed state at H. The
// replica attaches mid-history (bootstrap transfer), then tails commits
// across many segment rolls, policy mutations, deletes, and an encode
// rebuild — with primary checkpoints dropping covered segments along the
// way (the replica's retention floor keeps its unread suffix alive).
func TestReplicaOracle(t *testing.T) {
	db, _ := replicaHarness(t, 512)

	// Pre-attach history: bootstrap must carry all of it.
	for i := 1; i <= 40; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i * 17 % 1000), Y: float64(i * 29 % 1000), T: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DefineRelation(1, 2, "friend"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(1, "friend", Region{MaxX: 1000, MaxY: 1000}, TimeInterval{Start: 0, End: 1440}); err != nil {
		t.Fatal(err)
	}

	r, err := NewReplica(db)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	assertReplicaEquals(t, db, r)

	// Post-attach history: tailing across rolls, with structural changes.
	for i := 10; i <= 60; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i * 31 % 1000), Y: float64(i * 13 % 1000), T: 2}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 35; i <= 45; i++ {
		if err := db.Remove(UserID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DefineRelation(2, 7, "friend"); err != nil {
		t.Fatal(err)
	}
	if err := db.Grant(2, "friend", Region{MaxX: 500, MaxY: 500}, TimeInterval{Start: 0, End: 1440}); err != nil {
		t.Fatal(err)
	}
	assertReplicaEquals(t, db, r)

	// A checkpoint publishes and drops covered segments; replication must
	// ride through it and subsequent commits.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.EncodePolicies(); err != nil {
		t.Fatal(err)
	}
	for i := 50; i <= 80; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i * 7 % 1000), Y: float64(i * 11 % 1000), T: 3}); err != nil {
			t.Fatal(err)
		}
	}
	assertReplicaEquals(t, db, r)
	if err := r.Err(); err != nil {
		t.Fatalf("replica tail error: %v", err)
	}
}

// TestReplicaSnapshotHorizon: Snapshot returns a pinned view and the
// horizon it was cut at, atomically — horizons are monotone, and each
// snapshot's content matches its horizon even while the primary keeps
// committing underneath.
func TestReplicaSnapshotHorizon(t *testing.T) {
	db, _ := replicaHarness(t, 1024)
	for i := 1; i <= 10; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i), Y: float64(i), T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReplica(db)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 11; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Upsert(Object{UID: UserID(i%100 + 1), X: float64(i % 1000), Y: float64(i % 997), T: float64(i)}); err != nil {
				panic(err)
			}
		}
	}()

	var last uint64
	for k := 0; k < 50; k++ {
		snap, h, err := r.Snapshot()
		if err != nil {
			t.Fatalf("snapshot %d: %v", k, err)
		}
		if h < last {
			t.Fatalf("horizon went backwards: %d after %d", h, last)
		}
		last = h
		if _, err := snap.RangeQuery(1, Region{MaxX: 1000, MaxY: 1000}, 5); err != nil {
			t.Fatalf("snapshot query at horizon %d: %v", h, err)
		}
		snap.Close()
	}
	close(stop)
	wg.Wait()
	if _, err := r.CatchUp(); err != nil {
		t.Fatal(err)
	}
	db.mu.RLock()
	pseq := db.walSeq
	db.mu.RUnlock()
	if h := r.Horizon(); h != pseq {
		t.Fatalf("final horizon %d != primary walSeq %d", h, pseq)
	}
}

// TestReplicaPreparedStall: an undecided prepared record stalls the
// replica's horizon just short of it (a marker-less transaction's fate is
// unknowable), a commit marker releases it, and an aborted prepared
// transaction is skipped with its sequence number consumed — mirroring
// crash recovery's semantics record for record.
func TestReplicaPreparedStall(t *testing.T) {
	db, _ := replicaHarness(t, 4<<10)
	for i := 1; i <= 5; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: 1, Y: 1, T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReplica(db)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h0, err := r.CatchUp()
	if err != nil {
		t.Fatal(err)
	}

	// Prepare without deciding: the record is on disk, the horizon must
	// not move past the sequence before it.
	b := db.NewBatch()
	b.Upsert(Object{UID: 50, X: 9, Y: 9, T: 1})
	prep, err := db.PrepareApply(b, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if h, err := r.CatchUp(); err != nil || h != h0 {
		t.Fatalf("horizon after undecided prepare = %d (err %v), want stalled at %d", h, err, h0)
	}
	if _, ok, _ := r.db.Lookup(50); ok {
		t.Fatal("replica exposes an undecided prepared write")
	}
	if err := prep.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if o, ok, err := r.db.Lookup(50); err != nil || !ok || o.X != 9 {
		t.Fatalf("replica after commit marker: %+v %v %v", o, ok, err)
	}

	// Aborted prepared: skipped, but its sequence number is consumed so
	// the horizon still reaches the log's end.
	b2 := db.NewBatch()
	b2.Upsert(Object{UID: 60, X: 4, Y: 4, T: 2})
	prep2, err := db.PrepareApply(b2, 1002)
	if err != nil {
		t.Fatal(err)
	}
	if err := prep2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(Object{UID: 70, X: 5, Y: 5, T: 3}); err != nil {
		t.Fatal(err)
	}
	assertReplicaEquals(t, db, r)
	if _, ok, _ := r.db.Lookup(60); ok {
		t.Fatal("replica applied an aborted prepared transaction")
	}
	if _, ok, _ := r.db.Lookup(70); !ok {
		t.Fatal("replica missed the commit after the aborted transaction")
	}
}

// TestReplicaRetentionFloor: while a replica's cursor lags, checkpoint
// publication must not drop the unread segments (the floor pins them);
// once the replica consumes them and detaches, they become droppable.
func TestReplicaRetentionFloor(t *testing.T) {
	db, fs := replicaHarness(t, 256)
	if err := db.Upsert(Object{UID: 1, X: 1, Y: 1, T: 0}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(db)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.CatchUp(); err != nil {
		t.Fatal(err)
	}
	floor := r.Position()

	// Freeze the tailer: holding r.mu blocks poll and CatchUp, so the
	// cursor — and with it the retention floor — cannot advance.
	r.mu.Lock()
	for i := 2; i <= 40; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i), Y: float64(i), T: 1}); err != nil {
			r.mu.Unlock()
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		r.mu.Unlock()
		t.Fatal(err)
	}
	// Every segment from the frozen cursor on must have survived publish.
	segs, err := store.ListWALSegments(fs, "rep.idx.wal")
	if err != nil {
		r.mu.Unlock()
		t.Fatal(err)
	}
	minSeg := segs[0]
	r.mu.Unlock()
	if minSeg > floor.Seg {
		t.Fatalf("checkpoint dropped segment %06d, pinned by replica floor %06d", floor.Seg, minSeg)
	}

	// Unfrozen: consume the backlog, detach, and verify the next publish
	// reclaims what the floor was holding.
	assertReplicaEquals(t, db, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(Object{UID: 99, X: 9, Y: 9, T: 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, err := store.ListWALSegments(fs, "rep.idx.wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(segs) {
		t.Fatalf("post-detach checkpoint kept %d segments (was %d); floor not released", len(after), len(segs))
	}
}

// TestReplicaConcurrentTail hammers a replica with concurrent commits and
// reads under the race detector: the tailer, the wake hook, checkpoint
// publication, and follower queries all overlap.
func TestReplicaConcurrentTail(t *testing.T) {
	db, _ := replicaHarness(t, 2<<10)
	for i := 1; i <= 20; i++ {
		if err := db.Upsert(Object{UID: UserID(i), X: float64(i), Y: float64(i), T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReplica(db)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var wg sync.WaitGroup
	errc := make(chan error, 4)
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if err := db.Upsert(Object{UID: UserID(i%50 + 1), X: float64(i % 1000), Y: float64(i % 991), T: float64(i)}); err != nil {
				errc <- fmt.Errorf("upsert %d: %w", i, err)
				return
			}
			if i%90 == 0 {
				if err := db.Checkpoint(); err != nil {
					errc <- fmt.Errorf("checkpoint at %d: %w", i, err)
					return
				}
			}
		}
	}()
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() { // follower readers
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := r.RangeQuery(1, Region{MaxX: 1000, MaxY: 1000}, 5); err != nil {
					errc <- fmt.Errorf("replica query %d: %w", i, err)
					return
				}
				if i%20 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	assertReplicaEquals(t, db, r)
	if err := r.Err(); err != nil {
		t.Fatalf("replica tail error: %v", err)
	}
}

// TestReplicaRequiresDurablePrimary: an in-memory primary has no log to
// tail; attaching must fail cleanly.
func TestReplicaRequiresDurablePrimary(t *testing.T) {
	db := mustOpen(t, Options{})
	if _, err := NewReplica(db); err == nil {
		t.Fatal("NewReplica on a non-durable primary succeeded, want error")
	}
}
