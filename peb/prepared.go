package peb

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/policy"
	"repro/internal/store"
)

// Cross-shard two-phase commit: the participant side.
//
// A sharded deployment (peb/sharded) splits one logical batch across
// several DBs and needs the split to be all-or-nothing even across a
// crash, although each DB has its own write-ahead log. The protocol:
//
//	prepare  — the coordinator calls PrepareApply(sub, txnID) on every
//	           participant: the sub-batch is applied in memory and logged
//	           as a *prepared* record (TxnID + txnPrepared), fsynced per
//	           the durability level. A prepared record does not commit by
//	           itself: replay applies it only if its fate is known to be
//	           commit.
//	decide   — with every participant prepared, the coordinator makes the
//	           transaction durable in ITS decision log. That append is the
//	           transaction's single commit point.
//	finish   — the coordinator calls Commit on every Prepared handle
//	           (logging a txnCommitted marker), or — when any prepare
//	           failed — Abort on those already prepared, which restores
//	           the pre-transaction state exactly and logs a txnAborted
//	           marker.
//
// Recovery resolves a prepared record by scanning forward for its marker;
// a markerless prepared record (the process died mid-protocol) is resolved
// through Options.TxnResolve, which the coordinator points at its decision
// log. Either way every participant reaches the same verdict, so the
// transaction is all-or-nothing across shards.
//
// Two invariants keep the protocol sound:
//
//   - No checkpoint cut lands between a prepared record and its marker
//     (DB.lockExcludingPrepared): the cut image would bake in the applied
//     mutations while truncation dropped the prepared record, leaving a
//     later abort marker nothing to cancel.
//   - Transaction ids are never recycled while any log could still hold
//     the id (DB.MaxTxnID gives the coordinator each participant's
//     watermark), so a stale prepared record can never be resurrected by
//     a newer transaction's commit decision.
//
// The coordinator must serialize prepared windows against index rebuilds
// (EncodePolicies, LoadPolicies) and close: a rebuild swaps the tree under
// the undo state. peb/sharded holds its global barrier lock across both.

// txnUndo captures the pre-transaction state of everything a prepared
// batch touched: the first-touch object states, the sequence values staged
// for new users, the pre-clone policy store, and the scalars. Applying it
// restores the DB to a state indistinguishable from the transaction never
// having run — which is exactly what replay reconstructs when it skips an
// aborted prepared record.
type txnUndo struct {
	prevObjs           map[UserID]*Object // nil value: the user was absent
	freshSVs           []UserID
	addedUsers         []UserID
	prevNextSV         float64
	prevEncoded        bool
	prevPolicies       *policy.Store // non-nil only when the batch changed policies
	prevPoliciesPinned bool
}

// Prepared is a participant's handle on an in-flight cross-shard
// transaction: the batch is applied and logged as prepared, and exactly
// one of Commit or Abort must be called to decide it. The handle is not
// safe for concurrent use.
type Prepared struct {
	db    *DB
	txnID uint64
	undo  txnUndo
	done  bool
}

// PrepareApply applies the batch atomically (exactly like Apply) but logs
// it as a *prepared* participant of cross-shard transaction txnID: the
// mutations are visible in memory immediately, yet recovery discards them
// unless the transaction's fate — a commit marker in this DB's log, or the
// coordinator's TxnResolve verdict — is commit. The caller must finish the
// returned handle with Commit or Abort; checkpoints wait for open prepared
// transactions, so an abandoned handle wedges the checkpoint pipeline.
//
// txnID must be non-zero, unique per transaction, and above every
// participant's MaxTxnID watermark. An error means the batch did not apply
// (this participant needs no abort); the returned handle is nil.
//
// The coordinator must be this DB's only writer for the life of the
// prepared window: the undo Abort applies restores first-touch state and
// a scalar sequence-value cursor, so an ordinary commit interleaved
// between PrepareApply and Commit/Abort would be silently reverted (and
// could later collide on sequence values). peb/sharded guarantees this by
// holding its global barrier lock across the whole protocol; other
// embedders must bring equivalent exclusion, as they must for rebuilds
// (EncodePolicies, LoadPolicies) and Close.
func (db *DB) PrepareApply(b *Batch, txnID uint64) (*Prepared, error) {
	if txnID == 0 {
		return nil, fmt.Errorf("peb: prepare: transaction id must be non-zero")
	}
	if b == nil || len(b.ops) == 0 {
		return nil, fmt.Errorf("peb: prepare: empty batch")
	}
	// Announce the prepared window before taking the write lock: a
	// checkpoint that observed pendingPrepared == 0 holds prepMu until it
	// owns the write lock, so this prepare either waits out the cut (its
	// record then lands beyond the cut's WAL mark) or completes before the
	// checkpoint looks (the cut then waits for the marker).
	db.prepMu.Lock()
	db.pendingPrepared++
	db.prepMu.Unlock()

	p, tok, err := db.prepareCommit(b, txnID)
	if err != nil {
		db.finishPrepared()
		return nil, err
	}
	db.events.Record("txn.prepare", "participant prepared",
		"txn", txnID, "ops", len(b.ops))
	if err := db.walSync(tok); err != nil {
		// The prepared record's durability is unknown and the log is
		// poisoned. Undo in memory so this participant reports a clean
		// failure; if the record did reach disk, recovery resolves it
		// through the coordinator (which will not have committed).
		_ = p.Abort()
		return nil, err
	}
	return p, nil
}

// prepareCommit is PrepareApply's locked section.
func (db *DB) prepareCommit(b *Batch, txnID uint64) (*Prepared, store.WALToken, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, 0, ErrClosed
	}
	p := &Prepared{db: db, txnID: txnID}
	wops, err := db.applyBatchLocked(b, &p.undo)
	if err != nil {
		return nil, 0, err
	}
	tok, err := db.walAppendTxn(wops, txnID, txnPrepared)
	if err != nil {
		// The batch is applied in memory but its prepared record never
		// made the (now poisoned) log: undo in place so this participant
		// reports a clean failure with nothing half-applied. No marker is
		// logged — there is no record to tombstone.
		_ = db.abortPreparedLocked(p)
		return nil, 0, err
	}
	return p, tok, nil
}

// finishPrepared closes a prepared window and wakes checkpoint cuts
// waiting for quiescence.
func (db *DB) finishPrepared() {
	db.prepMu.Lock()
	db.pendingPrepared--
	db.prepCond.Broadcast()
	db.prepMu.Unlock()
}

// Commit seals the transaction's fate as committed in this participant's
// log. The coordinator must already have made the decision durable in its
// own log: the marker is what lets this DB resolve the record locally on
// the next recovery without consulting the coordinator. A marker append
// failure poisons this DB's log (fail-stop), but the transaction stays
// committed — recovery falls back to TxnResolve.
func (p *Prepared) Commit() error {
	if p.done {
		return fmt.Errorf("peb: transaction %d already finished", p.txnID)
	}
	p.done = true
	db := p.db
	db.mu.Lock()
	tok, err := db.walAppendTxn(nil, p.txnID, txnCommitted)
	db.mu.Unlock()
	db.finishPrepared()
	db.events.Record("txn.commit", "participant committed", "txn", p.txnID)
	if err != nil {
		return err
	}
	return db.walSync(tok)
}

// Abort reverses the prepared batch exactly — objects return to their
// first-touch states, freshly staged sequence values are withdrawn, the
// policy store reverts to its pre-transaction clone, registered users are
// forgotten — and logs a txnAborted marker. The restored in-memory state
// matches what replay produces by skipping the prepared record, so log and
// memory stay equivalent.
func (p *Prepared) Abort() error {
	if p.done {
		return fmt.Errorf("peb: transaction %d already finished", p.txnID)
	}
	p.done = true
	db := p.db
	db.mu.Lock()
	err := db.abortPreparedLocked(p)
	tok, aerr := db.walAppendTxn(nil, p.txnID, txnAborted)
	db.mu.Unlock()
	db.finishPrepared()
	db.events.Record("txn.abort", "participant aborted", "txn", p.txnID)
	if err != nil {
		return err
	}
	if aerr != nil {
		// The in-memory state is rolled back but the marker did not reach
		// the (now poisoned) log. If the prepared record is durable,
		// recovery resolves it through the coordinator — which never
		// committed this transaction — so the outcome still matches.
		return aerr
	}
	return db.walSync(tok)
}

// abortPreparedLocked applies the undo under the write lock.
func (db *DB) abortPreparedLocked(p *Prepared) error {
	if db.closed {
		return ErrClosed
	}
	// Hook capture: the rollback is itself a commit from a subscriber's
	// point of view — each touched user transitions from its prepared
	// state back to its pre-transaction state.
	var abortPrev map[UserID]*Object
	if db.hooksActive() {
		abortPrev = make(map[UserID]*Object, len(p.undo.prevObjs))
		for uid := range p.undo.prevObjs {
			cur, ok, err := db.tree.Get(motion.UserID(uid))
			if err == nil && ok {
				c := cur
				abortPrev[uid] = &c
			} else {
				abortPrev[uid] = nil
			}
		}
	}
	inverse := make([]core.BatchOp, 0, len(p.undo.prevObjs))
	for uid, prev := range p.undo.prevObjs {
		if prev != nil {
			// Upsert restores the first-touch state whether the batch
			// replaced or removed the entry.
			inverse = append(inverse, core.BatchOp{Kind: core.OpUpsert, Obj: *prev})
			continue
		}
		// The user was absent before the batch. It may be absent now too
		// (the batch upserted and then removed them), in which case there
		// is nothing to delete — and staging a remove would fail the whole
		// inverse batch.
		if _, ok, err := db.tree.Get(motion.UserID(uid)); err != nil {
			err = fmt.Errorf("peb: abort txn %d: probe user %d: %w", p.txnID, uid, err)
			if db.wal != nil {
				db.wal.Poison(err)
			}
			return err
		} else if ok {
			inverse = append(inverse, core.BatchOp{Kind: core.OpRemove, UID: motion.UserID(uid)})
		}
	}
	if err := db.tree.ApplyBatch(inverse); err != nil {
		// The rollback itself failed (I/O): memory is ahead of what the log
		// will reconstruct. Fail stop — poison the log so no later commit
		// can persist a history diverging from memory.
		err = fmt.Errorf("peb: abort txn %d: rollback failed: %w", p.txnID, err)
		if db.wal != nil {
			db.wal.Poison(err)
		}
		db.refreshView()
		db.collectGarbage()
		return err
	}
	for _, uid := range p.undo.freshSVs {
		_ = db.tree.UnsetSV(uid)
	}
	db.nextSV = p.undo.prevNextSV
	db.encoded = p.undo.prevEncoded
	if p.undo.prevPolicies != nil {
		db.policies = p.undo.prevPolicies
		_ = db.tree.SetPolicies(p.undo.prevPolicies)
		// Snapshots opened during the prepared window pin the transaction's
		// clone, not the restored store; keep clone-on-write conservative
		// whenever any snapshot is live.
		db.policiesPinned = p.undo.prevPoliciesPinned || len(db.snaps) > 0
	}
	for _, uid := range p.undo.addedUsers {
		delete(db.users, uid)
	}
	db.refreshView()
	db.collectGarbage()
	if db.hooksActive() {
		touched := make([]CommitTouch, 0, len(abortPrev))
		for uid, prev := range abortPrev {
			restored := p.undo.prevObjs[uid]
			if restored != nil {
				r := *restored
				touched = append(touched, CommitTouch{UID: uid, Prev: prev, Cur: &r})
			} else {
				touched = append(touched, CommitTouch{UID: uid, Prev: prev, Cur: nil})
			}
		}
		db.fireCommitLocked(touched, p.undo.prevPolicies != nil, false)
	}
	return nil
}

// MaxTxnID returns the largest cross-shard transaction id this DB has
// logged or replayed — the watermark above which a coordinator must
// allocate new ids so that no recycled id can match a stale prepared
// record still sitting in some participant's log.
func (db *DB) MaxTxnID() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.maxTxn
}
