package peb

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors. Match with errors.Is; the concrete errors returned by
// the API wrap these and add detail.
var (
	// ErrBadOptions is wrapped by every error Open and OpenExisting return
	// for an invalid Options value (negative sizes, speeds, or intervals).
	ErrBadOptions = errors.New("peb: bad options")

	// ErrClosed is returned by every method called after Close, and by
	// handle methods (Snapshot queries, Apply) whose DB or handle has been
	// closed.
	ErrClosed = errors.New("peb: database is closed")

	// ErrInvalidRegion is wrapped by the typed *InvalidRegionError that
	// queries return for a malformed query region.
	ErrInvalidRegion = errors.New("peb: invalid region")

	// ErrCorruptCheckpoint is wrapped by every error OpenExisting returns
	// for on-disk state that cannot be a valid checkpoint: an unparsable
	// meta or policies file, a truncated backing file, a root or free list
	// referencing pages the file does not hold, or index pages whose
	// structure is garbage. It means the checkpoint cannot be trusted, not
	// merely that an option was wrong.
	ErrCorruptCheckpoint = errors.New("peb: corrupt checkpoint")
)

// InvalidRegionError reports the malformed region a query was given
// (MinX > MaxX or MinY > MaxY). It wraps ErrInvalidRegion, so both
// errors.Is(err, ErrInvalidRegion) and errors.As(err, *&e) work.
type InvalidRegionError struct {
	Region Region
}

// Error implements error.
func (e *InvalidRegionError) Error() string {
	return fmt.Sprintf("peb: invalid region [%g,%g]x[%g,%g]: min exceeds max",
		e.Region.MinX, e.Region.MaxX, e.Region.MinY, e.Region.MaxY)
}

// Unwrap makes errors.Is(err, ErrInvalidRegion) succeed.
func (e *InvalidRegionError) Unwrap() error { return ErrInvalidRegion }

// validate checks an Options value, reporting every violation as one error
// wrapping ErrBadOptions. The zero value of any field means "use the
// default" and is always valid.
func (o Options) validate() error {
	var bad []string
	if o.SpaceSide < 0 {
		bad = append(bad, fmt.Sprintf("SpaceSide %g < 0", o.SpaceSide))
	}
	if o.DayLength < 0 {
		bad = append(bad, fmt.Sprintf("DayLength %g < 0", o.DayLength))
	}
	if o.MaxSpeed < 0 {
		bad = append(bad, fmt.Sprintf("MaxSpeed %g < 0", o.MaxSpeed))
	}
	if o.MaxUpdateInterval < 0 {
		bad = append(bad, fmt.Sprintf("MaxUpdateInterval %g < 0", o.MaxUpdateInterval))
	}
	if o.BufferPages < 0 {
		bad = append(bad, fmt.Sprintf("BufferPages %d < 0", o.BufferPages))
	}
	if o.Durability < DurabilityNone || o.Durability > DurabilityAsync {
		bad = append(bad, fmt.Sprintf("unknown Durability %d", o.Durability))
	}
	if o.Durability != DurabilityNone && o.Path == "" {
		bad = append(bad, "Durability requires Path")
	}
	if o.WALSegmentBytes < 0 {
		bad = append(bad, fmt.Sprintf("WALSegmentBytes %d < 0", o.WALSegmentBytes))
	}
	if o.AutoCheckpoint.WALBytes < 0 {
		bad = append(bad, fmt.Sprintf("AutoCheckpoint.WALBytes %d < 0", o.AutoCheckpoint.WALBytes))
	}
	if o.AutoCheckpoint.enabled() && o.Durability == DurabilityNone {
		bad = append(bad, "AutoCheckpoint requires Durability (its thresholds measure the write-ahead log)")
	}
	if o.SlowQueryThreshold < 0 {
		bad = append(bad, fmt.Sprintf("SlowQueryThreshold %v < 0", o.SlowQueryThreshold))
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrBadOptions, strings.Join(bad, "; "))
}
